(* Benchmark harness: regenerates the paper's evaluation — Table I
   (complexity of RCDP) and Table II (complexity of RCQP) — as
   empirical artefacts.

   The paper proves complexity bounds; it has no measured numbers.  A
   faithful reproduction therefore demonstrates, per table row:

   (a) {e verdict agreement}: our decision procedures agree with
       brute-force ground truth on instance families derived from the
       paper's own hardness reductions, and
   (b) {e scaling shape}: measured time grows the way the bound
       predicts (exponential blow-up for the Σ₂ᵖ/NEXPTIME rows,
       polynomial behaviour of the per-candidate work, semi-decision
       behaviour for the undecidable rows).

   Sections (run `main.exe <section>` or no argument for all):
     table1   — Table I rows (RCDP)
     table2   — Table II rows (RCQP)
     prop21   — Proposition 2.1 (consistency as containment constraints)
     chars    — characterisation checks (C1–C4, E1–E6 artefacts)
     ablation — design-choice ablations from DESIGN.md
     micro    — bechamel micro-benchmarks (one group per table)
     search   — seq/inc/par valuation-search strategies (BENCH_search.json)
     match    — compiled match kernel vs naive oracle (BENCH_match.json)
     mine     — constraint mining seq vs pool-parallel (BENCH_mine.json)
     load     — streaming columnar ingest vs slurp baseline (BENCH_load.json)
     obs      — instrumentation overhead: traced vs untraced seq decide
*)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete
open Ric_workloads
open Ric_reductions

let v = Term.var

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let hr title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') title (String.make 72 '=')

let row name ~paper ~procedure =
  Printf.printf "\n-- %-22s paper: %-18s procedure: %s\n" name paper procedure

(* ================================================================== *)
(* Table I — RCDP                                                      *)
(* ================================================================== *)

let table1_undecidable_fo_cq () =
  row "(FO, CQ)" ~paper:"undecidable" ~procedure:"bounded semi-decision (Thm 3.1(1))";
  (* Theorem 3.1(1) reduces FO satisfiability to RCDP with empty D, Dm
     and V: D = ∅ is complete for a Boolean FO query iff the query is
     unsatisfiable.  We run the semi-decider on both sides. *)
  let schema = Schema.make [ Schema.relation "U" [ Schema.attribute "x" ] ] in
  let master = Database.empty (Schema.make []) in
  let db = Database.empty schema in
  let sat_q = Fo.boolean (Fo.Exists ([ "x" ], Fo.Atom (Atom.make "U" [ v "x" ]))) in
  let unsat_q =
    Fo.boolean
      (Fo.Exists
         ( [ "x" ],
           Fo.And (Fo.Atom (Atom.make "U" [ v "x" ]), Fo.Not (Fo.Atom (Atom.make "U" [ v "x" ]))) ))
  in
  let run q =
    Rcdp.semi_decide ~max_tuples:1 ~schema ~master ~ccs:[] ~db (Lang.Q_fo q)
  in
  (match run sat_q with
   | Rcdp.Refuted _ -> Printf.printf "  satisfiable FO query : refuted (D = ∅ incomplete)  [expected]\n"
   | Rcdp.No_counterexample _ -> Printf.printf "  satisfiable FO query : MISSED counterexample\n");
  (match run unsat_q with
   | Rcdp.No_counterexample { max_tuples; _ } ->
     Printf.printf
       "  unsatisfiable query  : no counterexample up to %d tuple(s)  [semi-decision only]\n"
       max_tuples
   | Rcdp.Refuted _ -> Printf.printf "  unsatisfiable query  : SPURIOUS refutation\n")

let table1_undecidable_cq_fo () =
  row "(CQ, FO)" ~paper:"undecidable" ~procedure:"bounded semi-decision (Thm 3.1(2))";
  (* An FO containment constraint gates extensions; the decider must
     refuse to decide, the semi-decider still refutes. *)
  let schema = Schema.make [ Schema.relation "U" [ Schema.attribute "x" ] ] in
  let master = Database.empty (Schema.make []) in
  let db = Database.empty schema in
  let fo_cc =
    (* at most one U tuple *)
    Containment.make ~name:"le1"
      (Lang.Q_fo
         (Fo.make ~head:[ v "x"; v "y" ]
            (Fo.And
               ( Fo.Atom (Atom.make "U" [ v "x" ]),
                 Fo.And (Fo.Atom (Atom.make "U" [ v "y" ]), Fo.neq (v "x") (v "y")) ))))
      Projection.Empty
  in
  let q = Cq.make ~head:[ v "x" ] [ Atom.make "U" [ v "x" ] ] in
  (try
     ignore (Rcdp.decide ~schema ~master ~ccs:[ fo_cc ] ~db (Lang.Q_cq q));
     Printf.printf "  exact decider        : FAILED to refuse an FO constraint\n"
   with Rcdp.Unsupported _ ->
     Printf.printf "  exact decider        : correctly refuses (undecidable combination)\n");
  (match Rcdp.semi_decide ~max_tuples:1 ~schema ~master ~ccs:[ fo_cc ] ~db (Lang.Q_cq q) with
   | Rcdp.Refuted _ -> Printf.printf "  semi-decision        : refuted (a single U tuple is admissible)\n"
   | Rcdp.No_counterexample _ -> Printf.printf "  semi-decision        : missed\n")

let table1_undecidable_fp () =
  row "(FP, CQ)" ~paper:"undecidable" ~procedure:"2-head DFA encoding + bounded search (Thm 3.1(3))";
  let cases =
    [
      ("L(A) = {\"1\"}", Two_head_dfa.accepts_one, false);
      ("L(A) = {1^n}", Two_head_dfa.equal_heads, false);
      ("L(A) = ∅", Two_head_dfa.accepts_nothing, true);
    ]
  in
  List.iter
    (fun (name, dfa, expect_empty) ->
      let t = Dfa_reduction.of_dfa dfa in
      let (verdict, secs) = time (fun () -> Dfa_reduction.semi_decide ~max_tuples:3 t) in
      let shown =
        match verdict with
        | Rcdp.Refuted cex ->
          Printf.sprintf "refuted — counterexample adds %d tuple(s)"
            (Database.total_tuples cex.Rcdp.cex_extension)
        | Rcdp.No_counterexample { max_tuples; _ } ->
          Printf.sprintf "no counterexample up to %d tuples" max_tuples
      in
      let agree =
        match verdict with
        | Rcdp.Refuted _ -> not expect_empty
        | Rcdp.No_counterexample _ -> expect_empty
      in
      Printf.printf "  %-22s: %-46s %6.2fs  %s\n" name shown secs
        (if agree then "[agrees with simulator]" else "[MISMATCH]"))
    cases

let table1_sigma2_inds () =
  row "(CQ/UCQ/∃FO⁺, INDs)" ~paper:"Σ₂ᵖ-complete" ~procedure:"exact valuation search (Thm 3.6(1), Cor 3.7)";
  Printf.printf "  ∀*∃*-3SAT reduction instances (fixed Dm and V!): verdict agreement + scaling\n";
  List.iter
    (fun (n_forall, n_exists, n_clauses, seeds) ->
      let agree = ref 0 and total = ref 0 and worst = ref 0.0 in
      List.iter
        (fun seed ->
          let fe = Sat.random_fe ~seed ~n_forall ~n_exists ~n_clauses in
          let inst = Rcdp_hardness.of_fe fe in
          let (got, secs) = time (fun () -> Rcdp_hardness.decide inst) in
          incr total;
          if got = Rcdp_hardness.expected fe then incr agree;
          if secs > !worst then worst := secs)
        seeds;
      Printf.printf "    ∀%d∃%d, %d clauses : agreement %d/%d, worst time %6.3fs\n" n_forall
        n_exists n_clauses !agree !total !worst)
    [
      (1, 1, 2, [ 1; 2; 3; 4 ]);
      (2, 2, 3, [ 1; 2; 3; 4 ]);
      (3, 2, 4, [ 1; 2 ]);
      (3, 3, 4, [ 1 ]);
    ]

let table1_sigma2_cq () =
  row "(CQ, CQ) etc." ~paper:"Σ₂ᵖ-complete" ~procedure:"exact valuation search (Thm 3.6(2-4))";
  Printf.printf
    "  The same ∀∃3SAT instances with the INDs treated as generic CQ constraints\n\
    \  (an IND is a CC whose query is a projection CQ) — the condition-C2 path:\n";
  List.iter
    (fun (n_forall, n_exists, n_clauses, seeds) ->
      let agree = ref 0 and total = ref 0 and worst = ref 0.0 in
      List.iter
        (fun seed ->
          let fe = Sat.random_fe ~seed ~n_forall ~n_exists ~n_clauses in
          let inst = Rcdp_hardness.of_fe fe in
          let (got, secs) = time (fun () -> Rcdp_hardness.decide ~ind_fast:false inst) in
          incr total;
          if got = Rcdp_hardness.expected fe then incr agree;
          if secs > !worst then worst := secs)
        seeds;
      Printf.printf "    ∀%d∃%d, %d clauses : agreement %d/%d, worst time %6.3fs\n" n_forall
        n_exists n_clauses !agree !total !worst)
    [ (1, 1, 2, [ 1; 2; 3 ]); (2, 2, 3, [ 1; 2; 3 ]); (3, 2, 4, [ 1 ]) ];
  (* a Complete verdict on CRM data requires exhausting the whole
     valuation space — this is where pruning shows *)
  let master = Crm.master ~customers:4 ~managers:[] () in
  let db = Crm.db ~master ~keep:1.0 ~supported_by:[ ("e0", [ "d0" ]) ] () in
  let stats = ref { Rcdp.valuations_visited = 0; branches_pruned = 0 } in
  let (verdict, secs) =
    time (fun () ->
        Rcdp.decide ~collect_stats:stats ~schema:Crm.db_schema ~master
          ~ccs:[ Crm.cc_domestic_customers ] ~db (Lang.Q_cq Crm.q0))
  in
  Printf.printf "    CRM Q0 (complete case, search exhausts): %s in %6.3fs (%d leaves, %d pruned)\n"
    (match verdict with Rcdp.Complete -> "complete" | Rcdp.Incomplete _ -> "incomplete")
    secs !stats.Rcdp.valuations_visited !stats.Rcdp.branches_pruned;
  (* UCQ and ∃FO⁺ route through the same engine *)
  let q2e1 = Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ Term.str "e1"; v "d"; v "c" ] ] in
  let ucq = Ucq.make [ Crm.q2; q2e1 ] in
  let (verdict, secs) =
    time (fun () ->
        Rcdp.decide ~schema:Crm.db_schema ~master ~ccs:[ Crm.cc_support_load 4 ] ~db
          (Lang.Q_ucq ucq))
  in
  Printf.printf "    UCQ (customers of e0 ∪ of e1), cap 4: %s in %6.3fs\n"
    (match verdict with Rcdp.Complete -> "complete" | Rcdp.Incomplete _ -> "incomplete")
    secs;
  let efo =
    Efo.make ~head:[ v "c" ]
      (Efo.Or
         ( Efo.Atom (Atom.make "Supt" [ Term.str "e0"; v "d"; v "c" ]),
           Efo.Atom (Atom.make "Supt" [ Term.str "e1"; v "d"; v "c" ]) ))
  in
  let (verdict, secs) =
    time (fun () ->
        Rcdp.decide ~schema:Crm.db_schema ~master ~ccs:[ Crm.cc_support_load 4 ] ~db
          (Lang.Q_efo efo))
  in
  Printf.printf "    ∃FO⁺ (same query as a disjunction): %s in %6.3fs\n"
    (match verdict with Rcdp.Complete -> "complete" | Rcdp.Incomplete _ -> "incomplete")
    secs

let table1_data_complexity () =
  row "data complexity" ~paper:"(combined bounds are Σ₂ᵖ)"
    ~procedure:"fixed Q and V, growing data";
  Printf.printf
    "  The Σ₂ᵖ bounds are in the size of Q and V.  With both fixed, the valuation space\n\
    \  is |Adom|^|vars(T_Q)| — polynomial in the data (PTIME data complexity):\n";
  List.iter
    (fun customers ->
      let master = Crm.master ~customers ~managers:[] () in
      let db = Crm.db ~master ~keep:1.0 ~supported_by:[ ("e0", [ "d0" ]) ] () in
      let (verdict, secs) =
        time (fun () ->
            Rcdp.decide ~schema:Crm.db_schema ~master ~ccs:[ Crm.cc_domestic_customers ] ~db
              (Lang.Q_cq Crm.q0))
      in
      Printf.printf "    %4d master customers : %s in %7.3fs\n" customers
        (match verdict with Rcdp.Complete -> "complete" | Rcdp.Incomplete _ -> "incomplete")
        secs)
    [ 4; 8; 16 ]

let table1 () =
  hr "Table I — RCDP(LQ, LC): paper bound vs. measured behaviour";
  table1_undecidable_fo_cq ();
  table1_undecidable_cq_fo ();
  table1_undecidable_fp ();
  Printf.printf "\n-- (fixed FP, FP)       paper: undecidable        procedure: same DFA machinery;\n";
  Printf.printf "   the Theorem 3.1(4) appendix construction swaps query and constraint roles.\n";
  table1_sigma2_inds ();
  table1_sigma2_cq ();
  table1_data_complexity ()

(* ================================================================== *)
(* Table II — RCQP                                                     *)
(* ================================================================== *)

let table2_undecidable () =
  row "(FO/FP rows)" ~paper:"undecidable" ~procedure:"bounded witness search (Thm 4.1)";
  let schema = Schema.make [ Schema.relation "U" [ Schema.attribute "x" ] ] in
  let master = Database.empty (Schema.make []) in
  let fo_cc =
    Containment.make ~name:"le1"
      (Lang.Q_fo
         (Fo.make ~head:[ v "x"; v "y" ]
            (Fo.And
               ( Fo.Atom (Atom.make "U" [ v "x" ]),
                 Fo.And (Fo.Atom (Atom.make "U" [ v "y" ]), Fo.neq (v "x") (v "y")) ))))
      Projection.Empty
  in
  let q = Cq.make ~head:[ v "x" ] [ Atom.make "U" [ v "x" ] ] in
  (try
     ignore (Rcqp.decide ~schema ~master ~ccs:[ fo_cc ] (Lang.Q_cq q));
     Printf.printf "  exact decider : FAILED to refuse\n"
   with Rcqp.Unsupported _ -> Printf.printf "  exact decider : correctly refuses FO constraints\n");
  (match Rcqp.semi_decide ~max_tuples:1 ~schema ~master ~ccs:[ fo_cc ] (Lang.Q_cq q) with
   | Rcqp.Plausibly_nonempty { witness; checked_up_to } ->
     Printf.printf
       "  semi-decision : plausible witness with %d tuple(s), no counterexample up to %d added tuples\n"
       (Database.total_tuples witness) checked_up_to
   | Rcqp.No_witness_found { candidates_tried } ->
     Printf.printf "  semi-decision : no witness among %d candidates\n" candidates_tried)

let table2_conp_inds () =
  row "(CQ/UCQ/∃FO⁺, INDs)" ~paper:"coNP-complete" ~procedure:"syntactic E3/E4 + valuation escape (Prop 4.3)";
  Printf.printf "  3SAT reduction (Thm 4.5(1)): φ satisfiable ⟺ RCQ empty; fixed Dm, V\n";
  List.iter
    (fun (n_vars, n_clauses, seeds) ->
      let agree = ref 0 and total = ref 0 and worst = ref 0.0 in
      List.iter
        (fun seed ->
          let cnf = Sat.random_cnf ~seed ~n_vars ~n_clauses in
          let inst = Rcqp_hardness.of_cnf cnf in
          let (got, secs) = time (fun () -> Rcqp_hardness.decide inst) in
          incr total;
          if got = Rcqp_hardness.expected_nonempty cnf then incr agree;
          if secs > !worst then worst := secs)
        seeds;
      Printf.printf "    %d vars, %2d clauses : agreement %d/%d, worst time %6.3fs\n" n_vars
        n_clauses !agree !total !worst)
    [
      (2, 3, [ 1; 2; 3; 4; 5 ]);
      (3, 5, [ 1; 2; 3; 4; 5 ]);
      (4, 8, [ 1; 2; 3 ]);
      (5, 12, [ 1; 2 ]);
    ];
  (* unsatisfiable instances exercise the nonempty side *)
  let unsat =
    {
      Sat.n_vars = 2;
      clauses =
        [
          (Sat.lit 0, Sat.lit 0, Sat.lit 0);
          (Sat.lit ~neg:true 0, Sat.lit ~neg:true 0, Sat.lit ~neg:true 0);
        ];
    }
  in
  let inst = Rcqp_hardness.of_cnf unsat in
  Printf.printf "    crafted unsat instance : %s  [expected nonempty]\n"
    (if Rcqp_hardness.decide inst then "nonempty" else "empty")

let table2_nexptime () =
  row "(CQ, CQ) etc." ~paper:"NEXPTIME-complete" ~procedure:"E1/E2 valuation-set search (Thm 4.5(2))";
  Printf.printf "  2×2 tiling reduction instances:\n";
  List.iter
    (fun (name, p) ->
      let inst = Tiling.of_problem p in
      let (verdict, secs) = time (fun () -> Tiling.decide inst) in
      let expected = if Tiling.solvable_2x2 p then "nonempty" else "empty" in
      Printf.printf "    %-14s: %-9s (expected %-9s) %7.3fs  %s\n" name
        (Rcqp.verdict_name verdict) expected secs
        (if Rcqp.verdict_name verdict = expected then "[ok]" else "[MISMATCH]")
    )
    [
      ("free 2 tiles", Tiling.free_problem 2);
      ("free 3 tiles", Tiling.free_problem 3);
      ("striped", Tiling.striped);
      ("unsolvable", Tiling.unsolvable);
      ("wrong corner", { Tiling.striped with Tiling.t0 = 1 });
    ];
  Printf.printf "  Example 4.1 family (CQ constraints from FDs):\n";
  let master = Crm.master ~customers:3 ~managers:[] () in
  List.iter
    (fun (name, ccs, q, expected) ->
      let (verdict, secs) = time (fun () -> Rcqp.decide ~schema:Crm.db_schema ~master ~ccs (Lang.Q_cq q)) in
      Printf.printf "    %-22s: %-9s (expected %-9s) %7.3fs\n" name (Rcqp.verdict_name verdict)
        expected secs)
    [
      ("Q4 under eid→dept", Crm.ccs_fd_dept, Crm.q4, "nonempty");
      ("Q2 under eid→dept", Crm.ccs_fd_dept, Crm.q2_tuples, "empty");
      ("Q2 under eid→dept,cid", Crm.ccs_fd_supt, Crm.q2_tuples, "nonempty");
    ]

let table2_sigma3_fixed () =
  row "fixed Dm, V" ~paper:"Σ₃ᵖ-complete" ~procedure:"Corollary 4.6 reduction (∃∀∃3SAT)";
  Printf.printf "  ∃*∀*∃*-3SAT instances through the Corollary 4.6 construction:\n";
  let l ?neg var = Sat.lit ?neg var in
  let cases =
    [
      ( "∃x∀y∃z true",
        Sat.make_efe ~n_exists1:1 ~n_forall:1 ~n_exists2:1
          [ (l 0, l 0, l 0); (l 1, l 2, l 2) ] );
      ("∃x∀y false", Sat.make_efe ~n_exists1:1 ~n_forall:1 ~n_exists2:1 [ (l 1, l 1, l 1) ]);
      ( "∃x∀y∃z z:=y",
        Sat.make_efe ~n_exists1:1 ~n_forall:1 ~n_exists2:1
          [ (l 0, l ~neg:true 1, l 2); (l ~neg:true 0, l 1, l ~neg:true 2) ] );
      ( "∃x²∀y∃z",
        Sat.make_efe ~n_exists1:2 ~n_forall:1 ~n_exists2:1
          [ (l 0, l 1, l 2); (l ~neg:true 0, l 2, l 3) ] );
    ]
  in
  List.iter
    (fun (name, e) ->
      let inst = Sigma3_hardness.of_efe e in
      let expected = if Sigma3_hardness.expected_nonempty e then "nonempty" else "empty" in
      let (verdict, secs) = time (fun () -> Sigma3_hardness.decide inst) in
      Printf.printf "    %-14s: %-9s (expected %-9s) %7.3fs  %s\n" name
        (Rcqp.verdict_name verdict) expected secs
        (if Rcqp.verdict_name verdict = expected then "[ok]" else "[MISMATCH]"))
    cases;
  Printf.printf "  Fixed-V query sweep (V = {eid → dept}, only Q grows):\n";
  let master = Crm.master ~customers:3 ~managers:[] () in
  List.iter
    (fun k ->
      let atoms =
        List.init k (fun j ->
            Atom.make "Supt"
              [ Term.str "e0"; v (Printf.sprintf "d%d" j); v (Printf.sprintf "c%d" j) ])
      in
      let q = Cq.make ~head:(List.init k (fun j -> v (Printf.sprintf "c%d" j))) atoms in
      let (verdict, secs) =
        time (fun () -> Rcqp.decide ~schema:Crm.db_schema ~master ~ccs:Crm.ccs_fd_dept (Lang.Q_cq q))
      in
      Printf.printf "    %d-atom query : %-9s %7.3fs\n" k (Rcqp.verdict_name verdict) secs)
    [ 1; 2; 3 ]

let table2 () =
  hr "Table II — RCQP(LQ, LC): paper bound vs. measured behaviour";
  table2_undecidable ();
  table2_conp_inds ();
  table2_nexptime ();
  table2_sigma3_fixed ()

(* ================================================================== *)
(* Proposition 2.1                                                     *)
(* ================================================================== *)

let prop21 () =
  hr "Proposition 2.1 — integrity constraints as containment constraints";
  let schema =
    Schema.make
      [
        Schema.relation "R" [ Schema.attribute "a"; Schema.attribute "b"; Schema.attribute "c" ];
      ]
  in
  let empty_master = Database.empty (Schema.make []) in
  let fd = Fd.make ~rel:"R" ~lhs:[ 0 ] ~rhs:[ 1 ] () in
  let cfd =
    Cfd.make ~rel:"R" ~lhs:[ 0 ] ~lhs_pattern:[ (0, Value.int 1) ] ~rhs:[ 1 ]
      ~rhs_pattern:[ (1, Value.int 2) ] ()
  in
  let fd_ccs = Translate.of_fd schema fd in
  let cfd_ccs = Translate.of_cfd schema cfd in
  let random_db seed size =
    let state = ref seed in
    let rand bound =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod bound
    in
    Database.of_list schema
      [ ("R", Relation.of_int_rows (List.init size (fun _ -> List.init 3 (fun _ -> rand 3)))) ]
  in
  let trials = 400 in
  let fd_agree = ref 0 and cfd_agree = ref 0 in
  let direct_time = ref 0.0 and cc_time = ref 0.0 in
  for seed = 1 to trials do
    let d = random_db seed (seed mod 7) in
    let (direct, t1) = time (fun () -> Fd.holds d fd) in
    let (via_cc, t2) = time (fun () -> Containment.holds_all ~db:d ~master:empty_master fd_ccs) in
    direct_time := !direct_time +. t1;
    cc_time := !cc_time +. t2;
    if direct = via_cc then incr fd_agree;
    if Cfd.holds d cfd = Containment.holds_all ~db:d ~master:empty_master cfd_ccs then
      incr cfd_agree
  done;
  Printf.printf "  FD  ⟺ CC translation : %d/%d agreement\n" !fd_agree trials;
  Printf.printf "  CFD ⟺ CC translation : %d/%d agreement\n" !cfd_agree trials;
  Printf.printf "  checking cost: direct %.1f µs/db, via CQ containment constraints %.1f µs/db\n"
    (1e6 *. !direct_time /. float_of_int trials)
    (1e6 *. !cc_time /. float_of_int trials)

(* ================================================================== *)
(* Characterisations                                                   *)
(* ================================================================== *)

let chars () =
  hr "Characterisations — C1/C2 counterexamples and E1-E4 witnesses verify";
  let master = Crm.master ~customers:5 ~managers:[] () in
  let ccs = [ Crm.cc_domestic_customers ] in
  let total = ref 0 and verified = ref 0 in
  for seed = 1 to 12 do
    let keep = float_of_int (30 + (seed * 5)) /. 100. in
    let db = Crm.db ~seed ~master ~keep ~supported_by:[ ("e0", [ "d0" ]) ] () in
    match Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db (Lang.Q_cq Crm.q0) with
    | Rcdp.Complete -> ()
    | Rcdp.Incomplete cex ->
      incr total;
      let extended = Database.union db cex.Rcdp.cex_extension in
      if
        Containment.holds_all ~db:extended ~master ccs
        && Relation.mem cex.Rcdp.cex_answer (Cq.eval extended Crm.q0)
        && not (Relation.mem cex.Rcdp.cex_answer (Cq.eval db Crm.q0))
      then incr verified
  done;
  Printf.printf "  RCDP counterexamples (condition C2 witnesses): %d/%d verified real\n"
    !verified !total;
  let w_total = ref 0 and w_ok = ref 0 in
  List.iter
    (fun (ccs, q) ->
      match Rcqp.decide ~schema:Crm.db_schema ~master ~ccs (Lang.Q_cq q) with
      | Rcqp.Nonempty { witness = Some w; _ } ->
        incr w_total;
        if
          Containment.holds_all ~db:w ~master ccs
          && Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db:w (Lang.Q_cq q) = Rcdp.Complete
        then incr w_ok
      | _ -> ())
    [
      (Crm.ccs_fd_dept, Crm.q4);
      (Crm.ccs_fd_supt, Crm.q2_tuples);
      ([ Crm.cc_support_load 2 ], Crm.q2);
    ];
  Printf.printf "  RCQP witnesses (condition E2 constructions)  : %d/%d verified complete\n"
    !w_ok !w_total

(* ================================================================== *)
(* Ablations                                                           *)
(* ================================================================== *)

let ablation () =
  hr "Ablations — the design choices DESIGN.md calls out";
  (* 1. greedy vs naive atom order in the join engine *)
  let schema = Schema.make [ Schema.relation "E" [ Schema.attribute "s"; Schema.attribute "d" ] ] in
  let d =
    Database.of_list schema
      [ ("E", Relation.of_int_rows (List.init 120 (fun i -> [ i mod 40; (i * 7) mod 40 ]))) ]
  in
  let atoms =
    [
      Atom.make "E" [ v "a"; v "b" ];
      Atom.make "E" [ v "b"; v "c" ];
      Atom.make "E" [ v "c"; Term.int 1 ];
    ]
  in
  let lookup r = try Database.relation d r with Not_found -> Relation.empty in
  let count naive =
    let n = ref 0 in
    let (_ : bool) =
      Match_engine.solve ~lookup ~naive atoms (fun _ ->
          incr n;
          false)
    in
    !n
  in
  let (n1, t_greedy) = time (fun () -> count false) in
  let (n2, t_naive) = time (fun () -> count true) in
  assert (n1 = n2);
  Printf.printf
    "  join engine : greedy order + hash index %.1f µs vs naive scan %.1f µs (same %d \
     matches, %.1fx)\n"
    (1e6 *. t_greedy) (1e6 *. t_naive) n1 (t_naive /. (t_greedy +. 1e-9));
  (* 2. semi-naive vs naive datalog *)
  let chain n =
    Database.of_list schema
      [ ("E", Relation.of_int_rows (List.init n (fun k -> [ k; k + 1 ]))) ]
  in
  let tc = Datalog.transitive_closure ~edge:"E" ~out:"tc" in
  let d = chain 60 in
  let (_, t_semi) = time (fun () -> Datalog.eval ~strategy:Datalog.Seminaive d tc) in
  let (_, t_naive) = time (fun () -> Datalog.eval ~strategy:Datalog.Naive d tc) in
  Printf.printf "  datalog     : semi-naive %.1f ms vs naive %.1f ms on a 60-chain (%.1fx)\n"
    (1e3 *. t_semi) (1e3 *. t_naive) (t_naive /. (t_semi +. 1e-9));
  (* 3. IND fast path (condition C3) vs generic check (condition C2) *)
  let fe = Sat.random_fe ~seed:5 ~n_forall:2 ~n_exists:2 ~n_clauses:3 in
  let inst = Rcdp_hardness.of_fe fe in
  let (r1, t_fast) = time (fun () -> Rcdp_hardness.decide ~ind_fast:true inst) in
  let (r2, t_slow) = time (fun () -> Rcdp_hardness.decide ~ind_fast:false inst) in
  assert (r1 = r2);
  Printf.printf "  C3 vs C2    : IND fast path %.1f ms vs generic %.1f ms (%.1fx)\n"
    (1e3 *. t_fast) (1e3 *. t_slow) (t_slow /. (t_fast +. 1e-9));
  (* 4. query minimization before the RCDP search *)
  let master = Crm.master ~customers:4 ~managers:[] () in
  let db = Crm.db ~master ~keep:1.0 ~supported_by:[ ("e0", [ "d0" ]) ] () in
  let redundant =
    (* Q0 with two redundant copies of the Cust atom: 9 variables
       instead of 3 before minimization *)
    Cq.make
      ~head:[ v "c"; v "n" ]
      [
        Atom.make "Cust" [ v "c"; v "n"; Term.str "01"; Term.str "908"; v "p" ];
        Atom.make "Cust" [ v "c"; v "n2"; Term.str "01"; Term.str "908"; v "p2" ];
        Atom.make "Cust" [ v "c"; v "n3"; Term.str "01"; Term.str "908"; v "p3" ];
      ]
  in
  let run minimize =
    Rcdp.decide ~minimize ~schema:Crm.db_schema ~master ~ccs:[ Crm.cc_domestic_customers ]
      ~db (Lang.Q_cq redundant)
  in
  let (r1, t_min) = time (fun () -> run true) in
  let (r2, t_raw) = time (fun () -> run false) in
  assert ((r1 = Rcdp.Complete) = (r2 = Rcdp.Complete));
  Printf.printf
    "  minimization: core-first %.1f ms vs raw 9-variable query %.1f ms (%.1fx)\n"
    (1e3 *. t_min) (1e3 *. t_raw) (t_raw /. (t_min +. 1e-9));
  (* 5. pruning effectiveness in the RCDP search (a complete-case
     verdict, so the search exhausts the space) *)
  let stats = ref { Rcdp.valuations_visited = 0; branches_pruned = 0 } in
  ignore
    (Rcdp.decide ~collect_stats:stats ~schema:Crm.db_schema ~master
       ~ccs:[ Crm.cc_domestic_customers ] ~db (Lang.Q_cq Crm.q0));
  Printf.printf
    "  C2 pruning  : %d leaves visited, %d subtrees pruned by incremental CC checks\n"
    !stats.Rcdp.valuations_visited !stats.Rcdp.branches_pruned

(* ================================================================== *)
(* Bechamel micro-benchmarks                                           *)
(* ================================================================== *)

let micro () =
  hr "Micro-benchmarks (bechamel; one group per table)";
  let open Bechamel in
  (* Table-I flavoured core operation: one Σ₂ᵖ RCDP decision *)
  let fe = Sat.random_fe ~seed:1 ~n_forall:1 ~n_exists:1 ~n_clauses:2 in
  let rcdp_inst = Rcdp_hardness.of_fe fe in
  let t_table1 =
    Test.make ~name:"table1/rcdp-sigma2p"
      (Staged.stage (fun () -> ignore (Rcdp_hardness.decide rcdp_inst)))
  in
  (* Table-II flavoured core operation: one coNP RCQP decision *)
  let cnf = Sat.random_cnf ~seed:1 ~n_vars:2 ~n_clauses:3 in
  let rcqp_inst = Rcqp_hardness.of_cnf cnf in
  let t_table2 =
    Test.make ~name:"table2/rcqp-conp"
      (Staged.stage (fun () -> ignore (Rcqp_hardness.decide rcqp_inst)))
  in
  (* substrate micro-benchmarks *)
  let schema = Schema.make [ Schema.relation "E" [ Schema.attribute "s"; Schema.attribute "d" ] ] in
  let d =
    Database.of_list schema
      [ ("E", Relation.of_int_rows (List.init 60 (fun i -> [ i mod 20; (i * 3) mod 20 ]))) ]
  in
  let q2hop =
    Cq.make ~head:[ v "x"; v "z" ]
      [ Atom.make "E" [ v "x"; v "y" ]; Atom.make "E" [ v "y"; v "z" ] ]
  in
  let t_cq = Test.make ~name:"substrate/cq-2hop-join" (Staged.stage (fun () -> ignore (Cq.eval d q2hop))) in
  let tc = Datalog.transitive_closure ~edge:"E" ~out:"tc" in
  let t_fp = Test.make ~name:"substrate/datalog-tc" (Staged.stage (fun () -> ignore (Datalog.eval d tc))) in
  let tests = Test.make_grouped ~name:"ric" [ t_table1; t_table2; t_cq; t_fp ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    (List.sort compare rows)

(* ================================================================== *)
(* Search modes: seq vs inc vs par                                     *)
(* ================================================================== *)

(* One machine-readable artefact, BENCH_search.json: fixed-step-budget
   throughput of the three valuation-search strategies on the hostile
   scenarios/hard.ric instance (every mode performs the same number of
   search steps, so steps-per-second isolates the per-candidate
   constraint-checking cost the incremental checker removes), plus a
   verdict-agreement sweep over every scenario file — the strategies
   must be distinguishable only by speed, never by verdict. *)

let search_bench () =
  hr "Search modes (seq / inc / par) on scenarios/hard.ric";
  let module Scenario = Ric_text.Scenario in
  let module Json = Ric_text.Json in
  let dir =
    (* repo root when run via `dune exec bench/main.exe`; the _build
       fallback covers runs from inside the build tree *)
    if Sys.file_exists "scenarios" then "scenarios" else "../../../scenarios"
  in
  let step_cap =
    match Sys.getenv_opt "RIC_BENCH_STEPS" with
    | Some s -> (try int_of_string (String.trim s) with Failure _ -> 400_000)
    | None -> 400_000
  in
  let modes = [ Search_mode.Seq; Search_mode.Inc; Search_mode.Par 4 ] in
  let decide_labelled ~clock ~search (s : Scenario.t) q =
    match
      Rcdp.decide ~clock ~search ~schema:s.Scenario.db_schema ~master:s.Scenario.master
        ~ccs:(Scenario.all_ccs s) ~db:s.Scenario.db q
    with
    | Rcdp.Complete -> "complete"
    | Rcdp.Incomplete _ -> "incomplete"
    | exception Rcdp.Unsupported _ -> "unsupported"
    | exception Rcdp.Not_partially_closed _ -> "not_partially_closed"
    | exception Budget.Exhausted reason -> "timeout:" ^ Budget.reason_name reason
  in
  (* throughput on the hostile instance *)
  let hard = Scenario.load (Filename.concat dir "hard.ric") in
  let qh =
    match Scenario.find_query hard "QH" with
    | Some q -> q
    | None -> failwith "hard.ric has no query QH"
  in
  (* interleaved best-of-five: steps/s feeds the check.sh regression
     guard and the par-vs-seq gate, and both compare modes measured by
     the same bench run — so each round times every mode once and the
     per-mode best is taken across rounds.  Back-to-back repeats would
     let one transient load spike sink whichever mode's window it hit;
     interleaving spreads it over all of them.  Each mode also records
     how often the interning mutex was taken per million search steps
     — the lock-free fast path's headline number (the acceptance bar
     is a >= 10x reduction in par mode vs the old per-row locking,
     which took the mutex on every step). *)
  let run_once mode =
    let locks0 = Intern.lock_acquisitions () in
    let clock = Budget.create ~max_steps:step_cap () in
    let (label, secs) =
      time (fun () -> decide_labelled ~clock ~search:mode hard qh)
    in
    (label, Budget.steps clock, secs, Intern.lock_acquisitions () - locks0)
  in
  ignore (run_once Search_mode.Seq) (* warm-up: page in scenario + code *);
  let table = List.map (fun m -> (m, ref None, ref 0, ref 0)) modes in
  (* the par-vs-seq gate compares the two modes within the same round
     (measurements seconds apart) and keeps the best round: run-to-run
     load on a shared host swings absolute steps/s by ~10%, which would
     drown the 5% gate, while a real coordination regression shows up
     in every round *)
  let pair_ratio = ref 0.0 in
  for _ = 1 to 5 do
    let sps_now =
      List.map
        (fun (m, best, locks, steps_sum) ->
          let (label, steps, secs, lock_acq) = run_once m in
          locks := !locks + lock_acq;
          steps_sum := !steps_sum + steps;
          (match !best with
          | Some (_, _, best_secs) when best_secs <= secs -> ()
          | _ -> best := Some (label, steps, secs));
          (m, float_of_int steps /. (secs +. 1e-9)))
        table
    in
    match
      ( List.assoc_opt Search_mode.Seq sps_now,
        List.assoc_opt (Search_mode.Par 4) sps_now )
    with
    | Some s, Some p when s > 0. -> pair_ratio := Float.max !pair_ratio (p /. s)
    | _ -> ()
  done;
  let runs =
    List.map
      (fun (m, best, locks, steps_sum) ->
        let (label, steps, secs) = Option.get !best in
        let lock_per_msteps =
          1e6 *. float_of_int !locks /. float_of_int (max 1 !steps_sum)
        in
        let sps = float_of_int steps /. (secs +. 1e-9) in
        Printf.printf
          "  %-6s %-22s %9d steps in %7.1f ms  (%10.0f steps/s, %.2f intern \
           locks/Msteps)\n"
          (Search_mode.to_string m) label steps (1e3 *. secs) sps
          lock_per_msteps;
        (m, label, steps, secs, sps, lock_per_msteps))
      table
  in
  let sps_of m =
    match List.find_opt (fun (m', _, _, _, _, _) -> m' = m) runs with
    | Some (_, _, _, _, sps, _) -> sps
    | None -> nan
  in
  let speedup m = sps_of m /. sps_of Search_mode.Seq in
  Printf.printf "  speedup vs seq: inc %.2fx, par:4 %.2fx (best paired round %.2fx)\n"
    (speedup Search_mode.Inc) (speedup (Search_mode.Par 4)) !pair_ratio;
  (* scaling sweep: RIC_SEARCH_FORCE_WORKERS un-clamps the worker count
     so par:N really spawns N domains even on a small host.  On a
     1-core box wall clock cannot scale — what the sweep asserts is
     that the frontier works: steals happen (tasks cross workers) and
     every worker executes steps (utilisation), recorded per N for the
     check.sh gate and EXPERIMENTS.  Exits nonzero if a forced
     multi-worker run steals nothing — that means the frontier
     degenerated to one sequential branch. *)
  let m_steals =
    Ric_obs.Metrics.counter
      ~help:"frontier tasks popped by a worker other than their producer"
      "ric_search_steal_total"
  in
  let m_worker_steps w =
    Ric_obs.Metrics.counter
      ~help:"search steps executed per parallel worker (utilisation)"
      ~labels:[ ("worker", string_of_int w) ]
      "ric_search_worker_steps_total"
  in
  let steal_gate_failed = ref false in
  let scaling =
    List.map
      (fun w ->
        Unix.putenv "RIC_SEARCH_FORCE_WORKERS" (string_of_int w);
        let steals0 = Ric_obs.Metrics.counter_value m_steals in
        let per_worker0 =
          List.init w (fun i -> Ric_obs.Metrics.counter_value (m_worker_steps i))
        in
        let clock = Budget.create ~max_steps:step_cap () in
        let (label, secs) =
          time (fun () ->
            decide_labelled ~clock ~search:(Search_mode.Par w) hard qh)
        in
        Unix.putenv "RIC_SEARCH_FORCE_WORKERS" "";
        let steps = Budget.steps clock in
        let sps = float_of_int steps /. (secs +. 1e-9) in
        let steals = Ric_obs.Metrics.counter_value m_steals - steals0 in
        let per_worker =
          List.mapi
            (fun i v0 -> Ric_obs.Metrics.counter_value (m_worker_steps i) - v0)
            per_worker0
        in
        let busy = List.length (List.filter (fun s -> s > 0) per_worker) in
        if w > 1 && steals = 0 then begin
          steal_gate_failed := true;
          Printf.printf
            "  STEAL GATE: par:%d with forced workers performed 0 steals\n" w
        end;
        Printf.printf
          "  par:%d forced %-22s %9d steps (%10.0f steps/s) steals %d, \
           workers busy %d/%d [%s]\n"
          w label steps sps steals busy w
          (String.concat " " (List.map string_of_int per_worker));
        Json.Obj
          [
            ("workers", Json.Int w);
            ("verdict", Json.Str label);
            ("steps", Json.Int steps);
            ("steps_per_sec", Json.Int (int_of_float sps));
            ("steals", Json.Int steals);
            ("workers_busy", Json.Int busy);
            ("worker_steps", Json.List (List.map (fun s -> Json.Int s) per_worker));
          ])
      [ 1; 2; 4 ]
  in
  (* verdict agreement across every scenario file and query *)
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ric")
    |> List.sort compare
  in
  let all_agree = ref true in
  let agreement =
    List.concat_map
      (fun file ->
        let s = Scenario.load (Filename.concat dir file) in
        List.map
          (fun (qname, q) ->
            let labels =
              List.map
                (fun mode ->
                  let clock = Budget.create ~max_steps:step_cap () in
                  decide_labelled ~clock ~search:mode s q)
                modes
            in
            let agree =
              match labels with [] -> true | l :: rest -> List.for_all (( = ) l) rest
            in
            if not agree then begin
              all_agree := false;
              Printf.printf "  DIVERGENCE %s/%s: %s\n" file qname
                (String.concat " vs " labels)
            end;
            Json.Obj
              [
                ("scenario", Json.Str file);
                ("query", Json.Str qname);
                ("verdicts", Json.List (List.map (fun l -> Json.Str l) labels));
                ("agree", Json.Bool agree);
              ])
          s.Scenario.queries)
      files
  in
  Printf.printf "  verdict agreement over %d scenario queries: %s\n"
    (List.length agreement) (if !all_agree then "OK" else "FAILED");
  let json =
    Json.Obj
      [
        ("bench", Json.Str "search_modes");
        ("scenario", Json.Str "scenarios/hard.ric");
        ("query", Json.Str "QH");
        ("step_cap", Json.Int step_cap);
        ( "modes",
          Json.List
            (List.map
               (fun (mode, label, steps, secs, sps, lock_per_msteps) ->
                 Json.Obj
                   [
                     ("mode", Json.Str (Search_mode.to_string mode));
                     ("verdict", Json.Str label);
                     ("steps", Json.Int steps);
                     ("elapsed_ms", Json.Int (int_of_float (1e3 *. secs)));
                     ("steps_per_sec", Json.Int (int_of_float sps));
                     ( "intern_lock_acq_per_msteps",
                       Json.Str (Printf.sprintf "%.2f" lock_per_msteps) );
                   ])
               runs) );
        ("speedup_inc_vs_seq", Json.Str (Printf.sprintf "%.2f" (speedup Search_mode.Inc)));
        ("speedup_par_vs_seq", Json.Str (Printf.sprintf "%.2f" (speedup (Search_mode.Par 4))));
        ( "par_vs_seq_best_round_ratio_pct",
          Json.Int (int_of_float (100. *. !pair_ratio)) );
        ("scaling", Json.List scaling);
        ("agreement", Json.List agreement);
        ("all_agree", Json.Bool !all_agree);
      ]
  in
  let out = Sys.getenv_opt "RIC_BENCH_OUT" |> Option.value ~default:"BENCH_search.json" in
  let oc = open_out out in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out;
  if not !all_agree then exit 1;
  if !steal_gate_failed then exit 1

(* ================================================================== *)
(* Match kernel microbench                                             *)
(* ================================================================== *)

(* BENCH_match.json: throughput of the compiled slot-addressed kernel
   against the interpreted naive oracle on a fixed three-atom join
   with an inequality, plus interning and index-reuse statistics.  The
   two engines must agree on the solution count (a live differential,
   not just a speed report), and check.sh guards the compiled solves/s
   against the committed baseline. *)

let match_bench () =
  hr "Match kernel: compiled vs naive solve (three-atom join)";
  let module Json = Ric_text.Json in
  let module Metrics = Ric_obs.Metrics in
  let n =
    match Sys.getenv_opt "RIC_BENCH_MATCH_ROWS" with
    | Some s -> (try int_of_string (String.trim s) with Failure _ -> 60)
    | None -> 60
  in
  let sch =
    Schema.make
      [
        Schema.relation "E" [ Schema.attribute "src"; Schema.attribute "dst" ];
        Schema.relation "L" [ Schema.attribute "x" ];
      ]
  in
  (* sparse ring with chords, labels on every third node: small enough
     that the full-scan oracle terminates, joined enough that index
     probes matter *)
  let db =
    let add db rel vals =
      Database.add_tuple db rel (Tuple.make (List.map Value.int vals))
    in
    let db = ref (Database.empty sch) in
    for i = 0 to n - 1 do
      db := add !db "E" [ i; (i + 1) mod n ];
      db := add !db "E" [ i; ((i * 7) + 3) mod n ];
      if i mod 3 = 0 then db := add !db "L" [ i ]
    done;
    !db
  in
  let atoms =
    [
      Atom.make "E" [ v "x"; v "y" ];
      Atom.make "E" [ v "y"; v "z" ];
      Atom.make "L" [ v "z" ];
    ]
  in
  let neqs = [ (v "x", v "z") ] in
  let lookup rel = Database.relation db rel in
  let store = Kernel.Store.create () in
  let solutions naive =
    let c = ref 0 in
    let (_ : bool) =
      Match_engine.solve ~lookup ~neqs ~naive ~store atoms (fun _ ->
          incr c;
          false)
    in
    !c
  in
  let naive_count = solutions true in
  let compiled_count = solutions false in
  Printf.printf "  instance: E %d rows, L %d rows, %d solutions\n"
    (Relation.cardinal (Database.relation db "E"))
    (Relation.cardinal (Database.relation db "L"))
    compiled_count;
  if naive_count <> compiled_count then begin
    Printf.printf "  DIVERGENCE: naive %d vs compiled %d solutions\n"
      naive_count compiled_count;
    exit 1
  end;
  (* solves/s, best of three timed loops calibrated to >= ~0.15 s *)
  let rate f =
    let (_, once) = time f in
    let iters = max 3 (int_of_float (0.15 /. (once +. 1e-9)) + 1) in
    let best = ref 0.0 in
    for _ = 1 to 3 do
      let (), secs =
        time (fun () ->
            for _ = 1 to iters do
              ignore (f ())
            done)
      in
      best := Float.max !best (float_of_int iters /. (secs +. 1e-9))
    done;
    !best
  in
  let naive_sps = rate (fun () -> solutions true) in
  let compiled_sps = rate (fun () -> solutions false) in
  let speedup = compiled_sps /. naive_sps in
  let builds = Metrics.counter "ric_match_index_builds_total" in
  let reuses = Metrics.counter "ric_match_index_reuses_total" in
  Printf.printf "  naive    %12.0f solves/s\n" naive_sps;
  Printf.printf "  compiled %12.0f solves/s  (%.1fx)\n" compiled_sps speedup;
  Printf.printf "  intern entries %d, index builds %d, reuses %d\n"
    (Intern.size ())
    (Metrics.counter_value builds)
    (Metrics.counter_value reuses);
  if speedup < 1.0 then begin
    Printf.printf "  FAIL: compiled kernel slower than the naive oracle\n";
    exit 1
  end;
  let json =
    Json.Obj
      [
        ("bench", Json.Str "match_kernel");
        ("ring_size", Json.Int n);
        ("e_rows", Json.Int (Relation.cardinal (Database.relation db "E")));
        ("l_rows", Json.Int (Relation.cardinal (Database.relation db "L")));
        ("solutions", Json.Int compiled_count);
        ("naive_solves_per_sec", Json.Int (int_of_float naive_sps));
        ("compiled_solves_per_sec", Json.Int (int_of_float compiled_sps));
        ("speedup", Json.Str (Printf.sprintf "%.2f" speedup));
        ("intern_entries", Json.Int (Intern.size ()));
        ("index_builds", Json.Int (Metrics.counter_value builds));
        ("index_reuses", Json.Int (Metrics.counter_value reuses));
      ]
  in
  let out =
    Sys.getenv_opt "RIC_BENCH_MATCH_OUT"
    |> Option.value ~default:"BENCH_match.json"
  in
  let oc = open_out out in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out

(* ================================================================== *)
(* Constraint mining                                                   *)
(* ================================================================== *)

(* BENCH_mine.json: throughput of the mining pipeline (enumerate →
   prune → kernel-score → accept) on the crm and supply_chain
   scenarios, sequential scoring vs pool-parallel.  The two modes must
   accept the same constraint set (a live differential, not just a
   speed report), and check.sh guards the sequential candidates/s
   against the committed baseline.  On a single-core host the parallel
   figure records pool overhead rather than a win — that is the honest
   number. *)

let mine_bench () =
  hr "Constraint mining: candidates/s (seq vs pool-parallel)";
  let module Json = Ric_text.Json in
  let module Mine = Ric_mining.Mine in
  let dir =
    if Sys.file_exists "scenarios" then "scenarios" else "../../../scenarios"
  in
  let par_workers = 2 in
  let bench_one file =
    let s = Ric_text.Scenario.load (Filename.concat dir file) in
    let open Ric_text.Scenario in
    let run workers =
      Mine.run
        ~config:{ Mine.default with Mine.workers }
        ~db_schema:s.db_schema ~master_schema:s.master_schema ~db:s.db
        ~master:s.master ()
    in
    let keys (r : Mine.result) =
      List.map
        (fun sc -> sc.Ric_mining.Score.candidate.Ric_mining.Enumerate.key)
        r.Mine.accepted_scored
    in
    let seq_r = run 1 in
    let par_r = run par_workers in
    if keys seq_r <> keys par_r then begin
      Printf.printf "  DIVERGENCE on %s: seq accepted %d vs par accepted %d\n"
        file
        (List.length seq_r.Mine.accepted)
        (List.length par_r.Mine.accepted);
      exit 1
    end;
    let enumerated = seq_r.Mine.stats.Mine.enumerated in
    let rate workers =
      let best = ref 0.0 in
      for _ = 1 to 3 do
        let (_ : Mine.result), secs = time (fun () -> run workers) in
        best := Float.max !best (float_of_int enumerated /. (secs +. 1e-9))
      done;
      !best
    in
    let seq_cps = rate 1 in
    let par_cps = rate par_workers in
    Printf.printf "  %-18s %6d candidates, %3d accepted\n" file enumerated
      seq_r.Mine.stats.Mine.accepted;
    Printf.printf "    seq        %12.0f candidates/s\n" seq_cps;
    Printf.printf "    par (w=%d)  %12.0f candidates/s  (%.2fx)\n" par_workers
      par_cps (par_cps /. seq_cps);
    Json.Obj
      [
        ("scenario", Json.Str file);
        ("enumerated", Json.Int enumerated);
        ("accepted", Json.Int seq_r.Mine.stats.Mine.accepted);
        ("seq_candidates_per_sec", Json.Int (int_of_float seq_cps));
        ("par_candidates_per_sec", Json.Int (int_of_float par_cps));
        ("par_workers", Json.Int par_workers);
        ("speedup", Json.Str (Printf.sprintf "%.2f" (par_cps /. seq_cps)));
      ]
  in
  let rows = List.map bench_one [ "crm.ric"; "supply_chain.ric" ] in
  let json = Json.Obj [ ("bench", Json.Str "mine"); ("scenarios", Json.List rows) ] in
  let out =
    Sys.getenv_opt "RIC_BENCH_MINE_OUT" |> Option.value ~default:"BENCH_mine.json"
  in
  let oc = open_out out in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out

(* ================================================================== *)
(* Ingest: streaming columnar loader vs slurp baseline                 *)
(* ================================================================== *)

(* BENCH_load.json: parse throughput of the streaming columnar .ric
   loader over a ladder of generated master-data files, against the
   pre-streaming slurp-and-fold baseline.  A live differential — both
   loaders must build equal databases on every rung — plus peak RSS
   (VmHWM).  VmHWM is a process-lifetime high-water mark, so the top
   rung streams {e first}, before anything slurps a file whole: the
   peak it reports is the streaming path's own.  check.sh guards the
   headline stream_tuples_per_sec against the committed baseline. *)

let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let rec go () =
      match input_line ic with
      | exception End_of_file -> 0
      | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:" ->
        (try
           Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d"
             (fun kb -> kb)
         with Scanf.Scan_failure _ | Failure _ | End_of_file -> 0)
      | _ -> go ()
    in
    let kb = go () in
    close_in_noerr ic;
    kb

let load_bench () =
  hr "Ingest: streaming columnar loader vs slurp baseline (generated .ric)";
  let module Json = Ric_text.Json in
  let module Scenario = Ric_text.Scenario in
  let top =
    match Sys.getenv_opt "RIC_BENCH_LOAD_TUPLES" with
    | Some s ->
      (try max 1000 (int_of_string (String.trim s)) with Failure _ -> 1_000_000)
    | None -> 1_000_000
  in
  let top = min top Gen.max_tuples in
  let rungs = top :: List.filter (fun n -> n < top) [ 100_000; 10_000 ] in
  let seed = 7 in
  let gen_file tuples =
    let path = Filename.temp_file "ric_bench_load" ".ric" in
    let oc = open_out path in
    Gen.emit Gen.Triple ~tuples ~seed ~rung:1 (output_string oc);
    close_out oc;
    path
  in
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in_noerr ic;
    s
  in
  let headline = ref (0., 0., 0) (* stream sps, slurp sps, vmhwm kB *) in
  let rung_rows =
    List.map
      (fun tuples ->
        let path = gen_file tuples in
        let rows = Gen.total_rows Gen.Triple ~tuples in
        let is_top = tuples = top in
        (* pre-size the interning structures once: a reserved bulk load
           should never grow them mid-stream *)
        if is_top then Intern.reserve (Intern.size () + (tuples / 10) + 64);
        let growths0 = Intern.growths () in
        let (stream_sc, stream_secs) = time (fun () -> Scenario.load path) in
        let growths = Intern.growths () - growths0 in
        let vmhwm = vm_hwm_kb () in
        let stream_sps = float_of_int rows /. (stream_secs +. 1e-9) in
        (* index build straight off the packed arrays (no re-interning) *)
        let ((_ : Rix.t), rix_secs) =
          time (fun () -> Rix.build (Database.relation stream_sc.Scenario.db "T"))
        in
        (* interner throughput: 3 data cells per T row, 1 per MEnt row *)
        let cells = (3 * tuples) + (rows - tuples) in
        let intern_cps = float_of_int cells /. (stream_secs +. 1e-9) in
        (* slurp baseline + live differential *)
        let src = read_file path in
        let (slurp_sc, slurp_secs) = time (fun () -> Scenario.parse_slurp src) in
        let slurp_sps = float_of_int rows /. (slurp_secs +. 1e-9) in
        if
          not
            (Database.equal stream_sc.Scenario.db slurp_sc.Scenario.db
            && Database.equal stream_sc.Scenario.master slurp_sc.Scenario.master)
        then begin
          Printf.printf
            "  DIVERGENCE at %d tuples: streaming and slurp databases differ\n"
            tuples;
          exit 1
        end;
        (try Sys.remove path with Sys_error _ -> ());
        let speedup = stream_sps /. (slurp_sps +. 1e-9) in
        Printf.printf
          "  %8d tuples : stream %9.0f t/s  slurp %9.0f t/s  (%4.1fx)  rix \
           %6.1f ms  growths %d  VmHWM %d kB\n"
          tuples stream_sps slurp_sps speedup (1e3 *. rix_secs) growths vmhwm;
        if is_top then headline := (stream_sps, slurp_sps, vmhwm);
        Json.Obj
          [
            ("tuples", Json.Int tuples);
            ("rows", Json.Int rows);
            ("stream_tuples_per_sec", Json.Int (int_of_float stream_sps));
            ("slurp_tuples_per_sec", Json.Int (int_of_float slurp_sps));
            ("speedup", Json.Str (Printf.sprintf "%.2f" speedup));
            ("intern_cells_per_sec", Json.Int (int_of_float intern_cps));
            ("rix_build_ms", Json.Int (int_of_float (1e3 *. rix_secs)));
            ("intern_growths", Json.Int growths);
            ("vmhwm_kb", Json.Int vmhwm);
            ("databases_equal", Json.Bool true);
          ])
      rungs
  in
  let (stream_sps, slurp_sps, vmhwm) = !headline in
  let speedup = stream_sps /. (slurp_sps +. 1e-9) in
  Printf.printf
    "  headline (%d tuples): stream %.0f t/s vs slurp %.0f t/s — %.1fx, peak \
     RSS %d kB\n"
    top stream_sps slurp_sps speedup vmhwm;
  let json =
    Json.Obj
      [
        ("bench", Json.Str "load");
        ("family", Json.Str "triple");
        ("seed", Json.Int seed);
        ("top_tuples", Json.Int top);
        ("rungs", Json.List rung_rows);
        ("stream_tuples_per_sec", Json.Int (int_of_float stream_sps));
        ("slurp_tuples_per_sec", Json.Int (int_of_float slurp_sps));
        ("speedup", Json.Str (Printf.sprintf "%.2f" speedup));
        ("vmhwm_kb", Json.Int vmhwm);
        ("intern_entries", Json.Int (Intern.size ()));
      ]
  in
  let out =
    Sys.getenv_opt "RIC_BENCH_LOAD_OUT"
    |> Option.value ~default:"BENCH_load.json"
  in
  let oc = open_out out in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n" out

(* ================================================================== *)
(* Instrumentation overhead                                            *)
(* ================================================================== *)

(* The observability layer's contract is zero cost when disabled:
   counters fold in per decide, spans are no-ops without a sink.  This
   section measures seq steps/s on the hostile instance with tracing
   off and with a live JSONL sink, reporting the overhead the check.sh
   bench guard keeps honest (EXPERIMENTS.md, instrumentation row). *)

let obs_bench () =
  hr "Instrumentation overhead (seq decide on scenarios/hard.ric)";
  let module Scenario = Ric_text.Scenario in
  let dir =
    if Sys.file_exists "scenarios" then "scenarios" else "../../../scenarios"
  in
  let step_cap =
    match Sys.getenv_opt "RIC_BENCH_STEPS" with
    | Some s -> (try int_of_string (String.trim s) with Failure _ -> 400_000)
    | None -> 400_000
  in
  let hard = Scenario.load (Filename.concat dir "hard.ric") in
  let qh =
    match Scenario.find_query hard "QH" with
    | Some q -> q
    | None -> failwith "hard.ric has no query QH"
  in
  let run () =
    let clock = Budget.create ~max_steps:step_cap () in
    let ((), secs) =
      time (fun () ->
          try
            ignore
              (Rcdp.decide ~clock ~schema:hard.Scenario.db_schema
                 ~master:hard.Scenario.master ~ccs:(Scenario.all_ccs hard)
                 ~db:hard.Scenario.db qh)
          with Budget.Exhausted _ -> ())
    in
    float_of_int (Budget.steps clock) /. (secs +. 1e-9)
  in
  ignore (run ()) (* warm-up *);
  let best f = List.fold_left (fun acc _ -> Float.max acc (f ())) 0. [ 1; 2; 3 ] in
  let off = best run in
  let trace_file = Filename.temp_file "ric_bench_obs" ".jsonl" in
  Ric_obs.Trace.open_file trace_file;
  let on = best run in
  Ric_obs.Trace.close ();
  let spans = Ric_text.Trace_summary.load trace_file in
  (try Sys.remove trace_file with Sys_error _ -> ());
  let overhead_pct = 100. *. (1. -. (on /. off)) in
  Printf.printf "  tracing off %10.0f steps/s\n" off;
  Printf.printf "  tracing on  %10.0f steps/s  (%d spans written)\n" on
    (List.length spans.Ric_text.Trace_summary.spans);
  Printf.printf "  overhead    %9.1f%%\n" overhead_pct

let () =
  let sections =
    [
      ("table1", table1);
      ("table2", table2);
      ("prop21", prop21);
      ("chars", chars);
      ("ablation", ablation);
      ("micro", micro);
      ("search", search_bench);
      ("match", match_bench);
      ("mine", mine_bench);
      ("load", load_bench);
      ("obs", obs_bench);
    ]
  in
  let requested = List.tl (Array.to_list Sys.argv) in
  let to_run =
    if requested = [] then sections
    else
      List.filter (fun (name, _) -> List.mem name requested) sections
  in
  if to_run = [] then begin
    Printf.printf "unknown section(s); available: %s\n"
      (String.concat " " (List.map fst sections));
    exit 1
  end;
  List.iter (fun (_, f) -> f ()) to_run;
  Printf.printf "\nAll requested sections completed.\n"
