(* Service benchmarks: what the ricd daemon buys you.

   Two questions, each measured over a real Unix-domain socket against
   an in-process server:

     cache      — cold vs warm verdicts: how much does the epoch-keyed
                  verdict cache save on repeated RCDP/RCQP requests,
                  and what does an admissible insert cost when the old
                  epoch's entries migrate instead of recomputing?
     throughput — 1 worker domain vs N: aggregate requests/second for
                  concurrent sessions issuing nocache RCDP requests
                  (every request runs the decider, so extra domains
                  translate into real parallel work).

   Run `service.exe cache`, `service.exe throughput`, or no argument
   for both. *)

open Ric_service
module Json = Ric_text.Json

let hr title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') title (String.make 72 '=')

(* a scenario with enough master data that the RCDP search does real
   work: R is bounded by a 12-row master list, only 2 rows present *)
let scenario_source =
  let ids = List.init 12 (fun i -> Printf.sprintf "(m%d, v%d)" i i) in
  Printf.sprintf
    {|
    schema R(k, w).
    schema S(k, t).
    master M(k, w).
    master N(k).
    rows R { (m0, v0) (m1, v1) }.
    rows S { (m0, a) }.
    rows M { %s }.
    rows N { (m0) (m1) (m2) }.
    query QR(k, w) :- R(k, w).
    query QS(k, t) :- S(k, t).
    query QJ(k) :- R(k, w), S(k, t).
    constraint BR(k, w) :- R(k, w) => M[0, 1].
    constraint BS(k) :- S(k, t) => N[0].
  |}
    (String.concat " " ids)

let with_server ~domains f =
  let socket_path =
    Printf.sprintf "%s/ric-bench-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) domains
  in
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let server =
    Domain.spawn (fun () ->
        Server.run
          {
            Server.socket_path;
            domains;
            queue_capacity = 64;
            max_connections = 960;
            read_deadline_s = 10.;
            write_deadline_s = 10.;
            root = None;
            journal = None;
            recover = false;
            search = Ric_complete.Search_mode.Seq;
            metrics = None;
            trace = None;
            flight = None;
          })
  in
  let finish () =
    (try
       Client.with_connection ~retries:40 socket_path (fun c ->
           ignore (Client.rpc c Protocol.Shutdown))
     with _ -> ());
    Domain.join server
  in
  match f socket_path with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let get k j =
  match j with
  | Json.Obj fs -> (
    match List.assoc_opt k fs with
    | Some v -> v
    | None -> failwith (Printf.sprintf "no field %S in %s" k (Json.to_string j)))
  | _ -> failwith "expected an object"

let get_str k j = match get k j with Json.Str s -> s | _ -> failwith "not a string"

let open_session c =
  let r =
    Client.rpc c (Protocol.Open { path = None; source = Some scenario_source; name = None })
  in
  get_str "session" r

let rcdp ?(nocache = false) c session query =
  Client.rpc c
    (Protocol.Rcdp
       {
         session;
         query;
         nocache;
         timeout_ms = None;
         search = None;
         req_id = None;
         explain = false;
       })

(* ------------------------------------------------------------------ *)
(* cache: cold vs warm vs migrated *)

let timed_us f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, (Unix.gettimeofday () -. t0) *. 1e6)

let median xs =
  let a = List.sort compare xs in
  List.nth a (List.length a / 2)

let bench_cache () =
  hr "verdict cache: cold vs warm (round-trip µs, median of 31)";
  with_server ~domains:2 (fun socket_path ->
      Client.with_connection ~retries:40 socket_path (fun c ->
          let warm_reps = 31 in
          Printf.printf "\n%-8s %12s %12s %10s\n" "query" "cold µs" "warm µs" "speedup";
          List.iter
            (fun query ->
              let session = open_session c in
              let _, cold = timed_us (fun () -> rcdp c session query) in
              let warms =
                List.init warm_reps (fun _ -> snd (timed_us (fun () -> rcdp c session query)))
              in
              let warm = median warms in
              Printf.printf "%-8s %12.0f %12.0f %9.1fx\n" query cold warm (cold /. warm))
            [ "QR"; "QS"; "QJ" ];
          (* an admissible insert migrates the cache: the next request
             is still a hit, at the new epoch *)
          let session = open_session c in
          ignore (rcdp c session "QS");
          let ins, ins_us =
            timed_us (fun () ->
                Client.rpc c
                  (Protocol.Insert
                     {
                       session;
                       rel = "R";
                       rows = [ [ Ric_relational.Value.Str "m2"; Ric_relational.Value.Str "v2" ] ];
                     }))
          in
          let after, after_us = timed_us (fun () -> rcdp c session "QS") in
          let cached = match get "cached" after with Json.Bool b -> b | _ -> false in
          Printf.printf
            "\ninsert + cache migration: %.0f µs (%s), next QS request: %.0f µs (%s)\n"
            ins_us
            (Json.to_string (get "cache" ins))
            after_us
            (if cached then "cache hit at new epoch" else "recomputed")))

(* ------------------------------------------------------------------ *)
(* throughput: 1 vs N worker domains *)

let bench_throughput () =
  let requests_per_client = 150 in
  let clients = 4 in
  let available = Stdlib.max 2 (Domain.recommended_domain_count () - 1) in
  hr
    (Printf.sprintf
       "throughput: %d clients x %d nocache RCDP requests, 1 vs %d worker domains"
       clients requests_per_client available);
  Printf.printf
    "\n(recommended_domain_count = %d; on a single core, extra domains can\n\
    \ only add scheduling overhead — the speedup column needs real cores)\n"
    (Domain.recommended_domain_count ());
  let run domains =
    with_server ~domains (fun socket_path ->
        let sessions =
          Client.with_connection ~retries:40 socket_path (fun c ->
              List.init clients (fun _ -> open_session c))
        in
        let t0 = Unix.gettimeofday () in
        let workers =
          List.map
            (fun session ->
              Domain.spawn (fun () ->
                  Client.with_connection socket_path (fun c ->
                      for i = 1 to requests_per_client do
                        let q = [| "QR"; "QS"; "QJ" |].(i mod 3) in
                        ignore (rcdp ~nocache:true c session q)
                      done)))
            sessions
        in
        List.iter Domain.join workers;
        let dt = Unix.gettimeofday () -. t0 in
        float_of_int (clients * requests_per_client) /. dt)
  in
  let one = run 1 in
  let many = run available in
  Printf.printf "\n%-16s %12s\n" "worker domains" "req/s";
  Printf.printf "%-16d %12.0f\n" 1 one;
  Printf.printf "%-16d %12.0f\n" available many;
  Printf.printf "\nscaling: %.2fx with %d domains\n" (many /. one) available

(* ------------------------------------------------------------------ *)
(* soak: overload-resilient serving under hundreds of concurrent
   clients.

   The daemon runs in a *forked* process — its select loop must own
   its fd table, since hundreds of client sockets opened in the same
   process would push the server-side descriptors past FD_SETSIZE.
   The clients are POSIX threads in this process, each looping mixed
   rcdp/rcqp/mine requests through the shed-aware retry path with its
   own circuit breaker, honouring the server's [retry_after_ms] hints.
   After the load phase the harness reads the daemon's overload
   counters, then pipelines a burst of requests and SIGTERMs the
   daemon mid-flight: a graceful drain must answer every one of them
   before the connection closes, and the process must exit 0.

   Knobs (environment):

     RIC_SOAK_CLIENTS   concurrent client threads   (default 200)
     RIC_SOAK_SECONDS   load duration in seconds    (default 3)
     RIC_SOAK_DOMAINS   worker domains in the daemon (default 2)
     RIC_SOAK_QUEUE     admission queue capacity    (default 64)
     RIC_SOAK_OUT       also write the JSON record to this path
     RIC_FAULTS         inherited by the forked daemon (chaos mode)

   The section exits nonzero if the daemon dies or exits uncleanly,
   if a drain-phase request goes unanswered, if client-observed shed
   replies exceed the server's shed counter, or — without RIC_FAULTS —
   if any connection drops without a structured reply. *)

let int_env name default =
  match Sys.getenv_opt name with
  | Some s -> (try int_of_string (String.trim s) with _ -> default)
  | None -> default

let float_env name default =
  match Sys.getenv_opt name with
  | Some s -> (try float_of_string (String.trim s) with _ -> default)
  | None -> default

(* one tally per client thread: no sharing, no locks on the hot path *)
type soak_tally = {
  mutable replies : int;  (* structured replies, shed or served *)
  mutable sheds : int;  (* overloaded replies observed (all attempts) *)
  mutable shed_gave_up : int;  (* retry budget exhausted on a shed *)
  mutable timeouts : int;
  mutable circuit_fast_fails : int;
  mutable reconnects : int;
  mutable protocol_failures : int;  (* dropped/garbled, no structured reply *)
  mutable latencies_us : int list;
}

let fresh_tally () =
  {
    replies = 0;
    sheds = 0;
    shed_gave_up = 0;
    timeouts = 0;
    circuit_fast_fails = 0;
    reconnects = 0;
    protocol_failures = 0;
    latencies_us = [];
  }

let soak_worker ~socket_path ~stop ~seed tally =
  let breaker = Client.Breaker.create ~threshold:10 ~cooldown:0.25 () in
  let conn = ref None in
  let session = ref "" in
  (* a shed reply announces that the server may close this connection
     (it does exactly that when refusing at the connection cap), so a
     subsequent EOF/EPIPE here is a clean reconnect, not a protocol
     violation *)
  let shed_on_conn = ref false in
  let drop_conn () =
    (match !conn with Some c -> Client.close c | None -> ());
    conn := None;
    shed_on_conn := false
  in
  let ensure_conn () =
    match !conn with
    | Some c -> c
    | None ->
      let c = Client.connect ~retries:50 ~receive_timeout:10.0 socket_path in
      conn := Some c;
      c
  in
  let mk_request n =
    if n mod 13 = 0 then
      Protocol.Mine
        {
          session = !session;
          nocache = false;
          timeout_ms = Some 1000;
          min_support = None;
          workers = None;
        }
    else if n mod 5 = 0 then
      Protocol.Rcqp
        {
          session = !session;
          query = "QS";
          nocache = false;
          timeout_ms = Some 1000;
          search = None;
          req_id = None;
          explain = false;
        }
    else
      let q = [| "QR"; "QS"; "QJ" |].(n mod 3) in
      Protocol.Rcdp
        {
          session = !session;
          query = q;
          nocache = n mod 4 = 0;
          timeout_ms = Some 1000;
          search = None;
          req_id = None;
          explain = false;
        }
  in
  (* shed-aware retry, counting every overloaded reply: sleep at least
     the server's hint, give up after a few attempts *)
  let rec attempt k c req =
    if not (Client.Breaker.allow breaker) then raise Client.Circuit_open;
    let r = Client.rpc c req in
    match Protocol.retry_after_ms r with
    | None ->
      Client.Breaker.note_success breaker;
      shed_on_conn := false;
      r
    | Some hint_ms ->
      tally.sheds <- tally.sheds + 1;
      shed_on_conn := true;
      Client.Breaker.note_failure breaker;
      if k >= 4 || Atomic.get stop then begin
        tally.shed_gave_up <- tally.shed_gave_up + 1;
        r
      end
      else begin
        Thread.delay ((float_of_int hint_ms /. 1000.) +. (0.001 *. float_of_int (seed mod 7)));
        attempt (k + 1) c req
      end
  in
  let n = ref seed in
  while not (Atomic.get stop) do
    incr n;
    match
      let c = ensure_conn () in
      (* sessions are server-global, not per-connection: open one per
         thread, lazily, through the same shed-aware retry path, and
         reuse it across reconnects *)
      if !session = "" then begin
        let r =
          attempt 0 c
            (Protocol.Open { path = None; source = Some scenario_source; name = None })
        in
        if Protocol.retry_after_ms r = None then session := get_str "session" r
      end;
      if !session = "" then None (* open kept being shed; try next loop *)
      else begin
        let t0 = Unix.gettimeofday () in
        let r = attempt 0 c (mk_request !n) in
        ignore r;
        Some (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
      end
    with
    | Some us ->
      tally.replies <- tally.replies + 1;
      tally.latencies_us <- us :: tally.latencies_us
    | None -> ()
    | exception Client.Timeout ->
      tally.timeouts <- tally.timeouts + 1;
      tally.reconnects <- tally.reconnects + 1;
      drop_conn ()
    | exception Client.Circuit_open ->
      tally.circuit_fast_fails <- tally.circuit_fast_fails + 1;
      Thread.delay 0.05
    | exception Failure _ ->
      if not !shed_on_conn then
        tally.protocol_failures <- tally.protocol_failures + 1;
      tally.reconnects <- tally.reconnects + 1;
      drop_conn ()
    | exception Unix.Unix_error _ ->
      if not !shed_on_conn then
        tally.protocol_failures <- tally.protocol_failures + 1;
      tally.reconnects <- tally.reconnects + 1;
      drop_conn ()
  done;
  drop_conn ()

let metric_value name stats =
  match get "metrics" stats with
  | Json.List ms ->
    List.fold_left
      (fun acc m ->
        match m with
        | Json.Obj fs when List.assoc_opt "name" fs = Some (Json.Str name) -> (
          match List.assoc_opt "value" fs with Some (Json.Int n) -> acc + n | _ -> acc)
        | _ -> acc)
      0 ms
  | _ -> 0

let percentile_us sorted p =
  let n = Array.length sorted in
  if n = 0 then 0 else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let bench_soak () =
  let clients = int_env "RIC_SOAK_CLIENTS" 200 in
  let seconds = float_env "RIC_SOAK_SECONDS" 3.0 in
  let domains = int_env "RIC_SOAK_DOMAINS" 2 in
  let queue = int_env "RIC_SOAK_QUEUE" 64 in
  let faults = Option.value (Sys.getenv_opt "RIC_FAULTS") ~default:"" in
  hr
    (Printf.sprintf "soak: %d clients x %.0fs, %d worker domain(s), queue %d%s"
       clients seconds domains queue
       (if faults = "" then "" else Printf.sprintf ", faults [%s]" faults));
  let socket_path =
    Printf.sprintf "%s/ric-soak-%d.sock" (Filename.get_temp_dir_name ()) (Unix.getpid ())
  in
  (* the daemon ignores SIGPIPE; this process must too, or a write to
     a connection the server refused at its cap kills the whole soak *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  (* the child inherits stdio buffers: flush so the banner above is not
     printed twice *)
  flush stdout;
  flush stderr;
  let server_pid = Unix.fork () in
  if server_pid = 0 then begin
    (* the daemon: its own process, its own fd table *)
    Server.run
      {
        Server.socket_path;
        domains;
        queue_capacity = queue;
        max_connections = 960;
        read_deadline_s = 10.;
        write_deadline_s = 10.;
        root = None;
        journal = None;
        recover = false;
        search = Ric_complete.Search_mode.Seq;
        metrics = None;
        trace = None;
        flight = None;
      };
    exit 0
  end;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in

  (* -- load phase -------------------------------------------------- *)
  let stop = Atomic.make false in
  let tallies = Array.init clients (fun _ -> fresh_tally ()) in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.mapi
      (fun i tally ->
        Thread.create (fun () -> soak_worker ~socket_path ~stop ~seed:i tally) ())
      tallies
  in
  Unix.sleepf seconds;
  Atomic.set stop true;
  Array.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in

  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let replies = sum (fun t -> t.replies) in
  let sheds = sum (fun t -> t.sheds) in
  let shed_gave_up = sum (fun t -> t.shed_gave_up) in
  let timeouts = sum (fun t -> t.timeouts) in
  let circuit_fast_fails = sum (fun t -> t.circuit_fast_fails) in
  let reconnects = sum (fun t -> t.reconnects) in
  let protocol_failures = sum (fun t -> t.protocol_failures) in
  let latencies =
    Array.of_list (Array.fold_left (fun acc t -> List.rev_append t.latencies_us acc) [] tallies)
  in
  Array.sort compare latencies;
  let p50 = percentile_us latencies 0.50 in
  let p99 = percentile_us latencies 0.99 in
  let throughput = float_of_int replies /. elapsed in

  (* -- the daemon's own overload counters --------------------------- *)
  let shed_total, evicted_total, crashes =
    match
      Client.with_connection ~retries:40 ~receive_timeout:10.0 socket_path (fun c ->
          Client.rpc c Protocol.Stats)
    with
    | stats ->
      let workers = try get "workers" stats with _ -> Json.Obj [] in
      let crashes =
        match workers with
        | Json.Obj fs -> (
          match List.assoc_opt "crashes" fs with Some (Json.Int n) -> n | _ -> 0)
        | _ -> 0
      in
      ( metric_value "ric_server_shed_total" stats,
        metric_value "ric_server_evicted_slow_total" stats,
        crashes )
    | exception e ->
      fail "daemon unreachable after the load phase: %s" (Printexc.to_string e);
      (0, 0, 0)
  in

  (* -- graceful drain under SIGTERM --------------------------------- *)
  let drain_expected = 20 in
  let drain_answered = ref 0 in
  (match
     let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     Unix.connect fd (Unix.ADDR_UNIX socket_path);
     let ping = Json.to_string (Protocol.to_json Protocol.Ping) in
     for _ = 1 to drain_expected do
       Protocol.write_frame fd ping
     done;
     (* let the event loop parse the burst, then pull the plug: the
        admitted jobs must all be answered during the drain *)
     Unix.sleepf 0.3;
     Unix.kill server_pid Sys.sigterm;
     (try
        for _ = 1 to drain_expected do
          match Protocol.read_frame fd with
          | Some _ -> incr drain_answered
          | None -> raise Exit
        done
      with Exit | Protocol.Frame_error _ -> ());
     Unix.close fd
   with
   | () -> ()
   | exception e -> fail "drain phase failed: %s" (Printexc.to_string e));
  let clean_exit =
    match Unix.waitpid [] server_pid with
    | _, Unix.WEXITED 0 -> true
    | _, _ -> false
    | exception Unix.Unix_error _ -> false
  in

  (* -- verdicts ------------------------------------------------------ *)
  if not clean_exit then fail "daemon did not exit cleanly after SIGTERM";
  if !drain_answered <> drain_expected then
    fail "drain answered %d of %d pipelined requests" !drain_answered drain_expected;
  if sheds > shed_total then
    fail "clients saw %d shed replies but the server counted only %d" sheds shed_total;
  if faults = "" && protocol_failures > 0 then
    fail "%d connection(s) dropped without a structured reply" protocol_failures;

  let record =
    Printf.sprintf
      {|{"bench":"serve_soak","clients":%d,"seconds":%g,"domains":%d,"queue":%d,"faults":%S,"replies":%d,"throughput_rps":%d,"p50_us":%d,"p99_us":%d,"sheds":%d,"shed_gave_up":%d,"shed_total":%d,"evicted_total":%d,"timeouts":%d,"circuit_fast_fails":%d,"reconnects":%d,"protocol_failures":%d,"worker_crashes":%d,"drain_answered":%d,"drain_expected":%d,"clean_exit":%b}|}
      clients seconds domains queue faults replies
      (int_of_float throughput) p50 p99 sheds shed_gave_up shed_total evicted_total
      timeouts circuit_fast_fails reconnects protocol_failures crashes !drain_answered
      drain_expected clean_exit
  in
  Printf.printf "\n%-26s %12d\n" "structured replies" replies;
  Printf.printf "%-26s %12.0f\n" "throughput (replies/s)" throughput;
  Printf.printf "%-26s %12.1f\n" "p50 latency (ms)" (float_of_int p50 /. 1000.);
  Printf.printf "%-26s %12.1f\n" "p99 latency (ms)" (float_of_int p99 /. 1000.);
  Printf.printf "%-26s %12d  (server counter: %d; gave up: %d)\n" "shed replies seen" sheds
    shed_total shed_gave_up;
  Printf.printf "%-26s %12d\n" "slow conns evicted" evicted_total;
  Printf.printf "%-26s %12d\n" "client timeouts" timeouts;
  Printf.printf "%-26s %12d\n" "breaker fast-fails" circuit_fast_fails;
  Printf.printf "%-26s %12d\n" "reconnects" reconnects;
  Printf.printf "%-26s %12d\n" "protocol failures" protocol_failures;
  Printf.printf "%-26s %12d\n" "worker crashes" crashes;
  Printf.printf "%-26s %9d/%2d  (clean exit: %b)\n" "drained under SIGTERM" !drain_answered
    drain_expected clean_exit;
  Printf.printf "\n%s\n" record;
  (match Sys.getenv_opt "RIC_SOAK_OUT" with
   | Some path when path <> "" ->
     let oc = open_out path in
     output_string oc record;
     output_char oc '\n';
     close_out oc
   | _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  match List.rev !failures with
  | [] -> Printf.printf "\nsoak: PASS\n"
  | fs ->
    List.iter (fun m -> Printf.eprintf "soak FAIL: %s\n" m) fs;
    exit 1

let () =
  let sections = match Array.to_list Sys.argv with _ :: rest when rest <> [] -> rest | _ -> [ "cache"; "throughput" ] in
  List.iter
    (function
      | "cache" -> bench_cache ()
      | "throughput" -> bench_throughput ()
      | "soak" -> bench_soak ()
      | s ->
        Printf.eprintf "unknown section %S (have: cache, throughput, soak)\n" s;
        exit 2)
    sections
