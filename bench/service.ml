(* Service benchmarks: what the ricd daemon buys you.

   Two questions, each measured over a real Unix-domain socket against
   an in-process server:

     cache      — cold vs warm verdicts: how much does the epoch-keyed
                  verdict cache save on repeated RCDP/RCQP requests,
                  and what does an admissible insert cost when the old
                  epoch's entries migrate instead of recomputing?
     throughput — 1 worker domain vs N: aggregate requests/second for
                  concurrent sessions issuing nocache RCDP requests
                  (every request runs the decider, so extra domains
                  translate into real parallel work).

   Run `service.exe cache`, `service.exe throughput`, or no argument
   for both. *)

open Ric_service
module Json = Ric_text.Json

let hr title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') title (String.make 72 '=')

(* a scenario with enough master data that the RCDP search does real
   work: R is bounded by a 12-row master list, only 2 rows present *)
let scenario_source =
  let ids = List.init 12 (fun i -> Printf.sprintf "(m%d, v%d)" i i) in
  Printf.sprintf
    {|
    schema R(k, w).
    schema S(k, t).
    master M(k, w).
    master N(k).
    rows R { (m0, v0) (m1, v1) }.
    rows S { (m0, a) }.
    rows M { %s }.
    rows N { (m0) (m1) (m2) }.
    query QR(k, w) :- R(k, w).
    query QS(k, t) :- S(k, t).
    query QJ(k) :- R(k, w), S(k, t).
    constraint BR(k, w) :- R(k, w) => M[0, 1].
    constraint BS(k) :- S(k, t) => N[0].
  |}
    (String.concat " " ids)

let with_server ~domains f =
  let socket_path =
    Printf.sprintf "%s/ric-bench-%d-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) domains
  in
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let server =
    Domain.spawn (fun () ->
        Server.run
          {
            Server.socket_path;
            domains;
            queue_capacity = 64;
            root = None;
            journal = None;
            recover = false;
            search = Ric_complete.Search_mode.Seq;
            metrics = None;
            trace = None;
          })
  in
  let finish () =
    (try
       Client.with_connection ~retries:40 socket_path (fun c ->
           ignore (Client.rpc c Protocol.Shutdown))
     with _ -> ());
    Domain.join server
  in
  match f socket_path with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let get k j =
  match j with
  | Json.Obj fs -> (
    match List.assoc_opt k fs with
    | Some v -> v
    | None -> failwith (Printf.sprintf "no field %S in %s" k (Json.to_string j)))
  | _ -> failwith "expected an object"

let get_str k j = match get k j with Json.Str s -> s | _ -> failwith "not a string"

let open_session c =
  let r =
    Client.rpc c (Protocol.Open { path = None; source = Some scenario_source; name = None })
  in
  get_str "session" r

let rcdp ?(nocache = false) c session query =
  Client.rpc c (Protocol.Rcdp { session; query; nocache; timeout_ms = None; search = None })

(* ------------------------------------------------------------------ *)
(* cache: cold vs warm vs migrated *)

let timed_us f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, (Unix.gettimeofday () -. t0) *. 1e6)

let median xs =
  let a = List.sort compare xs in
  List.nth a (List.length a / 2)

let bench_cache () =
  hr "verdict cache: cold vs warm (round-trip µs, median of 31)";
  with_server ~domains:2 (fun socket_path ->
      Client.with_connection ~retries:40 socket_path (fun c ->
          let warm_reps = 31 in
          Printf.printf "\n%-8s %12s %12s %10s\n" "query" "cold µs" "warm µs" "speedup";
          List.iter
            (fun query ->
              let session = open_session c in
              let _, cold = timed_us (fun () -> rcdp c session query) in
              let warms =
                List.init warm_reps (fun _ -> snd (timed_us (fun () -> rcdp c session query)))
              in
              let warm = median warms in
              Printf.printf "%-8s %12.0f %12.0f %9.1fx\n" query cold warm (cold /. warm))
            [ "QR"; "QS"; "QJ" ];
          (* an admissible insert migrates the cache: the next request
             is still a hit, at the new epoch *)
          let session = open_session c in
          ignore (rcdp c session "QS");
          let ins, ins_us =
            timed_us (fun () ->
                Client.rpc c
                  (Protocol.Insert
                     {
                       session;
                       rel = "R";
                       rows = [ [ Ric_relational.Value.Str "m2"; Ric_relational.Value.Str "v2" ] ];
                     }))
          in
          let after, after_us = timed_us (fun () -> rcdp c session "QS") in
          let cached = match get "cached" after with Json.Bool b -> b | _ -> false in
          Printf.printf
            "\ninsert + cache migration: %.0f µs (%s), next QS request: %.0f µs (%s)\n"
            ins_us
            (Json.to_string (get "cache" ins))
            after_us
            (if cached then "cache hit at new epoch" else "recomputed")))

(* ------------------------------------------------------------------ *)
(* throughput: 1 vs N worker domains *)

let bench_throughput () =
  let requests_per_client = 150 in
  let clients = 4 in
  let available = Stdlib.max 2 (Domain.recommended_domain_count () - 1) in
  hr
    (Printf.sprintf
       "throughput: %d clients x %d nocache RCDP requests, 1 vs %d worker domains"
       clients requests_per_client available);
  Printf.printf
    "\n(recommended_domain_count = %d; on a single core, extra domains can\n\
    \ only add scheduling overhead — the speedup column needs real cores)\n"
    (Domain.recommended_domain_count ());
  let run domains =
    with_server ~domains (fun socket_path ->
        let sessions =
          Client.with_connection ~retries:40 socket_path (fun c ->
              List.init clients (fun _ -> open_session c))
        in
        let t0 = Unix.gettimeofday () in
        let workers =
          List.map
            (fun session ->
              Domain.spawn (fun () ->
                  Client.with_connection socket_path (fun c ->
                      for i = 1 to requests_per_client do
                        let q = [| "QR"; "QS"; "QJ" |].(i mod 3) in
                        ignore (rcdp ~nocache:true c session q)
                      done)))
            sessions
        in
        List.iter Domain.join workers;
        let dt = Unix.gettimeofday () -. t0 in
        float_of_int (clients * requests_per_client) /. dt)
  in
  let one = run 1 in
  let many = run available in
  Printf.printf "\n%-16s %12s\n" "worker domains" "req/s";
  Printf.printf "%-16d %12.0f\n" 1 one;
  Printf.printf "%-16d %12.0f\n" available many;
  Printf.printf "\nscaling: %.2fx with %d domains\n" (many /. one) available

let () =
  let sections = match Array.to_list Sys.argv with _ :: rest when rest <> [] -> rest | _ -> [ "cache"; "throughput" ] in
  List.iter
    (function
      | "cache" -> bench_cache ()
      | "throughput" -> bench_throughput ()
      | s ->
        Printf.eprintf "unknown section %S (have: cache, throughput)\n" s;
        exit 2)
    sections
