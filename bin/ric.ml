(* ric — relative information completeness workbench.

   A small CLI over the library: audit the built-in CRM scenario,
   decide RCDP/RCQP for its queries, and run the hardness reductions
   on random instances.  Meant as a demonstrator; programmatic use
   goes through the libraries. *)

open Ric_relational
open Ric_query
open Ric_complete
open Ric_workloads
open Cmdliner

let queries =
  [
    ("q0", `Cq Crm.q0, "domestic area-908 customers");
    ("q0-all", `Cq Crm.q0_all_customers, "every customer incl. international");
    ("q1", `Cq Crm.q1, "area-908 customers supported by e0");
    ("q2", `Cq Crm.q2, "customers supported by e0");
    ("q2-tuples", `Cq Crm.q2_tuples, "full support rows of e0");
    ("q4", `Cq Crm.q4, "support rows of e0 in d0");
    ("q3", `Fp Crm.q3_fp, "everyone above e0 (datalog)");
  ]

let constraint_sets =
  [
    ("domestic", [ Crm.cc_domestic_customers ], "domestic Cust rows bounded by DCust");
    ("supported", [ Crm.cc_supported_domestic ], "supported domestic customers bounded");
    ("fd-dept", Crm.ccs_fd_dept, "FD eid → dept on Supt");
    ("fd-full", Crm.ccs_fd_supt, "FD eid → dept, cid on Supt");
    ("cap3", [ Crm.cc_support_load 3 ], "an employee supports at most 3 customers");
  ]

(* A converter over a keyed catalogue: parses the key straight to its
   value and turns an unknown key into a cmdliner error that lists
   every valid one (instead of the old [invalid_arg] crash). *)
let keyed what assoc =
  let valid () = String.concat ", " (List.map (fun (k, _, _) -> k) assoc) in
  let parse s =
    match List.find_opt (fun (k, _, _) -> String.equal k s) assoc with
    | Some (_, v, _) -> Ok v
    | None ->
      Error (`Msg (Printf.sprintf "unknown %s %s (valid: %s)" what s (valid ())))
  in
  let print ppf _ = Format.fprintf ppf "<%s>" what in
  Arg.conv ~docv:(String.uppercase_ascii what) (parse, print)

let lookup3 assoc k =
  match List.find_opt (fun (k', _, _) -> String.equal k k') assoc with
  | Some (_, v, _) -> v
  | None -> assert false (* keys come from [keyed], already validated *)

let query_arg =
  let doc =
    "Query to analyse: " ^ String.concat ", " (List.map (fun (k, _, d) -> k ^ " (" ^ d ^ ")") queries)
  in
  Arg.(
    value
    & opt (keyed "query" queries) (lookup3 queries "q0")
    & info [ "q"; "query" ] ~doc)

let ccs_arg =
  let doc =
    "Constraint set: "
    ^ String.concat ", " (List.map (fun (k, _, d) -> k ^ " (" ^ d ^ ")") constraint_sets)
  in
  Arg.(
    value
    & opt (keyed "constraint-set" constraint_sets) (lookup3 constraint_sets "domestic")
    & info [ "c"; "constraints" ] ~doc)

let customers_arg =
  Arg.(value & opt int 6 & info [ "n"; "customers" ] ~doc:"Number of master customers")

let keep_arg =
  Arg.(value & opt float 0.7 & info [ "k"; "keep" ] ~doc:"Fraction of master rows present in the database")

let seed_arg = Arg.(value & opt int 0 & info [ "s"; "seed" ] ~doc:"Generator seed")

let scenario ~customers ~keep ~seed =
  let master = Crm.master ~customers ~managers:[ ("e1", "e0"); ("e2", "e1") ] () in
  let db = Crm.db ~seed ~master ~keep ~supported_by:[ ("e0", [ "d0" ]) ] () in
  (master, db)

let as_lang = function
  | `Cq q -> Lang.Q_cq q
  | `Fp p -> Lang.Q_fp p

let audit_cmd =
  let run query ccs customers keep seed =
    let master, db = scenario ~customers ~keep ~seed in
    let q = as_lang query in
    Format.printf "database:@.%a@.@." Database.pp db;
    (try
       let result = Guidance.audit ~schema:Crm.db_schema ~master ~ccs ~db q in
       Format.printf "%a@." Guidance.pp_audit result
     with Rcdp.Unsupported msg -> Format.printf "undecidable combination: %s@." msg);
    0
  in
  Cmd.v (Cmd.info "audit" ~doc:"Audit a CRM query: complete / completable / master data must grow")
    Term.(const run $ query_arg $ ccs_arg $ customers_arg $ keep_arg $ seed_arg)

let rcdp_cmd =
  let run query ccs customers keep seed =
    let master, db = scenario ~customers ~keep ~seed in
    let q = as_lang query in
    (try
       match Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db q with
       | Rcdp.Complete -> Format.printf "complete@."
       | Rcdp.Incomplete cex ->
         Format.printf "incomplete — extension:@.%a@.new answer: %a@." Database.pp
           cex.Rcdp.cex_extension Tuple.pp cex.Rcdp.cex_answer
     with
     | Rcdp.Unsupported msg -> Format.printf "undecidable (Theorem 3.1): %s@." msg
     | Rcdp.Not_partially_closed msg -> Format.printf "input rejected: %s@." msg);
    0
  in
  Cmd.v (Cmd.info "rcdp" ~doc:"Is the generated database complete for the query?")
    Term.(const run $ query_arg $ ccs_arg $ customers_arg $ keep_arg $ seed_arg)

let rcqp_cmd =
  let run query ccs customers =
    let master, _ = scenario ~customers ~keep:1.0 ~seed:0 in
    let q = as_lang query in
    (try
       match Rcqp.decide ~schema:Crm.db_schema ~master ~ccs q with
       | Rcqp.Nonempty { witness; reason } ->
         Format.printf "nonempty — %s@." reason;
         (match witness with
          | Some w -> Format.printf "witness:@.%a@." Database.pp w
          | None -> ())
       | Rcqp.Empty { reason } -> Format.printf "empty — %s@." reason
       | Rcqp.Unknown { reason } -> Format.printf "unknown — %s@." reason
     with Rcqp.Unsupported msg -> Format.printf "undecidable (Theorem 4.1): %s@." msg);
    0
  in
  Cmd.v (Cmd.info "rcqp" ~doc:"Does any complete database exist for the query?")
    Term.(const run $ query_arg $ ccs_arg $ customers_arg)

let reduction_cmd =
  let run seed n_forall n_exists n_clauses =
    let fe = Ric_reductions.Sat.random_fe ~seed ~n_forall ~n_exists ~n_clauses in
    Format.printf "φ = ∀x0..x%d ∃.. %a@." (n_forall - 1) Ric_reductions.Sat.pp_cnf
      fe.Ric_reductions.Sat.fe_cnf;
    let inst = Ric_reductions.Rcdp_hardness.of_fe fe in
    let expected = Ric_reductions.Rcdp_hardness.expected fe in
    let got = Ric_reductions.Rcdp_hardness.decide inst in
    Format.printf "QBF evaluates to %b; RCDP decider says complete=%b — %s@." expected got
      (if expected = got then "agreement" else "MISMATCH");
    0
  in
  let nf = Arg.(value & opt int 2 & info [ "forall" ] ~doc:"universal variables") in
  let ne = Arg.(value & opt int 2 & info [ "exists" ] ~doc:"existential variables") in
  let nc = Arg.(value & opt int 3 & info [ "clauses" ] ~doc:"3SAT clauses") in
  Cmd.v
    (Cmd.info "reduction"
       ~doc:"Run the Theorem 3.6 hardness reduction on a random ∀∃3SAT instance")
    Term.(const run $ seed_arg $ nf $ ne $ nc)

(* ------------------------------------------------------------------ *)
(* Scenario files (.ric). *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"A .ric scenario file")

let file_query_arg =
  Arg.(value & opt (some string) None & info [ "q"; "query" ] ~doc:"Query name (defaults to the first one)")

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON")

let search_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Search_mode.of_string s) in
  let print ppf m = Format.pp_print_string ppf (Search_mode.to_string m) in
  Arg.conv ~docv:"MODE" (parse, print)

let search_doc =
  "Valuation-search strategy: $(b,seq) (baseline), $(b,inc) (incremental \
   constraint checking), $(b,par) or $(b,par:N) (incremental + N-way parallel \
   first-level split; verdicts are identical across modes)"

let search_arg =
  Arg.(value & opt search_conv Search_mode.Seq & info [ "search" ] ~doc:search_doc)

let file_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"TRACE"
        ~doc:
          "Write span events for this run to $(docv) as JSON lines; inspect with \
           $(b,ric trace summarize) $(docv)")

(* Tracing a one-shot decide: open the sink for the duration of [f]
   and hand it a step-counting clock (an [unlimited] clock skips the
   counter, which would leave every span's [steps] attribute at 0). *)
let with_trace trace f =
  match trace with
  | None -> f Budget.unlimited
  | Some path ->
    Ric_obs.Trace.open_file path;
    Fun.protect ~finally:Ric_obs.Trace.close (fun () -> f (Budget.create ()))

let with_scenario path f =
  match Ric_text.Scenario.load path with
  | s -> f s
  | exception Ric_text.Scenario.Parse_error (msg, line, col) ->
    Format.eprintf "%s:%d:%d: %s@." path line col msg;
    1

let pick_query (s : Ric_text.Scenario.t) = function
  | Some name ->
    (match Ric_text.Scenario.find_query s name with
     | Some q -> Ok (name, q)
     | None ->
       Error
         (Format.asprintf "no query %S; available: %s" name
            (String.concat ", " (List.map fst s.Ric_text.Scenario.queries))))
  | None ->
    (match s.Ric_text.Scenario.queries with
     | (name, q) :: _ -> Ok (name, q)
     | [] -> Error "the scenario declares no queries")

let file_show_cmd =
  let run path =
    with_scenario path (fun s ->
        Format.printf "%a@." Ric_text.Scenario.pp s;
        Format.printf "# partially closed: %b@."
          (Ric_constraints.Containment.holds_all ~db:s.Ric_text.Scenario.db
             ~master:s.Ric_text.Scenario.master
             (Ric_text.Scenario.all_ccs s));
        0)
  in
  Cmd.v (Cmd.info "show" ~doc:"Parse a scenario and print it back (with a closure check)")
    Term.(const run $ file_arg)

let file_audit_cmd =
  let run path qname json search trace =
    with_scenario path (fun s ->
        match pick_query s qname with
        | Error m ->
          Format.eprintf "%s@." m;
          1
        | Ok (name, q) ->
          (try
             let result =
               with_trace trace (fun clock ->
                   Guidance.audit ~clock ~search ~schema:s.Ric_text.Scenario.db_schema
                     ~master:s.Ric_text.Scenario.master
                     ~ccs:(Ric_text.Scenario.all_ccs s)
                     ~db:s.Ric_text.Scenario.db q)
             in
             if json then
               Format.printf "%a@." Ric_text.Json.pp
                 (Ric_text.Json.Obj
                    [ ("query", Ric_text.Json.Str name);
                      ("result", Ric_text.Report.audit_result result) ])
             else begin
               Format.printf "auditing %s...@." name;
               Format.printf "%a@." Guidance.pp_audit result
             end
           with Rcdp.Unsupported msg -> Format.printf "undecidable: %s@." msg);
          0)
  in
  Cmd.v (Cmd.info "audit" ~doc:"Audit a query of a scenario file")
    Term.(const run $ file_arg $ file_query_arg $ json_arg $ search_arg $ file_trace_arg)

let file_rcqp_cmd =
  let run path qname json search trace =
    with_scenario path (fun s ->
        match pick_query s qname with
        | Error m ->
          Format.eprintf "%s@." m;
          1
        | Ok (name, q) ->
          (try
             let verdict =
               with_trace trace (fun clock ->
                   Rcqp.decide ~clock ~search ~schema:s.Ric_text.Scenario.db_schema
                     ~master:s.Ric_text.Scenario.master
                     ~ccs:(Ric_text.Scenario.all_ccs s) q)
             in
             if json then
               Format.printf "%a@." Ric_text.Json.pp
                 (Ric_text.Json.Obj
                    [ ("query", Ric_text.Json.Str name);
                      ("result", Ric_text.Report.rcqp_verdict verdict) ])
             else
               match verdict with
               | Rcqp.Nonempty { reason; _ } -> Format.printf "%s: nonempty — %s@." name reason
               | Rcqp.Empty { reason } -> Format.printf "%s: empty — %s@." name reason
               | Rcqp.Unknown { reason } -> Format.printf "%s: unknown — %s@." name reason
           with Rcqp.Unsupported msg -> Format.printf "undecidable: %s@." msg);
          0)
  in
  Cmd.v (Cmd.info "rcqp" ~doc:"Can any database be complete for a scenario query?")
    Term.(const run $ file_arg $ file_query_arg $ json_arg $ search_arg $ file_trace_arg)

let file_rcdp_cmd =
  let run path qname json search trace =
    with_scenario path (fun s ->
        match pick_query s qname with
        | Error m ->
          Format.eprintf "%s@." m;
          1
        | Ok (name, q) ->
          (try
             let verdict =
               with_trace trace (fun clock ->
                   Rcdp.decide ~clock ~search ~schema:s.Ric_text.Scenario.db_schema
                     ~master:s.Ric_text.Scenario.master
                     ~ccs:(Ric_text.Scenario.all_ccs s) ~db:s.Ric_text.Scenario.db q)
             in
             if json then
               Format.printf "%a@." Ric_text.Json.pp
                 (Ric_text.Json.Obj
                    [ ("query", Ric_text.Json.Str name);
                      ("result", Ric_text.Report.rcdp_verdict verdict) ])
             else
               match verdict with
               | Rcdp.Complete -> Format.printf "%s: complete@." name
               | Rcdp.Incomplete cex ->
                 Format.printf
                   "%s: incomplete — admissible extension:@.%a@.new answer: %a@." name
                   Database.pp cex.Rcdp.cex_extension Tuple.pp cex.Rcdp.cex_answer
           with
           | Rcdp.Unsupported msg -> Format.printf "undecidable: %s@." msg
           | Rcdp.Not_partially_closed msg -> Format.printf "input rejected: %s@." msg);
          0)
  in
  Cmd.v (Cmd.info "rcdp" ~doc:"Is the scenario's database complete for a query?")
    Term.(const run $ file_arg $ file_query_arg $ json_arg $ search_arg $ file_trace_arg)

let file_worlds_cmd =
  (* the Section 5 analysis: enumerate the possible worlds of the
     scenario's c-tables and audit each *)
  let run path qname json =
    with_scenario path (fun s ->
        match pick_query s qname with
        | Error m ->
          Format.eprintf "%s@." m;
          1
        | Ok (name, q) ->
          let cdb = Ric_text.Scenario.as_cdatabase s in
          let values =
            List.sort_uniq Ric_relational.Value.compare
              (Database.adom s.Ric_text.Scenario.db
              @ Database.adom s.Ric_text.Scenario.master)
          in
          (try
             let report =
               Ric_incomplete.Rc_missing.analyze ~values
                 ~schema:s.Ric_text.Scenario.db_schema
                 ~master:s.Ric_text.Scenario.master
                 ~ccs:(Ric_text.Scenario.all_ccs s) cdb q
             in
             if json then
               Format.printf "%a@." Ric_text.Json.pp
                 (Ric_text.Json.Obj
                    [
                      ("query", Ric_text.Json.Str name);
                      ("worlds", Ric_text.Json.Int report.Ric_incomplete.Rc_missing.n_worlds);
                      ("closed", Ric_text.Json.Int report.Ric_incomplete.Rc_missing.n_closed);
                      ("complete", Ric_text.Json.Int report.Ric_incomplete.Rc_missing.n_complete);
                      ( "strongly_complete",
                        Ric_text.Json.Bool report.Ric_incomplete.Rc_missing.strongly_complete );
                      ( "weakly_complete",
                        Ric_text.Json.Bool report.Ric_incomplete.Rc_missing.weakly_complete );
                    ])
             else
               Format.printf "%s: %a@." name Ric_incomplete.Rc_missing.pp_report report
           with
           | Rcdp.Unsupported msg -> Format.printf "undecidable: %s@." msg
           | Invalid_argument msg -> Format.printf "cannot analyse: %s@." msg);
          0)
  in
  Cmd.v
    (Cmd.info "worlds"
       ~doc:"Analyse a query across the possible worlds of the scenario's missing values")
    Term.(const run $ file_arg $ file_query_arg $ json_arg)

let file_group =
  Cmd.group (Cmd.info "file" ~doc:"Work on .ric scenario files")
    [ file_show_cmd; file_audit_cmd; file_rcdp_cmd; file_rcqp_cmd; file_worlds_cmd ]

(* ------------------------------------------------------------------ *)
(* Explain: one decide with a profile attached, rendered as tables —
   where the steps went (per search level), what cut branches (per
   constraint), and how much of the budget the profile can account
   for. *)

let explain_modes =
  [
    ("rcdp", `Rcdp, "is the database complete? (default)");
    ("rcqp", `Rcqp, "does any complete database exist?");
    ("audit", `Audit, "the full completeness audit");
  ]

let explain_cmd =
  let module Profile = Ric_obs.Profile in
  let run path qname mode search timeout_ms json =
    with_scenario path (fun s ->
        match pick_query s qname with
        | Error m ->
          Format.eprintf "%s@." m;
          1
        | Ok (name, q) ->
          let schema = s.Ric_text.Scenario.db_schema in
          let master = s.Ric_text.Scenario.master in
          let ccs = Ric_text.Scenario.all_ccs s in
          let db = s.Ric_text.Scenario.db in
          let profile = Profile.create () in
          let clock =
            let deadline_after =
              Option.map (fun ms -> float_of_int ms /. 1000.) timeout_ms
            in
            Budget.create ?deadline_after ()
          in
          (try
             let verdict =
               try
                 match mode with
                 | `Rcdp -> (
                   match
                     Rcdp.decide ~clock ~search ~profile ~schema ~master ~ccs ~db q
                   with
                   | Rcdp.Complete -> "complete"
                   | Rcdp.Incomplete _ -> "incomplete")
                 | `Rcqp -> (
                   match Rcqp.decide ~clock ~search ~profile ~schema ~master ~ccs q with
                   | Rcqp.Nonempty _ -> "nonempty"
                   | Rcqp.Empty _ -> "empty"
                   | Rcqp.Unknown _ -> "unknown")
                 | `Audit -> (
                   match
                     Guidance.audit ~clock ~search ~profile ~schema ~master ~ccs ~db q
                   with
                   | Guidance.Already_complete -> "already_complete"
                   | Guidance.Completable _ -> "completable"
                   | Guidance.Not_completable _ -> "not_completable"
                   | Guidance.Inconclusive _ -> "inconclusive")
               with Budget.Exhausted reason ->
                 (* a timed-out run still has a profile: the steps it
                    did take are attributed like any other run's *)
                 "timeout:" ^ Budget.reason_name reason
             in
             let snap = Profile.snapshot profile in
             let steps = Budget.steps clock in
             let attributed = Profile.attributed_steps snap in
             let pct =
               if steps = 0 then 100.
               else 100. *. float_of_int attributed /. float_of_int steps
             in
             if json then begin
               let open Ric_text.Json in
               Format.printf "%a@." pp
                 (Obj
                    [
                      ("query", Str name);
                      ("verdict", Str verdict);
                      ("steps", Int steps);
                      ("attributed_steps", Int attributed);
                      ( "levels",
                        List
                          (List.map
                             (fun r ->
                               Obj
                                 [
                                   ("level", Int r.Profile.lv_index);
                                   ("atom", Str r.Profile.lv_name);
                                   ("steps", Int r.Profile.lv_steps);
                                   ("prunes", Int r.Profile.lv_prunes);
                                 ])
                             snap.Profile.levels) );
                      ( "constraints",
                        List
                          (List.map
                             (fun (cc, n) -> Obj [ ("name", Str cc); ("prunes", Int n) ])
                             snap.Profile.constraints) );
                      ( "counters",
                        Obj (List.map (fun (k, n) -> (k, Int n)) snap.Profile.counters) );
                      ( "notes",
                        Obj (List.map (fun (k, v) -> (k, Str v)) snap.Profile.notes) );
                    ])
             end
             else begin
               Format.printf "%s: %s@." name verdict;
               List.iter
                 (fun (k, v) -> Format.printf "  %s=%s" k v)
                 snap.Profile.notes;
               if snap.Profile.notes <> [] then Format.printf "@.";
               Format.printf "steps: %d  attributed: %d (%.1f%%)@." steps attributed pct;
               if snap.Profile.levels <> [] then begin
                 Format.printf "@.per-level fan-out@.";
                 Format.printf "  %5s %-14s %12s %12s@." "level" "atom" "steps" "prunes";
                 List.iter
                   (fun r ->
                     Format.printf "  %5d %-14s %12d %12d@." r.Profile.lv_index
                       r.Profile.lv_name r.Profile.lv_steps r.Profile.lv_prunes)
                   snap.Profile.levels
               end;
               if snap.Profile.constraints <> [] then begin
                 Format.printf "@.prunes by constraint@.";
                 Format.printf "  %-24s %12s@." "constraint" "prunes";
                 List.iter
                   (fun (cc, n) -> Format.printf "  %-24s %12d@." cc n)
                   snap.Profile.constraints
               end;
               if snap.Profile.counters <> [] then begin
                 Format.printf "@.counters@.";
                 List.iter
                   (fun (k, n) -> Format.printf "  %-24s %12d@." k n)
                   snap.Profile.counters
               end
             end;
             0
           with
           | Rcdp.Unsupported msg | Rcqp.Unsupported msg ->
             Format.printf "undecidable: %s@." msg;
             0
           | Rcdp.Not_partially_closed msg ->
             Format.printf "input rejected: %s@." msg;
             0))
  in
  let mode_arg =
    let doc =
      "Decider to profile: "
      ^ String.concat ", "
          (List.map (fun (k, _, d) -> k ^ " (" ^ d ^ ")") explain_modes)
    in
    Arg.(
      value
      & opt (keyed "mode" explain_modes) (lookup3 explain_modes "rcdp")
      & info [ "m"; "mode" ] ~doc)
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget for the decide; an exhausted run reports a \
             timeout verdict with the partial profile.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Decide a scenario query with an explain profile: per-level step \
          attribution, per-constraint prune counts, budget coverage")
    Term.(
      const run $ file_arg $ file_query_arg $ mode_arg $ search_arg
      $ timeout_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* Mining: induce containment constraints from a scenario's (Dm, D). *)

let mine_cmd =
  let module Mine = Ric_mining.Mine in
  let module Enumerate = Ric_mining.Enumerate in
  let module Score = Ric_mining.Score in
  let module Scenario = Ric_text.Scenario in
  let run path json check full workers min_support min_confidence max_atoms
      max_width max_consts no_cover timeout_ms =
    with_scenario path (fun s ->
        let config =
          {
            Mine.enum =
              { Enumerate.default with Enumerate.max_atoms; max_width; max_consts };
            min_support;
            min_confidence;
            workers;
            minimal_cover = not no_cover;
          }
        in
        let budget ()
            =
          match timeout_ms with
          | None -> Budget.unlimited
          | Some ms -> Budget.create ~deadline_after:(float_of_int ms /. 1000.) ()
        in
        if Database.is_empty s.Scenario.db then begin
          Format.eprintf "%s: nothing to mine — the instance is empty@." path;
          if json then
            Format.printf "%a@." Ric_text.Json.pp
              (Ric_text.Json.Obj
                 [
                   ("file", Ric_text.Json.Str path);
                   ("accepted", Ric_text.Json.List []);
                   ("note", Ric_text.Json.Str "empty instance");
                 ]);
          0
        end
        else begin
          let r =
            Mine.run ~config ~budget:(budget ())
              ~db_schema:s.Scenario.db_schema
              ~master_schema:s.Scenario.master_schema ~db:s.Scenario.db
              ~master:s.Scenario.master ()
          in
          let checks =
            if check && r.Mine.timed_out = None then
              Mine.cross_check ?clock:None ~db_schema:s.Scenario.db_schema
                ~db:s.Scenario.db ~master:s.Scenario.master
                ~queries:s.Scenario.queries ~mined:r.Mine.accepted ()
            else []
          in
          let line named =
            String.trim (Format.asprintf "%a" Scenario.pp_named_constraint named)
          in
          if json then begin
            let open Ric_text.Json in
            let scored_json (sc : Score.scored) named =
              Obj
                [
                  ("name", Str (fst named));
                  ("family", Str sc.Score.candidate.Enumerate.family);
                  ("support", Int sc.Score.support);
                  ("confidence", Str (Printf.sprintf "%.3f" sc.Score.confidence));
                  ("text", Str (line named));
                ]
            in
            Format.printf "%a@." pp
              (Obj
                 ([
                    ("file", Str path);
                    ( "accepted",
                      List (List.map2 (fun n sc -> scored_json sc n) r.Mine.accepted
                              r.Mine.accepted_scored) );
                    ( "near",
                      List
                        (List.map
                           (fun (sc : Score.scored) ->
                             Obj
                               [
                                 ("family", Str sc.Score.candidate.Enumerate.family);
                                 ("support", Int sc.Score.support);
                                 ( "confidence",
                                   Str (Printf.sprintf "%.3f" sc.Score.confidence) );
                               ])
                           r.Mine.near) );
                    ( "stats",
                      Obj
                        [
                          ("enumerated", Int r.Mine.stats.Mine.enumerated);
                          ("duplicates", Int r.Mine.stats.Mine.duplicates);
                          ("pruned", Int r.Mine.stats.Mine.pruned);
                          ("evaluated", Int r.Mine.stats.Mine.evaluated);
                          ("accepted", Int r.Mine.stats.Mine.accepted);
                        ] );
                  ]
                 @ (match r.Mine.timed_out with
                    | Some reason -> [ ("timeout", Str (Budget.reason_name reason)) ]
                    | None -> [])
                 @
                 if check then
                   [
                     ( "cross_check",
                       List
                         (List.map
                            (fun (c : Mine.check_row) ->
                              Obj
                                [
                                  ("query", Str c.Mine.cq_name);
                                  ("before", Str c.Mine.before);
                                  ("after", Str c.Mine.after);
                                  ("flipped", Bool c.Mine.flipped);
                                ])
                            checks) );
                   ]
                 else []))
          end
          else begin
            Format.printf
              "# mined %d constraint%s from %s (enumerated %d, pruned %d, evaluated %d; support >= %d)@."
              r.Mine.stats.Mine.accepted
              (if r.Mine.stats.Mine.accepted = 1 then "" else "s")
              path r.Mine.stats.Mine.enumerated r.Mine.stats.Mine.pruned
              r.Mine.stats.Mine.evaluated min_support;
            (match r.Mine.timed_out with
             | Some reason ->
               Format.printf "# timeout: %s (partial results)@."
                 (Budget.reason_name reason)
             | None -> ());
            if full then
              Format.printf "%a" Scenario.pp (Scenario.with_ccs s r.Mine.accepted)
            else
              List.iter
                (fun named -> Format.printf "%s@." (line named))
                r.Mine.accepted;
            List.iter
              (fun (sc : Score.scored) ->
                Format.printf "# near miss (confidence %.3f, support %d): %s@."
                  sc.Score.confidence sc.Score.support
                  sc.Score.candidate.Enumerate.key)
              r.Mine.near;
            if check then begin
              Format.printf "# cross-check (RCDP under mined V vs V = {}):@.";
              List.iter
                (fun (c : Mine.check_row) ->
                  Format.printf "#   %s: %s -> %s%s@." c.Mine.cq_name c.Mine.before
                    c.Mine.after
                    (if c.Mine.flipped then "  [flipped to Complete]" else ""))
                checks
            end
          end;
          if r.Mine.stats.Mine.accepted = 0 && r.Mine.timed_out = None then
            Format.eprintf
              "%s: no constraints accepted (enumerated %d, evaluated %d)@." path
              r.Mine.stats.Mine.enumerated r.Mine.stats.Mine.evaluated;
          (match r.Mine.timed_out with
           | Some reason ->
             Format.eprintf "%s: budget exhausted (%s); results are partial@." path
               (Budget.reason_name reason)
           | None -> ());
          0
        end)
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "w"; "workers" ] ~docv:"N"
          ~doc:"Fan candidate scoring out over $(docv) pool worker domains")
  in
  let min_support_arg =
    Arg.(
      value & opt int 1
      & info [ "min-support" ] ~docv:"N"
          ~doc:"Accept only candidates with at least $(docv) witnesses in the instance")
  in
  let min_confidence_arg =
    Arg.(
      value & opt float 0.8
      & info [ "min-confidence" ] ~docv:"C"
          ~doc:
            "Report near-miss candidates at or above confidence $(docv); emission \
             always requires confidence 1.0 (the constraint must actually hold)")
  in
  let max_atoms_arg =
    Arg.(
      value & opt int Ric_mining.Enumerate.default.Ric_mining.Enumerate.max_atoms
      & info [ "max-atoms" ] ~docv:"N" ~doc:"Body-size bound for candidate queries")
  in
  let max_width_arg =
    Arg.(
      value & opt int Ric_mining.Enumerate.default.Ric_mining.Enumerate.max_width
      & info [ "max-width" ] ~docv:"N" ~doc:"Head / projection width bound")
  in
  let max_consts_arg =
    Arg.(
      value & opt int Ric_mining.Enumerate.default.Ric_mining.Enumerate.max_consts
      & info [ "max-consts" ] ~docv:"N"
          ~doc:
            "Refine candidates with constants only on columns with at most $(docv) \
             distinct values (0 disables)")
  in
  let no_cover_arg =
    Arg.(
      value & flag
      & info [ "no-cover" ]
          ~doc:
            "Keep every accepted constraint instead of reducing to a minimal cover \
             (constraints implied by an accepted more-general one are normally dropped)")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Cross-check: re-run the RCDP decider on every scenario query with the \
             mined constraints and report which ones flip to Complete")
  in
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Print the whole scenario with its constraint set replaced by the mined \
             one (parseable as-is) instead of just the constraint block")
  in
  let mine_timeout_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Give mining at most $(docv) milliseconds; past that the constraints \
             accepted so far are emitted with a timeout marker instead of blocking")
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:
         "Induce containment constraints q(D) ⊆ p(Dm) from a scenario's data \
          (support/confidence rule mining over the compiled match kernel)")
    Term.(
      const run $ file_arg $ json_arg $ check_arg $ full_arg $ workers_arg
      $ min_support_arg $ min_confidence_arg $ max_atoms_arg $ max_width_arg
      $ max_consts_arg $ no_cover_arg $ mine_timeout_arg)

(* ------------------------------------------------------------------ *)
(* Trace files. *)

let trace_group =
  let summarize_cmd =
    let run path top req_id =
      match Ric_text.Trace_summary.load path with
      | { Ric_text.Trace_summary.spans; malformed } ->
        let spans, not_found =
          match req_id with
          | None -> (spans, false)
          | Some rid ->
            let filtered = Ric_text.Trace_summary.filter_req_id rid spans in
            (filtered, filtered = [])
        in
        if not_found then begin
          Format.eprintf "no spans carry req_id %S (wrong id, or the run was not traced)@."
            (Option.get req_id);
          1
        end
        else begin
          let summary = Ric_text.Trace_summary.summarize ~top spans in
          Format.printf "%a"
            (fun ppf () -> Ric_text.Trace_summary.pp ppf ~malformed spans summary)
            ();
          0
        end
      | exception Sys_error msg ->
        Format.eprintf "%s@." msg;
        1
    in
    let trace_pos =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"TRACE" ~doc:"A span file written by --trace")
    in
    let top_arg =
      Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"How many slowest spans to list")
    in
    let req_id_filter_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "req-id" ] ~docv:"ID"
            ~doc:
              "Keep only the spans of one request: those stamped with this \
               correlation id, plus their whole subtrees")
    in
    Cmd.v
      (Cmd.info "summarize"
         ~doc:
           "Reconstruct a --trace span file: slowest spans, per-phase step rates, \
            per-mode breakdown, and the slowest call tree")
      Term.(const run $ trace_pos $ top_arg $ req_id_filter_arg)
  in
  Cmd.group (Cmd.info "trace" ~doc:"Inspect span-trace files written by --trace")
    [ summarize_cmd ]

(* ------------------------------------------------------------------ *)
(* The ricd service: serve / request / shutdown. *)

let socket_arg =
  Arg.(
    value
    & opt string Ric_service.Server.default_config.Ric_service.Server.socket_path
    & info [ "S"; "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket of the daemon")

let serve_cmd =
  let run socket domains queue max_conns read_deadline write_deadline root journal
      recover search metrics trace flight verbose =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some (if verbose then Logs.Info else Logs.App));
    match
      Ric_service.Server.run
        {
          Ric_service.Server.socket_path = socket;
          domains;
          queue_capacity = queue;
          max_connections = max_conns;
          read_deadline_s = read_deadline;
          write_deadline_s = write_deadline;
          root;
          journal;
          recover;
          search;
          metrics;
          trace;
          flight;
        }
    with
    | () -> 0
    | exception Unix.Unix_error (e, _, arg) ->
      Format.eprintf "cannot serve on %s: %s %s@." socket (Unix.error_message e) arg;
      1
  in
  let domains_arg =
    Arg.(
      value
      & opt int Ric_service.Server.default_config.Ric_service.Server.domains
      & info [ "d"; "domains" ] ~doc:"Worker domains running the deciders in parallel")
  in
  let queue_arg =
    Arg.(
      value
      & opt int Ric_service.Server.default_config.Ric_service.Server.queue_capacity
      & info [ "queue" ]
          ~doc:
            "Admitted-request backlog; past it requests are shed with a structured \
             overloaded reply carrying retry-after-ms")
  in
  let max_conns_arg =
    Arg.(
      value
      & opt int Ric_service.Server.default_config.Ric_service.Server.max_connections
      & info [ "max-connections" ]
          ~doc:
            "Connections the event loop holds open at once; beyond it new sockets \
             get a best-effort overloaded frame and are closed")
  in
  let read_deadline_arg =
    Arg.(
      value
      & opt float Ric_service.Server.default_config.Ric_service.Server.read_deadline_s
      & info [ "read-deadline" ] ~docv:"S"
          ~doc:
            "Evict a connection that dangles a partial request frame for $(docv) \
             seconds (slow-loris defense)")
  in
  let write_deadline_arg =
    Arg.(
      value
      & opt float Ric_service.Server.default_config.Ric_service.Server.write_deadline_s
      & info [ "write-deadline" ] ~docv:"S"
          ~doc:"Evict a connection that accepts none of its reply bytes for $(docv) seconds")
  in
  let root_arg =
    Arg.(
      value
      & opt (some dir) None
      & info [ "root" ] ~docv:"DIR" ~doc:"Resolve relative scenario paths against $(docv)")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Append session mutations to $(docv) so --recover can restore them")
  in
  let recover_arg =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:"Replay the journal before serving, restoring the previous run's sessions")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:
            "Serve a Prometheus text-format snapshot on a second Unix socket at \
             $(docv) (one snapshot per connection; curl --unix-socket $(docv) \
             http://localhost/metrics)")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write JSON-lines span events to $(docv); summarize offline with ric \
             trace summarize $(docv)")
  in
  let flight_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Flight-recorder dump target (default: the command socket path plus \
             .flight.jsonl); the in-memory ring is written there on worker \
             quarantine, fatal exit, SIGUSR1, or a dump request")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log every request with its latency")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run ricd: keep scenarios loaded, cache verdicts, decide in parallel")
    Term.(
      const run $ socket_arg $ domains_arg $ queue_arg $ max_conns_arg
      $ read_deadline_arg $ write_deadline_arg $ root_arg $ journal_arg
      $ recover_arg $ search_arg $ metrics_arg $ trace_arg $ flight_arg
      $ verbose_arg)

let rpc ?receive_timeout socket req =
  match
    Ric_service.Client.with_connection ?receive_timeout socket (fun c ->
        Ric_service.Client.rpc c req)
  with
  | response ->
    Format.printf "%a@." Ric_text.Json.pp response;
    (match response with
     | Ric_text.Json.Obj fields
       when List.assoc_opt "ok" fields = Some (Ric_text.Json.Bool false) -> 1
     | _ -> 0)
  | exception Unix.Unix_error (e, _, _) ->
    Format.eprintf "cannot reach ricd at %s: %s@." socket (Unix.error_message e);
    Format.eprintf "start it with: ric serve --socket %s@." socket;
    1
  | exception Ric_service.Client.Timeout ->
    (* still a structured result on stdout, like every other failure
       kind, so scripted callers can parse it; 124 matches timeout(1) *)
    Format.printf "%a@." Ric_text.Json.pp
      (Ric_service.Protocol.error ~kind:"timeout"
         (Printf.sprintf "no reply from ricd within %gs"
            (Option.value ~default:0. receive_timeout)));
    Format.eprintf "timed out waiting for a reply from ricd at %s@." socket;
    124
  | exception Failure msg ->
    Format.eprintf "%s@." msg;
    1

let receive_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "receive-timeout" ] ~docv:"S"
        ~doc:
          "Give up if no reply arrives within $(docv) seconds: print a structured \
           timeout result and exit 124 instead of blocking")

let session_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SESSION" ~doc:"Session id")

let query_pos =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"Query name")

let nocache_arg =
  Arg.(value & flag & info [ "nocache" ] ~doc:"Bypass the verdict cache for this request")

let request_open_cmd =
  let run socket receive_timeout file name =
    rpc ?receive_timeout socket
      (Ric_service.Protocol.Open { path = Some file; source = None; name })
  in
  let file_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A .ric scenario file (resolved by the daemon)")
  in
  let name_arg =
    Arg.(value & opt (some string) None & info [ "name" ] ~doc:"Label for the session")
  in
  Cmd.v (Cmd.info "open" ~doc:"Load a scenario into a new server session")
    Term.(const run $ socket_arg $ receive_timeout_arg $ file_pos $ name_arg)

let timeout_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Give the decider at most $(docv) milliseconds; past that the response \
           carries a timeout verdict (never cached) instead of blocking")

let request_search_arg =
  Arg.(
    value
    & opt (some search_conv) None
    & info [ "search" ]
        ~doc:
          "Valuation-search strategy for this request ($(b,seq), $(b,inc), \
           $(b,par), $(b,par:N)); omitted, the server's default applies")

let explain_flag =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Compute fresh (cache bypassed) and attach a structured profile to the \
           reply: per-level step counts, per-constraint prunes, named counters")

let req_id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "req-id" ] ~docv:"ID"
        ~doc:
          "Correlation id for this request (minted automatically when omitted); \
           echoed on the reply and stamped on the daemon's logs, spans and \
           flight-recorder events")

let request_decide_cmd op doc ctor =
  let run socket receive_timeout session query nocache timeout_ms search req_id
      explain =
    rpc ?receive_timeout socket
      (ctor ~session ~query ~nocache ~timeout_ms ~search ~req_id ~explain)
  in
  Cmd.v (Cmd.info op ~doc)
    Term.(
      const run $ socket_arg $ receive_timeout_arg $ session_pos $ query_pos
      $ nocache_arg $ timeout_ms_arg $ request_search_arg $ req_id_arg
      $ explain_flag)

(* bare digits are integers; wrap a cell in double quotes to force a
   string (e.g. "01", matching the .ric row syntax) *)
let parse_cell s =
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
    Ric_relational.Value.Str (String.sub s 1 (n - 2))
  else
    match int_of_string_opt s with
    | Some n -> Ric_relational.Value.Int n
    | None -> Ric_relational.Value.Str s

let request_insert_cmd =
  let run socket receive_timeout session rel cells =
    rpc ?receive_timeout socket
      (Ric_service.Protocol.Insert
         { session; rel; rows = [ List.map parse_cell cells ] })
  in
  let rel_pos =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"REL" ~doc:"Relation name")
  in
  let cells_pos =
    Arg.(
      non_empty
      & pos_right 1 string []
      & info [] ~docv:"VALUE" ~doc:"Cell values (integers stay integers)")
  in
  Cmd.v
    (Cmd.info "insert"
       ~doc:"Insert one tuple into a session's database (epoch bump + cache migration)")
    Term.(const run $ socket_arg $ receive_timeout_arg $ session_pos $ rel_pos $ cells_pos)

(* Each SPEC is REL:v1,v2,... — one row.  Consecutive specs for the
   same relation merge into one batch, so the whole command travels as
   a single insert_bulk request: one epoch bump, one journal append,
   one cache migration, however many rows it carries. *)
let parse_row_spec s =
  match String.index_opt s ':' with
  | None | Some 0 ->
    Error (Printf.sprintf "bad row spec %S (want REL:v1,v2,...)" s)
  | Some i ->
    let rel = String.sub s 0 i in
    let cells = String.sub s (i + 1) (String.length s - i - 1) in
    Ok (rel, List.map parse_cell (String.split_on_char ',' cells))

let request_insert_bulk_cmd =
  let run socket receive_timeout session specs =
    let rec collect acc = function
      | [] -> Ok (List.rev_map (fun (rel, rows) -> (rel, List.rev rows)) acc)
      | spec :: rest -> (
        match parse_row_spec spec with
        | Error _ as e -> e
        | Ok (rel, row) -> (
          match acc with
          | (rel', rows) :: tail when rel' = rel ->
            collect ((rel', row :: rows) :: tail) rest
          | acc -> collect ((rel, [ row ]) :: acc) rest))
    in
    match collect [] specs with
    | Error msg ->
      Format.eprintf "%s@." msg;
      2
    | Ok batches ->
      rpc ?receive_timeout socket
        (Ric_service.Protocol.Insert_bulk { session; batches })
  in
  let specs_pos =
    Arg.(
      non_empty
      & pos_right 0 string []
      & info [] ~docv:"SPEC"
          ~doc:
            "Rows as REL:v1,v2,... (one spec per row; integers stay integers, \
             quote a cell to force a string)")
  in
  Cmd.v
    (Cmd.info "insert-bulk"
       ~doc:
         "Insert many rows across relations as one mutation (single epoch bump, \
          journal append and cache migration)")
    Term.(const run $ socket_arg $ receive_timeout_arg $ session_pos $ specs_pos)

let request_simple_cmd op doc req =
  let run socket receive_timeout = rpc ?receive_timeout socket req in
  Cmd.v (Cmd.info op ~doc) Term.(const run $ socket_arg $ receive_timeout_arg)

let request_mine_cmd =
  let run socket receive_timeout session nocache timeout_ms min_support workers =
    rpc ?receive_timeout socket
      (Ric_service.Protocol.Mine { session; nocache; timeout_ms; min_support; workers })
  in
  let min_support_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "min-support" ] ~docv:"N" ~doc:"Witness threshold (server default 1)")
  in
  let workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "w"; "workers" ] ~docv:"N"
          ~doc:"Scoring fan-out over pool domains (server default sequential)")
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:"Induce containment constraints from a session's (Dm, D) pair")
    Term.(
      const run $ socket_arg $ receive_timeout_arg $ session_pos $ nocache_arg
      $ timeout_ms_arg $ min_support_arg $ workers_arg)

let request_close_cmd =
  let run socket receive_timeout session =
    rpc ?receive_timeout socket (Ric_service.Protocol.Close { session })
  in
  Cmd.v (Cmd.info "close" ~doc:"Close a session and purge its cached verdicts")
    Term.(const run $ socket_arg $ receive_timeout_arg $ session_pos)

let request_group =
  Cmd.group
    (Cmd.info "request" ~doc:"Talk to a running ricd (one framed JSON request per call)")
    [
      request_open_cmd;
      request_decide_cmd "rcdp" "Is the session's database complete for a query?"
        (fun ~session ~query ~nocache ~timeout_ms ~search ~req_id ~explain ->
          Ric_service.Protocol.Rcdp
            { session; query; nocache; timeout_ms; search; req_id; explain });
      request_decide_cmd "rcqp" "Can any database be complete for a session query?"
        (fun ~session ~query ~nocache ~timeout_ms ~search ~req_id ~explain ->
          Ric_service.Protocol.Rcqp
            { session; query; nocache; timeout_ms; search; req_id; explain });
      request_decide_cmd "audit" "Full completeness audit of a session query"
        (fun ~session ~query ~nocache ~timeout_ms ~search ~req_id ~explain ->
          Ric_service.Protocol.Audit
            { session; query; nocache; timeout_ms; search; req_id; explain });
      request_mine_cmd;
      request_insert_cmd;
      request_insert_bulk_cmd;
      request_close_cmd;
      request_simple_cmd "ping" "Liveness probe" Ric_service.Protocol.Ping;
      request_simple_cmd "stats" "Sessions, cache hit rates, per-op counters"
        Ric_service.Protocol.Stats;
      request_simple_cmd "dump"
        "Write the daemon's flight recorder to its configured dump path"
        Ric_service.Protocol.Dump;
    ]

let shutdown_cmd =
  let run socket receive_timeout =
    rpc ?receive_timeout socket Ric_service.Protocol.Shutdown
  in
  Cmd.v (Cmd.info "shutdown" ~doc:"Ask a running ricd to stop")
    Term.(const run $ socket_arg $ receive_timeout_arg)

(* A dependency-free scrape client for the --metrics socket, so the
   smoke tests (and curl-less machines) can read the exposition.
   Returns the response body (headers end at the first blank line).
   @raise Unix.Unix_error when the socket is unreachable. *)
let fetch_metrics socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_UNIX socket);
    let req = Bytes.of_string "GET /metrics HTTP/1.0\r\n\r\n" in
    ignore (Unix.write fd req 0 (Bytes.length req));
    (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec drain () =
      match Unix.read fd chunk 0 4096 with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
    in
    drain ();
    Buffer.contents buf
  with
  | response ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    let n = String.length response in
    let rec find i =
      if i + 4 > n then None
      else if String.sub response i 4 = "\r\n\r\n" then Some (i + 4)
      else find (i + 1)
    in
    (match find 0 with
     | Some i -> String.sub response i (n - i)
     | None -> response)
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let msocket_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SOCKET" ~doc:"The daemon's --metrics socket path")

let scrape_cmd =
  let run socket =
    match fetch_metrics socket with
    | body ->
      print_string body;
      0
    | exception Unix.Unix_error (e, _, _) ->
      Format.eprintf "cannot scrape %s: %s@." socket (Unix.error_message e);
      Format.eprintf "serve metrics with: ric serve --metrics %s@." socket;
      1
  in
  Cmd.v
    (Cmd.info "scrape"
       ~doc:"Fetch one Prometheus snapshot from a ricd --metrics socket (curl-free)")
    Term.(const run $ msocket_arg)

(* ------------------------------------------------------------------ *)
(* top: a live dashboard over the metrics socket.  Scrapes the
   Prometheus exposition at a fixed cadence, differences consecutive
   snapshots into rates, and redraws in place with ANSI escapes. *)

module Top = struct
  (* One parsed sample line: full key (name + rendered label block,
     exactly as exposed) to value.  Keeping the raw key sidesteps a
     label parser; lookups below match by exact key or by prefix. *)
  let parse body =
    String.split_on_char '\n' body
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None
           else
             match String.rindex_opt line ' ' with
             | None -> None
             | Some i ->
               let key = String.sub line 0 i in
               float_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
               |> Option.map (fun v -> (key, v)))

  let value m key = match List.assoc_opt key m with Some v -> v | None -> 0.

  (* sum over every label combination of one family, excluding the
     _bucket/_sum/_count expansions of a histogram of the same stem *)
  let sum_family m name =
    List.fold_left
      (fun acc (k, v) ->
        if
          String.length k >= String.length name
          && String.sub k 0 (String.length name) = name
          && (String.length k = String.length name
             || k.[String.length name] = '{')
        then acc +. v
        else acc)
      0. m

  (* cumulative bucket counts of one histogram family, summed across
     label sets, as (le, count) sorted by le *)
  let buckets m name =
    let prefix = name ^ "_bucket{" in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (k, v) ->
        if
          String.length k > String.length prefix
          && String.sub k 0 (String.length prefix) = prefix
        then begin
          (* the le label is last in the block: le="..."} *)
          match String.rindex_opt k '=' with
          | Some i when i + 2 < String.length k ->
            let raw = String.sub k (i + 2) (String.length k - i - 2) in
            let raw =
              match String.index_opt raw '"' with
              | Some j -> String.sub raw 0 j
              | None -> raw
            in
            let le =
              if raw = "+Inf" then infinity else Option.value ~default:nan (float_of_string_opt raw)
            in
            if not (Float.is_nan le) then
              Hashtbl.replace tbl le
                (v +. Option.value ~default:0. (Hashtbl.find_opt tbl le))
          | _ -> ()
        end)
      m;
    Hashtbl.fold (fun le c acc -> (le, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  (* quantile of the *delta* histogram between two snapshots: the
     latency distribution of just the last interval *)
  let delta_quantile ~q prev cur name =
    let pb = buckets prev name and cb = buckets cur name in
    let delta =
      List.map
        (fun (le, c) ->
          let p = try List.assoc le pb with Not_found -> 0. in
          (le, max 0. (c -. p)))
        cb
    in
    match List.rev delta with
    | [] -> None
    | (_, total) :: _ when total <= 0. -> None
    | (_, total) :: _ ->
      let want = q *. total in
      List.find_opt (fun (_, c) -> c >= want) delta |> Option.map fst

  let pp_quantile ppf = function
    | None -> Format.fprintf ppf "%8s" "-"
    | Some le when le = infinity -> Format.fprintf ppf "%8s" ">max"
    | Some le ->
      if le < 1. then Format.fprintf ppf "%6.2fms" (le *. 1000.)
      else Format.fprintf ppf "%7.2fs" le

  let rate dt a = if dt <= 0. then 0. else a /. dt

  let draw ~socket ~dt ~frame prev cur =
    let d name = value cur name -. value prev name in
    let df name = sum_family cur name -. sum_family prev name in
    let throughput = rate dt (df "ric_requests_total") in
    let shed = rate dt (d "ric_server_shed_total") in
    let queue = value cur "ric_server_queue_depth" in
    let conns = value cur "ric_server_connections_active" in
    let sessions = value cur "ric_sessions_open" in
    let steps decider =
      rate dt
        (d (Printf.sprintf "ric_search_steps_total{decider=\"%s\"}" decider))
    in
    let intern = rate dt (d "ric_intern_lock_acquisitions_total") in
    let hits = d "ric_cache_hits_total" and misses = d "ric_cache_misses_total" in
    let hit_pct =
      if hits +. misses <= 0. then nan else 100. *. hits /. (hits +. misses)
    in
    let p50 = delta_quantile ~q:0.5 prev cur "ric_op_latency_seconds" in
    let p99 = delta_quantile ~q:0.99 prev cur "ric_op_latency_seconds" in
    (* home + clear-to-end once per frame: repaint without scrollback *)
    if frame = 0 then print_string "\027[2J";
    print_string "\027[H";
    Format.printf "ric top — %s  (interval %.1fs)\027[K@." socket dt;
    Format.printf "@[<h>\027[K@]@.";
    Format.printf "  requests   %8.1f/s    shed %8.1f/s    cache hit %s\027[K@."
      throughput shed
      (if Float.is_nan hit_pct then "   -" else Printf.sprintf "%3.0f%%" hit_pct);
    Format.printf "  latency    p50 %a   p99 %a\027[K@."
      pp_quantile p50 pp_quantile p99;
    Format.printf "  queue      %8.0f depth   %8.0f conns   %8.0f sessions\027[K@."
      queue conns sessions;
    Format.printf "  steps/s    rcdp %10.0f    rcqp %10.0f\027[K@."
      (steps "rcdp") (steps "rcqp");
    Format.printf "  intern     %8.1f lock acquisitions/s\027[K@." intern;
    Format.printf
      "  pool       %8.0f pending  %8.0f failures  %8.0f crashes  %8.0f quarantined\027[K@."
      (value cur "ric_pool_pending")
      (value cur "ric_pool_failures")
      (value cur "ric_pool_crashes")
      (value cur "ric_pool_quarantined");
    print_string "\027[J";
    flush stdout
end

let top_cmd =
  let run socket interval iterations =
    let interval = max 0.1 interval in
    let rec loop frame prev =
      match fetch_metrics socket with
      | body ->
        let cur = Top.parse body in
        (match prev with
         | Some p -> Top.draw ~socket ~dt:interval ~frame p cur
         | None -> ());
        let next = frame + if prev = None then 0 else 1 in
        if iterations > 0 && next >= iterations then 0
        else begin
          Unix.sleepf interval;
          loop next (Some cur)
        end
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "cannot scrape %s: %s@." socket (Unix.error_message e);
        Format.eprintf "serve metrics with: ric serve --metrics %s@." socket;
        1
    in
    loop 0 None
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "i"; "interval" ] ~docv:"S" ~doc:"Seconds between scrapes (min 0.1)")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "n"; "iterations" ] ~docv:"N"
          ~doc:"Render $(docv) frames then exit (0 = run until interrupted)")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard over a ricd --metrics socket: throughput, shed \
          rate, queue depth, latency quantiles, per-decider step rates")
    Term.(const run $ msocket_arg $ interval_arg $ iterations_arg)

(* ------------------------------------------------------------------ *)
(* gen: emit parameterised .ric scenario families at scale. *)

let gen_cmd =
  let family_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Gen.family_of_string s) in
    let print ppf f = Format.pp_print_string ppf (Gen.family_to_string f) in
    Arg.conv ~docv:"FAMILY" (parse, print)
  in
  let family_pos =
    Arg.(
      required
      & pos 0 (some family_conv) None
      & info [] ~docv:"FAMILY"
          ~doc:"Scenario family: $(b,triple), $(b,telco) or $(b,ladder)")
  in
  let tuples_arg =
    Arg.(
      value & opt int 1000
      & info [ "t"; "tuples" ] ~docv:"N"
          ~doc:"Database rows for the bulk families (up to 1,000,000)")
  in
  let rung_arg =
    Arg.(
      value & opt int 1
      & info [ "r"; "rung" ] ~docv:"R"
          ~doc:"Hardness rung for the ladder family")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout")
  in
  let run family tuples seed rung out =
    let emit oc =
      Gen.emit family ~tuples ~seed ~rung (output_string oc);
      flush oc
    in
    match
      match out with
      | None -> emit stdout
      | Some path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> emit oc)
    with
    | () -> 0
    | exception Invalid_argument msg ->
      Format.eprintf "%s@." msg;
      1
    | exception Sys_error msg ->
      Format.eprintf "%s@." msg;
      1
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Emit a parameterised .ric scenario family, streamed row-by-row (memory \
          stays bounded whatever --tuples)")
    Term.(const run $ family_pos $ tuples_arg $ seed_arg $ rung_arg $ out_arg)

let () =
  let doc = "relative information completeness workbench (Fan & Geerts, PODS 2009)" in
  let info = Cmd.info "ric" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            audit_cmd;
            rcdp_cmd;
            rcqp_cmd;
            reduction_cmd;
            mine_cmd;
            gen_cmd;
            file_group;
            explain_cmd;
            trace_group;
            serve_cmd;
            request_group;
            shutdown_cmd;
            scrape_cmd;
            top_cmd;
          ]))
