(* ric — relative information completeness workbench.

   A small CLI over the library: audit the built-in CRM scenario,
   decide RCDP/RCQP for its queries, and run the hardness reductions
   on random instances.  Meant as a demonstrator; programmatic use
   goes through the libraries. *)

open Ric_relational
open Ric_query
open Ric_complete
open Ric_workloads
open Cmdliner

let queries =
  [
    ("q0", `Cq Crm.q0, "domestic area-908 customers");
    ("q0-all", `Cq Crm.q0_all_customers, "every customer incl. international");
    ("q1", `Cq Crm.q1, "area-908 customers supported by e0");
    ("q2", `Cq Crm.q2, "customers supported by e0");
    ("q2-tuples", `Cq Crm.q2_tuples, "full support rows of e0");
    ("q4", `Cq Crm.q4, "support rows of e0 in d0");
    ("q3", `Fp Crm.q3_fp, "everyone above e0 (datalog)");
  ]

let constraint_sets =
  [
    ("domestic", [ Crm.cc_domestic_customers ], "domestic Cust rows bounded by DCust");
    ("supported", [ Crm.cc_supported_domestic ], "supported domestic customers bounded");
    ("fd-dept", Crm.ccs_fd_dept, "FD eid → dept on Supt");
    ("fd-full", Crm.ccs_fd_supt, "FD eid → dept, cid on Supt");
    ("cap3", [ Crm.cc_support_load 3 ], "an employee supports at most 3 customers");
  ]

let enum_of assoc = List.map (fun (k, _, _) -> (k, k)) assoc
let lookup3 assoc k = match List.find_opt (fun (k', _, _) -> String.equal k k') assoc with
  | Some (_, v, _) -> v
  | None -> invalid_arg k

let query_arg =
  let doc =
    "Query to analyse: " ^ String.concat ", " (List.map (fun (k, _, d) -> k ^ " (" ^ d ^ ")") queries)
  in
  Arg.(value & opt (enum (enum_of queries)) "q0" & info [ "q"; "query" ] ~doc)

let ccs_arg =
  let doc =
    "Constraint set: "
    ^ String.concat ", " (List.map (fun (k, _, d) -> k ^ " (" ^ d ^ ")") constraint_sets)
  in
  Arg.(value & opt (enum (enum_of constraint_sets)) "domestic" & info [ "c"; "constraints" ] ~doc)

let customers_arg =
  Arg.(value & opt int 6 & info [ "n"; "customers" ] ~doc:"Number of master customers")

let keep_arg =
  Arg.(value & opt float 0.7 & info [ "k"; "keep" ] ~doc:"Fraction of master rows present in the database")

let seed_arg = Arg.(value & opt int 0 & info [ "s"; "seed" ] ~doc:"Generator seed")

let scenario ~customers ~keep ~seed =
  let master = Crm.master ~customers ~managers:[ ("e1", "e0"); ("e2", "e1") ] () in
  let db = Crm.db ~seed ~master ~keep ~supported_by:[ ("e0", [ "d0" ]) ] () in
  (master, db)

let as_lang = function
  | `Cq q -> Lang.Q_cq q
  | `Fp p -> Lang.Q_fp p

let audit_cmd =
  let run query ccs customers keep seed =
    let master, db = scenario ~customers ~keep ~seed in
    let q = as_lang (lookup3 queries query) in
    let ccs = lookup3 constraint_sets ccs in
    Format.printf "database:@.%a@.@." Database.pp db;
    (try
       let result = Guidance.audit ~schema:Crm.db_schema ~master ~ccs ~db q in
       Format.printf "%a@." Guidance.pp_audit result
     with Rcdp.Unsupported msg -> Format.printf "undecidable combination: %s@." msg);
    0
  in
  Cmd.v (Cmd.info "audit" ~doc:"Audit a CRM query: complete / completable / master data must grow")
    Term.(const run $ query_arg $ ccs_arg $ customers_arg $ keep_arg $ seed_arg)

let rcdp_cmd =
  let run query ccs customers keep seed =
    let master, db = scenario ~customers ~keep ~seed in
    let q = as_lang (lookup3 queries query) in
    let ccs = lookup3 constraint_sets ccs in
    (try
       match Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db q with
       | Rcdp.Complete -> Format.printf "complete@."
       | Rcdp.Incomplete cex ->
         Format.printf "incomplete — extension:@.%a@.new answer: %a@." Database.pp
           cex.Rcdp.cex_extension Tuple.pp cex.Rcdp.cex_answer
     with
     | Rcdp.Unsupported msg -> Format.printf "undecidable (Theorem 3.1): %s@." msg
     | Rcdp.Not_partially_closed msg -> Format.printf "input rejected: %s@." msg);
    0
  in
  Cmd.v (Cmd.info "rcdp" ~doc:"Is the generated database complete for the query?")
    Term.(const run $ query_arg $ ccs_arg $ customers_arg $ keep_arg $ seed_arg)

let rcqp_cmd =
  let run query ccs customers =
    let master, _ = scenario ~customers ~keep:1.0 ~seed:0 in
    let q = as_lang (lookup3 queries query) in
    let ccs = lookup3 constraint_sets ccs in
    (try
       match Rcqp.decide ~schema:Crm.db_schema ~master ~ccs q with
       | Rcqp.Nonempty { witness; reason } ->
         Format.printf "nonempty — %s@." reason;
         (match witness with
          | Some w -> Format.printf "witness:@.%a@." Database.pp w
          | None -> ())
       | Rcqp.Empty { reason } -> Format.printf "empty — %s@." reason
       | Rcqp.Unknown { reason } -> Format.printf "unknown — %s@." reason
     with Rcqp.Unsupported msg -> Format.printf "undecidable (Theorem 4.1): %s@." msg);
    0
  in
  Cmd.v (Cmd.info "rcqp" ~doc:"Does any complete database exist for the query?")
    Term.(const run $ query_arg $ ccs_arg $ customers_arg)

let reduction_cmd =
  let run seed n_forall n_exists n_clauses =
    let fe = Ric_reductions.Sat.random_fe ~seed ~n_forall ~n_exists ~n_clauses in
    Format.printf "φ = ∀x0..x%d ∃.. %a@." (n_forall - 1) Ric_reductions.Sat.pp_cnf
      fe.Ric_reductions.Sat.fe_cnf;
    let inst = Ric_reductions.Rcdp_hardness.of_fe fe in
    let expected = Ric_reductions.Rcdp_hardness.expected fe in
    let got = Ric_reductions.Rcdp_hardness.decide inst in
    Format.printf "QBF evaluates to %b; RCDP decider says complete=%b — %s@." expected got
      (if expected = got then "agreement" else "MISMATCH");
    0
  in
  let nf = Arg.(value & opt int 2 & info [ "forall" ] ~doc:"universal variables") in
  let ne = Arg.(value & opt int 2 & info [ "exists" ] ~doc:"existential variables") in
  let nc = Arg.(value & opt int 3 & info [ "clauses" ] ~doc:"3SAT clauses") in
  Cmd.v
    (Cmd.info "reduction"
       ~doc:"Run the Theorem 3.6 hardness reduction on a random ∀∃3SAT instance")
    Term.(const run $ seed_arg $ nf $ ne $ nc)

(* ------------------------------------------------------------------ *)
(* Scenario files (.ric). *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"A .ric scenario file")

let file_query_arg =
  Arg.(value & opt (some string) None & info [ "q"; "query" ] ~doc:"Query name (defaults to the first one)")

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON")

let with_scenario path f =
  match Ric_text.Scenario.load path with
  | s -> f s
  | exception Ric_text.Scenario.Parse_error (msg, line, col) ->
    Format.eprintf "%s:%d:%d: %s@." path line col msg;
    1

let pick_query (s : Ric_text.Scenario.t) = function
  | Some name ->
    (match Ric_text.Scenario.find_query s name with
     | Some q -> Ok (name, q)
     | None ->
       Error
         (Format.asprintf "no query %S; available: %s" name
            (String.concat ", " (List.map fst s.Ric_text.Scenario.queries))))
  | None ->
    (match s.Ric_text.Scenario.queries with
     | (name, q) :: _ -> Ok (name, q)
     | [] -> Error "the scenario declares no queries")

let file_show_cmd =
  let run path =
    with_scenario path (fun s ->
        Format.printf "%a@." Ric_text.Scenario.pp s;
        Format.printf "# partially closed: %b@."
          (Ric_constraints.Containment.holds_all ~db:s.Ric_text.Scenario.db
             ~master:s.Ric_text.Scenario.master
             (Ric_text.Scenario.all_ccs s));
        0)
  in
  Cmd.v (Cmd.info "show" ~doc:"Parse a scenario and print it back (with a closure check)")
    Term.(const run $ file_arg)

let file_audit_cmd =
  let run path qname json =
    with_scenario path (fun s ->
        match pick_query s qname with
        | Error m ->
          Format.eprintf "%s@." m;
          1
        | Ok (name, q) ->
          (try
             let result =
               Guidance.audit ~schema:s.Ric_text.Scenario.db_schema
                 ~master:s.Ric_text.Scenario.master
                 ~ccs:(Ric_text.Scenario.all_ccs s)
                 ~db:s.Ric_text.Scenario.db q
             in
             if json then
               Format.printf "%a@." Ric_text.Json.pp
                 (Ric_text.Json.Obj
                    [ ("query", Ric_text.Json.Str name);
                      ("result", Ric_text.Report.audit_result result) ])
             else begin
               Format.printf "auditing %s...@." name;
               Format.printf "%a@." Guidance.pp_audit result
             end
           with Rcdp.Unsupported msg -> Format.printf "undecidable: %s@." msg);
          0)
  in
  Cmd.v (Cmd.info "audit" ~doc:"Audit a query of a scenario file")
    Term.(const run $ file_arg $ file_query_arg $ json_arg)

let file_rcqp_cmd =
  let run path qname json =
    with_scenario path (fun s ->
        match pick_query s qname with
        | Error m ->
          Format.eprintf "%s@." m;
          1
        | Ok (name, q) ->
          (try
             let verdict =
               Rcqp.decide ~schema:s.Ric_text.Scenario.db_schema
                 ~master:s.Ric_text.Scenario.master
                 ~ccs:(Ric_text.Scenario.all_ccs s) q
             in
             if json then
               Format.printf "%a@." Ric_text.Json.pp
                 (Ric_text.Json.Obj
                    [ ("query", Ric_text.Json.Str name);
                      ("result", Ric_text.Report.rcqp_verdict verdict) ])
             else
               match verdict with
               | Rcqp.Nonempty { reason; _ } -> Format.printf "%s: nonempty — %s@." name reason
               | Rcqp.Empty { reason } -> Format.printf "%s: empty — %s@." name reason
               | Rcqp.Unknown { reason } -> Format.printf "%s: unknown — %s@." name reason
           with Rcqp.Unsupported msg -> Format.printf "undecidable: %s@." msg);
          0)
  in
  Cmd.v (Cmd.info "rcqp" ~doc:"Can any database be complete for a scenario query?")
    Term.(const run $ file_arg $ file_query_arg $ json_arg)

let file_rcdp_cmd =
  let run path qname json =
    with_scenario path (fun s ->
        match pick_query s qname with
        | Error m ->
          Format.eprintf "%s@." m;
          1
        | Ok (name, q) ->
          (try
             let verdict =
               Rcdp.decide ~schema:s.Ric_text.Scenario.db_schema
                 ~master:s.Ric_text.Scenario.master
                 ~ccs:(Ric_text.Scenario.all_ccs s) ~db:s.Ric_text.Scenario.db q
             in
             if json then
               Format.printf "%a@." Ric_text.Json.pp
                 (Ric_text.Json.Obj
                    [ ("query", Ric_text.Json.Str name);
                      ("result", Ric_text.Report.rcdp_verdict verdict) ])
             else
               match verdict with
               | Rcdp.Complete -> Format.printf "%s: complete@." name
               | Rcdp.Incomplete cex ->
                 Format.printf
                   "%s: incomplete — admissible extension:@.%a@.new answer: %a@." name
                   Database.pp cex.Rcdp.cex_extension Tuple.pp cex.Rcdp.cex_answer
           with
           | Rcdp.Unsupported msg -> Format.printf "undecidable: %s@." msg
           | Rcdp.Not_partially_closed msg -> Format.printf "input rejected: %s@." msg);
          0)
  in
  Cmd.v (Cmd.info "rcdp" ~doc:"Is the scenario's database complete for a query?")
    Term.(const run $ file_arg $ file_query_arg $ json_arg)

let file_worlds_cmd =
  (* the Section 5 analysis: enumerate the possible worlds of the
     scenario's c-tables and audit each *)
  let run path qname json =
    with_scenario path (fun s ->
        match pick_query s qname with
        | Error m ->
          Format.eprintf "%s@." m;
          1
        | Ok (name, q) ->
          let cdb = Ric_text.Scenario.as_cdatabase s in
          let values =
            List.sort_uniq Ric_relational.Value.compare
              (Database.adom s.Ric_text.Scenario.db
              @ Database.adom s.Ric_text.Scenario.master)
          in
          (try
             let report =
               Ric_incomplete.Rc_missing.analyze ~values
                 ~schema:s.Ric_text.Scenario.db_schema
                 ~master:s.Ric_text.Scenario.master
                 ~ccs:(Ric_text.Scenario.all_ccs s) cdb q
             in
             if json then
               Format.printf "%a@." Ric_text.Json.pp
                 (Ric_text.Json.Obj
                    [
                      ("query", Ric_text.Json.Str name);
                      ("worlds", Ric_text.Json.Int report.Ric_incomplete.Rc_missing.n_worlds);
                      ("closed", Ric_text.Json.Int report.Ric_incomplete.Rc_missing.n_closed);
                      ("complete", Ric_text.Json.Int report.Ric_incomplete.Rc_missing.n_complete);
                      ( "strongly_complete",
                        Ric_text.Json.Bool report.Ric_incomplete.Rc_missing.strongly_complete );
                      ( "weakly_complete",
                        Ric_text.Json.Bool report.Ric_incomplete.Rc_missing.weakly_complete );
                    ])
             else
               Format.printf "%s: %a@." name Ric_incomplete.Rc_missing.pp_report report
           with
           | Rcdp.Unsupported msg -> Format.printf "undecidable: %s@." msg
           | Invalid_argument msg -> Format.printf "cannot analyse: %s@." msg);
          0)
  in
  Cmd.v
    (Cmd.info "worlds"
       ~doc:"Analyse a query across the possible worlds of the scenario's missing values")
    Term.(const run $ file_arg $ file_query_arg $ json_arg)

let file_group =
  Cmd.group (Cmd.info "file" ~doc:"Work on .ric scenario files")
    [ file_show_cmd; file_audit_cmd; file_rcdp_cmd; file_rcqp_cmd; file_worlds_cmd ]

let () =
  let doc = "relative information completeness workbench (Fan & Geerts, PODS 2009)" in
  let info = Cmd.info "ric" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ audit_cmd; rcdp_cmd; rcqp_cmd; reduction_cmd; file_group ]))
