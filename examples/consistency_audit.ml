(* Consistency and completeness in one framework (Section 2.2 /
   Proposition 2.1).

   Integrity constraints — functional dependencies, conditional
   functional dependencies, denial constraints, conditional inclusion
   dependencies — all compile into containment constraints, so the
   same partially-closed machinery enforces BOTH data consistency and
   relative completeness.

   Run with: dune exec examples/consistency_audit.exe *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

let section title = Format.printf "@.== %s ==@." title

let schema =
  Schema.make
    [
      Schema.relation "Supt"
        [ Schema.attribute "eid"; Schema.attribute "dept"; Schema.attribute "cid" ];
      Schema.relation "Emp" [ Schema.attribute "eid"; Schema.attribute "dept" ];
    ]

let empty_master = Database.empty (Schema.make [])

let () =
  section "The constraints";
  (* FD: an employee works in one department. *)
  let fd = Fd.make ~name:"eid→dept" ~rel:"Supt" ~lhs:[ 0 ] ~rhs:[ 1 ] () in
  (* CFD: in the BU department, an employee supports one customer. *)
  let cfd =
    Cfd.make ~name:"BU-key" ~rel:"Supt" ~lhs:[ 0; 1 ]
      ~lhs_pattern:[ (1, Value.str "BU") ]
      ~rhs:[ 2 ] ()
  in
  (* Denial: nobody supports themselves (eid = cid forbidden). *)
  let v = Term.var in
  let denial =
    Denial.make ~name:"no-self-support"
      (Cq.boolean ~eqs:[ (v "e", v "c") ] [ Atom.make "Supt" [ v "e"; v "d"; v "c" ] ])
  in
  (* CIND: every support row's employee appears in Emp with the same
     department. *)
  let cind = Cind.make ~name:"supt⊆emp" ~lhs:("Supt", [ 0; 1 ]) ~rhs:("Emp", [ 0; 1 ]) () in

  Format.printf "%a@.%a@.%a@.%a@." Fd.pp fd Cfd.pp cfd Denial.pp denial Cind.pp cind;

  section "Proposition 2.1: all of them as containment constraints";
  let ccs_fd = Translate.of_fd schema fd in
  let ccs_cfd = Translate.of_cfd schema cfd in
  let cc_denial = Translate.of_denial denial in
  let cc_cind = Translate.of_cind schema cind in
  List.iter
    (fun cc -> Format.printf "  %a@." Containment.pp cc)
    (ccs_fd @ ccs_cfd @ [ cc_denial; cc_cind ]);

  section "Detecting inconsistencies";
  let dirty =
    Database.of_list schema
      [
        ( "Supt",
          Relation.of_str_rows
            [
              [ "e0"; "BU"; "c0" ];
              [ "e0"; "AC"; "c1" ]; (* FD violation: two departments *)
              [ "e1"; "BU"; "c2" ];
              [ "e1"; "BU"; "c3" ]; (* CFD violation: two BU customers *)
              [ "e2"; "AC"; "e2" ]; (* denial violation: self support *)
            ] );
        ("Emp", Relation.of_str_rows [ [ "e0"; "BU" ]; [ "e1"; "BU" ]; [ "e2"; "AC" ] ]);
      ]
  in
  Format.printf "FD violated?     %b (direct)  %b (via CCs)@." (not (Fd.holds dirty fd))
    (not (Containment.holds_all ~db:dirty ~master:empty_master ccs_fd));
  Format.printf "CFD violated?    %b (direct)  %b (via CCs)@." (not (Cfd.holds dirty cfd))
    (not (Containment.holds_all ~db:dirty ~master:empty_master ccs_cfd));
  Format.printf "denial violated? %b (direct)  %b (via CCs)@."
    (not (Denial.holds dirty denial))
    (not (Containment.holds_all ~db:dirty ~master:empty_master [ cc_denial ]));
  Format.printf "CIND violated?   %b (direct)  %b (via CCs)@."
    (not (Cind.holds dirty cind))
    (not (Containment.holds_all ~db:dirty ~master:empty_master [ cc_cind ]));

  section "Consistency constraints double as completeness certificates";
  (* Example 4.1: under eid → dept,cid, the nonempty answer to "which
     customer does e0 support in d0?" is already complete. *)
  let fd_full = Fd.make ~rel:"Supt" ~lhs:[ 0 ] ~rhs:[ 1; 2 ] () in
  let ccs = Translate.of_fd schema fd_full in
  let clean =
    Database.of_list schema [ ("Supt", Relation.of_str_rows [ [ "e0"; "d0"; "c0" ] ]) ]
  in
  let q2 = Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ Term.str "e0"; v "d"; v "c" ] ] in
  (match Rcdp.decide ~schema ~master:empty_master ~ccs ~db:clean (Lang.Q_cq q2) with
   | Rcdp.Complete ->
     Format.printf
       "with eid → dept,cid in force, one support row makes Q2 complete:@.any further \
        e0-row would contradict the FD.@."
   | Rcdp.Incomplete _ -> Format.printf "unexpectedly incomplete@.");

  (* ... but the weaker FD eid → dept is not enough: no database is
     ever complete for Q2 (Example 4.1's negative half). *)
  (match Rcqp.decide ~schema ~master:empty_master ~ccs:ccs_fd (Lang.Q_cq q2) with
   | Rcqp.Empty { reason } ->
     Format.printf "@.under eid → dept alone, NO database is complete for Q2:@.  %s@." reason
   | r -> Format.printf "unexpected verdict %s@." (Rcqp.verdict_name r));

  Format.printf "@.Done.@."
