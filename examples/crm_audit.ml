(* CRM completeness audit — the full Section 2.3 walkthrough on a
   generated Customer Relationship Management scenario.

   The company keeps master data DCust (every domestic customer) and a
   transactional database with Cust / Supt / Manage that lost some
   rows.  We audit three queries:

     Q0  — domestic area-908 customers        (completable from Dm)
     Q'0 — all customers incl. international  (master data must grow)
     Q3  — everyone above e0 in the hierarchy (FP vs CQ completeness)

   Run with: dune exec examples/crm_audit.exe *)

open Ric_relational
open Ric_query
open Ric_complete
open Ric_workloads

let section title = Format.printf "@.== %s ==@." title

let () =
  let master =
    Crm.master ~customers:9 ~managers:[ ("e1", "e0"); ("e2", "e1"); ("e3", "e2") ] ()
  in
  (* 65% of the master customers made it into the transactional DB *)
  let db = Crm.db ~seed:7 ~master ~keep:0.65 ~supported_by:[ ("e0", [ "d0"; "d1" ]) ] () in
  let db = Crm.add_international db [ ("i0", "ACME GmbH"); ("i1", "Globex Ltd") ] in
  let ccs = [ Crm.cc_domestic_customers ] in

  section "Scenario";
  Format.printf "master data has %d domestic customers; the database has %d Cust rows@."
    (Relation.cardinal (Database.relation master "DCust"))
    (Relation.cardinal (Database.relation db "Cust"));

  section "Q0: domestic customers with area code 908";
  Format.printf "current answer: %a@." Relation.pp (Cq.eval db Crm.q0);
  (match Guidance.audit ~schema:Crm.db_schema ~master ~ccs ~db (Lang.Q_cq Crm.q0) with
   | Guidance.Already_complete ->
     Format.printf "verdict: complete — the answer can be trusted@."
   | Guidance.Completable { additions; completed; rounds } ->
     Format.printf "verdict: incomplete but completable (%d round(s)).@." rounds;
     Format.printf "collect:@.%a@." Database.pp additions;
     Format.printf "after collection the answer is %a@." Relation.pp
       (Cq.eval completed Crm.q0)
   | r -> Format.printf "verdict: %a@." Guidance.pp_audit r);

  section "Q'0: every customer, domestic or international";
  (match
     Guidance.audit ~schema:Crm.db_schema ~master ~ccs ~db (Lang.Q_cq Crm.q0_all_customers)
   with
   | Guidance.Not_completable { reason } ->
     Format.printf
       "verdict: no database can be complete for Q'0 —@.  %s@.  ⇒ extend the MASTER data \
        (Section 2.3, paradigm 3)@."
       reason
   | r -> Format.printf "verdict: %a@." Guidance.pp_audit r);

  section "Q3: everyone above e0 (completeness is relative to the language)";
  let fp_answer = Datalog.eval db Crm.q3_fp in
  let cq_answer = Cq.eval db Crm.q3_cq in
  Format.printf "FP (transitive closure) finds: %a@." Relation.pp fp_answer;
  Format.printf "CQ (one step) finds:          %a@." Relation.pp cq_answer;
  Format.printf
    "the same Manage relation is complete for the FP query's intent,@.but the CQ \
     truncation misses indirect reports — Example 1.1's point.@.";

  section "Support-load cap (Example 2.2)";
  let k = Relation.cardinal (Cq.eval db Crm.q2) in
  if k > 0 then begin
    let ccs = [ Crm.cc_support_load k ] in
    match Rcdp.decide ~schema:Crm.db_schema ~master ~ccs ~db (Lang.Q_cq Crm.q2) with
    | Rcdp.Complete ->
      Format.printf
        "e0 already supports %d customers and the policy caps support at %d:@.the \
         seemingly open Supt relation is COMPLETE for Q2.@."
        k k
    | Rcdp.Incomplete _ -> Format.printf "unexpectedly incomplete@."
  end;

  Format.printf "@.Done.@."
