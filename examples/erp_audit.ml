(* ERP completeness audit: project staffing, roles, and timesheets.

   Shows how different constraints give different completeness
   behaviour on ONE database:

   - staffing queries are bounded by the master directory/registry
     (answerable after collecting finitely much data),
   - role lookups become complete after a single row (the FD pins it),
   - billing queries are hopeless (no constraint touches Timesheet).

   Run with: dune exec examples/erp_audit.exe *)

open Ric_relational
open Ric_query
open Ric_complete
open Ric_workloads

let section title = Format.printf "@.== %s ==@." title

let () =
  let master =
    Erp.master
      ~employees:[ ("e0", "eng"); ("e1", "eng"); ("e2", "sales") ]
      ~projects:[ ("apollo", "eng"); ("zeus", "sales") ]
  in
  let db =
    Erp.db
      ~assignments:[ ("e0", "apollo", "lead"); ("e1", "apollo", "dev") ]
      ~timesheets:[ ("e0", "apollo", 12) ]
  in
  Format.printf "master:@.%a@.@.database:@.%a@." Database.pp master Database.pp db;

  section "Who staffs apollo?  (bounded by the directory)";
  (match
     Guidance.audit ~schema:Erp.db_schema ~master ~ccs:Erp.ccs ~db
       (Lang.Q_cq (Erp.q_staff "apollo"))
   with
   | Guidance.Already_complete ->
     Format.printf "complete — but only because every employee is already assigned?@."
   | Guidance.Completable { additions; _ } ->
     Format.printf "incomplete; e2 could still be assigned:@.%a@." Database.pp additions
   | r -> Format.printf "%a@." Guidance.pp_audit r);

  section "What is e0's role on apollo?  (the FD pins it)";
  (match
     Rcdp.decide ~schema:Erp.db_schema ~master ~ccs:Erp.ccs ~db
       (Lang.Q_cq (Erp.q_role "e0" "apollo"))
   with
   | Rcdp.Complete ->
     Format.printf
       "complete: (eid, pid) → role means no admissible extension can add a second role@."
   | Rcdp.Incomplete _ -> Format.printf "unexpectedly incomplete@.");

  section "And e2's role on zeus?  (no row yet — RCQP says it is achievable)";
  (match
     Rcqp.decide ~schema:Erp.db_schema ~master ~ccs:Erp.ccs
       (Lang.Q_cq (Erp.q_role "e2" "zeus"))
   with
   | Rcqp.Nonempty { reason; _ } -> Format.printf "achievable — %s@." reason
   | r -> Format.printf "%s@." (Rcqp.verdict_name r));

  section "Hours billed to apollo?  (Timesheet is pure open world)";
  (match
     Guidance.audit ~schema:Erp.db_schema ~master ~ccs:Erp.ccs ~db
       (Lang.Q_cq (Erp.q_billed "apollo"))
   with
   | Guidance.Not_completable { reason } ->
     Format.printf "never complete — %s@.⇒ master the timesheets if billing must be exact@."
       reason
   | r -> Format.printf "%a@." Guidance.pp_audit r);

  Format.printf "@.Done.@."
