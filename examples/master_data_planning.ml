(* Master-data planning: use RCQP to decide WHAT to master.

   MDM's practical question (Loshin 2008, quoted in Section 2.3): which
   entity categories should be promoted into master data so that the
   queries the business actually runs can get complete answers?  This
   example takes a small workload of queries and, for each candidate
   master-data configuration, reports which queries become relatively
   complete.

   Run with: dune exec examples/master_data_planning.exe *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

let schema =
  Schema.make
    [
      Schema.relation "Order"
        [ Schema.attribute "oid"; Schema.attribute "cust"; Schema.attribute "item" ];
    ]

let v = Term.var

(* Candidate master configurations: which projections of Order are
   bounded by a mastered repository. *)
let configurations =
  [
    ("nothing mastered", [], []);
    ( "customers mastered",
      [ Schema.relation "MCust" [ Schema.attribute "cust" ] ],
      [ ("Order", [ 1 ], "MCust", [ 0 ]) ] );
    ( "customers + catalogue mastered",
      [
        Schema.relation "MCust" [ Schema.attribute "cust" ];
        Schema.relation "MItem" [ Schema.attribute "item" ];
      ],
      [ ("Order", [ 1 ], "MCust", [ 0 ]); ("Order", [ 2 ], "MItem", [ 0 ]) ] );
    ( "full order book mastered",
      [
        Schema.relation "MOrder"
          [ Schema.attribute "oid"; Schema.attribute "cust"; Schema.attribute "item" ];
      ],
      [ ("Order", [ 0; 1; 2 ], "MOrder", [ 0; 1; 2 ]) ] );
  ]

(* The query workload. *)
let workload =
  [
    ( "customers-with-orders",
      Cq.make ~head:[ v "c" ] [ Atom.make "Order" [ v "o"; v "c"; v "i" ] ] );
    ( "items-ordered",
      Cq.make ~head:[ v "i" ] [ Atom.make "Order" [ v "o"; v "c"; v "i" ] ] );
    ( "customer-item-pairs",
      Cq.make ~head:[ v "c"; v "i" ] [ Atom.make "Order" [ v "o"; v "c"; v "i" ] ] );
    ( "full-orders",
      Cq.make ~head:[ v "o"; v "c"; v "i" ] [ Atom.make "Order" [ v "o"; v "c"; v "i" ] ] );
  ]

let () =
  Format.printf "Which master-data configuration lets which query find complete answers?@.@.";
  Format.printf "%-34s" "";
  List.iter (fun (name, _) -> Format.printf "%-22s" name) workload;
  Format.printf "@.";
  List.iter
    (fun (config_name, master_rels, ind_specs) ->
      let master_schema = Schema.make master_rels in
      (* a tiny mastered population *)
      let master =
        List.fold_left
          (fun m (r : Schema.relation_schema) ->
            let arity = Schema.arity r in
            let rows = List.init 2 (fun k -> List.init arity (fun c -> (10 * k) + c)) in
            Database.set_relation m r.Schema.rel_name (Relation.of_int_rows rows))
          (Database.empty master_schema) master_rels
      in
      let inds =
        List.map
          (fun (rel, cols, mrel, mcols) ->
            Ind.make ~rel ~cols (Projection.proj mrel mcols))
          ind_specs
      in
      Format.printf "%-34s" config_name;
      List.iter
        (fun (_, q) ->
          let verdict = Rcqp.decide_ind ~schema ~master ~inds (Lang.Q_cq q) in
          let cell =
            match verdict with
            | Rcqp.Nonempty _ -> "complete ✓"
            | Rcqp.Empty _ -> "unbounded ✗"
            | Rcqp.Unknown _ -> "?"
          in
          Format.printf "%-22s" cell)
        workload;
      Format.printf "@.")
    configurations;
  Format.printf
    "@.Reading: a ✓ means some partially closed database can answer the query@.completely \
     under that configuration (RCQ(Q, Dm, V) ≠ ∅, Proposition 4.3); a ✗ means@.even \
     unbounded data collection cannot — the configuration must master more.@."
