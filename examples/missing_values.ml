(* Missing values meet missing tuples — the Section 5 extension.

   The paper handles missing tuples; its conclusion points to
   representation systems (c-tables) for missing values.  This example
   shows the lifted analysis: a support database where some CELLS are
   unknown (marked nulls), audited world by world.

   Run with: dune exec examples/missing_values.exe *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete
open Ric_incomplete

let section title = Format.printf "@.== %s ==@." title

let schema =
  Schema.make
    [
      Schema.relation "Supt"
        [ Schema.attribute "eid"; Schema.attribute "dept"; Schema.attribute "cid" ];
    ]

let master_schema = Schema.make [ Schema.relation "DCust" [ Schema.attribute "cid" ] ]

let () =
  let master =
    Database.of_list master_schema
      [ ("DCust", Relation.of_str_rows [ [ "c0" ]; [ "c1" ] ]) ]
  in
  let v = Term.var in
  let bound =
    Containment.make ~name:"supported⊆DCust"
      (Lang.Q_cq (Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ v "e"; v "d"; v "c" ] ]))
      (Projection.proj "DCust" [ 0 ])
  in
  let q = Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ Term.str "e0"; v "d"; v "c" ] ] in

  section "A support table with an unreadable customer field";
  (* the second row's customer id was lost: it is a marked null *)
  let cdb =
    Cdatabase.make schema
      [
        Ctable.make ~rel:"Supt" ~arity:3
          [
            Ctable.ground (Tuple.of_strs [ "e0"; "d0"; "c0" ]);
            Ctable.row
              [ Ctable.Const (Value.str "e0"); Ctable.Const (Value.str "d0"); Ctable.Null "who" ];
          ];
      ]
  in
  Format.printf "%a@." Cdatabase.pp cdb;
  Format.printf "constraint: %a@." Containment.pp bound;
  Format.printf "query Q2:   %a@." Cq.pp q;

  let values = [ Value.str "c0"; Value.str "c1" ] in
  section "Certain vs possible answers";
  Format.printf "certain : %a@." Relation.pp
    (Cdatabase.certain_answers ~values cdb (Lang.Q_cq q));
  Format.printf "possible: %a@." Relation.pp
    (Cdatabase.possible_answers ~values cdb (Lang.Q_cq q));

  section "Relative completeness across the possible worlds";
  let report = Rc_missing.analyze ~values ~schema ~master ~ccs:[ bound ] cdb (Lang.Q_cq q) in
  Format.printf "%a@." Rc_missing.pp_report report;
  List.iter
    (fun r ->
      Format.printf "  world %a : %s@." Database.pp r.Rc_missing.world
        (match r.Rc_missing.verdict with
         | None -> "not partially closed"
         | Some Rcdp.Complete -> "complete"
         | Some (Rcdp.Incomplete cex) ->
           Format.asprintf "incomplete (missing %a)" Tuple.pp cex.Rcdp.cex_answer))
    report.Rc_missing.world_reports;

  section "Interpretation";
  Format.printf
    "If the lost id resolves to c1, the table covers every master customer and is@.\
     complete for Q2; if it resolves to c0 the row duplicates what we knew and c1@.\
     is genuinely missing.  The database is WEAKLY complete: cleaning the null is@.\
     worth more than collecting new rows.@."
