(* Quickstart: is my database complete enough to answer this query?

   This walks the paper's running example (Examples 1.1 / 2.1 / 2.2):
   a master list of domestic customers, a partially closed
   transactional database, and three relative-completeness questions.

   Run with: dune exec examples/quickstart.exe *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

let section title = Format.printf "@.== %s ==@." title

let () =
  (* 1. Schemas: the database has Supt(eid, dept, cid); master data has
     the closed-world customer list DCust(cid). *)
  let schema =
    Schema.make
      [
        Schema.relation "Supt"
          [ Schema.attribute "eid"; Schema.attribute "dept"; Schema.attribute "cid" ];
      ]
  in
  let master_schema = Schema.make [ Schema.relation "DCust" [ Schema.attribute "cid" ] ] in

  (* 2. Instances. The company has three domestic customers; employee
     e0 supports two of them so far. *)
  let master =
    Database.of_list master_schema
      [ ("DCust", Relation.of_str_rows [ [ "c0" ]; [ "c1" ]; [ "c2" ] ]) ]
  in
  let db =
    Database.of_list schema
      [ ("Supt", Relation.of_str_rows [ [ "e0"; "d0"; "c0" ]; [ "e0"; "d0"; "c1" ] ]) ]
  in

  (* 3. A containment constraint: supported customers are domestic
     customers — q(c) = ∃e,d Supt(e,d,c) ⊆ π_cid(DCust).  Everything
     else about Supt is open world. *)
  let v = Term.var in
  let supported_are_domestic =
    Containment.make ~name:"supported⊆DCust"
      (Lang.Q_cq (Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ v "e"; v "d"; v "c" ] ]))
      (Projection.proj "DCust" [ 0 ])
  in
  let ccs = [ supported_are_domestic ] in

  (* 4. The query: which customers does e0 support? *)
  let q2 = Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ Term.str "e0"; v "d"; v "c" ] ] in

  section "The data";
  Format.printf "master:@.%a@.@.database:@.%a@." Database.pp master Database.pp db;
  Format.printf "@.constraint: %a@." Containment.pp supported_are_domestic;
  Format.printf "query Q2:   %a@." Cq.pp q2;

  section "RCDP: is this database complete for Q2?";
  (match Rcdp.decide ~schema ~master ~ccs ~db (Lang.Q_cq q2) with
   | Rcdp.Complete -> Format.printf "complete — the answer %a can be trusted@." Relation.pp (Cq.eval db q2)
   | Rcdp.Incomplete cex ->
     Format.printf
       "incomplete — adding@.%a@.stays within the constraints and adds the answer %a@."
       Database.pp cex.Rcdp.cex_extension Tuple.pp cex.Rcdp.cex_answer);

  section "Guidance: what should we collect?";
  (match Guidance.audit ~schema ~master ~ccs ~db (Lang.Q_cq q2) with
   | Guidance.Completable { additions; rounds; _ } ->
     Format.printf "collect these tuples (%d round(s) of analysis):@.%a@." rounds Database.pp
       additions
   | r -> Format.printf "%a@." Guidance.pp_audit r);

  section "After collecting the missing support rows";
  let db' = Database.add_tuple db "Supt" (Tuple.of_strs [ "e0"; "d1"; "c2" ]) in
  (match Rcdp.decide ~schema ~master ~ccs ~db:db' (Lang.Q_cq q2) with
   | Rcdp.Complete ->
     Format.printf "complete — Q2 now returns %a and no admissible extension can change it@."
       Relation.pp (Cq.eval db' q2)
   | Rcdp.Incomplete _ -> Format.printf "still incomplete@.");

  section "RCQP: could ANY database be complete for Q2?";
  (match Rcqp.decide ~schema ~master ~ccs (Lang.Q_cq q2) with
   | Rcqp.Nonempty { reason; _ } -> Format.printf "yes — %s@." reason
   | Rcqp.Empty { reason } -> Format.printf "no — %s@." reason
   | Rcqp.Unknown { reason } -> Format.printf "unknown — %s@." reason);

  Format.printf "@.Done.@."
