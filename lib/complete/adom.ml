open Ric_relational

type t = {
  constants : Value.t list;
  fresh : Value.t list;
}

let build ?db ?(schemas = []) ~master ~cc_constants ~query_constants ~fresh_count () =
  let finite_domain_values =
    List.concat_map
      (fun sch ->
        List.concat_map
          (fun (r : Schema.relation_schema) ->
            List.concat_map
              (fun (a : Schema.attribute) ->
                Option.value ~default:[] (Domain.values a.attr_dom))
              r.attrs)
          (Schema.relations sch))
      schemas
  in
  let base =
    (match db with
     | Some d -> Database.adom d
     | None -> [])
    @ Database.adom master @ cc_constants @ query_constants @ finite_domain_values
    |> List.sort_uniq Value.compare
  in
  (* Fresh integers above every known integer constant; strings never
     collide with the "⋆n" spelling because known strings are data. *)
  let max_int_const =
    List.fold_left
      (fun m v ->
        match v with
        | Value.Int n -> max m n
        | Value.Str _ -> m)
      0 base
  in
  let fresh = List.init fresh_count (fun i -> Value.Int (max_int_const + 1 + i)) in
  { constants = base; fresh }

let constants t = t.constants
let fresh t = t.fresh
let all t = t.constants @ t.fresh

let candidates t = function
  | Domain.Finite vs -> vs
  | Domain.Infinite -> all t

let size t = List.length t.constants + List.length t.fresh
