(** The active domain [Adom] of a relative-completeness instance
    (Sections 3.2 and 4.2).

    [Adom] consists of (a) every constant appearing in [D], [Dm], [Q]
    or [V], and (b) a set [New] of distinct fresh values — one per
    variable of the query tableau and of the tableau representations
    of the constraint queries.  The paper's small-model arguments
    (Propositions 3.3, 4.2 and their corollaries) show that checking
    valuations over [Adom] suffices; this module materialises that
    domain and hands out the per-variable candidate sets [adom(y)]. *)

open Ric_relational

type t

val build :
  ?db:Database.t ->
  ?schemas:Schema.t list ->
  master:Database.t ->
  cc_constants:Value.t list ->
  query_constants:Value.t list ->
  fresh_count:int ->
  unit ->
  t
(** [fresh_count] — how many [New] values to mint (callers pass the
    number of distinct variables in the query tableau plus the
    constraint tableaux).  Fresh values are guaranteed distinct from
    every constant of [db], [master], [cc_constants],
    [query_constants], and every finite-domain value of [schemas]
    (the paper's [d_f ⊆ Adom] proviso). *)

val constants : t -> Value.t list
(** Part (a): the known constants. *)

val fresh : t -> Value.t list
(** Part (b): the [New] values. *)

val all : t -> Value.t list
(** [constants ∪ fresh]. *)

val candidates : t -> Domain.t -> Value.t list
(** [adom(y)] for a variable of the given effective domain: the whole
    finite domain for [Finite], {!all} for [Infinite]. *)

val size : t -> int
