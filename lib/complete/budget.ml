type reason = Deadline | Step_limit | Cancelled

let reason_name = function
  | Deadline -> "deadline"
  | Step_limit -> "step_limit"
  | Cancelled -> "cancelled"

exception Exhausted of reason

(* Observability: polls happen at most once per 256 steps, so one
   atomic add here is invisible next to the syscall it accompanies;
   exhaustions are rare by construction. *)
let m_polls =
  Ric_obs.Metrics.counter
    ~help:"full budget checks (deadline and cancel-flag polls)"
    "ric_budget_polls_total"

let m_exhausted r =
  Ric_obs.Metrics.counter
    ~help:"searches aborted by a spent budget, by reason"
    ~labels:[ ("reason", reason_name r) ]
    "ric_budget_exhausted_total"

let m_exhausted_deadline = m_exhausted Deadline
let m_exhausted_steps = m_exhausted Step_limit
let m_exhausted_cancelled = m_exhausted Cancelled

let exhaust r =
  (match r with
   | Deadline -> Ric_obs.Metrics.incr m_exhausted_deadline
   | Step_limit -> Ric_obs.Metrics.incr m_exhausted_steps
   | Cancelled -> Ric_obs.Metrics.incr m_exhausted_cancelled);
  raise (Exhausted r)

type t = {
  limited : bool;
  label : string option;        (* correlation id of the owning request *)
  deadline : float;            (* absolute wall-clock time; infinity when unset *)
  max_steps : int;             (* max_int when unset *)
  cancel : bool Atomic.t list;
  mutable steps : int;
  shared : int Atomic.t option;
  (* When set, [max_steps] caps this process-wide counter instead of
     the local [steps]: every tick does one [fetch_and_add], so a
     family of workers sharing the counter enforces the cap exactly —
     no overshoot, no job-end merge.  [steps] stays the per-worker
     tally (poll stride + utilisation reporting). *)
}

let unlimited =
  {
    limited = false;
    label = None;
    deadline = infinity;
    max_steps = max_int;
    cancel = [];
    steps = 0;
    shared = None;
  }

let create ?deadline_after ?max_steps ?cancel ?label () =
  let deadline =
    match deadline_after with
    | Some d -> Unix.gettimeofday () +. d
    | None -> infinity
  in
  {
    limited = true;
    label;
    deadline;
    max_steps = Option.value ~default:max_int max_steps;
    cancel = Option.to_list cancel;
    steps = 0;
    shared = None;
  }

let steps t = t.steps
let label t = t.label

let remaining t =
  if t.max_steps = max_int then max_int else max 0 (t.max_steps - t.steps)

let is_unlimited t = not t.limited

let add_steps t n = if n > 0 then t.steps <- t.steps + n

(* A child budget for one parallel search worker: its own step counter
   (each domain ticks without contention), the parent's deadline, the
   parent's cancel flags plus an optional extra one (the coordinator's
   first-witness stop flag), and whatever step allowance the parent has
   left after [extra_steps] units already handed to siblings.  The
   child is always limited — even under an unlimited parent the extra
   cancel flag must be polled. *)
let fork ?cancel ?(extra_steps = 0) t =
  let max_steps =
    if t.max_steps = max_int then max_int
    else max 0 (t.max_steps - t.steps - extra_steps)
  in
  {
    limited = true;
    label = t.label;
    deadline = t.deadline;
    max_steps;
    cancel =
      (match cancel with Some flag -> flag :: t.cancel | None -> t.cancel);
    steps = 0;
    shared = None;
  }

(* A sibling-family child: ticks count against one process-wide atomic
   the whole family shares, and [max_steps] caps that counter, so the
   family as a whole can never overshoot the parent's remaining
   allowance — unlike [fork], where each child polls its private
   counter and concurrent children can collectively run past the cap
   between merges. *)
let fork_shared ~shared ?cancel t =
  let max_steps =
    if t.max_steps = max_int then max_int
    else max 0 (t.max_steps - t.steps)
  in
  {
    limited = true;
    label = t.label;
    deadline = t.deadline;
    max_steps;
    cancel =
      (match cancel with Some flag -> flag :: t.cancel | None -> t.cancel);
    steps = 0;
    shared = Some shared;
  }

(* Steps consumed against [max_steps]: the family total for a shared
   child, the private counter otherwise. *)
let consumed t =
  match t.shared with Some c -> Atomic.get c | None -> t.steps

let check_now t =
  if t.limited then begin
    Ric_obs.Metrics.incr m_polls;
    if consumed t >= t.max_steps then exhaust Step_limit;
    List.iter
      (fun flag -> if Atomic.get flag then exhaust Cancelled)
      t.cancel;
    if t.deadline < infinity && Unix.gettimeofday () > t.deadline then
      exhaust Deadline
  end

(* The wall clock and the cancel flags are polled once every 256 steps:
   a syscall per search leaf would dominate the leaf itself, and a
   deadline overshoot of a few hundred leaves is well inside the
   millisecond noise a caller can observe anyway. *)
let mask = 255

let tick t =
  if t.limited then begin
    t.steps <- t.steps + 1;
    (match t.shared with
     | Some c ->
       if 1 + Atomic.fetch_and_add c 1 >= t.max_steps then exhaust Step_limit
     | None -> if t.steps >= t.max_steps then exhaust Step_limit);
    if t.steps land mask = 0 then check_now t
  end
