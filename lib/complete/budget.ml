type reason = Deadline | Step_limit | Cancelled

let reason_name = function
  | Deadline -> "deadline"
  | Step_limit -> "step_limit"
  | Cancelled -> "cancelled"

exception Exhausted of reason

type t = {
  limited : bool;
  deadline : float;            (* absolute wall-clock time; infinity when unset *)
  max_steps : int;             (* max_int when unset *)
  cancel : bool Atomic.t option;
  mutable steps : int;
}

let unlimited =
  { limited = false; deadline = infinity; max_steps = max_int; cancel = None; steps = 0 }

let create ?deadline_after ?max_steps ?cancel () =
  let deadline =
    match deadline_after with
    | Some d -> Unix.gettimeofday () +. d
    | None -> infinity
  in
  {
    limited = true;
    deadline;
    max_steps = Option.value ~default:max_int max_steps;
    cancel;
    steps = 0;
  }

let steps t = t.steps

let is_unlimited t = not t.limited

let check_now t =
  if t.limited then begin
    if t.steps >= t.max_steps then raise (Exhausted Step_limit);
    (match t.cancel with
     | Some flag when Atomic.get flag -> raise (Exhausted Cancelled)
     | _ -> ());
    if t.deadline < infinity && Unix.gettimeofday () > t.deadline then
      raise (Exhausted Deadline)
  end

(* The wall clock and the cancel flag are polled once every 256 steps:
   a syscall per search leaf would dominate the leaf itself, and a
   deadline overshoot of a few hundred leaves is well inside the
   millisecond noise a caller can observe anyway. *)
let mask = 255

let tick t =
  if t.limited then begin
    t.steps <- t.steps + 1;
    if t.steps >= t.max_steps then raise (Exhausted Step_limit)
    else if t.steps land mask = 0 then check_now t
  end
