(** Cooperative resource budgets for the deciders.

    RCDP is Σ₂ᵖ-complete and RCQP NEXPTIME-complete (Tables I–II), so
    a single adversarial instance can keep a decider busy for longer
    than any caller is willing to wait.  A [Budget.t] is threaded
    through the valuation search and checked at every search leaf; when
    the wall-clock deadline passes, the step allowance runs out, or the
    cancel flag is raised, the search aborts with {!Exhausted} and the
    caller reports a [timeout] outcome carrying the work-done counters
    instead of hanging.

    A budget is single-use and owned by one decide call; only the
    [cancel] flags may be shared across domains (they are [Atomic.t]s).
    Parallel search workers never share a budget: each gets a {!fork}
    with its own step counter, and the coordinator folds the children's
    work back into the parent with {!add_steps}. *)

type reason =
  | Deadline    (** the wall-clock deadline passed *)
  | Step_limit  (** the step allowance ran out *)
  | Cancelled   (** the shared cancel flag was raised *)

val reason_name : reason -> string
(** ["deadline"], ["step_limit"] or ["cancelled"] — the wire spelling. *)

exception Exhausted of reason

type t

val unlimited : t
(** The default everywhere: {!tick} on it is a no-op and never raises. *)

val create :
  ?deadline_after:float ->
  ?max_steps:int ->
  ?cancel:bool Atomic.t ->
  ?label:string ->
  unit ->
  t
(** [deadline_after] is in seconds from now; [max_steps] caps the
    number of {!tick}s; [cancel] is polled so another domain can abort
    the search.  Omitted dimensions are unbounded.  [label] carries
    the owning request's correlation id ([req_id]) down into the
    deciders, which stamp it on their trace spans — it costs nothing
    and limits nothing. *)

val tick : t -> unit
(** Count one unit of work.  Steps are compared every tick; the clock
    and the cancel flag are polled every 256 ticks.
    @raise Exhausted when the budget is spent. *)

val check_now : t -> unit
(** Force a full check regardless of the polling stride (used at
    coarse-grained points like DFS nodes).  @raise Exhausted *)

val steps : t -> int
(** Work done so far — the counter surfaced in timeout verdicts. *)

val label : t -> string option
(** The correlation id the budget carries ({!create}'s [label];
    inherited by {!fork} and {!fork_shared} children). *)

val remaining : t -> int
(** Step allowance left ([max_int] when unbounded) — what a
    coordinator may still fold in with {!add_steps} without pushing
    {!steps} past the cap. *)

val is_unlimited : t -> bool

val fork : ?cancel:bool Atomic.t -> ?extra_steps:int -> t -> t
(** A child budget for one parallel worker: fresh step counter, the
    parent's deadline and cancel flags, plus an optional extra flag
    (the coordinator's first-witness stop signal).  Its step allowance
    is what the parent has left minus [extra_steps] units already
    consumed by sibling workers.  The child is limited even when the
    parent is {!unlimited}, so the extra flag is always polled.

    Accounting contract: every child step must reach the parent's
    {!steps} counter {b exactly once}.  The coordinator achieves this
    by reading {!steps} of each child exactly once after the child
    stops (normally or via [Exhausted]), accumulating the reads, and
    folding the total into the parent with a single {!add_steps} —
    never by calling [add_steps] per child {e and} per accumulator.
    [extra_steps] only narrows a {e new} child's allowance; it is not
    added to any counter, so passing a stale value cannot double-count
    (it can only let concurrently-running children overshoot
    [max_steps] slightly, which the parent's own [check_now] bounds).
    The test suite pins this down by comparing par-mode and seq-mode
    step totals on the same instance.

    Prefer {!fork_shared} for a family of concurrent workers: it
    enforces the cap exactly instead of per-child. *)

val fork_shared : shared:int Atomic.t -> ?cancel:bool Atomic.t -> t -> t
(** Like {!fork}, but every tick of every child built over the same
    [shared] atomic counts against that one counter, and the parent's
    remaining allowance caps the {e family total} — concurrent workers
    can never collectively overshoot the step cap, and no job-end merge
    is needed for enforcement.  Each child's {!steps} remains its
    private tally (used for the 256-tick poll stride and per-worker
    utilisation reporting).

    Accounting contract under sharing: the coordinator folds
    [min (Atomic.get shared) allowance] into the parent with a single
    {!add_steps} after all children stop; it must {e not} also fold the
    children's private {!steps} (the shared counter already holds the
    family total). *)

val add_steps : t -> int -> unit
(** Fold a child's step count back into the parent after a join.
    Does not raise — follow with {!check_now} to propagate limits. *)
