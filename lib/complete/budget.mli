(** Cooperative resource budgets for the deciders.

    RCDP is Σ₂ᵖ-complete and RCQP NEXPTIME-complete (Tables I–II), so
    a single adversarial instance can keep a decider busy for longer
    than any caller is willing to wait.  A [Budget.t] is threaded
    through the valuation search and checked at every search leaf; when
    the wall-clock deadline passes, the step allowance runs out, or the
    cancel flag is raised, the search aborts with {!Exhausted} and the
    caller reports a [timeout] outcome carrying the work-done counters
    instead of hanging.

    A budget is single-use and owned by one decide call; only the
    [cancel] flag may be shared across domains (it is an [Atomic.t]). *)

type reason =
  | Deadline    (** the wall-clock deadline passed *)
  | Step_limit  (** the step allowance ran out *)
  | Cancelled   (** the shared cancel flag was raised *)

val reason_name : reason -> string
(** ["deadline"], ["step_limit"] or ["cancelled"] — the wire spelling. *)

exception Exhausted of reason

type t

val unlimited : t
(** The default everywhere: {!tick} on it is a no-op and never raises. *)

val create :
  ?deadline_after:float -> ?max_steps:int -> ?cancel:bool Atomic.t -> unit -> t
(** [deadline_after] is in seconds from now; [max_steps] caps the
    number of {!tick}s; [cancel] is polled so another domain can abort
    the search.  Omitted dimensions are unbounded. *)

val tick : t -> unit
(** Count one unit of work.  Steps are compared every tick; the clock
    and the cancel flag are polled every 256 ticks.
    @raise Exhausted when the budget is spent. *)

val check_now : t -> unit
(** Force a full check regardless of the polling stride (used at
    coarse-grained points like DFS nodes).  @raise Exhausted *)

val steps : t -> int
(** Work done so far — the counter surfaced in timeout verdicts. *)

val is_unlimited : t -> bool
