open Ric_relational
module Metrics = Ric_obs.Metrics
module Trace = Ric_obs.Trace

let m_audits =
  Metrics.counter ~help:"guidance audits run, by outcome"
    "ric_guidance_audits_total"

type audit_result =
  | Already_complete
  | Completable of {
      additions : Database.t;
      completed : Database.t;
      rounds : int;
    }
  | Not_completable of { reason : string }
  | Inconclusive of { reason : string }

let audit ?clock ?search ?profile ?(max_rounds = 64) ~schema ~master ~ccs ~db q =
  Trace.with_span "guidance.audit" @@ fun sp ->
  Metrics.incr m_audits;
  let outcome result =
    Trace.set_str sp "outcome"
      (match result with
       | Already_complete -> "already_complete"
       | Completable { rounds; _ } ->
         Trace.set_int sp "rounds" rounds;
         "completable"
       | Not_completable _ -> "not_completable"
       | Inconclusive _ -> "inconclusive");
    result
  in
  outcome
  @@
  match Rcdp.decide ?clock ?search ?profile ~schema ~master ~ccs ~db q with
  | Rcdp.Complete -> Already_complete
  | Rcdp.Incomplete first ->
    (* Is completion possible at all? *)
    (match Rcqp.decide ?clock ?search ?profile ~schema ~master ~ccs q with
     | Rcqp.Empty { reason } ->
       Not_completable
         { reason = Printf.sprintf "no complete database exists: %s" reason }
     | Rcqp.Nonempty _ | Rcqp.Unknown _ ->
       (* Replay counterexamples until the decider is satisfied. *)
       let rec loop current cex rounds =
         if rounds > max_rounds then
           Inconclusive
             {
               reason =
                 Printf.sprintf
                   "still incomplete after %d extension rounds; the missing data may be \
                    unbounded"
                   max_rounds;
             }
         else begin
           let current = Database.union current cex.Rcdp.cex_extension in
           match
             Rcdp.decide ?clock ?search ?profile ~schema ~master ~ccs
               ~db:current q
           with
           | Rcdp.Complete ->
             let additions =
               Database.fold
                 (fun name rel acc ->
                   let original =
                     try Database.relation db name with Not_found -> Relation.empty
                   in
                   Database.set_relation acc name (Relation.diff rel original))
                 current (Database.empty schema)
             in
             Completable { additions; completed = current; rounds }
           | Rcdp.Incomplete cex' -> loop current cex' (rounds + 1)
         end
       in
       loop db first 1)

let pp_audit ppf = function
  | Already_complete -> Format.fprintf ppf "complete: the database can answer the query"
  | Completable { additions; rounds; _ } ->
    Format.fprintf ppf
      "incomplete, but completable in %d round(s); collect these tuples:@.%a" rounds
      Database.pp additions
  | Not_completable { reason } ->
    Format.fprintf ppf "not completable by adding data — expand the master data.@.%s" reason
  | Inconclusive { reason } -> Format.fprintf ppf "inconclusive: %s" reason
