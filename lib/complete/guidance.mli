(** The three relative-completeness paradigms of Section 2.3, packaged
    as one audit:

    (1) {e assess} — is the database already complete for the query?
    (2) {e guide data collection} — if not, which tuples make it
        complete?  RCDP counterexamples are exactly the missing
        witnesses (Proposition 3.3's valuations), so replaying them
        into the database until the decider says "complete" yields a
        concrete to-collect list.
    (3) {e guide master-data expansion} — if no complete database
        exists at all (RCQP says empty), no amount of data collection
        helps: the master data itself must grow. *)

open Ric_relational
open Ric_query
open Ric_constraints

type audit_result =
  | Already_complete
  | Completable of {
      additions : Database.t;  (** tuples to collect *)
      completed : Database.t;  (** [db ∪ additions], verified complete *)
      rounds : int;            (** decider iterations used *)
    }
  | Not_completable of { reason : string }
      (** [RCQ(Q, Dm, V) = ∅]: expand the master data, not the
          database *)
  | Inconclusive of { reason : string }

val audit :
  ?clock:Budget.t ->
  ?search:Search_mode.t ->
  ?profile:Ric_obs.Profile.t ->
  ?max_rounds:int ->
  schema:Schema.t ->
  master:Database.t ->
  ccs:Containment.t list ->
  db:Database.t ->
  Lang.t ->
  audit_result
(** Runs the RCDP decider, replaying counterexample extensions into
    the database for up to [max_rounds] (default 64) iterations, and
    consults the RCQP decider before giving up.  [clock] bounds the
    whole audit (it is shared across every decide round); [search]
    selects the valuation-search strategy of every round; [profile]
    (explain mode) is shared across every round, so the profile sums
    the whole audit's search work.
    @raise Rcdp.Unsupported for undecidable language combinations.
    @raise Budget.Exhausted when [clock] runs out. *)

val pp_audit : Format.formatter -> audit_result -> unit
