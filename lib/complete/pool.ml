let src = Logs.Src.create "ricd.pool" ~doc:"ricd worker-pool supervision"

module Log = (val Logs.src_log src : Logs.LOG)

exception Crash of string

type stats = {
  failures : int;
  crashes : int;
  respawns : int;
  quarantined : int;
  pending : int;
}

type 'a job = { payload : 'a; mutable attempts : int }

type 'a t = {
  jobs : 'a job Queue.t;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  capacity : int;
  n_domains : int;
  worker : 'a -> unit;
  on_quarantine : ('a -> string -> unit) option;
  mutable stopping : bool;
  live : (int, unit Domain.t) Hashtbl.t;
  mutable retired : unit Domain.t list;
  mutable next_key : int;
  mutable failures : int;
  mutable crashes : int;
  mutable respawns : int;
  mutable quarantined : int;
}

(* Spawn a worker and register its handle under [t.mutex].  Holding the
   mutex across spawn+register means the child cannot reach its own
   death handler (which needs the mutex) before the handle is in
   [t.live] — so a crashing worker always finds itself there. *)
let rec spawn_locked t =
  let key = t.next_key in
  t.next_key <- key + 1;
  let d = Domain.spawn (fun () -> worker_loop t key) in
  Hashtbl.replace t.live key d

and worker_loop t key =
  Mutex.lock t.mutex;
  while Queue.is_empty t.jobs && not t.stopping do
    Condition.wait t.not_empty t.mutex
  done;
  if Queue.is_empty t.jobs then
    (* stopping and drained; the handle stays in [t.live] for shutdown
       to join *)
    Mutex.unlock t.mutex
  else begin
    let job = Queue.pop t.jobs in
    Condition.signal t.not_full;
    Mutex.unlock t.mutex;
    match t.worker job.payload with
    | () -> worker_loop t key
    | exception Crash msg -> die t key job msg
    | exception e ->
      Mutex.lock t.mutex;
      t.failures <- t.failures + 1;
      Mutex.unlock t.mutex;
      Log.err (fun m -> m "worker job failed: %s" (Printexc.to_string e));
      worker_loop t key
  end

(* A [Crash] takes the whole domain down.  The dying domain does its own
   succession: requeue or quarantine the fatal job, retire its handle,
   and spawn a replacement — then fall off the end and exit. *)
and die t key job msg =
  let quarantine = ref false in
  Mutex.lock t.mutex;
  t.crashes <- t.crashes + 1;
  job.attempts <- job.attempts + 1;
  if job.attempts >= 2 then begin
    t.quarantined <- t.quarantined + 1;
    quarantine := true
  end
  else begin
    Queue.push job t.jobs;
    Condition.signal t.not_empty
  end;
  (match Hashtbl.find_opt t.live key with
   | Some d ->
     Hashtbl.remove t.live key;
     t.retired <- d :: t.retired
   | None -> () (* shutdown already claimed the handle and will join it *));
  if not t.stopping then begin
    t.respawns <- t.respawns + 1;
    spawn_locked t
  end;
  Mutex.unlock t.mutex;
  Log.err (fun m ->
      m "worker domain crashed (%s); job attempt %d%s" msg job.attempts
        (if !quarantine then ", job quarantined"
         else if t.stopping then ""
         else ", respawned"));
  if !quarantine then
    match t.on_quarantine with
    | Some f -> ( try f job.payload msg with _ -> ())
    | None -> ()

let create ?on_quarantine ~domains ~capacity ~worker () =
  let t =
    {
      jobs = Queue.create ();
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      capacity = max 1 capacity;
      n_domains = max 1 domains;
      worker;
      on_quarantine;
      stopping = false;
      live = Hashtbl.create 8;
      retired = [];
      next_key = 0;
      failures = 0;
      crashes = 0;
      respawns = 0;
      quarantined = 0;
    }
  in
  Mutex.lock t.mutex;
  for _ = 1 to t.n_domains do
    spawn_locked t
  done;
  Mutex.unlock t.mutex;
  t

let domains t = t.n_domains

let submit t payload =
  Mutex.lock t.mutex;
  while Queue.length t.jobs >= t.capacity && not t.stopping do
    Condition.wait t.not_full t.mutex
  done;
  let accepted = not t.stopping in
  if accepted then begin
    Queue.push { payload; attempts = 0 } t.jobs;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.mutex;
  accepted

(* Non-blocking admission for event-loop callers: a full queue is an
   immediate [false] (the caller sheds) instead of a wait on
   [not_full] — the select loop must never park on a condition. *)
let try_submit t payload =
  Mutex.lock t.mutex;
  let accepted = (not t.stopping) && Queue.length t.jobs < t.capacity in
  if accepted then begin
    Queue.push { payload; attempts = 0 } t.jobs;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.mutex;
  accepted

let capacity t = t.capacity

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  n

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      failures = t.failures;
      crashes = t.crashes;
      respawns = t.respawns;
      quarantined = t.quarantined;
      pending = Queue.length t.jobs;
    }
  in
  Mutex.unlock t.mutex;
  s

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  if not already then begin
    (* Crashed workers may have spawned successors right up until
       [stopping] was set, so keep collecting until nothing is left. *)
    let rec drain () =
      Mutex.lock t.mutex;
      let handles = Hashtbl.fold (fun _ d acc -> d :: acc) t.live t.retired in
      Hashtbl.reset t.live;
      t.retired <- [];
      Mutex.unlock t.mutex;
      match handles with
      | [] -> ()
      | hs ->
        List.iter Domain.join hs;
        drain ()
    in
    drain ()
  end
