(** A supervised pool of OCaml 5 [Domain]s draining a bounded job queue.

    [ricd] submits each accepted connection as a job, so requests on
    independent sessions run truly in parallel (the deciders are pure
    functions over immutable snapshots; only the registry/cache
    bookkeeping is serialised).  The queue bound gives backpressure:
    {!submit} blocks the producer when [capacity] jobs are already
    waiting, rather than accepting connections it cannot serve.

    Supervision: an ordinary exception from [worker] is logged and
    counted — the domain keeps serving.  A {!Crash} kills the domain;
    the pool respawns a replacement and retries the fatal job once on
    another worker.  A job that kills its worker {e twice} is
    quarantined: it is dropped from the queue and reported through
    [on_quarantine] so the server can answer the client with an error
    instead of silence. *)

type 'a t

exception Crash of string
(** Raise from [worker] to take the whole worker domain down (the
    fault-injection harness uses this to simulate a dying domain).
    Anything else the worker raises is a per-job failure: logged,
    counted, and survived. *)

type stats = {
  failures : int;  (** per-job exceptions survived by their worker *)
  crashes : int;  (** worker domains lost to {!Crash} *)
  respawns : int;  (** replacement domains spawned after a crash *)
  quarantined : int;  (** jobs dropped after crashing two workers *)
  pending : int;  (** jobs currently queued (racy snapshot) *)
}

val create :
  ?on_quarantine:('a -> string -> unit) ->
  domains:int ->
  capacity:int ->
  worker:('a -> unit) ->
  unit ->
  'a t
(** Spawn [max 1 domains] worker domains.  [on_quarantine job reason]
    fires (outside the pool lock, exceptions swallowed) when a job is
    dropped after its second crash. *)

val domains : 'a t -> int

val submit : 'a t -> 'a -> bool
(** Enqueue a job, blocking while the queue is full.  [false] once
    {!shutdown} has begun — the job is not enqueued. *)

val try_submit : 'a t -> 'a -> bool
(** Non-blocking {!submit}: [false] immediately when the queue is at
    capacity (the caller sheds the job) or shutdown has begun, instead
    of parking the producer.  This is the admission-control entry point
    for event-loop callers that must never block. *)

val capacity : 'a t -> int
(** The queue bound passed to {!create} (after the [max 1] clamp). *)

val pending : 'a t -> int
(** Jobs currently queued (racy snapshot, for stats). *)

val stats : 'a t -> stats

val shutdown : 'a t -> unit
(** Stop accepting jobs, let the workers drain the queue, and join
    them — including any replacements spawned by crashes.  Idempotent. *)
