open Ric_relational
open Ric_query
open Ric_constraints

exception Unsupported of string
exception Not_partially_closed of string

type counterexample = {
  cex_valuation : Valuation.t;
  cex_extension : Database.t;
  cex_answer : Tuple.t;
  cex_disjunct : int;
}

type verdict =
  | Complete
  | Incomplete of counterexample

type stats = {
  valuations_visited : int;
  branches_pruned : int;
}

module Metrics = Ric_obs.Metrics
module Trace = Ric_obs.Trace

(* All counters are folded in once per decide call (from the local
   [visited]/[pruned] refs and the budget's step counter), never from
   the search hot path. *)
let m_decides =
  Metrics.counter ~help:"decide calls completed or timed out"
    ~labels:[ ("decider", "rcdp") ] "ric_decides_total"

let m_timeouts =
  Metrics.counter ~help:"decide calls aborted by a spent budget"
    ~labels:[ ("decider", "rcdp") ] "ric_decide_timeouts_total"

let m_steps =
  Metrics.counter ~help:"valuation-search steps (budget ticks)"
    ~labels:[ ("decider", "rcdp") ] "ric_search_steps_total"

let m_visited =
  Metrics.counter ~help:"valid valuations visited by the RCDP search"
    "ric_rcdp_valuations_visited_total"

let m_pruned =
  Metrics.counter ~help:"search branches pruned by a violated constraint"
    "ric_rcdp_branches_pruned_total"


(* ------------------------------------------------------------------ *)
(* Constraint-side helpers. *)

let cc_constants ccs =
  List.concat_map Containment.constants ccs |> List.sort_uniq Value.compare

(* Master constants are observable only through the projections the
   constraints reference; all others are interchangeable with fresh
   values (genericity), so they can be dropped from the active domain
   without affecting the verdict. *)
let referenced_master_constants ~master ccs =
  let rels =
    List.filter_map
      (fun cc ->
        match cc.Containment.rhs with
        | Projection.Proj { mrel; _ } -> Some mrel
        | Projection.Empty -> None)
      ccs
    |> List.sort_uniq String.compare
  in
  List.concat_map
    (fun r ->
      match Database.relation master r with
      | rel -> Relation.values rel
      | exception Not_found -> [])
    rels

let require_monotone_ccs ccs =
  List.iter
    (fun cc ->
      if not (Containment.lhs_monotone cc) then
        raise
          (Unsupported
             (Printf.sprintf
                "RCDP is undecidable for %s containment constraints (Theorem 3.1); use semi_decide"
                (Containment.language_name cc))))
    ccs

(* Constraints whose left-hand side can react to tuples added over the
   given relations; the others are settled once [D] is known to be
   partially closed. *)
let dynamic_ccs ccs rels =
  List.filter
    (fun cc ->
      List.exists (fun r -> List.mem r rels) (Lang.relations cc.Containment.lhs))
    ccs

(* ------------------------------------------------------------------ *)
(* The Σ₂ᵖ search of Theorem 3.6: enumerate valid valuations of one
   tableau over the active domain, atom by atom, pruning when the
   partial extension already violates a (monotone) constraint.

   [ind_mode] switches the constraint check from [D ∪ μ(T_Q)]
   (condition C2, Proposition 3.3) to [μ(T_Q)] alone (condition C3,
   Corollary 3.4 — valid when every CC is an IND). *)

let search_disjunct ~clock ~search ~checker ~profile ~master ~dyn_ccs
    ~ind_mode ~db ~qd ~adom ~visited ~pruned ~disjunct (tab : Tableau.t) =
  let found = ref None in
  let mode = if ind_mode then `Delta_only else `Against_base db in
  let iter =
    match search with
    | Search_mode.Par domains when domains > 1 ->
      Valuation_search.iter_valid_par ~domains
    | Search_mode.Seq | Search_mode.Inc | Search_mode.Par _ ->
      Valuation_search.iter_valid
  in
  let (_ : bool) =
    iter ~budget:clock ?checker ?profile ~master ~ccs:dyn_ccs ~mode ~adom
      ~on_prune:(fun () -> incr pruned)
      tab
      (fun mu delta ->
        incr visited;
        let ans = Tableau.summary_tuple tab mu in
        if not (Relation.mem ans qd) then begin
          found :=
            Some
              {
                cex_valuation = mu;
                cex_extension = delta;
                cex_answer = ans;
                cex_disjunct = disjunct;
              };
          true
        end
        else false)
  in
  !found

let decide_ucq_with ~ind_mode ?(clock = Budget.unlimited)
    ?(search = Search_mode.Seq) ?(check_partially_closed = true)
    ?collect_stats ?profile ~schema ~master ~ccs ~db ucq =
  Trace.with_span "rcdp.decide" @@ fun sp ->
  Trace.set_str sp "mode" (Search_mode.to_string search);
  (match Budget.label clock with
   | Some rid -> Trace.set_str sp "req_id" rid
   | None -> ());
  (* the clock may be shared across decide calls (Guidance.audit), so
     charge only this call's delta to the global step counter *)
  let steps0 = Budget.steps clock in
  (* an already-exhausted clock (timeout_ms = 0, tripped cancel flag)
     must abort before the partial-closure check does any work *)
  Budget.check_now clock;
  require_monotone_ccs ccs;
  if check_partially_closed && not (Containment.holds_all ~db ~master ccs) then
    raise
      (Not_partially_closed
         "RCDP: the input database does not satisfy the containment constraints");
  let qd = Ucq.eval db ucq in
  let tableaux = List.filter_map (Tableau.of_cq schema) ucq in
  (* One fresh value per query-tableau variable (Section 3.2's New).
     Constraint variables need none here: Proposition 3.3's small-model
     argument only renames query valuations, and the constraints are
     checked by direct evaluation, never instantiated. *)
  let fresh_count =
    List.fold_left (fun n t -> n + List.length (Tableau.vars t)) 0 tableaux + 1
  in
  let adom =
    let cc_consts =
      referenced_master_constants ~master ccs @ cc_constants ccs
      |> List.sort_uniq Value.compare
    in
    Adom.build ~db ~schemas:[ schema ]
      ~master:(Database.empty (Database.schema master))
      ~cc_constants:cc_consts ~query_constants:(Ucq.constants ucq) ~fresh_count ()
  in
  let tab_rels =
    List.concat_map
      (fun t -> List.map (fun (a : Atom.t) -> a.Atom.rel) t.Tableau.patterns)
      tableaux
    |> List.sort_uniq String.compare
  in
  let dyn_ccs = dynamic_ccs ccs tab_rels in
  let checker =
    match search with
    | Search_mode.Seq -> None
    | Search_mode.Inc | Search_mode.Par _ ->
      Some (Incremental.create ~schema ~master dyn_ccs)
  in
  (match profile with
   | Some p ->
     Ric_obs.Profile.note p "decider" "rcdp";
     Ric_obs.Profile.note p "mode" (Search_mode.to_string search);
     Ric_obs.Profile.note p "checker"
       (match checker with Some _ -> "incremental" | None -> "compiled")
   | None -> ());
  let visited = ref 0 and pruned = ref 0 in
  let record_stats () =
    (match collect_stats with
     | Some r -> r := { valuations_visited = !visited; branches_pruned = !pruned }
     | None -> ());
    let steps = Budget.steps clock - steps0 in
    Metrics.incr m_decides;
    Metrics.add m_visited !visited;
    Metrics.add m_pruned !pruned;
    Metrics.add m_steps steps;
    Trace.set_int sp "visited" !visited;
    Trace.set_int sp "pruned" !pruned;
    Trace.set_int sp "steps" steps
  in
  let rec scan i = function
    | [] -> Complete
    | tab :: rest ->
      let found =
        Trace.with_span "rcdp.disjunct" @@ fun dsp ->
        Trace.set_int dsp "disjunct" i;
        let r =
          search_disjunct ~clock ~search ~checker ~profile ~master ~dyn_ccs
            ~ind_mode ~db ~qd ~adom ~visited ~pruned ~disjunct:i tab
        in
        Trace.set_bool dsp "counterexample" (r <> None);
        r
      in
      (match found with
       | Some cex -> Incomplete cex
       | None -> scan (i + 1) rest)
  in
  match scan 0 tableaux with
  | verdict ->
    record_stats ();
    Trace.set_str sp "verdict"
      (match verdict with Complete -> "complete" | Incomplete _ -> "incomplete");
    verdict
  | exception (Budget.Exhausted reason as e) ->
    (* leave the work-done counters readable for the timeout report *)
    record_stats ();
    Metrics.incr m_timeouts;
    Trace.set_str sp "verdict" "timeout";
    Trace.set_str sp "reason" (Budget.reason_name reason);
    raise e

let decide ?clock ?search ?check_partially_closed ?collect_stats ?profile
    ?(minimize = false) ~schema ~master ~ccs ~db q =
  match Lang.as_ucq q with
  | None ->
    raise
      (Unsupported
         (Printf.sprintf "RCDP is undecidable for %s queries (Theorem 3.1); use semi_decide"
            (Lang.language_name q)))
  | Some ucq ->
    let ucq = if minimize then List.map (Cq.minimize schema) ucq else ucq in
    decide_ucq_with ~ind_mode:false ?clock ?search ?check_partially_closed
      ?collect_stats ?profile ~schema ~master ~ccs ~db ucq

let decide_cq ?check_partially_closed ~schema ~master ~ccs ~db q =
  decide ?check_partially_closed ~schema ~master ~ccs ~db (Lang.Q_cq q)

let decide_ind ?clock ?search ?check_partially_closed ~schema ~master ~inds ~db
    q =
  let ccs = List.map (Ind.to_cc schema) inds in
  match Lang.as_ucq q with
  | None ->
    raise
      (Unsupported
         (Printf.sprintf "RCDP is undecidable for %s queries (Theorem 3.1); use semi_decide"
            (Lang.language_name q)))
  | Some ucq ->
    decide_ucq_with ~ind_mode:true ?clock ?search ?check_partially_closed
      ~schema ~master ~ccs ~db ucq

(* ------------------------------------------------------------------ *)
(* Bounded semi-decision for the undecidable rows of Table I. *)

type semi_verdict =
  | Refuted of counterexample
  | No_counterexample of {
      max_tuples : int;
      candidate_values : int;
    }

let semi_decide ?(clock = Budget.unlimited) ?(max_tuples = 2) ?(fresh_values = 2) ~schema
    ~master ~ccs ~db q =
  Trace.with_span "rcdp.semi_decide" @@ fun sp ->
  Trace.set_int sp "max_tuples" max_tuples;
  Budget.check_now clock;
  let adom =
    Adom.build ~db ~schemas:[ schema ] ~master
      ~cc_constants:(cc_constants ccs)
      ~query_constants:(Lang.constants q) ~fresh_count:fresh_values ()
  in
  let values = Adom.all adom in
  (* Candidate tuples: every relation of the schema, every combination
     of per-column candidates. *)
  let candidate_tuples =
    List.concat_map
      (fun (r : Schema.relation_schema) ->
        let col_cands =
          List.map
            (fun (a : Schema.attribute) ->
              match Domain.values a.Schema.attr_dom with
              | Some vs -> vs
              | None -> values)
            r.Schema.attrs
        in
        let rec product = function
          | [] -> [ [] ]
          | c :: rest ->
            let tails = product rest in
            List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) c
        in
        List.map (fun vs -> (r.Schema.rel_name, Tuple.make vs)) (product col_cands))
      (Schema.relations schema)
  in
  let candidates = Array.of_list candidate_tuples in
  let qd = Lang.eval db q in
  (* one compiled checker over the fixed base for the whole subset
     enumeration: RHS projections cached, deltas joined as overlays *)
  let comp = Compiled.create ~base:db ~master ccs in
  let found = ref None in
  (* Enumerate subsets of at most [max_tuples] candidates (indices
     strictly increasing), smallest first. *)
  let rec grow start delta count =
    if !found <> None then ()
    else begin
      Budget.tick clock;
      if count > 0 then begin
        let combined = Database.union db delta in
        if
          Compiled.check comp ~db:combined ~delta
          && not (Relation.equal (Lang.eval combined q) qd)
        then begin
          (* shrink to the answer tuple difference for the report *)
          let answers = Lang.eval combined q in
          let diff = Relation.diff answers qd in
          let witness =
            if Relation.is_empty diff then
              (* FO can also lose answers; report any answer of Q(D) *)
              List.hd (Relation.elements (Relation.diff qd answers))
            else List.hd (Relation.elements diff)
          in
          found :=
            Some
              {
                cex_valuation = Valuation.empty;
                cex_extension = delta;
                cex_answer = witness;
                cex_disjunct = 0;
              }
        end
      end;
      if !found = None && count < max_tuples then
        for i = start to Array.length candidates - 1 do
          if !found = None then begin
            let rel, tuple = candidates.(i) in
            let already =
              Relation.mem tuple (Database.relation (Database.union db delta) rel)
            in
            if not already then grow (i + 1) (Database.add_tuple delta rel tuple) (count + 1)
          end
        done
    end
  in
  grow 0 (Database.empty schema) 0;
  match !found with
  | Some cex -> Refuted cex
  | None ->
    No_counterexample { max_tuples; candidate_values = List.length values }

