(** RCDP — the relatively complete database problem (Section 3).

    Given a query [Q ∈ LQ], master data [Dm], a set [V] of containment
    constraints in [LC], and a partially closed database [D], decide
    whether [D ∈ RCQ(Q, Dm, V)]: is every partially closed extension
    [D′ ⊇ D] answer-preserving, [Q(D′) = Q(D)]?

    Decidable cases (Theorem 3.6, all Σ₂ᵖ-complete) are decided
    {e exactly} by enumerating the valid valuations of the query
    tableau over the active domain — the small-model space that
    Propositions 3.3 (CQ), Corollary 3.4 (INDs) and Corollary 3.5
    (UCQ) prove sufficient.  The search instantiates the tableau atom
    by atom and prunes a branch as soon as the partial extension
    already violates a constraint (violations persist because every
    supported [LC] is monotone).

    Undecidable cases (Theorem 3.1: [LQ] or [LC] in FO/FP) get a
    semi-decision procedure: a bounded search for a counterexample
    extension, which can refute completeness but can only bound-quantify
    its "no counterexample found" answer. *)

open Ric_relational
open Ric_query
open Ric_constraints

exception Unsupported of string
(** Raised when asked to {e decide} an undecidable combination — use
    {!semi_decide} instead. *)

exception Not_partially_closed of string
(** The input [D] must satisfy [(D, Dm) ⊨ V]; RCDP is only defined on
    partially closed databases. *)

type counterexample = {
  cex_valuation : Valuation.t;   (** the valid valuation [μ] *)
  cex_extension : Database.t;    (** [Δ = μ(T_Q)]: tuples whose addition changes the answer *)
  cex_answer : Tuple.t;          (** [μ(u_Q) ∈ Q(D ∪ Δ) \ Q(D)] *)
  cex_disjunct : int;            (** index of the violated CQ disjunct (0 for plain CQ) *)
}

type verdict =
  | Complete
  | Incomplete of counterexample

type stats = {
  valuations_visited : int;  (** leaves of the search tree *)
  branches_pruned : int;     (** subtrees cut by the incremental CC check *)
}

val decide :
  ?clock:Budget.t ->
  ?search:Search_mode.t ->
  ?check_partially_closed:bool ->
  ?collect_stats:stats ref ->
  ?profile:Ric_obs.Profile.t ->
  ?minimize:bool ->
  schema:Schema.t ->
  master:Database.t ->
  ccs:Containment.t list ->
  db:Database.t ->
  Lang.t ->
  verdict
(** Exact decision for [LQ ∈ {CQ, UCQ, ∃FO⁺}] and monotone [LC]
    (CQ/UCQ/∃FO⁺ containment constraints, including INDs).  ∃FO⁺
    queries go through their UCQ expansion, as in Theorem 3.6(4).
    [minimize] (default false) first replaces each inequality-free
    disjunct by its core ({!Cq.minimize}) — sound, and worthwhile for
    queries with redundant atoms since the search is exponential in
    the number of tableau variables.

    [clock] (default {!Budget.unlimited}) bounds the Σ₂ᵖ search; when
    it runs out the search aborts with {!Budget.Exhausted}, after
    writing the partial counters into [collect_stats] so the caller
    can report how much work a timed-out decide had done.  [search]
    (default [Seq]) selects the execution strategy of the valuation
    search — see {!Search_mode}; verdicts are identical across modes.

    [profile] (explain mode) accumulates a request-scoped explain
    profile: per-search-level step and prune counts, per-constraint
    prune attribution, and decider/mode/checker notes — see
    {!Ric_obs.Profile}.  Partial counts survive budget exhaustion.
    When omitted (the default) the hot path pays one option match per
    candidate and allocates nothing.

    @raise Unsupported if [Q] is FO/FP or some CC has a
      non-monotone (FO) or FP left-hand side.
    @raise Not_partially_closed if [(D, Dm) ⊭ V]
      (skipped when [check_partially_closed] is [false]).
    @raise Budget.Exhausted when [clock] runs out mid-search. *)

val decide_cq :
  ?check_partially_closed:bool ->
  schema:Schema.t ->
  master:Database.t ->
  ccs:Containment.t list ->
  db:Database.t ->
  Cq.t ->
  verdict

val decide_ind :
  ?clock:Budget.t ->
  ?search:Search_mode.t ->
  ?check_partially_closed:bool ->
  schema:Schema.t ->
  master:Database.t ->
  inds:Ind.t list ->
  db:Database.t ->
  Lang.t ->
  verdict
(** The IND fast path of Corollary 3.4: condition C3 tests
    [(μ(T_Q), Dm) ⊨ V] on the extension alone, never touching [D]
    during the search.  Exactly equivalent to {!decide} on
    [List.map (Ind.to_cc schema) inds] — cross-checked by tests and
    timed by the [ablation] bench. *)

type semi_verdict =
  | Refuted of counterexample
      (** a partially closed extension changing the answer exists — [D]
          is definitely not complete *)
  | No_counterexample of {
      max_tuples : int;
      candidate_values : int;
    }
      (** no extension of at most [max_tuples] tuples over the sampled
          value space changes the answer; completeness itself may be
          undecidable (Theorem 3.1) *)

val semi_decide :
  ?clock:Budget.t ->
  ?max_tuples:int ->
  ?fresh_values:int ->
  schema:Schema.t ->
  master:Database.t ->
  ccs:Containment.t list ->
  db:Database.t ->
  Lang.t ->
  semi_verdict
(** Bounded counterexample search for {e any} [LQ]/[LC] combination,
    including FO and FP: enumerate candidate extensions [Δ] of at most
    [max_tuples] tuples (default 2) over the active domain plus
    [fresh_values] fresh constants (default 2), and test
    [(D ∪ Δ, Dm) ⊨ V ∧ Q(D ∪ Δ) ≠ Q(D)] by evaluation. *)
