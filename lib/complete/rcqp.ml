open Ric_relational
open Ric_query
open Ric_constraints

exception Unsupported of string

type verdict =
  | Nonempty of {
      witness : Database.t option;
      reason : string;
    }
  | Empty of { reason : string }
  | Unknown of { reason : string }

let verdict_name = function
  | Nonempty _ -> "nonempty"
  | Empty _ -> "empty"
  | Unknown _ -> "unknown"

module Metrics = Ric_obs.Metrics
module Trace = Ric_obs.Trace
module Profile = Ric_obs.Profile

(* Counters are folded in per phase (pool built, DFS finished, decide
   returned), never inside the nested enumerations. *)
let m_decides =
  Metrics.counter ~help:"decide calls completed or timed out"
    ~labels:[ ("decider", "rcqp") ] "ric_decides_total"

let m_timeouts =
  Metrics.counter ~help:"decide calls aborted by a spent budget"
    ~labels:[ ("decider", "rcqp") ] "ric_decide_timeouts_total"

let m_steps =
  Metrics.counter ~help:"valuation-search steps (budget ticks)"
    ~labels:[ ("decider", "rcqp") ] "ric_search_steps_total"

let m_e2_nodes =
  Metrics.counter ~help:"valuation-set DFS nodes expanded by the E2 search"
    "ric_rcqp_e2_nodes_total"

let m_pool_candidates =
  Metrics.counter ~help:"candidate-pool instantiations generated"
    "ric_rcqp_pool_candidates_total"

type budget = {
  max_pool : int;
  max_nodes : int;
  max_valuations : int;
  pool_fresh : int;
}

let default_budget =
  { max_pool = 4000; max_nodes = 200_000; max_valuations = 200_000; pool_fresh = 3 }

(* ------------------------------------------------------------------ *)
(* Shared helpers. *)

let as_ucq_or_raise problem q =
  match Lang.as_ucq q with
  | Some ucq -> ucq
  | None ->
    raise
      (Unsupported
         (Printf.sprintf "%s is undecidable for %s queries (Theorem 4.1); use semi_decide"
            problem (Lang.language_name q)))

let require_monotone_ccs ccs =
  List.iter
    (fun cc ->
      if not (Containment.lhs_monotone cc) then
        raise
          (Unsupported
             (Printf.sprintf
                "RCQP is undecidable for %s containment constraints (Theorem 4.1); use \
                 semi_decide"
                (Containment.language_name cc))))
    ccs

let cc_constants ccs =
  List.concat_map Containment.constants ccs |> List.sort_uniq Value.compare

let cc_var_count ccs =
  List.fold_left (fun n cc -> n + Lang.var_count cc.Containment.lhs) 0 ccs

(* Master constants can only be observed through the projections the
   constraints actually reference; restricting the active domain to
   those relations is sound (any other master constant is
   interchangeable with a fresh value) and keeps the search space at
   the size of the instance, not of the whole master repository. *)
let referenced_master ~master ccs =
  let rels =
    List.filter_map
      (fun cc ->
        match cc.Containment.rhs with
        | Projection.Proj { mrel; _ } -> Some mrel
        | Projection.Empty -> None)
      ccs
    |> List.sort_uniq String.compare
  in
  List.concat_map
    (fun r ->
      match Database.relation master r with
      | rel -> Relation.values rel
      | exception Not_found -> [])
    rels

(* Two-tier active domain (Section 4.2's [Adom = constants ∪ New]):
   the candidate pool for valuation sets of V draws from the first
   [pool_fresh] fresh values only, while query-tableau valuations may
   additionally use one reserved fresh value per query variable.  The
   reserved values can never enter a bounding set, which is what makes
   "an unbounded fresh output value exists" detectable. *)
let build_adoms ~budget ~schema ~master ~ccs ~ucq =
  let cc_consts =
    referenced_master ~master ccs @ cc_constants ccs |> List.sort_uniq Value.compare
  in
  let pool_fresh = min budget.pool_fresh (max 1 (cc_var_count ccs)) in
  let q_fresh = List.length (Ucq.vars ucq) + 1 in
  let empty_master = Database.empty (Database.schema master) in
  let adom_pool =
    Adom.build ~schemas:[ schema ] ~master:empty_master ~cc_constants:cc_consts
      ~query_constants:(Ucq.constants ucq) ~fresh_count:pool_fresh ()
  in
  let adom_mu =
    Adom.build ~schemas:[ schema ] ~master:empty_master ~cc_constants:cc_consts
      ~query_constants:(Ucq.constants ucq)
      ~fresh_count:(pool_fresh + q_fresh) ()
  in
  (adom_pool, adom_mu)

let satisfiable_tableaux schema ucq =
  List.filter_map
    (fun cq -> if Cq.satisfiable schema cq then Tableau.of_cq schema cq else None)
    ucq

(* Summary variables with an infinite effective domain — the variables
   conditions E2–E4 must bound. *)
let infinite_summary_vars (tab : Tableau.t) =
  let doms = Tableau.var_domains tab in
  List.filter_map
    (function
      | Term.Var x ->
        (match List.assoc_opt x doms with
         | Some (Domain.Finite _) -> None
         | Some Domain.Infinite | None -> Some x)
      | Term.Const _ -> None)
    tab.Tableau.summary
  |> List.sort_uniq String.compare

(* Positions (relation, column) where a variable occurs in the
   patterns. *)
let occurrences (tab : Tableau.t) x =
  List.concat_map
    (fun (a : Atom.t) ->
      List.concat
        (List.mapi
           (fun i t -> if Term.equal t (Term.Var x) then [ (a.Atom.rel, i) ] else [])
           a.Atom.args))
    tab.Tableau.patterns

(* ------------------------------------------------------------------ *)
(* LC = INDs: Proposition 4.3 / Theorem 4.5(1).  Exact and cheap. *)

let ind_witness ~clock ?checker ?profile ~budget ~schema ~master ~ccs ~adom tableaux =
  let module VS = Set.Make (Value) in
  let witness = ref (Database.empty schema) in
  let count = ref 0 in
  let exceeded = ref false in
  List.iter
    (fun (tab : Tableau.t) ->
      let summary_vars =
        List.filter_map
          (function
            | Term.Var x -> Some x
            | Term.Const _ -> None)
          tab.Tableau.summary
        |> List.sort_uniq String.compare
      in
      let covered : (string, VS.t) Hashtbl.t = Hashtbl.create 8 in
      let got_any = ref false in
      let (_ : bool) =
        Valuation_search.iter_valid ~budget:clock ?checker ?profile ~master ~ccs
          ~mode:`Delta_only ~adom tab
          (fun mu delta ->
            incr count;
            if !count > budget.max_valuations then begin
              exceeded := true;
              true
            end
            else begin
              let fresh_pair =
                List.exists
                  (fun y ->
                    match Valuation.find y mu with
                    | None -> false
                    | Some c ->
                      let seen =
                        Option.value ~default:VS.empty (Hashtbl.find_opt covered y)
                      in
                      not (VS.mem c seen))
                  summary_vars
              in
              if fresh_pair || not !got_any then begin
                got_any := true;
                List.iter
                  (fun y ->
                    match Valuation.find y mu with
                    | None -> ()
                    | Some c ->
                      let seen =
                        Option.value ~default:VS.empty (Hashtbl.find_opt covered y)
                      in
                      Hashtbl.replace covered y (VS.add c seen))
                  summary_vars;
                witness := Database.union !witness delta
              end;
              false
            end)
      in
      ())
    tableaux;
  if !exceeded then None else Some !witness

(* Spans/counters around the decide entry points: [with_decide_obs]
   stamps mode, verdict, step delta and timeout on whichever path the
   decision takes.  The clock may be shared across calls
   (Guidance.audit), so only this call's step delta is charged. *)
let with_decide_obs ~name ~clock ~search f =
  Trace.with_span name @@ fun sp ->
  Trace.set_str sp "mode" (Search_mode.to_string search);
  (match Budget.label clock with
   | Some rid -> Trace.set_str sp "req_id" rid
   | None -> ());
  let steps0 = Budget.steps clock in
  let account () =
    Metrics.incr m_decides;
    let steps = Budget.steps clock - steps0 in
    Metrics.add m_steps steps;
    Trace.set_int sp "steps" steps
  in
  match f () with
  | verdict ->
    account ();
    Trace.set_str sp "verdict" (verdict_name verdict);
    verdict
  | exception (Budget.Exhausted reason as e) ->
    account ();
    Metrics.incr m_timeouts;
    Trace.set_str sp "verdict" "timeout";
    Trace.set_str sp "reason" (Budget.reason_name reason);
    raise e

let decide_ind_core ~clock ~search ~profile ~schema ~master ~inds q =
  Budget.check_now clock;
  let ucq = as_ucq_or_raise "RCQP" q in
  let ccs = List.map (Ind.to_cc schema) inds in
  (* RCQP has no single top-level fan-out point, so [Par] runs as the
     incremental mode inside this decider; only the RCDP verification
     of candidate witnesses sees the same mapping. *)
  let checker =
    match search with
    | Search_mode.Seq -> None
    | Search_mode.Inc | Search_mode.Par _ ->
      Some (Incremental.create ~schema ~master ccs)
  in
  (match profile with
   | Some p ->
     Profile.note p "decider" "rcqp_ind";
     Profile.note p "mode" (Search_mode.to_string search);
     Profile.note p "checker"
       (match checker with Some _ -> "incremental" | None -> "compiled")
   | None -> ());
  let inner_search =
    match search with Search_mode.Par _ -> Search_mode.Inc | s -> s
  in
  let tableaux = satisfiable_tableaux schema ucq in
  if tableaux = [] then
    Nonempty
      {
        witness = Some (Database.empty schema);
        reason = "the query is unsatisfiable; any partially closed database is complete";
      }
  else begin
    let _, adom = build_adoms ~budget:default_budget ~schema ~master ~ccs ~ucq in
    let live =
      List.filter
        (fun tab ->
          Valuation_search.iter_valid ~budget:clock ?checker ?profile ~master
            ~ccs ~mode:`Delta_only ~adom tab
            (fun _ _ -> true))
        tableaux
    in
    if live = [] then
      Nonempty
        {
          witness = Some (Database.empty schema);
          reason =
            "no valid valuation satisfies the INDs (Proposition 4.3 escape clause); the \
             empty database is complete";
        }
    else begin
      (* E3/E4: every infinite-domain output variable must occur in an
         IND-covered column. *)
      let unbounded =
        List.find_map
          (fun tab ->
            List.find_map
              (fun y ->
                let occs = occurrences tab y in
                let covered =
                  List.exists
                    (fun (rel, col) ->
                      List.exists (fun ind -> Ind.covers ind ~rel ~col) inds)
                    occs
                in
                if covered then None else Some y)
              (infinite_summary_vars tab))
          live
      in
      match unbounded with
      | Some y ->
        Empty
          {
            reason =
              Printf.sprintf
                "output variable %s ranges over an infinite domain and no IND covers any \
                 of its columns (E4 fails)"
                y;
          }
      | None ->
        let witness =
          ind_witness ~clock ?checker ?profile ~budget:default_budget ~schema
            ~master ~ccs ~adom live
        in
        let witness =
          match witness with
          | Some w
            when Containment.holds_all ~db:w ~master ccs
                 && Rcdp.decide ~clock ~search:inner_search ?profile ~schema
                      ~master ~ccs ~db:w q
                    = Rcdp.Complete ->
            Some w
          | _ -> None
        in
        Nonempty { witness; reason = "every output variable is bounded (E3/E4 hold)" }
    end
  end

let decide_ind ?(clock = Budget.unlimited) ?(search = Search_mode.Seq) ?profile
    ~schema ~master ~inds q =
  with_decide_obs ~name:"rcqp.decide_ind" ~clock ~search (fun () ->
      decide_ind_core ~clock ~search ~profile ~schema ~master ~inds q)

(* ------------------------------------------------------------------ *)
(* General monotone LC: Proposition 4.2 / Corollary 4.4.
   Candidate pool: single-template instantiations of the constraint
   tableaux over the active domain (Section 4.2's partial valuations —
   a multi-template partial valuation is equivalent to a set of
   single-template ones, since both D_V and the bound summary values
   decompose template-wise). *)

type candidate = {
  cand_rel : string;
  cand_tuple : Tuple.t;
  cand_summary : Value.t list; (* values this instantiation lends to u_j *)
}

exception Budget_exceeded of string
exception Pool_truncated

let cc_lhs_tableaux ~schema ccs =
  List.concat_map
    (fun cc ->
      match Lang.as_ucq cc.Containment.lhs with
      | None -> []
      | Some lhs -> List.filter_map (Tableau.of_cq schema) lhs)
    ccs

(* Column-level visibility: a column (relation, position) is visible
   when some constraint can observe its value — through a constant, a
   join (repeated variable), an (in)equality, or the constraint's
   summary.  Values at invisible columns are pure fillers, so the
   candidate pool pins them to a single canonical fresh value instead
   of sweeping the whole active domain. *)
let visible_columns cc_tableaux =
  let visible = Hashtbl.create 32 in
  List.iter
    (fun (tab : Tableau.t) ->
      let occurrences = Hashtbl.create 16 in
      List.iter
        (fun (a : Atom.t) ->
          List.iter
            (function
              | Term.Var x ->
                Hashtbl.replace occurrences x
                  (1 + Option.value ~default:0 (Hashtbl.find_opt occurrences x))
              | Term.Const _ -> ())
            a.Atom.args)
        tab.Tableau.patterns;
      let constrained x =
        Option.value ~default:0 (Hashtbl.find_opt occurrences x) > 1
        || List.exists
             (fun (s, t) -> Term.equal s (Term.Var x) || Term.equal t (Term.Var x))
             tab.Tableau.neqs
        || List.exists (Term.equal (Term.Var x)) tab.Tableau.summary
      in
      List.iter
        (fun (a : Atom.t) ->
          List.iteri
            (fun i t ->
              match t with
              | Term.Const _ -> Hashtbl.replace visible (a.Atom.rel, i) ()
              | Term.Var x -> if constrained x then Hashtbl.replace visible (a.Atom.rel, i) ())
            a.Atom.args)
        tab.Tableau.patterns)
    cc_tableaux;
  fun rel i -> Hashtbl.mem visible (rel, i)

let candidate_pool ?(truncate = false) ?(clock = Budget.unlimited) ?checker
    ?profile ~budget ~schema ~master ~adom ccs =
  Trace.with_span "rcqp.candidate_pool" @@ fun sp ->
  Trace.set_bool sp "truncating" truncate;
  (* a singleton's parent state is the empty database, so the delta
     check applies whenever the empty database is consistent; both
     paths run on the compiled kernel with the singleton as the
     interned overlay over an empty base *)
  let empty_db = Database.empty schema in
  let empty_comp = lazy (Compiled.create ~base:empty_db ~master ccs) in
  let singleton_ok single rel tuple =
    match checker with
    | Some inc when Incremental.empty_ok inc ->
      Incremental.check_add_overlay inc ~base:empty_db ~delta:single ~db:single
        ~rel ~tuple
    | _ -> Compiled.check (Lazy.force empty_comp) ~db:single ~delta:single
  in
  let pool = ref [] in
  let count = ref 0 in
  let ticks = ref 0 in
  let cc_tabs = cc_lhs_tableaux ~schema ccs in
  let is_visible = visible_columns cc_tabs in
  let canonical =
    match Adom.fresh adom with
    | f :: _ -> f
    | [] -> Value.Int max_int
  in
  (* the bump runs on every exit path (truncation, Budget_exceeded,
     Exhausted) so partial pools still show up in explain profiles *)
  Fun.protect
    ~finally:(fun () ->
      match profile with
      | Some p -> Profile.bump p "pool_steps" !ticks
      | None -> ())
  @@ fun () ->
  (try
     List.iter
       (fun (tab : Tableau.t) ->
         let doms = Tableau.var_domains tab in
         List.iter
           (fun (a : Atom.t) ->
             (* variables sitting only at invisible columns of this atom
                take the canonical filler value *)
             let var_visible = Hashtbl.create 8 in
             List.iteri
               (fun i t ->
                 match t with
                 | Term.Var x -> if is_visible a.Atom.rel i then Hashtbl.replace var_visible x ()
                 | Term.Const _ -> ())
               a.Atom.args;
             let vars = Atom.vars a in
             let cands =
               List.map
                 (fun x ->
                   let d = Option.value ~default:Domain.Infinite (List.assoc_opt x doms) in
                   if Hashtbl.mem var_visible x then (x, Adom.candidates adom d)
                   else
                     (* invisible: any single value serves as filler,
                        but it must still respect the column domain *)
                     match Domain.values d with
                     | Some (first :: _) -> (x, [ first ])
                     | Some [] | None -> (x, [ canonical ]))
                 vars
             in
             let expected = List.fold_left (fun n (_, cs) -> n * List.length cs) 1 cands in
             if expected > budget.max_pool * 64 then
               if truncate then raise Pool_truncated
               else
                 raise
                   (Budget_exceeded
                      (Printf.sprintf
                         "candidate generation for one template would enumerate %d raw \
                          instantiations"
                         expected));
             let (_ : bool) =
               Valuation.enumerate_iter cands (fun nu ->
                   incr ticks;
                   Budget.tick clock;
                   (match Valuation.tuple_of_terms nu a.Atom.args with
                    | None -> assert false
                    | Some tuple ->
                      (* keep only candidates that are consistent on
                         their own; a violating singleton can never be
                         part of a consistent set *)
                      let single =
                        Database.add_tuple (Database.empty schema) a.Atom.rel tuple
                      in
                      if singleton_ok single a.Atom.rel tuple then begin
                        let summary =
                          List.filter_map
                            (fun t ->
                              match t with
                              | Term.Var x -> Valuation.find x nu
                              | Term.Const _ -> None)
                            tab.Tableau.summary
                        in
                        incr count;
                        if !count > budget.max_pool then
                          if truncate then raise Pool_truncated
                          else
                            raise
                              (Budget_exceeded
                                 (Printf.sprintf "candidate pool exceeds %d instantiations"
                                    budget.max_pool));
                        pool :=
                          { cand_rel = a.Atom.rel; cand_tuple = tuple; cand_summary = summary }
                          :: !pool
                      end);
                   false)
             in
             ())
           tab.Tableau.patterns)
       cc_tabs
   with Pool_truncated -> ());
  let cmp a b =
    let c = String.compare a.cand_rel b.cand_rel in
    if c <> 0 then c
    else
      let c = Tuple.compare a.cand_tuple b.cand_tuple in
      if c <> 0 then c else List.compare Value.compare a.cand_summary b.cand_summary
  in
  let result = List.sort_uniq cmp !pool in
  Metrics.add m_pool_candidates (List.length result);
  Trace.set_int sp "candidates" (List.length result);
  result

module VS = Set.Make (Value)

type e2_witness = {
  w_delta : Database.t;        (* μ(T) of the live valuation *)
  w_unbounded : Value.t list;  (* output values outside the bounding set *)
}

(* Does the E2/E6 condition hold for the valuation set represented by
   [dv] (its instantiation) and [bvals] (the summary values it binds)?
   For every query disjunct with infinite-domain output variables: no
   valid valuation [μ] that stays live — [(D_V ∪ μ(T), Dm) ⊨ V] — may
   leave such a variable outside [bvals].  Returns the first offending
   live valuation, or [None] when the condition holds. *)
let e2_condition ~clock ~checker ~profile ~master ~ccs ~adom ~reserved
    ~tableaux ~dv ~bvals =
  (* Witness preference: a live valuation whose stray output values
     all come from the reserved query-tier fresh values can never be
     bounded by any valuation set (the candidate pool cannot even
     spell those values) — only blocked — so reporting it keeps the
     DFS branch factor down to the genuinely blocking candidates.  We
     keep scanning until such a witness appears, remembering the first
     arbitrary one as a fallback. *)
  let fresh = reserved in
  let witness = ref None in
  let ok =
    List.for_all
      (fun (tab : Tableau.t) ->
        match infinite_summary_vars tab with
        | [] -> true
        | inf_vars ->
          let found_any = ref false in
          let (_ : bool) =
            Valuation_search.iter_valid ~budget:clock ?checker ?profile ~master
              ~ccs ~mode:(`Against_base dv) ~adom tab
              (fun mu delta ->
                let unbounded =
                  List.filter_map
                    (fun y ->
                      match Valuation.find y mu with
                      | Some c -> if VS.mem c bvals then None else Some c
                      | None -> None)
                    inf_vars
                in
                if unbounded = [] then false
                else begin
                  found_any := true;
                  let all_fresh = List.for_all (fun c -> VS.mem c fresh) unbounded in
                  if all_fresh || !witness = None then
                    witness := Some { w_delta = delta; w_unbounded = unbounded };
                  all_fresh (* stop only on a preferred witness *)
                end)
          in
          not !found_any)
      tableaux
  in
  if ok then None else !witness

(* Can candidate [c] take part in a constraint violation together with
   some tuple of [delta]?  Over-approximated by unifiability of two
   distinct templates of one constraint tableau against [c]'s tuple
   and a [delta] tuple. *)
let may_block ~schema ~cc_tableaux c delta =
  let unifies (a : Atom.t) tuple bound =
    if Atom.arity a <> Tuple.arity tuple then None
    else
      let rec go bound i = function
        | [] -> Some bound
        | Term.Const k :: rest ->
          if Value.equal k (Tuple.get tuple i) then go bound (i + 1) rest else None
        | Term.Var x :: rest ->
          let v = Tuple.get tuple i in
          (match Valuation.find x bound with
           | Some v' -> if Value.equal v v' then go bound (i + 1) rest else None
           | None -> go (Valuation.add x v bound) (i + 1) rest)
      in
      go bound 0 a.Atom.args
  in
  ignore schema;
  List.exists
    (fun (tab : Tableau.t) ->
      let templates = tab.Tableau.patterns in
      List.exists
        (fun (alpha : Atom.t) ->
          String.equal alpha.Atom.rel c.cand_rel
          &&
          match unifies alpha c.cand_tuple Valuation.empty with
          | None -> false
          | Some bound ->
            List.exists
              (fun (beta : Atom.t) ->
                (not (beta == alpha))
                &&
                match Database.relation delta beta.Atom.rel with
                | exception Not_found -> false
                | rel ->
                  Relation.exists
                    (fun t -> Option.is_some (unifies beta t bound))
                    rel)
              templates)
        templates)
    cc_tableaux

(* Resolution-directed DFS over valuation sets (Proposition 4.2's sets
   V): starting from ∅, test the E2 condition; when it fails with a
   live unbounded valuation μ*, branch only on candidates that can
   {e resolve} μ* — bound one of its stray output values, or
   participate in a violation together with μ*'s extension.  Any
   successful superset must contain a resolving candidate (a violation
   blocking μ* needs at least one candidate tuple joined with μ*'s
   tuples, and bounding needs a summary hit), so directed branching is
   exact; memoisation collapses permutations of the same set. *)
let e2_search ~clock ?checker ?profile ~budget ~schema ~master ~ccs ~adom
    ~reserved ~tableaux pool =
  Trace.with_span "rcqp.e2_search" @@ fun sp ->
  let pool = Array.of_list pool in
  let n = Array.length pool in
  Trace.set_int sp "pool" n;
  let cc_tableaux =
    List.concat_map
      (fun cc ->
        match Lang.as_ucq cc.Containment.lhs with
        | None -> []
        | Some lhs -> List.filter_map (Tableau.of_cq schema) lhs)
      ccs
  in
  let nodes = ref 0 in
  let visited = Hashtbl.create 1024 in
  (* DFS invariant: [dfs] only recurses into consistent sets, and the
     root is the empty database — so when the empty database passes
     the full check, every [dv'] here grows a consistent parent by one
     tuple and the delta check applies. *)
  let empty_db = Database.empty schema in
  let empty_comp = lazy (Compiled.create ~base:empty_db ~master ccs) in
  let consistent_add dv' rel tuple =
    match checker with
    | Some inc when Incremental.empty_ok inc ->
      Incremental.check_add_overlay inc ~base:empty_db ~delta:dv' ~db:dv' ~rel
        ~tuple
    | _ -> Compiled.check (Lazy.force empty_comp) ~db:dv' ~delta:dv'
  in
  let found = ref None in
  let rec dfs members dv bvals =
    if !found <> None then ()
    else begin
      let key = String.concat "," (List.map string_of_int (List.sort compare members)) in
      if not (Hashtbl.mem visited key) then begin
        Hashtbl.add visited key ();
        incr nodes;
        Budget.check_now clock;
        if !nodes > budget.max_nodes then
          raise (Budget_exceeded "E2 search exceeded its node budget");
        match
          e2_condition ~clock ~checker ~profile ~master ~ccs ~adom ~reserved
            ~tableaux ~dv ~bvals
        with
        | None -> found := Some dv
        | Some w ->
          for i = 0 to n - 1 do
            if !found = None && not (List.mem i members) then begin
              let c = pool.(i) in
              let resolves =
                List.exists (fun v -> List.exists (Value.equal v) c.cand_summary)
                  w.w_unbounded
                || may_block ~schema ~cc_tableaux c w.w_delta
              in
              if resolves then begin
                let dv' = Database.add_tuple dv c.cand_rel c.cand_tuple in
                if consistent_add dv' c.cand_rel c.cand_tuple then
                  dfs (i :: members) dv'
                    (List.fold_left (fun s v -> VS.add v s) bvals c.cand_summary)
              end
            end
          done
      end
    end
  in
  (* the DFS can exit via Budget_exceeded / Exhausted: account for the
     expanded nodes on every path *)
  Fun.protect
    ~finally:(fun () ->
      Metrics.add m_e2_nodes !nodes;
      (match profile with
       | Some p -> Profile.bump p "e2_nodes" !nodes
       | None -> ());
      Trace.set_int sp "nodes" !nodes)
  @@ fun () ->
  dfs [] (Database.empty schema) VS.empty;
  Trace.set_bool sp "found" (!found <> None);
  !found

(* E1/E5 witness: a maximal collection of tableau instantiations over
   the active domain.  One pass suffices: rejections are final because
   violations persist under growth. *)
let greedy_maximal_witness ?(clock = Budget.unlimited) ?profile ~budget ~schema
    ~master ~ccs ~adom tableaux =
  Trace.with_span "rcqp.witness_greedy" @@ fun _sp ->
  let dw = ref (Database.empty schema) in
  (* one compiled checker for the whole greedy pass: RHS projections
     evaluated once, candidate databases joined as interned overlays *)
  let comp = Compiled.create ~base:(Database.empty schema) ~master ccs in
  let count = ref 0 in
  let ticks = ref 0 in
  let exceeded = ref false in
  Fun.protect
    ~finally:(fun () ->
      match profile with
      | Some p -> Profile.bump p "witness_steps" !ticks
      | None -> ())
  @@ fun () ->
  List.iter
    (fun (tab : Tableau.t) ->
      if not !exceeded then begin
        let doms = Tableau.var_domains tab in
        let cands = List.map (fun (x, d) -> (x, Adom.candidates adom d)) doms in
        let (_ : bool) =
          Valuation.enumerate_iter cands (fun mu ->
              incr ticks;
              Budget.tick clock;
              incr count;
              if !count > budget.max_valuations then begin
                exceeded := true;
                true
              end
              else begin
                if Tableau.neqs_ok tab mu then begin
                  let delta = Tableau.instantiate tab mu in
                  let candidate = Database.union !dw delta in
                  if Compiled.check comp ~db:candidate ~delta:candidate then
                    dw := candidate
                end;
                false
              end)
        in
        ()
      end)
    tableaux;
  if !exceeded then None else Some !dw

(* Exact Empty check by fresh-value pumping: if some satisfiable
   disjunct admits a valuation μ* that (i) gives every infinite-domain
   variable — including an output variable — a brand-new value, and
   (ii) produces an extension none of whose tuples unifies with any
   atom of any constraint query, then μ*(T) is invisible to V: for
   {e every} partially closed D, D ∪ μ*(T) is partially closed and
   contains a strictly new answer.  Hence no complete database exists.
   Unification against a tuple holding fresh values fails exactly when
   the atom pins a constant (or a repeated variable) against them, so
   the check is sound and purely syntactic. *)
let fresh_pumpable ~schema ~ccs tableaux =
  let cc_atoms =
    List.concat_map
      (fun cc ->
        match Lang.as_ucq cc.Containment.lhs with
        | None -> []
        | Some lhs ->
          List.concat_map
            (fun cq ->
              match Cq.normalize cq with
              | Some n -> n.Cq.n_atoms
              | None -> [])
            lhs)
      ccs
  in
  let unifies (a : Atom.t) tuple =
    if Atom.arity a <> Tuple.arity tuple then false
    else
      let rec go bound i = function
        | [] -> true
        | Term.Const k :: rest ->
          Value.equal k (Tuple.get tuple i) && go bound (i + 1) rest
        | Term.Var x :: rest ->
          let v = Tuple.get tuple i in
          (match Valuation.find x bound with
           | Some v' -> Value.equal v v' && go bound (i + 1) rest
           | None -> go (Valuation.add x v bound) (i + 1) rest)
      in
      go Valuation.empty 0 a.Atom.args
  in
  List.find_map
    (fun (tab : Tableau.t) ->
      match infinite_summary_vars tab with
      | [] -> None
      | y :: _ ->
        let doms = Tableau.var_domains tab in
        (* candidates: finite-domain variables range over their domain,
           infinite ones get distinct sentinel fresh values. *)
        let fresh_counter = ref 0 in
        let assignment_lists =
          List.map
            (fun (x, d) ->
              match Domain.values d with
              | Some vs -> (x, vs)
              | None ->
                incr fresh_counter;
                (x, [ Value.Str (Printf.sprintf "\xE2\x8A\xA5fresh%d" !fresh_counter) ]))
            doms
        in
        let pumped = ref false in
        let (_ : bool) =
          Valuation.enumerate_iter assignment_lists (fun mu ->
              if Tableau.neqs_ok tab mu then begin
                let delta = Tableau.instantiate tab mu in
                let invisible =
                  Database.fold
                    (fun rel tuples acc ->
                      acc
                      && Relation.for_all
                           (fun t ->
                             not
                               (List.exists
                                  (fun (a : Atom.t) ->
                                    String.equal a.Atom.rel rel && unifies a t)
                                  cc_atoms))
                           tuples)
                    delta true
                in
                if invisible then begin
                  pumped := true;
                  true
                end
                else false
              end
              else false)
        in
        ignore schema;
        if !pumped then Some (tab, y) else None)
    tableaux

(* Exact Empty check: a satisfiable disjunct whose output has an
   infinite-domain variable and whose relations no constraint
   mentions.  Extensions of those relations can never violate V, so a
   fresh output value always yields a strictly larger answer. *)
let unconstrained_disjunct ~ccs tableaux =
  let cc_rels =
    List.concat_map (fun cc -> Lang.relations cc.Containment.lhs) ccs
    |> List.sort_uniq String.compare
  in
  List.find_map
    (fun (tab : Tableau.t) ->
      match infinite_summary_vars tab with
      | [] -> None
      | y :: _ ->
        let rels = List.map (fun (a : Atom.t) -> a.Atom.rel) tab.Tableau.patterns in
        if List.exists (fun r -> List.mem r cc_rels) rels then None else Some (tab, y))
    tableaux

let verify_witness ?clock ?search ?profile ~schema ~master ~ccs q w =
  Containment.holds_all ~db:w ~master ccs
  && Rcdp.decide ?clock ?search ?profile ~schema ~master ~ccs ~db:w q
     = Rcdp.Complete

(* Heuristic witness candidates, cheapest-and-likeliest first: the
   empty database, the greedy maximal collection of constant-valued
   tableau instantiations (the right witness when the answer is "copy
   the master data in"), a few valid tableau instantiations, a few
   constraint-template instantiations, and a few pairwise unions.
   Each candidate costs a full RCDP run, so the list is kept short. *)
let heuristic_witness ~clock ?checker ?search ?profile ~budget ~schema ~master
    ~ccs ~adom ~tableaux q =
  Trace.with_span "rcqp.witness_heuristic" @@ fun _sp ->
  let max_verifications = 24 in
  let constants_only =
    (* the greedy maximal witness restricted to known constants *)
    let small =
      { budget with max_valuations = min budget.max_valuations 50_000 }
    in
    greedy_maximal_witness ?profile ~budget:small ~schema ~master ~ccs
      ~adom:
        (Adom.build ~schemas:[ schema ] ~master:(Database.empty (Database.schema master))
           ~cc_constants:(Adom.constants adom) ~query_constants:[] ~fresh_count:0 ())
      tableaux
  in
  let singles = ref [] in
  let count = ref 0 in
  List.iter
    (fun tab ->
      let (_ : bool) =
        Valuation_search.iter_valid ~budget:clock ?checker ?profile ~master
          ~ccs ~mode:`Delta_only ~adom tab
          (fun _ delta ->
            incr count;
            singles := delta :: !singles;
            !count > 6)
      in
      ())
    tableaux;
  let pool =
    candidate_pool ~truncate:true ~clock ?checker ?profile ~budget ~schema
      ~master ~adom ccs
  in
  let template_singles =
    List.filteri (fun i _ -> i < 6) pool
    |> List.map (fun c -> Database.add_tuple (Database.empty schema) c.cand_rel c.cand_tuple)
  in
  let singles = List.rev !singles in
  let pairs =
    List.concat_map
      (fun a -> List.map (Database.union a) template_singles)
      (List.filteri (fun i _ -> i < 3) singles)
  in
  let candidates =
    (Database.empty schema :: Option.to_list constants_only)
    @ singles @ template_singles @ pairs
  in
  let candidates = List.filteri (fun i _ -> i < max_verifications) candidates in
  List.find_opt
    (verify_witness ~clock ?search ?profile ~schema ~master ~ccs q)
    candidates

let decide_core ~clock ~search ~profile ~budget ~schema ~master ~ccs q =
  Budget.check_now clock;
  require_monotone_ccs ccs;
  (* one checker per decide call, threaded to every search site; [Par]
     runs as the incremental mode here — RCQP's searches are many small
     nested enumerations with no single fan-out point worth a pool *)
  let checker =
    match search with
    | Search_mode.Seq -> None
    | Search_mode.Inc | Search_mode.Par _ ->
      Some (Incremental.create ~schema ~master ccs)
  in
  (match profile with
   | Some p ->
     Profile.note p "decider" "rcqp";
     Profile.note p "mode" (Search_mode.to_string search);
     Profile.note p "checker"
       (match checker with Some _ -> "incremental" | None -> "compiled")
   | None -> ());
  let inner_search =
    match search with Search_mode.Par _ -> Search_mode.Inc | s -> s
  in
  let ucq = as_ucq_or_raise "RCQP" q in
  let tableaux = satisfiable_tableaux schema ucq in
  if tableaux = [] then
    Nonempty
      {
        witness = Some (Database.empty schema);
        reason = "the query is unsatisfiable; any partially closed database is complete";
      }
  else begin
    let adom_pool, adom = build_adoms ~budget ~schema ~master ~ccs ~ucq in
    if List.for_all (fun tab -> infinite_summary_vars tab = []) tableaux then begin
      (* E1 / E5 *)
      let witness =
        match
          greedy_maximal_witness ~clock ?profile ~budget ~schema ~master ~ccs
            ~adom tableaux
        with
        | Some w
          when verify_witness ~clock ~search:inner_search ?profile ~schema
                 ~master ~ccs q w ->
          Some w
        | _ -> None
      in
      Nonempty
        { witness; reason = "all output variables range over finite domains (E1/E5)" }
    end
    else
      match
        match unconstrained_disjunct ~ccs tableaux with
        | Some _ as r -> r
        | None -> fresh_pumpable ~schema ~ccs tableaux
      with
      | Some (_, y) ->
        Empty
          {
            reason =
              Printf.sprintf
                "output variable %s is infinite-domain and a fresh-valued extension is \
                 invisible to every constraint: a fresh value always extends the answer"
                y;
          }
      | None ->
        (try
           let pool =
             candidate_pool ~clock ?checker ?profile ~budget ~schema ~master
               ~adom:adom_pool ccs
           in
           let reserved =
             let pool_fresh = VS.of_list (Adom.fresh adom_pool) in
             VS.of_list
               (List.filter (fun f -> not (VS.mem f pool_fresh)) (Adom.fresh adom))
           in
           match
             e2_search ~clock ?checker ?profile ~budget ~schema ~master ~ccs
               ~adom ~reserved ~tableaux pool
           with
           | Some dv ->
             let witness =
               (* Proposition 4.2(b): D_V plus the constant-only tuple
                  templates of the query tableaux. *)
               let w =
                 List.fold_left
                   (fun w (tab : Tableau.t) ->
                     List.fold_left
                       (fun w (a : Atom.t) ->
                         if Atom.vars a = [] then
                           match Valuation.tuple_of_terms Valuation.empty a.Atom.args with
                           | Some t -> Database.add_tuple w a.Atom.rel t
                           | None -> w
                         else w)
                       w tab.Tableau.patterns)
                   dv tableaux
               in
               if
                 verify_witness ~clock ~search:inner_search ?profile ~schema
                   ~master ~ccs q w
               then Some w
               else None
             in
             Nonempty { witness; reason = "a bounding valuation set exists (E2/E6)" }
           | None ->
             Empty
               {
                 reason =
                   "exhausted all maximal consistent valuation sets: no set bounds the \
                    output (E2/E6 fail)";
               }
         with Budget_exceeded why ->
           (match
              heuristic_witness ~clock ?checker ~search:inner_search ?profile
                ~budget ~schema ~master ~ccs ~adom ~tableaux q
            with
            | Some w ->
              Nonempty
                { witness = Some w; reason = "verified witness found by heuristic search" }
            | None -> Unknown { reason = why }))
  end

let decide ?(clock = Budget.unlimited) ?(search = Search_mode.Seq)
    ?(budget = default_budget) ?profile ~schema ~master ~ccs q =
  with_decide_obs ~name:"rcqp.decide" ~clock ~search (fun () ->
      decide_core ~clock ~search ~profile ~budget ~schema ~master ~ccs q)

(* ------------------------------------------------------------------ *)
(* Bounded witness search for the undecidable rows of Table II. *)

type semi_verdict =
  | Plausibly_nonempty of {
      witness : Database.t;
      checked_up_to : int;
    }
  | No_witness_found of { candidates_tried : int }

let semi_decide ?(clock = Budget.unlimited) ?(max_tuples = 2) ?(max_candidates = 500) ~schema ~master ~ccs q =
  Budget.check_now clock;
  let adom =
    Adom.build ~schemas:[ schema ] ~master ~cc_constants:(cc_constants ccs)
      ~query_constants:(Lang.constants q) ~fresh_count:3 ()
  in
  let values = Adom.all adom in
  let candidate_tuples =
    List.concat_map
      (fun (r : Schema.relation_schema) ->
        let col_cands =
          List.map
            (fun (a : Schema.attribute) ->
              match Domain.values a.Schema.attr_dom with
              | Some vs -> vs
              | None -> values)
            r.Schema.attrs
        in
        let rec product = function
          | [] -> [ [] ]
          | c :: rest ->
            let tails = product rest in
            List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) c
        in
        List.map (fun vs -> (r.Schema.rel_name, Tuple.make vs)) (product col_cands))
      (Schema.relations schema)
  in
  let tried = ref 0 in
  let found = ref None in
  let check db =
    Budget.tick clock;
    incr tried;
    if
      !found = None && !tried <= max_candidates
      && Containment.holds_all ~db ~master ccs
    then begin
      match Rcdp.semi_decide ~max_tuples ~schema ~master ~ccs ~db q with
      | Rcdp.No_counterexample _ -> found := Some db
      | Rcdp.Refuted _ -> ()
    end
  in
  check (Database.empty schema);
  let candidates = Array.of_list candidate_tuples in
  let rec grow start db count =
    if !found = None && !tried <= max_candidates then begin
      if count > 0 then check db;
      if count < max_tuples + 1 then
        for i = start to Array.length candidates - 1 do
          if !found = None && !tried <= max_candidates then begin
            let rel, tuple = candidates.(i) in
            if not (Relation.mem tuple (Database.relation db rel)) then
              grow (i + 1) (Database.add_tuple db rel tuple) (count + 1)
          end
        done
    end
  in
  grow 0 (Database.empty schema) 0;
  match !found with
  | Some w -> Plausibly_nonempty { witness = w; checked_up_to = max_tuples }
  | None -> No_witness_found { candidates_tried = !tried }
