(** RCQP — the relatively complete query problem (Section 4).

    Given [Q ∈ LQ], master data [Dm] and CCs [V] in [LC], decide
    whether [RCQ(Q, Dm, V)] is nonempty: does {e any} partially closed
    database have complete information for [Q]?

    {2 Exact cases}

    - [LC] = INDs (Theorem 4.5(1), coNP-complete): decided exactly by
      the syntactic boundedness conditions E3/E4 of Proposition 4.3
      plus the valid-valuation escape clause — {!decide_ind}.
    - [LQ], [LC] ∈ {CQ, UCQ, ∃FO⁺} (Theorem 4.5(2),
      NEXPTIME-complete; Σ₃ᵖ for fixed [Dm], [V], Corollary 4.6):
      {!decide} checks the bounded-query conditions E1/E5 (all output
      variables over finite domains) exactly, and searches for the
      bounding valuation sets of conditions E2/E6 by a DFS over
      consistent sets of single-template instantiations of the
      constraint tableaux.  Condition E2 is monotone in the valuation
      set (bigger consistent sets bound more), and consistency is
      downward closed (the constraint languages are monotone), so
      testing only the maximal consistent sets reached by
      index-increasing chains is exact.  When the candidate pool or
      the DFS exceeds its budget the decider falls back to sound
      one-sided checks and may answer [Unknown] — the problem is
      NEXPTIME-complete, so a budget there must be.

    {2 Undecidable cases}

    For FO/FP (Theorem 4.1) use {!semi_decide}: a bounded witness
    search whose positive answers are only as strong as the bounded
    RCDP verification backing them. *)

open Ric_relational
open Ric_query
open Ric_constraints

exception Unsupported of string

type verdict =
  | Nonempty of {
      witness : Database.t option;
          (** a database verified complete by {!Rcdp.decide}, when the
              construction succeeded within budget *)
      reason : string;
    }
  | Empty of { reason : string }
  | Unknown of { reason : string }

val verdict_name : verdict -> string
(** ["nonempty"], ["empty"] or ["unknown"]. *)

type budget = {
  max_pool : int;        (** cap on candidate valuations for the E2 search *)
  max_nodes : int;       (** cap on DFS nodes over valuation sets *)
  max_valuations : int;  (** cap on tableau-valuation enumeration for witness building *)
  pool_fresh : int;
      (** how many fresh ([New]) values the candidate pool may use.
          The paper's construction reserves one per constraint
          variable; the default of 3 keeps the pool polynomial and is
          exact whenever a bounding valuation set needs at most 3
          distinct "don't care" values — raise it (at exponential
          cost) for paper-faithful exhaustiveness. *)
}

val default_budget : budget

val decide_ind :
  ?clock:Budget.t ->
  ?search:Search_mode.t ->
  ?profile:Ric_obs.Profile.t ->
  schema:Schema.t ->
  master:Database.t ->
  inds:Ind.t list ->
  Lang.t ->
  verdict
(** Exact decision for [LC] = INDs and [LQ ∈ {CQ, UCQ, ∃FO⁺}]
    (Proposition 4.3 / Theorem 4.5(1)).  Never returns [Unknown].
    [profile] accumulates a request-scoped explain profile — see
    {!decide}.
    @raise Unsupported for FO/FP queries.
    @raise Budget.Exhausted when [clock] runs out. *)

val decide :
  ?clock:Budget.t ->
  ?search:Search_mode.t ->
  ?budget:budget ->
  ?profile:Ric_obs.Profile.t ->
  schema:Schema.t ->
  master:Database.t ->
  ccs:Containment.t list ->
  Lang.t ->
  verdict
(** General decision for monotone [LQ]/[LC]; exact within budget, as
    described above.  [budget] caps the {e search shape} (pool size,
    DFS nodes) and degrades to [Unknown]; [clock] is the {e caller's
    patience} (wall clock / steps / cancel) and aborts the whole call
    with {!Budget.Exhausted} — the service turns that into a
    [timeout] verdict.  [search] (default [Seq]) selects the
    constraint-checking strategy of the inner valuation searches —
    [Par] runs as [Inc] here, since RCQP has no single top-level
    fan-out point; verdicts are identical across modes.

    [profile] (explain mode) accumulates a request-scoped explain
    profile across every inner search: per-level steps and
    per-constraint prunes from the valuation searches, plus the
    decider-specific counters ["pool_steps"] (candidate-pool
    instantiations), ["witness_steps"] (greedy witness valuations) and
    ["e2_nodes"] (valuation-set DFS nodes — checked, not ticked, so
    excluded from step attribution).  Partial counts survive budget
    exhaustion.
    @raise Unsupported for FO/FP on either side.
    @raise Budget.Exhausted when [clock] runs out. *)

type semi_verdict =
  | Plausibly_nonempty of {
      witness : Database.t;
      checked_up_to : int;  (** extension size the RCDP semi-decider explored *)
    }
  | No_witness_found of { candidates_tried : int }

val semi_decide :
  ?clock:Budget.t ->
  ?max_tuples:int ->
  ?max_candidates:int ->
  schema:Schema.t ->
  master:Database.t ->
  ccs:Containment.t list ->
  Lang.t ->
  semi_verdict
(** Bounded witness search for any language combination, including the
    undecidable FO/FP rows of Table II. *)
