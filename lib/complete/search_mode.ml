type t =
  | Seq
  | Inc
  | Par of int

let default_domains = 4

let name = function Seq -> "seq" | Inc -> "inc" | Par _ -> "par"

let to_string = function
  | Seq -> "seq"
  | Inc -> "inc"
  | Par n -> Printf.sprintf "par:%d" n

let of_string s =
  match s with
  | "seq" -> Ok Seq
  | "inc" -> Ok Inc
  | "par" -> Ok (Par default_domains)
  | _ ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "par" ->
       let rest = String.sub s (i + 1) (String.length s - i - 1) in
       (match int_of_string_opt rest with
        | Some n when n >= 1 -> Ok (Par n)
        | _ -> Error (Printf.sprintf "invalid domain count %S in %S" rest s))
     | _ ->
       Error
         (Printf.sprintf
            "unknown search mode %S (expected seq, inc, par or par:N)" s))

let pp ppf m = Format.pp_print_string ppf (to_string m)
