(** How the deciders run the valuation search.

    All three modes return identical verdicts; they differ only in how
    the work is done:

    - [Seq] — the seed behaviour: one domain, every containment
      constraint re-evaluated in full after each tuple extension.
    - [Inc] — one domain, constraints checked through
      {!Ric_constraints.Incremental}: indexed by relation, delta
      evaluation for monotone-UCQ LHS queries.
    - [Par n] — the incremental checker plus a top-level fan-out of the
      first split variable's candidates across [n] worker domains, with
      first-witness cancellation. *)

type t =
  | Seq
  | Inc
  | Par of int  (** worker domain count, [>= 1] *)

val default_domains : int
(** Domain count for the bare ["par"] spelling: 4. *)

val name : t -> string
(** ["seq"], ["inc"] or ["par"] — the stats-counter bucket. *)

val to_string : t -> string
(** ["seq"], ["inc"], ["par:<n>"] — round-trips through
    {!of_string}. *)

val of_string : string -> (t, string) result
(** Accepts ["seq"], ["inc"], ["par"] (= [Par default_domains]) and
    ["par:<n>"] with [n >= 1]. *)

val pp : Format.formatter -> t -> unit
