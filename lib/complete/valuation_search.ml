open Ric_relational
open Ric_query
open Ric_constraints

let neqs_ground_ok (tab : Tableau.t) mu =
  List.for_all
    (fun (s, t) ->
      match Valuation.term_value mu s, Valuation.term_value mu t with
      | Some a, Some b -> not (Value.equal a b)
      | _ -> true)
    tab.Tableau.neqs

let iter_valid ?(budget = Budget.unlimited) ~master ~ccs ~mode ~adom
    ?(on_prune = fun () -> ()) (tab : Tableau.t) visit =
  let var_doms = Tableau.var_domains tab in
  let cands x =
    match List.assoc_opt x var_doms with
    | Some d -> Adom.candidates adom d
    | None -> Adom.candidates adom Domain.Infinite
  in
  let unbound mu (a : Atom.t) =
    List.filter (fun x -> not (Valuation.mem x mu)) (Atom.vars a)
  in
  (* Greedy atom order: fewest unbound variables first, so constrained
     atoms prune before wide ones branch. *)
  let pick mu atoms =
    match atoms with
    | [] -> None
    | _ ->
      let best =
        List.fold_left
          (fun acc a ->
            let n = List.length (unbound mu a) in
            match acc with
            | Some (_, m) when m <= n -> acc
            | _ -> Some (a, n))
          None atoms
      in
      (match best with
       | None -> None
       | Some (a, _) -> Some (a, List.filter (fun x -> x != a) atoms))
  in
  let base =
    match mode with
    | `Against_base db -> db
    | `Delta_only -> Database.empty tab.Tableau.schema
  in
  let rec go mu delta combined atoms =
    match pick mu atoms with
    | None -> if neqs_ground_ok tab mu then visit mu delta else false
    | Some (a, rest) ->
      let vars = unbound mu a in
      Valuation.enumerate_iter
        (List.map (fun x -> (x, cands x)) vars)
        (fun partial ->
          Budget.tick budget;
          let mu' =
            List.fold_left
              (fun m (x, c) -> Valuation.add x c m)
              mu (Valuation.bindings partial)
          in
          if not (neqs_ground_ok tab mu') then false
          else
            match Valuation.tuple_of_terms mu' a.Atom.args with
            | None -> assert false
            | Some tuple ->
              let delta' = Database.add_tuple delta a.Atom.rel tuple in
              let combined' = Database.add_tuple combined a.Atom.rel tuple in
              let check_db =
                match mode with
                | `Against_base _ -> combined'
                | `Delta_only -> delta'
              in
              if Containment.holds_all ~db:check_db ~master ccs then
                go mu' delta' combined' rest
              else begin
                on_prune ();
                false
              end)
  in
  go Valuation.empty (Database.empty tab.Tableau.schema) base tab.Tableau.patterns
