open Ric_relational
open Ric_query
open Ric_constraints

module Metrics = Ric_obs.Metrics
module Trace = Ric_obs.Trace
module Profile = Ric_obs.Profile

(* Par-mode observability: counters live at coordinator/task
   granularity (per search / per task / per steal / per stop-flag
   trip), never per search leaf, so seq-mode throughput is untouched. *)
let m_par_searches =
  Metrics.counter ~help:"parallel top-level searches started"
    "ric_search_par_searches_total"

let m_par_tasks =
  Metrics.counter
    ~help:"subtree tasks pushed onto the work-stealing frontier"
    "ric_search_par_branches_total"

let m_par_cancels =
  Metrics.counter
    ~help:"stop-flag trips propagated to sibling workers (first witness, exhaustion or error)"
    "ric_search_cancel_propagations_total"

let m_steals =
  Metrics.counter
    ~help:"frontier tasks popped by a worker other than their producer"
    "ric_search_steal_total"

let m_worker_steps wid =
  Metrics.counter
    ~help:"search steps executed per parallel worker (utilisation)"
    ~labels:[ ("worker", string_of_int wid) ]
    "ric_search_worker_steps_total"

(* Injection point for the fault harness: called at the start of every
   frontier task a par worker executes.  The service layer arms it from
   RIC_FAULTS (point "search_worker") at module init; the default is a
   no-op.  A hook ref keeps the layering acyclic — ric_complete cannot
   see ric_service's Faults module. *)
let fault_hook : (unit -> unit) ref = ref ignore
let set_fault_hook f = fault_hook := f

let neqs_ground_ok (tab : Tableau.t) mu =
  List.for_all
    (fun (s, t) ->
      match Valuation.term_value mu s, Valuation.term_value mu t with
      | Some a, Some b -> not (Value.equal a b)
      | _ -> true)
    tab.Tableau.neqs

(* Remove exactly one occurrence by physical identity: a tableau may
   legitimately repeat a pattern atom, and [List.filter (!=)] would
   silently drop every shared duplicate along with the picked one. *)
let rec remove_one a = function
  | [] -> []
  | x :: rest -> if x == a then rest else x :: remove_one a rest

(* An incremental checker is only usable when its parent invariant
   holds at the search root: every CC satisfied by the initial check
   database.  Otherwise fall back to full per-candidate checks, which
   reproduces the seed behaviour (including its verdicts and prune
   counts) exactly. *)
let resolve checker ~mode =
  match checker with
  | None -> None
  | Some inc ->
    (match mode with
     | `Delta_only -> if Incremental.empty_ok inc then Some inc else None
     | `Against_base db -> if Incremental.full inc ~db then Some inc else None)

(* [base_of mode tab] — the fixed part of every checked database; the
   per-step checkers index it once and overlay the growing delta. *)
let base_of mode (tab : Tableau.t) =
  match mode with
  | `Against_base db -> db
  | `Delta_only -> Database.empty tab.Tableau.schema

(* The greedy fewest-unbound-first atom pick depends only on the {e
   set} of bound variables — never on their values — and that set is
   the same in every branch at the same tree position, so the whole
   instantiation order can be computed once per search instead of once
   per node.  [plan_levels] replays the pick: at each level the atom
   with the fewest unbound variables is selected (earliest atom wins
   ties, matching the old per-node fold), its unbound variables and
   their candidate lists are recorded, and its variables are marked
   bound.  Every branch then instantiates atoms in exactly this order,
   which is what lets par-mode subtree tasks align with the sequential
   tree: same nodes, same ticks, same prunes, same verdict. *)
type level = {
  l_atom : Atom.t;
  l_doms : (string * Value.t list) list; (* unbound vars × candidates *)
  l_width : int; (* candidate combinations at this level (capped) *)
}

let plan_levels ~adom ~init_vars (tab : Tableau.t) =
  let var_doms = Tableau.var_domains tab in
  let cands x =
    match List.assoc_opt x var_doms with
    | Some d -> Adom.candidates adom d
    | None -> Adom.candidates adom Domain.Infinite
  in
  let bound = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace bound x ()) init_vars;
  let unbound a =
    List.filter (fun x -> not (Hashtbl.mem bound x)) (Atom.vars a)
  in
  let rec go acc atoms =
    match atoms with
    | [] -> List.rev acc
    | _ ->
      let best =
        List.fold_left
          (fun best a ->
            let n = List.length (unbound a) in
            match best with
            | Some (_, m) when m <= n -> best
            | _ -> Some (a, n))
          None atoms
      in
      (match best with
       | None -> List.rev acc
       | Some (a, _) ->
         let vars = unbound a in
         let doms = List.map (fun x -> (x, cands x)) vars in
         let width =
           List.fold_left
             (fun w (_, cs) -> min 1_000_000 (w * List.length cs))
             1 doms
         in
         List.iter (fun x -> Hashtbl.replace bound x ()) vars;
         go ({ l_atom = a; l_doms = doms; l_width = width } :: acc)
           (remove_one a atoms))
  in
  Array.of_list (go [] tab.Tableau.patterns)

(* Everything immutable a search shares across branches (and, in par
   mode, across worker domains): the checker's internals are
   mutex/atomic-guarded, the databases persistent. *)
type ctx = {
  c_tab : Tableau.t;
  c_chk : [ `Inc of Incremental.t | `Full of Compiled.t ];
  c_mode : [ `Against_base of Database.t | `Delta_only ];
  c_base : Database.t;
  c_levels : level array;
}

(* Enumerate every candidate instantiation of the atom at level [lv],
   charging one budget tick per candidate, and call [child] with the
   extended state for each candidate that passes the inequality and
   constraint checks.  Exists-style: stops at the first [true]. *)
(* [prof] is this worker's private explain recorder ([None] on the
   production path): each budget tick is mirrored as a level step, and
   a pruned branch asks the checker's explain twin which constraint
   cut it.  The [None] arm adds exactly one option match per candidate
   — no allocation, measured by the bench gate. *)
let expand ctx ~budget ~prof ~on_prune lv mu delta combined child =
  let { l_atom = a; l_doms = doms0; _ } = ctx.c_levels.(lv) in
  (* par-mode pin-splitting seeds [mu] with some of this level's own
     variables; enumerate only the rest (tick-neutral: the pinned
     tasks' combo counts sum to the full level width).  The sequential
     path never pins, so it keeps the precomputed list as-is. *)
  let doms =
    if List.exists (fun (x, _) -> Valuation.mem x mu) doms0 then
      List.filter (fun (x, _) -> not (Valuation.mem x mu)) doms0
    else doms0
  in
  Valuation.enumerate_iter doms (fun partial ->
    (* profile before tick: [tick] counts the step even when it raises
       [Exhausted], so attributing first keeps a timed-out run's
       profile in exact agreement with the budget's step total *)
    (match prof with None -> () | Some sr -> Profile.step sr lv);
    Budget.tick budget;
    let mu' =
      if Valuation.is_empty mu then partial
      else
        List.fold_left
          (fun m (x, c) -> Valuation.add x c m)
          mu (Valuation.bindings partial)
    in
    if not (neqs_ground_ok ctx.c_tab mu') then false
    else
      match Valuation.tuple_of_terms mu' a.Atom.args with
      | None -> assert false
      | Some tuple ->
        let delta' = Database.add_tuple delta a.Atom.rel tuple in
        let combined' = Database.add_tuple combined a.Atom.rel tuple in
        let check_db =
          match ctx.c_mode with
          | `Against_base _ -> combined'
          | `Delta_only -> delta'
        in
        (match prof with
         | None ->
           let ok =
             match ctx.c_chk with
             | `Inc c ->
               Incremental.check_add_overlay c ~base:ctx.c_base ~delta:delta'
                 ~db:check_db ~rel:a.Atom.rel ~tuple
             | `Full comp -> Compiled.check comp ~db:check_db ~delta:delta'
           in
           if ok then child mu' delta' combined'
           else begin
             on_prune ();
             false
           end
         | Some sr -> (
           let violated =
             match ctx.c_chk with
             | `Inc c ->
               Incremental.check_add_overlay_explain c ~base:ctx.c_base
                 ~delta:delta' ~db:check_db ~rel:a.Atom.rel ~tuple
             | `Full comp ->
               Compiled.check_explain comp ~db:check_db ~delta:delta'
           in
           match violated with
           | None -> child mu' delta' combined'
           | Some _ as cc ->
             Profile.prune sr lv cc;
             on_prune ();
             false)))

let rec dfs ctx ~budget ~prof ~on_prune ~visit lv mu delta combined =
  if lv = Array.length ctx.c_levels then
    if neqs_ground_ok ctx.c_tab mu then visit mu delta else false
  else
    expand ctx ~budget ~prof ~on_prune lv mu delta combined
      (dfs ctx ~budget ~prof ~on_prune ~visit (lv + 1))

let level_names levels =
  Array.map (fun l -> l.l_atom.Atom.rel) levels

(* [chk] is the per-step constraint checker, resolved once per search:
   [`Inc] when the incremental checker's parent invariant holds at the
   root, else [`Full], a compiled whole-check over the same base.
   Both receive the delta explicitly so joins run over persistent
   base indexes plus a small interned overlay. *)
let run ~budget ~profile ~chk ~mode ~adom ~on_prune ~init (tab : Tableau.t)
    visit =
  Budget.check_now budget;
  let levels =
    plan_levels ~adom
      ~init_vars:(List.map fst (Valuation.bindings init))
      tab
  in
  let ctx =
    {
      c_tab = tab;
      c_chk = chk;
      c_mode = mode;
      c_base = base_of mode tab;
      c_levels = levels;
    }
  in
  match profile with
  | None ->
    dfs ctx ~budget ~prof:None ~on_prune ~visit 0 init
      (Database.empty tab.Tableau.schema)
      ctx.c_base
  | Some p ->
    (* merge even when the budget exhausts mid-search: a timeout
       verdict still reports where the spent steps went *)
    let sr = Profile.start_search p ~names:(level_names levels) in
    Fun.protect ~finally:(fun () -> Profile.finish_search p sr) @@ fun () ->
    dfs ctx ~budget ~prof:(Some sr) ~on_prune ~visit 0 init
      (Database.empty tab.Tableau.schema)
      ctx.c_base

let iter_valid ?(budget = Budget.unlimited) ?checker ?profile ~master ~ccs
    ~mode ~adom ?(on_prune = fun () -> ()) (tab : Tableau.t) visit =
  Budget.check_now budget;
  let chk =
    match resolve checker ~mode with
    | Some c -> `Inc c
    | None -> `Full (Compiled.create ~base:(base_of mode tab) ~master ccs)
  in
  run ~budget ~profile ~chk ~mode ~adom ~on_prune ~init:Valuation.empty tab
    visit

(* A frontier task is one subtree of the sequential search tree: "all
   levels below [t_lv] under this partial state".  Tasks exist only at
   atom boundaries, so executing every task exactly once reproduces the
   sequential tree node for node — step totals, prune counts and
   verdicts all coincide with seq mode. *)
type task = {
  t_lv : int;
  t_mu : Valuation.t;
  t_delta : Database.t;
  t_combined : Database.t;
  t_depth : int; (* splits along this path, capped *)
  t_producer : int; (* worker that pushed it, for the steal counter *)
  mutable t_attempts : int; (* crash retries consumed *)
}

(* Splitting one level deeper than this buys nothing: subtrees near the
   leaves are smaller than the push/pop they cost. *)
let depth_cap = 8

(* Parallel top-level search, reworked for OCaml 5 multicore.

   Work-stealing over a subproblem frontier: the coordinator seeds a
   Treiber-stack frontier with the root task; any worker that pops a
   task either runs its whole subtree inline (the common case) or — when
   the frontier is starved (fewer queued tasks than workers) and the
   level still branches — expands just one level and pushes each
   surviving child subtree for idle workers to steal.  Skewed
   partitions therefore split below the first variable on demand
   instead of degenerating to one long sequential branch.

   Shared-state discipline: the hot path takes no locks ([Intern],
   [Kernel.Store] and [Rix] publish through atomics; the frontier is a
   CAS list; step accounting is one [Atomic.fetch_and_add] per tick via
   {!Budget.fork_shared}, enforcing the step cap exactly instead of
   merging per-child counts at job end).  Only [visit] / [on_prune]
   delivery serialises on a mutex, at visit/task granularity.

   A task that raises anything other than [Budget.Exhausted] (e.g. an
   injected worker crash) is retried exactly once; a second failure
   records the error, trips the stop flag and the coordinator re-raises
   — a crash can cost duplicated work, never a hang or a wrong
   verdict. *)
let iter_valid_par ?(budget = Budget.unlimited) ?checker ?profile ~domains
    ~master ~ccs ~mode ~adom ?(on_prune = fun () -> ()) (tab : Tableau.t) visit
    =
  Budget.check_now budget;
  (* [domains] partitions the work; the pool never runs more worker
     domains than the machine has cores — oversubscribing a saturated
     runtime only adds GC-synchronisation cost.  RIC_SEARCH_FORCE_WORKERS
     overrides the clamp (scaling sweeps, concurrency tests). *)
  let clamp =
    match
      Option.bind
        (Sys.getenv_opt "RIC_SEARCH_FORCE_WORKERS")
        int_of_string_opt
    with
    | Some n when n > 0 -> n
    | _ -> Stdlib.Domain.recommended_domain_count ()
  in
  let workers = max 1 (min domains clamp) in
  let levels = plan_levels ~adom ~init_vars:[] tab in
  let splittable = Array.exists (fun l -> l.l_width >= 2) levels in
  if workers <= 1 || not splittable then
    (* one worker, or no level branches at all: the frontier cannot
       produce parallelism, so run the sequential engine directly —
       same tree, zero coordination overhead *)
    iter_valid ~budget ?checker ?profile ~master ~ccs ~mode ~adom ~on_prune tab
      visit
  else begin
    (* one checker for every worker: the compiled store and the
       incremental counters are atomic/mutex-guarded, so sharing across
       domains is safe and keeps index reuse across subtrees *)
    let chk =
      match resolve checker ~mode with
      | Some c -> `Inc c
      | None -> `Full (Compiled.create ~base:(base_of mode tab) ~master ccs)
    in
    let ctx =
      {
        c_tab = tab;
        c_chk = chk;
        c_mode = mode;
        c_base = base_of mode tab;
        c_levels = levels;
      }
    in
    let n_levels = Array.length levels in
    let stop = Atomic.make false in
    (* count each trip of the stop flag once, whoever races to it *)
    let trip_stop () =
      if not (Atomic.exchange stop true) then Metrics.incr m_par_cancels
    in
    let mx = Mutex.create () in
    let found = ref false in
    let exhausted = ref None in
    let error = ref None in
    let shared = Atomic.make 0 in
    (* Treiber stack of subtree tasks; [queued] feeds the starvation
       check, [remaining] counts popped-but-unfinished plus queued
       tasks for termination detection. *)
    let frontier = Atomic.make [] in
    let queued = Atomic.make 0 in
    let remaining = Atomic.make 0 in
    let pushed = Atomic.make 0 in
    let push_cas t =
      Atomic.incr queued;
      let rec go () =
        let cur = Atomic.get frontier in
        if not (Atomic.compare_and_set frontier cur (t :: cur)) then go ()
      in
      go ()
    in
    let push_new t =
      Atomic.incr remaining;
      Atomic.incr pushed;
      Metrics.incr m_par_tasks;
      push_cas t
    in
    let pop () =
      let rec go () =
        match Atomic.get frontier with
        | [] -> None
        | t :: rest as cur ->
          if Atomic.compare_and_set frontier cur rest then begin
            Atomic.decr queued;
            Some t
          end
          else go ()
      in
      go ()
    in
    let locked f =
      Mutex.lock mx;
      match f () with
      | v ->
        Mutex.unlock mx;
        v
      | exception e ->
        Mutex.unlock mx;
        raise e
    in
    let visit_sync mu delta =
      locked (fun () ->
        let r = visit mu delta in
        if r then begin
          found := true;
          trip_stop ()
        end;
        r)
    in
    (* prunes are counted locally and flushed under the visit mutex
       once per task — a search prunes constantly, and a lock per prune
       is exactly the coordination cost this path exists to avoid *)
    let flush_prunes pr =
      if !pr > 0 then begin
        let n = !pr in
        pr := 0;
        locked (fun () ->
          for _ = 1 to n do
            on_prune ()
          done)
      end
    in
    let exec_task wid child_budget sr pr t =
      !fault_hook ();
      let on_prune_local () = incr pr in
      (* When the frontier is starved (fewer queued tasks than
         workers), split the popped task instead of running it whole.
         Preferred split: {e pin} the widest not-yet-pinned variable of
         the current level — one child task per candidate value, no
         ticks spent, so the widest variable (not blindly the first)
         carries the partitioning and skewed partitions keep
         subdividing on demand.  When every variable of the level is
         pinned down to a single candidate, descend instead: expand the
         level (its ticks and checks) and push one task per surviving
         child subtree.  Tasks only ever cut the tree at variable or
         atom boundaries, so step/prune/verdict parity with seq is
         preserved. *)
      let choice =
        if t.t_depth >= depth_cap || Atomic.get queued >= workers then `Run
        else begin
          let unpinned =
            List.filter
              (fun (x, _) -> not (Valuation.mem x t.t_mu))
              levels.(t.t_lv).l_doms
          in
          let widest =
            List.fold_left
              (fun best ((_, cs) as d) ->
                match best with
                | Some (_, bcs) when List.length bcs >= List.length cs -> best
                | _ -> Some d)
              None unpinned
          in
          match widest with
          | Some (x, cs) when List.length cs >= 2 -> `Pin (x, cs)
          | _ -> if t.t_lv + 1 < n_levels then `Descend else `Run
        end
      in
      match choice with
      | `Pin (x, cs) ->
        List.iter
          (fun v ->
            push_new
              {
                t with
                t_mu = Valuation.add x v t.t_mu;
                t_depth = t.t_depth + 1;
                t_producer = wid;
                t_attempts = 0;
              })
          cs
      | `Descend ->
        (* a witness can only appear at a leaf, so the discarded bool
           is always [false] here *)
        ignore
          (expand ctx ~budget:child_budget ~prof:sr ~on_prune:on_prune_local
             t.t_lv t.t_mu t.t_delta t.t_combined
             (fun mu' delta' combined' ->
               push_new
                 {
                   t_lv = t.t_lv + 1;
                   t_mu = mu';
                   t_delta = delta';
                   t_combined = combined';
                   t_depth = t.t_depth + 1;
                   t_producer = wid;
                   t_attempts = 0;
                 };
               false))
      | `Run ->
        ignore
          (dfs ctx ~budget:child_budget ~prof:sr ~on_prune:on_prune_local
             ~visit:visit_sync t.t_lv t.t_mu t.t_delta t.t_combined)
    in
    let names = level_names levels in
    let worker wid =
      let child = Budget.fork_shared ~shared ~cancel:stop budget in
      (* a private recorder per worker domain: plain array bumps on the
         hot path, merged into the shared aggregate once at the end *)
      let sr =
        match profile with
        | None -> None
        | Some p -> Some (Profile.start_search p ~names)
      in
      let pr = ref 0 in
      let rec loop spins =
        if Atomic.get stop then ()
        else
          match pop () with
          | Some t ->
            if t.t_producer <> wid then Metrics.incr m_steals;
            let completed =
              match exec_task wid child sr pr t with
              | () -> true
              | exception Budget.Exhausted reason ->
                locked (fun () ->
                  match reason with
                  | Budget.Cancelled when Atomic.get stop ->
                    () (* our own first-witness / stop cancellation *)
                  | r -> if !exhausted = None then exhausted := Some r);
                trip_stop ();
                true
              | exception e ->
                if t.t_attempts = 0 then begin
                  (* retry a crashed task exactly once: requeue it (it
                     is still counted by [remaining]) so one injected
                     worker crash costs duplicated work, not a verdict *)
                  t.t_attempts <- 1;
                  push_cas t;
                  false
                end
                else begin
                  locked (fun () -> if !error = None then error := Some e);
                  trip_stop ();
                  true
                end
            in
            flush_prunes pr;
            if completed then Atomic.decr remaining;
            loop 0
          | None ->
            if Atomic.get remaining = 0 then ()
            else begin
              (* brief spin, then sleep: on an oversubscribed host an
                 idle domain must yield the core or it starves the
                 worker actually holding the work *)
              if spins < 64 then Stdlib.Domain.cpu_relax ()
              else Unix.sleepf 1e-4;
              loop (spins + 1)
            end
      in
      loop 0;
      (match profile, sr with
       | Some p, Some s -> Profile.finish_search p s
       | _ -> ());
      let local = Budget.steps child in
      Metrics.add (m_worker_steps wid) local;
      local
    in
    Metrics.incr m_par_searches;
    let sp = Trace.start "search.par" in
    Trace.set_int sp "workers" workers;
    Trace.set_int sp "levels" n_levels;
    push_new
      {
        t_lv = 0;
        t_mu = Valuation.empty;
        t_delta = Database.empty tab.Tableau.schema;
        t_combined = ctx.c_base;
        t_depth = 0;
        t_producer = 0;
        t_attempts = 0;
      };
    let others =
      List.init (workers - 1) (fun i ->
        Stdlib.Domain.spawn (fun () -> worker (i + 1)))
    in
    let _self_steps = worker 0 in
    List.iter (fun d -> ignore (Stdlib.Domain.join d)) others;
    let total = Atomic.get shared in
    Trace.set_int sp "steps" total;
    Trace.set_int sp "tasks" (Atomic.get pushed);
    Trace.finish sp;
    (* the shared counter already holds the family total; clamp the
       fold so a cap-overshooting final tick race never inflates the
       parent past its allowance *)
    Budget.add_steps budget (min total (Budget.remaining budget));
    (match !error with Some e -> raise e | None -> ());
    if !found then true
    else begin
      (match !exhausted with
       | Some r -> raise (Budget.Exhausted r)
       | None -> ());
      Budget.check_now budget;
      false
    end
  end
