open Ric_relational
open Ric_query
open Ric_constraints

module Metrics = Ric_obs.Metrics
module Trace = Ric_obs.Trace

(* Par-mode observability: all counters live at the coordinator
   granularity (per split / per branch / per stop-flag trip), never per
   search leaf, so seq-mode throughput is untouched. *)
let m_par_searches =
  Metrics.counter ~help:"parallel top-level searches started"
    "ric_search_par_searches_total"

let m_par_branches =
  Metrics.counter ~help:"split-variable branches submitted to the pool"
    "ric_search_par_branches_total"

let m_par_cancels =
  Metrics.counter
    ~help:"stop-flag trips propagated to sibling branches (first witness, exhaustion or error)"
    "ric_search_cancel_propagations_total"

let neqs_ground_ok (tab : Tableau.t) mu =
  List.for_all
    (fun (s, t) ->
      match Valuation.term_value mu s, Valuation.term_value mu t with
      | Some a, Some b -> not (Value.equal a b)
      | _ -> true)
    tab.Tableau.neqs

(* Remove exactly one occurrence by physical identity: a tableau may
   legitimately repeat a pattern atom, and [List.filter (!=)] would
   silently drop every shared duplicate along with the picked one. *)
let rec remove_one a = function
  | [] -> []
  | x :: rest -> if x == a then rest else x :: remove_one a rest

(* An incremental checker is only usable when its parent invariant
   holds at the search root: every CC satisfied by the initial check
   database.  Otherwise fall back to full per-candidate checks, which
   reproduces the seed behaviour (including its verdicts and prune
   counts) exactly. *)
let resolve checker ~mode =
  match checker with
  | None -> None
  | Some inc ->
    (match mode with
     | `Delta_only -> if Incremental.empty_ok inc then Some inc else None
     | `Against_base db -> if Incremental.full inc ~db then Some inc else None)

(* [base_of mode tab] — the fixed part of every checked database; the
   per-step checkers index it once and overlay the growing delta. *)
let base_of mode (tab : Tableau.t) =
  match mode with
  | `Against_base db -> db
  | `Delta_only -> Database.empty tab.Tableau.schema

(* [chk] is the per-step constraint checker, resolved once per search:
   [`Inc] when the incremental checker's parent invariant holds at the
   root, else [`Full], a compiled whole-check over the same base.
   Both receive the delta explicitly so joins run over persistent
   base indexes plus a small interned overlay. *)
let run ~budget ~chk ~mode ~adom ~on_prune ~init (tab : Tableau.t) visit =
  Budget.check_now budget;
  let var_doms = Tableau.var_domains tab in
  let cands x =
    match List.assoc_opt x var_doms with
    | Some d -> Adom.candidates adom d
    | None -> Adom.candidates adom Domain.Infinite
  in
  let unbound mu (a : Atom.t) =
    List.filter (fun x -> not (Valuation.mem x mu)) (Atom.vars a)
  in
  (* Greedy atom order: fewest unbound variables first, so constrained
     atoms prune before wide ones branch. *)
  let pick mu atoms =
    match atoms with
    | [] -> None
    | _ ->
      let best =
        List.fold_left
          (fun acc a ->
            let n = List.length (unbound mu a) in
            match acc with
            | Some (_, m) when m <= n -> acc
            | _ -> Some (a, n))
          None atoms
      in
      (match best with
       | None -> None
       | Some (a, _) -> Some (a, remove_one a atoms))
  in
  let base = base_of mode tab in
  let rec go mu delta combined atoms =
    match pick mu atoms with
    | None -> if neqs_ground_ok tab mu then visit mu delta else false
    | Some (a, rest) ->
      let vars = unbound mu a in
      Valuation.enumerate_iter
        (List.map (fun x -> (x, cands x)) vars)
        (fun partial ->
          Budget.tick budget;
          let mu' =
            if Valuation.is_empty mu then partial
            else
              List.fold_left
                (fun m (x, c) -> Valuation.add x c m)
                mu (Valuation.bindings partial)
          in
          if not (neqs_ground_ok tab mu') then false
          else
            match Valuation.tuple_of_terms mu' a.Atom.args with
            | None -> assert false
            | Some tuple ->
              let delta' = Database.add_tuple delta a.Atom.rel tuple in
              let combined' = Database.add_tuple combined a.Atom.rel tuple in
              let check_db =
                match mode with
                | `Against_base _ -> combined'
                | `Delta_only -> delta'
              in
              let ok =
                match chk with
                | `Inc c ->
                  Incremental.check_add_overlay c ~base ~delta:delta'
                    ~db:check_db ~rel:a.Atom.rel ~tuple
                | `Full comp -> Compiled.check comp ~db:check_db ~delta:delta'
              in
              if ok then go mu' delta' combined' rest
              else begin
                on_prune ();
                false
              end)
  in
  go init (Database.empty tab.Tableau.schema) base tab.Tableau.patterns

let iter_valid ?(budget = Budget.unlimited) ?checker ~master ~ccs ~mode ~adom
    ?(on_prune = fun () -> ()) (tab : Tableau.t) visit =
  Budget.check_now budget;
  let chk =
    match resolve checker ~mode with
    | Some c -> `Inc c
    | None -> `Full (Compiled.create ~base:(base_of mode tab) ~master ccs)
  in
  run ~budget ~chk ~mode ~adom ~on_prune ~init:Valuation.empty tab visit

(* Parallel top-level search: partition the candidates of one split
   variable (the first variable of the pattern atoms) across a
   supervised pool of worker domains, each running the sequential
   search seeded with that binding.  Valid valuations bind the split
   variable to exactly one candidate, so the branches partition the
   search space: visits are never duplicated, and verdicts coincide
   with the sequential modes.  The first visit returning [true] trips a
   stop flag every child budget polls, cancelling the siblings. *)
let iter_valid_par ?(budget = Budget.unlimited) ?checker ~domains ~master ~ccs
    ~mode ~adom ?(on_prune = fun () -> ()) (tab : Tableau.t) visit =
  Budget.check_now budget;
  let split_var =
    match List.concat_map Atom.vars tab.Tableau.patterns with
    | [] -> None
    | x :: _ -> Some x
  in
  match split_var with
  | None ->
    iter_valid ~budget ?checker ~master ~ccs ~mode ~adom ~on_prune tab visit
  | Some _ when domains <= 1 ->
    iter_valid ~budget ?checker ~master ~ccs ~mode ~adom ~on_prune tab visit
  | Some x ->
    (* one checker for every branch: the compiled store and the
       incremental counters are mutex/atomic-guarded, so sharing across
       worker domains is safe and keeps index reuse across branches *)
    let chk =
      match resolve checker ~mode with
      | Some c -> `Inc c
      | None -> `Full (Compiled.create ~base:(base_of mode tab) ~master ccs)
    in
    let var_doms = Tableau.var_domains tab in
    let cands_x =
      match List.assoc_opt x var_doms with
      | Some d -> Adom.candidates adom d
      | None -> Adom.candidates adom Domain.Infinite
    in
    let stop = Atomic.make false in
    (* count each trip of the stop flag once, whoever races to it *)
    let trip_stop () =
      if not (Atomic.exchange stop true) then Metrics.incr m_par_cancels
    in
    let mx = Mutex.create () in
    let found = ref false in
    let exhausted = ref None in
    let error = ref None in
    let consumed = Atomic.make 0 in
    (* [domains] partitions the work; the pool never runs more worker
       domains than the machine has cores — oversubscribing a
       saturated runtime only adds GC-synchronisation cost *)
    let workers =
      max 1 (min domains (Stdlib.Domain.recommended_domain_count ()))
    in
    let locked f =
      Mutex.lock mx;
      match f () with
      | v ->
        Mutex.unlock mx;
        v
      | exception e ->
        Mutex.unlock mx;
        raise e
    in
    (* a single-worker pool serialises the jobs by construction, and
       [Pool.shutdown]'s join orders its writes before the
       coordinator's reads — skip the per-visit mutex there *)
    let locked f = if workers > 1 then locked f else f () in
    let visit_sync mu delta =
      locked (fun () ->
        let r = visit mu delta in
        if r then begin
          found := true;
          trip_stop ()
        end;
        r)
    in
    let on_prune_sync () = locked on_prune in
    let job v () =
      if Atomic.get stop then ()
      else begin
      let child =
        Budget.fork ~cancel:stop ~extra_steps:(Atomic.get consumed) budget
      in
      let merge () =
        ignore (Atomic.fetch_and_add consumed (Budget.steps child))
      in
      match
        run ~budget:child ~chk ~mode ~adom ~on_prune:on_prune_sync
          ~init:(Valuation.add x v Valuation.empty)
          tab visit_sync
      with
      | (_ : bool) -> merge ()
      | exception Budget.Exhausted reason ->
        merge ();
        locked (fun () ->
          (match reason with
           | Budget.Cancelled when Atomic.get stop ->
             () (* our own first-witness / stop cancellation *)
           | r -> if !exhausted = None then exhausted := Some r);
          trip_stop ())
      | exception e ->
        merge ();
        locked (fun () ->
          if !error = None then error := Some e;
          trip_stop ())
      end
    in
    Metrics.incr m_par_searches;
    Metrics.add m_par_branches (List.length cands_x);
    let sp = Trace.start "search.par" in
    Trace.set_str sp "split_var" x;
    Trace.set_int sp "branches" (List.length cands_x);
    Trace.set_int sp "workers" workers;
    (if workers = 1 then
       (* one core: spawning a pool domain only adds per-minor-GC
          stop-the-world handshakes; run the partitions inline instead.
          Budget forks, the stop flag and the error/exhausted protocol
          behave exactly as in the pooled path. *)
       List.iter (fun v -> job v ()) cands_x
     else begin
       let pool =
         Pool.create ~domains:workers ~capacity:(2 * domains)
           ~worker:(fun f -> f ()) ()
       in
       List.iter (fun v -> ignore (Pool.submit pool (job v))) cands_x;
       Pool.shutdown pool
     end);
    Trace.set_int sp "steps" (Atomic.get consumed);
    Trace.finish sp;
    Budget.add_steps budget (Atomic.get consumed);
    (match !error with Some e -> raise e | None -> ());
    if !found then true
    else begin
      (match !exhausted with
       | Some r -> raise (Budget.Exhausted r)
       | None -> ());
      Budget.check_now budget;
      false
    end
