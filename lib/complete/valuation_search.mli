(** Pruned enumeration of valid tableau valuations over the active
    domain — the engine behind both deciders.

    A {e valid} valuation [μ] (Section 3.2) draws each variable's
    value from its [adom(y)] and observes the tableau's inequalities.
    The search instantiates the tableau atom by atom; after each atom
    it checks the supplied containment constraints against either the
    accumulated extension alone ([`Delta_only], condition C3 for INDs)
    or the base database plus the extension ([`Against_base D],
    condition C2).  Because the constraint languages are monotone, a
    violation can never be repaired by binding more variables, so the
    whole subtree is pruned. *)

open Ric_relational
open Ric_query
open Ric_constraints

val iter_valid :
  ?budget:Budget.t ->
  master:Database.t ->
  ccs:Containment.t list ->
  mode:[ `Against_base of Database.t | `Delta_only ] ->
  adom:Adom.t ->
  ?on_prune:(unit -> unit) ->
  Tableau.t ->
  (Valuation.t -> Database.t -> bool) ->
  bool
(** [iter_valid ~master ~ccs ~mode ~adom tab visit] calls
    [visit μ Δ] — with [Δ = μ(T)] — for every valid valuation whose
    extension passes the constraint check; stops early when [visit]
    returns [true] and reports whether any visit did.  [budget]
    (default {!Budget.unlimited}) is ticked once per candidate atom
    instantiation, so an exhausted budget aborts the search with
    {!Budget.Exhausted} instead of running unbounded. *)
