(** Pruned enumeration of valid tableau valuations over the active
    domain — the engine behind both deciders.

    A {e valid} valuation [μ] (Section 3.2) draws each variable's
    value from its [adom(y)] and observes the tableau's inequalities.
    The search instantiates the tableau atom by atom; after each atom
    it checks the supplied containment constraints against either the
    accumulated extension alone ([`Delta_only], condition C3 for INDs)
    or the base database plus the extension ([`Against_base D],
    condition C2).  Because the constraint languages are monotone, a
    violation can never be repaired by binding more variables, so the
    whole subtree is pruned.

    Both entry points take an optional {!Ric_constraints.Incremental}
    checker; when its parent invariant holds at the search root the
    per-extension check touches only the constraints reading the grown
    relation (and, for monotone-UCQ constraints, only the joins through
    the new tuple), otherwise the search silently falls back to full
    {!Ric_constraints.Containment.holds_all} checks.  Verdicts are
    identical either way. *)

open Ric_relational
open Ric_query
open Ric_constraints

val iter_valid :
  ?budget:Budget.t ->
  ?checker:Incremental.t ->
  ?profile:Ric_obs.Profile.t ->
  master:Database.t ->
  ccs:Containment.t list ->
  mode:[ `Against_base of Database.t | `Delta_only ] ->
  adom:Adom.t ->
  ?on_prune:(unit -> unit) ->
  Tableau.t ->
  (Valuation.t -> Database.t -> bool) ->
  bool
(** [iter_valid ~master ~ccs ~mode ~adom tab visit] calls
    [visit μ Δ] — with [Δ = μ(T)] — for every valid valuation whose
    extension passes the constraint check; stops early when [visit]
    returns [true] and reports whether any visit did.  [budget]
    (default {!Budget.unlimited}) is checked on entry and ticked once
    per candidate atom instantiation, so an exhausted budget aborts
    the search with {!Budget.Exhausted} before doing any work.

    [profile] (explain mode) mirrors every tick as a per-level step in
    the profile and attributes each pruned branch to the containment
    constraint that cut it (via the checkers' explain twins); partial
    counts are merged even when the budget exhausts mid-search.
    Omitted, the only cost is one option match per candidate. *)

val iter_valid_par :
  ?budget:Budget.t ->
  ?checker:Incremental.t ->
  ?profile:Ric_obs.Profile.t ->
  domains:int ->
  master:Database.t ->
  ccs:Containment.t list ->
  mode:[ `Against_base of Database.t | `Delta_only ] ->
  adom:Adom.t ->
  ?on_prune:(unit -> unit) ->
  Tableau.t ->
  (Valuation.t -> Database.t -> bool) ->
  bool
(** Like {!iter_valid}, but the search tree is explored by up to
    [domains] worker domains stealing subtree tasks from a shared
    lock-free frontier.  The instantiation order is computed once up
    front (the greedy pick depends only on the bound-variable set), so
    the parallel tree is node-for-node the sequential tree: verdicts,
    step totals and prune counts all coincide with {!iter_valid} on
    exhaustive searches.  A worker that pops a task runs its whole
    subtree inline unless the frontier is starved (fewer queued tasks
    than workers), in which case it expands one atom level and pushes
    each surviving child subtree — skewed partitions split below the
    first variable on demand instead of degenerating to one long
    branch ([ric_search_steal_total] counts cross-worker pops).

    [visit] and [on_prune] are serialised under one mutex (prunes are
    batched per task), so rcdp's counting visitors need no changes.
    [profile] recording is per-worker (private arrays, merged once when
    the worker stops); because the parallel tree is node-for-node the
    sequential tree, the merged profile equals the sequential one.
    The first visit returning [true] cancels the sibling workers
    through a per-call stop flag.  Step accounting uses one shared
    atomic counter ({!Budget.fork_shared}), so the family can never
    overshoot the parent's step cap; the total is folded back into
    [budget] on join, and exhaustion re-raises {!Budget.Exhausted}
    from the coordinator.  A task raising anything else (e.g. an
    injected worker crash) is retried once, then the error is
    re-raised — never a hang.

    With [domains <= 1], no branching level anywhere, or a one-core
    clamp it degrades to {!iter_valid} (zero coordination overhead).
    [domains] partitions the work but never spawns more worker domains
    than [Stdlib.Domain.recommended_domain_count ()] — oversubscribing
    a saturated runtime only costs GC synchronisation; the
    [RIC_SEARCH_FORCE_WORKERS] environment variable overrides the
    clamp for scaling sweeps and concurrency tests. *)

val set_fault_hook : (unit -> unit) -> unit
(** Install the fault-injection hook called at the start of every
    frontier task a parallel worker executes (default: no-op).  The
    service layer points it at its RIC_FAULTS harness (point
    ["search_worker"]) so crash drills can exercise the retry-once /
    structured-error path without a layering cycle. *)
