(** Pruned enumeration of valid tableau valuations over the active
    domain — the engine behind both deciders.

    A {e valid} valuation [μ] (Section 3.2) draws each variable's
    value from its [adom(y)] and observes the tableau's inequalities.
    The search instantiates the tableau atom by atom; after each atom
    it checks the supplied containment constraints against either the
    accumulated extension alone ([`Delta_only], condition C3 for INDs)
    or the base database plus the extension ([`Against_base D],
    condition C2).  Because the constraint languages are monotone, a
    violation can never be repaired by binding more variables, so the
    whole subtree is pruned.

    Both entry points take an optional {!Ric_constraints.Incremental}
    checker; when its parent invariant holds at the search root the
    per-extension check touches only the constraints reading the grown
    relation (and, for monotone-UCQ constraints, only the joins through
    the new tuple), otherwise the search silently falls back to full
    {!Ric_constraints.Containment.holds_all} checks.  Verdicts are
    identical either way. *)

open Ric_relational
open Ric_query
open Ric_constraints

val iter_valid :
  ?budget:Budget.t ->
  ?checker:Incremental.t ->
  master:Database.t ->
  ccs:Containment.t list ->
  mode:[ `Against_base of Database.t | `Delta_only ] ->
  adom:Adom.t ->
  ?on_prune:(unit -> unit) ->
  Tableau.t ->
  (Valuation.t -> Database.t -> bool) ->
  bool
(** [iter_valid ~master ~ccs ~mode ~adom tab visit] calls
    [visit μ Δ] — with [Δ = μ(T)] — for every valid valuation whose
    extension passes the constraint check; stops early when [visit]
    returns [true] and reports whether any visit did.  [budget]
    (default {!Budget.unlimited}) is checked on entry and ticked once
    per candidate atom instantiation, so an exhausted budget aborts
    the search with {!Budget.Exhausted} before doing any work. *)

val iter_valid_par :
  ?budget:Budget.t ->
  ?checker:Incremental.t ->
  domains:int ->
  master:Database.t ->
  ccs:Containment.t list ->
  mode:[ `Against_base of Database.t | `Delta_only ] ->
  adom:Adom.t ->
  ?on_prune:(unit -> unit) ->
  Tableau.t ->
  (Valuation.t -> Database.t -> bool) ->
  bool
(** Like {!iter_valid}, but the candidates of the first pattern
    variable are partitioned across [domains] worker domains (a
    supervised {!Pool}).  [visit] and [on_prune] are serialised under
    one mutex, so rcdp's counting visitors need no changes.  The first
    visit returning [true] cancels the sibling workers through a
    per-call stop flag ({!Budget.fork}); child step counts are folded
    back into [budget] on join, and a child exhausting the shared
    deadline/step allowance re-raises {!Budget.Exhausted} from the
    coordinator.  Verdicts are identical to the sequential modes; with
    [domains <= 1] or no pattern variables it degrades to
    {!iter_valid}.  [domains] partitions the work but never spawns more
    worker domains than [Stdlib.Domain.recommended_domain_count ()] —
    oversubscribing a saturated runtime only costs GC synchronisation —
    and on a single-core machine the partitions run inline on the
    caller's domain (same splitting, budget forks and first-witness
    cancellation, no pool). *)
