open Ric_relational

type pattern = (int * Value.t) list

type t = {
  cfd_name : string;
  rel : string;
  lhs : int list;
  lhs_pattern : pattern;
  rhs : int list;
  rhs_pattern : pattern;
}

let counter = ref 0

let make ?name ~rel ~lhs ?(lhs_pattern = []) ~rhs ?(rhs_pattern = []) () =
  List.iter
    (fun (c, _) ->
      if not (List.mem c lhs) then
        invalid_arg "Cfd.make: lhs pattern column is not an X column")
    lhs_pattern;
  List.iter
    (fun (c, _) ->
      if not (List.mem c rhs) then
        invalid_arg "Cfd.make: rhs pattern column is not a Y column")
    rhs_pattern;
  let cfd_name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "cfd%d" !counter
  in
  { cfd_name; rel; lhs; lhs_pattern; rhs; rhs_pattern }

let of_fd (fd : Fd.t) =
  make ~name:fd.Fd.fd_name ~rel:fd.Fd.rel ~lhs:fd.Fd.lhs ~rhs:fd.Fd.rhs ()

let matches pattern tuple =
  List.for_all (fun (c, v) -> Value.equal (Tuple.get tuple c) v) pattern

let violation db t =
  match Database.relation db t.rel with
  | exception Not_found -> None
  | rel ->
    let tuples = Relation.elements rel in
    let matching = List.filter (matches t.lhs_pattern) tuples in
    (* single-tuple violations: φ holds but ψ does not *)
    (match List.find_opt (fun u -> not (matches t.rhs_pattern u)) matching with
     | Some u -> Some (`Single u)
     | None ->
       let agrees cols a b = Tuple.equal (Tuple.project cols a) (Tuple.project cols b) in
       let rec scan = function
         | [] -> None
         | a :: rest ->
           (match
              List.find_opt (fun b -> agrees t.lhs a b && not (agrees t.rhs a b)) rest
            with
            | Some b -> Some (`Pair (a, b))
            | None -> scan rest)
       in
       scan matching)

let holds db t = Option.is_none (violation db t)

let pp ppf t =
  let pp_cols =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int
  in
  let pp_pattern ppf = function
    | [] -> ()
    | p ->
      Format.fprintf ppf " with %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (c, v) -> Format.fprintf ppf "col%d=%a" c Value.pp_quoted v))
        p
  in
  Format.fprintf ppf "%s: %s: %a%a → %a%a" t.cfd_name t.rel pp_cols t.lhs pp_pattern
    t.lhs_pattern pp_cols t.rhs pp_pattern t.rhs_pattern
