(** Conditional functional dependencies (Fan et al. 2008; paper
    Section 2.2(b)).

    A CFD extends an FD [X → Y] with constant patterns [φ(x̄)] and
    [ψ(ȳ)]: whenever two tuples agree on [X] {e and} match the [X]
    pattern, they must agree on [Y] and match the [Y] pattern.  A CFD
    with both patterns empty is a plain FD.  This module keeps one
    pattern row per constraint; a multi-row CFD is a list of these. *)

open Ric_relational

type pattern = (int * Value.t) list
(** Column position ↦ required constant; unlisted columns are
    wildcards. *)

type t = {
  cfd_name : string;
  rel : string;
  lhs : int list;        (** X *)
  lhs_pattern : pattern; (** φ, over columns of X *)
  rhs : int list;        (** Y *)
  rhs_pattern : pattern; (** ψ, over columns of Y *)
}

val make :
  ?name:string ->
  rel:string ->
  lhs:int list ->
  ?lhs_pattern:pattern ->
  rhs:int list ->
  ?rhs_pattern:pattern ->
  unit ->
  t
(** @raise Invalid_argument if a pattern mentions a column outside its
    side. *)

val of_fd : Fd.t -> t

val matches : pattern -> Tuple.t -> bool

val holds : Database.t -> t -> bool

val violation : Database.t -> t -> [ `Pair of Tuple.t * Tuple.t | `Single of Tuple.t ] option
(** [`Pair] — two pattern-matching tuples agree on [X] but differ on
    [Y]; [`Single] — a tuple matches [φ] but breaks [ψ]. *)

val pp : Format.formatter -> t -> unit
