open Ric_relational

type t = {
  cind_name : string;
  lhs_rel : string;
  lhs_cols : int list;
  lhs_pattern : (int * Value.t) list;
  rhs_rel : string;
  rhs_cols : int list;
  rhs_pattern : (int * Value.t) list;
}

let counter = ref 0

let make ?name ~lhs:(lhs_rel, lhs_cols) ?(lhs_pattern = []) ~rhs:(rhs_rel, rhs_cols)
    ?(rhs_pattern = []) () =
  if List.length lhs_cols <> List.length rhs_cols then
    invalid_arg "Cind.make: key column lists have different widths";
  List.iter
    (fun (c, _) ->
      if List.mem c rhs_cols then
        invalid_arg "Cind.make: rhs pattern column clashes with a key column")
    rhs_pattern;
  List.iter
    (fun (c, _) ->
      if List.mem c lhs_cols then
        invalid_arg "Cind.make: lhs pattern column clashes with a key column")
    lhs_pattern;
  let cind_name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "cind%d" !counter
  in
  { cind_name; lhs_rel; lhs_cols; lhs_pattern; rhs_rel; rhs_cols; rhs_pattern }

let matches pattern tuple =
  List.for_all (fun (c, v) -> Value.equal (Tuple.get tuple c) v) pattern

let violation db t =
  match Database.relation db t.lhs_rel with
  | exception Not_found -> None
  | left ->
    let right =
      try Database.relation db t.rhs_rel with Not_found -> Relation.empty
    in
    let has_match lt =
      let key = Tuple.project t.lhs_cols lt in
      Relation.exists
        (fun rt ->
          Tuple.equal (Tuple.project t.rhs_cols rt) key && matches t.rhs_pattern rt)
        right
    in
    let bad = ref None in
    Relation.iter
      (fun lt ->
        if !bad = None && matches t.lhs_pattern lt && not (has_match lt) then
          bad := Some lt)
      left;
    !bad

let holds db t = Option.is_none (violation db t)

let pp ppf t =
  let pp_cols =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int
  in
  Format.fprintf ppf "%s: %s[%a] ⊆ %s[%a] (patterns: %d lhs, %d rhs)" t.cind_name
    t.lhs_rel pp_cols t.lhs_cols t.rhs_rel pp_cols t.rhs_cols
    (List.length t.lhs_pattern) (List.length t.rhs_pattern)
