(** Conditional inclusion dependencies (Bravo et al. 2007; paper
    Section 2.2(c)):
    [∀x̄ ȳ1 z̄1 (R1(x̄, ȳ1, z̄1) ∧ φ(ȳ1) → ∃ȳ2 z̄2 (R2(x̄, ȳ2, z̄2) ∧ ψ(ȳ2)))].

    A CIND with empty patterns is a plain IND.  Per Proposition 2.1(c)
    CINDs translate to containment constraints in FO with an empty
    master side ({!Translate.of_cind}). *)

open Ric_relational

type t = {
  cind_name : string;
  lhs_rel : string;
  lhs_cols : int list;               (** positions of [x̄] in [R1] *)
  lhs_pattern : (int * Value.t) list; (** [φ]: column ↦ constant in [R1] *)
  rhs_rel : string;
  rhs_cols : int list;               (** matching positions of [x̄] in [R2] *)
  rhs_pattern : (int * Value.t) list; (** [ψ]: column ↦ constant in [R2] *)
}

val make :
  ?name:string ->
  lhs:string * int list ->
  ?lhs_pattern:(int * Value.t) list ->
  rhs:string * int list ->
  ?rhs_pattern:(int * Value.t) list ->
  unit ->
  t
(** @raise Invalid_argument if the two column lists have different
    widths or a pattern column clashes with a key column. *)

val holds : Database.t -> t -> bool

val violation : Database.t -> t -> Tuple.t option
(** A left tuple with no matching right tuple. *)

val pp : Format.formatter -> t -> unit
