open Ric_relational
open Ric_query

(* Compiled containment-constraint checker for the sequential search
   path: the per-candidate-step equivalent of [Containment.holds_all],
   with everything loop-invariant hoisted out of the step.

   Per decide (well, per [create]):
   - the RHS projection of each CC is evaluated against the master
     once and frozen both as a relation (for the fallback path) and as
     a hash set of interned rows;
   - every UCQ-able LHS disjunct is compiled into a slot-addressed
     kernel plan.

   Per check, the LHS disjuncts join over the fixed [base] database's
   persistent indexes plus the small changing [delta] as an interned
   overlay, stopping at the first answer escaping the cached RHS.
   FO/FP or unsafe LHSs keep the full-evaluation path so they raise
   (or recurse) exactly as the interpreted checker would. *)

type disjunct = {
  d_plan : Kernel.plan;
  d_head : int array;
}

type body =
  | Plans of disjunct list
  | Eval of Lang.t

type entry = {
  name : string;  (* the source cc's [cc_name], for explain profiles *)
  rhs_rel : Relation.t;
  rhs_ids : Kernel.Rowset.t;
  body : body;
}

type t = {
  base : Database.t;
  entries : entry list;
  store : Kernel.Store.t;
}

exception Not_compilable

let compile_lhs lhs =
  match Lang.as_ucq lhs with
  | None -> raise Not_compilable
  | Some ucq ->
    List.filter_map
      (fun cq ->
        match Cq.normalize cq with
        | None -> None (* statically unsatisfiable: contributes nothing *)
        | Some n ->
          (* unsafe disjuncts must keep raising from the evaluator *)
          let avars = List.concat_map Atom.vars n.Cq.n_atoms in
          let covered = function
            | Term.Const _ -> true
            | Term.Var x -> List.mem x avars
          in
          if
            not
              (List.for_all covered n.Cq.n_head
               && List.for_all
                    (fun (s, u) -> covered s && covered u)
                    n.Cq.n_neqs)
          then raise Not_compilable;
          let d_plan = Kernel.compile n.Cq.n_atoms n.Cq.n_neqs in
          Some { d_plan; d_head = Kernel.encode_terms d_plan n.Cq.n_head })
      ucq

let create ~base ~master ccs =
  let entries =
    List.map
      (fun (cc : Containment.t) ->
        let rhs_rel = Projection.eval master cc.Containment.rhs in
        let body =
          match compile_lhs cc.Containment.lhs with
          | ds -> Plans ds
          | exception Not_compilable -> Eval cc.Containment.lhs
        in
        { name = cc.Containment.cc_name; rhs_rel;
          rhs_ids = Kernel.Rowset.of_relation rhs_rel; body })
      ccs
  in
  { base; entries; store = Kernel.Store.create () }

(* interned overlay rows per relation, shared by every plan of one
   check; deltas are at most a handful of tuples *)
let overlay delta =
  let cache : (string, int array list) Hashtbl.t = Hashtbl.create 8 in
  fun rel ->
    match Hashtbl.find_opt cache rel with
    | Some rows -> rows
    | None ->
      let rows =
        match Database.relation delta rel with
        | r -> Relation.fold (fun tu acc -> Intern.row tu :: acc) r []
        | exception Not_found -> []
      in
      Hashtbl.add cache rel rows;
      rows

let entry_holds t ~db ~extra ~lookup e =
  match e.body with
  | Eval lhs -> Relation.subset (Lang.eval db lhs) e.rhs_rel
  | Plans ds ->
    not
      (List.exists
         (fun d ->
           Kernel.run t.store ~lookup ~extra d.d_plan (fun regs ->
               match Kernel.term_ids d.d_head regs with
               | Some ids -> not (Kernel.Rowset.mem e.rhs_ids ids)
               | None -> false))
         ds)

let check t ~db ~delta =
  let extra = overlay delta in
  let lookup rel =
    try Database.relation t.base rel with Not_found -> Relation.empty
  in
  List.for_all (fun e -> entry_holds t ~db ~extra ~lookup e) t.entries

let check_explain t ~db ~delta =
  let extra = overlay delta in
  let lookup rel =
    try Database.relation t.base rel with Not_found -> Relation.empty
  in
  let rec first = function
    | [] -> None
    | e :: rest ->
      if entry_holds t ~db ~extra ~lookup e then first rest else Some e.name
  in
  first t.entries
