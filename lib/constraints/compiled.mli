(** Compiled containment-constraint checker: the sequential search's
    per-step replacement for {!Containment.holds_all}.

    [create] hoists everything that is loop-invariant across the
    candidate steps of one decide — the RHS projections against the
    (immutable) master, interned RHS row sets, compiled kernel plans
    for every UCQ-able LHS disjunct, and a persistent index store over
    [base].  [check] then decides [Containment.holds_all ~db ~master
    ccs] for [db = base ∪ delta] by joining each LHS over [base]'s
    cached indexes with [delta] as an interned overlay, short-cutting
    at the first answer that escapes the cached RHS.

    Verdict-equivalent to the interpreted checker: FO/FP and unsafe
    LHSs fall back to full evaluation against the cached RHS, so they
    raise exactly where the uncompiled path would.  Domain-safe: the
    internal store and interner serialise, so one checker may be
    shared by the parallel search's worker domains. *)

open Ric_relational

type t

val create : base:Database.t -> master:Database.t -> Containment.t list -> t
(** [base] is the fixed part every checked database extends (the
    search's base database, or an empty database for delta-only
    searches). *)

val check : t -> db:Database.t -> delta:Database.t -> bool
(** [check t ~db ~delta] — [Containment.holds_all ~db ~master ccs],
    where [db] must equal [base ∪ delta].  [db] itself is only
    evaluated on the non-compilable fallback path. *)

val check_explain : t -> db:Database.t -> delta:Database.t -> string option
(** Like {!check} but, on failure, names the first violated
    constraint (its [cc_name]) — the explain-profile path; [None]
    means every constraint holds. *)
