open Ric_relational
open Ric_query

type t = {
  cc_name : string;
  lhs : Lang.t;
  rhs : Projection.t;
}

let counter = ref 0

let make ?name lhs rhs =
  let cc_name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "cc%d" !counter
  in
  (match rhs, lhs with
   | Projection.Proj { cols; _ }, Lang.Q_cq q ->
     if List.length cols <> Cq.arity q then
       invalid_arg "Containment.make: lhs/rhs arity mismatch"
   | Projection.Proj { cols; _ }, Lang.Q_ucq q ->
     if List.length cols <> Ucq.arity q then
       invalid_arg "Containment.make: lhs/rhs arity mismatch"
   | _ -> ());
  { cc_name; lhs; rhs }

let holds ~db ~master t =
  Relation.subset (Lang.eval db t.lhs) (Projection.eval master t.rhs)

let violation ~db ~master t =
  let left = Lang.eval db t.lhs in
  let right = Projection.eval master t.rhs in
  let diff = Relation.diff left right in
  if Relation.is_empty diff then None else Some (List.hd (Relation.elements diff))

let holds_all ~db ~master v = List.for_all (holds ~db ~master) v

let first_violation ~db ~master v =
  List.find_map
    (fun cc -> Option.map (fun t -> (cc, t)) (violation ~db ~master cc))
    v

let lhs_monotone t = Lang.monotone t.lhs

let constants t = Lang.constants t.lhs

let language_name t = Lang.language_name t.lhs

let pp ppf t =
  Format.fprintf ppf "%s: %a ⊆ %a" t.cc_name Lang.pp t.lhs Projection.pp t.rhs
