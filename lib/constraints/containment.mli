(** Containment constraints (CCs), the heart of partially closed
    databases (Section 2.1).

    A CC [φ = q(R) ⊆ p(Rm)] pairs a query [q] in [LC] over the
    database schema with a projection [p] over the master schema.
    [(D, Dm) ⊨ φ] iff [q(D) ⊆ p(Dm)].  A database [D] is {e partially
    closed} w.r.t. [(Dm, V)] when [(D, Dm) ⊨ φ] for every [φ ∈ V]. *)

open Ric_relational
open Ric_query

type t = {
  cc_name : string;   (** label used in reports *)
  lhs : Lang.t;       (** [q], a query in LC over the database schema *)
  rhs : Projection.t; (** [p], a projection over master data *)
}

val make : ?name:string -> Lang.t -> Projection.t -> t
(** @raise Invalid_argument if the arities of [lhs] and [rhs] are both
    known and differ. *)

val holds : db:Database.t -> master:Database.t -> t -> bool
(** [(D, Dm) ⊨ φ]. *)

val violation : db:Database.t -> master:Database.t -> t -> Tuple.t option
(** A witness tuple in [q(D) \ p(Dm)], if any. *)

val holds_all : db:Database.t -> master:Database.t -> t list -> bool
(** [(D, Dm) ⊨ V]. *)

val first_violation :
  db:Database.t -> master:Database.t -> t list -> (t * Tuple.t) option

val lhs_monotone : t -> bool
(** Monotone LHS (CQ/UCQ/∃FO⁺/FP): adding tuples to [D] can only grow
    [q(D)], so a violated CC stays violated under extension.  The
    deciders exploit this (Sections 3.3, 4.3). *)

val constants : t -> Value.t list
(** Constants of the LHS query. *)

val language_name : t -> string

val pp : Format.formatter -> t -> unit
