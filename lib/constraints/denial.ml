open Ric_relational
open Ric_query

type t = {
  denial_name : string;
  forbidden : Cq.t;
}

let counter = ref 0

let make ?name q =
  if Cq.arity q <> 0 then invalid_arg "Denial.make: the forbidden pattern must be Boolean";
  let denial_name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "denial%d" !counter
  in
  { denial_name; forbidden = q }

let holds db t = not (Cq.holds db t.forbidden)

let violation db t =
  match Cq.normalize t.forbidden with
  | None -> None
  | Some n ->
    let lookup rel = try Database.relation db rel with Not_found -> Relation.empty in
    let found = ref None in
    let (_ : bool) =
      Match_engine.solve ~lookup ~neqs:n.Cq.n_neqs n.Cq.n_atoms (fun v ->
          found := Some v;
          true)
    in
    !found

let pp ppf t = Format.fprintf ppf "%s: ¬(%a)" t.denial_name Cq.pp t.forbidden
