(** Denial constraints (Arenas et al. 1999; paper Section 2.2(a)):
    universally quantified sentences
    [∀x̄ ¬(R1(x̄1) ∧ ... ∧ Rk(x̄k) ∧ φ)] where [φ] conjoins [=] and
    [≠].  We store the forbidden pattern as a Boolean CQ; the database
    satisfies the constraint iff the CQ has an empty answer. *)

open Ric_relational
open Ric_query

type t = {
  denial_name : string;
  forbidden : Cq.t;  (** Boolean CQ describing the forbidden pattern *)
}

val make : ?name:string -> Cq.t -> t
(** @raise Invalid_argument if the CQ is not Boolean. *)

val holds : Database.t -> t -> bool

val violation : Database.t -> t -> Valuation.t option
(** A valuation witnessing the forbidden pattern, if any. *)

val pp : Format.formatter -> t -> unit
