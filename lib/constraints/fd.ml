open Ric_relational

type t = {
  fd_name : string;
  rel : string;
  lhs : int list;
  rhs : int list;
}

let counter = ref 0

let make ?name ~rel ~lhs ~rhs () =
  let fd_name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "fd%d" !counter
  in
  { fd_name; rel; lhs; rhs }

let violation db t =
  match Database.relation db t.rel with
  | exception Not_found -> None
  | rel ->
    let tuples = Relation.elements rel in
    let agrees cols a b = Tuple.equal (Tuple.project cols a) (Tuple.project cols b) in
    let rec scan = function
      | [] -> None
      | a :: rest ->
        (match
           List.find_opt (fun b -> agrees t.lhs a b && not (agrees t.rhs a b)) rest
         with
         | Some b -> Some (a, b)
         | None -> scan rest)
    in
    scan tuples

let holds db t = Option.is_none (violation db t)

let pp ppf t =
  let pp_cols =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int
  in
  Format.fprintf ppf "%s: %s: %a → %a" t.fd_name t.rel pp_cols t.lhs pp_cols t.rhs
