(** Functional dependencies [X → Y] on one relation.

    Kept as a first-class constraint because the paper's examples lean
    on them (e.g. [eid → dept, cid] on [Supt], Example 1.1); via
    {!Translate.of_fd} every FD becomes a set of CQ containment
    constraints with an empty master side (Proposition 2.1(b), the
    pattern-free CFD case). *)

open Ric_relational

type t = {
  fd_name : string;
  rel : string;
  lhs : int list;   (** X, column positions *)
  rhs : int list;   (** Y, column positions *)
}

val make : ?name:string -> rel:string -> lhs:int list -> rhs:int list -> unit -> t

val holds : Database.t -> t -> bool

val violation : Database.t -> t -> (Tuple.t * Tuple.t) option
(** A pair of tuples agreeing on [X] and disagreeing on [Y]. *)

val pp : Format.formatter -> t -> unit
