type t = Fd.t list

let the_relation fds =
  match fds with
  | [] -> None
  | fd :: rest ->
    List.iter
      (fun (other : Fd.t) ->
        if not (String.equal other.Fd.rel fd.Fd.rel) then
          invalid_arg "Fd_theory: dependencies span several relations")
      rest;
    Some fd.Fd.rel

module IS = Set.Make (Int)

let closure fds xs =
  ignore (the_relation fds);
  let current = ref (IS.of_list xs) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fd : Fd.t) ->
        if
          List.for_all (fun a -> IS.mem a !current) fd.Fd.lhs
          && not (List.for_all (fun a -> IS.mem a !current) fd.Fd.rhs)
        then begin
          current := IS.union !current (IS.of_list fd.Fd.rhs);
          changed := true
        end)
      fds
  done;
  IS.elements !current

let implies fds (fd : Fd.t) =
  (match the_relation fds with
   | Some r when not (String.equal r fd.Fd.rel) ->
     invalid_arg "Fd_theory.implies: dependency over a different relation"
   | _ -> ());
  let cl = IS.of_list (closure fds fd.Fd.lhs) in
  List.for_all (fun a -> IS.mem a cl) fd.Fd.rhs

let equivalent a b = List.for_all (implies a) b && List.for_all (implies b) a

let is_key fds ~arity xs =
  let cl = IS.of_list (closure fds xs) in
  List.for_all (fun a -> IS.mem a cl) (List.init arity (fun i -> i))

let candidate_keys fds ~arity =
  let attrs = List.init arity (fun i -> i) in
  let rec subsets = function
    | [] -> [ [] ]
    | a :: rest ->
      let smaller = subsets rest in
      smaller @ List.map (fun s -> a :: s) smaller
  in
  let keys = List.filter (fun s -> s <> [] && is_key fds ~arity s) (subsets attrs) in
  let minimal s =
    not
      (List.exists
         (fun s' -> s' <> s && List.for_all (fun a -> List.mem a s) s' && is_key fds ~arity s')
         keys)
  in
  List.filter minimal keys |> List.map (List.sort compare) |> List.sort_uniq compare

let minimal_cover fds =
  match the_relation fds with
  | None -> []
  | Some rel ->
    (* 1. singleton right-hand sides *)
    let singletons =
      List.concat_map
        (fun (fd : Fd.t) ->
          List.map (fun b -> Fd.make ~rel ~lhs:fd.Fd.lhs ~rhs:[ b ] ()) fd.Fd.rhs)
        fds
    in
    (* 2. drop extraneous left-hand attributes *)
    let shrink (fd : Fd.t) =
      let rec go lhs =
        match
          List.find_opt
            (fun a ->
              let lhs' = List.filter (fun x -> x <> a) lhs in
              lhs' <> [] && implies singletons (Fd.make ~rel ~lhs:lhs' ~rhs:fd.Fd.rhs ()))
            lhs
        with
        | Some a -> go (List.filter (fun x -> x <> a) lhs)
        | None -> lhs
      in
      Fd.make ~rel ~lhs:(go fd.Fd.lhs) ~rhs:fd.Fd.rhs ()
    in
    let shrunk = List.map shrink singletons in
    (* 3. drop redundant dependencies *)
    let rec prune kept = function
      | [] -> List.rev kept
      | fd :: rest ->
        if implies (List.rev_append kept rest) fd then prune kept rest
        else prune (fd :: kept) rest
    in
    let pruned = prune [] shrunk in
    (* dedup *)
    List.sort_uniq
      (fun (a : Fd.t) (b : Fd.t) ->
        compare (a.Fd.lhs, a.Fd.rhs) (b.Fd.lhs, b.Fd.rhs))
      pruned
