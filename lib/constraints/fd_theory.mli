(** Classical functional-dependency theory: attribute-set closure
    (Armstrong's axioms), implication, keys and minimal covers.

    The completeness analyses take a set of FDs at face value; this
    module lets a caller normalise that set first — implied FDs add
    pure overhead to the deciders (every FD becomes containment
    constraints that are checked over and over), so shipping a minimal
    cover to {!Translate.of_fd} is both sound and faster. *)

type t = Fd.t list
(** All over one relation; functions raise [Invalid_argument] when the
    relations disagree. *)

val closure : t -> int list -> int list
(** [closure fds xs] — the attribute closure [xs⁺] under the FDs,
    sorted. *)

val implies : t -> Fd.t -> bool
(** Does the set logically imply the dependency (Armstrong)? *)

val equivalent : t -> t -> bool

val is_key : t -> arity:int -> int list -> bool
(** Do the attributes determine the whole relation? *)

val candidate_keys : t -> arity:int -> int list list
(** All minimal keys, by exhaustive subset search (exponential; fine
    for the arities this library works at). *)

val minimal_cover : t -> t
(** A minimal cover: singleton right-hand sides, no extraneous
    left-hand attributes, no redundant dependencies.  Equivalent to
    the input (property-tested). *)
