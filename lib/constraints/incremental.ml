open Ric_relational
open Ric_query

(* One pinned-atom probe: when a tuple lands in the probe's relation,
   unify it against [p_args]; on success, join the remaining atoms over
   the whole database and check every resulting head tuple against the
   cached RHS.  One probe per atom occurrence of each normalized
   disjunct, so a new tuple matched at any position is found. *)
type probe = {
  p_args : Term.t list;
  p_rest : Atom.t list;
  p_head : Term.t list;
  p_neqs : (Term.t * Term.t) list;
  p_c : cprobe;
}

(* Compiled twin of a probe: pinned arguments, rest-of-disjunct plan
   and head all encoded against one slot space, so a probe run is int
   unification + a kernel join over persistent indexes. *)
and cprobe = {
  cp_args : int array;
  cp_plan : Kernel.plan;
  cp_head : int array;
}

(* [Delta] plans cover monotone LHS queries with a UCQ form: every
   answer new in [D + t] uses [t] in at least one atom position, so the
   probes enumerate exactly the delta of [q].  Anything else (FP,
   non-monotone, unsafe) falls back to a full evaluation against the
   cached RHS. *)
type plan =
  | Delta of (string, probe list) Hashtbl.t
  | Full

type entry = {
  cc : Containment.t;
  rhs_cache : Relation.t;
  rhs_ids : Kernel.Rowset.t;
  plan : plan;
}

type t = {
  entries : entry array;
  by_rel : (string, int list) Hashtbl.t;
  empty_ok : bool;
  store : Kernel.Store.t;
  delta_checks : int Atomic.t;
  full_checks : int Atomic.t;
}

type stats = { delta_checks : int; full_checks : int }

(* Process-wide mirrors of the per-instance counters: the instance
   stats die with the decide call, the registry keeps the totals.
   Seq-mode searches build no checker, so the seq hot path never
   reaches these. *)
let m_delta_checks =
  Ric_obs.Metrics.counter
    ~help:"constraint checks answered by an indexed delta probe"
    "ric_incremental_delta_checks_total"

let m_full_checks =
  Ric_obs.Metrics.counter
    ~help:"constraint checks that fell back to full LHS evaluation"
    "ric_incremental_full_checks_total"

let term_vars ts =
  List.filter_map (function Term.Var x -> Some x | Term.Const _ -> None) ts

exception Not_delta

let plan_of_lhs lhs =
  if not (Lang.monotone lhs) then Full
  else
    match Lang.as_ucq lhs with
    | None -> Full
    | Some ucq ->
      (try
         let tbl = Hashtbl.create 8 in
         List.iter
           (fun cq ->
             match Cq.normalize cq with
             | None -> () (* statically unsatisfiable: contributes nothing *)
             | Some n ->
               let avars = List.concat_map Atom.vars n.Cq.n_atoms in
               let needed =
                 term_vars n.Cq.n_head
                 @ term_vars
                     (List.concat_map (fun (s, u) -> [ s; u ]) n.Cq.n_neqs)
               in
               (* unsafe disjunct: let the full evaluator raise exactly
                  as the non-incremental path would *)
               if not (List.for_all (fun x -> List.mem x avars) needed) then
                 raise Not_delta;
               List.iteri
                 (fun i (a : Atom.t) ->
                   let rest = List.filteri (fun j _ -> j <> i) n.Cq.n_atoms in
                   let cp_plan =
                     Kernel.compile ~extra_vars:(Atom.vars a) rest n.Cq.n_neqs
                   in
                   let probe =
                     {
                       p_args = a.Atom.args;
                       p_rest = rest;
                       p_head = n.Cq.n_head;
                       p_neqs = n.Cq.n_neqs;
                       p_c =
                         {
                           cp_args = Kernel.encode_terms cp_plan a.Atom.args;
                           cp_plan;
                           cp_head = Kernel.encode_terms cp_plan n.Cq.n_head;
                         };
                     }
                   in
                   let prev =
                     Option.value ~default:[] (Hashtbl.find_opt tbl a.Atom.rel)
                   in
                   Hashtbl.replace tbl a.Atom.rel (probe :: prev))
                 n.Cq.n_atoms)
           ucq;
         Delta tbl
       with Not_delta -> Full)

let create ~schema ~master ccs =
  let entries =
    Array.of_list
      (List.map
         (fun (cc : Containment.t) ->
           let rhs_cache = Projection.eval master cc.Containment.rhs in
           {
             cc;
             rhs_cache;
             rhs_ids = Kernel.Rowset.of_relation rhs_cache;
             plan = plan_of_lhs cc.Containment.lhs;
           })
         ccs)
  in
  let by_rel = Hashtbl.create 16 in
  Array.iteri
    (fun i e ->
      List.iter
        (fun rel ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_rel rel) in
          Hashtbl.replace by_rel rel (i :: prev))
        (Lang.relations e.cc.Containment.lhs))
    entries;
  let empty_ok =
    try
      Array.for_all
        (fun e ->
          Relation.subset
            (Lang.eval (Database.empty schema) e.cc.Containment.lhs)
            e.rhs_cache)
        entries
    with Invalid_argument _ -> false
  in
  {
    entries;
    by_rel;
    empty_ok;
    store = Kernel.Store.create ();
    delta_checks = Atomic.make 0;
    full_checks = Atomic.make 0;
  }

let empty_ok t = t.empty_ok

let lookup db rel =
  try Database.relation db rel with Not_found -> Relation.empty

(* Unify an atom's argument list against a concrete tuple, producing
   the valuation that pins every variable of that atom. *)
let unify_args args tuple =
  let n = Tuple.arity tuple in
  if List.length args <> n then None
  else
    let rec go i mu = function
      | [] -> Some mu
      | Term.Const c :: rest ->
        if Value.equal c (Tuple.get tuple i) then go (i + 1) mu rest else None
      | Term.Var x :: rest ->
        let v = Tuple.get tuple i in
        (match Valuation.find x mu with
         | Some v' ->
           if Value.equal v v' then go (i + 1) mu rest else None
         | None -> go (i + 1) (Valuation.add x v mu) rest)
    in
    go 0 Valuation.empty args

let entry_holds_full (t : t) ~db e =
  Atomic.incr t.full_checks;
  Ric_obs.Metrics.incr m_full_checks;
  Relation.subset (Lang.eval db e.cc.Containment.lhs) e.rhs_cache

(* The probe joins the rest of the disjunct over the whole database —
   [db] must already include the inserted tuple.  Returns [false] as
   soon as any new head tuple escapes the cached RHS. *)
let probe_holds ~db ~rhs ~tuple probes =
  List.for_all
    (fun p ->
      match unify_args p.p_args tuple with
      | None -> true (* tuple does not match this atom position *)
      | Some init ->
        not
          (Match_engine.solve ~lookup:(lookup db) ~neqs:p.p_neqs ~init p.p_rest
             (fun mu ->
               match Valuation.tuple_of_terms mu p.p_head with
               | Some ans -> not (Relation.mem ans rhs)
               | None -> false)))
    probes

(* Compiled probe run: unify the interned tuple against the pinned
   argument vector, then join the rest of the disjunct over [base]'s
   persistent indexes with [delta]'s interned rows as an overlay.
   Requires [base ∪ delta] = the post-insertion database.  Overlay
   rows also present in [base] may be enumerated twice, which is
   harmless for this existence-style check. *)
let probe_holds_compiled (t : t) ~base ~delta ~rhs_ids ~tuple probes =
  let row = Intern.row tuple in
  let cache : (string, int array list) Hashtbl.t = Hashtbl.create 4 in
  let extra rel =
    match Hashtbl.find_opt cache rel with
    | Some rows -> rows
    | None ->
      let rows =
        match Database.relation delta rel with
        | r -> Relation.fold (fun tu acc -> Intern.row tu :: acc) r []
        | exception Not_found -> []
      in
      Hashtbl.add cache rel rows;
      rows
  in
  let base_lookup rel =
    try Database.relation base rel with Not_found -> Relation.empty
  in
  List.for_all
    (fun p ->
      match Kernel.unify_encoded p.p_c.cp_args row with
      | None -> true (* tuple does not match this atom position *)
      | Some init ->
        not
          (Kernel.run t.store ~lookup:base_lookup ~extra ~init p.p_c.cp_plan
             (fun regs ->
               match Kernel.term_ids p.p_c.cp_head regs with
               | Some ids -> not (Kernel.Rowset.mem rhs_ids ids)
               | None -> false)))
    probes

let check_add_with (t : t) ~overlay ~db ~rel ~tuple =
  match Hashtbl.find_opt t.by_rel rel with
  | None -> true (* no CC reads [rel] *)
  | Some idxs ->
    List.for_all
      (fun i ->
        let e = t.entries.(i) in
        match e.plan with
        | Full -> entry_holds_full t ~db e
        | Delta tbl ->
          (match Hashtbl.find_opt tbl rel with
           | None -> true
           | Some probes ->
             Atomic.incr t.delta_checks;
             Ric_obs.Metrics.incr m_delta_checks;
             (match overlay with
              | Some (base, delta) ->
                probe_holds_compiled t ~base ~delta ~rhs_ids:e.rhs_ids ~tuple
                  probes
              | None -> probe_holds ~db ~rhs:e.rhs_cache ~tuple probes)))
      idxs

let check_add t ~db ~rel ~tuple = check_add_with t ~overlay:None ~db ~rel ~tuple

let check_add_overlay t ~base ~delta ~db ~rel ~tuple =
  check_add_with t ~overlay:(Some (base, delta)) ~db ~rel ~tuple

(* Explain twin of [check_add_with]: same per-entry predicates, but it
   names the first violated constraint instead of answering a bare
   [false] — the profile path only, so the plain checks stay lean. *)
let check_add_explain_with (t : t) ~overlay ~db ~rel ~tuple =
  match Hashtbl.find_opt t.by_rel rel with
  | None -> None
  | Some idxs ->
    let entry_holds i =
      let e = t.entries.(i) in
      match e.plan with
      | Full -> entry_holds_full t ~db e
      | Delta tbl ->
        (match Hashtbl.find_opt tbl rel with
         | None -> true
         | Some probes ->
           Atomic.incr t.delta_checks;
           Ric_obs.Metrics.incr m_delta_checks;
           (match overlay with
            | Some (base, delta) ->
              probe_holds_compiled t ~base ~delta ~rhs_ids:e.rhs_ids ~tuple
                probes
            | None -> probe_holds ~db ~rhs:e.rhs_cache ~tuple probes))
    in
    let rec first = function
      | [] -> None
      | i :: rest ->
        if entry_holds i then first rest
        else Some t.entries.(i).cc.Containment.cc_name
    in
    first idxs

let check_add_overlay_explain t ~base ~delta ~db ~rel ~tuple =
  check_add_explain_with t ~overlay:(Some (base, delta)) ~db ~rel ~tuple

let full t ~db =
  Array.for_all (fun e -> entry_holds_full t ~db e) t.entries

let stats (t : t) : stats =
  {
    delta_checks = Atomic.get t.delta_checks;
    full_checks = Atomic.get t.full_checks;
  }
