(** Incremental containment checking for the valuation search.

    The deciders grow candidate extensions one tuple at a time and must
    re-establish [(D, Dm) ⊨ V] after every growth step.  Re-evaluating
    each CC from scratch makes the inner loop quadratic in practice; a
    checker built once per decide call does better on two axes:

    - {b relation indexing} — CCs are indexed by the relations their
      LHS mentions, so a tuple added to [R] only re-checks CCs reading
      [R];
    - {b delta evaluation} — for a monotone LHS with a UCQ form, every
      answer new in [D + t] must use [t] in at least one atom position,
      so only the joins through the inserted tuple are enumerated and
      checked against a cached evaluation of the RHS projection.

    Soundness of {!check_add} rests on a parent invariant: the database
    {e before} the insertion already satisfied every CC.  The search
    maintains this invariant by construction (the root state is checked
    in full; every accepted extension was checked on the way in); a
    caller whose root state fails the full check must fall back to
    {!Containment.holds_all}.  LHS languages outside the monotone-UCQ
    fragment (FP, non-monotone FO, unsafe queries) are handled by a
    per-CC full evaluation against the cached RHS, so verdicts are
    always identical to the non-incremental path. *)

open Ric_relational

type t

type stats = {
  delta_checks : int;  (** single-tuple delta probes executed *)
  full_checks : int;   (** per-CC full LHS evaluations executed *)
}

val create :
  schema:Schema.t -> master:Database.t -> Containment.t list -> t
(** Build the index: cache [Projection.eval master rhs] per CC, compile
    delta plans for monotone-UCQ LHS queries, and record whether the
    empty database over [schema] satisfies every CC (see
    {!empty_ok}). *)

val empty_ok : t -> bool
(** Whether the empty database satisfies every CC — the parent
    invariant for searches growing extensions from nothing
    ([`Delta_only] mode). *)

val check_add : t -> db:Database.t -> rel:string -> tuple:Tuple.t -> bool
(** [check_add t ~db ~rel ~tuple] — does [db] still satisfy every CC,
    given that [db] is the previous state plus [tuple] inserted into
    [rel] and that the previous state satisfied every CC?  Only CCs
    reading [rel] are touched, and monotone-UCQ CCs only through the
    inserted tuple. *)

val check_add_overlay :
  t ->
  base:Database.t ->
  delta:Database.t ->
  db:Database.t ->
  rel:string ->
  tuple:Tuple.t ->
  bool
(** Like {!check_add}, with [db] split as [base ∪ delta] ([delta]
    containing the inserted tuple): delta probes run on the compiled
    kernel — joins probe persistent column indexes over the fixed
    [base] and treat [delta]'s interned rows as a small overlay, so no
    index is ever rebuilt per step.  Verdict-identical to
    {!check_add}; [db] is still what full-evaluation fallbacks see. *)

val check_add_overlay_explain :
  t ->
  base:Database.t ->
  delta:Database.t ->
  db:Database.t ->
  rel:string ->
  tuple:Tuple.t ->
  string option
(** Like {!check_add_overlay} but, on failure, names the first
    violated constraint (its [cc_name]); [None] means the check
    passed.  The explain-profile path — verdict-identical to
    {!check_add_overlay}. *)

val full : t -> db:Database.t -> bool
(** Full check of every CC against [db] (still using the cached RHS
    relations).  Used to establish the parent invariant at search
    entry. *)

val stats : t -> stats
(** Work counters (atomic, shared across parallel workers). *)
