open Ric_relational
open Ric_query

type t = {
  ind_name : string;
  rel : string;
  cols : int list;
  target : Projection.t;
}

let counter = ref 0

let make ?name ~rel ~cols target =
  (match Projection.arity target with
   | Some k when k <> List.length cols ->
     invalid_arg "Ind.make: column lists have different widths"
   | _ -> ());
  let ind_name =
    match name with
    | Some n -> n
    | None ->
      incr counter;
      Printf.sprintf "ind%d" !counter
  in
  { ind_name; rel; cols; target }

let projection_cq sch t =
  let rs = Schema.find sch t.rel in
  let arity = Schema.arity rs in
  let args = List.init arity (fun i -> Term.var (Printf.sprintf "x%d" i)) in
  let head = List.map (fun c -> List.nth args c) t.cols in
  Cq.make ~head [ Atom.make t.rel args ]

let to_cc sch t =
  Containment.make ~name:t.ind_name (Lang.Q_cq (projection_cq sch t)) t.target

let holds ~db ~master t =
  let left = Relation.project t.cols (try Database.relation db t.rel with Not_found -> Relation.empty) in
  Relation.subset left (Projection.eval master t.target)

let covers t ~rel ~col = String.equal t.rel rel && List.mem col t.cols

let pp ppf t =
  Format.fprintf ppf "%s: π_{%a}(%s) ⊆ %a" t.ind_name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
    t.cols t.rel Projection.pp t.target
