(** Inclusion dependencies as containment constraints.

    A CC [qv(R) ⊆ p(Rm)] is an IND when [qv] is itself a projection
    query (Section 2.1).  INDs are the [LC] special case with the
    cheapest analyses: RCDP stays Σ₂ᵖ-complete (Theorem 3.6(1)) but
    RCQP drops to coNP-complete with a purely syntactic boundedness
    criterion (Proposition 4.3). *)

open Ric_relational

type t = {
  ind_name : string;
  rel : string;       (** database relation on the left *)
  cols : int list;    (** projected columns of [rel] *)
  target : Projection.t;
}

val make : ?name:string -> rel:string -> cols:int list -> Projection.t -> t
(** @raise Invalid_argument if widths disagree. *)

val to_cc : Schema.t -> t -> Containment.t
(** The IND as a generic CC whose LHS is a CQ projection query. *)

val holds : db:Database.t -> master:Database.t -> t -> bool

val covers : t -> rel:string -> col:int -> bool
(** Does this IND constrain column [col] of relation [rel]?  The
    boundedness condition E4 of Proposition 4.3 asks exactly this. *)

val pp : Format.formatter -> t -> unit
