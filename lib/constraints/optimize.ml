open Ric_query

let same_target a b =
  match a, b with
  | Projection.Empty, Projection.Empty -> true
  | Projection.Proj { mrel = r1; cols = c1 }, Projection.Proj { mrel = r2; cols = c2 } ->
    String.equal r1 r2 && c1 = c2
  | _ -> false

(* the analysable fragment: an inequality-free CQ left-hand side *)
let plain_cq (cc : Containment.t) =
  match cc.Containment.lhs with
  | Lang.Q_cq q when q.Cq.neqs = [] -> Some q
  | _ -> None

let classify sch ccs =
  let keep = ref [] in
  let drop = ref [] in
  List.iteri
    (fun i cc ->
      let reason =
        match cc.Containment.lhs with
        | Lang.Q_cq q when not (Cq.satisfiable sch q) ->
          Some "left-hand query is unsatisfiable: the constraint always holds"
        | _ ->
          (match plain_cq cc with
           | None -> None
           | Some q ->
             List.find_map
               (fun (j, other) ->
                 if i = j then None
                 else
                   match plain_cq other with
                   | Some q'
                     when same_target cc.Containment.rhs other.Containment.rhs
                          && Cq.contained_in sch q q' ->
                     (* keep the subsuming one; on mutual containment
                        (equivalence) keep the earlier *)
                     if Cq.contained_in sch q' q && j > i then None
                     else
                       Some
                         (Printf.sprintf "subsumed by %s (its query contains this one's)"
                            other.Containment.cc_name)
                   | _ -> None)
               (List.mapi (fun j c -> (j, c)) ccs))
      in
      match reason with
      | Some r -> drop := (cc, r) :: !drop
      | None -> keep := cc :: !keep)
    ccs;
  (List.rev !keep, List.rev !drop)

let normalize sch ccs = fst (classify sch ccs)
let dropped sch ccs = snd (classify sch ccs)
