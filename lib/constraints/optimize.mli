(** Normalising a set of containment constraints before handing it to
    the deciders.

    The deciders re-check every constraint at every node of their
    searches, so provably redundant constraints are pure overhead.
    Three sound simplifications:

    - a constraint whose left-hand query is unsatisfiable always
      holds — drop it;
    - duplicate constraints (same projection target, equivalent
      inequality-free CQ left-hand sides) — keep one;
    - subsumption: if [q1 ⊑ q2] (Chandra–Merlin) and both point at the
      same target, then [q2 ⊆ p] implies [q1 ⊆ p] — drop the
      subsumed one.

    Constraints this module cannot analyse (UCQ/∃FO⁺/FO/FP left-hand
    sides, or CQs with inequalities) are kept untouched. *)

open Ric_relational

val normalize : Schema.t -> Containment.t list -> Containment.t list
(** Sound: a database satisfies the result iff it satisfies the input
    (property-tested). *)

val dropped : Schema.t -> Containment.t list -> (Containment.t * string) list
(** The constraints {!normalize} would remove, with reasons — for
    audit logs. *)
