open Ric_relational

type t =
  | Proj of {
      mrel : string;
      cols : int list;
    }
  | Empty

let proj mrel cols = Proj { mrel; cols }
let empty = Empty

let arity = function
  | Proj { cols; _ } -> Some (List.length cols)
  | Empty -> None

let eval master = function
  | Empty -> Relation.empty
  | Proj { mrel; cols } ->
    (match Database.relation master mrel with
     | rel -> Relation.project cols rel
     | exception Not_found -> Relation.empty)

let pp ppf = function
  | Empty -> Format.fprintf ppf "∅"
  | Proj { mrel; cols } ->
    Format.fprintf ppf "π_{%a}(%s)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
      cols mrel
