(** The right-hand side of a containment constraint: a projection
    query [p] over master data, [∃x̄ Rm_i(x̄, ȳ)], or the empty set
    (the paper's shorthand [q ⊆ ∅], a projection of an empty master
    relation). *)

open Ric_relational

type t =
  | Proj of {
      mrel : string;     (** master relation name *)
      cols : int list;   (** projected column positions, 0-based *)
    }
  | Empty
      (** projection of an empty master relation: [q ⊆ ∅] *)

val proj : string -> int list -> t

val empty : t

val arity : t -> int option
(** Width of the projection; [None] for {!Empty} (any width). *)

val eval : Database.t -> t -> Relation.t
(** Evaluate over the master data.  {!Empty} yields the empty
    relation; an unknown master relation also yields the empty
    relation (absent master relations are empty). *)

val pp : Format.formatter -> t -> unit
