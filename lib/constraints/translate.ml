open Ric_relational
open Ric_query

(* The paper's translations give the forbidden-pattern queries {e full}
   heads — q(x̄1, z̄1, ȳ1, ...) ⊆ ∅ — not Boolean ones.  Semantically
   equivalent (⊆ ∅ means "no match"), but the head matters for
   relative completeness: condition E2 of Section 4.2 bounds query
   outputs by the summary values of partially instantiated constraint
   tableaux, and only variables present in the summary can bound. *)
let full_head (q : Cq.t) =
  { q with Cq.head = List.map (fun x -> Term.var x) (Cq.vars q) }

let of_denial (d : Denial.t) =
  Containment.make ~name:d.Denial.denial_name
    (Lang.Q_cq (full_head d.Denial.forbidden))
    Projection.Empty

(* Build the two atoms R(x̄1), R(x̄2) sharing variables on the [shared]
   columns and carrying constants on the [pattern] columns. *)
let pair_atoms rel arity ~shared ~pattern =
  let arg tag i =
    match List.assoc_opt i pattern with
    | Some c -> Term.const c
    | None ->
      if List.mem i shared then Term.var (Printf.sprintf "k%d" i)
      else Term.var (Printf.sprintf "v%d_%s" i tag)
  in
  ( Atom.make rel (List.init arity (arg "1")),
    Atom.make rel (List.init arity (arg "2")),
    fun tag i -> arg tag i )

let of_cfd sch (c : Cfd.t) =
  let arity = Schema.arity (Schema.find sch c.Cfd.rel) in
  let pattern = c.Cfd.lhs_pattern in
  let shared =
    List.filter (fun i -> not (List.mem_assoc i pattern)) c.Cfd.lhs
  in
  (* First set: for each Y column, two pattern-matching tuples agreeing
     on X must agree on that column. *)
  let pairwise =
    List.map
      (fun y ->
        let a1, a2, arg = pair_atoms c.Cfd.rel arity ~shared ~pattern in
        let q = full_head (Cq.boolean ~neqs:[ (arg "1" y, arg "2" y) ] [ a1; a2 ]) in
        Containment.make
          ~name:(Printf.sprintf "%s_pair_col%d" c.Cfd.cfd_name y)
          (Lang.Q_cq q) Projection.Empty)
      (List.filter (fun y -> not (List.mem_assoc y c.Cfd.rhs_pattern)) c.Cfd.rhs)
  in
  (* For Y columns carrying a ψ constant the pairwise check is implied
     by the single-tuple check below, but the paper keeps both; we
     include the pairwise CC only for wildcard Y columns (above) and
     the single-tuple CCs here. *)
  let singles =
    List.map
      (fun (y, v) ->
        let arg i =
          match List.assoc_opt i pattern with
          | Some k -> Term.const k
          | None -> Term.var (Printf.sprintf "v%d" i)
        in
        let atom = Atom.make c.Cfd.rel (List.init arity arg) in
        let q = full_head (Cq.boolean ~neqs:[ (arg y, Term.const v) ] [ atom ]) in
        Containment.make
          ~name:(Printf.sprintf "%s_single_col%d" c.Cfd.cfd_name y)
          (Lang.Q_cq q) Projection.Empty)
      c.Cfd.rhs_pattern
  in
  pairwise @ singles

let of_fd sch (fd : Fd.t) = of_cfd sch (Cfd.of_fd fd)

let of_cind sch (c : Cind.t) =
  let l_arity = Schema.arity (Schema.find sch c.Cind.lhs_rel) in
  let r_arity = Schema.arity (Schema.find sch c.Cind.rhs_rel) in
  (* Left atom: pattern constants inline, fresh variables elsewhere. *)
  let l_arg i =
    match List.assoc_opt i c.Cind.lhs_pattern with
    | Some k -> Term.const k
    | None -> Term.var (Printf.sprintf "l%d" i)
  in
  let l_atom = Atom.make c.Cind.lhs_rel (List.init l_arity l_arg) in
  let head =
    List.filter_map
      (fun i ->
        match l_arg i with
        | Term.Var _ as v -> Some v
        | Term.Const _ -> None)
      (List.init l_arity (fun i -> i))
  in
  (* Right atom: key columns share the left key terms; everything else
     is universally quantified. *)
  let r_arg i =
    match List.find_index (fun rc -> rc = i) c.Cind.rhs_cols with
    | Some j -> l_arg (List.nth c.Cind.lhs_cols j)
    | None -> Term.var (Printf.sprintf "w%d" i)
  in
  let r_atom = Atom.make c.Cind.rhs_rel (List.init r_arity r_arg) in
  let universal =
    List.filter_map
      (fun i ->
        match r_arg i with
        | Term.Var x when String.length x > 0 && x.[0] = 'w' -> Some x
        | _ -> None)
      (List.init r_arity (fun i -> i))
  in
  (* ¬ψ(ȳ2): some ψ constant is not matched. *)
  let neg_psi =
    Fo.disj
      (List.map (fun (i, v) -> Fo.neq (r_arg i) (Term.const v)) c.Cind.rhs_pattern)
  in
  let body =
    Fo.And (Fo.Atom l_atom, Fo.Forall (universal, Fo.Or (Fo.Not (Fo.Atom r_atom), neg_psi)))
  in
  Containment.make ~name:c.Cind.cind_name
    (Lang.Q_fo (Fo.make ~head body))
    Projection.Empty
