(** Proposition 2.1: integrity constraints as containment constraints.

    (a) Denial constraints and (b) CFDs become CCs in CQ; (c) CINDs
    become CCs in FO.  All three only need an empty master side, which
    {!Projection.Empty} provides directly — the single framework then
    enforces consistency and relative completeness together
    (Section 2.2).

    The test-suite cross-validates every translation against the
    direct checkers: [D ⊨ ic] iff [(D, Dm) ⊨ translate ic]. *)

open Ric_relational

val of_denial : Denial.t -> Containment.t

val of_fd : Schema.t -> Fd.t -> Containment.t list
(** One CC per [Y] column (the paper's "first set" with no constant
    patterns). *)

val of_cfd : Schema.t -> Cfd.t -> Containment.t list
(** The two sets of CCs of Proposition 2.1(b): pairwise violations per
    [Y] column, and single-tuple pattern violations per constant in
    [ψ]. *)

val of_cind : Schema.t -> Cind.t -> Containment.t
(** The single FO containment constraint of Proposition 2.1(c). *)
