open Ric_relational
open Ric_query

type t = {
  sch : Schema.t;
  tabs : Ctable.t list;
}

let make sch tabs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (tab : Ctable.t) ->
      (match Schema.find sch tab.Ctable.rel with
       | rs ->
         if Schema.arity rs <> tab.Ctable.arity then
           invalid_arg
             (Printf.sprintf "Cdatabase.make: table %S has arity %d, schema says %d"
                tab.Ctable.rel tab.Ctable.arity (Schema.arity rs))
       | exception Not_found ->
         invalid_arg (Printf.sprintf "Cdatabase.make: unknown relation %S" tab.Ctable.rel));
      if Hashtbl.mem seen tab.Ctable.rel then
        invalid_arg (Printf.sprintf "Cdatabase.make: duplicate table for %S" tab.Ctable.rel);
      Hashtbl.add seen tab.Ctable.rel ())
    tabs;
  { sch; tabs }

let of_database db =
  let sch = Database.schema db in
  let tabs =
    List.filter_map
      (fun (rs : Schema.relation_schema) ->
        let rel = Database.relation db rs.Schema.rel_name in
        if Relation.is_empty rel then None
        else
          Some
            (Ctable.make ~rel:rs.Schema.rel_name ~arity:(Schema.arity rs)
               (List.map Ctable.ground (Relation.elements rel))))
      (Schema.relations sch)
  in
  make sch tabs

let schema t = t.sch
let tables t = t.tabs

let nulls t = List.concat_map Ctable.nulls t.tabs |> List.sort_uniq String.compare

let worlds ~values t =
  let rec go acc = function
    | [] -> [ acc ]
    | (tab : Ctable.t) :: rest ->
      let options = Ctable.worlds ~values tab in
      List.concat_map
        (fun rel -> go (Database.set_relation acc tab.Ctable.rel rel) rest)
        options
  in
  let all = go (Database.empty t.sch) t.tabs in
  (* deduplicate structurally *)
  let module DS = Set.Make (struct
    type t = (string * Relation.t) list

    let compare a b =
      List.compare
        (fun (n1, r1) (n2, r2) ->
          let c = String.compare n1 n2 in
          if c <> 0 then c else Relation.compare r1 r2)
        a b
  end) in
  let key db = Database.fold (fun n r acc -> (n, r) :: acc) db [] in
  let _, out =
    List.fold_left
      (fun (seen, out) db ->
        let k = key db in
        if DS.mem k seen then (seen, out) else (DS.add k seen, db :: out))
      (DS.empty, []) all
  in
  List.rev out

(* Worlds of a c-database with correlated nulls across tables would
   have to share valuations; the table-by-table product above is only
   correct when tables do not share null names, so that is enforced. *)
let check_no_shared_nulls t =
  let all = List.concat_map Ctable.nulls t.tabs in
  let sorted = List.sort String.compare all in
  let rec dup = function
    | a :: (b :: _ as rest) -> if String.equal a b then Some a else dup rest
    | _ -> None
  in
  match dup sorted with
  | Some x ->
    invalid_arg
      (Printf.sprintf
         "Cdatabase: null %S is shared between tables; inline the tables into one \
          relation or rename"
         x)
  | None -> ()

let worlds ~values t =
  check_no_shared_nulls t;
  worlds ~values t

let certain_answers ~values t q =
  match worlds ~values t with
  | [] -> invalid_arg "Cdatabase.certain_answers: no possible world"
  | w :: rest ->
    List.fold_left (fun acc db -> Relation.inter acc (Lang.eval db q)) (Lang.eval w q) rest

let possible_answers ~values t q =
  List.fold_left
    (fun acc db -> Relation.union acc (Lang.eval db q))
    Relation.empty (worlds ~values t)

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline Ctable.pp ppf t.tabs
