(** C-databases: one c-table per relation of a schema, with worlds,
    certain answers and possible answers — the possible-worlds
    semantics behind Section 5's missing-values extension. *)

open Ric_relational
open Ric_query

type t

val make : Schema.t -> Ctable.t list -> t
(** Relations without a table are empty (and certain).
    @raise Invalid_argument on unknown relations, duplicate tables or
    arity mismatches with the schema. *)

val of_database : Database.t -> t
(** A fully known c-database. *)

val schema : t -> Schema.t

val tables : t -> Ctable.t list

val nulls : t -> string list

val worlds : values:Value.t list -> t -> Database.t list
(** All possible worlds over the value universe, deduplicated.
    Cartesian over the tables' null valuations — keep tables small. *)

val certain_answers : values:Value.t list -> t -> Lang.t -> Relation.t
(** [⋂_{D ∈ worlds} Q(D)].  @raise Invalid_argument if there are no
    worlds (an unsatisfiable global condition everywhere). *)

val possible_answers : values:Value.t list -> t -> Lang.t -> Relation.t
(** [⋃_{D ∈ worlds} Q(D)]. *)

val pp : Format.formatter -> t -> unit
