open Ric_relational

type cell =
  | Const of Value.t
  | Null of string

type cond =
  | Eq of cell * cell
  | Neq of cell * cell

type row = {
  cells : cell list;
  guard : cond list;
}

type t = {
  rel : string;
  arity : int;
  rows : row list;
  global : cond list;
}

let row ?(guard = []) cells = { cells; guard }

let ground tuple = { cells = List.map (fun v -> Const v) (Tuple.values tuple); guard = [] }

let make ~rel ~arity ?(global = []) rows =
  List.iter
    (fun r ->
      if List.length r.cells <> arity then
        invalid_arg
          (Printf.sprintf "Ctable.make: row of width %d in a %d-ary table"
             (List.length r.cells) arity))
    rows;
  { rel; arity; rows; global }

let cond_cells = function
  | Eq (a, b) | Neq (a, b) -> [ a; b ]

let nulls t =
  let of_cell = function
    | Null x -> [ x ]
    | Const _ -> []
  in
  List.concat_map
    (fun r -> List.concat_map of_cell r.cells @ List.concat_map (fun c -> List.concat_map of_cell (cond_cells c)) r.guard)
    t.rows
  @ List.concat_map (fun c -> List.concat_map of_cell (cond_cells c)) t.global
  |> List.sort_uniq String.compare

let is_v_table t = t.global = [] && List.for_all (fun r -> r.guard = []) t.rows

let cell_value lookup = function
  | Const v -> Some v
  | Null x -> lookup x

let cond_holds lookup c =
  let pair a b =
    match cell_value lookup a, cell_value lookup b with
    | Some va, Some vb -> Some (Value.equal va vb)
    | _ -> None
  in
  match c with
  | Eq (a, b) ->
    (match pair a b with
     | Some r -> r
     | None -> invalid_arg "Ctable: unvalued null in a condition")
  | Neq (a, b) ->
    (match pair a b with
     | Some r -> not r
     | None -> invalid_arg "Ctable: unvalued null in a condition")

let instantiate lookup t =
  if not (List.for_all (cond_holds lookup) t.global) then None
  else
    Some
      (List.fold_left
         (fun acc r ->
           if List.for_all (cond_holds lookup) r.guard then begin
             let vals =
               List.map
                 (fun c ->
                   match cell_value lookup c with
                   | Some v -> v
                   | None -> invalid_arg "Ctable: unvalued null in a row")
                 r.cells
             in
             Relation.add (Tuple.make vals) acc
           end
           else acc)
         Relation.empty t.rows)

let worlds ~values t =
  let names = nulls t in
  let rec go assignment = function
    | [] ->
      let lookup x = List.assoc_opt x assignment in
      (match instantiate lookup t with
       | Some rel -> [ rel ]
       | None -> [])
    | x :: rest ->
      List.concat_map (fun v -> go ((x, v) :: assignment) rest) values
  in
  List.sort_uniq Relation.compare (go [] names)

let pp_cell ppf = function
  | Const v -> Value.pp ppf v
  | Null x -> Format.fprintf ppf "⟂%s" x

let pp_cond ppf = function
  | Eq (a, b) -> Format.fprintf ppf "%a = %a" pp_cell a pp_cell b
  | Neq (a, b) -> Format.fprintf ppf "%a ≠ %a" pp_cell a pp_cell b

let pp_conds ppf = function
  | [] -> ()
  | cs ->
    Format.fprintf ppf " [%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ∧ ") pp_cond)
      cs

let pp ppf t =
  Format.fprintf ppf "%s:" t.rel;
  List.iter
    (fun r ->
      Format.fprintf ppf "@.  (%a)%a"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_cell)
        r.cells pp_conds r.guard)
    t.rows;
  match t.global with
  | [] -> ()
  | g -> Format.fprintf ppf "@.  global%a" pp_conds g
