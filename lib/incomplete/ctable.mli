(** Conditional tables (c-tables) — the representation system for
    incomplete information the paper's Section 5 points to (Imieliński
    & Lipski 1984; Grahne 1991) for extending relative completeness
    from missing tuples to missing {e values}.

    A c-table row holds constants and named nulls, guarded by a local
    condition (a conjunction of [=]/[≠] literals over nulls and
    constants); the table carries a global condition.  A {e world} is
    a valuation of the nulls satisfying the global condition; it keeps
    exactly the rows whose local conditions hold and grounds their
    cells.  A v-table is the special case with no conditions.

    Worlds are enumerated over a caller-supplied finite value universe
    — exact for the toy instances this reproduction works at, and the
    same move the deciders make with their active domains. *)

open Ric_relational

type cell =
  | Const of Value.t
  | Null of string  (** a named labelled null (marked variable) *)

type cond =
  | Eq of cell * cell
  | Neq of cell * cell

type row = {
  cells : cell list;
  guard : cond list;  (** local condition, conjunctive *)
}

type t = {
  rel : string;          (** which database relation the rows belong to *)
  arity : int;
  rows : row list;
  global : cond list;
}

val make : rel:string -> arity:int -> ?global:cond list -> row list -> t
(** @raise Invalid_argument on an arity mismatch. *)

val row : ?guard:cond list -> cell list -> row

val ground : Tuple.t -> row
(** A fully known row. *)

val nulls : t -> string list
(** Null names, sorted. *)

val is_v_table : t -> bool
(** No conditions anywhere. *)

val instantiate : (string -> Value.t option) -> t -> Relation.t option
(** Ground the table under a null valuation: [None] if the global
    condition fails, otherwise the relation containing the grounded
    rows whose guards hold.  @raise Invalid_argument if a null is left
    unvalued. *)

val worlds : values:Value.t list -> t -> Relation.t list
(** Every world over the given universe, deduplicated.  Exponential in
    the number of nulls — intended for small tables. *)

val pp : Format.formatter -> t -> unit
