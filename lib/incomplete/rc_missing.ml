open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

type world_report = {
  world : Database.t;
  closed : bool;
  verdict : Rcdp.verdict option;
}

type report = {
  world_reports : world_report list;
  n_worlds : int;
  n_closed : int;
  n_complete : int;
  strongly_complete : bool;
  weakly_complete : bool;
}

let analyze ~values ~schema ~master ~ccs cdb q =
  let worlds = Cdatabase.worlds ~values cdb in
  if worlds = [] then invalid_arg "Rc_missing.analyze: no possible world";
  let world_reports =
    List.map
      (fun world ->
        let closed = Containment.holds_all ~db:world ~master ccs in
        let verdict =
          if closed then
            Some (Rcdp.decide ~check_partially_closed:false ~schema ~master ~ccs ~db:world q)
          else None
        in
        { world; closed; verdict })
      worlds
  in
  let n_closed = List.length (List.filter (fun r -> r.closed) world_reports) in
  let complete r =
    match r.verdict with
    | Some Rcdp.Complete -> true
    | _ -> false
  in
  let n_complete = List.length (List.filter complete world_reports) in
  {
    world_reports;
    n_worlds = List.length world_reports;
    n_closed;
    n_complete;
    strongly_complete = n_complete = List.length world_reports;
    weakly_complete = n_complete > 0;
  }

let certain_answer_if_strong report q =
  if not report.strongly_complete then None
  else
    match report.world_reports with
    | [] -> None
    | first :: rest ->
      Some
        (List.fold_left
           (fun acc r -> Relation.inter acc (Lang.eval r.world q))
           (Lang.eval first.world q) rest)

let pp_report ppf r =
  Format.fprintf ppf
    "%d world(s): %d partially closed, %d complete — %s" r.n_worlds r.n_closed
    r.n_complete
    (if r.strongly_complete then "STRONGLY complete (trust the answer whatever the nulls are)"
     else if r.weakly_complete then
       "weakly complete (the missing values could resolve favourably)"
     else "incomplete in every world")
