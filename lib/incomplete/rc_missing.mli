(** Relative completeness in the presence of missing {e values} —
    the extension Section 5 sketches (worked out in Fan & Geerts,
    PODS 2010, "Capturing missing tuples and missing values").

    A c-database [Dc] represents a set of possible worlds.  Lifting
    the paper's notion world-wise gives two natural readings:

    - [Dc] is {e strongly complete} for [Q] relative to [(Dm, V)]
      when every possible world is partially closed and complete —
      whatever the missing values turn out to be, the answer can be
      trusted;
    - [Dc] is {e weakly complete} when some world is — the missing
      values {e could} resolve in a way that makes the data complete.

    Both are decided by enumerating worlds over a finite universe and
    running the exact RCDP decider per world, which is faithful at the
    toy scale of this reproduction (the 2010 paper shows the general
    problems are CP-table-hard; we do not claim better). *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

type world_report = {
  world : Database.t;
  closed : bool;                    (** [(world, Dm) ⊨ V] *)
  verdict : Rcdp.verdict option;    (** [None] when not partially closed *)
}

type report = {
  world_reports : world_report list;
  n_worlds : int;
  n_closed : int;
  n_complete : int;
  strongly_complete : bool;  (** all worlds closed and complete *)
  weakly_complete : bool;    (** some world closed and complete *)
}

val analyze :
  values:Value.t list ->
  schema:Schema.t ->
  master:Database.t ->
  ccs:Containment.t list ->
  Cdatabase.t ->
  Lang.t ->
  report
(** @raise Rcdp.Unsupported for undecidable language combinations.
    @raise Invalid_argument if the c-database has no worlds. *)

val certain_answer_if_strong : report -> Lang.t -> Relation.t option
(** When strongly complete, every world yields the same trustworthy
    answer only if the worlds agree; this returns the intersection
    (the certain answers) when strong completeness holds, [None]
    otherwise. *)

val pp_report : Format.formatter -> report -> unit
