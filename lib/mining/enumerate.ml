open Ric_relational
open Ric_query
open Ric_constraints
module Budget = Ric_complete.Budget

type config = {
  max_atoms : int;
  max_width : int;
  max_consts : int;
  closure_max : int;
  cap_max : int;
}

let default =
  { max_atoms = 3; max_width = 2; max_consts = 2; closure_max = 3; cap_max = 2 }

type candidate = {
  family : string;
  head : Term.t list;
  atoms : Atom.t list;
  neqs : (Term.t * Term.t) list;
  rhs : Projection.t;
  key : string;
  support_hint : int option;
}

type result = {
  cands : candidate list;
  enumerated : int;
  duplicates : int;
  exhausted : Budget.reason option;
}

(* ------------------------------------------------------------------ *)
(* Canonicalisation *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let render ~head ~neqs ~rhs atom_order =
  let names = Hashtbl.create 8 in
  let next = ref 0 in
  let name x =
    match Hashtbl.find_opt names x with
    | Some v -> v
    | None ->
      let v = "v" ^ string_of_int !next in
      incr next;
      Hashtbl.add names x v;
      v
  in
  let term = function
    | Term.Var x -> name x
    | Term.Const (Value.Int n) -> string_of_int n
    | Term.Const (Value.Str s) -> Printf.sprintf "%S" s
  in
  let atom (a : Atom.t) =
    a.Atom.rel ^ "(" ^ String.concat "," (List.map term a.Atom.args) ^ ")"
  in
  let atoms_s = List.map atom atom_order in
  let head_s = List.map term head in
  let neq (s, u) =
    let a = term s and b = term u in
    if a <= b then a ^ "!=" ^ b else b ^ "!=" ^ a
  in
  let neqs_s = List.sort String.compare (List.map neq neqs) in
  String.concat "," atoms_s ^ "|" ^ String.concat "," head_s ^ "|"
  ^ String.concat "," neqs_s ^ "|"
  ^ Format.asprintf "%a" Projection.pp rhs

let canonical_key ~head ~atoms ~neqs ~rhs =
  let orders = if List.length atoms <= 4 then permutations atoms else [ atoms ] in
  match List.map (render ~head ~neqs ~rhs) orders with
  | [] -> render ~head ~neqs ~rhs atoms
  | r :: rest -> List.fold_left min r rest

(* ------------------------------------------------------------------ *)
(* Data profile: distinct values per column of each db relation *)

module Vset = Set.Make (Value)

let relation_of db name =
  try Database.relation db name with Not_found -> Relation.empty

let profile db (rs : Schema.relation_schema) =
  let k = Schema.arity rs in
  let sets = Array.make k Vset.empty in
  Relation.iter
    (fun tu ->
      for i = 0 to k - 1 do
        sets.(i) <- Vset.add (Tuple.get tu i) sets.(i)
      done)
    (relation_of db rs.Schema.rel_name);
  Array.map Vset.elements sets

(* ------------------------------------------------------------------ *)
(* Combinatorics *)

let rec subsets_of_size w = function
  | _ when w = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
    List.map (fun s -> x :: s) (subsets_of_size (w - 1) rest)
    @ subsets_of_size w rest

let rec arrangements w lst =
  if w = 0 then [ [] ]
  else
    List.concat_map
      (fun x ->
        List.map
          (fun s -> x :: s)
          (arrangements (w - 1) (List.filter (fun y -> y <> x) lst)))
      lst

let xvar i = Term.var ("x" ^ string_of_int i)
let yvar i = Term.var ("y" ^ string_of_int i)

(* ------------------------------------------------------------------ *)

let generate ?(config = default) ?(budget = Budget.unlimited) ~db_schema
    ~master_schema ~db () =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let out = ref [] in
  let enumerated = ref 0 and duplicates = ref 0 in
  let emit ~family ?support_hint ~head ~atoms ~neqs ~rhs () =
    Budget.tick budget;
    incr enumerated;
    let key = canonical_key ~head ~atoms ~neqs ~rhs in
    if Hashtbl.mem seen key then incr duplicates
    else begin
      Hashtbl.add seen key ();
      out := { family; head; atoms; neqs; rhs; key; support_hint } :: !out
    end
  in
  let db_rels = Schema.relations db_schema in
  let profiles =
    List.map (fun rs -> (rs, profile db rs)) db_rels
  in
  (* master projections of each width, shared by the inclusion families *)
  let targets =
    Array.init (config.max_width + 1) (fun w ->
        if w = 0 then []
        else
          List.concat_map
            (fun (m : Schema.relation_schema) ->
              let cols = List.init (Schema.arity m) Fun.id in
              List.map
                (fun arr -> Projection.proj m.Schema.rel_name arr)
                (arrangements w cols))
            (Schema.relations master_schema))
  in
  let inclusion_family () =
    List.iter
      (fun ((rs : Schema.relation_schema), prof) ->
        let k = Schema.arity rs in
        let base = List.init k xvar in
        let cols = List.init k Fun.id in
        let selections =
          None
          :: List.concat_map
               (fun j ->
                 let d = prof.(j) in
                 if d <> [] && List.length d <= config.max_consts then
                   List.map (fun v -> Some (j, v)) d
                 else [])
               cols
        in
        List.iter
          (fun sel ->
            let args, var_cols =
              match sel with
              | None -> (base, cols)
              | Some (j, v) ->
                ( List.mapi (fun i t -> if i = j then Term.const v else t) base,
                  List.filter (fun i -> i <> j) cols )
            in
            let atom = Atom.make rs.Schema.rel_name args in
            for w = 1 to min config.max_width (List.length var_cols) do
              List.iter
                (fun hcols ->
                  let head = List.map xvar hcols in
                  List.iter
                    (fun rhs ->
                      emit ~family:"inclusion" ~head ~atoms:[ atom ] ~neqs:[]
                        ~rhs ())
                    targets.(w))
                (subsets_of_size w var_cols)
            done)
          selections)
      profiles
  in
  let join_family () =
    if config.max_atoms < 2 then ()
    else
      let sites =
        List.concat_map
          (fun (rs : Schema.relation_schema) ->
            List.init (Schema.arity rs) (fun i -> (rs, i)))
          db_rels
      in
      List.iter
        (fun ((r1 : Schema.relation_schema), i1) ->
          List.iter
            (fun ((r2 : Schema.relation_schema), i2) ->
              (* ordered sites: each unordered pair once; joining a
                 column to itself adds nothing over the single atom *)
              if
                (r1.Schema.rel_name, i1) < (r2.Schema.rel_name, i2)
                || (r1.Schema.rel_name = r2.Schema.rel_name && i1 < i2)
              then begin
                let k1 = Schema.arity r1 and k2 = Schema.arity r2 in
                let a1 = Atom.make r1.Schema.rel_name (List.init k1 xvar) in
                let a2 =
                  Atom.make r2.Schema.rel_name
                    (List.init k2 (fun i -> if i = i2 then xvar i1 else yvar i))
                in
                let body_vars =
                  List.init k1 xvar
                  @ List.filteri (fun i _ -> i <> i2) (List.init k2 yvar)
                in
                for w = 1 to config.max_width do
                  List.iter
                    (fun head ->
                      List.iter
                        (fun rhs ->
                          emit ~family:"join" ~head ~atoms:[ a1; a2 ] ~neqs:[]
                            ~rhs ())
                        targets.(w))
                    (subsets_of_size w body_vars)
                done
              end)
            sites)
        sites
  in
  let closure_family () =
    if config.closure_max = 0 then ()
    else
      List.iter
        (fun ((rs : Schema.relation_schema), prof) ->
          let rel = relation_of db rs.Schema.rel_name in
          let rows = Relation.cardinal rel in
          if rows > 0 then begin
            let k = Schema.arity rs in
            let atom = Atom.make rs.Schema.rel_name (List.init k xvar) in
            for j = 0 to k - 1 do
              let d = prof.(j) in
              if d <> [] && List.length d <= config.closure_max then
                emit ~family:"closure" ~support_hint:rows ~head:[ xvar j ]
                  ~atoms:[ atom ]
                  ~neqs:(List.map (fun v -> (xvar j, Term.const v)) d)
                  ~rhs:Projection.empty ()
            done
          end)
        profiles
  in
  let cap_family () =
    if config.cap_max = 0 then ()
    else
      List.iter
        (fun ((rs : Schema.relation_schema), _) ->
          let k = Schema.arity rs in
          let rel = relation_of db rs.Schema.rel_name in
          if k >= 2 && not (Relation.is_empty rel) then
            for g = 0 to k - 1 do
              for c = 0 to k - 1 do
                if c <> g then begin
                  Budget.tick budget;
                  let groups : (Value.t, Vset.t) Hashtbl.t =
                    Hashtbl.create 16
                  in
                  Relation.iter
                    (fun tu ->
                      let gv = Tuple.get tu g and cv = Tuple.get tu c in
                      let cur =
                        Option.value ~default:Vset.empty
                          (Hashtbl.find_opt groups gv)
                      in
                      Hashtbl.replace groups gv (Vset.add cv cur))
                    rel;
                  let cap =
                    Hashtbl.fold
                      (fun _ s acc -> max acc (Vset.cardinal s))
                      groups 0
                  in
                  if cap >= 1 && cap <= config.cap_max && cap + 1 <= config.max_atoms
                  then begin
                    let at_cap =
                      Hashtbl.fold
                        (fun _ s acc ->
                          if Vset.cardinal s = cap then acc + 1 else acc)
                        groups 0
                    in
                    let atoms =
                      List.init (cap + 1) (fun t ->
                          Atom.make rs.Schema.rel_name
                            (List.init k (fun i ->
                                 if i = g then Term.var "g"
                                 else if i = c then
                                   Term.var (Printf.sprintf "y%d" t)
                                 else Term.var (Printf.sprintf "z%d_%d" t i))))
                    in
                    let ys =
                      List.init (cap + 1) (fun t ->
                          Term.var (Printf.sprintf "y%d" t))
                    in
                    let rec pairs = function
                      | [] -> []
                      | y :: rest -> List.map (fun y' -> (y, y')) rest @ pairs rest
                    in
                    emit ~family:"cap" ~support_hint:at_cap
                      ~head:(Term.var "g" :: ys) ~atoms ~neqs:(pairs ys)
                      ~rhs:Projection.empty ()
                  end
                end
              done
            done)
        profiles
  in
  let exhausted = ref None in
  (try
     inclusion_family ();
     join_family ();
     closure_family ();
     cap_family ()
   with Budget.Exhausted r -> exhausted := Some r);
  {
    cands = List.rev !out;
    enumerated = !enumerated;
    duplicates = !duplicates;
    exhausted = !exhausted;
  }
