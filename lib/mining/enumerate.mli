(** Candidate containment-constraint enumeration.

    Given the database schema, the master schema and the instance [D],
    generate a bounded space of candidate constraints [q(D) ⊆ p(Dm)]
    in the AMIE shape: small connected conjunctive bodies, canonicalised
    up to variable renaming (and atom order) so structurally equal
    candidates are emitted once.  Four families:

    - {b inclusion}: a single atom [R(x̄)], optionally refined by
      binding one low-cardinality column to a constant seen in [D],
      with a projection head into every master projection of the same
      width — the paper's φ0/φ2 shapes;
    - {b join}: two atoms sharing one variable (connected by
      construction), projection head as above;
    - {b closure}: a domain-closure denial
      [R(..x..), x ≠ v1, .., x ≠ vk ⊆ ∅] for a column whose distinct
      values in [D] are few — closing the column's active domain;
    - {b cap}: the paper's φ1 counting shape —
      [R(g,..,y0.., .., R(g,..,yk..), yi ≠ yj ⊆ ∅] when no group value
      in [D] has more than [k] distinct counted values.

    Enumeration only proposes; {!Score} decides.  The data-driven
    families ([closure], [cap], constant refinements) read [D] but
    every candidate is still re-verified by the scorer, so enumeration
    never has to be trusted. *)

open Ric_relational
open Ric_query
open Ric_constraints

type config = {
  max_atoms : int;  (** body size bound; the cap family needs [k+1] atoms *)
  max_width : int;  (** head / projection width bound *)
  max_consts : int;
      (** bind a column to constants only when it has at most this many
          distinct values in [D] (0 disables constant refinements) *)
  closure_max : int;
      (** emit a domain-closure denial for columns with at most this
          many distinct values in [D] (0 disables the family) *)
  cap_max : int;
      (** emit a cap denial when every group has at most this many
          distinct counted values (0 disables the family) *)
}

val default : config
(** [{ max_atoms = 3; max_width = 2; max_consts = 2; closure_max = 3;
      cap_max = 2 }] *)

type candidate = {
  family : string;  (** ["inclusion"], ["join"], ["closure"] or ["cap"] *)
  head : Term.t list;
  atoms : Atom.t list;
  neqs : (Term.t * Term.t) list;
  rhs : Projection.t;
  key : string;  (** canonical form — dedup key and deterministic order *)
  support_hint : int option;
      (** enumeration-time support for the denial families, where the
          body-with-inequalities has no witnesses by design: row count
          backing a closure, number of at-cap groups for a cap *)
}

val canonical_key :
  head:Term.t list ->
  atoms:Atom.t list ->
  neqs:(Term.t * Term.t) list ->
  rhs:Projection.t ->
  string
(** Canonical rendering: variables renamed in first-occurrence order,
    inequalities sorted, minimised over atom permutations (bodies of up
    to four atoms), so alpha-equivalent candidates collide. *)

type result = {
  cands : candidate list;  (** deduplicated, in emission order *)
  enumerated : int;  (** raw candidates visited, duplicates included *)
  duplicates : int;  (** candidates dropped by canonical-key dedup *)
  exhausted : Ric_complete.Budget.reason option;
      (** set when the budget ran out mid-enumeration; [cands] then
          holds the prefix generated so far *)
}

val generate :
  ?config:config ->
  ?budget:Ric_complete.Budget.t ->
  db_schema:Schema.t ->
  master_schema:Schema.t ->
  db:Database.t ->
  unit ->
  result
(** Never raises {!Ric_complete.Budget.Exhausted} — exhaustion is
    reported in the result so callers can surface partial output. *)
