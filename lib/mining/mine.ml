open Ric_relational
open Ric_query
open Ric_constraints
module Budget = Ric_complete.Budget
module Pool = Ric_complete.Pool

type config = {
  enum : Enumerate.config;
  min_support : int;
  min_confidence : float;
  workers : int;
  minimal_cover : bool;
}

let default =
  {
    enum = Enumerate.default;
    min_support = 1;
    min_confidence = 0.8;
    workers = 1;
    minimal_cover = true;
  }

type stats = {
  enumerated : int;
  duplicates : int;
  pruned : int;
  evaluated : int;
  accepted : int;
}

type result = {
  accepted : (string * Containment.t) list;
  accepted_scored : Score.scored list;
  near : Score.scored list;
  stats : stats;
  timed_out : Budget.reason option;
}

(* ------------------------------------------------------------------ *)
(* Metrics *)

let m_stage stage =
  Ric_obs.Metrics.counter ~help:"mining candidates by pipeline stage"
    ~labels:[ ("stage", stage) ]
    "ric_mine_candidates_total"

let m_enumerated = m_stage "enumerated"
let m_pruned = m_stage "pruned"
let m_evaluated = m_stage "evaluated"
let m_accepted = m_stage "accepted"

let m_eval_hist =
  Ric_obs.Metrics.histogram ~help:"per-candidate kernel evaluation latency"
    "ric_mine_eval_seconds"

let m_runs = Ric_obs.Metrics.counter ~help:"mining passes" "ric_mine_runs_total"

let m_timeouts =
  Ric_obs.Metrics.counter ~help:"mining passes that exhausted their budget"
    "ric_mine_timeouts_total"

(* ------------------------------------------------------------------ *)

(* Candidates that cannot reach acceptance, skipped without paying for
   a kernel evaluation: a body atom over an empty db relation (support
   is necessarily 0), or a projection into an empty / unknown master
   relation (confidence is necessarily 0 at any support). *)
let prunable ~db ~master (c : Enumerate.candidate) =
  let empty_in d name =
    match Database.relation d name with
    | r -> Relation.is_empty r
    | exception Not_found -> true
  in
  List.exists (fun (a : Atom.t) -> empty_in db a.Atom.rel) c.atoms
  ||
  match c.rhs with
  | Projection.Empty -> false
  | Projection.Proj { mrel; _ } -> empty_in master mrel

let score_one ctx ~db budget c =
  let s =
    Ric_obs.Metrics.time m_eval_hist (fun () ->
        Score.score ~budget ctx ~db c)
  in
  Ric_obs.Metrics.incr m_evaluated;
  s

let eval_seq budget ~db ~master cands timed_out =
  let ctx = Score.ctx ~master () in
  let out = ref [] in
  (try
     List.iter
       (fun c ->
         Budget.check_now budget;
         out := score_one ctx ~db budget c :: !out)
       cands
   with Budget.Exhausted r ->
     if !timed_out = None then timed_out := Some r);
  !out

let batch_size = 32

let rec chunk n = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let b, rest = take n [] l in
    b :: chunk n rest

(* The valuation-search fan-out idiom: a shared stop flag, per-batch
   forked budgets whose consumed steps fold back into the parent
   exactly once, first-error / first-exhaustion recorded under a
   mutex, partial output preserved. *)
let eval_par workers budget ~db ~master cands timed_out =
  let stop = Atomic.make false in
  let mx = Mutex.create () in
  let locked f =
    Mutex.lock mx;
    Fun.protect ~finally:(fun () -> Mutex.unlock mx) f
  in
  let consumed = Atomic.make 0 in
  let out = ref [] and exh = ref None and err = ref None in
  let run_batch job =
    if not (Atomic.get stop) then begin
      let child =
        Budget.fork ~cancel:stop ~extra_steps:(Atomic.get consumed) budget
      in
      let ctx = Score.ctx ~master () in
      let acc = ref [] in
      (try
         List.iter
           (fun c ->
             if not (Atomic.get stop) then begin
               Budget.check_now child;
               acc := score_one ctx ~db child c :: !acc
             end)
           job
       with
      | Budget.Exhausted r ->
        locked (fun () -> if !exh = None then exh := Some r);
        Atomic.set stop true
      | e ->
        locked (fun () -> if !err = None then err := Some e);
        Atomic.set stop true);
      ignore (Atomic.fetch_and_add consumed (Budget.steps child));
      locked (fun () -> out := List.rev_append !acc !out)
    end
  in
  let pool =
    Pool.create ~domains:workers ~capacity:(2 * workers)
      ~worker:(fun f -> f ())
      ()
  in
  List.iter
    (fun job -> ignore (Pool.submit pool (fun () -> run_batch job)))
    (chunk batch_size cands);
  Pool.shutdown pool;
  Budget.add_steps budget (Atomic.get consumed);
  (match !err with Some e -> raise e | None -> ());
  (match !exh with
  | Some r when !timed_out = None -> timed_out := Some r
  | _ -> ());
  !out

(* ------------------------------------------------------------------ *)
(* Acceptance *)

let order =
  let cmp (a : Score.scored) (b : Score.scored) =
    match compare b.Score.support a.Score.support with
    | 0 ->
      String.compare a.Score.candidate.Enumerate.key
        b.Score.candidate.Enumerate.key
    | c -> c
  in
  List.sort cmp

(* [b] subsumes [a] when both project into the same master target and
   q_a ⊆ q_b (Chandra–Merlin; inequality-free only): if q_b(D) ⊆ p
   holds then q_a(D) ⊆ p is implied. *)
let subsumes ~db_schema (a : Enumerate.candidate) (b : Enumerate.candidate) =
  a.Enumerate.rhs = b.Enumerate.rhs
  && a.Enumerate.neqs = [] && b.Enumerate.neqs = []
  &&
  try Cq.contained_in db_schema (Score.cq_of a) (Score.cq_of b)
  with Invalid_argument _ -> false

(* Pairwise, not greedy: a candidate is redundant when any {e other}
   accepted one subsumes it — order-independent, so a constant-refined
   body is dropped whenever its generalisation was also accepted.
   Mutually-equivalent pairs keep the key-least representative. *)
let minimal_cover ~db_schema sorted =
  List.filter
    (fun (s : Score.scored) ->
      let c = s.Score.candidate in
      not
        (List.exists
           (fun (k : Score.scored) ->
             let kc = k.Score.candidate in
             kc.Enumerate.key <> c.Enumerate.key
             && subsumes ~db_schema c kc
             && ((not (subsumes ~db_schema kc c))
                 || kc.Enumerate.key < c.Enumerate.key))
           sorted))
    sorted

let mined_name i = "mined-" ^ string_of_int (i + 1)

(* ------------------------------------------------------------------ *)

let run ?(config = default) ?(budget = Budget.unlimited) ~db_schema
    ~master_schema ~db ~master () =
  Ric_obs.Metrics.incr m_runs;
  let er = Enumerate.generate ~config:config.enum ~budget ~db_schema
      ~master_schema ~db ()
  in
  Ric_obs.Metrics.add m_enumerated er.Enumerate.enumerated;
  let timed_out = ref er.Enumerate.exhausted in
  let pruned, to_eval = List.partition (prunable ~db ~master) er.Enumerate.cands in
  Ric_obs.Metrics.add m_pruned (List.length pruned);
  let scored =
    if !timed_out <> None then []
    else if config.workers <= 1 then eval_seq budget ~db ~master to_eval timed_out
    else eval_par config.workers budget ~db ~master to_eval timed_out
  in
  let accepted_all =
    order
      (List.filter
         (fun (s : Score.scored) ->
           s.Score.support >= config.min_support && s.Score.confidence >= 1.0)
         scored)
  in
  let accepted_scored =
    if config.minimal_cover then minimal_cover ~db_schema accepted_all
    else accepted_all
  in
  let near =
    order
      (List.filter
         (fun (s : Score.scored) ->
           s.Score.support >= config.min_support
           && s.Score.confidence < 1.0
           && s.Score.confidence >= config.min_confidence)
         scored)
  in
  let accepted =
    List.mapi
      (fun i (s : Score.scored) ->
        let n = mined_name i in
        (n, Score.cc_of ~name:n s.Score.candidate))
      accepted_scored
  in
  Ric_obs.Metrics.add m_accepted (List.length accepted);
  if !timed_out <> None then Ric_obs.Metrics.incr m_timeouts;
  {
    accepted;
    accepted_scored;
    near;
    stats =
      {
        enumerated = er.Enumerate.enumerated;
        duplicates = er.Enumerate.duplicates;
        pruned = List.length pruned;
        evaluated = List.length scored;
        accepted = List.length accepted;
      };
    timed_out = !timed_out;
  }

(* ------------------------------------------------------------------ *)
(* Cross-check: does the mined knowledge promote queries to Complete? *)

type check_row = {
  cq_name : string;
  before : string;
  after : string;
  flipped : bool;
}

let cross_check ?clock ~db_schema ~db ~master ~queries ~mined () =
  let module Rcdp = Ric_complete.Rcdp in
  let decide ccs q =
    match
      Rcdp.decide ?clock ~check_partially_closed:false ~schema:db_schema
        ~master ~ccs ~db q
    with
    | Rcdp.Complete -> "Complete"
    | Rcdp.Incomplete _ -> "Incomplete"
    | exception Rcdp.Unsupported _ -> "unsupported"
    | exception Budget.Exhausted r -> "timeout:" ^ Budget.reason_name r
  in
  let ccs = List.map snd mined in
  List.map
    (fun (cq_name, q) ->
      let before = decide [] q in
      let after = decide ccs q in
      { cq_name; before; after; flipped = before <> "Complete" && after = "Complete" })
    queries
