(** The mining driver: enumerate → prune → score → accept.

    [run] turns a [(Dm, D)] pair into a set of containment constraints
    the pair satisfies: candidates from {!Enumerate} are pruned
    (empty body relation, empty projection target), scored by
    {!Score} — sequentially or fanned out over the supervised
    {!Ric_complete.Pool} in batches — and accepted when their
    confidence is exactly [1.0] and their support reaches the
    threshold.  Accepted constraints are ordered deterministically
    (support descending, then canonical key), optionally reduced to a
    minimal cover (a constraint implied by an accepted more-general
    one via Chandra–Merlin containment is dropped), and named
    [mined-1], [mined-2], … — valid scenario identifiers, so the
    emitted block round-trips through the [.ric] parser.

    The whole pass runs under a {!Ric_complete.Budget}: when it is
    exhausted mid-enumeration or mid-scoring the run returns the
    partial result with [timed_out] set instead of raising.  The pass
    is instrumented with [ric_mine_*] metrics (candidates by stage,
    per-candidate evaluation latency, runs, timeouts). *)

open Ric_relational
open Ric_query
open Ric_constraints
module Budget = Ric_complete.Budget

type config = {
  enum : Enumerate.config;
  min_support : int;  (** accept only candidates with this much evidence *)
  min_confidence : float;
      (** report (but never emit) near-misses at or above this
          confidence; acceptance always requires confidence [1.0] *)
  workers : int;  (** scoring fan-out; [1] evaluates inline *)
  minimal_cover : bool;  (** drop accepted constraints implied by others *)
}

val default : config
(** [{ enum = Enumerate.default; min_support = 1; min_confidence = 0.8;
      workers = 1; minimal_cover = true }] *)

type stats = {
  enumerated : int;  (** raw candidates, duplicates included *)
  duplicates : int;
  pruned : int;  (** skipped without kernel evaluation *)
  evaluated : int;
  accepted : int;
}

type result = {
  accepted : (string * Containment.t) list;
      (** named [mined-N], deterministic order *)
  accepted_scored : Score.scored list;  (** parallel to [accepted] *)
  near : Score.scored list;
      (** confidence in [[min_confidence, 1.0)] at sufficient support —
          constraints that {e almost} hold, for the report only *)
  stats : stats;
  timed_out : Budget.reason option;
}

val run :
  ?config:config ->
  ?budget:Budget.t ->
  db_schema:Schema.t ->
  master_schema:Schema.t ->
  db:Database.t ->
  master:Database.t ->
  unit ->
  result
(** Never raises {!Budget.Exhausted}; partial results carry
    [timed_out].  Worker pool failures (which the supervised pool does
    not swallow silently) are re-raised. *)

type check_row = {
  cq_name : string;
  before : string;  (** RCDP verdict under [V = ∅] *)
  after : string;  (** RCDP verdict under the mined [V] *)
  flipped : bool;  (** [before ≠ Complete] and [after = Complete] *)
}

val cross_check :
  ?clock:Budget.t ->
  db_schema:Schema.t ->
  db:Database.t ->
  master:Database.t ->
  queries:(string * Lang.t) list ->
  mined:(string * Containment.t) list ->
  unit ->
  check_row list
(** Re-run the RCDP decider per query with the mined constraint set
    against the empty-constraint baseline, reporting which queries the
    mined knowledge promotes to [Complete].  Verdicts are
    ["Complete"], ["Incomplete"], ["unsupported"] or ["timeout:<r>"]. *)
