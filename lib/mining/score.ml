open Ric_relational
open Ric_query
open Ric_constraints
module Budget = Ric_complete.Budget

type scored = {
  candidate : Enumerate.candidate;
  support : int;
  confidence : float;
}

let cq_of (c : Enumerate.candidate) = Cq.make ~neqs:c.neqs ~head:c.head c.atoms

let cc_of ?name (c : Enumerate.candidate) =
  Containment.make ?name (Lang.Q_cq (cq_of c)) c.rhs

type ctx = {
  store : Kernel.Store.t;
  master : Database.t;
  rowsets : (string, Kernel.Rowset.t) Hashtbl.t;
}

let ctx ~master () =
  { store = Kernel.Store.create (); master; rowsets = Hashtbl.create 16 }

let rowset ctx (rhs : Projection.t) =
  let key = Format.asprintf "%a" Projection.pp rhs in
  match Hashtbl.find_opt ctx.rowsets key with
  | Some rs -> rs
  | None ->
    let rs = Kernel.Rowset.of_relation (Projection.eval ctx.master rhs) in
    Hashtbl.add ctx.rowsets key rs;
    rs

let lookup_in db rel =
  try Database.relation db rel with Not_found -> Relation.empty

(* Distinct interned head rows of [atoms, neqs] over [db]. *)
let distinct_heads ~budget ctx ~db ~atoms ~neqs ~head =
  let plan = Kernel.compile atoms neqs in
  let enc = Kernel.encode_terms plan head in
  let rows : (int array, unit) Hashtbl.t = Hashtbl.create 64 in
  ignore
    (Kernel.run ctx.store ~lookup:(lookup_in db) plan (fun regs ->
         Budget.tick budget;
         (match Kernel.term_ids enc regs with
         | Some ids -> if not (Hashtbl.mem rows ids) then Hashtbl.add rows ids ()
         | None -> ());
         false));
  rows

let has_match ~budget ctx ~db ~atoms ~neqs =
  let plan = Kernel.compile atoms neqs in
  Kernel.run ctx.store ~lookup:(lookup_in db) plan (fun _ ->
      Budget.tick budget;
      true)

let score ?(budget = Budget.unlimited) ctx ~db (c : Enumerate.candidate) =
  match c.rhs with
  | Projection.Empty ->
    let violated = has_match ~budget ctx ~db ~atoms:c.atoms ~neqs:c.neqs in
    let support =
      match c.support_hint with
      | Some n -> n
      | None ->
        Hashtbl.length
          (distinct_heads ~budget ctx ~db ~atoms:c.atoms ~neqs:[] ~head:c.head)
    in
    { candidate = c; support; confidence = (if violated then 0.0 else 1.0) }
  | Projection.Proj _ ->
    let rows =
      distinct_heads ~budget ctx ~db ~atoms:c.atoms ~neqs:c.neqs ~head:c.head
    in
    let support = Hashtbl.length rows in
    if support = 0 then { candidate = c; support; confidence = 0.0 }
    else begin
      let rs = rowset ctx c.rhs in
      let covered =
        Hashtbl.fold
          (fun ids () acc -> if Kernel.Rowset.mem rs ids then acc + 1 else acc)
          rows 0
      in
      {
        candidate = c;
        support;
        confidence = float_of_int covered /. float_of_int support;
      }
    end

let naive_score ~db ~master (c : Enumerate.candidate) =
  match c.rhs with
  | Projection.Empty ->
    let violated = Cq.holds db (Cq.boolean ~neqs:c.neqs c.atoms) in
    let support =
      match c.support_hint with
      | Some n -> n
      | None -> Relation.cardinal (Cq.eval db (Cq.make ~head:c.head c.atoms))
    in
    { candidate = c; support; confidence = (if violated then 0.0 else 1.0) }
  | Projection.Proj _ ->
    let q = Cq.eval db (cq_of c) in
    let support = Relation.cardinal q in
    if support = 0 then { candidate = c; support; confidence = 0.0 }
    else begin
      let p = Projection.eval master c.rhs in
      let covered = Relation.cardinal (Relation.inter q p) in
      {
        candidate = c;
        support;
        confidence = float_of_int covered /. float_of_int support;
      }
    end
