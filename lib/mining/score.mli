(** Candidate evaluation: support and confidence of one candidate
    constraint against a concrete [(D, Dm)] pair.

    - {b support} — evidence in [D]: the number of distinct answers of
      the candidate body (for the denial families, the enumeration-time
      hint — rows backing a closure, at-cap groups — since the body
      with its inequalities has no witnesses by design);
    - {b confidence} — the fraction of [q(D)] answers covered by
      [p(Dm)]; for a denial, [1.0] when no violating match exists in
      [D] and [0.0] otherwise.

    A candidate with confidence [1.0] {e is} a containment constraint
    satisfied by [(D, Dm)] — acceptance in {!Mine} requires exactly
    that, so mining can never emit a constraint
    {!Ric_constraints.Containment.holds} refutes (property-tested).

    Evaluation runs on the compiled {!Ric_query.Kernel}; [naive_score]
    is the [Cq.eval]-based differential-testing reference. *)

open Ric_relational
open Ric_query
open Ric_constraints

type scored = {
  candidate : Enumerate.candidate;
  support : int;
  confidence : float;
}

val cq_of : Enumerate.candidate -> Cq.t

val cc_of : ?name:string -> Enumerate.candidate -> Containment.t

type ctx
(** Per-worker evaluation context: a private {!Ric_query.Kernel.Store}
    (parallel workers sharing one store would serialise on its mutex)
    plus a cache of interned RHS rowsets keyed by projection. *)

val ctx : master:Database.t -> unit -> ctx

val score :
  ?budget:Ric_complete.Budget.t ->
  ctx ->
  db:Database.t ->
  Enumerate.candidate ->
  scored
(** Kernel-based evaluation; ticks [budget] once per body match.
    @raise Ric_complete.Budget.Exhausted when the budget runs out. *)

val naive_score : db:Database.t -> master:Database.t -> Enumerate.candidate -> scored
(** Reference implementation on the interpreted evaluator — slow, used
    by the differential tests. *)
