(* Global registry.  Registration takes a mutex; updates are lock-free
   atomic adds on the metric's own state.  Snapshotting reads the
   atomics without stopping writers: each individual value is coherent,
   the set as a whole is a best-effort point-in-time view, which is all
   a scrape needs. *)

type counter = int Atomic.t
type gauge = int Atomic.t

(* Durations are accumulated in nanoseconds as ints: atomic float adds
   don't exist, and 2^62 ns is ~146 years of accumulated latency. *)
type histogram = {
  h_counts : int Atomic.t array;  (* one per finite bound *)
  h_inf : int Atomic.t;
  h_sum_ns : int Atomic.t;
}

let bucket_bounds = Array.init 13 (fun i -> 1e-6 *. (4. ** float_of_int i))

type kind =
  | K_counter of counter
  | K_gauge of gauge
  | K_gauge_fn of (unit -> int) ref
  | K_histogram of histogram

type metric = {
  m_name : string;
  m_labels : (string * string) list;
  m_help : string;
  m_kind : kind;
}

let kind_name = function
  | K_counter _ -> "counter"
  | K_gauge _ | K_gauge_fn _ -> "gauge"
  | K_histogram _ -> "histogram"

let registry : (string * (string * string) list, metric) Hashtbl.t =
  Hashtbl.create 64

let registry_mutex = Mutex.create ()

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let check_name what s =
  if not (valid_name s) then
    invalid_arg (Printf.sprintf "Metrics: invalid %s %S" what s)

let normalize_labels labels =
  List.iter (fun (k, _) -> check_name "label name" k) labels;
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* [register] returns the existing metric for (name, labels) when the
   kinds agree, otherwise creates one.  A same-named family with a
   different kind is a registration bug, caught loudly. *)
let register ~help ~labels name fresh =
  check_name "metric name" name;
  let labels = normalize_labels labels in
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  match Hashtbl.find_opt registry (name, labels) with
  | Some m -> m
  | None ->
    let kind = fresh () in
    Hashtbl.iter
      (fun (n, _) m ->
        if n = name && kind_name m.m_kind <> kind_name kind then
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name m.m_kind)))
      registry;
    let m = { m_name = name; m_labels = labels; m_help = help; m_kind = kind } in
    Hashtbl.add registry (name, labels) m;
    m

let counter ?(help = "") ?(labels = []) name =
  match
    (register ~help ~labels name (fun () -> K_counter (Atomic.make 0))).m_kind
  with
  | K_counter c -> c
  | k ->
    invalid_arg
      (Printf.sprintf "Metrics: %s is a %s, not a counter" name (kind_name k))

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c

let gauge ?(help = "") ?(labels = []) name =
  match
    (register ~help ~labels name (fun () -> K_gauge (Atomic.make 0))).m_kind
  with
  | K_gauge g -> g
  | k ->
    invalid_arg
      (Printf.sprintf "Metrics: %s is a %s, not a gauge" name (kind_name k))

let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let gauge_fn ?(help = "") ?(labels = []) name f =
  match
    (register ~help ~labels name (fun () -> K_gauge_fn (ref f))).m_kind
  with
  | K_gauge_fn r -> r := f
  | k ->
    invalid_arg
      (Printf.sprintf "Metrics: %s is a %s, not a pull gauge" name (kind_name k))

let histogram ?(help = "") ?(labels = []) name =
  let fresh () =
    K_histogram
      {
        h_counts = Array.init (Array.length bucket_bounds) (fun _ -> Atomic.make 0);
        h_inf = Atomic.make 0;
        h_sum_ns = Atomic.make 0;
      }
  in
  match (register ~help ~labels name fresh).m_kind with
  | K_histogram h -> h
  | k ->
    invalid_arg
      (Printf.sprintf "Metrics: %s is a %s, not a histogram" name (kind_name k))

let observe h seconds =
  let seconds = if Float.is_nan seconds || seconds < 0. then 0. else seconds in
  let n = Array.length bucket_bounds in
  let rec slot i =
    if i >= n then None
    else if seconds <= Array.unsafe_get bucket_bounds i then Some i
    else slot (i + 1)
  in
  (match slot 0 with
   | Some i -> Atomic.incr h.h_counts.(i)
   | None -> Atomic.incr h.h_inf);
  ignore (Atomic.fetch_and_add h.h_sum_ns (int_of_float (seconds *. 1e9)))

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let time h f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> observe h (now_s () -. t0)) f

type histogram_snapshot = {
  buckets : (float * int) array;
  inf_count : int;
  count : int;
  sum : float;
}

type value =
  | Counter of int
  | Gauge of int
  | Histogram of histogram_snapshot

type sample = {
  name : string;
  labels : (string * string) list;
  help : string;
  value : value;
}

let snapshot_histogram h =
  let running = ref 0 in
  let buckets =
    Array.mapi
      (fun i bound ->
        running := !running + Atomic.get h.h_counts.(i);
        (bound, !running))
      bucket_bounds
  in
  let inf_count = !running + Atomic.get h.h_inf in
  {
    buckets;
    inf_count;
    count = inf_count;
    sum = float_of_int (Atomic.get h.h_sum_ns) *. 1e-9;
  }

let sample_of_metric m =
  let value =
    match m.m_kind with
    | K_counter c -> Counter (Atomic.get c)
    | K_gauge g -> Gauge (Atomic.get g)
    | K_gauge_fn f -> Gauge (try !f () with _ -> 0)
    | K_histogram h -> Histogram (snapshot_histogram h)
  in
  { name = m.m_name; labels = m.m_labels; help = m.m_help; value }

let snapshot () =
  let metrics =
    Mutex.lock registry_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
    Hashtbl.fold (fun _ m acc -> m :: acc) registry []
  in
  let metrics =
    List.sort
      (fun a b ->
        match String.compare a.m_name b.m_name with
        | 0 -> compare a.m_labels b.m_labels
        | c -> c)
      metrics
  in
  (* Pull gauges are evaluated outside the registry mutex so a pull
     function taking its own lock cannot deadlock against a concurrent
     registration from the thread holding that lock. *)
  List.map sample_of_metric metrics

let registered () =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) @@ fun () ->
  Hashtbl.length registry

(* -- Prometheus text format ------------------------------------------- *)

(* HELP text escapes only backslash and line feed (quotes stay raw) *)
let escape_help buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf {|\\|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    s

let escape_label_value buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf {|\\|}
      | '"' -> Buffer.add_string buf {|\"|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    s

let add_labels buf labels =
  match labels with
  | [] -> ()
  | _ ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape_label_value buf v;
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let add_bucket_line buf name labels ~le count =
  Buffer.add_string buf name;
  Buffer.add_string buf "_bucket";
  add_labels buf (labels @ [ ("le", le) ]);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int count);
  Buffer.add_char buf '\n'

let to_prometheus () =
  let samples = snapshot () in
  let buf = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun s ->
      let kind =
        match s.value with
        | Counter _ -> "counter"
        | Gauge _ -> "gauge"
        | Histogram _ -> "histogram"
      in
      if s.name <> !last_family then begin
        last_family := s.name;
        if s.help <> "" then begin
          Buffer.add_string buf "# HELP ";
          Buffer.add_string buf s.name;
          Buffer.add_char buf ' ';
          escape_help buf s.help;
          Buffer.add_char buf '\n'
        end;
        Buffer.add_string buf "# TYPE ";
        Buffer.add_string buf s.name;
        Buffer.add_char buf ' ';
        Buffer.add_string buf kind;
        Buffer.add_char buf '\n'
      end;
      match s.value with
      | Counter v | Gauge v ->
        Buffer.add_string buf s.name;
        add_labels buf s.labels;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int v);
        Buffer.add_char buf '\n'
      | Histogram h ->
        Array.iter
          (fun (bound, count) ->
            add_bucket_line buf s.name s.labels ~le:(float_repr bound) count)
          h.buckets;
        add_bucket_line buf s.name s.labels ~le:"+Inf" h.inf_count;
        Buffer.add_string buf s.name;
        Buffer.add_string buf "_sum";
        add_labels buf s.labels;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Printf.sprintf "%.9g" h.sum);
        Buffer.add_char buf '\n';
        Buffer.add_string buf s.name;
        Buffer.add_string buf "_count";
        add_labels buf s.labels;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int h.count);
        Buffer.add_char buf '\n')
    samples;
  Buffer.contents buf
