(** Process-wide metrics registry: counters, gauges and fixed-bucket
    histograms, exposable as Prometheus text format or as structured
    samples.

    The registry is global on purpose: instrumentation sites all over
    the tree (search, server, journal) register their metrics at module
    initialisation and update them with plain [Atomic] operations, so
    the hot-path cost of an update is one atomic add and the cost when
    a subsystem is unused is zero.  Registration is idempotent: asking
    for an already-registered name/label pair returns the existing
    metric, so libraries and their tests can both name the same
    counter.  Values are monotonic for counters and never reset — see
    the [stats] op contract in [Protocol]. *)

type counter
type gauge
type histogram

(** [counter ?help ?labels name] registers (or finds) a counter.
    Raises [Invalid_argument] on a malformed metric or label name, or
    if [name] is already registered as a different metric kind. *)
val counter : ?help:string -> ?labels:(string * string) list -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** Set-table gauge for values owned by the instrumentation site. *)
val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge

val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** [gauge_fn name f] registers a pull gauge: [f] is evaluated at
    snapshot/exposition time.  Re-registering replaces the function —
    the newest owner of the underlying state (e.g. the latest server
    instance in a test process) wins.  [f] must not call back into the
    registry. *)
val gauge_fn : ?help:string -> ?labels:(string * string) list -> string -> (unit -> int) -> unit

(** Histograms record durations in seconds into fixed log-scale
    buckets ([bucket_bounds]), so observation is allocation-free and
    merge-free: one atomic add per bucket plus a running sum. *)
val histogram : ?help:string -> ?labels:(string * string) list -> string -> histogram

val observe : histogram -> float -> unit

(** Convenience: observe the elapsed time of [f] in seconds. *)
val time : histogram -> (unit -> 'a) -> 'a

(** Upper bounds (in seconds) of the finite histogram buckets, in
    increasing order: [1e-6 * 4^i] for [i = 0..12], i.e. 1µs up to
    ~16.8s.  A final implicit [+Inf] bucket catches the rest. *)
val bucket_bounds : float array

(** Cumulative bucket counts (one per [bucket_bounds] entry, plus the
    [+Inf] bucket last), total count and sum of observations. *)
type histogram_snapshot = {
  buckets : (float * int) array;  (** (upper bound, cumulative count)*)
  inf_count : int;
  count : int;
  sum : float;
}

type value =
  | Counter of int
  | Gauge of int
  | Histogram of histogram_snapshot

type sample = {
  name : string;
  labels : (string * string) list;
  help : string;
  value : value;
}

(** Consistent-enough snapshot of every registered metric, sorted by
    name then labels.  Pull gauges are evaluated here; an exception
    from a pull function yields 0 rather than poisoning the scrape. *)
val snapshot : unit -> sample list

(** Prometheus text exposition format (version 0.0.4): one
    [# HELP]/[# TYPE] header per metric family followed by its
    samples; histograms expand to [_bucket]/[_sum]/[_count]. *)
val to_prometheus : unit -> string

(** Number of registered metric families+label combinations (testing). *)
val registered : unit -> int
