(* Aggregate keyed by (level index, atom name): a UCQ decide runs one
   search per disjunct, and disjuncts may instantiate different atoms
   at the same depth — keeping the name in the key keeps the rows
   honest instead of summing unrelated atoms. *)

type level_key = { k_index : int; k_name : string }

type level_cell = { mutable c_steps : int; mutable c_prunes : int }

type t = {
  mutex : Mutex.t;
  levels : (level_key, level_cell) Hashtbl.t;
  constraints : (string, int ref) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  mutable notes : (string * string) list;
}

let create () =
  {
    mutex = Mutex.create ();
    levels = Hashtbl.create 16;
    constraints = Hashtbl.create 8;
    counters = Hashtbl.create 8;
    notes = [];
  }

type search = {
  owner : t;
  names : string array;
  steps : int array;
  prunes : int array;
  (* per-constraint prune counts stay a small assoc list: a search
     rarely sees more than a handful of distinct pruning constraints *)
  mutable by_cc : (string * int ref) list;
}

let start_search owner ~names =
  let n = Array.length names in
  { owner; names; steps = Array.make n 0; prunes = Array.make n 0; by_cc = [] }

let step sr i = sr.steps.(i) <- sr.steps.(i) + 1

let prune sr i cc =
  sr.prunes.(i) <- sr.prunes.(i) + 1;
  match cc with
  | None -> ()
  | Some name -> (
    match List.assoc_opt name sr.by_cc with
    | Some r -> incr r
    | None -> sr.by_cc <- (name, ref 1) :: sr.by_cc)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let add_counter tbl name n =
  match Hashtbl.find_opt tbl name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl name (ref n)

let finish_search t sr =
  locked t @@ fun () ->
  Array.iteri
    (fun i name ->
      if sr.steps.(i) <> 0 || sr.prunes.(i) <> 0 then begin
        let key = { k_index = i; k_name = name } in
        let cell =
          match Hashtbl.find_opt t.levels key with
          | Some c -> c
          | None ->
            let c = { c_steps = 0; c_prunes = 0 } in
            Hashtbl.replace t.levels key c;
            c
        in
        cell.c_steps <- cell.c_steps + sr.steps.(i);
        cell.c_prunes <- cell.c_prunes + sr.prunes.(i)
      end)
    sr.names;
  List.iter (fun (name, r) -> add_counter t.constraints name !r) sr.by_cc

let bump t name n = locked t @@ fun () -> add_counter t.counters name n

let note t k v =
  locked t @@ fun () ->
  t.notes <- (k, v) :: List.remove_assoc k t.notes

type level_row = {
  lv_index : int;
  lv_name : string;
  lv_steps : int;
  lv_prunes : int;
}

type snapshot = {
  levels : level_row list;
  constraints : (string * int) list;
  counters : (string * int) list;
  notes : (string * string) list;
}

let sorted_counts tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  locked t @@ fun () ->
  let levels =
    Hashtbl.fold
      (fun k c acc ->
        { lv_index = k.k_index; lv_name = k.k_name; lv_steps = c.c_steps;
          lv_prunes = c.c_prunes }
        :: acc)
      t.levels []
    |> List.sort (fun a b ->
           match compare a.lv_index b.lv_index with
           | 0 -> String.compare a.lv_name b.lv_name
           | c -> c)
  in
  {
    levels;
    constraints = sorted_counts t.constraints;
    counters = sorted_counts t.counters;
    notes = List.sort (fun (a, _) (b, _) -> String.compare a b) t.notes;
  }

let counts_as_steps name =
  let suffix = "_steps" in
  let n = String.length name and m = String.length "_steps" in
  n >= m && String.sub name (n - m) m = suffix

let attributed_steps snap =
  List.fold_left (fun acc row -> acc + row.lv_steps) 0 snap.levels
  + List.fold_left
      (fun acc (name, v) -> if counts_as_steps name then acc + v else acc)
      0 snap.counters
