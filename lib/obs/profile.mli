(** Request-scoped explain profiles.

    A {!t} accumulates, for one decide request, where the budgeted
    search steps went: per search level (one level per tableau atom
    instantiated, keyed by level index and atom relation), which
    containment constraint pruned each cut branch, and a set of named
    auxiliary counters for tick sites outside the valuation search
    (candidate pools, witness growth, e2 nodes).

    The accumulator is shared across the worker domains of a parallel
    search: each worker records into a private {!search} handle (plain
    mutable arrays, no synchronisation on the hot path) and merges it
    into the aggregate under the profile's own mutex when its search
    finishes.  Because the parallel tree is node-for-node the
    sequential tree, the merged totals equal the sequential ones.

    Everything here is optional plumbing: deciders take a
    [?profile:t] and the per-candidate cost when no profile is
    attached is a single [match] on the option — no allocation. *)

type t

val create : unit -> t

(** {2 Per-search recording (valuation search)} *)

type search
(** One search invocation's private recorder: cheap int-array bumps,
    single-owner, merged on {!finish_search}. *)

val start_search : t -> names:string array -> search
(** [names.(i)] labels level [i] — the relation of the atom
    instantiated at that depth of the search plan. *)

val step : search -> int -> unit
(** One candidate instantiation at level [i] (mirror every
    [Budget.tick] of the search with one [step]). *)

val prune : search -> int -> string option -> unit
(** A branch cut at level [i]; the constraint name when the checker
    identified which containment constraint rejected the extension. *)

val finish_search : t -> search -> unit
(** Fold the search's counters into the aggregate (thread-safe). *)

(** {2 Named counters and notes} *)

val bump : t -> string -> int -> unit
(** Add to a named counter.  By convention counters whose name ends in
    ["_steps"] are tick sites outside the valuation search and count
    toward {!attributed_steps}. *)

val note : t -> string -> string -> unit
(** Attach a key/value annotation (checker kind, search mode, ...);
    last write wins. *)

(** {2 Reading} *)

type level_row = {
  lv_index : int;
  lv_name : string;  (** atom relation at this depth *)
  lv_steps : int;  (** candidate fan-out: instantiations tried *)
  lv_prunes : int;  (** branches the constraint check cut here *)
}

type snapshot = {
  levels : level_row list;  (** by level index, then name *)
  constraints : (string * int) list;  (** cc name -> prunes, by name *)
  counters : (string * int) list;  (** by name *)
  notes : (string * string) list;  (** by key *)
}

val snapshot : t -> snapshot
(** A deterministic (sorted) copy of the aggregate so far. *)

val attributed_steps : snapshot -> int
(** Steps the profile can attribute: the sum of every level's
    [lv_steps] plus every counter ending in ["_steps"].  Compare
    against [Budget.steps] to bound what the profile missed. *)
