type event = {
  seq : int;
  t_us : int;
  kind : string;
  req_id : string;
  conn : int;
  detail : string;
}

type ring = { slots : event option Atomic.t array; cursor : int Atomic.t }

let make_ring capacity =
  { slots = Array.init capacity (fun _ -> Atomic.make None);
    cursor = Atomic.make 0 }

let ring = Atomic.make (make_ring 512)

let set_capacity n =
  let n = max 16 n in
  Atomic.set ring (make_ring n)

let now_us () = Int64.to_int (Int64.div (Monotonic_clock.now ()) 1000L)

let record ~kind ?(req_id = "") ?(conn = -1) detail =
  let r = Atomic.get ring in
  let seq = Atomic.fetch_and_add r.cursor 1 in
  let ev = { seq; t_us = now_us (); kind; req_id; conn; detail } in
  Atomic.set r.slots.(seq mod Array.length r.slots) (Some ev)

let recorded () = Atomic.get (Atomic.get ring).cursor

let events () =
  let r = Atomic.get ring in
  Array.to_list r.slots
  |> List.filter_map Atomic.get
  |> List.sort (fun a b -> compare a.seq b.seq)

(* Same escaping as Trace: compatible with [Ric_text.Json.of_string]
   so dumps round-trip through the project's own parser. *)
let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf {|\"|}
      | '\\' -> Buffer.add_string buf {|\\|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | '\r' -> Buffer.add_string buf {|\r|}
      | '\t' -> Buffer.add_string buf {|\t|}
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let event_line buf ev =
  Buffer.add_string buf "{\"seq\":";
  Buffer.add_string buf (string_of_int ev.seq);
  Buffer.add_string buf ",\"t_us\":";
  Buffer.add_string buf (string_of_int ev.t_us);
  Buffer.add_string buf ",\"kind\":";
  add_json_string buf ev.kind;
  if ev.req_id <> "" then begin
    Buffer.add_string buf ",\"req_id\":";
    add_json_string buf ev.req_id
  end;
  if ev.conn >= 0 then begin
    Buffer.add_string buf ",\"conn\":";
    Buffer.add_string buf (string_of_int ev.conn)
  end;
  Buffer.add_string buf ",\"detail\":";
  add_json_string buf ev.detail;
  Buffer.add_string buf "}\n"

let dump path =
  let evs = events () in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  let buf = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Buffer.clear buf;
      event_line buf ev;
      Buffer.output_buffer oc buf)
    evs;
  flush oc;
  List.length evs
