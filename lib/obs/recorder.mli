(** The crash flight recorder: a fixed-size in-memory ring of recent
    request / worker / shed / crash events, always on, cheap enough to
    leave recording under full load, and dumped as JSONL only when
    something goes wrong (worker quarantine, fatal exit, SIGUSR1, or a
    [dump] protocol op) — so post-mortems do not depend on having span
    tracing pre-enabled.

    Writers are lock-free: one atomic fetch-and-add claims a slot, one
    pointer store publishes the immutable event.  A dump that races a
    wrap-around may observe a slot from either lap — both are real
    events; the per-event sequence number keeps the ordering honest.

    The ring is process-global (like the {!Metrics} registry): the
    daemon is one process and every layer can record without plumbing
    a handle through the stack. *)

type event = {
  seq : int;  (** monotonically increasing claim order *)
  t_us : int;  (** monotonic clock, microseconds *)
  kind : string;  (** "request", "reply", "shed", "crash", "quarantine", "signal", ... *)
  req_id : string;  (** correlation id, [""] when unknown *)
  conn : int;  (** connection number, [-1] when not connection-bound *)
  detail : string;
}

val set_capacity : int -> unit
(** Resize (and clear) the ring; default 512 events.  Clamped to
    [>= 16].  Not safe against concurrent writers — call it at
    startup, before serving. *)

val record : kind:string -> ?req_id:string -> ?conn:int -> string -> unit
(** Append one event (the positional argument is [detail]). *)

val events : unit -> event list
(** The surviving events, oldest first. *)

val recorded : unit -> int
(** Total events ever recorded (not just the surviving window). *)

val dump : string -> int
(** Write the surviving events to [path] as JSON lines (one event per
    line, oldest first) and return how many were written.  Overwrites.
    @raise Sys_error when the file cannot be written. *)
