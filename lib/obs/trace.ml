type attr = A_int of int | A_str of string | A_bool of bool

type span = {
  id : int;
  parent : int;
  span_name : string;
  start_ns : int64;
  mutable attrs : (string * attr) list;  (* reversed; single-owner *)
}

type sink = { oc : out_channel; sink_mutex : Mutex.t; written : int Atomic.t }

let sink : sink option Atomic.t = Atomic.make None
let enabled () = Atomic.get sink <> None
let null = { id = 0; parent = 0; span_name = ""; start_ns = 0L; attrs = [] }
let next_id = Atomic.make 1

(* Innermost live span id, per domain: parallel search children get
   their own stacks, so sibling branches do not adopt each other. *)
let current : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let close () =
  match Atomic.exchange sink None with
  | None -> ()
  | Some s ->
    Mutex.lock s.sink_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.sink_mutex) @@ fun () ->
    close_out_noerr s.oc

let open_file path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  close ();
  Atomic.set sink
    (Some { oc; sink_mutex = Mutex.create (); written = Atomic.make 0 })

let start ?parent name =
  match Atomic.get sink with
  | None -> null
  | Some _ ->
    let cur = Domain.DLS.get current in
    let parent = match parent with Some p -> p.id | None -> !cur in
    let id = Atomic.fetch_and_add next_id 1 in
    cur := id;
    { id; parent; span_name = name; start_ns = Monotonic_clock.now (); attrs = [] }

let set_int sp k v = if sp.id <> 0 then sp.attrs <- (k, A_int v) :: sp.attrs
let set_str sp k v = if sp.id <> 0 then sp.attrs <- (k, A_str v) :: sp.attrs
let set_bool sp k v = if sp.id <> 0 then sp.attrs <- (k, A_bool v) :: sp.attrs

(* Escaping kept compatible with [Ric_text.Json.of_string] so trace
   lines round-trip through the project's own parser. *)
let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf {|\"|}
      | '\\' -> Buffer.add_string buf {|\\|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | '\r' -> Buffer.add_string buf {|\r|}
      | '\t' -> Buffer.add_string buf {|\t|}
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let finish sp =
  if sp.id <> 0 then begin
    let end_ns = Monotonic_clock.now () in
    let cur = Domain.DLS.get current in
    if !cur = sp.id then cur := sp.parent;
    match Atomic.get sink with
    | None -> ()
    | Some s ->
      let buf = Buffer.create 160 in
      Buffer.add_string buf "{\"id\":";
      Buffer.add_string buf (string_of_int sp.id);
      Buffer.add_string buf ",\"parent\":";
      Buffer.add_string buf (string_of_int sp.parent);
      Buffer.add_string buf ",\"name\":";
      add_json_string buf sp.span_name;
      Buffer.add_string buf ",\"start_us\":";
      Buffer.add_string buf
        (Int64.to_string (Int64.div sp.start_ns 1000L));
      Buffer.add_string buf ",\"dur_us\":";
      Buffer.add_string buf
        (Int64.to_string (Int64.div (Int64.sub end_ns sp.start_ns) 1000L));
      Buffer.add_string buf ",\"attrs\":{";
      (* attrs are consed newest-first; emitting in that order and
         skipping keys already seen makes the last write win *)
      let seen = ref [] in
      let emitted = ref 0 in
      List.iter
        (fun (k, v) ->
          if not (List.mem k !seen) then begin
            seen := k :: !seen;
            if !emitted > 0 then Buffer.add_char buf ',';
            incr emitted;
            add_json_string buf k;
            Buffer.add_char buf ':';
            match v with
            | A_int n -> Buffer.add_string buf (string_of_int n)
            | A_bool b -> Buffer.add_string buf (string_of_bool b)
            | A_str str -> add_json_string buf str
          end)
        sp.attrs;
      Buffer.add_string buf "}}\n";
      Mutex.lock s.sink_mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock s.sink_mutex) @@ fun () ->
      Buffer.output_buffer s.oc buf;
      flush s.oc;
      Atomic.incr s.written
  end

let with_span name f =
  let sp = start name in
  match f sp with
  | v ->
    finish sp;
    v
  | exception e ->
    set_str sp "error" (Printexc.to_string e);
    finish sp;
    raise e

let spans_written () =
  match Atomic.get sink with None -> 0 | Some s -> Atomic.get s.written
