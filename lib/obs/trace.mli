(** Span-based tracing with monotonic timestamps, written as JSON
    lines.

    By default no sink is installed and every operation is a no-op on a
    preallocated null span — starting, annotating and finishing spans
    costs a single atomic load and allocates nothing, so instrumented
    hot paths are free in production.  [open_file] installs a
    process-wide JSONL sink; each finished span becomes one line

    {v {"id":12,"parent":3,"name":"rcdp.decide","start_us":812,
        "dur_us":5412,"attrs":{"mode":"seq","steps":9182}} v}

    with [start_us] on the process monotonic clock.  Parenting is
    implicit per domain: a span started while another is live on the
    same domain becomes its child, so a decide call's phase tree can be
    reconstructed offline (see [Ric_text.Trace_summary]). *)

type span

(** The always-available no-op span. *)
val null : span

(** Is a sink currently installed? *)
val enabled : unit -> bool

(** Install a JSONL sink, truncating [path].  Replaces (and closes)
    any previous sink.  Raises [Sys_error] if the file cannot be
    opened. *)
val open_file : string -> unit

(** Flush and close the current sink; subsequent spans are no-ops. *)
val close : unit -> unit

(** [start name] begins a span, child of the innermost live span on
    this domain ([parent] overrides).  Returns [null] when disabled. *)
val start : ?parent:span -> string -> span

(** Attach an attribute (last write wins at emission; no-op on [null]). *)
val set_int : span -> string -> int -> unit

val set_str : span -> string -> string -> unit
val set_bool : span -> string -> bool -> unit

(** Emit the span (no-op on [null]).  Must be called on the domain
    that started the span for parent bookkeeping to unwind. *)
val finish : span -> unit

(** [with_span name f] runs [f span] inside a span; exceptions are
    recorded as an ["error"] attribute and re-raised. *)
val with_span : string -> (span -> 'a) -> 'a

(** Spans written since the sink was opened (testing/diagnostics). *)
val spans_written : unit -> int
