open Ric_relational

type t = {
  rel : string;
  args : Term.t list;
}

let make rel args = { rel; args }

let arity a = List.length a.args

let vars a =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (function
      | Term.Var x ->
        if Hashtbl.mem seen x then None
        else begin
          Hashtbl.add seen x ();
          Some x
        end
      | Term.Const _ -> None)
    a.args

let constants a =
  List.filter_map
    (function
      | Term.Const v -> Some v
      | Term.Var _ -> None)
    a.args
  |> List.sort_uniq Value.compare

let apply subst a =
  let args =
    List.map
      (fun t ->
        match t with
        | Term.Var x -> (match subst x with Some t' -> t' | None -> t)
        | Term.Const _ -> t)
      a.args
  in
  { a with args }

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c else List.compare Term.compare a.args b.args

let equal a b = compare a b = 0

let pp ppf a =
  Format.fprintf ppf "%s(%a)" a.rel
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Term.pp)
    a.args
