(** Relation atoms [R(t1, ..., tk)]. *)

open Ric_relational

type t = {
  rel : string;
  args : Term.t list;
}

val make : string -> Term.t list -> t

val arity : t -> int

val vars : t -> string list
(** Variables in order of first occurrence, deduplicated. *)

val constants : t -> Value.t list

val apply : (string -> Term.t option) -> t -> t
(** [apply subst a] replaces each variable [x] by [subst x] when
    defined. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
