open Ric_relational

type t = {
  head : Term.t list;
  atoms : Atom.t list;
  eqs : (Term.t * Term.t) list;
  neqs : (Term.t * Term.t) list;
}

let make ?(eqs = []) ?(neqs = []) ~head atoms = { head; atoms; eqs; neqs }
let boolean ?(eqs = []) ?(neqs = []) atoms = { head = []; atoms; eqs; neqs }

let term_vars terms =
  List.filter_map
    (function
      | Term.Var x -> Some x
      | Term.Const _ -> None)
    terms

let vars q =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let note x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      out := x :: !out
    end
  in
  let note_terms ts = List.iter note (term_vars ts) in
  note_terms q.head;
  List.iter (fun (a : Atom.t) -> note_terms a.args) q.atoms;
  List.iter (fun (s, t) -> note_terms [ s; t ]) q.eqs;
  List.iter (fun (s, t) -> note_terms [ s; t ]) q.neqs;
  List.rev !out

let head_vars q = List.sort_uniq String.compare (term_vars q.head)

let constants q =
  let of_terms ts =
    List.filter_map
      (function
        | Term.Const c -> Some c
        | Term.Var _ -> None)
      ts
  in
  of_terms q.head
  @ List.concat_map (fun (a : Atom.t) -> of_terms a.args) q.atoms
  @ List.concat_map (fun (s, t) -> of_terms [ s; t ]) q.eqs
  @ List.concat_map (fun (s, t) -> of_terms [ s; t ]) q.neqs
  |> List.sort_uniq Value.compare

let arity q = List.length q.head

let rename_vars f q =
  let tm = function
    | Term.Var x -> Term.Var (f x)
    | t -> t
  in
  let pair (s, t) = (tm s, tm t) in
  {
    head = List.map tm q.head;
    atoms = List.map (fun (a : Atom.t) -> { a with args = List.map tm a.args }) q.atoms;
    eqs = List.map pair q.eqs;
    neqs = List.map pair q.neqs;
  }

let rename_apart ~prefix q =
  let table = Hashtbl.create 16 in
  let counter = ref 0 in
  let f x =
    match Hashtbl.find_opt table x with
    | Some y -> y
    | None ->
      incr counter;
      let y = Printf.sprintf "%s%d" prefix !counter in
      Hashtbl.add table x y;
      y
  in
  rename_vars f q

(* ------------------------------------------------------------------ *)
(* Equality elimination: union-find over the terms of [eqs].  Returns
   a substitution (variable -> representative term) or [None] when two
   distinct constants are equated. *)

module Subst = Map.Make (String)

let eq_classes q =
  let parent : (string, Term.t) Hashtbl.t = Hashtbl.create 16 in
  let rec repr t =
    match t with
    | Term.Const _ -> t
    | Term.Var x ->
      (match Hashtbl.find_opt parent x with
       | None -> t
       | Some p ->
         let r = repr p in
         Hashtbl.replace parent x r;
         r)
  in
  let contradiction = ref false in
  let union s t =
    let rs = repr s and rt = repr t in
    match rs, rt with
    | Term.Const a, Term.Const b -> if not (Value.equal a b) then contradiction := true
    | Term.Var x, (_ as r) | (_ as r), Term.Var x ->
      if not (Term.equal (Term.Var x) r) then Hashtbl.replace parent x r
  in
  List.iter (fun (s, t) -> union s t) q.eqs;
  if !contradiction then None
  else begin
    let subst = ref Subst.empty in
    List.iter
      (fun x ->
        let r = repr (Term.Var x) in
        if not (Term.equal r (Term.Var x)) then subst := Subst.add x r !subst)
      (vars q);
    Some !subst
  end

type norm = {
  n_head : Term.t list;
  n_atoms : Atom.t list;
  n_neqs : (Term.t * Term.t) list;
  (* neqs already filtered: trivially-true constant pairs removed *)
}

(* [normalize q] applies equality elimination; [None] when statically
   unsatisfiable (equality or inequality contradiction on ground
   terms). *)
let normalize q : norm option =
  match eq_classes q with
  | None -> None
  | Some subst ->
    let tm = function
      | Term.Var x as t -> (match Subst.find_opt x subst with Some r -> r | None -> t)
      | t -> t
    in
    (* Preserve atom identity when the substitution leaves the argument
       list untouched, so physically-shared duplicate atoms stay shared
       through normalization. *)
    let atoms =
      List.map
        (fun (a : Atom.t) ->
          let args = List.map tm a.args in
          if List.for_all2 (fun t t' -> t == t') a.args args then a
          else { a with args })
        q.atoms
    in
    let head = List.map tm q.head in
    let rec filter_neqs acc = function
      | [] -> Some (List.rev acc)
      | (s, t) :: rest ->
        let s = tm s and t = tm t in
        (match s, t with
         | Term.Const a, Term.Const b ->
           if Value.equal a b then None else filter_neqs acc rest
         | _ ->
           if Term.equal s t then None (* x ≠ x *)
           else filter_neqs ((s, t) :: acc) rest)
    in
    (match filter_neqs [] q.neqs with
     | None -> None
     | Some neqs -> Some { n_head = head; n_atoms = atoms; n_neqs = neqs })

let atom_vars atoms =
  List.concat_map Atom.vars atoms |> List.sort_uniq String.compare

let check_safe n =
  let avars = atom_vars n.n_atoms in
  let covered = function
    | Term.Const _ -> true
    | Term.Var x -> List.mem x avars
  in
  let ok =
    List.for_all covered n.n_head
    && List.for_all (fun (s, t) -> covered s && covered t) n.n_neqs
  in
  if not ok then
    invalid_arg "Cq.eval: unsafe query (head/inequality variable not in any atom)"

let eval db q =
  match normalize q with
  | None -> Relation.empty
  | Some n ->
    check_safe n;
    let lookup rel = try Database.relation db rel with Not_found -> Relation.empty in
    let out = ref Relation.empty in
    let (_ : bool) =
      Match_engine.solve ~lookup ~neqs:n.n_neqs n.n_atoms (fun v ->
          (match Valuation.tuple_of_terms v n.n_head with
           | Some t -> out := Relation.add t !out
           | None -> assert false);
          false)
    in
    !out

let holds db q =
  match normalize q with
  | None -> false
  | Some n ->
    check_safe n;
    let lookup rel = try Database.relation db rel with Not_found -> Relation.empty in
    Match_engine.solve ~lookup ~neqs:n.n_neqs n.n_atoms (fun _ -> true)

(* ------------------------------------------------------------------ *)
(* Effective variable domains. *)

let combine_domains d1 d2 =
  match d1, d2 with
  | Domain.Infinite, d | d, Domain.Infinite -> d
  | Domain.Finite a, Domain.Finite b ->
    Domain.Finite (List.filter (fun v -> List.exists (Value.equal v) b) a)

let var_domains sch q =
  let table : (string, Domain.t) Hashtbl.t = Hashtbl.create 16 in
  let note x d =
    match Hashtbl.find_opt table x with
    | None -> Hashtbl.replace table x d
    | Some d0 -> Hashtbl.replace table x (combine_domains d0 d)
  in
  List.iter
    (fun (a : Atom.t) ->
      match Schema.find sch a.rel with
      | rs ->
        List.iteri
          (fun i t ->
            match t with
            | Term.Var x -> note x (Schema.attr_domain rs i)
            | Term.Const _ -> ())
          a.args
      | exception Not_found -> ())
    q.atoms;
  List.map
    (fun x ->
      match Hashtbl.find_opt table x with
      | Some d -> (x, d)
      | None -> (x, Domain.Infinite))
    (vars q)

(* ------------------------------------------------------------------ *)
(* Exact satisfiability: backtrack over finite-domain variables, give
   infinite-domain variables fresh pairwise-distinct values. *)

let satisfiable sch q =
  match normalize q with
  | None -> false
  | Some n ->
    let q' = { eqs = []; head = n.n_head; atoms = n.n_atoms; neqs = n.n_neqs } in
    let doms = var_domains sch q' in
    (* Fresh values: integers strictly larger than any integer constant
       mentioned anywhere, so they are distinct from all constants. *)
    let max_const =
      List.fold_left
        (fun m v ->
          match v with
          | Value.Int n -> max m n
          | Value.Str _ -> m)
        0 (constants q')
    in
    let fresh = ref max_const in
    let next_fresh () =
      incr fresh;
      Value.Int !fresh
    in
    let finite, infinite =
      List.partition (fun (_, d) -> Domain.is_finite d) doms
    in
    let candidate_lists =
      List.map
        (fun (x, d) ->
          match Domain.values d with
          | Some vs -> (x, vs)
          | None -> assert false)
        finite
    in
    Valuation.enumerate_iter candidate_lists (fun v ->
        let v =
          List.fold_left (fun v (x, _) -> Valuation.add x (next_fresh ()) v) v infinite
        in
        let neq_ok (s, t) =
          match Valuation.term_value v s, Valuation.term_value v t with
          | Some a, Some b -> not (Value.equal a b)
          | _ -> true
        in
        List.for_all neq_ok n.n_neqs)

(* ------------------------------------------------------------------ *)
(* Chandra–Merlin containment for inequality-free CQs: q1 ⊆ q2 iff the
   head of q2 maps onto the head of q1 under some homomorphism from
   q2's canonical instance evaluation on q1's frozen body. *)

let frozen_schema sch q =
  (* Relax finite domains to infinite so frozen constants conform. *)
  let rels =
    List.sort_uniq String.compare (List.map (fun (a : Atom.t) -> a.Atom.rel) q.atoms)
  in
  Schema.make
    (List.map
       (fun name ->
         let rs = Schema.find sch name in
         Schema.relation name
           (List.map (fun (a : Schema.attribute) -> Schema.attribute a.attr_name) rs.attrs))
       rels)

let freeze sch q =
  (* canonical database: each variable becomes a distinct fresh
     constant *)
  match normalize q with
  | None -> None
  | Some n ->
    let table = Hashtbl.create 16 in
    let counter = ref 0 in
    let freeze_term = function
      | Term.Const c -> c
      | Term.Var x ->
        (match Hashtbl.find_opt table x with
         | Some c -> c
         | None ->
           incr counter;
           let c = Value.Str (Printf.sprintf "_frz%d" !counter) in
           Hashtbl.add table x c;
           c)
    in
    let db =
      List.fold_left
        (fun db (a : Atom.t) ->
          let tuple = Tuple.make (List.map freeze_term a.args) in
          let rel = try Database.relation db a.rel with Not_found -> Relation.empty in
          Database.set_relation db a.rel (Relation.add tuple rel))
        (Database.empty (frozen_schema sch q))
        n.n_atoms
    in
    let head_tuple = Tuple.make (List.map freeze_term n.n_head) in
    Some (db, head_tuple)

let contained_in sch q1 q2 =
  if q1.neqs <> [] || q2.neqs <> [] then
    invalid_arg "Cq.contained_in: only inequality-free CQs are supported";
  if List.length q1.head <> List.length q2.head then false
  else
    match freeze sch q1 with
    | None -> true (* q1 unsatisfiable: contained in anything *)
    | Some (frozen, head_tuple) -> Relation.mem head_tuple (eval frozen q2)

let equivalent sch q1 q2 = contained_in sch q1 q2 && contained_in sch q2 q1

let minimize sch q =
  if q.neqs <> [] then q
  else
    match normalize q with
    | None -> q
    | Some n ->
      let base = { head = n.n_head; atoms = n.n_atoms; eqs = []; neqs = [] } in
      (* dropping an atom relaxes the query, so [smaller ⊆ q] is the
         only direction to check; head variables must stay covered *)
      let head_vars = List.sort_uniq String.compare (term_vars base.head) in
      let covered atoms =
        let avars = List.concat_map Atom.vars atoms in
        List.for_all (fun x -> List.mem x avars) head_vars
      in
      let rec shrink atoms =
        let try_drop a =
          let rest = List.filter (fun x -> not (x == a)) atoms in
          if rest <> [] && covered rest && contained_in sch { base with atoms = rest } base
          then Some rest
          else None
        in
        match List.find_map try_drop atoms with
        | Some rest -> shrink rest
        | None -> atoms
      in
      { base with atoms = shrink base.atoms }

let pp_pair op ppf (s, t) = Format.fprintf ppf "%a %s %a" Term.pp s op Term.pp t

let pp ppf q =
  let items =
    List.map (fun a ppf -> Atom.pp ppf a) q.atoms
    @ List.map (fun e ppf -> pp_pair "=" ppf e) q.eqs
    @ List.map (fun e ppf -> pp_pair "≠" ppf e) q.neqs
  in
  Format.fprintf ppf "(%a) ← %a"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Term.pp)
    q.head
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ∧ ")
       (fun ppf f -> f ppf))
    items
