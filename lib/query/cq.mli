(** Conjunctive queries with equality and inequality (Section 2.1,
    language (a)).

    A CQ is built from relation atoms, [=] and [≠], closed under
    conjunction and existential quantification.  We keep the flat
    normal form: a head (output terms), a bag of relation atoms, and
    lists of equalities and inequalities; all non-head variables are
    implicitly existential.

    Safety: after equality elimination, every variable occurring in
    the head or in an inequality must also occur in a relation atom
    (range restriction).  {!eval} raises [Invalid_argument] otherwise. *)

open Ric_relational

type t = {
  head : Term.t list;
  atoms : Atom.t list;
  eqs : (Term.t * Term.t) list;
  neqs : (Term.t * Term.t) list;
}

val make :
  ?eqs:(Term.t * Term.t) list ->
  ?neqs:(Term.t * Term.t) list ->
  head:Term.t list ->
  Atom.t list ->
  t

val boolean :
  ?eqs:(Term.t * Term.t) list ->
  ?neqs:(Term.t * Term.t) list ->
  Atom.t list ->
  t
(** A Boolean query: empty head; the answer is [{()}] or [∅]. *)

val vars : t -> string list
(** All variables, in order of first occurrence. *)

val head_vars : t -> string list

val constants : t -> Value.t list

val arity : t -> int
(** Head width. *)

val rename_vars : (string -> string) -> t -> t

val rename_apart : prefix:string -> t -> t
(** Rename every variable to [prefix ^ i], for combining queries
    without capture. *)

type norm = {
  n_head : Term.t list;
  n_atoms : Atom.t list;
  n_neqs : (Term.t * Term.t) list;
}
(** Equality-free form: the substitution induced by [eqs] has been
    applied, trivially-true inequalities dropped. *)

val normalize : t -> norm option
(** [None] when the equalities/inequalities are contradictory on
    ground terms (the query is unsatisfiable outright). *)

val eval : Database.t -> t -> Relation.t
(** Set semantics.  @raise Invalid_argument if unsafe (see above). *)

val holds : Database.t -> t -> bool
(** [holds d q] — is [eval d q] nonempty?  Short-circuits. *)

val var_domains : Schema.t -> t -> (string * Domain.t) list
(** Effective domain of each variable: finite if the variable occurs
    in any finite-domain column (intersection if several), infinite
    otherwise.  Variables not occurring in any atom are infinite. *)

val satisfiable : Schema.t -> t -> bool
(** Does some database make the query nonempty?  Decides exactly,
    honouring [=], [≠], and finite attribute domains (backtracking
    over finite-domain variables; fresh distinct values elsewhere). *)

val contained_in : Schema.t -> t -> t -> bool
(** Chandra–Merlin containment test [q1 ⊆ q2] for inequality-free
    CQs.  @raise Invalid_argument if either query has inequalities. *)

val minimize : Schema.t -> t -> t
(** Compute the core of an inequality-free CQ: drop atoms whose
    removal keeps the query equivalent (Chandra–Merlin).  Worth doing
    before the completeness deciders — their search is exponential in
    the number of tableau variables.  Queries with inequalities are
    returned unchanged. *)

val equivalent : Schema.t -> t -> t -> bool

val pp : Format.formatter -> t -> unit
