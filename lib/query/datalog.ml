open Ric_relational
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type literal =
  | Pos of Atom.t
  | Eq of Term.t * Term.t
  | Neq of Term.t * Term.t

type rule = {
  rule_head : Atom.t;
  rule_body : literal list;
}

type program = {
  rules : rule list;
  output : string;
}

(* A rule in evaluation form: equalities eliminated. *)
type norm_rule = {
  nr_head : Term.t list;
  nr_pred : string;
  nr_atoms : Atom.t list;
  nr_neqs : (Term.t * Term.t) list;
}

let normalize_rule r : norm_rule option =
  let cq =
    Cq.make
      ~eqs:
        (List.filter_map
           (function
             | Eq (s, t) -> Some (s, t)
             | _ -> None)
           r.rule_body)
      ~neqs:
        (List.filter_map
           (function
             | Neq (s, t) -> Some (s, t)
             | _ -> None)
           r.rule_body)
      ~head:r.rule_head.Atom.args
      (List.filter_map
         (function
           | Pos a -> Some a
           | _ -> None)
         r.rule_body)
  in
  match Cq.normalize cq with
  | None -> None
  | Some n ->
    Some
      {
        nr_head = n.Cq.n_head;
        nr_pred = r.rule_head.Atom.rel;
        nr_atoms = n.Cq.n_atoms;
        nr_neqs = n.Cq.n_neqs;
      }

let check_safe (nr : norm_rule) =
  let avars = SSet.of_list (List.concat_map Atom.vars nr.nr_atoms) in
  let covered = function
    | Term.Const _ -> true
    | Term.Var x -> SSet.mem x avars
  in
  if
    not
      (List.for_all covered nr.nr_head
      && List.for_all (fun (s, t) -> covered s && covered t) nr.nr_neqs)
  then invalid_arg "Datalog.rule: unsafe rule"

let rule head body =
  let r = { rule_head = head; rule_body = body } in
  (match normalize_rule r with
   | Some nr -> check_safe nr
   | None -> () (* contradictory rule never fires; harmless *));
  r

let program rules ~output =
  let arities : int SMap.t ref = ref SMap.empty in
  let note (a : Atom.t) =
    match SMap.find_opt a.rel !arities with
    | None -> arities := SMap.add a.rel (Atom.arity a) !arities
    | Some k ->
      if k <> Atom.arity a then
        invalid_arg (Printf.sprintf "Datalog.program: %S used with arities %d and %d" a.rel k (Atom.arity a))
  in
  List.iter
    (fun r ->
      note r.rule_head;
      List.iter
        (function
          | Pos a -> note a
          | Eq _ | Neq _ -> ())
        r.rule_body)
    rules;
  { rules; output }

let idb p =
  List.map (fun r -> r.rule_head.Atom.rel) p.rules |> List.sort_uniq String.compare

let constants p =
  List.concat_map
    (fun r ->
      Atom.constants r.rule_head
      @ List.concat_map
          (function
            | Pos a -> Atom.constants a
            | Eq (s, t) | Neq (s, t) ->
              List.filter_map
                (function
                  | Term.Const c -> Some c
                  | Term.Var _ -> None)
                [ s; t ])
          r.rule_body)
    p.rules
  |> List.sort_uniq Value.compare

type strategy = Naive | Seminaive

let delta_name n = "\xCE\x94" ^ n (* "Δ" ^ n; IDB names never start with Δ *)

(* Fire one normalized rule under [lookup]; add derived head tuples to
   [acc]. *)
let fire lookup nr acc =
  let out = ref acc in
  let (_ : bool) =
    Match_engine.solve ~lookup ~neqs:nr.nr_neqs nr.nr_atoms (fun v ->
        (match Valuation.tuple_of_terms v nr.nr_head with
         | Some t -> out := Relation.add t !out
         | None -> assert false);
        false)
  in
  !out

let fixpoint ~strategy db p =
  let idb_set = SSet.of_list (idb p) in
  let norm_rules = List.filter_map normalize_rule p.rules in
  let edb name = try Database.relation db name with Not_found -> Relation.empty in
  let state = ref SMap.empty in
  let current name =
    if SSet.mem name idb_set then
      match SMap.find_opt name !state with
      | Some r -> r
      | None -> Relation.empty
    else edb name
  in
  let rounds = ref 0 in
  (match strategy with
   | Naive ->
     let changed = ref true in
     while !changed do
       incr rounds;
       changed := false;
       List.iter
         (fun nr ->
           let derived = fire current nr Relation.empty in
           let old = current nr.nr_pred in
           let merged = Relation.union old derived in
           if not (Relation.equal merged old) then begin
             changed := true;
             state := SMap.add nr.nr_pred merged !state
           end)
         norm_rules
     done
   | Seminaive ->
     (* Round 0: fire every rule on the EDB alone (IDB empty). *)
     let deltas = ref SMap.empty in
     let set_delta name r = deltas := SMap.add name r !deltas in
     List.iter
       (fun nr ->
         let derived = fire current nr Relation.empty in
         if not (Relation.is_empty derived) then begin
           state := SMap.add nr.nr_pred (Relation.union (current nr.nr_pred) derived) !state;
           set_delta nr.nr_pred
             (Relation.union
                (Option.value ~default:Relation.empty (SMap.find_opt nr.nr_pred !deltas))
                derived)
         end)
       norm_rules;
     rounds := 1;
     let delta_of name = Option.value ~default:Relation.empty (SMap.find_opt name !deltas) in
     let continue = ref (not (SMap.is_empty !deltas)) in
     while !continue do
       incr rounds;
       let new_deltas = ref SMap.empty in
       List.iter
         (fun nr ->
           (* For each occurrence of an IDB atom, evaluate the rule
              with that occurrence restricted to the last delta. *)
           List.iteri
             (fun i (a : Atom.t) ->
               if SSet.mem a.rel idb_set && not (Relation.is_empty (delta_of a.rel)) then begin
                 let marked =
                   List.mapi
                     (fun j (b : Atom.t) ->
                       if j = i then { b with Atom.rel = delta_name b.rel } else b)
                     nr.nr_atoms
                 in
                 let lookup name =
                   if String.length name >= 2 && name.[0] = '\xCE' && name.[1] = '\x94'
                   then delta_of (String.sub name 2 (String.length name - 2))
                   else current name
                 in
                 let derived = fire lookup { nr with nr_atoms = marked } Relation.empty in
                 let fresh = Relation.diff derived (current nr.nr_pred) in
                 if not (Relation.is_empty fresh) then
                   new_deltas :=
                     SMap.add nr.nr_pred
                       (Relation.union
                          (Option.value ~default:Relation.empty
                             (SMap.find_opt nr.nr_pred !new_deltas))
                          fresh)
                       !new_deltas
               end)
             nr.nr_atoms)
         norm_rules;
       SMap.iter
         (fun name fresh -> state := SMap.add name (Relation.union (current name) fresh) !state)
         !new_deltas;
       deltas := !new_deltas;
       continue := not (SMap.is_empty !new_deltas)
     done);
  (!state, !rounds)

let eval_all ?(strategy = Seminaive) db p =
  let state, _ = fixpoint ~strategy db p in
  List.map
    (fun name -> (name, Option.value ~default:Relation.empty (SMap.find_opt name state)))
    (idb p)

let eval ?(strategy = Seminaive) db p =
  if List.mem p.output (idb p) then List.assoc p.output (eval_all ~strategy db p)
  else (try Database.relation db p.output with Not_found -> Relation.empty)

let holds ?strategy db p = not (Relation.is_empty (eval ?strategy db p))

let iterations db p =
  let _, rounds = fixpoint ~strategy:Seminaive db p in
  rounds

let transitive_closure ~edge ~out =
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  program
    [
      rule (Atom.make out [ x; y ]) [ Pos (Atom.make edge [ x; y ]) ];
      rule (Atom.make out [ x; y ]) [ Pos (Atom.make edge [ x; z ]); Pos (Atom.make out [ z; y ]) ];
    ]
    ~output:out

let pp_literal ppf = function
  | Pos a -> Atom.pp ppf a
  | Eq (s, t) -> Format.fprintf ppf "%a = %a" Term.pp s Term.pp t
  | Neq (s, t) -> Format.fprintf ppf "%a ≠ %a" Term.pp s Term.pp t

let pp_rule ppf r =
  Format.fprintf ppf "%a ← %a" Atom.pp r.rule_head
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_literal)
    r.rule_body

let pp ppf p =
  Format.fprintf ppf "output: %s@." p.output;
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_rule ppf p.rules
