(** Datalog (the paper's FP, Section 2.1 language (f)): rules
    [p(x̄) ← p1(x̄1), ..., pn(x̄n)] where each [pi] is a relation atom
    (EDB or IDB), an equality, or an inequality — ∃FO⁺ plus an
    inflational fixpoint.

    The program is positive, hence monotone, so the naive and
    semi-naive evaluations compute the unique least fixpoint; the
    semi-naive strategy is the default (see the [ablation] bench). *)

open Ric_relational

type literal =
  | Pos of Atom.t
  | Eq of Term.t * Term.t
  | Neq of Term.t * Term.t

type rule = {
  rule_head : Atom.t;
  rule_body : literal list;
}

type program = {
  rules : rule list;
  output : string;   (** the designated answer predicate *)
}

val rule : Atom.t -> literal list -> rule
(** @raise Invalid_argument if the rule is unsafe: every variable of
    the head and of each inequality must occur in a positive body
    atom (after equality elimination). *)

val program : rule list -> output:string -> program
(** @raise Invalid_argument if a predicate is used with two arities. *)

val idb : program -> string list
(** Predicates defined by rule heads, sorted. *)

val constants : program -> Value.t list

type strategy = Naive | Seminaive

val eval_all : ?strategy:strategy -> Database.t -> program -> (string * Relation.t) list
(** Least fixpoint of every IDB predicate over the given EDB. *)

val eval : ?strategy:strategy -> Database.t -> program -> Relation.t
(** Value of the output predicate at the fixpoint.  An output naming
    an EDB relation simply returns that relation. *)

val holds : ?strategy:strategy -> Database.t -> program -> bool

val iterations : Database.t -> program -> int
(** Number of rounds the semi-naive fixpoint needs — a convenient
    measure for benches. *)

val transitive_closure : edge:string -> out:string -> program
(** The classic binary transitive-closure program, used by Example 1.1
    (query [Q3] on [Manage]) and by the 2-head-DFA reduction. *)

val pp_rule : Format.formatter -> rule -> unit

val pp : Format.formatter -> program -> unit
