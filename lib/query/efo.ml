

type formula =
  | Atom of Atom.t
  | Eq of Term.t * Term.t
  | Neq of Term.t * Term.t
  | And of formula * formula
  | Or of formula * formula
  | Exists of string list * formula

type t = {
  head : Term.t list;
  body : formula;
}

let make ~head body = { head; body }

let tt = Eq (Term.int 0, Term.int 0)

let conj = function
  | [] -> tt
  | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let disj = function
  | [] -> invalid_arg "Efo.disj: empty disjunction"
  | f :: rest -> List.fold_left (fun acc g -> Or (acc, g)) f rest

let of_cq (q : Cq.t) =
  let lits =
    List.map (fun a -> Atom a) q.Cq.atoms
    @ List.map (fun (s, t) -> Eq (s, t)) q.Cq.eqs
    @ List.map (fun (s, t) -> Neq (s, t)) q.Cq.neqs
  in
  { head = q.Cq.head; body = conj lits }

(* Alpha-rename bound variables apart from free variables and from
   each other. *)
let rename_apart t =
  let counter = ref 0 in
  let module SMap = Map.Make (String) in
  let tm env = function
    | Term.Var x as v -> (match SMap.find_opt x env with Some y -> Term.Var y | None -> v)
    | c -> c
  in
  let rec go env = function
    | Atom a -> Atom (Atom.make a.Atom.rel (List.map (tm env) a.Atom.args))
    | Eq (s, u) -> Eq (tm env s, tm env u)
    | Neq (s, u) -> Neq (tm env s, tm env u)
    | And (f, g) -> And (go env f, go env g)
    | Or (f, g) -> Or (go env f, go env g)
    | Exists (xs, f) ->
      let env =
        List.fold_left
          (fun env x ->
            incr counter;
            SMap.add x (Printf.sprintf "_b%d_%s" !counter x) env)
          env xs
      in
      go env f
  in
  { t with body = go SMap.empty t.body }

(* DNF: a disjunct is (atoms, eqs, neqs). *)
type lits = {
  l_atoms : Atom.t list;
  l_eqs : (Term.t * Term.t) list;
  l_neqs : (Term.t * Term.t) list;
}

let empty_lits = { l_atoms = []; l_eqs = []; l_neqs = [] }

let merge a b =
  {
    l_atoms = a.l_atoms @ b.l_atoms;
    l_eqs = a.l_eqs @ b.l_eqs;
    l_neqs = a.l_neqs @ b.l_neqs;
  }

let rec dnf = function
  | Atom a -> [ { empty_lits with l_atoms = [ a ] } ]
  | Eq (s, t) ->
    if Term.equal s t then [ empty_lits ]
    else [ { empty_lits with l_eqs = [ (s, t) ] } ]
  | Neq (s, t) -> [ { empty_lits with l_neqs = [ (s, t) ] } ]
  | And (f, g) ->
    let df = dnf f and dg = dnf g in
    List.concat_map (fun a -> List.map (merge a) dg) df
  | Or (f, g) -> dnf f @ dnf g
  | Exists (_, f) -> dnf f (* binders already renamed apart *)

let to_ucq t =
  let t = rename_apart t in
  let disjuncts = dnf t.body in
  Ucq.make
    (List.map
       (fun l -> Cq.make ~eqs:l.l_eqs ~neqs:l.l_neqs ~head:t.head l.l_atoms)
       disjuncts)

let eval db t = Ucq.eval db (to_ucq t)
let holds db t = Ucq.holds db (to_ucq t)
let satisfiable sch t = Ucq.satisfiable sch (to_ucq t)

let vars t = Ucq.vars (to_ucq t)
let constants t = Ucq.constants (to_ucq t)
let disjunct_count t = List.length (to_ucq t)

let rec pp_formula ppf = function
  | Atom a -> Atom.pp ppf a
  | Eq (s, t) -> Format.fprintf ppf "%a = %a" Term.pp s Term.pp t
  | Neq (s, t) -> Format.fprintf ppf "%a ≠ %a" Term.pp s Term.pp t
  | And (f, g) -> Format.fprintf ppf "(%a ∧ %a)" pp_formula f pp_formula g
  | Or (f, g) -> Format.fprintf ppf "(%a ∨ %a)" pp_formula f pp_formula g
  | Exists (xs, f) ->
    Format.fprintf ppf "∃%a (%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_string)
      xs pp_formula f

let pp ppf t =
  Format.fprintf ppf "(%a) ← %a"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Term.pp)
    t.head pp_formula t.body
