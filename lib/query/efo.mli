(** Positive existential FO queries ∃FO⁺ (Section 2.1, language (c)):
    atomic formulas closed under [∧], [∨] and [∃].

    A query is a head together with a body formula; free body
    variables not in the head are implicitly existential (the paper's
    queries are closed except for the output).  Evaluation goes
    through the equivalent — possibly exponentially larger — UCQ, as
    in the paper's upper-bound proofs (Theorem 3.6(4)). *)

open Ric_relational

type formula =
  | Atom of Atom.t
  | Eq of Term.t * Term.t
  | Neq of Term.t * Term.t
  | And of formula * formula
  | Or of formula * formula
  | Exists of string list * formula

type t = {
  head : Term.t list;
  body : formula;
}

val make : head:Term.t list -> formula -> t

val conj : formula list -> formula
(** Right-nested conjunction; the empty list is the true formula
    (encoded as [Eq (c, c)] on a dummy constant). *)

val disj : formula list -> formula
(** @raise Invalid_argument on the empty list. *)

val of_cq : Cq.t -> t

val to_ucq : t -> Ucq.t
(** DNF expansion.  Bound variables are renamed apart first, so
    shadowing is handled; the result can be exponentially larger. *)

val eval : Database.t -> t -> Relation.t

val holds : Database.t -> t -> bool

val satisfiable : Schema.t -> t -> bool

val vars : t -> string list

val constants : t -> Value.t list

val disjunct_count : t -> int
(** Number of CQs in the DNF — the blow-up the complexity proofs dodge
    by guessing branches. *)

val pp : Format.formatter -> t -> unit
