open Ric_relational

type formula =
  | True
  | Atom of Atom.t
  | Eq of Term.t * Term.t
  | And of formula * formula
  | Or of formula * formula
  | Not of formula
  | Exists of string list * formula
  | Forall of string list * formula

type t = {
  head : Term.t list;
  body : formula;
}

module SSet = Set.Make (String)

let term_vars = function
  | Term.Var x -> SSet.singleton x
  | Term.Const _ -> SSet.empty

let rec fv = function
  | True -> SSet.empty
  | Atom a -> List.fold_left (fun s t -> SSet.union s (term_vars t)) SSet.empty a.Atom.args
  | Eq (s, t) -> SSet.union (term_vars s) (term_vars t)
  | And (f, g) | Or (f, g) -> SSet.union (fv f) (fv g)
  | Not f -> fv f
  | Exists (xs, f) | Forall (xs, f) -> SSet.diff (fv f) (SSet.of_list xs)

let free_vars f = SSet.elements (fv f)

let make ~head body =
  let head_vars =
    List.filter_map
      (function
        | Term.Var x -> Some x
        | Term.Const _ -> None)
      head
    |> SSet.of_list
  in
  let free = fv body in
  if not (SSet.subset free head_vars) then
    invalid_arg
      (Printf.sprintf "Fo.make: free variable %S is not a head variable"
         (SSet.choose (SSet.diff free head_vars)));
  { head; body }

let boolean body = make ~head:[] body

let neq s t = Not (Eq (s, t))

let conj = function
  | [] -> True
  | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let disj = function
  | [] -> Not True
  | f :: rest -> List.fold_left (fun acc g -> Or (acc, g)) f rest

let of_cq (q : Cq.t) =
  let lits =
    List.map (fun a -> Atom a) q.Cq.atoms
    @ List.map (fun (s, t) -> Eq (s, t)) q.Cq.eqs
    @ List.map (fun (s, t) -> neq s t) q.Cq.neqs
  in
  let head_vars =
    List.filter_map
      (function
        | Term.Var x -> Some x
        | Term.Const _ -> None)
      q.Cq.head
  in
  let body = conj lits in
  let bound = SSet.elements (SSet.diff (fv body) (SSet.of_list head_vars)) in
  make ~head:q.Cq.head (if bound = [] then body else Exists (bound, body))

let rec efo_formula : Efo.formula -> formula = function
  | Efo.Atom a -> Atom a
  | Efo.Eq (s, t) -> Eq (s, t)
  | Efo.Neq (s, t) -> neq s t
  | Efo.And (f, g) -> And (efo_formula f, efo_formula g)
  | Efo.Or (f, g) -> Or (efo_formula f, efo_formula g)
  | Efo.Exists (xs, f) -> Exists (xs, efo_formula f)

let of_efo (q : Efo.t) =
  let body = efo_formula q.Efo.body in
  let head_vars =
    List.filter_map
      (function
        | Term.Var x -> Some x
        | Term.Const _ -> None)
      q.Efo.head
  in
  let bound = SSet.elements (SSet.diff (fv body) (SSet.of_list head_vars)) in
  make ~head:q.Efo.head (if bound = [] then body else Exists (bound, body))

let rec formula_constants = function
  | True -> []
  | Atom a -> Atom.constants a
  | Eq (s, t) ->
    List.filter_map
      (function
        | Term.Const c -> Some c
        | Term.Var _ -> None)
      [ s; t ]
  | And (f, g) | Or (f, g) -> formula_constants f @ formula_constants g
  | Not f -> formula_constants f
  | Exists (_, f) | Forall (_, f) -> formula_constants f

let constants t =
  (List.filter_map
     (function
       | Term.Const c -> Some c
       | Term.Var _ -> None)
     t.head
  @ formula_constants t.body)
  |> List.sort_uniq Value.compare

let rec sat db dom env = function
  | True -> true
  | Atom a ->
    (match Valuation.tuple_of_terms env a.Atom.args with
     | Some tuple ->
       let rel = try Database.relation db a.Atom.rel with Not_found -> Relation.empty in
       Relation.mem tuple rel
     | None -> invalid_arg "Fo.eval: unbound variable in atom (non-closed formula)")
  | Eq (s, t) ->
    (match Valuation.term_value env s, Valuation.term_value env t with
     | Some a, Some b -> Value.equal a b
     | _ -> invalid_arg "Fo.eval: unbound variable in equality")
  | And (f, g) -> sat db dom env f && sat db dom env g
  | Or (f, g) -> sat db dom env f || sat db dom env g
  | Not f -> not (sat db dom env f)
  | Exists (xs, f) ->
    let rec go env = function
      | [] -> sat db dom env f
      | x :: rest -> List.exists (fun c -> go (Valuation.add x c env) rest) dom
    in
    go env xs
  | Forall (xs, f) ->
    let rec go env = function
      | [] -> sat db dom env f
      | x :: rest -> List.for_all (fun c -> go (Valuation.add x c env) rest) dom
    in
    go env xs

let active_domain ?(extra = []) db t =
  List.sort_uniq Value.compare (Database.adom db @ constants t @ extra)

let eval ?extra db t =
  let dom = active_domain ?extra db t in
  let dom = if dom = [] then [ Value.Int 0 ] else dom in
  let head_vars =
    List.filter_map
      (function
        | Term.Var x -> Some x
        | Term.Const _ -> None)
      t.head
    |> List.sort_uniq String.compare
  in
  let out = ref Relation.empty in
  let (_ : bool) =
    Valuation.enumerate_iter
      (List.map (fun x -> (x, dom)) head_vars)
      (fun env ->
        if sat db dom env t.body then begin
          (match Valuation.tuple_of_terms env t.head with
           | Some tuple -> out := Relation.add tuple !out
           | None -> assert false)
        end;
        false)
  in
  !out

let holds ?extra db t = not (Relation.is_empty (eval ?extra db t))

let rec pp_formula ppf = function
  | True -> Format.fprintf ppf "⊤"
  | Atom a -> Atom.pp ppf a
  | Eq (s, t) -> Format.fprintf ppf "%a = %a" Term.pp s Term.pp t
  | Not (Eq (s, t)) -> Format.fprintf ppf "%a ≠ %a" Term.pp s Term.pp t
  | And (f, g) -> Format.fprintf ppf "(%a ∧ %a)" pp_formula f pp_formula g
  | Or (f, g) -> Format.fprintf ppf "(%a ∨ %a)" pp_formula f pp_formula g
  | Not f -> Format.fprintf ppf "¬%a" pp_formula f
  | Exists (xs, f) ->
    Format.fprintf ppf "∃%s (%a)" (String.concat "," xs) pp_formula f
  | Forall (xs, f) ->
    Format.fprintf ppf "∀%s (%a)" (String.concat "," xs) pp_formula f

let pp ppf t =
  Format.fprintf ppf "(%a) ← %a"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Term.pp)
    t.head pp_formula t.body
