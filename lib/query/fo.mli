(** First-order queries (Section 2.1, language (d)): atomic formulas
    closed under [∧], [∨], [¬], [∃], [∀].

    Evaluation uses {e active-domain} semantics: quantifiers range
    over the constants of the database, the query, and any extra
    values supplied by the caller.  This is the standard effective
    semantics; the paper's undecidability results (Theorems 3.1 and
    4.1) concern the unrestricted extension problem, which no
    evaluator escapes — see {!Ric_complete.Rcdp.semi_decide}. *)

open Ric_relational

type formula =
  | True
  | Atom of Atom.t
  | Eq of Term.t * Term.t
  | And of formula * formula
  | Or of formula * formula
  | Not of formula
  | Exists of string list * formula
  | Forall of string list * formula

type t = {
  head : Term.t list;
  body : formula;
}

val make : head:Term.t list -> formula -> t
(** @raise Invalid_argument if a free variable of the body is not a
    head variable. *)

val boolean : formula -> t

val neq : Term.t -> Term.t -> formula
(** [¬(s = t)]. *)

val conj : formula list -> formula

val disj : formula list -> formula

val of_cq : Cq.t -> t

val of_efo : Efo.t -> t

val free_vars : formula -> string list

val constants : t -> Value.t list

val eval : ?extra:Value.t list -> Database.t -> t -> Relation.t
(** Active-domain evaluation; [extra] widens the quantifier range. *)

val holds : ?extra:Value.t list -> Database.t -> t -> bool

val pp : Format.formatter -> t -> unit
