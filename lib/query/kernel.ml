open Ric_relational

(* Compiled match kernel.

   A conjunctive body is compiled once into a slot-addressed [plan]:
   variables are numbered into an int slot space and every argument
   becomes either a slot ([>= 0]) or an interned constant (encoded as
   [-(id + 1)]).  Running a plan keeps the current valuation in a
   mutable register array ([-1] = unbound) with a trail for undo, so
   extending and retracting a binding costs two array writes instead
   of a [Map.Make(String)] rebalance, and every equality test is an
   [int] compare on interned ids.

   Relations are reached through a {!Store}: a cache of {!Rix.t}
   indexes keyed by relation name and validated by physical identity
   of the source relation, so an unchanged database pays for indexing
   once per store instead of once per solve.  Small, changing deltas
   ride alongside as an [extra] overlay of interned rows scanned
   linearly — candidate tuples for an atom are (bucket of the base
   index) ∪ (overlay rows), which is exactly base ∪ delta up to
   harmless duplicates. *)

let m_builds =
  Ric_obs.Metrics.counter
    ~help:"relation indexes built by the compiled match kernel"
    "ric_match_index_builds_total"

let m_reuses =
  Ric_obs.Metrics.counter
    ~help:"relation indexes reused across solves from a kernel store"
    "ric_match_index_reuses_total"

type catom = {
  c_rel : string;
  c_args : int array; (* arg >= 0: slot; arg < 0: constant -(id+1) *)
}

type plan = {
  p_atoms : catom array;
  p_neqs : (int * int) array;
  p_nslots : int;
  p_vars : string array; (* slot -> variable name *)
  p_slots : (string, int) Hashtbl.t; (* read-only after compile *)
}

let const_code c = -Intern.id c - 1

let compile ?(extra_vars = []) atoms neqs =
  let slots = Hashtbl.create 16 in
  let vars = ref [] in
  let n = ref 0 in
  let slot_of x =
    match Hashtbl.find_opt slots x with
    | Some s -> s
    | None ->
      let s = !n in
      incr n;
      Hashtbl.add slots x s;
      vars := x :: !vars;
      s
  in
  List.iter (fun x -> ignore (slot_of x)) extra_vars;
  let enc = function
    | Term.Var x -> slot_of x
    | Term.Const c -> const_code c
  in
  let p_atoms =
    Array.of_list
      (List.map
         (fun (a : Atom.t) ->
           { c_rel = a.Atom.rel; c_args = Array.of_list (List.map enc a.Atom.args) })
         atoms)
  in
  let p_neqs = Array.of_list (List.map (fun (s, t) -> (enc s, enc t)) neqs) in
  {
    p_atoms;
    p_neqs;
    p_nslots = !n;
    p_vars = Array.of_list (List.rev !vars);
    p_slots = slots;
  }

let encode_terms plan ts =
  Array.of_list
    (List.map
       (function
         | Term.Var x ->
           (match Hashtbl.find_opt plan.p_slots x with
            | Some s -> s
            | None ->
              invalid_arg ("Kernel.encode_terms: variable not in plan: " ^ x))
         | Term.Const c -> const_code c)
       ts)

let init_binds plan mu =
  List.filter_map
    (fun (x, c) ->
      match Hashtbl.find_opt plan.p_slots x with
      | Some s -> Some (s, Intern.id c)
      | None -> None)
    (Valuation.bindings mu)

(* Unify an encoded argument vector against a concrete interned row
   with no registers in play — used to pin a probe's atom onto an
   inserted tuple before running the rest of its plan. *)
let unify_encoded args row =
  let n = Array.length args in
  if Array.length row <> n then None
  else
    let rec go i acc =
      if i = n then Some acc
      else
        let a = args.(i) and x = row.(i) in
        if a < 0 then if a = -x - 1 then go (i + 1) acc else None
        else
          match List.assoc_opt a acc with
          | Some x' -> if x = x' then go (i + 1) acc else None
          | None -> go (i + 1) ((a, x) :: acc)
    in
    go 0 []

let term_ids enc regs =
  let n = Array.length enc in
  let out = Array.make n 0 in
  let rec go i =
    if i = n then Some out
    else
      let a = enc.(i) in
      if a < 0 then begin
        out.(i) <- -a - 1;
        go (i + 1)
      end
      else if regs.(a) >= 0 then begin
        out.(i) <- regs.(a);
        go (i + 1)
      end
      else None
  in
  go 0

let valuation_of plan ~init regs =
  let v = ref init in
  for s = 0 to plan.p_nslots - 1 do
    let id = regs.(s) in
    if id >= 0 then v := Valuation.add plan.p_vars.(s) (Intern.value id) !v
  done;
  !v

(* Hash set of interned rows: the compiled representation of a cached
   RHS relation, so "does this answer escape the bound?" is one probe
   on an [int array] key. *)
module Rowset = struct
  module H = Hashtbl.Make (struct
    type t = int array

    let equal = Stdlib.( = )
    let hash = Hashtbl.hash
  end)

  type t = unit H.t

  let of_relation rel =
    let h = H.create (max 16 (Relation.cardinal rel)) in
    Relation.iter (fun tu -> H.replace h (Intern.row tu) ()) rel;
    h

  let mem h row = H.mem h row
end

(* The index cache is read-mostly: after the first few solves every
   probe is a hit on an unchanged relation.  The hit path is
   lock-free — one [Atomic.get] of a persistent-map snapshot plus a
   physical-identity check — so concurrent search workers sharing a
   store never contend.  Only a miss (new relation, or a relation that
   changed identity) takes the mutex, double-checks against the latest
   snapshot, builds, and publishes a new snapshot with [Atomic.set].
   Publishing a persistent map wholesale means readers always see a
   consistent (possibly slightly stale) cache; a stale read at worst
   causes one redundant double-checked lookup under the lock, never a
   wrong index: the [Rix.source] identity check validates every hit. *)
module Store = struct
  module SMap = Map.Make (String)

  let m_lock_acquisitions =
    Ric_obs.Metrics.counter
      ~help:
        "mutex acquisitions by kernel index stores (cache misses only; \
         index-cache hits are lock-free)"
      "ric_store_lock_acquisitions_total"

  type t = {
    snap : Rix.t SMap.t Atomic.t;
    mx : Mutex.t;
  }

  let create () = { snap = Atomic.make SMap.empty; mx = Mutex.create () }

  let build_locked st name rel =
    (* another domain may have built it between our probe and the
       lock — re-check the latest snapshot before paying for a build *)
    match SMap.find_opt name (Atomic.get st.snap) with
    | Some rx when Rix.source rx == rel ->
      Ric_obs.Metrics.incr m_reuses;
      rx
    | _ ->
      let rx = Rix.build rel in
      Atomic.set st.snap (SMap.add name rx (Atomic.get st.snap));
      Ric_obs.Metrics.incr m_builds;
      rx

  let rix st name rel =
    match SMap.find_opt name (Atomic.get st.snap) with
    | Some rx when Rix.source rx == rel ->
      Ric_obs.Metrics.incr m_reuses;
      rx
    | _ ->
      Mutex.lock st.mx;
      Ric_obs.Metrics.incr m_lock_acquisitions;
      (match build_locked st name rel with
       | rx ->
         Mutex.unlock st.mx;
         rx
       | exception e ->
         Mutex.unlock st.mx;
         raise e)
end

let run store ~lookup ?extra ?(init = []) plan on_match =
  let na = Array.length plan.p_atoms in
  let regs = Array.make (max 1 plan.p_nslots) (-1) in
  List.iter (fun (s, v) -> regs.(s) <- v) init;
  let rixes =
    Array.map (fun ca -> Store.rix store ca.c_rel (lookup ca.c_rel)) plan.p_atoms
  in
  let extras =
    match extra with
    | None -> Array.make (max 1 na) [||]
    | Some f -> Array.map (fun ca -> Array.of_list (f ca.c_rel)) plan.p_atoms
  in
  (* Static greedy join order, fixed once per run: most bound
     arguments first, then smallest relation — the same score the
     interpreted engine recomputed at every node.  Which slots are
     bound at depth [k] depends only on [init] and the atoms ordered
     before [k], never on the values branched on, so ordering up front
     is exact. *)
  let order = Array.init na (fun i -> i) in
  if na > 1 then begin
    let bound = Array.map (fun v -> v >= 0) regs in
    let taken = Array.make na false in
    let score i =
      let b = ref 0 in
      Array.iter
        (fun a -> if a < 0 || bound.(a) then incr b)
        plan.p_atoms.(i).c_args;
      (- !b, Rix.cardinal rixes.(i) + Array.length extras.(i))
    in
    for k = 0 to na - 1 do
      let best = ref (-1) and best_score = ref (0, 0) in
      for i = 0 to na - 1 do
        if not taken.(i) then begin
          let s = score i in
          if !best < 0 || compare s !best_score < 0 then begin
            best := i;
            best_score := s
          end
        end
      done;
      order.(k) <- !best;
      taken.(!best) <- true;
      Array.iter
        (fun a -> if a >= 0 then bound.(a) <- true)
        plan.p_atoms.(!best).c_args
    done
  end;
  (* Inequality schedule: each neq fires at the earliest depth where
     both sides are ground (depth 0 = before any atom); sides that
     never become ground are ignored, matching the interpreted
     engine's pending-forever behaviour. *)
  let neq_at = Array.make (na + 1) [] in
  if Array.length plan.p_neqs > 0 then begin
    let depth = Array.make (max 1 plan.p_nslots) max_int in
    List.iter (fun (s, _) -> depth.(s) <- 0) init;
    for k = 0 to na - 1 do
      Array.iter
        (fun a -> if a >= 0 && depth.(a) = max_int then depth.(a) <- k + 1)
        plan.p_atoms.(order.(k)).c_args
    done;
    Array.iter
      (fun (l, r) ->
        let d t = if t < 0 then 0 else depth.(t) in
        let dd = max (d l) (d r) in
        if dd <> max_int then neq_at.(dd) <- (l, r) :: neq_at.(dd))
      plan.p_neqs
  end;
  let neq_ok_at k =
    match neq_at.(k) with
    | [] -> true
    | l ->
      List.for_all
        (fun (a, b) ->
          let va = if a < 0 then -a - 1 else regs.(a) in
          let vb = if b < 0 then -b - 1 else regs.(b) in
          va <> vb)
        l
  in
  let trail = Array.make (max 1 plan.p_nslots) 0 in
  let tp = ref 0 in
  let unify_row args row =
    let n = Array.length args in
    if Array.length row <> n then false
    else
      let rec go i =
        if i = n then true
        else
          let a = args.(i) and x = row.(i) in
          if a < 0 then if a = -x - 1 then go (i + 1) else false
          else
            let cur = regs.(a) in
            if cur >= 0 then if cur = x then go (i + 1) else false
            else begin
              regs.(a) <- x;
              trail.(!tp) <- a;
              incr tp;
              go (i + 1)
            end
      in
      go 0
  in
  let rec go k =
    if k = na then on_match regs
    else begin
      let ai = order.(k) in
      let args = plan.p_atoms.(ai).c_args in
      let rix = rixes.(ai) and ex = extras.(ai) in
      let try_row row =
        let t0 = !tp in
        let stop = unify_row args row && neq_ok_at (k + 1) && go (k + 1) in
        while !tp > t0 do
          decr tp;
          regs.(trail.(!tp)) <- -1
        done;
        stop
      in
      (* probe a column bucket when some argument is already ground;
         overlay rows are always scanned (unification rejects the
         mismatches) *)
      let rec ground_pos i =
        if i >= Array.length args then None
        else
          let a = args.(i) in
          if a < 0 then Some (i, -a - 1)
          else if regs.(a) >= 0 then Some (i, regs.(a))
          else ground_pos (i + 1)
      in
      (match ground_pos 0 with
       | Some (col, v) ->
         List.exists (fun ri -> try_row (Rix.row rix ri)) (Rix.bucket rix col v)
         || Array.exists try_row ex
       | None ->
         Array.exists try_row (Rix.rows rix) || Array.exists try_row ex)
    end
  in
  neq_ok_at 0 && go 0

(* ------------------------------------------------------------------ *)
(* Plan memoisation: solving the same body again (CQ evaluation inside
   a decide loop, datalog rounds) reuses the compiled plan.  Keys are
   structural — [Cq.normalize] rebuilds its atom list on every call,
   so physical identity would never hit.  Bounded; the table resets
   rather than evicts, compilation is cheap. *)

let memo_mx = Mutex.create ()

let memo : (Atom.t list * (Term.t * Term.t) list, plan) Hashtbl.t =
  Hashtbl.create 64

let memo_cap = 256

let m_memo_evictions =
  Ric_obs.Metrics.counter
    ~help:"compiled plans dropped when the plan memo hit its cap"
    "ric_kernel_memo_evictions_total"

let plan_for atoms neqs =
  Mutex.lock memo_mx;
  match
    match Hashtbl.find_opt memo (atoms, neqs) with
    | Some p -> p
    | None ->
      let p = compile atoms neqs in
      if Hashtbl.length memo >= memo_cap then begin
        Ric_obs.Metrics.add m_memo_evictions (Hashtbl.length memo);
        Hashtbl.reset memo
      end;
      Hashtbl.add memo (atoms, neqs) p;
      p
  with
  | p ->
    Mutex.unlock memo_mx;
    p
  | exception e ->
    Mutex.unlock memo_mx;
    raise e
