(** Compiled match kernel: slot-addressed plans over interned rows.

    The interpreted {!Match_engine} pays for boxed value compares,
    string-map valuation binds and per-solve index builds on every
    step.  This kernel compiles a conjunctive body once — variables
    numbered into int slots, constants interned — and runs it with a
    mutable register array plus an undo trail, probing persistent
    {!Ric_relational.Rix} column indexes cached in a {!Store}.  The
    solution set is identical to the interpreted engine's (only the
    enumeration order may differ); the [naive] oracle in
    {!Match_engine} remains the differential-testing reference. *)

open Ric_relational

type plan
(** A compiled conjunctive body (atoms + inequality side conditions).
    Immutable and domain-safe to share; per-run state lives in the
    {!run} frame. *)

val compile :
  ?extra_vars:string list -> Atom.t list -> (Term.t * Term.t) list -> plan
(** [compile atoms neqs] numbers the variables of [atoms] and [neqs]
    into slots (first occurrence order) and interns every constant.
    [extra_vars] reserves leading slots for variables bound from
    outside the body (probe pivots, initial valuations). *)

val plan_for : Atom.t list -> (Term.t * Term.t) list -> plan
(** Memoising wrapper around {!compile} keyed on the (structural)
    body, so repeated solves of the same query compile once. *)

val encode_terms : plan -> Term.t list -> int array
(** Encode a term list (a head, a probe's pinned arguments) against
    the plan's slot space.
    @raise Invalid_argument on a variable the plan does not know. *)

val init_binds : plan -> Valuation.t -> (int * int) list
(** The (slot, value id) prebindings a valuation induces on a plan;
    bindings for variables outside the plan are dropped (they ride
    along unchanged in {!valuation_of}'s [init]). *)

val unify_encoded : int array -> int array -> (int * int) list option
(** [unify_encoded args row] unifies an encoded argument vector
    against an interned row with no prior bindings: [Some binds] pins
    each slot, [None] on a constant or repeated-slot mismatch (or an
    arity mismatch). *)

val term_ids : int array -> int array -> int array option
(** [term_ids enc regs] grounds encoded terms under the registers;
    [None] if any slot is unbound. *)

val valuation_of : plan -> init:Valuation.t -> int array -> Valuation.t
(** Decode the bound registers back into a valuation on top of
    [init]. *)

(** Compiled view of a cached RHS relation: membership of an interned
    answer row in one hash probe. *)
module Rowset : sig
  type t

  val of_relation : Relation.t -> t
  val mem : t -> int array -> bool
end

(** Cache of {!Ric_relational.Rix} indexes keyed by relation name and
    validated by physical identity of the source relation — the
    persistent replacement for per-solve index builds.  Safe to share
    across domains.

    {b Publication contract (lock-free hit path).}  The cache is a
    persistent map published through an [Atomic.t] snapshot: a hit is
    one atomic read plus a physical-identity check and takes no lock,
    so concurrent search workers sharing a store never contend.  Only
    a miss takes the internal mutex, double-checks the latest
    snapshot, builds, and republishes the whole map with [Atomic.set]
    — a reader holding a stale snapshot at worst repeats the
    double-checked lookup, never observes a wrong index.  Hits and
    misses are counted by [ric_match_index_reuses_total] /
    [ric_match_index_builds_total]; mutex acquisitions (misses only)
    by [ric_store_lock_acquisitions_total]. *)
module Store : sig
  type t

  val create : unit -> t

  val rix : t -> string -> Relation.t -> Rix.t
  (** [rix store name rel] — the cached index for [name] if it was
      built from this very [rel], else a fresh build (replacing the
      stale entry). *)
end

val run :
  Store.t ->
  lookup:(string -> Relation.t) ->
  ?extra:(string -> int array list) ->
  ?init:(int * int) list ->
  plan ->
  (int array -> bool) ->
  bool
(** [run store ~lookup plan on_match] enumerates every way of
    embedding the plan's atoms into [lookup]'s relations (each
    extended by the interned [extra] overlay rows for that relation,
    if given) that satisfies every inequality whose sides become
    ground, calling [on_match regs] per solution until it returns
    [true].  [init] prebinds slots.  Join order is fixed up front by
    bound-argument count then indexed cardinality.  Overlay rows also
    present in the base relation may be visited twice — callers use
    the overlay for existence-style checks where duplicates are
    harmless. *)
