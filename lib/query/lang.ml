

type t =
  | Q_cq of Cq.t
  | Q_ucq of Ucq.t
  | Q_efo of Efo.t
  | Q_fo of Fo.t
  | Q_fp of Datalog.program

let eval db = function
  | Q_cq q -> Cq.eval db q
  | Q_ucq q -> Ucq.eval db q
  | Q_efo q -> Efo.eval db q
  | Q_fo q -> Fo.eval db q
  | Q_fp p -> Datalog.eval db p

let holds db = function
  | Q_cq q -> Cq.holds db q
  | Q_ucq q -> Ucq.holds db q
  | Q_efo q -> Efo.holds db q
  | Q_fo q -> Fo.holds db q
  | Q_fp p -> Datalog.holds db p

let constants = function
  | Q_cq q -> Cq.constants q
  | Q_ucq q -> Ucq.constants q
  | Q_efo q -> Efo.constants q
  | Q_fo q -> Fo.constants q
  | Q_fp p -> Datalog.constants p

let language_name = function
  | Q_cq _ -> "CQ"
  | Q_ucq _ -> "UCQ"
  | Q_efo _ -> "\xE2\x88\x83FO+"
  | Q_fo _ -> "FO"
  | Q_fp _ -> "FP"

let monotone = function
  | Q_cq _ | Q_ucq _ | Q_efo _ | Q_fp _ -> true
  | Q_fo _ -> false

let cq_relations q =
  List.map (fun (a : Atom.t) -> a.Atom.rel) q.Cq.atoms

let rec fo_relations = function
  | Fo.True | Fo.Eq _ -> []
  | Fo.Atom a -> [ a.Atom.rel ]
  | Fo.And (f, g) | Fo.Or (f, g) -> fo_relations f @ fo_relations g
  | Fo.Not f -> fo_relations f
  | Fo.Exists (_, f) | Fo.Forall (_, f) -> fo_relations f

let rec efo_relations = function
  | Efo.Atom a -> [ a.Atom.rel ]
  | Efo.Eq _ | Efo.Neq _ -> []
  | Efo.And (f, g) | Efo.Or (f, g) -> efo_relations f @ efo_relations g
  | Efo.Exists (_, f) -> efo_relations f

let relations t =
  (match t with
   | Q_cq q -> cq_relations q
   | Q_ucq q -> List.concat_map cq_relations q
   | Q_efo q -> efo_relations q.Efo.body
   | Q_fo q -> fo_relations q.Fo.body
   | Q_fp p ->
     List.concat_map
       (fun (r : Datalog.rule) ->
         r.Datalog.rule_head.Atom.rel
         :: List.filter_map
              (function
                | Datalog.Pos a -> Some a.Atom.rel
                | Datalog.Eq _ | Datalog.Neq _ -> None)
              r.Datalog.rule_body)
       p.Datalog.rules)
  |> List.sort_uniq String.compare

let var_count = function
  | Q_cq q -> List.length (Cq.vars q)
  | Q_ucq q -> List.length (Ucq.vars q)
  | Q_efo q -> List.length (Ucq.vars (Efo.to_ucq q))
  | Q_fo q -> List.length (Fo.free_vars q.Fo.body) + 4
  | Q_fp p ->
    List.fold_left
      (fun n (r : Datalog.rule) ->
        n
        + List.length
            (Cq.vars
               (Cq.make ~head:r.Datalog.rule_head.Atom.args
                  (List.filter_map
                     (function
                       | Datalog.Pos a -> Some a
                       | _ -> None)
                     r.Datalog.rule_body))))
      0 p.Datalog.rules

let as_ucq = function
  | Q_cq q -> Some [ q ]
  | Q_ucq q -> Some q
  | Q_efo q -> Some (Efo.to_ucq q)
  | Q_fo _ | Q_fp _ -> None

let pp ppf = function
  | Q_cq q -> Cq.pp ppf q
  | Q_ucq q -> Ucq.pp ppf q
  | Q_efo q -> Efo.pp ppf q
  | Q_fo q -> Fo.pp ppf q
  | Q_fp p -> Datalog.pp ppf p
