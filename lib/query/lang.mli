(** Dispatch over the query languages of the paper: [LQ] and [LC]
    range over CQ, UCQ, ∃FO⁺, FO and FP (plus the IND special case on
    the constraint side, which lives in {!Ric_constraints.Ind}). *)

open Ric_relational

type t =
  | Q_cq of Cq.t
  | Q_ucq of Ucq.t
  | Q_efo of Efo.t
  | Q_fo of Fo.t
  | Q_fp of Datalog.program

val eval : Database.t -> t -> Relation.t

val holds : Database.t -> t -> bool

val constants : t -> Value.t list

val language_name : t -> string
(** ["CQ"], ["UCQ"], ["∃FO+"], ["FO"] or ["FP"]. *)

val monotone : t -> bool
(** True for CQ, UCQ, ∃FO⁺ and FP; the completeness characterisations
    (Propositions 3.3–4.2) rely on it. *)

val relations : t -> string list
(** Relation names the query mentions (for FP: including IDB
    predicates).  Used by the deciders to restrict constraint
    re-checking to constraints that an extension can actually
    affect. *)

val var_count : t -> int
(** Number of distinct variables (for ∃FO⁺, of the UCQ expansion; for
    FP, across all rules).  Sizes the [New] part of the active
    domain. *)

val as_ucq : t -> Ucq.t option
(** CQ, UCQ and ∃FO⁺ normalise to a UCQ (the ∃FO⁺ case may blow up
    exponentially, as in the paper's upper-bound proofs); [None] for
    FO and FP. *)

val pp : Format.formatter -> t -> unit
