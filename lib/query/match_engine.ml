open Ric_relational

(* The default path compiles the body into a slot-addressed plan and
   runs it over persistent Rix indexes (see [Kernel]); the [naive]
   path below is the original interpreted engine — first-atom order,
   full scans, string-map valuations — kept verbatim as the
   differential-testing oracle and ablation baseline. *)

(* A neq (s, t) is checked as soon as both sides are ground under the
   current valuation; [pending] tracks the ones not yet checkable. *)
let neq_ok v (s, t) =
  match Valuation.term_value v s, Valuation.term_value v t with
  | Some a, Some b -> if Value.equal a b then `Violated else `Ok
  | _ -> `Pending

(* Try to extend [v] so that [a] maps onto [tuple]. *)
let unify v (a : Atom.t) tuple =
  if Tuple.arity tuple <> Atom.arity a then None
  else
    let rec go v i = function
      | [] -> Some v
      | t :: rest ->
        let c = Tuple.get tuple i in
        (match t with
         | Term.Const k -> if Value.equal k c then go v (i + 1) rest else None
         | Term.Var x ->
           (match Valuation.find x v with
            | Some k -> if Value.equal k c then go v (i + 1) rest else None
            | None -> go (Valuation.add x c v) (i + 1) rest))
    in
    go v 0 a.Atom.args

let naive_solve ~lookup ~neqs ~init atoms visit =
  let check_neqs v pending =
    let rec go ok acc = function
      | [] -> if ok then Some acc else None
      | neq :: rest ->
        (match neq_ok v neq with
         | `Violated -> None
         | `Ok -> go ok acc rest
         | `Pending -> go ok (neq :: acc) rest)
    in
    go true [] pending
  in
  let rec go v pending atoms =
    match check_neqs v pending with
    | None -> false
    | Some pending ->
      (match atoms with
       | [] -> visit v
       | a :: rest ->
         Relation.exists
           (fun tuple ->
             match unify v a tuple with
             | Some v' -> go v' pending rest
             | None -> false)
           (lookup a.Atom.rel))
  in
  go init neqs atoms

let solve ~lookup ?(neqs = []) ?(init = Valuation.empty) ?(naive = false)
    ?store atoms visit =
  if naive then naive_solve ~lookup ~neqs ~init atoms visit
  else begin
    let plan = Kernel.plan_for atoms neqs in
    let store =
      match store with
      | Some s -> s
      | None -> Kernel.Store.create ()
    in
    Kernel.run store ~lookup ~init:(Kernel.init_binds plan init) plan
      (fun regs -> visit (Kernel.valuation_of plan ~init regs))
  end

let all ~lookup ?(neqs = []) ?(init = Valuation.empty) atoms =
  let out = ref [] in
  let (_ : bool) =
    solve ~lookup ~neqs ~init atoms (fun v ->
        out := v :: !out;
        false)
  in
  List.rev !out
