open Ric_relational

(* A neq (s, t) is checked as soon as both sides are ground under the
   current valuation; [pending] tracks the ones not yet checkable. *)
let neq_ok v (s, t) =
  match Valuation.term_value v s, Valuation.term_value v t with
  | Some a, Some b -> if Value.equal a b then `Violated else `Ok
  | _ -> `Pending

let ground_count v (a : Atom.t) =
  List.fold_left
    (fun n t ->
      match t with
      | Term.Const _ -> n + 1
      | Term.Var x -> if Valuation.mem x v then n + 1 else n)
    0 a.Atom.args

(* Try to extend [v] so that [a] maps onto [tuple]. *)
let unify v (a : Atom.t) tuple =
  if Tuple.arity tuple <> Atom.arity a then None
  else
    let rec go v i = function
      | [] -> Some v
      | t :: rest ->
        let c = Tuple.get tuple i in
        (match t with
         | Term.Const k -> if Value.equal k c then go v (i + 1) rest else None
         | Term.Var x ->
           (match Valuation.find x v with
            | Some k -> if Value.equal k c then go v (i + 1) rest else None
            | None -> go (Valuation.add x c v) (i + 1) rest))
    in
    go v 0 a.Atom.args

(* Lazily built hash indexes: (relation, column, value) → tuples.
   Built once per solve per (relation, column) on first use; turns the
   per-atom scan into a bucket probe when at least one argument is
   ground. *)
module Index = struct
  type t = (string * int, (Value.t, Tuple.t list) Hashtbl.t) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let get (idx : t) ~lookup rel col =
    match Hashtbl.find_opt idx (rel, col) with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 64 in
      Relation.iter
        (fun tuple ->
          let key = Tuple.get tuple col in
          Hashtbl.replace h key (tuple :: Option.value ~default:[] (Hashtbl.find_opt h key)))
        (lookup rel);
      Hashtbl.replace idx (rel, col) h;
      h

  (* the first ground argument position of [a] under [v], if any *)
  let ground_position v (a : Atom.t) =
    let rec go i = function
      | [] -> None
      | Term.Const c :: _ -> Some (i, c)
      | Term.Var x :: rest ->
        (match Valuation.find x v with
         | Some c -> Some (i, c)
         | None -> go (i + 1) rest)
    in
    go 0 a.Atom.args
end

let solve ~lookup ?(neqs = []) ?(init = Valuation.empty) ?(naive = false) atoms visit =
  (* Partition the inequality checks: check what is ground now, defer
     the rest; re-examined after every atom is matched. *)
  let check_neqs v pending =
    let rec go ok acc = function
      | [] -> if ok then Some acc else None
      | neq :: rest ->
        (match neq_ok v neq with
         | `Violated -> None
         | `Ok -> go ok acc rest
         | `Pending -> go ok (neq :: acc) rest)
    in
    go true [] pending
  in
  let pick_best v = function
    | [] -> None
    | atoms ->
      if naive then
        match atoms with
        | a :: rest -> Some (a, rest)
        | [] -> None
      else begin
        let score (a : Atom.t) =
          let bound = ground_count v a in
          let size = Relation.cardinal (lookup a.Atom.rel) in
          (* prefer more bound arguments, then smaller relations *)
          (-bound, size)
        in
        let best =
          List.fold_left
            (fun acc a ->
              match acc with
              | None -> Some (a, score a)
              | Some (_, sb) ->
                let sa = score a in
                if compare sa sb < 0 then Some (a, sa) else acc)
            None atoms
        in
        match best with
        | None -> None
        | Some (a, _) -> Some (a, List.filter (fun x -> x != a) atoms)
      end
  in
  let idx = Index.create () in
  let rec go v pending atoms =
    match check_neqs v pending with
    | None -> false
    | Some pending ->
      (match pick_best v atoms with
       | None -> visit v
       | Some (a, rest) ->
         let try_tuple tuple =
           match unify v a tuple with
           | Some v' -> go v' pending rest
           | None -> false
         in
         (match if naive then None else Index.ground_position v a with
          | Some (col, value) ->
            let h = Index.get idx ~lookup a.Atom.rel col in
            List.exists try_tuple (Option.value ~default:[] (Hashtbl.find_opt h value))
          | None -> Relation.exists try_tuple (lookup a.Atom.rel)))
  in
  go init neqs atoms

let all ~lookup ?(neqs = []) ?(init = Valuation.empty) atoms =
  let out = ref [] in
  let (_ : bool) =
    solve ~lookup ~neqs ~init atoms (fun v ->
        out := v :: !out;
        false)
  in
  List.rev !out
