(** Backtracking homomorphism search — the join engine shared by CQ
    evaluation, datalog rule firing, and FO atom handling.

    Finds all extensions of an initial valuation that map every atom of
    a conjunctive body into the relations supplied by [lookup], subject
    to inequality side conditions.  The body is compiled once into a
    slot-addressed {!Kernel} plan (memoised across calls): atoms are
    ordered greedily (most bound arguments first, then smallest
    relation), and candidate tuples for an atom with a ground argument
    come from a persistent {!Ric_relational.Rix} column index instead
    of a scan — together the difference between polynomial joins and a
    cross product on realistic bodies; see the [ablation] bench. *)

open Ric_relational

val solve :
  lookup:(string -> Relation.t) ->
  ?neqs:(Term.t * Term.t) list ->
  ?init:Valuation.t ->
  ?naive:bool ->
  ?store:Kernel.Store.t ->
  Atom.t list ->
  (Valuation.t -> bool) ->
  bool
(** [solve ~lookup atoms visit] calls [visit] on every valuation (of
    exactly the variables in [atoms] plus [init]) that embeds all
    [atoms] into the instance and satisfies every inequality in [neqs]
    whose two sides are ground at that point.  Enumeration stops as
    soon as [visit] returns [true]; the result reports whether any
    visit did.  Inequalities mentioning variables that never become
    ground are ignored (callers ensure range restriction).
    [~naive:true] bypasses the compiled kernel entirely and runs the
    original interpreted engine in first-atom order with full scans —
    the differential-testing oracle and ablation baseline.  [?store]
    supplies a shared index cache so consecutive solves over the same
    physical relations skip re-indexing; without it each call builds
    (and drops) its own. *)

val all : lookup:(string -> Relation.t) ->
  ?neqs:(Term.t * Term.t) list ->
  ?init:Valuation.t ->
  Atom.t list ->
  Valuation.t list
(** Materialise every solution. *)
