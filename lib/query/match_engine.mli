(** Backtracking homomorphism search — the join engine shared by CQ
    evaluation, datalog rule firing, and FO atom handling.

    Finds all extensions of an initial valuation that map every atom of
    a conjunctive body into the relations supplied by [lookup], subject
    to inequality side conditions.  Atoms are ordered greedily (most
    ground arguments first, then smallest relation), and candidate
    tuples for an atom with a ground argument come from a lazily built
    hash index on that (relation, column) instead of a scan — together
    the difference between polynomial joins and a cross product on
    realistic bodies; see the [ablation] bench. *)

open Ric_relational

val solve :
  lookup:(string -> Relation.t) ->
  ?neqs:(Term.t * Term.t) list ->
  ?init:Valuation.t ->
  ?naive:bool ->
  Atom.t list ->
  (Valuation.t -> bool) ->
  bool
(** [solve ~lookup atoms visit] calls [visit] on every valuation (of
    exactly the variables in [atoms] plus [init]) that embeds all
    [atoms] into the instance and satisfies every inequality in [neqs]
    whose two sides are ground at that point.  Enumeration stops as
    soon as [visit] returns [true]; the result reports whether any
    visit did.  Inequalities mentioning variables that never become
    ground are ignored (callers ensure range restriction).
    [~naive:true] disables the greedy atom ordering (kept for the
    ablation bench). *)

val all : lookup:(string -> Relation.t) ->
  ?neqs:(Term.t * Term.t) list ->
  ?init:Valuation.t ->
  Atom.t list ->
  Valuation.t list
(** Materialise every solution. *)
