open Ric_relational

type pred =
  | Col_eq_col of int * int
  | Col_eq_const of int * Value.t
  | Col_neq_col of int * int
  | Col_neq_const of int * Value.t

type t =
  | Rel of string
  | Select of pred list * t
  | Project of int list * t
  | Product of t * t
  | Union of t * t
  | Diff of t * t

let pred_cols = function
  | Col_eq_col (i, j) | Col_neq_col (i, j) -> [ i; j ]
  | Col_eq_const (i, _) | Col_neq_const (i, _) -> [ i ]

let rec arity sch = function
  | Rel r ->
    (match Schema.find sch r with
     | rs -> Schema.arity rs
     | exception Not_found -> invalid_arg (Printf.sprintf "Ralgebra: unknown relation %S" r))
  | Select (preds, e) ->
    let a = arity sch e in
    List.iter
      (fun p ->
        List.iter
          (fun c ->
            if c < 0 || c >= a then
              invalid_arg (Printf.sprintf "Ralgebra: selection column %d out of range" c))
          (pred_cols p))
      preds;
    a
  | Project (cols, e) ->
    let a = arity sch e in
    List.iter
      (fun c ->
        if c < 0 || c >= a then
          invalid_arg (Printf.sprintf "Ralgebra: projection column %d out of range" c))
      cols;
    List.length cols
  | Product (a, b) -> arity sch a + arity sch b
  | Union (a, b) | Diff (a, b) ->
    let wa = arity sch a and wb = arity sch b in
    if wa <> wb then invalid_arg "Ralgebra: union/difference of different widths";
    wa

let pred_holds tuple = function
  | Col_eq_col (i, j) -> Value.equal (Tuple.get tuple i) (Tuple.get tuple j)
  | Col_eq_const (i, v) -> Value.equal (Tuple.get tuple i) v
  | Col_neq_col (i, j) -> not (Value.equal (Tuple.get tuple i) (Tuple.get tuple j))
  | Col_neq_const (i, v) -> not (Value.equal (Tuple.get tuple i) v)

let rec eval db = function
  | Rel r ->
    (match Database.relation db r with
     | rel -> rel
     | exception Not_found -> invalid_arg (Printf.sprintf "Ralgebra: unknown relation %S" r))
  | Select (preds, e) ->
    Relation.filter (fun t -> List.for_all (pred_holds t) preds) (eval db e)
  | Project (cols, e) -> Relation.project cols (eval db e)
  | Product (a, b) ->
    let ra = eval db a and rb = eval db b in
    Relation.fold
      (fun ta acc ->
        Relation.fold
          (fun tb acc ->
            Relation.add (Tuple.make (Tuple.values ta @ Tuple.values tb)) acc)
          rb acc)
      ra Relation.empty
  | Union (a, b) -> Relation.union (eval db a) (eval db b)
  | Diff (a, b) -> Relation.diff (eval db a) (eval db b)

let rec positive = function
  | Rel _ -> true
  | Select (_, e) | Project (_, e) -> positive e
  | Product (a, b) | Union (a, b) -> positive a && positive b
  | Diff _ -> false

(* ------------------------------------------------------------------ *)
(* Compilation to UCQ. *)

let counter = ref 0

let fresh_var () =
  incr counter;
  Term.Var (Printf.sprintf "_ra%d" !counter)

let rec compile sch e : Cq.t list =
  match e with
  | Rel r ->
    let a =
      match Schema.find sch r with
      | rs -> Schema.arity rs
      | exception Not_found -> invalid_arg (Printf.sprintf "Ralgebra: unknown relation %S" r)
    in
    let head = List.init a (fun _ -> fresh_var ()) in
    [ Cq.make ~head [ Atom.make r head ] ]
  | Select (preds, e) ->
    List.map
      (fun (q : Cq.t) ->
        let col i = List.nth q.Cq.head i in
        let eqs, neqs =
          List.fold_left
            (fun (eqs, neqs) p ->
              match p with
              | Col_eq_col (i, j) -> ((col i, col j) :: eqs, neqs)
              | Col_eq_const (i, v) -> ((col i, Term.Const v) :: eqs, neqs)
              | Col_neq_col (i, j) -> (eqs, (col i, col j) :: neqs)
              | Col_neq_const (i, v) -> (eqs, (col i, Term.Const v) :: neqs))
            (q.Cq.eqs, q.Cq.neqs) preds
        in
        { q with Cq.eqs; neqs })
      (compile sch e)
  | Project (cols, e) ->
    List.map
      (fun (q : Cq.t) -> { q with Cq.head = List.map (List.nth q.Cq.head) cols })
      (compile sch e)
  | Product (a, b) ->
    let qa = compile sch a and qb = compile sch b in
    List.concat_map
      (fun (x : Cq.t) ->
        List.map
          (fun (y : Cq.t) ->
            Cq.make
              ~eqs:(x.Cq.eqs @ y.Cq.eqs)
              ~neqs:(x.Cq.neqs @ y.Cq.neqs)
              ~head:(x.Cq.head @ y.Cq.head)
              (x.Cq.atoms @ y.Cq.atoms))
          qb)
      qa
  | Union (a, b) -> compile sch a @ compile sch b
  | Diff _ -> invalid_arg "Ralgebra.to_ucq: difference is not positive"

let to_ucq sch e =
  ignore (arity sch e);
  Ucq.make (compile sch e)

let pp_pred ppf = function
  | Col_eq_col (i, j) -> Format.fprintf ppf "#%d = #%d" i j
  | Col_eq_const (i, v) -> Format.fprintf ppf "#%d = %a" i Value.pp_quoted v
  | Col_neq_col (i, j) -> Format.fprintf ppf "#%d ≠ #%d" i j
  | Col_neq_const (i, v) -> Format.fprintf ppf "#%d ≠ %a" i Value.pp_quoted v

let rec pp ppf = function
  | Rel r -> Format.fprintf ppf "%s" r
  | Select (preds, e) ->
    Format.fprintf ppf "σ[%a](%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ∧ ") pp_pred)
      preds pp e
  | Project (cols, e) ->
    Format.fprintf ppf "π[%a](%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
      cols pp e
  | Product (a, b) -> Format.fprintf ppf "(%a × %a)" pp a pp b
  | Union (a, b) -> Format.fprintf ppf "(%a ∪ %a)" pp a pp b
  | Diff (a, b) -> Format.fprintf ppf "(%a − %a)" pp a pp b
