(** A small relational-algebra layer.

    The paper writes many of its artefacts algebraically —
    [π_cid(DCust)], [σ_{X1 ≠ Z}(R1) ⊆ ∅], products like
    [R6 × T × R5] in the Theorem 3.6 query — so the library offers the
    same vocabulary: an algebra AST over the SPJRU fragment
    (selection, projection, join/product, renaming-free union,
    difference) with a direct evaluator, plus a translation of the
    positive fragment into {!Ucq} that is proved equivalent by the
    test-suite's property tests.

    Columns are addressed positionally (0-based), as everywhere else
    in the library. *)

open Ric_relational

type pred =
  | Col_eq_col of int * int
  | Col_eq_const of int * Value.t
  | Col_neq_col of int * int
  | Col_neq_const of int * Value.t

type t =
  | Rel of string                  (** a database relation *)
  | Select of pred list * t        (** σ, conjunctive condition *)
  | Project of int list * t        (** π, set semantics *)
  | Product of t * t               (** ×, column concatenation *)
  | Union of t * t
  | Diff of t * t                  (** the non-monotone operator *)

val arity : Schema.t -> t -> int
(** @raise Invalid_argument on unknown relations, out-of-range
    columns, or arity-mismatched unions/differences. *)

val eval : Database.t -> t -> Relation.t
(** Direct evaluation.  @raise Invalid_argument as {!arity}. *)

val positive : t -> bool
(** No {!Diff} anywhere. *)

val to_ucq : Schema.t -> t -> Ucq.t
(** Translate a positive expression into a UCQ with the same
    semantics (property-tested: [eval db e = Ucq.eval db (to_ucq e)]).
    @raise Invalid_argument if the expression contains {!Diff} or is
    malformed. *)

val pp : Format.formatter -> t -> unit
