open Ric_relational

type t = {
  source : Schema.t;
  width : int; (* max source arity *)
  single : Schema.t;
}

let rel_name = "_U"
let pad_value = Value.Str "_pad"

let encode source =
  let rels = Schema.relations source in
  if rels = [] then invalid_arg "Single_rel.encode: empty schema";
  let width = List.fold_left (fun m r -> max m (Schema.arity r)) 0 rels in
  let attrs =
    List.init width (fun i -> Schema.attribute (Printf.sprintf "a%d" i))
    @ [ Schema.attribute "tag" ]
  in
  { source; width; single = Schema.make [ Schema.relation rel_name attrs ] }

let single_schema t = t.single

let encode_db t db =
  Database.fold
    (fun name rel acc ->
      Relation.fold
        (fun tuple acc ->
          let vals = Tuple.values tuple in
          let padded =
            vals
            @ List.init (t.width - List.length vals) (fun _ -> pad_value)
            @ [ Value.Str name ]
          in
          Database.add_tuple acc rel_name (Tuple.make padded))
        rel acc)
    db (Database.empty t.single)

let encode_cq t (q : Cq.t) =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Term.Var (Printf.sprintf "_pad%d" !counter)
  in
  let atoms =
    List.map
      (fun (a : Atom.t) ->
        if not (Schema.mem t.source a.rel) then
          invalid_arg (Printf.sprintf "Single_rel.encode_cq: unknown relation %S" a.rel);
        let pad = List.init (t.width - Atom.arity a) (fun _ -> fresh ()) in
        Atom.make rel_name (a.args @ pad @ [ Term.str a.rel ]))
      q.Cq.atoms
  in
  { q with Cq.atoms }
