(** The single-relation encoding of Lemma 3.2.

    For every relational schema [R = (R1, ..., Rn)] there is a single
    relation schema [R], a linear-time function [f_D] on instances and
    a linear-time function [f_Q] on CQs with
    [Q(D) = f_Q(Q)(f_D(D))].  Relations are padded to a uniform width
    and tagged with an extra column holding the source relation's
    name; [f_Q] rewrites each atom [Ri(x̄)] to a padded atom over [R]
    with the tag pinned to [Ri].

    The deciders work on multi-relation tableaux directly; this module
    exists to validate the lemma (see [test/test_query.ml]) and to
    let users normalise inputs if they wish. *)

open Ric_relational

type t

val encode : Schema.t -> t
(** @raise Invalid_argument on an empty schema. *)

val single_schema : t -> Schema.t
(** A schema containing exactly one relation, named ["_U"]. *)

val encode_db : t -> Database.t -> Database.t
(** [f_D]. *)

val encode_cq : t -> Cq.t -> Cq.t
(** [f_Q].  @raise Invalid_argument if the query mentions a relation
    outside the encoded schema. *)

val pad_value : Value.t
(** The constant used to fill padded columns. *)
