open Ric_relational

type t = {
  schema : Schema.t;
  patterns : Atom.t list;
  summary : Term.t list;
  neqs : (Term.t * Term.t) list;
}

let of_cq schema q =
  match Cq.normalize q with
  | None -> None
  | Some n ->
    List.iter
      (fun (a : Atom.t) ->
        if not (Schema.mem schema a.rel) then
          invalid_arg (Printf.sprintf "Tableau.of_cq: unknown relation %S" a.rel);
        if Schema.arity (Schema.find schema a.rel) <> Atom.arity a then
          invalid_arg (Printf.sprintf "Tableau.of_cq: arity mismatch on %S" a.rel))
      n.Cq.n_atoms;
    Some { schema; patterns = n.Cq.n_atoms; summary = n.Cq.n_head; neqs = n.Cq.n_neqs }

let to_cq t = Cq.make ~neqs:t.neqs ~head:t.summary t.patterns

let vars t = Cq.vars (to_cq t)

let var_domains t = Cq.var_domains t.schema (to_cq t)

let constants t = Cq.constants (to_cq t)

let instantiate t mu =
  List.fold_left
    (fun db (a : Atom.t) ->
      match Valuation.tuple_of_terms mu a.args with
      | Some tuple -> Database.add_tuple db a.rel tuple
      | None ->
        invalid_arg
          (Format.asprintf "Tableau.instantiate: unbound variable in %a" Atom.pp a))
    (Database.empty t.schema) t.patterns

let summary_tuple t mu =
  match Valuation.tuple_of_terms mu t.summary with
  | Some tuple -> tuple
  | None -> invalid_arg "Tableau.summary_tuple: unbound summary variable"

let neqs_ok t mu =
  List.for_all
    (fun (s, u) ->
      match Valuation.term_value mu s, Valuation.term_value mu u with
      | Some a, Some b -> not (Value.equal a b)
      | _ -> true)
    t.neqs

let pp ppf t =
  Format.fprintf ppf "T = [%a], u = (%a)%a"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Atom.pp)
    t.patterns
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Term.pp)
    t.summary
    (fun ppf neqs ->
      List.iter
        (fun (s, u) -> Format.fprintf ppf ", %a ≠ %a" Term.pp s Term.pp u)
        neqs)
    t.neqs
