(** Tableau queries [(T_Q, u_Q)] — the representation the paper's
    characterisations are phrased in (Section 3.2).

    [T_Q] is the list of tuple templates (relation atoms after
    equality elimination), [u_Q] the output summary.  Valuations [μ]
    of the variables of [T_Q] instantiate the templates into a set of
    tuples [μ(T_Q)], viewed as a database over the query's schema.

    Unlike the paper we do not force a single-relation schema; the
    Lemma 3.2 encoding lives in {!Single_rel} and is validated by
    tests instead of being baked into the decision procedures. *)

open Ric_relational

type t = private {
  schema : Schema.t;
  patterns : Atom.t list;          (** T_Q *)
  summary : Term.t list;           (** u_Q *)
  neqs : (Term.t * Term.t) list;   (** inequality side conditions *)
}

val of_cq : Schema.t -> Cq.t -> t option
(** [None] when the CQ is statically unsatisfiable (contradictory
    [=]/[≠] on ground terms).  @raise Invalid_argument when some atom
    mentions a relation absent from the schema. *)

val to_cq : t -> Cq.t

val vars : t -> string list
(** Variables of [T_Q] (and the summary), first-occurrence order. *)

val var_domains : t -> (string * Domain.t) list
(** Effective attribute domain of each variable (see
    {!Cq.var_domains}). *)

val constants : t -> Value.t list

val instantiate : t -> Valuation.t -> Database.t
(** [μ(T_Q)] as a database.  @raise Invalid_argument if the valuation
    leaves a pattern variable unbound. *)

val summary_tuple : t -> Valuation.t -> Tuple.t
(** [μ(u_Q)].  @raise Invalid_argument if unbound. *)

val neqs_ok : t -> Valuation.t -> bool
(** Does [μ] observe every inequality?  Unbound sides count as
    satisfied (callers pass total valuations). *)

val pp : Format.formatter -> t -> unit
