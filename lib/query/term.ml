open Ric_relational

type t =
  | Var of string
  | Const of Value.t

let var x = Var x
let const v = Const v
let int n = Const (Value.Int n)
let str s = Const (Value.Str s)

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const x, Const y -> Value.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let equal a b = compare a b = 0

let is_var = function
  | Var _ -> true
  | Const _ -> false

let pp ppf = function
  | Var x -> Format.fprintf ppf "%s" x
  | Const v -> Value.pp_quoted ppf v
