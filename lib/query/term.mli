(** Terms: variables and constants, the building blocks of atomic
    formulas in every language of the paper (CQ, UCQ, ∃FO⁺, FO, FP). *)

open Ric_relational

type t =
  | Var of string
  | Const of Value.t

val var : string -> t

val const : Value.t -> t

val int : int -> t
(** [int n] is [Const (Int n)]. *)

val str : string -> t
(** [str s] is [Const (Str s)]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val is_var : t -> bool

val pp : Format.formatter -> t -> unit
