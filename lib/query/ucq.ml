open Ric_relational

type t = Cq.t list

let make = function
  | [] -> invalid_arg "Ucq.make: empty union"
  | q :: rest as all ->
    let a = Cq.arity q in
    List.iter
      (fun q' ->
        if Cq.arity q' <> a then invalid_arg "Ucq.make: head widths differ")
      rest;
    all

let arity = function
  | q :: _ -> Cq.arity q
  | [] -> invalid_arg "Ucq.arity: empty union"

let eval db t =
  List.fold_left (fun acc q -> Relation.union acc (Cq.eval db q)) Relation.empty t

let holds db t = List.exists (Cq.holds db) t

let satisfiable sch t = List.exists (Cq.satisfiable sch) t

let vars t = List.concat_map Cq.vars t |> List.sort_uniq String.compare

let constants t = List.concat_map Cq.constants t |> List.sort_uniq Value.compare

let rename_apart ~prefix t =
  List.mapi (fun i q -> Cq.rename_apart ~prefix:(Printf.sprintf "%s%d_" prefix i) q) t

let contained_in sch t1 t2 =
  List.for_all (fun q1 -> List.exists (fun q2 -> Cq.contained_in sch q1 q2) t2) t1

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ∪ ")
    Cq.pp ppf t
