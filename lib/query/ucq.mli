(** Unions of conjunctive queries [Q1 ∪ ... ∪ Qk] (Section 2.1,
    language (b)).  All disjuncts must share one head width. *)

open Ric_relational

type t = Cq.t list

val make : Cq.t list -> t
(** @raise Invalid_argument on an empty list or mismatched head
    widths. *)

val arity : t -> int

val eval : Database.t -> t -> Relation.t

val holds : Database.t -> t -> bool

val satisfiable : Schema.t -> t -> bool

val vars : t -> string list

val constants : t -> Value.t list

val rename_apart : prefix:string -> t -> t
(** Rename so that distinct disjuncts share no variables. *)

val contained_in : Schema.t -> t -> t -> bool
(** UCQ containment for inequality-free queries: [⋃Qi ⊆ ⋃Pj] iff each
    [Qi] is contained in some [Pj] — the Sagiv–Yannakakis criterion. *)

val pp : Format.formatter -> t -> unit
