open Ric_relational
module SMap = Map.Make (String)

type t = Value.t SMap.t

let empty = SMap.empty
let of_list l = List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty l
let bindings = SMap.bindings
let find = SMap.find_opt
let add = SMap.add
let mem = SMap.mem
let cardinal = SMap.cardinal
let is_empty = SMap.is_empty

exception Conflict

(* Bail out of the merge at the first disagreeing binding instead of
   finishing the whole union just to discard it. *)
let union a b =
  match
    SMap.union
      (fun _ va vb -> if Value.equal va vb then Some va else raise Conflict)
      a b
  with
  | merged -> Some merged
  | exception Conflict -> None

let term v = function
  | Term.Var x as t -> (match SMap.find_opt x v with Some c -> Term.Const c | None -> t)
  | Term.Const _ as t -> t

let term_value v = function
  | Term.Var x -> SMap.find_opt x v
  | Term.Const c -> Some c

let atom v a = Atom.apply (fun x -> Option.map (fun c -> Term.Const c) (SMap.find_opt x v)) a

let tuple_of_terms v terms =
  let rec go acc = function
    | [] -> Some (Tuple.make (List.rev acc))
    | t :: rest ->
      (match term_value v t with
       | Some c -> go (c :: acc) rest
       | None -> None)
  in
  go [] terms

let compare = SMap.compare Value.compare
let equal a b = compare a b = 0

let pp ppf v =
  let pp_binding ppf (x, c) = Format.fprintf ppf "%s ↦ %a" x Value.pp c in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_binding)
    (bindings v)

let enumerate_iter doms visit =
  let rec go acc = function
    | [] -> visit acc
    | (x, cands) :: rest -> List.exists (fun c -> go (add x c acc) rest) cands
  in
  go empty doms

let enumerate doms =
  let out = ref [] in
  let (_ : bool) =
    enumerate_iter doms (fun v ->
        out := v :: !out;
        false)
  in
  List.rev !out
