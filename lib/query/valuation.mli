(** Valuations: finite maps from variable names to constants.

    The paper's valuations [μ] instantiate the variables of a tableau
    query; the completeness characterisations (Sections 3.2 and 4.2)
    quantify over {e valid} valuations drawing values from the active
    domain. *)

open Ric_relational

type t

val empty : t

val of_list : (string * Value.t) list -> t

val bindings : t -> (string * Value.t) list

val find : string -> t -> Value.t option

val add : string -> Value.t -> t -> t

val mem : string -> t -> bool

val cardinal : t -> int

val is_empty : t -> bool

val union : t -> t -> t option
(** [union a b] merges two valuations; [None] if they disagree on a
    shared variable. *)

val term : t -> Term.t -> Term.t
(** Substitute: a bound variable becomes its constant; anything else is
    unchanged. *)

val term_value : t -> Term.t -> Value.t option
(** [term_value v t] — the constant denoted by [t] under [v]:
    [Some c] for constants and bound variables, [None] for unbound
    variables. *)

val atom : t -> Atom.t -> Atom.t

val tuple_of_terms : t -> Term.t list -> Tuple.t option
(** Ground the term list into a tuple; [None] if some variable is
    unbound. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Enumeration helpers used by the deciders. *)

val enumerate : (string * Value.t list) list -> t list
(** [enumerate [(x1, c1s); ...]] — all valuations assigning each [xi]
    one of its candidate values [cis].  The result has size
    [Π |cis|]; callers bound their inputs. *)

val enumerate_iter : (string * Value.t list) list -> (t -> bool) -> bool
(** Short-circuiting enumeration: calls the visitor on each valuation
    until it returns [true]; the result says whether any visit
    returned [true].  Avoids materialising the exponential list. *)
