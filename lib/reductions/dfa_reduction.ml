open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

type t = {
  schema : Schema.t;
  master : Database.t;
  ccs : Containment.t list;
  db : Database.t;
  program : Datalog.program;
}

let v = Term.var

let schema =
  Schema.make
    [
      Schema.relation "P" [ Schema.attribute "pos" ];
      Schema.relation "Pbar" [ Schema.attribute "pos" ];
      Schema.relation "F" [ Schema.attribute "from"; Schema.attribute "to" ];
    ]

let master_schema = Schema.make [ Schema.relation "Rm1" [ Schema.attribute "a" ] ]

let full_head (q : Cq.t) = { q with Cq.head = List.map Term.var (Cq.vars q) }

let ccs =
  [
    (* V1: no position is both 0 and 1 *)
    Containment.make ~name:"V1"
      (Lang.Q_cq (full_head (Cq.boolean [ Atom.make "P" [ v "x" ]; Atom.make "Pbar" [ v "x" ] ])))
      Projection.Empty;
    (* V2: F is a function *)
    Containment.make ~name:"V2"
      (Lang.Q_cq
         (full_head
            (Cq.boolean
               ~neqs:[ (v "y", v "z") ]
               [ Atom.make "F" [ v "x"; v "y" ]; Atom.make "F" [ v "x"; v "z" ] ])))
      Projection.Empty;
    (* V3: at most one end marker (k, k) *)
    Containment.make ~name:"V3"
      (Lang.Q_cq
         (full_head
            (Cq.boolean
               ~neqs:[ (v "x", v "y") ]
               [ Atom.make "F" [ v "x"; v "x" ]; Atom.make "F" [ v "y"; v "y" ] ])))
      Projection.Empty;
  ]

let state q = Term.str (Printf.sprintf "q%d" q)

let of_dfa (a : Two_head_dfa.t) =
  let open Datalog in
  let base =
    rule
      (Atom.make "reach" [ state a.Two_head_dfa.start; Term.int 0; Term.int 0 ])
      [ Pos (Atom.make "F" [ Term.int 0; v "w0" ]) ]
  in
  let idx = ref 0 in
  let transition_rule (tr : Two_head_dfa.transition) =
    incr idx;
    let i = !idx in
    let y = v (Printf.sprintf "y%d" i) and z = v (Printf.sprintf "z%d" i) in
    let head_gadget pos fresh_name (read : Two_head_dfa.guard) (move : Two_head_dfa.move) =
      match read with
      | None -> ([ Pos (Atom.make "F" [ pos; pos ]) ], pos)
      | Some sym ->
        let succ = v fresh_name in
        let symbol_atom = Atom.make (if sym then "P" else "Pbar") [ pos ] in
        let lits =
          [
            Pos (Atom.make "F" [ pos; succ ]);
            Neq (pos, succ);
            Pos symbol_atom;
          ]
        in
        (lits, match move with Two_head_dfa.Advance -> succ | Two_head_dfa.Stay -> pos)
    in
    let lits1, y' =
      head_gadget y (Printf.sprintf "w1_%d" i) tr.Two_head_dfa.read1 tr.Two_head_dfa.move1
    in
    let lits2, z' =
      head_gadget z (Printf.sprintf "w2_%d" i) tr.Two_head_dfa.read2 tr.Two_head_dfa.move2
    in
    rule
      (Atom.make "reach" [ state tr.Two_head_dfa.dst; y'; z' ])
      ((Pos (Atom.make "reach" [ state tr.Two_head_dfa.src; y; z ]) :: lits1) @ lits2)
  in
  let accept =
    rule
      (Atom.make "accept" [])
      [
        Pos (Atom.make "reach" [ state a.Two_head_dfa.accept; v "y"; v "z" ]);
        Pos (Atom.make "F" [ Term.int 0; v "ini" ]);
        Pos (Atom.make "F" [ v "k"; v "k" ]);
      ]
  in
  let program =
    program (base :: accept :: List.map transition_rule a.Two_head_dfa.transitions)
      ~output:"accept"
  in
  {
    schema;
    master = Database.empty master_schema;
    ccs;
    db = Database.empty schema;
    program;
  }

let encode_string t (w : Two_head_dfa.symbol list) =
  let len = List.length w in
  let db =
    List.fold_left
      (fun (db, i) sym ->
        (Database.add_tuple db (if sym then "P" else "Pbar") (Tuple.of_ints [ i ]), i + 1))
      (Database.empty t.schema, 0)
      w
    |> fst
  in
  let db =
    List.fold_left
      (fun db i -> Database.add_tuple db "F" (Tuple.of_ints [ i; i + 1 ]))
      db
      (List.init len (fun i -> i))
  in
  Database.add_tuple db "F" (Tuple.of_ints [ len; len ])

let accepts_via_datalog t w = Datalog.holds (encode_string t w) t.program

let semi_decide ?(max_tuples = 3) ?(fresh_values = 2) t =
  Rcdp.semi_decide ~max_tuples ~fresh_values ~schema:t.schema ~master:t.master ~ccs:t.ccs
    ~db:t.db (Lang.Q_fp t.program)
