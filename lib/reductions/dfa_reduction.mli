(** The undecidability construction of Theorem 3.1(3): RCDP(FP, CQ)
    encodes 2-head DFA emptiness.

    Strings are stored as position relations [P] (ones), [Pbar]
    (zeros) and a successor relation [F] with an initial edge [(0, i)]
    and a unique end marker [(k, k)]; fixed CQ containment constraints
    [V1–V3] keep instances well-formed, and a datalog program walks
    the automaton's configuration graph.  The empty database [D] is
    complete for the program relative to [(Dm, V)] iff [L(A) = ∅] —
    so a decision procedure for RCDP(FP, CQ) would decide emptiness.

    Being undecidable, the row is exercised with
    {!Ric_complete.Rcdp.semi_decide}: for an automaton accepting a
    short string the bounded search {e refutes} completeness by
    exhibiting the encoded string; for an empty automaton it reports
    "no counterexample up to the bound". *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

type t = {
  schema : Schema.t;
  master : Database.t;
  ccs : Containment.t list;
  db : Database.t;          (** the empty database whose completeness encodes emptiness *)
  program : Datalog.program;
}

val of_dfa : Two_head_dfa.t -> t

val encode_string : t -> Two_head_dfa.symbol list -> Database.t
(** The well-formed encoding of one input string — the extension a
    counterexample must (essentially) contain. *)

val accepts_via_datalog : t -> Two_head_dfa.symbol list -> bool
(** Evaluate the reachability program on the encoded string; must
    agree with {!Two_head_dfa.accepts} (tested). *)

val semi_decide : ?max_tuples:int -> ?fresh_values:int -> t -> Rcdp.semi_verdict
