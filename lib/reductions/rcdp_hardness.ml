open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

type t = {
  schema : Schema.t;
  master_schema : Schema.t;
  db : Database.t;
  master : Database.t;
  inds : Ind.t list;
  query : Cq.t;
}

let rel name arity =
  Schema.relation name (List.init arity (fun i -> Schema.attribute (Printf.sprintf "a%d" i)))

let i_or = [ [ 0; 0; 0 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ]; [ 1; 1; 1 ] ]
let i_and = [ [ 0; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 0; 0 ]; [ 1; 1; 1 ] ]
let i_not = [ [ 0; 1 ]; [ 1; 0 ] ]

(* Ic(x, y, 1) iff x = 0, or x = 1 and y = 1. *)
let i_c = [ [ 0; 0; 1 ]; [ 0; 1; 1 ]; [ 1; 0; 0 ]; [ 1; 1; 1 ] ]

let of_fe (fe : Sat.forall_exists) =
  if fe.Sat.fe_cnf.Sat.clauses = [] then
    invalid_arg "Rcdp_hardness.of_fe: need at least one clause";
  let schema =
    Schema.make [ rel "R1" 1; rel "R2" 3; rel "R3" 3; rel "R4" 2; rel "R5" 3; rel "R6" 1 ]
  in
  let master_schema =
    Schema.make
      [ rel "m_R1" 1; rel "m_R2" 3; rel "m_R3" 3; rel "m_R4" 2; rel "m_R5" 3; rel "m_R6" 1 ]
  in
  let master =
    Database.of_list master_schema
      [
        ("m_R1", Relation.of_int_rows [ [ 0 ]; [ 1 ] ]);
        ("m_R2", Relation.of_int_rows i_or);
        ("m_R3", Relation.of_int_rows i_and);
        ("m_R4", Relation.of_int_rows i_not);
        ("m_R5", Relation.of_int_rows i_c);
        ("m_R6", Relation.of_int_rows [ [ 0 ]; [ 1 ] ]);
      ]
  in
  let db =
    Database.of_list schema
      [
        ("R1", Relation.of_int_rows [ [ 0 ]; [ 1 ] ]);
        ("R2", Relation.of_int_rows i_or);
        ("R3", Relation.of_int_rows i_and);
        ("R4", Relation.of_int_rows i_not);
        ("R5", Relation.of_int_rows i_c);
        ("R6", Relation.of_int_rows [ [ 1 ] ]);
      ]
  in
  let inds =
    List.map
      (fun (name, arity) ->
        Ind.make ~name:("ind_" ^ name) ~rel:name
          ~cols:(List.init arity (fun i -> i))
          (Projection.proj ("m_" ^ name) (List.init arity (fun i -> i))))
      [ ("R1", 1); ("R2", 3); ("R3", 3); ("R4", 2); ("R5", 3); ("R6", 1) ]
  in
  (* Query construction. *)
  let n = fe.Sat.fe_forall and cnf = fe.Sat.fe_cnf in
  let var i = Term.var (Printf.sprintf "v%d" i) in
  let nvar i = Term.var (Printf.sprintf "nv%d" i) in
  let atoms = ref [ Atom.make "R6" [ Term.var "z'" ] ] in
  let add a = atoms := a :: !atoms in
  List.iteri (fun i _ -> add (Atom.make "R1" [ var i ])) (List.init cnf.Sat.n_vars (fun i -> i));
  (* complements, one per variable occurring negatively *)
  let negated =
    List.concat_map
      (fun (a, b, c) ->
        List.filter_map (fun (l : Sat.literal) -> if l.Sat.neg then Some l.Sat.var else None)
          [ a; b; c ])
      cnf.Sat.clauses
    |> List.sort_uniq compare
  in
  List.iter (fun i -> add (Atom.make "R4" [ var i; nvar i ])) negated;
  let term_of (l : Sat.literal) = if l.Sat.neg then nvar l.Sat.var else var l.Sat.var in
  (* clause gadgets: c_i = l1 ∨ l2 ∨ l3 *)
  let clause_val =
    List.mapi
      (fun i (l1, l2, l3) ->
        let o = Term.var (Printf.sprintf "o%d" i) in
        let c = Term.var (Printf.sprintf "c%d" i) in
        add (Atom.make "R2" [ term_of l1; term_of l2; o ]);
        add (Atom.make "R2" [ o; term_of l3; c ]);
        c)
      cnf.Sat.clauses
  in
  (* conjunction chain: z = c_1 ∧ ... ∧ c_r *)
  let z =
    match clause_val with
    | [] -> assert false
    | first :: rest ->
      let idx = ref 0 in
      List.fold_left
        (fun acc c ->
          incr idx;
          let u = Term.var (Printf.sprintf "u%d" !idx) in
          add (Atom.make "R3" [ acc; c; u ]);
          u)
        first rest
  in
  add (Atom.make "R5" [ Term.var "z'"; z; Term.int 1 ]);
  let head = List.init n var in
  let query = Cq.make ~head (List.rev !atoms) in
  { schema; master_schema; db; master; inds; query }

let expected fe = Sat.eval_fe fe

let decide ?(ind_fast = true) t =
  let verdict =
    if ind_fast then
      Rcdp.decide_ind ~schema:t.schema ~master:t.master ~inds:t.inds ~db:t.db
        (Lang.Q_cq t.query)
    else
      let ccs = List.map (Ind.to_cc t.schema) t.inds in
      Rcdp.decide ~schema:t.schema ~master:t.master ~ccs ~db:t.db (Lang.Q_cq t.query)
  in
  match verdict with
  | Rcdp.Complete -> true
  | Rcdp.Incomplete _ -> false
