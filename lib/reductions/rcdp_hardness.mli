(** The Σ₂ᵖ lower-bound construction of Theorem 3.6: from a
    ∀*∃*-3SAT instance [φ = ∀X ∃Y C1 ∧ ... ∧ Cr] build master data
    [Dm], a {e fixed} set [V] of INDs, a database [D] and a CQ [Q]
    such that [D] is complete for [Q] relative to [(Dm, V)] iff [φ]
    holds.

    The encoding stores the Boolean domain in [R1], the truth tables
    of ∨, ∧, ¬ and the conditional-selection table [Ic] in [R2]–[R5],
    and a switch relation [R6] that holds [{1}] in [D] but is allowed
    to grow to [{0, 1}]; [Q] returns the universally quantified
    assignments for which the matrix is satisfiable when the switch is
    [1], and every assignment once [0] sneaks in, so completeness of
    [D] says exactly that every [X]-assignment already has a
    [Y]-witness. *)

open Ric_relational
open Ric_query
open Ric_constraints

type t = {
  schema : Schema.t;
  master_schema : Schema.t;
  db : Database.t;
  master : Database.t;
  inds : Ind.t list;
  query : Cq.t;
}

val of_fe : Sat.forall_exists -> t
(** @raise Invalid_argument on an instance with no clauses. *)

val expected : Sat.forall_exists -> bool
(** Ground truth from the brute-force QBF evaluator: [true] iff the
    constructed database should be relatively complete. *)

val decide : ?ind_fast:bool -> t -> bool
(** Run the RCDP decider on the constructed instance ([ind_fast]
    selects the Corollary 3.4 C3 path); [true] means complete. *)
