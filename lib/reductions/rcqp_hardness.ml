open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

type t = {
  schema : Schema.t;
  master_schema : Schema.t;
  master : Database.t;
  inds : Ind.t list;
  query : Cq.t;
}

let rel name arity =
  Schema.relation name (List.init arity (fun i -> Schema.attribute (Printf.sprintf "a%d" i)))

(* The seven satisfying rows of l1 ∨ l2 ∨ l3. *)
let i_or3 =
  List.filter
    (fun row -> List.exists (fun b -> b = 1) row)
    (List.concat_map
       (fun a -> List.concat_map (fun b -> List.map (fun c -> [ a; b; c ]) [ 0; 1 ]) [ 0; 1 ])
       [ 0; 1 ])

let of_cnf (cnf : Sat.cnf) =
  if cnf.Sat.clauses = [] || cnf.Sat.n_vars = 0 then
    invalid_arg "Rcqp_hardness.of_cnf: need at least one clause and one variable";
  let n = cnf.Sat.n_vars in
  let schema =
    Schema.make [ rel "Rt" 2; rel "Ror" 3; rel "R" (1 + (2 * n)) ]
  in
  let master_schema = Schema.make [ rel "m_Rt" 2; rel "m_Ror" 3 ] in
  let master =
    Database.of_list master_schema
      [
        ("m_Rt", Relation.of_int_rows [ [ 0; 1 ]; [ 1; 0 ] ]);
        ("m_Ror", Relation.of_int_rows i_or3);
      ]
  in
  let inds =
    [
      Ind.make ~name:"ind_Rt" ~rel:"Rt" ~cols:[ 0; 1 ] (Projection.proj "m_Rt" [ 0; 1 ]);
      Ind.make ~name:"ind_Ror" ~rel:"Ror" ~cols:[ 0; 1; 2 ]
        (Projection.proj "m_Ror" [ 0; 1; 2 ]);
    ]
  in
  let x i = Term.var (Printf.sprintf "x%d" i) in
  let xb i = Term.var (Printf.sprintf "xb%d" i) in
  let term_of (l : Sat.literal) = if l.Sat.neg then xb l.Sat.var else x l.Sat.var in
  let r_args =
    Term.var "z" :: List.concat (List.init n (fun i -> [ x i; xb i ]))
  in
  let atoms =
    Atom.make "R" r_args
    :: List.init n (fun i -> Atom.make "Rt" [ x i; xb i ])
    @ List.map
        (fun (l1, l2, l3) -> Atom.make "Ror" [ term_of l1; term_of l2; term_of l3 ])
        cnf.Sat.clauses
  in
  let query = Cq.make ~head:[ Term.var "z" ] atoms in
  { schema; master_schema; master; inds; query }

let expected_nonempty cnf = not (Sat.satisfiable cnf)

let decide t =
  match Rcqp.decide_ind ~schema:t.schema ~master:t.master ~inds:t.inds (Lang.Q_cq t.query) with
  | Rcqp.Nonempty _ -> true
  | Rcqp.Empty _ -> false
  | Rcqp.Unknown _ -> assert false (* decide_ind never returns Unknown *)
