(** The coNP lower-bound construction of Theorem 4.5(1): from a 3SAT
    instance [φ] build fixed master data, a fixed set of INDs, and a
    CQ [Q] over schema
    [Rt(x, x̄), R∨(l1, l2, l3), R(A, x1, x̄1, ..., xn, x̄n)] such that

    [φ] is satisfiable  ⟺  [RCQ(Q, Dm, V)] is {e empty}.

    The output column [A] is infinite-domain and IND-free, so the
    query is unbounded (E4 fails) whenever a valid valuation exists —
    and valid valuations are exactly the satisfying assignments. *)

open Ric_relational
open Ric_query
open Ric_constraints

type t = {
  schema : Schema.t;
  master_schema : Schema.t;
  master : Database.t;
  inds : Ind.t list;
  query : Cq.t;
}

val of_cnf : Sat.cnf -> t
(** @raise Invalid_argument on an instance with no clauses or no
    variables. *)

val expected_nonempty : Sat.cnf -> bool
(** Ground truth: [RCQ] should be nonempty iff [φ] is unsatisfiable. *)

val decide : t -> bool
(** Run {!Ric_complete.Rcqp.decide_ind}; [true] means nonempty. *)
