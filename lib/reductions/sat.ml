type literal = {
  var : int;
  neg : bool;
}

type clause = literal * literal * literal

type cnf = {
  n_vars : int;
  clauses : clause list;
}

let lit ?(neg = false) var = { var; neg }

let eval_literal assignment l = if l.neg then not assignment.(l.var) else assignment.(l.var)

let eval_clause assignment (a, b, c) =
  eval_literal assignment a || eval_literal assignment b || eval_literal assignment c

let eval_cnf assignment cnf = List.for_all (eval_clause assignment) cnf.clauses

(* Enumerate assignments of variables [lo, hi) on top of a partial
   assignment; [k] combines sub-results. *)
let rec assignments_exist assignment lo hi cnf =
  if lo = hi then eval_cnf assignment cnf
  else begin
    assignment.(lo) <- false;
    assignments_exist assignment (lo + 1) hi cnf
    ||
    (assignment.(lo) <- true;
     let r = assignments_exist assignment (lo + 1) hi cnf in
     assignment.(lo) <- false;
     r)
  end

let rec assignments_all assignment lo hi k =
  if lo = hi then k assignment
  else begin
    assignment.(lo) <- false;
    assignments_all assignment (lo + 1) hi k
    &&
    (assignment.(lo) <- true;
     let r = assignments_all assignment (lo + 1) hi k in
     assignment.(lo) <- false;
     r)
  end

let satisfiable cnf =
  let a = Array.make (max 1 cnf.n_vars) false in
  assignments_exist a 0 cnf.n_vars cnf

let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    !state mod bound

let random_clause rand n_vars =
  let l () = { var = rand n_vars; neg = rand 2 = 0 } in
  (l (), l (), l ())

let random_cnf ~seed ~n_vars ~n_clauses =
  let rand = lcg seed in
  { n_vars; clauses = List.init n_clauses (fun _ -> random_clause rand n_vars) }

type forall_exists = {
  fe_forall : int;
  fe_exists : int;
  fe_cnf : cnf;
}

let make_fe ~n_forall ~n_exists clauses =
  let cnf = { n_vars = n_forall + n_exists; clauses } in
  List.iter
    (fun (a, b, c) ->
      List.iter
        (fun l ->
          if l.var < 0 || l.var >= cnf.n_vars then
            invalid_arg "Sat.make_fe: literal out of range")
        [ a; b; c ])
    clauses;
  { fe_forall = n_forall; fe_exists = n_exists; fe_cnf = cnf }

let eval_fe fe =
  let n = fe.fe_cnf.n_vars in
  let a = Array.make (max 1 n) false in
  assignments_all a 0 fe.fe_forall (fun a ->
      assignments_exist a fe.fe_forall n fe.fe_cnf)

let random_fe ~seed ~n_forall ~n_exists ~n_clauses =
  let rand = lcg seed in
  let n_vars = n_forall + n_exists in
  {
    fe_forall = n_forall;
    fe_exists = n_exists;
    fe_cnf = { n_vars; clauses = List.init n_clauses (fun _ -> random_clause rand n_vars) };
  }

type exists_forall_exists = {
  efe_exists1 : int;
  efe_forall : int;
  efe_exists2 : int;
  efe_cnf : cnf;
}

let make_efe ~n_exists1 ~n_forall ~n_exists2 clauses =
  let cnf = { n_vars = n_exists1 + n_forall + n_exists2; clauses } in
  { efe_exists1 = n_exists1; efe_forall = n_forall; efe_exists2 = n_exists2; efe_cnf = cnf }

let eval_efe e =
  let n = e.efe_cnf.n_vars in
  let a = Array.make (max 1 n) false in
  let rec exists1 i =
    if i = e.efe_exists1 then
      assignments_all a e.efe_exists1
        (e.efe_exists1 + e.efe_forall)
        (fun a -> assignments_exist a (e.efe_exists1 + e.efe_forall) n e.efe_cnf)
    else begin
      a.(i) <- false;
      exists1 (i + 1)
      ||
      (a.(i) <- true;
       let r = exists1 (i + 1) in
       a.(i) <- false;
       r)
    end
  in
  exists1 0

let pp_literal ppf l = Format.fprintf ppf "%sx%d" (if l.neg then "¬" else "") l.var

let pp_cnf ppf cnf =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " ∧ ")
    (fun ppf (a, b, c) ->
      Format.fprintf ppf "(%a ∨ %a ∨ %a)" pp_literal a pp_literal b pp_literal c)
    ppf cnf.clauses
