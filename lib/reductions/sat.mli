(** Propositional machinery for the hardness reductions: 3SAT,
    ∀*∃*-3SAT (Theorem 3.6's lower bound) and ∃*∀*∃*-3SAT
    (Corollary 4.6's lower bound), with brute-force evaluators used as
    test oracles. *)

type literal = {
  var : int;    (** 0-based variable index *)
  neg : bool;
}

type clause = literal * literal * literal

type cnf = {
  n_vars : int;
  clauses : clause list;
}

val lit : ?neg:bool -> int -> literal

val eval_clause : bool array -> clause -> bool

val eval_cnf : bool array -> cnf -> bool

val satisfiable : cnf -> bool
(** Brute force over all [2^n_vars] assignments. *)

val random_cnf : seed:int -> n_vars:int -> n_clauses:int -> cnf
(** Deterministic pseudo-random 3SAT instance. *)

(** [∀X ∃Y ψ]: the first [n_forall] variables are universal, the next
    [n_exists] existential. *)
type forall_exists = {
  fe_forall : int;
  fe_exists : int;
  fe_cnf : cnf;  (** over [fe_forall + fe_exists] variables *)
}

val make_fe : n_forall:int -> n_exists:int -> clause list -> forall_exists

val eval_fe : forall_exists -> bool

val random_fe : seed:int -> n_forall:int -> n_exists:int -> n_clauses:int -> forall_exists

(** [∃X ∀Y ∃Z ψ] for Corollary 4.6. *)
type exists_forall_exists = {
  efe_exists1 : int;
  efe_forall : int;
  efe_exists2 : int;
  efe_cnf : cnf;
}

val make_efe :
  n_exists1:int -> n_forall:int -> n_exists2:int -> clause list -> exists_forall_exists

val eval_efe : exists_forall_exists -> bool

val pp_cnf : Format.formatter -> cnf -> unit
