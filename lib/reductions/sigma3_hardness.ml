open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

type t = {
  schema : Schema.t;
  master_schema : Schema.t;
  master : Database.t;
  ccs : Containment.t list;
  query : Cq.t;
}

let rel name arity =
  Schema.relation name (List.init arity (fun i -> Schema.attribute (Printf.sprintf "a%d" i)))

let i_or = [ [ 0; 0; 0 ]; [ 0; 1; 1 ]; [ 1; 0; 1 ]; [ 1; 1; 1 ] ]
let i_and = [ [ 0; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 0; 0 ]; [ 1; 1; 1 ] ]
let i_not = [ [ 0; 1 ]; [ 1; 0 ] ]

let designated_id = Value.Str "a0"

let of_efe (e : Sat.exists_forall_exists) =
  let n = e.Sat.efe_exists1 and m = e.Sat.efe_forall and p = e.Sat.efe_exists2 in
  if n = 0 || m = 0 then invalid_arg "Sigma3_hardness.of_efe: empty quantifier block";
  if e.Sat.efe_cnf.Sat.clauses = [] then
    invalid_arg "Sigma3_hardness.of_efe: need at least one clause";
  let schema =
    Schema.make
      [ rel "R1" 1; rel "R2" 3; rel "R3" 3; rel "R4" 2; rel "RX" (n + 1); rel "Rb" 2 ]
  in
  let master_schema =
    Schema.make [ rel "m_R1" 1; rel "m_R2" 3; rel "m_R3" 3; rel "m_R4" 2; rel "m_Rb" 1 ]
  in
  let master =
    Database.of_list master_schema
      [
        ("m_R1", Relation.of_int_rows [ [ 0 ]; [ 1 ] ]);
        ("m_R2", Relation.of_int_rows i_or);
        ("m_R3", Relation.of_int_rows i_and);
        ("m_R4", Relation.of_int_rows i_not);
        ("m_Rb", Relation.of_int_rows [ [ 0 ] ]);
      ]
  in
  let v = Term.var in
  (* fixed constraints *)
  let ind name arity =
    Ind.to_cc schema
      (Ind.make ~name:("ind_" ^ name) ~rel:name
         ~cols:(List.init arity (fun i -> i))
         (Projection.proj ("m_" ^ name) (List.init arity (fun i -> i))))
  in
  let rx_key =
    (* id (last column) is a key of RX, via Proposition 2.1 *)
    Translate.of_fd schema
      (Fd.make ~name:"rx_key" ~rel:"RX" ~lhs:[ n ] ~rhs:(List.init n (fun i -> i)) ())
  in
  let rx_bool =
    (* every assignment column holds a Boolean *)
    List.init n (fun i ->
        let args = List.init (n + 1) (fun j -> v (Printf.sprintf "rx%d" j)) in
        Containment.make
          ~name:(Printf.sprintf "rx_bool%d" i)
          (Lang.Q_cq (Cq.make ~head:[ List.nth args i ] [ Atom.make "RX" args ]))
          (Projection.proj "m_R1" [ 0 ]))
  in
  let qb =
    (* rows of Rb tagged q = 1 have their pay-off column bounded *)
    Containment.make ~name:"qb"
      (Lang.Q_cq (Cq.make ~head:[ v "A" ] [ Atom.make "Rb" [ Term.int 1; v "A" ] ]))
      (Projection.proj "m_Rb" [ 0 ])
  in
  let ccs =
    [ ind "R1" 1; ind "R2" 3; ind "R3" 3; ind "R4" 2 ] @ rx_key @ rx_bool @ [ qb ]
  in
  (* ---------------------------------------------------------------- *)
  (* The query. *)
  let x i = v (Printf.sprintf "x%d" i) in
  let y j = v (Printf.sprintf "y%d" (j - n)) in
  let atoms = ref [] in
  let add a = atoms := a :: !atoms in
  (* designated X-assignment *)
  add (Atom.make "RX" (List.init n x @ [ Term.const designated_id ]));
  (* Y-assignments range over the Boolean domain *)
  for j = n to n + m - 1 do
    add (Atom.make "R1" [ y j ])
  done;
  (* complements of negatively used X/Y variables *)
  let nvar i = v (Printf.sprintf "nv%d" i) in
  let negated =
    List.concat_map
      (fun (a, b, c) ->
        List.filter_map
          (fun (l : Sat.literal) ->
            if l.Sat.neg && l.Sat.var < n + m then Some l.Sat.var else None)
          [ a; b; c ])
      e.Sat.efe_cnf.Sat.clauses
    |> List.sort_uniq compare
  in
  List.iter
    (fun i -> add (Atom.make "R4" [ (if i < n then x i else y i); nvar i ]))
    negated;
  let xy_term (l : Sat.literal) =
    if l.Sat.neg then nvar l.Sat.var
    else if l.Sat.var < n then x l.Sat.var
    else y l.Sat.var
  in
  (* ψ's value for one concrete Z-assignment σ: literals over Z become
     constants, the circuit is built from the truth-table relations *)
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    v (Printf.sprintf "%s%d" prefix !counter)
  in
  let z_base = n + m in
  let psi_value (sigma : bool array) =
    let term_of (l : Sat.literal) =
      if l.Sat.var >= z_base then begin
        let bit = sigma.(l.Sat.var - z_base) in
        Term.int (if (not l.Sat.neg) = bit then 1 else 0)
      end
      else xy_term l
    in
    let clause_vals =
      List.map
        (fun (l1, l2, l3) ->
          let o = fresh "o" and c = fresh "c" in
          add (Atom.make "R2" [ term_of l1; term_of l2; o ]);
          add (Atom.make "R2" [ o; term_of l3; c ]);
          c)
        e.Sat.efe_cnf.Sat.clauses
    in
    match clause_vals with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun acc c ->
          let u = fresh "u" in
          add (Atom.make "R3" [ acc; c; u ]);
          u)
        first rest
  in
  (* q = ⟦∃Z ψ⟧: OR over every Z-assignment *)
  let all_sigmas =
    let rec go k = if k = 0 then [ [] ] else List.concat_map (fun s -> [ false :: s; true :: s ]) (go (k - 1)) in
    List.map Array.of_list (go p)
  in
  let q_term =
    match List.map psi_value all_sigmas with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun acc t ->
          let u = fresh "or" in
          add (Atom.make "R2" [ acc; t; u ]);
          u)
        first rest
  in
  add (Atom.make "Rb" [ q_term; v "A" ]);
  let head = List.init m (fun j -> y (n + j)) @ [ v "A" ] in
  let query = Cq.make ~head (List.rev !atoms) in
  { schema; master_schema; master; ccs; query }

let expected_nonempty e = Sat.eval_efe e

let witness_for t (e : Sat.exists_forall_exists) assignment =
  let n = e.Sat.efe_exists1 in
  let rx_row =
    Tuple.make
      (List.init n (fun i -> Value.Int (if assignment.(i) then 1 else 0)) @ [ designated_id ])
  in
  Database.of_list t.schema
    [
      ("R1", Relation.of_int_rows [ [ 0 ]; [ 1 ] ]);
      ("R2", Relation.of_int_rows i_or);
      ("R3", Relation.of_int_rows i_and);
      ("R4", Relation.of_int_rows i_not);
      ("RX", Relation.of_tuples [ rx_row ]);
      ("Rb", Relation.of_int_rows [ [ 1; 0 ] ]);
    ]

let decide ?(budget = Rcqp.default_budget) t =
  Rcqp.decide ~budget ~schema:t.schema ~master:t.master ~ccs:t.ccs (Lang.Q_cq t.query)
