(** The Σ₃ᵖ lower-bound construction of Corollary 4.6: with master
    data and containment constraints fixed, RCQP(CQ, CQ) encodes
    ∃*∀*∃*-3SAT.

    From [φ = ∃X ∀Y ∃Z ψ] we build:

    - truth-table relations [R1–R4] (Boolean domain, ∨, ∧, ¬) bounded
      by fixed master copies;
    - an assignment relation [RX(A1, ..., An, id)] whose [id] column
      is a key (so the row with the designated id, if any, fixes one
      [X]-assignment);
    - a pay-off relation [Rb(q, A)] with the fixed constraint
      [Rb(1, A) ⊆ {0}] — rows tagged [q = 1] are bounded by master
      data, rows tagged [q = 0] are open world;
    - a query [Q(ȳ, A)] that reads the designated [X]-assignment,
      ranges over all [Y]-assignments, computes
      [q = ⟦∃Z ψ(X, Y, Z)⟧] {e exactly} by an OR-chain over every
      [Z]-assignment (exponential in [|Z|], fine at toy scale — the
      paper's polynomial gadget is only sketched in the available
      text), and joins [Rb(q, A)].

    A database is complete iff its designated [X]-assignment makes
    [∀Y ∃Z ψ] true: then every derivable pair carries [q = 1] and the
    fixed constraint blocks fresh [A] values; any [Y] with
    [¬∃Z ψ] leaves a [q = 0] row whose [A] column no constraint can
    bound.  Hence [RCQ(Q, Dm, V) ≠ ∅ ⟺ φ]. *)

open Ric_relational
open Ric_query
open Ric_constraints

type t = {
  schema : Schema.t;
  master_schema : Schema.t;
  master : Database.t;
  ccs : Containment.t list;
  query : Cq.t;
}

val of_efe : Sat.exists_forall_exists -> t
(** @raise Invalid_argument if any block is empty or there are no
    clauses. *)

val expected_nonempty : Sat.exists_forall_exists -> bool

val witness_for : t -> Sat.exists_forall_exists -> bool array -> Database.t
(** The hand-built witness for a given [X]-assignment (the first
    [efe_exists1] cells of the array): truth tables + the [RX] row +
    [Rb = {(1, 0)}].  Used by tests to validate the construction
    against the RCDP decider directly. *)

val decide : ?budget:Ric_complete.Rcqp.budget -> t -> Ric_complete.Rcqp.verdict
