open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

type problem = {
  n_tiles : int;
  vert : (int * int) list;
  horiz : (int * int) list;
  t0 : int;
}

let solvable_2x2 p =
  let tiles = List.init p.n_tiles (fun i -> i) in
  let v a b = List.mem (a, b) p.vert in
  let h a b = List.mem (a, b) p.horiz in
  List.exists
    (fun x1 ->
      x1 = p.t0
      && List.exists
           (fun x2 ->
             h x1 x2
             && List.exists
                  (fun x3 ->
                    v x1 x3
                    && List.exists (fun x4 -> v x2 x4 && h x3 x4) tiles)
                  tiles)
           tiles)
    tiles

type t = {
  schema : Schema.t;
  master : Database.t;
  ccs : Containment.t list;
  query : Cq.t;
}

let v = Term.var

let of_problem p =
  let schema =
    Schema.make
      [
        Schema.relation "R1"
          [
            Schema.attribute "id";
            Schema.attribute "x1";
            Schema.attribute "x2";
            Schema.attribute "x3";
            Schema.attribute "x4";
            Schema.attribute "z";
          ];
        Schema.relation "Rb" [ Schema.attribute "w" ];
      ]
  in
  let master_schema =
    Schema.make
      [
        Schema.relation "mT" [ Schema.attribute "t" ];
        Schema.relation "mV" [ Schema.attribute "t"; Schema.attribute "t'" ];
        Schema.relation "mH" [ Schema.attribute "t"; Schema.attribute "t'" ];
        Schema.relation "mB" [ Schema.attribute "b" ];
      ]
  in
  let master =
    Database.of_list master_schema
      [
        ("mT", Relation.of_int_rows (List.init p.n_tiles (fun i -> [ i ])));
        ("mV", Relation.of_int_rows (List.map (fun (a, b) -> [ a; b ]) p.vert));
        ("mH", Relation.of_int_rows (List.map (fun (a, b) -> [ a; b ]) p.horiz));
        ("mB", Relation.of_int_rows [ [ 0 ] ]);
      ]
  in
  let r1 args = Atom.make "R1" args in
  let all = [ v "id"; v "x1"; v "x2"; v "x3"; v "x4"; v "z" ] in
  let proj name cols target head_vars =
    Containment.make ~name
      (Lang.Q_cq (Cq.make ~head:head_vars [ r1 all ]))
      (Projection.proj target cols)
  in
  let ccs =
    [
      (* every tile column is a tile *)
      proj "VT1" [ 0 ] "mT" [ v "x1" ];
      proj "VT2" [ 0 ] "mT" [ v "x2" ];
      proj "VT3" [ 0 ] "mT" [ v "x3" ];
      proj "VT4" [ 0 ] "mT" [ v "x4" ];
      proj "VTz" [ 0 ] "mT" [ v "z" ];
      (* vertical compatibility *)
      proj "Vvert1" [ 0; 1 ] "mV" [ v "x1"; v "x3" ];
      proj "Vvert2" [ 0; 1 ] "mV" [ v "x2"; v "x4" ];
      (* horizontal compatibility *)
      proj "Vhor1" [ 0; 1 ] "mH" [ v "x1"; v "x2" ];
      proj "Vhor2" [ 0; 1 ] "mH" [ v "x3"; v "x4" ];
      (* the top-left corner equals z; the head stays narrow — for a
         ⊆ ∅ constraint only the inequality's variables matter, and a
         full head would mark every column visible and blow up the
         decider's candidate pool *)
      Containment.make ~name:"Vtopl"
        (Lang.Q_cq (Cq.make ~neqs:[ (v "x1", v "z") ] ~head:[ v "x1"; v "z" ] [ r1 all ]))
        Projection.Empty;
      (* φ: once a t0-cornered hypertile exists, Rb is bounded by mB *)
      Containment.make ~name:"phi"
        (Lang.Q_cq
           (Cq.make ~head:[ v "w" ]
              [
                r1 [ v "id"; v "x1"; v "x2"; v "x3"; v "x4"; Term.int p.t0 ];
                Atom.make "Rb" [ v "w" ];
              ]))
        (Projection.proj "mB" [ 0 ]);
    ]
  in
  let query = Cq.make ~head:[ v "w" ] [ Atom.make "Rb" [ v "w" ] ] in
  { schema; master; ccs; query }

let decide ?(budget = Rcqp.default_budget) t =
  Rcqp.decide ~budget ~schema:t.schema ~master:t.master ~ccs:t.ccs (Lang.Q_cq t.query)

let free_problem n =
  let tiles = List.init n (fun i -> i) in
  let pairs = List.concat_map (fun a -> List.map (fun b -> (a, b)) tiles) tiles in
  { n_tiles = n; vert = pairs; horiz = pairs; t0 = 0 }

let striped =
  {
    n_tiles = 2;
    vert = [ (0, 0); (1, 1) ];
    horiz = [ (0, 1); (1, 0) ];
    t0 = 0;
  }

let unsolvable = { n_tiles = 2; vert = [ (1, 1) ]; horiz = [ (1, 1) ]; t0 = 0 }
