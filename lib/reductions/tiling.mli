(** The NEXPTIME lower-bound construction of Theorem 4.5(2): the
    [2ⁿ × 2ⁿ] tiling problem reduces to RCQP(CQ, CQ).

    Hypertiles of rank [i] are [2ⁱ × 2ⁱ] squares; a rank-1 hypertile
    is a row of [R1(id, x1, x2, x3, x4, z)] whose four quadrant tiles
    satisfy the vertical ([x1/x3], [x2/x4]) and horizontal ([x1/x2],
    [x3/x4]) compatibility relations, with [z] the top-left tile.
    A final constraint [φ] bounds the free relation [Rb] by the master
    bit [mB = {0}] exactly when a hypertile with top-left tile [t0]
    exists, so the query [Q(w) = Rb(w)] has a relatively complete
    database iff a tiling exists.

    This module instantiates the construction for [n = 1] (2×2
    tilings), which already exhibits the valuation-set search the
    NEXPTIME upper bound performs; ranks [n > 1] add the hypertile
    join relations [R2 … Rn] whose key constraints put exact analysis
    outside any practical budget — the paper's point. *)

open Ric_relational
open Ric_query
open Ric_constraints

type problem = {
  n_tiles : int;                 (** tiles are [0 .. n_tiles-1] *)
  vert : (int * int) list;       (** allowed vertical neighbours (top, bottom) *)
  horiz : (int * int) list;      (** allowed horizontal neighbours (left, right) *)
  t0 : int;                      (** the forced top-left tile *)
}

val solvable_2x2 : problem -> bool
(** Brute-force ground truth for the 2×2 case. *)

type t = {
  schema : Schema.t;
  master : Database.t;
  ccs : Containment.t list;
  query : Cq.t;
}

val of_problem : problem -> t
(** The [n = 1] instance of the construction. *)

val decide : ?budget:Ric_complete.Rcqp.budget -> t -> Ric_complete.Rcqp.verdict

(** Canned problems. *)

val free_problem : int -> problem
(** Every neighbour pair allowed — always solvable. *)

val striped : problem
(** Two tiles that may only sit next to themselves vertically and must
    alternate horizontally — solvable. *)

val unsolvable : problem
(** Tile 0 may neighbour nothing — no 2×2 tiling with [t0 = 0]. *)
