type symbol = bool

type move =
  | Stay
  | Advance

type guard = symbol option

type transition = {
  src : int;
  read1 : guard;
  read2 : guard;
  dst : int;
  move1 : move;
  move2 : move;
}

type t = {
  n_states : int;
  start : int;
  accept : int;
  transitions : transition list;
}

let make ~n_states ~start ~accept transitions =
  let check_state q =
    if q < 0 || q >= n_states then invalid_arg "Two_head_dfa.make: state out of range"
  in
  check_state start;
  check_state accept;
  List.iter
    (fun tr ->
      check_state tr.src;
      check_state tr.dst;
      if (tr.read1 = None && tr.move1 = Advance) || (tr.read2 = None && tr.move2 = Advance)
      then invalid_arg "Two_head_dfa.make: cannot advance a head past the end")
    transitions;
  { n_states; start; accept; transitions }

(* Configurations: (state, pos1, pos2) over a fixed input. *)
let accepts a input =
  let w = Array.of_list input in
  let len = Array.length w in
  let guard_ok pos = function
    | None -> pos = len
    | Some s -> pos < len && Bool.equal w.(pos) s
  in
  let step pos = function
    | Stay -> pos
    | Advance -> pos + 1
  in
  let visited = Hashtbl.create 64 in
  let rec bfs frontier =
    match frontier with
    | [] -> false
    | (q, p1, p2) :: rest ->
      if q = a.accept then true
      else if Hashtbl.mem visited (q, p1, p2) then bfs rest
      else begin
        Hashtbl.add visited (q, p1, p2) ();
        let next =
          List.filter_map
            (fun tr ->
              if tr.src = q && guard_ok p1 tr.read1 && guard_ok p2 tr.read2 then
                Some (tr.dst, step p1 tr.move1, step p2 tr.move2)
              else None)
            a.transitions
        in
        bfs (next @ rest)
      end
  in
  bfs [ (a.start, 0, 0) ]

let strings_of_length n =
  let rec go n =
    if n = 0 then [ [] ]
    else
      let shorter = go (n - 1) in
      List.concat_map (fun w -> [ false :: w; true :: w ]) shorter
  in
  go n

let shortest_accepted a ~max_len =
  let rec try_len n =
    if n > max_len then None
    else
      match List.find_opt (accepts a) (strings_of_length n) with
      | Some w -> Some w
      | None -> try_len (n + 1)
  in
  try_len 0

let empty_up_to a ~max_len = Option.is_none (shortest_accepted a ~max_len)

let accepts_one =
  (* state 0 start; read (1,1) advancing both heads -> state 1; at
     (ε, ε) from state 1 -> accept state 2. *)
  make ~n_states:3 ~start:0 ~accept:2
    [
      { src = 0; read1 = Some true; read2 = Some true; dst = 1; move1 = Advance; move2 = Advance };
      { src = 1; read1 = None; read2 = None; dst = 2; move1 = Stay; move2 = Stay };
    ]

let accepts_nothing = make ~n_states:2 ~start:0 ~accept:1 []

let equal_heads =
  (* loop on (1,1); accept at (ε,ε): the all-ones strings. *)
  make ~n_states:2 ~start:0 ~accept:1
    [
      { src = 0; read1 = Some true; read2 = Some true; dst = 0; move1 = Advance; move2 = Advance };
      { src = 0; read1 = None; read2 = None; dst = 1; move1 = Stay; move2 = Stay };
    ]
