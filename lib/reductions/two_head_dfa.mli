(** Deterministic finite 2-head automata (Spielmann 2000), the machine
    model behind the paper's undecidability proofs (Theorems 3.1(3,4)
    and 4.1(1,3,4)).

    A 2-head DFA reads one input string with two independent one-way
    heads; a transition fires on the pair of symbols under the heads
    ([None] standing for ε — the head sits at the end of the string)
    and advances each head by 0 or 1.  Emptiness of the accepted
    language is undecidable in general; {!empty_up_to} is the bounded
    check the reproduction uses as a stand-in oracle. *)

type symbol = bool
(** the alphabet Σ = {0, 1}; [true] is 1 *)

type move =
  | Stay
  | Advance

type guard = symbol option
(** [Some s] — the head reads [s]; [None] — ε, the head is past the
    last symbol. *)

type transition = {
  src : int;
  read1 : guard;
  read2 : guard;
  dst : int;
  move1 : move;
  move2 : move;
}

type t = {
  n_states : int;
  start : int;
  accept : int;
  transitions : transition list;
}

val make : n_states:int -> start:int -> accept:int -> transition list -> t
(** @raise Invalid_argument on out-of-range states or on a transition
    that advances a head past the end ([read = None] with
    [move = Advance]). *)

val accepts : t -> symbol list -> bool
(** Simulate the automaton on one input (BFS over configurations —
    deterministic automata have at most one enabled transition, but we
    do not rely on it). *)

val shortest_accepted : t -> max_len:int -> symbol list option
(** The first accepted string of length ≤ [max_len], in
    length-lexicographic order. *)

val empty_up_to : t -> max_len:int -> bool
(** No string of length ≤ [max_len] is accepted. *)

(** Canned automata for tests and benches. *)

val accepts_one : t
(** Accepts exactly the string ["1"]. *)

val accepts_nothing : t
(** The accepting state is unreachable. *)

val equal_heads : t
(** Accepts strings of even length whose two halves… — concretely, a
    small machine that accepts strings of the form [1^n] by advancing
    both heads together; accepts every string of all-1s including the
    empty one. *)
