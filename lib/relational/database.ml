module SMap = Map.Make (String)

type t = {
  sch : Schema.t;
  rels : Relation.t SMap.t;
}

let empty sch =
  let rels =
    List.fold_left
      (fun m (r : Schema.relation_schema) -> SMap.add r.rel_name Relation.empty m)
      SMap.empty (Schema.relations sch)
  in
  { sch; rels }

let schema d = d.sch

let check_conforms sch name rel =
  let rs =
    try Schema.find sch name
    with Not_found -> invalid_arg (Printf.sprintf "Database: unknown relation %S" name)
  in
  Relation.iter
    (fun t ->
      if not (Tuple.conforms rs t) then
        invalid_arg
          (Format.asprintf "Database: tuple %a does not conform to %a" Tuple.pp t
             Schema.pp_relation rs))
    rel

let set_relation d name rel =
  check_conforms d.sch name rel;
  { d with rels = SMap.add name rel d.rels }

let of_list sch assoc =
  List.fold_left (fun d (name, rel) -> set_relation d name rel) (empty sch) assoc

let relation d name =
  match SMap.find_opt name d.rels with
  | Some r -> r
  | None -> raise Not_found

(* Single-tuple fast path: the existing relation was validated when it
   was installed, so only the inserted tuple needs a conformance check
   — [set_relation] would rescan the whole relation per insert, an
   O(n) toll the valuation search used to pay twice per step. *)
let add_tuple d name t =
  match SMap.find_opt name d.rels with
  | Some existing ->
    let rs =
      try Schema.find d.sch name
      with Not_found ->
        invalid_arg (Printf.sprintf "Database: unknown relation %S" name)
    in
    if not (Tuple.conforms rs t) then
      invalid_arg
        (Format.asprintf "Database: tuple %a does not conform to %a" Tuple.pp t
           Schema.pp_relation rs);
    { d with rels = SMap.add name (Relation.add t existing) d.rels }
  | None -> invalid_arg (Printf.sprintf "Database: unknown relation %S" name)

let add_tuples d pairs = List.fold_left (fun d (name, t) -> add_tuple d name t) d pairs

let contained a b =
  SMap.for_all
    (fun name rel ->
      match SMap.find_opt name b.rels with
      | Some rel' -> Relation.subset rel rel'
      | None -> Relation.is_empty rel)
    a.rels

let union a b =
  SMap.fold (fun name rel acc ->
      let merged =
        match SMap.find_opt name acc.rels with
        | Some existing -> Relation.union existing rel
        | None -> rel
      in
      set_relation acc name merged)
    b.rels a

let equal a b =
  SMap.equal Relation.equal a.rels b.rels

let total_tuples d = SMap.fold (fun _ rel acc -> acc + Relation.cardinal rel) d.rels 0

let is_empty d = total_tuples d = 0

let adom d =
  SMap.fold (fun _ rel acc -> List.rev_append (Relation.values rel) acc) d.rels []
  |> List.sort_uniq Value.compare

let fold f d acc = SMap.fold f d.rels acc

let rename_relations f target d =
  SMap.fold
    (fun name rel acc ->
      if Relation.is_empty rel then acc
      else
        let name' = f name in
        let merged =
          match SMap.find_opt name' acc.rels with
          | Some existing -> Relation.union existing rel
          | None -> rel
        in
        set_relation acc name' merged)
    d.rels (empty target)

let pp ppf d =
  let first = ref true in
  SMap.iter
    (fun name rel ->
      if not (Relation.is_empty rel) then begin
        if not !first then Format.pp_print_newline ppf ();
        first := false;
        Format.fprintf ppf "%s = %a" name Relation.pp rel
      end)
    d.rels;
  if !first then Format.fprintf ppf "(empty database)"
