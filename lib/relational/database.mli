(** Database instances.

    An instance [D = (I1, ..., In)] of a schema [R]: one relation
    instance per relation schema.  Master data [Dm] is represented with
    the same type — it is just a database that the application treats
    as closed-world (Section 2.1).

    [D ⊆ D'] (containment, {!contained}) holds when [Ij ⊆ I'j] for
    every relation; [D'] is then an {e extension} of [D]. *)

type t

val empty : Schema.t -> t
(** Empty instance of every relation in the schema. *)

val schema : t -> Schema.t

val of_list : Schema.t -> (string * Relation.t) list -> t
(** [of_list sch assoc] — relations absent from [assoc] are empty.
    @raise Invalid_argument on an unknown relation name or if some
    tuple does not conform to its relation schema. *)

val relation : t -> string -> Relation.t
(** @raise Not_found on an unknown relation name. *)

val set_relation : t -> string -> Relation.t -> t
(** @raise Invalid_argument on an unknown name or non-conforming
    tuples. *)

val add_tuple : t -> string -> Tuple.t -> t
(** @raise Invalid_argument as for {!set_relation}. *)

val add_tuples : t -> (string * Tuple.t) list -> t

val contained : t -> t -> bool
(** [contained d d'] — the paper's [D ⊆ D']; both instances must be
    over the same schema (checked by relation names). *)

val union : t -> t -> t
(** Relation-wise union; schemas must agree on names and arities. *)

val equal : t -> t -> bool

val total_tuples : t -> int
(** Sum of all relation cardinalities. *)

val is_empty : t -> bool

val adom : t -> Value.t list
(** Every constant occurring in the instance, deduplicated. *)

val fold : (string -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a

val rename_relations : (string -> string) -> Schema.t -> t -> t
(** [rename_relations f target d] reinterprets [d] over [target]: the
    relation named [r] in [d] becomes relation [f r] of [target].  Used
    by the single-relation encoding and the reductions.
    @raise Invalid_argument if the image schema does not match. *)

val pp : Format.formatter -> t -> unit
