type t =
  | Infinite
  | Finite of Value.t list

let infinite = Infinite

let finite vs =
  let distinct = List.sort_uniq Value.compare vs in
  if List.length distinct < 2 then
    invalid_arg "Domain.finite: a finite domain needs at least two elements";
  Finite distinct

let boolean = Finite [ Value.Int 0; Value.Int 1 ]

let is_finite = function
  | Infinite -> false
  | Finite _ -> true

let mem v = function
  | Infinite -> true
  | Finite vs -> List.exists (Value.equal v) vs

let values = function
  | Infinite -> None
  | Finite vs -> Some vs

let pp ppf = function
  | Infinite -> Format.fprintf ppf "d (infinite)"
  | Finite vs ->
    Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp) vs
