(** Attribute domains.

    Following Section 2.1 of the paper we distinguish a countably
    infinite domain [d] from finite domains [d_f] (with at least two
    elements).  Finite domains matter for the completeness analysis: a
    query whose output variables all range over finite domains is
    trivially relatively complete (condition E1 of Section 4.2). *)

type t =
  | Infinite
      (** the countably infinite domain [d]; fresh values can always be
          invented outside any given finite active domain *)
  | Finite of Value.t list
      (** a finite domain [d_f], listed exhaustively; must have at
          least two elements *)

val infinite : t

val finite : Value.t list -> t
(** [finite vs] builds a finite domain.
    @raise Invalid_argument if [vs] has fewer than two distinct
    elements, which the paper's model forbids. *)

val boolean : t
(** The two-element domain [{0, 1}], ubiquitous in the reductions. *)

val is_finite : t -> bool

val mem : Value.t -> t -> bool
(** [mem v dom] — membership; every value belongs to [Infinite]. *)

val values : t -> Value.t list option
(** [values dom] is [Some vs] for finite domains, [None] otherwise. *)

val pp : Format.formatter -> t -> unit
