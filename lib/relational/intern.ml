(* Process-wide hash-consing of values into dense integer ids.  The
   compiled match kernel unifies and compares interned rows with plain
   [int] equality; the table only ever grows, so an id, once handed
   out, stays valid for the life of the process.

   Concurrency — the lock-free publication contract:

   The hot path ([id]/[row] on already-interned values) never takes a
   lock.  Lookups probe [fast], an open-addressing table of
   [slot option Atomic.t] cells published through an [Atomic.t]
   snapshot reference.  A slot is written exactly once, by an
   [Atomic.set] performed while holding [mx], after the slot's record
   is fully constructed; the release/acquire pairing of OCaml 5's
   atomics therefore guarantees that any reader that observes
   [Some slot] also observes the record's fields — an id read from
   [fast] is always a real, fully published id.  Readers that miss
   (empty cell reached, or a stale pre-resize snapshot) fall back to
   the mutex path, where the plain [Hashtbl] is the single source of
   truth; a "miss" on the lock-free table is thus always safe, never
   wrong.  Resizing allocates a fresh cell array, re-inserts every
   entry from the authoritative table and swaps the snapshot reference
   with one [Atomic.set]; readers holding the old snapshot see a
   consistent (merely older) table.

   The mutex serialises only true interning of new values — batch
   index builds, first-seen delta rows.  Every acquisition is counted
   by [ric_intern_lock_acquisitions_total], so "the search hot path
   takes zero intern locks" is a testable, benchmarkable statement
   rather than a comment.

   The reverse array is published via [Atomic] only after the new
   entry is written, and ids travel to other domains through
   synchronised structures (index stores, checkers built before
   spawning) or through [fast] itself, so every read of [rev.(i)] is
   ordered after the write of entry [i]. *)

let m_lock_acquisitions =
  Ric_obs.Metrics.counter
    ~help:
      "mutex acquisitions by the interning table (misses and true \
       interning only; the already-interned fast path is lock-free)"
    "ric_intern_lock_acquisitions_total"

let m_growths =
  Ric_obs.Metrics.counter
    ~help:
      "capacity growths of the interning structures (probe-table \
       snapshot swaps and reverse-array doublings); bulk loads that \
       [reserve] first should leave this flat"
    "ric_intern_growth_total"

let mx = Mutex.create ()

(* Authoritative mapping, guarded by [mx]. *)
let tbl : (Value.t, int) Hashtbl.t = Hashtbl.create 1024
let next = ref 0 (* guarded by [mx] *)

let rev : Value.t array Atomic.t = Atomic.make (Array.make 1024 (Value.Int 0))
let count = Atomic.make 0

(* Lock-free read-mostly index: open addressing with linear probing
   over a power-of-two cell array, at most half full.  Cells are
   immutable once set. *)
type slot = { s_val : Value.t; s_id : int }

let fast : slot option Atomic.t array Atomic.t =
  Atomic.make (Array.init 2048 (fun _ -> Atomic.make None))

(* [-1] when absent from this snapshot (the caller re-checks under the
   lock — absence here is a hint, not an answer). *)
let probe arr v =
  let n = Array.length arr in
  let mask = n - 1 in
  let h = Value.hash v land mask in
  let rec go i seen =
    if seen >= n then -1
    else
      match Atomic.get (Array.unsafe_get arr i) with
      | None -> -1
      | Some s ->
        if Value.equal s.s_val v then s.s_id else go ((i + 1) land mask) (seen + 1)
  in
  go h 0

(* Guarded by [mx]: the cell array is at most half full, so an empty
   cell always exists. *)
let insert_into arr v id =
  let mask = Array.length arr - 1 in
  let rec go i =
    match Atomic.get (Array.unsafe_get arr i) with
    | None -> Atomic.set (Array.unsafe_get arr i) (Some { s_val = v; s_id = id })
    | Some _ -> go ((i + 1) land mask)
  in
  go (Value.hash v land mask)

(* Guarded by [mx].  [cells] is the desired cell count (rounded up to
   a power of two, never below the current size). *)
let grow_fast_locked_to cells =
  let arr = Atomic.get fast in
  let want = ref (Array.length arr) in
  while !want < cells do
    want := 2 * !want
  done;
  if !want > Array.length arr then begin
    let bigger = Array.init !want (fun _ -> Atomic.make None) in
    Hashtbl.iter (fun v id -> insert_into bigger v id) tbl;
    Ric_obs.Metrics.incr m_growths;
    Atomic.set fast bigger
  end

let grow_fast_locked () = grow_fast_locked_to (2 * Array.length (Atomic.get fast))

(* Guarded by [mx]: make [rev] hold at least [n] entries. *)
let grow_rev_locked_to n =
  let arr = Atomic.get rev in
  if n > Array.length arr then begin
    let want = ref (Array.length arr) in
    while !want < n do
      want := 2 * !want
    done;
    let bigger = Array.make !want (Value.Int 0) in
    Array.blit arr 0 bigger 0 (Array.length arr);
    Ric_obs.Metrics.incr m_growths;
    Atomic.set rev bigger
  end

let intern_locked v =
  match Hashtbl.find_opt tbl v with
  | Some i -> i
  | None ->
    let i = !next in
    let arr = Atomic.get rev in
    (if i < Array.length arr then arr.(i) <- v
     else begin
       let bigger = Array.make (2 * Array.length arr) v in
       Array.blit arr 0 bigger 0 (Array.length arr);
       bigger.(i) <- v;
       Ric_obs.Metrics.incr m_growths;
       Atomic.set rev bigger
     end);
    next := i + 1;
    Hashtbl.add tbl v i;
    Atomic.incr count;
    let cells = Atomic.get fast in
    if 2 * (i + 1) >= Array.length cells then grow_fast_locked ()
    else insert_into cells v i;
    i

let lock () =
  Mutex.lock mx;
  Ric_obs.Metrics.incr m_lock_acquisitions

let id v =
  match probe (Atomic.get fast) v with
  | i when i >= 0 -> i
  | _ ->
    lock ();
    let i = intern_locked v in
    Mutex.unlock mx;
    i

let row t =
  let n = Tuple.arity t in
  let out = Array.make n 0 in
  let arr = Atomic.get fast in
  let rec all_fast i =
    i = n
    ||
    match probe arr (Tuple.get t i) with
    | -1 -> false
    | id ->
      out.(i) <- id;
      all_fast (i + 1)
  in
  if all_fast 0 then out
  else begin
    (* at least one genuinely new value: intern the whole row under a
       single acquisition, as before *)
    lock ();
    let r = Array.init n (fun i -> intern_locked (Tuple.get t i)) in
    Mutex.unlock mx;
    r
  end

let value i = (Atomic.get rev).(i)

let size () = Atomic.get count

let reserve n =
  if n > 0 then begin
    lock ();
    (* the probe table stays at most half full, so [n] live entries
       need at least [2n] cells *)
    grow_rev_locked_to n;
    grow_fast_locked_to (2 * n);
    Mutex.unlock mx
  end

let lock_acquisitions () = Ric_obs.Metrics.counter_value m_lock_acquisitions

let growths () = Ric_obs.Metrics.counter_value m_growths

let () =
  Ric_obs.Metrics.gauge_fn
    ~help:"distinct values in the process-wide interning table"
    "ric_intern_entries" size
