(* Process-wide hash-consing of values into dense integer ids.  The
   compiled match kernel unifies and compares interned rows with plain
   [int] equality; the table only ever grows, so an id, once handed
   out, stays valid for the life of the process.

   Concurrency: [id]/[row] serialise on one mutex (interning happens in
   batches — index builds, delta rows — so the lock is coarse but
   cold); [value]/[size] are lock-free.  The reverse array is published
   via [Atomic] only after the new entry is written, and ids travel to
   other domains through synchronised structures (index stores,
   checkers built before spawning), so every read of [rev.(i)] is
   ordered after the write of entry [i]. *)

let mx = Mutex.create ()
let tbl : (Value.t, int) Hashtbl.t = Hashtbl.create 1024
let rev : Value.t array Atomic.t = Atomic.make (Array.make 1024 (Value.Int 0))
let next = ref 0 (* guarded by [mx] *)
let count = Atomic.make 0

let intern_locked v =
  match Hashtbl.find_opt tbl v with
  | Some i -> i
  | None ->
    let i = !next in
    let arr = Atomic.get rev in
    (if i < Array.length arr then arr.(i) <- v
     else begin
       let bigger = Array.make (2 * Array.length arr) v in
       Array.blit arr 0 bigger 0 (Array.length arr);
       bigger.(i) <- v;
       Atomic.set rev bigger
     end);
    next := i + 1;
    Hashtbl.add tbl v i;
    Atomic.incr count;
    i

let id v =
  Mutex.lock mx;
  let i = intern_locked v in
  Mutex.unlock mx;
  i

let row t =
  let n = Tuple.arity t in
  Mutex.lock mx;
  let r = Array.init n (fun i -> intern_locked (Tuple.get t i)) in
  Mutex.unlock mx;
  r

let value i = (Atomic.get rev).(i)

let size () = Atomic.get count

let () =
  Ric_obs.Metrics.gauge_fn
    ~help:"distinct values in the process-wide interning table"
    "ric_intern_entries" size
