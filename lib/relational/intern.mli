(** Process-wide hash-consing of {!Value.t} into dense integer ids.

    Equal values always receive the same id, so unification and tuple
    equality in the compiled match kernel reduce to [int] compares.
    The table is append-only and domain-safe.

    {b Publication contract (lock-free read path).}  Already-interned
    values are resolved without taking any lock: lookups probe an
    open-addressing cell table whose cells are each written exactly
    once via [Atomic.set] after the entry is fully constructed, and
    whose backing array is itself published through an [Atomic.t]
    snapshot.  OCaml 5's release/acquire semantics for atomics make
    any observed cell a fully published (value, id) pair.  A probe
    miss — an empty cell or a stale pre-resize snapshot — falls back
    to a single mutex acquisition over the authoritative hash table,
    so misses are safe, never wrong.  Only genuinely new values
    serialise on the mutex; each acquisition is counted by the
    [ric_intern_lock_acquisitions_total] metric, making "the search
    hot path takes zero intern locks" a testable property.  Exposes
    its size as the [ric_intern_entries] pull gauge. *)

val id : Value.t -> int
(** Intern one value.  Stable for the life of the process.  Lock-free
    when [v] is already interned. *)

val value : int -> Value.t
(** Reverse lookup.  Only valid for ids previously returned by {!id}
    or {!row}. *)

val row : Tuple.t -> int array
(** Intern every component of a tuple.  Lock-free when every component
    is already interned (the common case inside the search: delta rows
    repeat values the index build already interned); otherwise a
    single lock acquisition covers the whole row. *)

val size : unit -> int
(** Number of distinct values interned so far. *)

val reserve : int -> unit
(** [reserve n] pre-sizes the table for at least [n] distinct values:
    one probe-table snapshot swap and one reverse-array growth now,
    instead of O(log n) mid-ingest resizes (each of which rebuilds the
    whole probe table).  Idempotent and monotone — reserving less than
    the current capacity is a no-op.  Bulk loaders call this before
    interning a scenario's rows. *)

val growths : unit -> int
(** Value of [ric_intern_growth_total]: capacity growths of the
    interning structures (probe-table swaps and reverse-array
    doublings) since process start.  A bulk load that {!reserve}d
    enough space leaves this flat while interning. *)

val lock_acquisitions : unit -> int
(** Value of [ric_intern_lock_acquisitions_total]: how many times the
    interning mutex has been taken since process start (never
    resets).  The regression suite asserts this stays flat across
    fully-interned [row]/[id] calls. *)
