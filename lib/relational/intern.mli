(** Process-wide hash-consing of {!Value.t} into dense integer ids.

    Equal values always receive the same id, so unification and tuple
    equality in the compiled match kernel reduce to [int] compares.
    The table is append-only and domain-safe: interning serialises on
    an internal mutex, reverse lookup is lock-free.  Exposes its size
    as the [ric_intern_entries] pull gauge. *)

val id : Value.t -> int
(** Intern one value.  Stable for the life of the process. *)

val value : int -> Value.t
(** Reverse lookup.  Only valid for ids previously returned by {!id}
    or {!row}. *)

val row : Tuple.t -> int array
(** Intern every component of a tuple under a single lock
    acquisition. *)

val size : unit -> int
(** Number of distinct values interned so far. *)
