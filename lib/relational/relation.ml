module TSet = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type t = TSet.t

let empty = TSet.empty

let check_arity t set =
  match TSet.choose_opt set with
  | Some witness when Tuple.arity witness <> Tuple.arity t ->
    invalid_arg
      (Printf.sprintf "Relation: arity mismatch (%d vs %d)" (Tuple.arity t)
         (Tuple.arity witness))
  | _ -> ()

let add t set =
  check_arity t set;
  TSet.add t set

let of_tuples ts = List.fold_left (fun acc t -> add t acc) empty ts
let of_int_rows rows = of_tuples (List.map Tuple.of_ints rows)
let of_str_rows rows = of_tuples (List.map Tuple.of_strs rows)

let mem = TSet.mem
let cardinal = TSet.cardinal
let is_empty = TSet.is_empty
let subset = TSet.subset

let union a b =
  (match TSet.choose_opt a, TSet.choose_opt b with
   | Some x, Some y when Tuple.arity x <> Tuple.arity y ->
     invalid_arg "Relation.union: arity mismatch"
   | _ -> ());
  TSet.union a b

let diff = TSet.diff
let inter = TSet.inter
let equal = TSet.equal
let compare = TSet.compare
let fold = TSet.fold
let iter = TSet.iter
let exists = TSet.exists
let for_all = TSet.for_all
let filter = TSet.filter
let elements = TSet.elements

let project cols set = TSet.fold (fun t acc -> TSet.add (Tuple.project cols t) acc) set TSet.empty

let map f set = TSet.fold (fun t acc -> TSet.add (f t) acc) set TSet.empty

let values set =
  TSet.fold (fun t acc -> List.rev_append (Tuple.values t) acc) set []
  |> List.sort_uniq Value.compare

let pp ppf set =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Tuple.pp)
    (elements set)
