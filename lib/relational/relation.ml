module TSet = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

(* The arity and cardinality ride along with the set: the arity probe
   used to [choose] a witness tuple on every insert, and
   [Set.cardinal] is linear — both showed up in the match engine's
   per-node atom scoring.  [arity] is [-1] exactly when the relation
   is empty. *)
type t = {
  arity : int;
  card : int;
  set : TSet.t;
}

let empty = { arity = -1; card = 0; set = TSet.empty }

let of_set set =
  if TSet.is_empty set then empty
  else
    {
      arity = Tuple.arity (TSet.choose set);
      card = TSet.cardinal set;
      set;
    }

let add t r =
  if r.card = 0 then { arity = Tuple.arity t; card = 1; set = TSet.singleton t }
  else if Tuple.arity t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation: arity mismatch (%d vs %d)" (Tuple.arity t)
         r.arity)
  else
    let set = TSet.add t r.set in
    (* [TSet.add] returns the set itself when [t] was already there *)
    if set == r.set then r else { r with card = r.card + 1; set }

let of_tuples ts = List.fold_left (fun acc t -> add t acc) empty ts
let of_int_rows rows = of_tuples (List.map Tuple.of_ints rows)
let of_str_rows rows = of_tuples (List.map Tuple.of_strs rows)

let mem t r = TSet.mem t r.set
let cardinal r = r.card
let is_empty r = r.card = 0
let subset a b = TSet.subset a.set b.set
let arity r = if r.card = 0 then None else Some r.arity

let union a b =
  if a.card > 0 && b.card > 0 && a.arity <> b.arity then
    invalid_arg "Relation.union: arity mismatch";
  if a.card = 0 then b
  else if b.card = 0 then a
  else
    let set = TSet.union a.set b.set in
    if set == a.set then a
    else if set == b.set then b
    else { a with card = TSet.cardinal set; set }

let diff a b = of_set (TSet.diff a.set b.set)
let inter a b = of_set (TSet.inter a.set b.set)
let equal a b = TSet.equal a.set b.set
let compare a b = TSet.compare a.set b.set
let fold f r acc = TSet.fold f r.set acc
let iter f r = TSet.iter f r.set
let exists f r = TSet.exists f r.set
let for_all f r = TSet.for_all f r.set
let filter f r = of_set (TSet.filter f r.set)
let elements r = TSet.elements r.set

let project cols r =
  of_set
    (TSet.fold (fun t acc -> TSet.add (Tuple.project cols t) acc) r.set
       TSet.empty)

let map f r = of_set (TSet.fold (fun t acc -> TSet.add (f t) acc) r.set TSet.empty)

let values r =
  TSet.fold (fun t acc -> List.rev_append (Tuple.values t) acc) r.set []
  |> List.sort_uniq Value.compare

let pp ppf r =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Tuple.pp)
    (elements r)
