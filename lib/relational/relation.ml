module TSet = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

(* Two backings share one interface.  [Set] is the historical balanced
   tree, still what every incremental operation produces.  [Packed] is
   the bulk-load representation: the tuples as a sorted, deduplicated
   array plus the same rows as interned int arrays, built once by
   {!Builder.finish} without ever touching a [TSet].  Operations that
   genuinely need set algebra force a [TSet] view lazily and memoise
   it; the streaming scenario loader and [Rix.build] never do.

   The memoised [p_set] write is a benign race under parallel domains:
   both writers compute the same set from the same immutable arrays,
   and a torn read is impossible for an immediate-or-pointer field. *)
type packed = {
  p_tuples : Tuple.t array; (* strictly increasing Tuple.compare order *)
  p_rows : int array array; (* Intern ids, same order as p_tuples *)
  mutable p_set : TSet.t option;
}

type backing =
  | Set of TSet.t
  | Packed of packed

(* The arity and cardinality ride along with the backing: the arity
   probe used to [choose] a witness tuple on every insert, and
   [Set.cardinal] is linear — both showed up in the match engine's
   per-node atom scoring.  [arity] is [-1] exactly when the relation
   is empty. *)
type t = {
  arity : int;
  card : int;
  backing : backing;
}

let empty = { arity = -1; card = 0; backing = Set TSet.empty }

let force r =
  match r.backing with
  | Set s -> s
  | Packed p -> (
    match p.p_set with
    | Some s -> s
    | None ->
      let s =
        Array.fold_left (fun acc t -> TSet.add t acc) TSet.empty p.p_tuples
      in
      p.p_set <- Some s;
      s)

let of_set set =
  if TSet.is_empty set then empty
  else
    {
      arity = Tuple.arity (TSet.choose set);
      card = TSet.cardinal set;
      backing = Set set;
    }

(* Binary search in the sorted tuple array. *)
let packed_mem p t =
  let lo = ref 0 and hi = ref (Array.length p.p_tuples) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Tuple.compare t p.p_tuples.(mid) in
    if c = 0 then found := true
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  !found

let mem t r =
  match r.backing with
  | Set s -> TSet.mem t s
  | Packed p -> packed_mem p t

let add t r =
  if r.card = 0 then
    { arity = Tuple.arity t; card = 1; backing = Set (TSet.singleton t) }
  else if Tuple.arity t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation: arity mismatch (%d vs %d)" (Tuple.arity t)
         r.arity)
  else if mem t r then r
  else
    let set = TSet.add t (force r) in
    { r with card = r.card + 1; backing = Set set }

let of_tuples ts = List.fold_left (fun acc t -> add t acc) empty ts
let of_int_rows rows = of_tuples (List.map Tuple.of_ints rows)
let of_str_rows rows = of_tuples (List.map Tuple.of_strs rows)

let cardinal r = r.card
let is_empty r = r.card = 0
let subset a b = a.card <= b.card && TSet.subset (force a) (force b)
let arity r = if r.card = 0 then None else Some r.arity

let union a b =
  if a.card > 0 && b.card > 0 && a.arity <> b.arity then
    invalid_arg "Relation.union: arity mismatch";
  if a.card = 0 then b
  else if b.card = 0 then a
  else
    let sa = force a and sb = force b in
    let set = TSet.union sa sb in
    if set == sa then a
    else if set == sb then b
    else { a with card = TSet.cardinal set; backing = Set set }

let diff a b = of_set (TSet.diff (force a) (force b))
let inter a b = of_set (TSet.inter (force a) (force b))

let equal a b =
  a == b
  || a.card = b.card
     &&
     match (a.backing, b.backing) with
     | Packed p, Packed q ->
       (* both sorted and deduplicated: positional comparison *)
       let n = Array.length p.p_tuples in
       let rec go i =
         i = n || (Tuple.equal p.p_tuples.(i) q.p_tuples.(i) && go (i + 1))
       in
       go 0
     | _ -> TSet.equal (force a) (force b)

let compare a b = TSet.compare (force a) (force b)

let fold f r acc =
  match r.backing with
  | Set s -> TSet.fold f s acc
  | Packed p -> Array.fold_left (fun acc t -> f t acc) acc p.p_tuples

let iter f r =
  match r.backing with
  | Set s -> TSet.iter f s
  | Packed p -> Array.iter f p.p_tuples

let exists f r =
  match r.backing with
  | Set s -> TSet.exists f s
  | Packed p -> Array.exists f p.p_tuples

let for_all f r =
  match r.backing with
  | Set s -> TSet.for_all f s
  | Packed p -> Array.for_all f p.p_tuples

let filter f r = of_set (TSet.filter f (force r))

let elements r =
  match r.backing with
  | Set s -> TSet.elements s
  | Packed p -> Array.to_list p.p_tuples

let project cols r =
  of_set
    (fold (fun t acc -> TSet.add (Tuple.project cols t) acc) r TSet.empty)

let map f r = of_set (fold (fun t acc -> TSet.add (f t) acc) r TSet.empty)

let values r =
  fold (fun t acc -> List.rev_append (Tuple.values t) acc) r []
  |> List.sort_uniq Value.compare

let packed_rows r =
  match r.backing with
  | Packed p -> Some (p.p_tuples, p.p_rows)
  | Set _ -> None

let pp ppf r =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Tuple.pp)
    (elements r)

(* ------------------------------------------------------------------ *)
(* Columnar builder: the bulk-ingest path.  Cells arrive as interned
   ids into one flat, row-major, doubling int array — no per-tuple
   boxing, no tree insertion.  [finish] sorts a row permutation by the
   Value.compare rank of each id (so the packed order matches
   [Tuple.compare] exactly), drops adjacent duplicates, and
   materialises the tuple view by sharing the interned value boxes. *)
module Builder = struct
  type builder = {
    mutable b_arity : int; (* -1 until the first row is closed *)
    mutable b_cells : int array; (* row-major *)
    mutable b_len : int; (* cells in use *)
    mutable b_row_start : int; (* start of the open row *)
    mutable b_rows : int; (* closed rows *)
  }

  let create () =
    { b_arity = -1; b_cells = Array.make 1024 0; b_len = 0; b_row_start = 0; b_rows = 0 }

  let add_cell b id =
    (if b.b_len = Array.length b.b_cells then begin
       let bigger = Array.make (2 * b.b_len) 0 in
       Array.blit b.b_cells 0 bigger 0 b.b_len;
       b.b_cells <- bigger
     end);
    b.b_cells.(b.b_len) <- id;
    b.b_len <- b.b_len + 1

  let end_row b =
    let width = b.b_len - b.b_row_start in
    if b.b_arity = -1 then b.b_arity <- width
    else if width <> b.b_arity then begin
      (* leave the builder usable: discard the offending row *)
      b.b_len <- b.b_row_start;
      invalid_arg
        (Printf.sprintf "Relation: arity mismatch (%d vs %d)" width b.b_arity)
    end;
    b.b_row_start <- b.b_len;
    b.b_rows <- b.b_rows + 1

  let rows b = b.b_rows

  (* Rank of every intern id under [Value.compare], so rank-lexico-
     graphic row order coincides with [Tuple.compare] order (rows in
     one builder all share an arity, so the length tiebreak never
     fires).  Memoised on the intern-table size: consecutive blocks of
     one load usually intern nothing new between finishes.  The memo
     ref holds an immutable pair, so a racing reader at worst
     recomputes. *)
  let ranks_memo : (int * int array) option ref = ref None

  let value_ranks () =
    let n = Intern.size () in
    match !ranks_memo with
    | Some (m, rank) when m = n -> rank
    | _ ->
      let by_value = Array.init n (fun i -> i) in
      Array.sort
        (fun i j -> Value.compare (Intern.value i) (Intern.value j))
        by_value;
      let rank = Array.make n 0 in
      Array.iteri (fun pos id -> rank.(id) <- pos) by_value;
      ranks_memo := Some (n, rank);
      rank

  (* LSD radix sort of [perm] by [keys.(perm.(i))], 16-bit digits:
     linear passes instead of n log n compare calls, which is what
     keeps a million-row [finish] off the load-path flame graph. *)
  let radix_sort_perm keys perm total_bits =
    let n = Array.length perm in
    let digit_bits = 16 in
    let radix = 1 lsl digit_bits in
    let mask = radix - 1 in
    let tmp = Array.make n 0 in
    let counts = Array.make radix 0 in
    let src = ref perm and dst = ref tmp in
    let shift = ref 0 in
    while !shift < total_bits do
      Array.fill counts 0 radix 0;
      let s = !src and d = !dst in
      for i = 0 to n - 1 do
        let dg = (Array.unsafe_get keys (Array.unsafe_get s i) lsr !shift) land mask in
        Array.unsafe_set counts dg (Array.unsafe_get counts dg + 1)
      done;
      let acc = ref 0 in
      for dg = 0 to mask do
        let c = counts.(dg) in
        counts.(dg) <- !acc;
        acc := !acc + c
      done;
      for i = 0 to n - 1 do
        let v = Array.unsafe_get s i in
        let dg = (Array.unsafe_get keys v lsr !shift) land mask in
        Array.unsafe_set d (Array.unsafe_get counts dg) v;
        Array.unsafe_set counts dg (Array.unsafe_get counts dg + 1)
      done;
      src := d;
      dst := s;
      shift := !shift + digit_bits
    done;
    !src

  let finish b =
    if b.b_rows = 0 then empty
    else begin
      let ar = b.b_arity and n = b.b_rows in
      let cells = b.b_cells in
      let rank = value_ranks () in
      let nvals = Array.length rank in
      let key_bits =
        let rec go bts = if 1 lsl bts >= nvals then bts else go (bts + 1) in
        go 1
      in
      let cmp_rows i j =
        let oi = i * ar and oj = j * ar in
        let rec go k =
          if k = ar then 0
          else
            let c = Int.compare rank.(cells.(oi + k)) rank.(cells.(oj + k)) in
            if c <> 0 then c else go (k + 1)
        in
        go 0
      in
      (* [perm] ends up rank-lexicographically sorted; [same] tells
         whether two already-sorted rows are duplicates *)
      let perm, same =
        if ar * key_bits <= 62 then begin
          (* all ranks of a row fit one non-negative int: rank-lex row
             order becomes single-int order, sorted without compares
             and deduplicated by equality *)
          let keys = Array.make n 0 in
          for i = 0 to n - 1 do
            let o = i * ar in
            let k = ref 0 in
            for c = 0 to ar - 1 do
              k := (!k lsl key_bits) lor Array.unsafe_get rank (Array.unsafe_get cells (o + c))
            done;
            Array.unsafe_set keys i !k
          done;
          let perm = Array.init n (fun i -> i) in
          let perm =
            if n < 4096 then begin
              (* counting passes dominate tiny blocks; compare instead *)
              Array.sort (fun i j -> Int.compare keys.(i) keys.(j)) perm;
              perm
            end
            else radix_sort_perm keys perm (ar * key_bits)
          in
          (perm, fun i j -> keys.(i) = keys.(j))
        end
        else begin
          let perm = Array.init n (fun i -> i) in
          Array.sort cmp_rows perm;
          (perm, fun i j -> cmp_rows i j = 0)
        end
      in
      (* count distinct rows, then materialise both views in order *)
      let distinct = ref 1 in
      for i = 1 to n - 1 do
        if not (same perm.(i - 1) perm.(i)) then incr distinct
      done;
      let m = !distinct in
      let p_rows = Array.make m [||] in
      let p_tuples = Array.make m [||] in
      let out = ref 0 in
      for i = 0 to n - 1 do
        if i = 0 || not (same perm.(i - 1) perm.(i)) then begin
          let o = perm.(i) * ar in
          let row = Array.init ar (fun k -> cells.(o + k)) in
          p_rows.(!out) <- row;
          p_tuples.(!out) <- Array.map Intern.value row;
          incr out
        end
      done;
      {
        arity = ar;
        card = m;
        backing = Packed { p_tuples; p_rows; p_set = None };
      }
    end
end
