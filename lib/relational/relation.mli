(** Relation instances: finite sets of tuples of uniform arity. *)

type t

val empty : t

val of_tuples : Tuple.t list -> t
(** @raise Invalid_argument if the tuples do not all share one arity. *)

val of_int_rows : int list list -> t
(** Convenience: rows of integer constants. *)

val of_str_rows : string list list -> t

val add : Tuple.t -> t -> t
(** @raise Invalid_argument on an arity mismatch with existing tuples. *)

val mem : Tuple.t -> t -> bool

val cardinal : t -> int
(** O(1): the count is stored on the relation, not recomputed. *)

val arity : t -> int option
(** Stored arity of the tuples; [None] when empty. *)

val is_empty : t -> bool

val subset : t -> t -> bool
(** [subset a b] — is [a ⊆ b]? *)

val union : t -> t -> t
(** @raise Invalid_argument on an arity mismatch. *)

val diff : t -> t -> t

val inter : t -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (Tuple.t -> unit) -> t -> unit

val exists : (Tuple.t -> bool) -> t -> bool

val for_all : (Tuple.t -> bool) -> t -> bool

val filter : (Tuple.t -> bool) -> t -> t

val elements : t -> Tuple.t list
(** Tuples in increasing {!Tuple.compare} order. *)

val project : int list -> t -> t
(** Set-semantics projection onto the given columns. *)

val map : (Tuple.t -> Tuple.t) -> t -> t

val values : t -> Value.t list
(** All constants occurring anywhere in the relation, deduplicated. *)

val packed_rows : t -> (Tuple.t array * int array array) option
(** When the relation was built by {!Builder.finish}: its tuples and
    the same rows as {!Intern} id arrays, both in increasing
    {!Tuple.compare} order.  [Rix.build] reuses these arrays directly
    instead of re-interning tuple by tuple.  [None] on the tree
    backing.  Callers must not mutate the arrays. *)

val pp : Format.formatter -> t -> unit

(** Columnar bulk construction: interned cell ids are appended to one
    flat row-major int buffer, and {!Builder.finish} sorts, dedupli-
    cates and packs them into a relation in a single pass — no
    per-tuple boxing, no tree insertion.  This is the ingest fast path
    behind the streaming [.ric] loader. *)
module Builder : sig
  type builder

  val create : unit -> builder

  val add_cell : builder -> int -> unit
  (** Append one {!Intern} id to the currently open row. *)

  val end_row : builder -> unit
  (** Close the open row.  The first closed row fixes the arity.
      @raise Invalid_argument on a width mismatch with the first row
      (formatted exactly like {!add}'s arity error); the offending row
      is discarded and the builder stays usable. *)

  val rows : builder -> int
  (** Rows closed so far (before deduplication). *)

  val finish : builder -> t
  (** Pack everything appended so far into a relation whose iteration
      order is increasing {!Tuple.compare}, indistinguishable from the
      same rows folded through {!add}. *)
end
