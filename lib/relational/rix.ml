(* Interned, column-indexed view of one relation.  Built once per
   (store, relation) pair and reused across every solve that sees the
   same physical relation — the persistent replacement for the hash
   indexes the match engine used to rebuild from scratch on every
   call.

   Rows are interned up front; column buckets are built lazily on the
   first probe of that column (a solve typically probes one or two of
   them) and published through [Atomic], so concurrent domains either
   see a fully built table or build it themselves under the mutex. *)

type t = {
  source : Relation.t; (* provenance, compared by physical identity *)
  rows : int array array;
  tuples : Tuple.t array;
  arity : int; (* -1 when empty *)
  cols : (int, int list) Hashtbl.t option Atomic.t array;
  mx : Mutex.t;
}

let build rel =
  let n = Relation.cardinal rel in
  let tuples, rows =
    (* a packed relation already holds exactly these two arrays (the
       bulk loader interned while parsing); adopt them instead of
       re-interning — neither side ever mutates them *)
    match Relation.packed_rows rel with
    | Some (tuples, rows) -> (tuples, rows)
    | None ->
      let rows = Array.make n [||] in
      let tuples = Array.make n (Tuple.make []) in
      let i = ref 0 in
      Relation.iter
        (fun tu ->
          tuples.(!i) <- tu;
          rows.(!i) <- Intern.row tu;
          incr i)
        rel;
      (tuples, rows)
  in
  let arity = if n = 0 then -1 else Tuple.arity tuples.(0) in
  {
    source = rel;
    rows;
    tuples;
    arity;
    cols = Array.init (max arity 0) (fun _ -> Atomic.make None);
    mx = Mutex.create ();
  }

let source t = t.source
let cardinal t = Array.length t.rows
let arity t = t.arity
let rows t = t.rows
let row t i = t.rows.(i)
let tuple t i = t.tuples.(i)

let bucket_table t col =
  match Atomic.get t.cols.(col) with
  | Some h -> h
  | None ->
    Mutex.lock t.mx;
    let h =
      match Atomic.get t.cols.(col) with
      | Some h -> h (* another domain won the race *)
      | None ->
        let h = Hashtbl.create (max 16 (Array.length t.rows)) in
        Array.iteri
          (fun i row ->
            let k = row.(col) in
            Hashtbl.replace h k
              (i :: Option.value ~default:[] (Hashtbl.find_opt h k)))
          t.rows;
        Atomic.set t.cols.(col) (Some h);
        h
    in
    Mutex.unlock t.mx;
    h

let bucket t col v =
  if col < 0 || col >= Array.length t.cols then []
  else
    Option.value ~default:[] (Hashtbl.find_opt (bucket_table t col) v)
