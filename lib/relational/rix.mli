(** Interned, column-indexed relation: the persistent index backing
    the compiled match kernel.

    A [Rix.t] snapshots one {!Relation.t} as an array of interned
    [int array] rows plus lazily built per-column buckets mapping a
    value id to the row indexes carrying it.  Building is linear;
    afterwards every probe is a hash lookup and every unification an
    [int] compare.  Values are interned through {!Intern}, so row
    contents are comparable across relations and databases.

    Domain-safe: lazily built buckets are published via [Atomic] under
    an internal mutex. *)

type t

val build : Relation.t -> t

val source : t -> Relation.t
(** The relation this index was built from; stores compare it by
    physical identity to decide reuse. *)

val cardinal : t -> int
(** O(1) row count (satellite of the O(n) [Set.cardinal] fix). *)

val arity : t -> int
(** Arity of the rows, [-1] when the relation is empty. *)

val rows : t -> int array array
(** All interned rows, in increasing {!Tuple.compare} order.  Callers
    must not mutate. *)

val row : t -> int -> int array

val tuple : t -> int -> Tuple.t
(** The source tuple aligned with {!row} [i]. *)

val bucket : t -> int -> int -> int list
(** [bucket t col v] — indexes of the rows whose column [col] holds
    the value id [v]; [[]] when out of range or absent. *)
