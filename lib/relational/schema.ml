type attribute = {
  attr_name : string;
  attr_dom : Domain.t;
}

type relation_schema = {
  rel_name : string;
  attrs : attribute list;
}

type t = relation_schema list

let attribute ?(dom = Domain.Infinite) name = { attr_name = name; attr_dom = dom }

let check_distinct what names =
  let sorted = List.sort String.compare names in
  let rec dup = function
    | a :: (b :: _ as rest) -> if String.equal a b then Some a else dup rest
    | _ -> None
  in
  match dup sorted with
  | Some n -> invalid_arg (Printf.sprintf "Schema: duplicate %s %S" what n)
  | None -> ()

let relation name attrs =
  check_distinct "attribute" (List.map (fun a -> a.attr_name) attrs);
  { rel_name = name; attrs }

let arity r = List.length r.attrs

let attr_index r name =
  let rec go i = function
    | [] -> raise Not_found
    | a :: rest -> if String.equal a.attr_name name then i else go (i + 1) rest
  in
  go 0 r.attrs

let attr_domain r i =
  match List.nth_opt r.attrs i with
  | Some a -> a.attr_dom
  | None -> invalid_arg (Printf.sprintf "Schema.attr_domain: %S has no column %d" r.rel_name i)

let make rels =
  check_distinct "relation" (List.map (fun r -> r.rel_name) rels);
  rels

let relations t = t

let find t name =
  match List.find_opt (fun r -> String.equal r.rel_name name) t with
  | Some r -> r
  | None -> raise Not_found

let mem t name = List.exists (fun r -> String.equal r.rel_name name) t

let union a b = make (a @ b)

let pp_relation ppf r =
  let pp_attr ppf a =
    match a.attr_dom with
    | Domain.Infinite -> Format.fprintf ppf "%s" a.attr_name
    | Domain.Finite _ -> Format.fprintf ppf "%s:%a" a.attr_name Domain.pp a.attr_dom
  in
  Format.fprintf ppf "%s(%a)" r.rel_name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_attr)
    r.attrs

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_relation ppf t
