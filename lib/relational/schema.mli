(** Relation schemas and database schemas.

    A database is specified by a relational schema [R = (R1, ..., Rn)];
    each [Ri] is defined over a fixed list of named, typed attributes.
    Master data [Dm] is specified by a separate relational schema [Rm]
    of exactly the same shape — no restriction is imposed on either
    (Section 2.1). *)

type attribute = {
  attr_name : string;
  attr_dom : Domain.t;
}

type relation_schema = {
  rel_name : string;
  attrs : attribute list;
}

type t
(** A database schema: a collection of relation schemas with distinct
    names. *)

val attribute : ?dom:Domain.t -> string -> attribute
(** [attribute name] declares an attribute over the infinite domain;
    pass [~dom] for a finite one. *)

val relation : string -> attribute list -> relation_schema
(** [relation name attrs] builds a relation schema.
    @raise Invalid_argument on duplicate attribute names. *)

val arity : relation_schema -> int

val attr_index : relation_schema -> string -> int
(** Position of a named attribute.  @raise Not_found if absent. *)

val attr_domain : relation_schema -> int -> Domain.t
(** Domain of the [i]-th attribute (0-based).
    @raise Invalid_argument if out of range. *)

val make : relation_schema list -> t
(** @raise Invalid_argument on duplicate relation names. *)

val relations : t -> relation_schema list

val find : t -> string -> relation_schema
(** @raise Not_found if no relation with that name exists. *)

val mem : t -> string -> bool

val union : t -> t -> t
(** Disjoint union of two schemas.
    @raise Invalid_argument if they share a relation name. *)

val pp : Format.formatter -> t -> unit

val pp_relation : Format.formatter -> relation_schema -> unit
