type t = Value.t array

let make vs = Array.of_list vs
let of_ints ns = Array.of_list (List.map Value.int ns)
let of_strs ss = Array.of_list (List.map Value.str ss)

let arity = Array.length

let get t i =
  if i < 0 || i >= Array.length t then
    invalid_arg (Printf.sprintf "Tuple.get: index %d, arity %d" i (Array.length t));
  t.(i)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i = la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let project cols t = Array.of_list (List.map (get t) cols)

let conforms (r : Schema.relation_schema) t =
  Array.length t = Schema.arity r
  && List.for_all2
       (fun (a : Schema.attribute) v -> Domain.mem v a.attr_dom)
       r.attrs (Array.to_list t)

let values t = Array.to_list t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (Array.to_list t)
