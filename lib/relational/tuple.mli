(** Tuples: fixed-arity lists of constants. *)

type t = Value.t array

val make : Value.t list -> t

val of_ints : int list -> t
(** Convenience: tuple of integer constants. *)

val of_strs : string list -> t
(** Convenience: tuple of string constants. *)

val arity : t -> int

val get : t -> int -> Value.t
(** @raise Invalid_argument if the index is out of range. *)

val compare : t -> t -> int
(** Lexicographic; tuples of different arity are ordered by arity. *)

val equal : t -> t -> bool

val project : int list -> t -> t
(** [project cols t] keeps the listed columns, in the order given.
    @raise Invalid_argument on a bad column index. *)

val conforms : Schema.relation_schema -> t -> bool
(** Arity matches and every value lies in its attribute's domain. *)

val values : t -> Value.t list

val pp : Format.formatter -> t -> unit
