type t =
  | Int of int
  | Str of string

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Int n -> Hashtbl.hash (0, n)
  | Str s -> Hashtbl.hash (1, s)

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%s" s

let pp_quoted ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "'%s'" s

let to_string v = Format.asprintf "%a" pp v

let int n = Int n
let str s = Str s
