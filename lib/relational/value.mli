(** Constants that populate relations.

    The paper works with two kinds of attribute domains: a countably
    infinite domain [d] and a finite domain [d_f] with at least two
    elements.  Values themselves are untyped constants; which values an
    attribute may hold is governed by {!Domain.t}. *)

type t =
  | Int of int      (** integer constant *)
  | Str of string   (** string constant *)

val compare : t -> t -> int
(** Total order, used by the set/map structures of {!Relation}. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** [pp] prints integers bare and strings unquoted ([Str "a"] as [a]);
    use {!pp_quoted} when ambiguity matters. *)

val pp_quoted : Format.formatter -> t -> unit
(** Like {!pp} but strings are single-quoted, as in the paper
    ([x = 'c']). *)

val to_string : t -> string

val int : int -> t
(** [int n] is [Int n]. *)

val str : string -> t
(** [str s] is [Str s]. *)
