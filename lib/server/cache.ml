type kind = K_rcdp | K_rcqp | K_audit | K_mine

type entry = {
  kind : kind;
  query : string;
  result : Ric_text.Json.t;
  rcdp : Ric_complete.Rcdp.verdict option;
  elapsed_us : int;
  revalidated : bool;
}

type t = {
  table : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable carried : int;
  mutable dropped : int;
}

(* Process-wide mirrors of the per-instance counters (a test process
   may hold several caches; the registry aggregates them). *)
let m_hits =
  Ric_obs.Metrics.counter ~help:"verdict-cache lookups answered from the cache"
    "ric_cache_hits_total"

let m_misses =
  Ric_obs.Metrics.counter ~help:"verdict-cache lookups that missed"
    "ric_cache_misses_total"

let m_stores =
  Ric_obs.Metrics.counter ~help:"verdicts stored into the cache"
    "ric_cache_stores_total"

let m_carried =
  Ric_obs.Metrics.counter
    ~help:"cache entries carried or revalidated across an insert epoch"
    "ric_cache_carried_total"

let m_dropped =
  Ric_obs.Metrics.counter
    ~help:"cache entries invalidated (dropped at an insert or close)"
    "ric_cache_invalidations_total"

let create () = { table = Hashtbl.create 64; hits = 0; misses = 0; carried = 0; dropped = 0 }

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some _ as e ->
    t.hits <- t.hits + 1;
    Ric_obs.Metrics.incr m_hits;
    e
  | None ->
    t.misses <- t.misses + 1;
    Ric_obs.Metrics.incr m_misses;
    None

let store t key entry =
  Ric_obs.Metrics.incr m_stores;
  Hashtbl.replace t.table key entry

let remove t key = Hashtbl.remove t.table key

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let fold_prefix t ~prefix f init =
  Hashtbl.fold
    (fun key entry acc -> if has_prefix ~prefix key then f acc key entry else acc)
    t.table init

let remove_prefix t ~prefix =
  let doomed = fold_prefix t ~prefix (fun acc key _ -> key :: acc) [] in
  List.iter (Hashtbl.remove t.table) doomed;
  List.length doomed

let note_carried t =
  t.carried <- t.carried + 1;
  Ric_obs.Metrics.incr m_carried

let note_dropped t n =
  t.dropped <- t.dropped + n;
  if n > 0 then Ric_obs.Metrics.add m_dropped n

type stats = { entries : int; hits : int; misses : int; carried : int; dropped : int }

let stats t =
  {
    entries = Hashtbl.length t.table;
    hits = t.hits;
    misses = t.misses;
    carried = t.carried;
    dropped = t.dropped;
  }

(* Keys.  '/' is the component separator, so every client-influenced
   component (query names above all — nothing stops a scenario from
   declaring a query called "x/e0/rcdp") is percent-escaped before
   splicing: '%' -> "%25", '/' -> "%2F".  The escaping is injective
   and slash-free, so distinct component lists always yield distinct
   keys and a session/epoch prefix can only match keys of that
   session/epoch ("s1/" is not a prefix of any "s12/..." key because
   of the slash).  The common all-clean case allocates nothing. *)

let escape s =
  if String.exists (fun c -> c = '/' || c = '%') s then begin
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (function
        | '/' -> Buffer.add_string b "%2F"
        | '%' -> Buffer.add_string b "%25"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end
  else s

let session_prefix ~session = escape session ^ "/"

let epoch_prefix ~session ~epoch = Printf.sprintf "%s/e%d/" (escape session) epoch

let rcdp_key ~session ~fingerprint ~epoch ~query =
  Printf.sprintf "%s/e%d/rcdp/%s/%s" (escape session) epoch (escape fingerprint)
    (escape query)

let audit_key ~session ~fingerprint ~epoch ~query =
  Printf.sprintf "%s/e%d/audit/%s/%s" (escape session) epoch
    (escape fingerprint) (escape query)

let rcqp_key ~session ~fingerprint ~query =
  Printf.sprintf "%s/rcqp/%s/%s" (escape session) (escape fingerprint)
    (escape query)

let mine_key ~session ~fingerprint ~epoch ~config =
  Printf.sprintf "%s/e%d/mine/%s/%s" (escape session) epoch
    (escape fingerprint) (escape config)
