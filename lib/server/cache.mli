(** The verdict cache.

    Entries are keyed by [(session, epoch, kind, constraint-set
    fingerprint, query)] — see {!rcdp_key} — so any database mutation
    moves the session to a fresh epoch and stale verdicts become
    unreachable without any eager scrubbing.  RCQP verdicts depend
    only on [(Q, Dm, V)], never on [D], so their keys omit the epoch
    and they survive every insert.

    Invalidation on insert is {e incremental} rather than
    wholesale, exploiting the monotonicity facts of the paper
    (Sections 3.3/4.3, DESIGN.md):

    - a [Complete] verdict carries over to any admissible (still
      partially closed) extension: every partially closed [D″ ⊇ D′ ⊇ D]
      is also an extension of [D], so [Q(D″) = Q(D) = Q(D′)];
    - an [Incomplete] counterexample [(Δ, t)] can be revalidated
      against the grown [D′] by two query evaluations and a
      constraint check — [(D′ ∪ Δ, Dm) ⊨ V], [t ∈ Q(D′ ∪ Δ)],
      [t ∉ Q(D′)] — far cheaper than the Σ₂ᵖ re-decide;
    - an insert that breaks partial closure invalidates everything
      epoch-keyed for the session (the deciders are not defined
      there any more).

    {!Service} implements that policy; this module is the store plus
    hit/miss accounting.  No locking here — the service's mutex
    guards it. *)

type kind = K_rcdp | K_rcqp | K_audit | K_mine

type entry = {
  kind : kind;
  query : string;
  result : Ric_text.Json.t;  (** the encoded verdict, replayed on hits *)
  rcdp : Ric_complete.Rcdp.verdict option;
      (** retained for RCDP entries so an insert can carry or
          revalidate them *)
  elapsed_us : int;  (** what the original computation cost *)
  revalidated : bool;
      (** true once the entry has been carried across an insert by
          revalidation rather than recomputation *)
}

type t

val create : unit -> t

val find : t -> string -> entry option
(** Bumps the hit or miss counter. *)

val store : t -> string -> entry -> unit

val remove : t -> string -> unit

val fold_prefix : t -> prefix:string -> ('a -> string -> entry -> 'a) -> 'a -> 'a

val remove_prefix : t -> prefix:string -> int
(** Number of entries dropped. *)

val note_carried : t -> unit

val note_dropped : t -> int -> unit

type stats = {
  entries : int;
  hits : int;
  misses : int;
  carried : int;  (** entries kept across an insert via monotonicity *)
  dropped : int;  (** entries invalidated by an insert *)
}

val stats : t -> stats

(** {2 Keys}

    Key components are percent-escaped (['%'] → ["%25"], ['/'] →
    ["%2F"]) before being joined with ['/'], so a client-influenced
    query name containing slashes cannot alias another session's or
    epoch's prefix. *)

val escape : string -> string
(** The component escaping — exposed for tests. *)

val rcdp_key :
  session:string -> fingerprint:string -> epoch:int -> query:string -> string

val audit_key :
  session:string -> fingerprint:string -> epoch:int -> query:string -> string

val rcqp_key : session:string -> fingerprint:string -> query:string -> string

val mine_key :
  session:string -> fingerprint:string -> epoch:int -> config:string -> string
(** Epoch-keyed like RCDP entries — mined constraints depend on the
    session's database, so any insert makes them unreachable (and the
    insert migration drops them: unlike a verdict, a mined set has no
    cheap revalidation).  [config] fingerprints the mining thresholds,
    so requests with different knobs cache separately. *)

val session_prefix : session:string -> string
(** Prefix of every key of the session (for [close]). *)

val epoch_prefix : session:string -> epoch:int -> string
(** Prefix of the session's epoch-keyed (RCDP/audit) entries. *)
