module Json = Ric_text.Json

type t = { fd : Unix.file_descr; receive_timeout : float option }

(* Capped exponential backoff with full jitter: 10 ms, 20, 40, ...
   capped at 500 ms, each scaled by a uniform draw so a herd of
   clients retrying against a restarting daemon does not thump it in
   lockstep.  Seeded per client process; reconnect cadence is not
   something tests should be deterministic about. *)
let backoff_base_s = 0.01
let backoff_cap_s = 0.5

let backoff_sleep =
  let rng = lazy (Random.State.make_self_init ()) in
  fun attempt ->
    let ceiling =
      min backoff_cap_s (backoff_base_s *. (2. ** float_of_int attempt))
    in
    Unix.sleepf (ceiling *. (0.5 +. (0.5 *. Random.State.float (Lazy.force rng) 1.)))

let connect ?(retries = 0) ?receive_timeout path =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      (match receive_timeout with
       | Some s when s > 0. -> (
         try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
         with Unix.Unix_error _ -> ())
       | _ -> ());
      { fd; receive_timeout }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when attempt < retries ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      backoff_sleep attempt;
      go (attempt + 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go 0

let request t json =
  Protocol.write_frame t.fd (Json.to_string json);
  let timeout_raises = t.receive_timeout <> None in
  match Protocol.read_frame ~timeout_raises t.fd with
  | None -> failwith "ricd closed the connection without answering"
  | Some payload ->
    (match Json.of_string payload with
     | v -> v
     | exception Json.Parse_error (msg, line, col) ->
       failwith (Printf.sprintf "malformed response from ricd (%d:%d: %s)" line col msg))
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    failwith "timed out waiting for a reply from ricd"
  | exception Protocol.Frame_error msg when timeout_raises ->
    failwith (Printf.sprintf "no usable reply from ricd: %s" msg)

let rpc t req = request t (Protocol.to_json req)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?retries ?receive_timeout path f =
  let t = connect ?retries ?receive_timeout path in
  match f t with
  | v ->
    close t;
    v
  | exception e ->
    close t;
    raise e
