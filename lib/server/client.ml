module Json = Ric_text.Json

type t = { fd : Unix.file_descr; receive_timeout : float option }

exception Timeout
exception Circuit_open

(* ------------------------------------------------------------------ *)
(* Circuit breaker: after [threshold] consecutive overloaded/timeout
   outcomes the circuit opens and every call fails fast with
   {!Circuit_open} — no connection, no queueing at a server already
   drowning.  Once [cooldown] seconds have passed the next caller is
   let through as a half-open probe; its success closes the circuit,
   its failure re-opens it for another full cooldown. *)

module Breaker = struct
  type state = Closed | Open | Half_open

  type nonrec t = {
    threshold : int;
    cooldown : float;
    mutex : Mutex.t;
    mutable consecutive : int;
    mutable opened_at : float option;  (* Some => open (or probing) *)
    mutable probing : bool;
  }

  let create ?(threshold = 5) ?(cooldown = 2.0) () =
    {
      threshold = max 1 threshold;
      cooldown = max 0. cooldown;
      mutex = Mutex.create ();
      consecutive = 0;
      opened_at = None;
      probing = false;
    }

  let with_lock b f =
    Mutex.lock b.mutex;
    let v = f () in
    Mutex.unlock b.mutex;
    v

  let state b =
    with_lock b (fun () ->
        match b.opened_at with
        | None -> Closed
        | Some t0 ->
          if b.probing || Unix.gettimeofday () -. t0 >= b.cooldown then Half_open
          else Open)

  let allow b =
    with_lock b (fun () ->
        match b.opened_at with
        | None -> true
        | Some t0 ->
          if b.probing then false (* one probe in flight is enough *)
          else if Unix.gettimeofday () -. t0 >= b.cooldown then begin
            b.probing <- true;
            true
          end
          else false)

  let note_success b =
    with_lock b (fun () ->
        b.consecutive <- 0;
        b.opened_at <- None;
        b.probing <- false)

  let note_failure b =
    with_lock b (fun () ->
        b.consecutive <- b.consecutive + 1;
        if b.probing || b.consecutive >= b.threshold then begin
          (* a failed half-open probe re-opens for a fresh cooldown *)
          b.opened_at <- Some (Unix.gettimeofday ());
          b.probing <- false
        end)
end

(* Capped exponential backoff with full jitter: 10 ms, 20, 40, ...
   capped at 500 ms, each scaled by a uniform draw so a herd of
   clients retrying against a restarting daemon does not thump it in
   lockstep.  Seeded per client process; reconnect cadence is not
   something tests should be deterministic about. *)
let backoff_base_s = 0.01
let backoff_cap_s = 0.5

let backoff_sleep =
  let rng = lazy (Random.State.make_self_init ()) in
  fun attempt ->
    let ceiling =
      min backoff_cap_s (backoff_base_s *. (2. ** float_of_int attempt))
    in
    Unix.sleepf (ceiling *. (0.5 +. (0.5 *. Random.State.float (Lazy.force rng) 1.)))

let connect ?(retries = 0) ?receive_timeout path =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      (match receive_timeout with
       | Some s when s > 0. -> (
         try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
         with Unix.Unix_error _ -> ())
       | _ -> ());
      { fd; receive_timeout }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when attempt < retries ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      backoff_sleep attempt;
      go (attempt + 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go 0

let parse_reply payload =
  match Json.of_string payload with
  | v -> v
  | exception Json.Parse_error (msg, line, col) ->
    failwith (Printf.sprintf "malformed response from ricd (%d:%d: %s)" line col msg)

let read_reply t =
  let timeout_raises = t.receive_timeout <> None in
  match Protocol.read_frame ~timeout_raises t.fd with
  | None -> failwith "ricd closed the connection without answering"
  | Some payload -> parse_reply payload
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> raise Timeout
  | exception Protocol.Frame_error msg when timeout_raises ->
    failwith (Printf.sprintf "no usable reply from ricd: %s" msg)

let request t json =
  (* client-side fault hooks: a stalled or truncated *request* frame is
     how the robustness suite makes the server see a slow-loris peer *)
  match
    Protocol.write_frame
      ?tear:(Faults.torn_read ())
      ?stall:(Faults.slow_read ())
      t.fd (Json.to_string json)
  with
  | () -> read_reply t
  | exception (Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) as e) ->
    (* the server answers-then-closes when refusing a connection at its
       cap; our send can race that close, so salvage the reply it
       already wrote before reporting the broken pipe *)
    (match read_reply t with
     | reply -> reply
     | exception _ -> raise e)

(* client-side correlation: every rpc carries a req_id, minted here
   when the request did not bring its own, so daemon logs, spans and
   flight-recorder events can be grepped by one id end to end *)
let mint_counter = Atomic.make 0

let mint_req_id () =
  Printf.sprintf "ric-%d-%d-%d" (Unix.getpid ())
    (int_of_float (Unix.gettimeofday () *. 1e3) land 0xffffff)
    (Atomic.fetch_and_add mint_counter 1)

let rpc t req =
  let json = Protocol.to_json req in
  let json =
    match Protocol.req_id_of json with
    | Some _ -> json
    | None -> Protocol.with_req_id json (mint_req_id ())
  in
  request t json

let rpc_retrying ?breaker ?(max_retries = 3) t req =
  let check_allowed () =
    match breaker with
    | Some b when not (Breaker.allow b) -> raise Circuit_open
    | _ -> ()
  in
  let note f = match breaker with Some b -> f b | None -> () in
  let rng = lazy (Random.State.make_self_init ()) in
  let rec go attempt =
    check_allowed ();
    match rpc t req with
    | resp -> (
      match Protocol.retry_after_ms resp with
      | None ->
        note Breaker.note_success;
        resp
      | Some hint_ms ->
        note Breaker.note_failure;
        if attempt >= max_retries then resp (* hand the shed reply back *)
        else begin
          (* the server's hint is a floor; add jitter and our own
             backoff so a shed herd does not return in lockstep *)
          let floor_s = float_of_int hint_ms /. 1000. in
          let backoff = backoff_base_s *. (2. ** float_of_int attempt) in
          let jitter = Random.State.float (Lazy.force rng) backoff in
          Unix.sleepf (min backoff_cap_s (max floor_s backoff) +. jitter);
          go (attempt + 1)
        end)
    | exception Timeout ->
      (* the connection is unusable after a timeout — count it against
         the breaker and let the caller decide whether to reconnect *)
      note Breaker.note_failure;
      raise Timeout
  in
  go 0

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?retries ?receive_timeout path f =
  let t = connect ?retries ?receive_timeout path in
  match f t with
  | v ->
    close t;
    v
  | exception e ->
    close t;
    raise e
