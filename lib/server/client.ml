module Json = Ric_text.Json

type t = { fd : Unix.file_descr }

let connect ?(retries = 0) path =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when attempt < retries ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      go (attempt + 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go 0

let request t json =
  Protocol.write_frame t.fd (Json.to_string json);
  match Protocol.read_frame t.fd with
  | None -> failwith "ricd closed the connection without answering"
  | Some payload ->
    (match Json.of_string payload with
     | v -> v
     | exception Json.Parse_error (msg, line, col) ->
       failwith (Printf.sprintf "malformed response from ricd (%d:%d: %s)" line col msg))

let rpc t req = request t (Protocol.to_json req)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?retries path f =
  let t = connect ?retries path in
  match f t with
  | v ->
    close t;
    v
  | exception e ->
    close t;
    raise e
