(** A minimal blocking client for the {!Protocol} wire format, used by
    the [ric request] CLI, the smoke tests and the benches. *)

type t

val connect : ?retries:int -> ?receive_timeout:float -> string -> t
(** Connect to a daemon's socket.  [retries] (default 0) retries a
    refused/absent socket with capped exponential backoff and full
    jitter (10 ms doubling to a 500 ms cap — roughly 2 s of patience
    at [retries = 10]) — handy right after spawning a server.
    [receive_timeout] (seconds) bounds each wait for a response frame;
    an expired wait raises [Failure], after which the connection is no
    longer usable (a reply may arrive half-framed).
    @raise Unix.Unix_error when the socket stays dead. *)

val request : t -> Ric_text.Json.t -> Ric_text.Json.t
(** Send one framed request and block for its response.
    @raise Failure if the server closes the connection instead of
    answering, answers with malformed JSON, or — with
    [receive_timeout] set — does not answer (or stops answering
    mid-frame) in time. *)

val rpc : t -> Protocol.request -> Ric_text.Json.t
(** [request] composed with {!Protocol.to_json}. *)

val close : t -> unit

val with_connection : ?retries:int -> ?receive_timeout:float -> string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)
