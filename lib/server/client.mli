(** A minimal blocking client for the {!Protocol} wire format, used by
    the [ric request] CLI, the smoke tests and the benches.

    Overload behaviour: a server at capacity answers a structured
    [overloaded] reply carrying [retry_after_ms] (see {!Protocol}).
    {!rpc} hands that reply back verbatim; {!rpc_retrying} layers a
    bounded retry budget on top, sleeping at least the server's hint
    (plus jitter) between attempts, and can share a {!Breaker} so a
    saturated or dead server makes callers fail fast instead of piling
    retries onto it. *)

type t

exception Timeout
(** The server did not answer within [receive_timeout].  The
    connection is unusable afterwards (a reply may arrive
    half-framed): close it and reconnect. *)

exception Circuit_open
(** Raised by {!rpc_retrying} without touching the wire when its
    {!Breaker} is open. *)

(** A circuit breaker shared by the connections of one logical client.

    [threshold] consecutive failures (overloaded replies or timeouts)
    open the circuit: {!allow} answers [false] and {!rpc_retrying}
    fails fast with {!Circuit_open}.  After [cooldown] seconds one
    caller is admitted as a half-open probe; success closes the
    circuit, failure re-opens it for another full cooldown.
    Thread-safe. *)
module Breaker : sig
  type state = Closed | Open | Half_open

  type t

  val create : ?threshold:int -> ?cooldown:float -> unit -> t
  (** [threshold] defaults to 5 consecutive failures (clamped to
      ≥ 1); [cooldown] to 2 s. *)

  val state : t -> state

  val allow : t -> bool
  (** [true] when a call may proceed.  In the half-open window only
      the {e first} caller gets [true] (the probe); the rest stay
      blocked until the probe reports. *)

  val note_success : t -> unit

  val note_failure : t -> unit
end

val connect : ?retries:int -> ?receive_timeout:float -> string -> t
(** Connect to a daemon's socket.  [retries] (default 0) retries a
    refused/absent socket with capped exponential backoff and full
    jitter (10 ms doubling to a 500 ms cap — roughly 2 s of patience
    at [retries = 10]) — handy right after spawning a server.
    [receive_timeout] (seconds) bounds each wait for a response frame;
    an expired wait raises {!Timeout}, after which the connection is
    no longer usable.
    @raise Unix.Unix_error when the socket stays dead. *)

val request : t -> Ric_text.Json.t -> Ric_text.Json.t
(** Send one framed request and block for its response.  A broken-pipe
    send still reads any reply the server wrote before hanging up (the
    at-cap refusal answers-then-closes, and the send can race the
    close); the original [Unix_error] is re-raised only when nothing
    was salvageable.
    @raise Timeout with [receive_timeout] set, when no reply arrives
    in time.
    @raise Failure if the server closes the connection instead of
    answering, answers with malformed JSON, or stops answering
    mid-frame. *)

val rpc : t -> Protocol.request -> Ric_text.Json.t
(** [request] composed with {!Protocol.to_json}.  A request without a
    [req_id] gets one minted here ([ric-<pid>-…]) before it goes on
    the wire; the server echoes it on the reply and stamps it on its
    logs, spans and flight-recorder events. *)

val rpc_retrying :
  ?breaker:Breaker.t -> ?max_retries:int -> t -> Protocol.request -> Ric_text.Json.t
(** Like {!rpc}, but an [overloaded] reply is retried up to
    [max_retries] times (default 3), sleeping at least the server's
    [retry_after_ms] hint plus jittered exponential backoff between
    attempts; the final shed reply is returned if the budget runs
    out.  With [breaker]: overloaded replies and {!Timeout} count as
    failures, any other reply as success, and an open circuit raises
    {!Circuit_open} before touching the wire.
    @raise Timeout as {!request} (timeouts are not retried here — the
    connection is dead; reconnect first). *)

val close : t -> unit

val with_connection : ?retries:int -> ?receive_timeout:float -> string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)
