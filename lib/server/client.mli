(** A minimal blocking client for the {!Protocol} wire format, used by
    the [ric request] CLI, the smoke tests and the benches. *)

type t

val connect : ?retries:int -> string -> t
(** Connect to a daemon's socket.  [retries] (default 0) retries a
    refused/absent socket every 50 ms — handy right after spawning a
    server.  @raise Unix.Unix_error when the socket stays dead. *)

val request : t -> Ric_text.Json.t -> Ric_text.Json.t
(** Send one framed request and block for its response.
    @raise Failure if the server closes the connection instead of
    answering, or answers with malformed JSON. *)

val rpc : t -> Protocol.request -> Ric_text.Json.t
(** [request] composed with {!Protocol.to_json}. *)

val close : t -> unit

val with_connection : ?retries:int -> string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)
