let src = Logs.Src.create "ricd.faults" ~doc:"fault-injection registry"

module Log = (val Logs.src_log src : Logs.LOG)

type action =
  | Delay of float
  | Drop
  | Crash_worker
  | Tear of int

exception Dropped

type slot = { action : action; mutable remaining : int }

let table : (string, slot) Hashtbl.t = Hashtbl.create 8
let mutex = Mutex.create ()

let arm ?(times = 1) point action =
  Mutex.lock mutex;
  Hashtbl.replace table point { action; remaining = times };
  Mutex.unlock mutex

let disarm point =
  Mutex.lock mutex;
  Hashtbl.remove table point;
  Mutex.unlock mutex

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  Mutex.unlock mutex

(* Consume one shot at [point], if any.  [remaining < 0] means the
   fault never wears out. *)
let take point =
  Mutex.lock mutex;
  let action =
    match Hashtbl.find_opt table point with
    | Some slot when slot.remaining <> 0 ->
      if slot.remaining > 0 then slot.remaining <- slot.remaining - 1;
      Some slot.action
    | _ -> None
  in
  Mutex.unlock mutex;
  action

let fire point =
  match take point with
  | None | Some (Tear _) -> ()
  | Some (Delay s) -> Unix.sleepf s
  | Some Drop -> raise Dropped
  | Some Crash_worker -> raise (Pool.Crash (Printf.sprintf "injected fault at %S" point))

let tear () =
  match take "tear_write" with Some (Tear n) -> Some n | Some _ | None -> None

(* Point the par-search fault hook (a ref, because ric_complete cannot
   depend on this library) at the shared table: arming "search_worker"
   crashes a worker mid-task, exercising the retry-once path. *)
let () = Ric_complete.Valuation_search.set_fault_hook (fun () -> fire "search_worker")

(* Client-side injection points: a harness thread consults these just
   before writing a request frame, so the *server* experiences a
   stalled or truncated incoming frame and must defend itself. *)
let slow_read () =
  match take "slow_read" with Some (Delay s) -> Some s | Some _ | None -> None

let torn_read () =
  match take "torn_read" with Some (Tear n) -> Some n | Some _ | None -> None

let parse_action spec =
  match String.index_opt spec ':' with
  | None -> (
    match spec with
    | "crash" -> Some Crash_worker
    | "drop" -> Some Drop
    | _ -> None)
  | Some i -> (
    let name = String.sub spec 0 i in
    let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
    match name with
    | "delay" -> Option.map (fun s -> Delay s) (float_of_string_opt arg)
    | "tear" -> Option.map (fun n -> Tear n) (int_of_string_opt arg)
    | _ -> None)

let parse_item item =
  match String.index_opt item '=' with
  | None -> None
  | Some i ->
    let point = String.sub item 0 i in
    let rest = String.sub item (i + 1) (String.length item - i - 1) in
    let spec, times =
      match String.index_opt rest '*' with
      | None -> (rest, 1)
      | Some j ->
        let t = String.sub rest (j + 1) (String.length rest - j - 1) in
        (String.sub rest 0 j, Option.value ~default:1 (int_of_string_opt t))
    in
    Option.map (fun action -> (point, action, times)) (parse_action spec)

let init_from_env () =
  match Sys.getenv_opt "RIC_FAULTS" with
  | None -> ()
  | Some spec ->
    String.split_on_char ',' spec
    |> List.iter (fun item ->
           let item = String.trim item in
           if item <> "" then
             match parse_item item with
             | Some (point, action, times) -> arm ~times point action
             | None ->
               Log.warn (fun m -> m "ignoring malformed RIC_FAULTS item %S" item))
