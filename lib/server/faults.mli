(** Fault injection for the robustness tests (and for poking a live
    daemon).

    The harness is a process-global table of named {e fault points}.
    Production code calls {!fire} (or {!tear}) at a point; with nothing
    armed that is a hashtable miss and nothing more, so the hooks stay
    in release builds.  Tests (same process — the e2e suite runs the
    server in a sibling domain) or the [RIC_FAULTS] environment
    variable arm faults at specific points:

    - ["decide"] — fired by the service just before running a decider;
      arm a [Delay] to make a request reliably slow.
    - ["worker"] — fired by a pool worker after it has read a request
      frame; arm [Crash_worker] to kill the domain mid-job, or [Drop]
      to tear the connection without a reply.
    - ["tear_write"] — consulted by the server's frame writer via
      {!tear}; arm [Tear n] to close the connection after writing only
      [n] bytes of a reply frame.
    - ["slow_read"] — consulted by the {e client} frame writer via
      {!slow_read}; arm a [Delay s] to make the client stall for [s]
      seconds in the middle of a request frame, so the server sees a
      slow-loris connection and must enforce its read deadline.
    - ["torn_read"] — consulted by the {e client} frame writer via
      {!torn_read}; arm [Tear n] to send only [n] bytes of a request
      frame and then go silent, leaving the server with a permanently
      partial incoming frame.

    [RIC_FAULTS] syntax: comma-separated [point=action] items, where
    action is [crash], [drop], [delay:<seconds>] or [tear:<bytes>],
    optionally suffixed [*<times>] ([*-1] = never wears out).
    Example: [RIC_FAULTS="worker=crash*2,decide=delay:0.2"]. *)

type action =
  | Delay of float  (** sleep this many seconds, then proceed *)
  | Drop  (** raise {!Dropped}: abandon the connection silently *)
  | Crash_worker  (** raise {!Pool.Crash}: kill the worker domain *)
  | Tear of int  (** write only this many bytes of the next frame *)

exception Dropped

val arm : ?times:int -> string -> action -> unit
(** Arm [point] for [times] firings (default 1; negative = unlimited). *)

val disarm : string -> unit

val reset : unit -> unit
(** Disarm everything (tests call this between cases). *)

val fire : string -> unit
(** Consume one shot at [point] and act on it; no-op when nothing is
    armed there.  [Tear] faults are ignored here — they only make sense
    at a write site, via {!tear}. *)

val tear : unit -> int option
(** Consume one shot at the ["tear_write"] point: [Some n] when a
    [Tear n] fault is armed. *)

val slow_read : unit -> float option
(** Consume one shot at the ["slow_read"] point: [Some seconds] when a
    [Delay] fault is armed.  Consulted by the client-side frame writer
    (see {!Client}) to stall mid-request. *)

val torn_read : unit -> int option
(** Consume one shot at the ["torn_read"] point: [Some n] when a
    [Tear n] fault is armed.  Consulted by the client-side frame
    writer to truncate a request frame. *)

val init_from_env : unit -> unit
(** Arm faults from [RIC_FAULTS], warning on stderr about malformed
    items.  Called once at server start. *)
