(* The supervised pool now lives in [Ric_complete] (the parallel
   valuation search fans out through it); re-exported here so server
   code and its tests keep their [Pool] spelling. *)
include Ric_complete.Pool
