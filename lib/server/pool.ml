type 'a t = {
  jobs : 'a Queue.t;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  capacity : int;
  n_domains : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let worker_loop t worker () =
  let rec go () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.not_empty t.mutex
    done;
    if Queue.is_empty t.jobs then
      (* stopping and drained *)
      Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.jobs in
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      (try worker job with _ -> ());
      go ()
    end
  in
  go ()

let create ~domains ~capacity ~worker =
  let t =
    {
      jobs = Queue.create ();
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      capacity = max 1 capacity;
      n_domains = max 1 domains;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init t.n_domains (fun _ -> Domain.spawn (worker_loop t worker));
  t

let domains t = t.n_domains

let submit t job =
  Mutex.lock t.mutex;
  while Queue.length t.jobs >= t.capacity && not t.stopping do
    Condition.wait t.not_full t.mutex
  done;
  let accepted = not t.stopping in
  if accepted then begin
    Queue.push job t.jobs;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.mutex;
  accepted

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  n

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  if not already then List.iter Domain.join t.workers
