(** Re-export of {!Ric_complete.Pool}, the supervised worker-domain
    pool.  It moved into [ric_complete] so the parallel valuation
    search can fan out through the same supervision machinery; server
    code (and its tests) keeps addressing it as [Pool]. *)

include module type of struct
  include Ric_complete.Pool
end
