(** A fixed pool of OCaml 5 [Domain]s draining a bounded job queue.

    [ricd] submits each accepted connection as a job, so requests on
    independent sessions run truly in parallel (the deciders are pure
    functions over immutable snapshots; only the registry/cache
    bookkeeping is serialised).  The queue bound gives backpressure:
    {!submit} blocks the producer when [capacity] jobs are already
    waiting, rather than accepting connections it cannot serve. *)

type 'a t

val create : domains:int -> capacity:int -> worker:('a -> unit) -> 'a t
(** Spawn [max 1 domains] worker domains.  [worker] runs one job at a
    time per domain; exceptions it raises are swallowed (workers must
    do their own reporting — the server logs per-connection). *)

val domains : 'a t -> int

val submit : 'a t -> 'a -> bool
(** Enqueue a job, blocking while the queue is full.  [false] once
    {!shutdown} has begun — the job is not enqueued. *)

val pending : 'a t -> int
(** Jobs currently queued (racy snapshot, for stats). *)

val shutdown : 'a t -> unit
(** Stop accepting jobs, let the workers drain the queue, and join
    them.  Idempotent. *)
