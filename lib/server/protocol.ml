open Ric_relational
module Json = Ric_text.Json

type request =
  | Ping
  | Open of { path : string option; source : string option; name : string option }
  | Rcdp of {
      session : string;
      query : string;
      nocache : bool;
      timeout_ms : int option;
      search : Ric_complete.Search_mode.t option;
      req_id : string option;
      explain : bool;
    }
  | Rcqp of {
      session : string;
      query : string;
      nocache : bool;
      timeout_ms : int option;
      search : Ric_complete.Search_mode.t option;
      req_id : string option;
      explain : bool;
    }
  | Audit of {
      session : string;
      query : string;
      nocache : bool;
      timeout_ms : int option;
      search : Ric_complete.Search_mode.t option;
      req_id : string option;
      explain : bool;
    }
  | Mine of {
      session : string;
      nocache : bool;
      timeout_ms : int option;
      min_support : int option;
      workers : int option;
    }
  | Insert of { session : string; rel : string; rows : Value.t list list }
  | Insert_bulk of {
      session : string;
      batches : (string * Value.t list list) list;
    }
  | Close of { session : string }
  | Stats
  | Dump
  | Shutdown

let op_name = function
  | Ping -> "ping"
  | Open _ -> "open"
  | Rcdp _ -> "rcdp"
  | Rcqp _ -> "rcqp"
  | Audit _ -> "audit"
  | Mine _ -> "mine"
  | Insert _ -> "insert"
  | Insert_bulk _ -> "insert_bulk"
  | Close _ -> "close"
  | Stats -> "stats"
  | Dump -> "dump"
  | Shutdown -> "shutdown"

let error ?(kind = "error") msg =
  Json.Obj [ ("ok", Json.Bool false); ("kind", Json.Str kind); ("error", Json.Str msg) ]

(* The load-shedding reply: admission control answers this instead of
   queueing past capacity, and [retry_after_ms] tells a well-behaved
   client how long to back off before retrying. *)
let overloaded ~retry_after_ms =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ("kind", Json.Str "overloaded");
      ( "error",
        Json.Str
          (Printf.sprintf "server at capacity; retry after %d ms" retry_after_ms) );
      ("retry_after_ms", Json.Int retry_after_ms);
    ]

let retry_after_ms = function
  | Json.Obj fields
    when List.assoc_opt "kind" fields = Some (Json.Str "overloaded") -> (
    match List.assoc_opt "retry_after_ms" fields with
    | Some (Json.Int n) when n >= 0 -> Some n
    | _ -> Some 0)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Decoding. *)

let field fields k = List.assoc_opt k fields

let str_field fields k =
  match field fields k with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let opt_str_field fields k =
  match field fields k with
  | Some (Json.Str s) -> Ok (Some s)
  | Some Json.Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)

let bool_field_default fields k default =
  match field fields k with
  | Some (Json.Bool b) -> Ok b
  | None -> Ok default
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" k)

let opt_search_field fields k =
  match field fields k with
  | Some (Json.Str s) ->
    (match Ric_complete.Search_mode.of_string s with
     | Ok m -> Ok (Some m)
     | Error e -> Error (Printf.sprintf "field %S: %s" k e))
  | Some Json.Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)

let opt_int_field fields k =
  match field fields k with
  | Some (Json.Int n) when n > 0 -> Ok (Some n)
  | Some (Json.Int _) -> Error (Printf.sprintf "field %S must be a positive integer" k)
  | Some Json.Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a positive integer" k)

let value_of_json = function
  | Json.Int n -> Ok (Value.Int n)
  | Json.Str s -> Ok (Value.Str s)
  | _ -> Error "row cells must be strings or integers"

let rows_field fields =
  match field fields "rows" with
  | Some (Json.List rows) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.List cells :: rest ->
        let rec cells_go cacc = function
          | [] -> Ok (List.rev cacc)
          | c :: cs ->
            (match value_of_json c with
             | Ok v -> cells_go (v :: cacc) cs
             | Error _ as e -> e)
        in
        (match cells_go [] cells with
         | Ok row -> go (row :: acc) rest
         | Error _ as e -> e)
      | _ :: _ -> Error "each row must be a list of cells"
    in
    go [] rows
  | Some _ -> Error "field \"rows\" must be a list of rows"
  | None -> Error "missing field \"rows\""

let ( let* ) = Result.bind

let batches_field fields =
  match field fields "batches" with
  | Some (Json.List bs) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Obj bf :: rest ->
        let* rel = str_field bf "rel" in
        let* rows = rows_field bf in
        go ((rel, rows) :: acc) rest
      | _ :: _ -> Error "each batch must be an object with \"rel\" and \"rows\""
    in
    go [] bs
  | Some _ -> Error "field \"batches\" must be a list of batches"
  | None -> Error "missing field \"batches\""

let of_json = function
  | Json.Obj fields ->
    let* op = str_field fields "op" in
    (match op with
     | "ping" -> Ok Ping
     | "stats" -> Ok Stats
     | "dump" -> Ok Dump
     | "shutdown" -> Ok Shutdown
     | "open" ->
       let* path = opt_str_field fields "path" in
       let* source = opt_str_field fields "source" in
       let* name = opt_str_field fields "name" in
       if path = None && source = None then
         Error "open needs a \"path\" or a \"source\" field"
       else Ok (Open { path; source; name })
     | "rcdp" | "rcqp" | "audit" ->
       let* session = str_field fields "session" in
       let* query = str_field fields "query" in
       let* nocache = bool_field_default fields "nocache" false in
       let* timeout_ms = opt_int_field fields "timeout_ms" in
       let* search = opt_search_field fields "search" in
       let* req_id = opt_str_field fields "req_id" in
       let* explain = bool_field_default fields "explain" false in
       Ok
         (match op with
          | "rcdp" ->
            Rcdp { session; query; nocache; timeout_ms; search; req_id; explain }
          | "rcqp" ->
            Rcqp { session; query; nocache; timeout_ms; search; req_id; explain }
          | _ ->
            Audit { session; query; nocache; timeout_ms; search; req_id; explain })
     | "mine" ->
       let* session = str_field fields "session" in
       let* nocache = bool_field_default fields "nocache" false in
       let* timeout_ms = opt_int_field fields "timeout_ms" in
       let* min_support = opt_int_field fields "min_support" in
       let* workers = opt_int_field fields "workers" in
       Ok (Mine { session; nocache; timeout_ms; min_support; workers })
     | "insert" ->
       let* session = str_field fields "session" in
       let* rel = str_field fields "rel" in
       let* rows = rows_field fields in
       Ok (Insert { session; rel; rows })
     | "insert_bulk" ->
       let* session = str_field fields "session" in
       let* batches = batches_field fields in
       Ok (Insert_bulk { session; batches })
     | "close" ->
       let* session = str_field fields "session" in
       Ok (Close { session })
     | other -> Error (Printf.sprintf "unknown op %S" other))
  | _ -> Error "a request must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Encoding (client side). *)

let json_of_value = function
  | Value.Int n -> Json.Int n
  | Value.Str s -> Json.Str s

let opt k = function Some s -> [ (k, Json.Str s) ] | None -> []

let to_json req =
  let op = ("op", Json.Str (op_name req)) in
  match req with
  | Ping | Stats | Dump | Shutdown -> Json.Obj [ op ]
  | Open { path; source; name } ->
    Json.Obj ((op :: opt "path" path) @ opt "source" source @ opt "name" name)
  | Rcdp { session; query; nocache; timeout_ms; search; req_id; explain }
  | Rcqp { session; query; nocache; timeout_ms; search; req_id; explain }
  | Audit { session; query; nocache; timeout_ms; search; req_id; explain } ->
    Json.Obj
      ([ op; ("session", Json.Str session); ("query", Json.Str query) ]
      @ (if nocache then [ ("nocache", Json.Bool true) ] else [])
      @ (match timeout_ms with Some ms -> [ ("timeout_ms", Json.Int ms) ] | None -> [])
      @ opt "req_id" req_id
      @ (if explain then [ ("explain", Json.Bool true) ] else [])
      @
      match search with
      | Some m -> [ ("search", Json.Str (Ric_complete.Search_mode.to_string m)) ]
      | None -> [])
  | Mine { session; nocache; timeout_ms; min_support; workers } ->
    let opt_int k = function Some n -> [ (k, Json.Int n) ] | None -> [] in
    Json.Obj
      ([ op; ("session", Json.Str session) ]
      @ (if nocache then [ ("nocache", Json.Bool true) ] else [])
      @ opt_int "timeout_ms" timeout_ms
      @ opt_int "min_support" min_support
      @ opt_int "workers" workers)
  | Insert { session; rel; rows } ->
    Json.Obj
      [
        op;
        ("session", Json.Str session);
        ("rel", Json.Str rel);
        ("rows", Json.List (List.map (fun row -> Json.List (List.map json_of_value row)) rows));
      ]
  | Insert_bulk { session; batches } ->
    Json.Obj
      [
        op;
        ("session", Json.Str session);
        ( "batches",
          Json.List
            (List.map
               (fun (rel, rows) ->
                 Json.Obj
                   [
                     ("rel", Json.Str rel);
                     ( "rows",
                       Json.List
                         (List.map
                            (fun row -> Json.List (List.map json_of_value row))
                            rows) );
                   ])
               batches) );
      ]
  | Close { session } -> Json.Obj [ op; ("session", Json.Str session) ]

(* ------------------------------------------------------------------ *)
(* Correlation ids.  [req_id] lives at the JSON level so every op —
   not just the decide records above — can carry one: decode ignores
   unknown fields, and the server reads the raw object before
   dispatch. *)

let req_id_of = function
  | Json.Obj fields -> (
    match List.assoc_opt "req_id" fields with
    | Some (Json.Str s) when s <> "" -> Some s
    | _ -> None)
  | _ -> None

let with_req_id json rid =
  match json with
  | Json.Obj fields when not (List.mem_assoc "req_id" fields) ->
    Json.Obj (fields @ [ ("req_id", Json.Str rid) ])
  | other -> other

(* ------------------------------------------------------------------ *)
(* Framing. *)

exception Frame_error of string

let max_frame = 16 * 1024 * 1024

(* Once the first header byte has arrived we are mid-frame: by default,
   retry on receive timeouts rather than letting them desynchronise the
   stream.  Only the very first read of a frame (in {!read_frame}) lets
   EAGAIN through, as the server's idle-poll point — unless the caller
   asked for [timeout_raises] (the client's receive-timeout mode), in
   which case a mid-frame timeout raises too. *)
let rec read_retry ~timeout_raises fd buf ofs len =
  try Unix.read fd buf ofs len
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) when timeout_raises ->
    raise (Frame_error "timed out mid-frame")
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    read_retry ~timeout_raises fd buf ofs len

let really_read ~timeout_raises fd buf ofs len =
  let rec go ofs remaining =
    if remaining > 0 then begin
      let n = read_retry ~timeout_raises fd buf ofs remaining in
      if n = 0 then raise (Frame_error "connection closed mid-frame");
      go (ofs + n) (remaining - n)
    end
  in
  go ofs len

let read_frame ?(timeout_raises = false) fd =
  let header = Bytes.create 4 in
  let n = Unix.read fd header 0 4 in
  if n = 0 then None
  else begin
    if n < 4 then really_read ~timeout_raises fd header n (4 - n);
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len <= 0 || len > max_frame then
      raise (Frame_error (Printf.sprintf "invalid frame length %d" len));
    let payload = Bytes.create len in
    really_read ~timeout_raises fd payload 0 len;
    Some (Bytes.unsafe_to_string payload)
  end

let frame_bytes payload =
  let len = String.length payload in
  if len > max_frame then
    raise (Frame_error (Printf.sprintf "frame of %d bytes exceeds the %d limit" len max_frame));
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  buf

let write_frame ?tear ?stall fd payload =
  let buf = frame_bytes payload in
  let full = Bytes.length buf in
  let total = match tear with Some n -> min n full | None -> full in
  let rec go ofs remaining =
    if remaining > 0 then begin
      let n = Unix.write fd buf ofs remaining in
      go (ofs + n) (remaining - n)
    end
  in
  (* [stall]: send a couple of header bytes, then freeze mid-frame for
     that long — the slow-loris shape the server's read deadline must
     defend against. *)
  (match stall with
   | Some seconds when total > 2 ->
     go 0 2;
     Unix.sleepf seconds;
     go 2 (total - 2)
   | _ -> go 0 total);
  if total < full then
    raise (Frame_error (Printf.sprintf "frame torn after %d bytes (fault injection)" total))
