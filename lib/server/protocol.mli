(** The [ricd] wire protocol.

    Requests and responses are single JSON values framed with a 4-byte
    big-endian length prefix.  A client writes [<u32 length><payload>]
    and reads one framed response per request; it may pipeline several
    requests on one connection.  Payloads use {!Ric_text.Json} — the
    same encoding the CLI's [--json] mode emits.

    {2 Requests}

    {v
    {"op": "ping"}
    {"op": "open", "path": "scenarios/crm.ric"}         # server-side file
    {"op": "open", "source": "schema R(a). ...",
     "name": "inline"}                                  # inline scenario
    {"op": "rcdp",  "session": "s1", "query": "Q0"}
    {"op": "rcqp",  "session": "s1", "query": "Q0"}
    {"op": "audit", "session": "s1", "query": "Q0"}
    {"op": "mine",  "session": "s1"}                    # induce constraints
    {"op": "insert", "session": "s1", "rel": "Cust",
     "rows": [["c2", "carol", 908]]}
    {"op": "insert_bulk", "session": "s1",
     "batches": [{"rel": "Cust", "rows": [["c3", "dave", 17]]},
                 {"rel": "Supt", "rows": [["e1", "d2", "c3"]]}]}
    {"op": "close", "session": "s1"}
    {"op": "stats"}
    {"op": "shutdown"}
    v}

    [rcdp]/[rcqp]/[audit] accept an optional ["nocache": true] field
    that bypasses the verdict cache (used by the benches to measure
    raw decider throughput), and an optional ["timeout_ms": <int>]
    deadline: when the decider exhausts it the response carries a
    [{"verdict": "timeout", ...}] result (with the work-done counters
    accumulated so far) instead of making the client wait out a
    Σ₂ᵖ/NEXPTIME search.  Timed-out verdicts are never cached.

    They also accept an optional ["search": "seq"|"inc"|"par"|"par:N"]
    field selecting the valuation-search strategy
    ({!Ric_complete.Search_mode}); omitted, the server's configured
    default applies.  Verdicts are identical across modes, so cache
    keys ignore it.

    {2 Correlation and explain}

    {e Every} request may carry an optional ["req_id": "<string>"]
    correlation id.  {!Client.rpc} mints one when the caller didn't;
    the server mints one for raw clients that sent none.  The id is
    echoed on the reply, stamped on the server's trace spans and log
    lines, and recorded in the flight recorder — one grep joins a
    request's whole story across all four.  Decode tolerates the field
    on any op; only the decide ops carry it in the typed record.

    [rcdp]/[rcqp]/[audit] additionally accept ["explain": true]: the
    decider then accumulates a request-scoped explain profile
    ({!Ric_obs.Profile}) and the reply carries it as a structured
    ["profile"] object — per-search-level steps, per-constraint prune
    attribution, decider counters and notes.  Explain computes fresh
    (the cache is bypassed on read) so the profile always describes
    {e this} run; the result may still land in the cache.  Without the
    flag, replies carry no ["profile"] field and the deciders' hot
    path pays nothing.

    [{"op": "dump"}] asks the daemon to write its flight recorder to
    the configured JSONL file and answers [{"ok": true, "path": ...,
    "events": n}] — same effect as sending the process [SIGUSR1].

    {2 Responses}

    Every response is an object with an ["ok"] boolean.  Failures look
    like [{"ok": false, "kind": "unknown_session", "error": "..."}].
    Verdict responses carry the session epoch, cache provenance and
    the decider's latency:

    {v
    {"ok": true, "session": "s1", "query": "Q0", "epoch": 0,
     "cached": false, "revalidated": false, "elapsed_us": 412,
     "result": {"verdict": "incomplete", ...}}
    v}

    {2 Overload}

    When admission control sheds a request — the job queue is at
    capacity, or the front end is at its connection limit — the server
    still answers, with a structured shed reply rather than a dropped
    connection:

    {v
    {"ok": false, "kind": "overloaded",
     "error": "server at capacity; retry after 75 ms",
     "retry_after_ms": 75}
    v}

    [retry_after_ms] scales with the current queue depth.  A
    well-behaved client treats it as a {e floor} for its next retry
    delay: {!Client.rpc_retrying} sleeps at least that long (plus
    jitter) before resending, and the client's circuit breaker counts
    consecutive [overloaded]/timeout replies so a saturated server
    stops receiving retries entirely for a cooldown period.  Requests
    that were {e admitted} are never shed retroactively: their queued
    time counts against their [timeout_ms] deadline instead, so a
    long-queued job answers [{"verdict": "timeout"}] rather than
    running after its caller gave up.

    {2 Stats}

    [stats] reports the daemon's telemetry: [uptime_s], the legacy
    [requests]/[timeouts]/[ops]/[search_modes] counters, the open
    [sessions], a [cache] object ([entries], [hits], [misses],
    [hit_rate] — a decimal string like ["0.833"], ["0.000"] before any
    lookup — [carried], [dropped]), a [workers] pool-health object
    when serving, and a [metrics] array mirroring the full
    {!Ric_obs.Metrics} registry (every counter, gauge and latency
    histogram the Prometheus socket exposes, as structured JSON).

    All stats counters are {b process-lifetime totals and are never
    reset}: they survive session closes and cache invalidations, and
    two [stats] calls bracketing a workload can be subtracted to
    measure it.  Rates (like [hit_rate]) are recomputed from those
    running totals at each call.  Only a daemon restart zeroes them. *)

open Ric_relational

type request =
  | Ping
  | Open of { path : string option; source : string option; name : string option }
  | Rcdp of {
      session : string;
      query : string;
      nocache : bool;
      timeout_ms : int option;
      search : Ric_complete.Search_mode.t option;
      req_id : string option;  (** correlation id (minted when absent) *)
      explain : bool;  (** attach an explain profile to the reply *)
    }
  | Rcqp of {
      session : string;
      query : string;
      nocache : bool;
      timeout_ms : int option;
      search : Ric_complete.Search_mode.t option;
      req_id : string option;
      explain : bool;
    }
  | Audit of {
      session : string;
      query : string;
      nocache : bool;
      timeout_ms : int option;
      search : Ric_complete.Search_mode.t option;
      req_id : string option;
      explain : bool;
    }
  | Mine of {
      session : string;
      nocache : bool;
      timeout_ms : int option;
      min_support : int option;  (** acceptance threshold (default 1) *)
      workers : int option;  (** scoring fan-out (default sequential) *)
    }
      (** Induce containment constraints from the session's [(Dm, D)]
          pair.  The response carries the accepted constraints in
          concrete [.ric] syntax plus mining stats; results are cached
          per session epoch like decides, so any [insert] invalidates
          them.  A timed-out pass answers with the partial constraint
          set and a ["timeout"] field instead of blocking. *)
  | Insert of { session : string; rel : string; rows : Value.t list list }
  | Insert_bulk of {
      session : string;
      batches : (string * Value.t list list) list;
    }
      (** [{"op": "insert_bulk", "session": "s1", "batches":
          [{"rel": "Cust", "rows": [[...], ...]}, ...]}] — several
          relations' rows applied as {e one} mutation: one epoch bump,
          one partial-closure re-check, one journal append and one
          cache migration for the whole batch, instead of one of each
          per [insert].  All-or-nothing: the first schema violation
          rejects the entire request and leaves the session
          untouched. *)
  | Close of { session : string }
  | Stats
  | Dump
      (** Write the flight recorder to the daemon's configured JSONL
          path and report how many events were dumped. *)
  | Shutdown

val of_json : Ric_text.Json.t -> (request, string) result
(** Decode a request object; the error names the missing or ill-typed
    field. *)

val to_json : request -> Ric_text.Json.t
(** Encode a request (the client side of the protocol). *)

val op_name : request -> string
(** The ["op"] string, for logs and stats. *)

val req_id_of : Ric_text.Json.t -> string option
(** The ["req_id"] field of a raw request (or reply) object, when
    present and a non-empty string.  Works on {e any} op — correlation
    ids live at the JSON level. *)

val with_req_id : Ric_text.Json.t -> string -> Ric_text.Json.t
(** Add ["req_id"] to a request object that doesn't already have one
    (an existing id — even an ill-typed one — is left untouched).
    Non-objects pass through unchanged. *)

val error : ?kind:string -> string -> Ric_text.Json.t
(** [{"ok": false, "kind": kind, "error": msg}] (kind defaults to
    ["error"]). *)

val overloaded : retry_after_ms:int -> Ric_text.Json.t
(** The load-shedding reply (see {e Overload} above): [{"ok": false,
    "kind": "overloaded", "error": ..., "retry_after_ms": n}]. *)

val retry_after_ms : Ric_text.Json.t -> int option
(** [Some n] when the response is an [overloaded] shed reply carrying
    a retry hint ([Some 0] if the field is missing or negative);
    [None] for every other response.  The client's retry loop keys on
    this. *)

(* ------------------------------------------------------------------ *)
(** {2 Framing} *)

exception Frame_error of string
(** A malformed frame: truncated length prefix, truncated payload, or
    a length outside [1 .. max_frame]. *)

val max_frame : int
(** Refuse frames larger than this (16 MiB) rather than letting a
    corrupt length prefix allocate unboundedly. *)

val read_frame : ?timeout_raises:bool -> Unix.file_descr -> string option
(** Read one frame.  [None] on a clean EOF before the first length
    byte.  @raise Frame_error on a malformed frame; Unix errors
    (including receive timeouts) on the {e first} read pass through.
    Mid-frame receive timeouts are retried by default (the server's
    idle-poll mode); with [timeout_raises] they raise [Frame_error]
    instead (the client's receive-timeout mode — a half-delivered
    reply means the connection is unusable). *)

val frame_bytes : string -> bytes
(** The on-wire form of one frame — length prefix plus payload — for
    callers that buffer writes themselves (the event-loop front end).
    @raise Frame_error if the payload exceeds {!max_frame}. *)

val write_frame : ?tear:int -> ?stall:float -> Unix.file_descr -> string -> unit
(** Write one frame.  [tear] (fault injection only) stops after that
    many bytes and raises [Frame_error] so the server tears the
    connection down.  [stall] (fault injection only) sleeps that many
    seconds after the first two header bytes, emulating a slow-loris
    peer.  @raise Frame_error if the payload exceeds {!max_frame}. *)
