module Json = Ric_text.Json
module Journal = Ric_text.Journal

type config = {
  socket_path : string;
  domains : int;
  queue_capacity : int;
  root : string option;
  journal : string option;
  recover : bool;
  search : Ric_complete.Search_mode.t;
}

let default_config =
  {
    socket_path = "/tmp/ricd.sock";
    domains = 2;
    queue_capacity = 64;
    root = None;
    journal = None;
    recover = false;
    search = Ric_complete.Search_mode.Seq;
  }

let src = Logs.Src.create "ricd" ~doc:"the ric completeness-checking daemon"

module Log = (val Logs.src_log src : Logs.LOG)

(* A worker parks in [read_frame] between requests; this receive
   timeout is its poll interval on the shutdown flag, so an idle
   keep-alive connection cannot wedge {!Pool.shutdown}. *)
let idle_poll_s = 0.25

let serve_connection service fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO idle_poll_s
   with Unix.Unix_error _ -> ());
  let rec loop () =
    if Service.shutdown_requested service then ()
    else
      match Protocol.read_frame fd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        loop ()
      | None -> () (* client hung up *)
      | Some payload ->
        (* the request frame is consumed: a [Crash_worker] here kills
           the domain mid-job, and the pool hands the connection to
           another worker *)
        Faults.fire "worker";
        let t0 = Unix.gettimeofday () in
        let op, response =
          match Json.of_string payload with
          | exception Json.Parse_error (msg, line, col) ->
            ( "?",
              Protocol.error ~kind:"parse_error"
                (Printf.sprintf "request is not JSON: %d:%d: %s" line col msg) )
          | json ->
            (match Protocol.of_json json with
             | Error msg -> ("?", Protocol.error ~kind:"bad_request" msg)
             | Ok req -> (Protocol.op_name req, Service.handle service req))
        in
        Protocol.write_frame ?tear:(Faults.tear ()) fd (Json.to_string response);
        Log.info (fun m ->
            m "op=%s elapsed_us=%d" op
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)));
        loop ()
  in
  (try loop () with
   | Protocol.Frame_error msg -> Log.warn (fun m -> m "dropping connection: %s" msg)
   | Faults.Dropped -> Log.warn (fun m -> m "dropping connection: injected fault")
   | Unix.Unix_error (e, _, _) ->
     Log.warn (fun m -> m "dropping connection: %s" (Unix.error_message e)));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Refuse to steal the socket from a live daemon, but clear out a
   stale file left by a crashed one. *)
let prepare_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path));
    Log.warn (fun m -> m "removing stale socket file %s" path);
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

(* A job whose worker crashed twice: answer the client with an error
   instead of silence, then tear the connection down. *)
let quarantine_connection fd reason =
  (try
     Protocol.write_frame fd
       (Json.to_string
          (Protocol.error ~kind:"worker_crash"
             (Printf.sprintf "request abandoned after repeated worker crashes: %s" reason)))
   with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let install_signal_handlers service =
  match Sys.os_type with
  | "Unix" ->
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let graceful signal_name _ =
      (* flip the flag only: the accept loop and the workers notice on
         their next idle poll and drain — safe in a signal context *)
      ignore signal_name;
      Service.request_shutdown service
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (graceful "SIGTERM"));
    Sys.set_signal Sys.sigint (Sys.Signal_handle (graceful "SIGINT"))
  | _ -> ()

let setup_journal service config =
  match config.journal with
  | None ->
    if config.recover then
      Log.warn (fun m -> m "--recover ignored: no journal configured");
    None
  | Some path ->
    let retained =
      if config.recover && Sys.file_exists path then begin
        match Service.recover service path with
        | r ->
          Log.app (fun m ->
              m "recovered %d session(s) from %s (%d record(s), %d failed%s)"
                r.Service.sessions_restored path r.Service.entries_replayed
                r.Service.entries_failed
                (if r.Service.torn_tail then ", torn tail discarded" else ""));
          r.Service.retained
        | exception Sys_error msg ->
          Log.err (fun m -> m "cannot recover from %s: %s" path msg);
          []
      end
      else []
    in
    (match Journal.open_append ~truncate:true path with
     | j ->
       List.iter (Journal.append j) retained;
       Service.attach_journal service j;
       Some j
     | exception Sys_error msg ->
       Log.err (fun m -> m "cannot open journal %s: %s (running without durability)" path msg);
       None)

let run config =
  Faults.init_from_env ();
  let service = Service.create ?root:config.root ~default_search:config.search () in
  install_signal_handlers service;
  let journal = setup_journal service config in
  prepare_socket_path config.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX config.socket_path);
  Unix.listen sock 64;
  let pool =
    Pool.create ~on_quarantine:quarantine_connection ~domains:config.domains
      ~capacity:config.queue_capacity
      ~worker:(serve_connection service) ()
  in
  Service.set_pool_stats service (fun () -> Pool.stats pool);
  Log.app (fun m ->
      m "ricd listening on %s (%d worker domain%s)" config.socket_path
        (Pool.domains pool)
        (if Pool.domains pool = 1 then "" else "s"));
  let rec accept_loop () =
    if Service.shutdown_requested service then ()
    else begin
      (match Unix.select [ sock ] [] [] idle_poll_s with
       | [ _ ], _, _ ->
         (match Unix.accept sock with
          | fd, _ -> if not (Pool.submit pool fd) then Unix.close fd
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ())
       | _ -> ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  Log.app (fun m -> m "ricd shutting down");
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  Pool.shutdown pool;
  match journal with None -> () | Some j -> Journal.close j
