module Json = Ric_text.Json
module Journal = Ric_text.Journal
module Metrics = Ric_obs.Metrics
module Recorder = Ric_obs.Recorder

type config = {
  socket_path : string;
  domains : int;
  queue_capacity : int;
  max_connections : int;
  read_deadline_s : float;
  write_deadline_s : float;
  root : string option;
  journal : string option;
  recover : bool;
  search : Ric_complete.Search_mode.t;
  metrics : string option;
  trace : string option;
  flight : string option;
}

let default_config =
  {
    socket_path = "/tmp/ricd.sock";
    domains = 2;
    queue_capacity = 64;
    (* [Unix.select] tops out at FD_SETSIZE (1024) descriptors; leave
       headroom for the listen sockets, the wake pipe and stdio *)
    max_connections = 960;
    read_deadline_s = 10.;
    write_deadline_s = 10.;
    root = None;
    journal = None;
    recover = false;
    search = Ric_complete.Search_mode.Seq;
    metrics = None;
    trace = None;
    flight = None;
  }

(* the flight-recorder dump target: configured, or derived from the
   command socket so every daemon has one without any flag *)
let flight_path_of config =
  match config.flight with
  | Some p -> p
  | None -> config.socket_path ^ ".flight.jsonl"

let m_compactions =
  Metrics.counter ~help:"journal compactions performed at recovery"
    "ric_journal_compactions_total"

let m_scrapes =
  Metrics.counter ~help:"Prometheus scrapes served on the metrics socket"
    "ric_metrics_scrapes_total"

let m_shed =
  Metrics.counter ~help:"requests answered with an overloaded shed reply"
    "ric_server_shed_total"

let m_evicted =
  Metrics.counter
    ~help:"connections evicted for blowing a read or write deadline"
    "ric_server_evicted_slow_total"

let m_queue_wait =
  Metrics.histogram
    ~help:"seconds a request spent in the job queue before a worker took it"
    "ric_server_queue_wait_seconds"

let src = Logs.Src.create "ricd" ~doc:"the ric completeness-checking daemon"

module Log = (val Logs.src_log src : Logs.LOG)

(* The event loop's select timeout: its poll interval on the shutdown
   flag and on read/write deadlines, so both have ~this granularity. *)
let tick_s = 0.1

(* Per-connection cap on fully-parsed frames waiting for dispatch; at
   the cap the loop stops reading from that connection (backpressure
   through the socket buffer) rather than parsing without bound. *)
let pending_cap = 64

let read_chunk = 65536

(* ------------------------------------------------------------------ *)
(* Connection state.  Every field is owned by the event-loop thread;
   workers receive the record opaquely and hand it back through the
   completion queue without touching it. *)

type wbuf = { buf : Bytes.t; mutable off : int }

type conn = {
  fd : Unix.file_descr;
  cid : int;
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  mutable frame_deadline : float option;
      (* armed while a partial frame sits in [rbuf]: the slow-loris
         eviction clock *)
  pending : string Queue.t;  (* parsed frames awaiting dispatch *)
  mutable in_flight : bool;  (* one job at a time preserves reply order *)
  wq : wbuf Queue.t;
  mutable wq_progress_at : float;  (* last write progress: the flush clock *)
  mutable close_after_flush : bool;
  mutable eof : bool;  (* stop reading; still flush what is owed *)
  mutable closed : bool;
}

type outcome =
  | Reply of string
  | Reply_close of string  (* answer, then hang up (quarantine) *)
  | Hangup  (* injected Drop: no reply *)

(* ------------------------------------------------------------------ *)
(* Startup helpers (shared with the old blocking front end). *)

(* Refuse to steal the socket from a live daemon, but clear out a
   stale file left by a crashed one. *)
let prepare_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path));
    Log.warn (fun m -> m "removing stale socket file %s" path);
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

(* SIGUSR1 = "dump the flight recorder".  Same flag-flip discipline as
   shutdown: the handler only sets this; the event loop does the file
   write on its next tick. *)
let dump_requested = Atomic.make false

let install_signal_handlers service =
  match Sys.os_type with
  | "Unix" ->
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let graceful signal_name _ =
      (* flip the flag only: the event loop notices on its next tick
         and drains — safe in a signal context *)
      ignore signal_name;
      Service.request_shutdown service
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (graceful "SIGTERM"));
    Sys.set_signal Sys.sigint (Sys.Signal_handle (graceful "SIGINT"));
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle (fun _ -> Atomic.set dump_requested true))
  | _ -> ()

(* One scrape per connection: drain whatever HTTP request the client
   sent (closing with unread data provokes a RST that curl reports as
   an error), answer with a minimal HTTP/1.0 response carrying the
   registry snapshot, then close.  The short receive timeout keeps a
   silent prober from wedging the event loop. *)
let serve_scrape fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25
   with Unix.Unix_error _ -> ());
  (try ignore (Unix.read fd (Bytes.create 4096) 0 4096)
   with Unix.Unix_error _ -> ());
  let body = Metrics.to_prometheus () in
  let response =
    Printf.sprintf
      "HTTP/1.0 200 OK\r\n\
       Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n\
       %s"
      (String.length body) body
  in
  (try
     let b = Bytes.unsafe_of_string response in
     let rec write off =
       if off < Bytes.length b then
         write (off + Unix.write fd b off (Bytes.length b - off))
     in
     write 0
   with Unix.Unix_error _ -> ());
  Metrics.incr m_scrapes;
  try Unix.close fd with Unix.Unix_error _ -> ()

let setup_journal service config =
  match config.journal with
  | None ->
    if config.recover then
      Log.warn (fun m -> m "--recover ignored: no journal configured");
    None
  | Some path ->
    let compacting = config.recover && Sys.file_exists path in
    let retained =
      if compacting then begin
        match Service.recover service path with
        | r ->
          Log.app (fun m ->
              m "recovered %d session(s) from %s (%d record(s), %d failed%s)"
                r.Service.sessions_restored path r.Service.entries_replayed
                r.Service.entries_failed
                (if r.Service.torn_tail then ", torn tail discarded" else ""));
          r.Service.retained
        | exception Sys_error msg ->
          Log.err (fun m -> m "cannot recover from %s: %s" path msg);
          []
      end
      else []
    in
    (match Journal.open_append ~truncate:true path with
     | j ->
       List.iter (Journal.append j) retained;
       if compacting then Metrics.incr m_compactions;
       Service.attach_journal service j;
       Some j
     | exception Sys_error msg ->
       Log.err (fun m -> m "cannot open journal %s: %s (running without durability)" path msg);
       None)

(* ------------------------------------------------------------------ *)
(* The worker side: parse + dispatch one frame, report through the
   completion queue.  Never lets an ordinary exception escape (that
   would just bump the pool's failure counter and leave the connection
   waiting forever); only [Pool.Crash] propagates, and the pool's
   retry/quarantine machinery owns that path. *)

let mint_counter = Atomic.make 0

(* server-side correlation fallback: a raw client that sent no req_id
   still gets one, minted here before decode so the typed request (and
   every span, log line and recorder event under it) carries it *)
let mint_req_id () =
  Printf.sprintf "ricd-%d-%d-%d" (Unix.getpid ())
    (int_of_float (Unix.gettimeofday () *. 1e3) land 0xffffff)
    (Atomic.fetch_and_add mint_counter 1)

let run_job service push_completion (conn, payload, admitted_at) =
  match
    Faults.fire "worker";
    Metrics.observe m_queue_wait (Unix.gettimeofday () -. admitted_at);
    let t0 = Unix.gettimeofday () in
    let op, req_id, response =
      match Json.of_string payload with
      | exception Json.Parse_error (msg, line, col) ->
        ( "?",
          None,
          Protocol.error ~kind:"parse_error"
            (Printf.sprintf "request is not JSON: %d:%d: %s" line col msg) )
      | json ->
        let rid =
          match Protocol.req_id_of json with
          | Some rid -> rid
          | None -> mint_req_id ()
        in
        let json = Protocol.with_req_id json rid in
        (match Protocol.of_json json with
         | Error msg -> ("?", Some rid, Protocol.error ~kind:"bad_request" msg)
         | Ok req ->
           Recorder.record ~kind:"request" ~req_id:rid ~conn:conn.cid
             (Protocol.op_name req);
           (Protocol.op_name req, Some rid, Service.handle service ~admitted_at req))
    in
    let elapsed_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    Recorder.record ~kind:"reply" ?req_id ~conn:conn.cid
      (Printf.sprintf "op=%s elapsed_us=%d" op elapsed_us);
    Log.info (fun m ->
        m "op=%s conn=%d req_id=%s elapsed_us=%d" op conn.cid
          (Option.value ~default:"-" req_id) elapsed_us);
    (* echo the (possibly minted) id on every reply, errors included;
       [with_req_id] is a no-op when Service.handle already stamped it *)
    let response =
      match req_id with
      | Some rid -> Protocol.with_req_id response rid
      | None -> response
    in
    Json.to_string response
  with
  | response -> push_completion (conn, Reply response)
  | exception Faults.Dropped -> push_completion (conn, Hangup)
  | exception Pool.Crash msg -> raise (Pool.Crash msg)
  | exception e ->
    push_completion
      (conn, Reply (Json.to_string (Protocol.error (Printexc.to_string e))))

(* ------------------------------------------------------------------ *)

let dump_flight ~why flight_path =
  match Recorder.dump flight_path with
  | n -> Log.app (fun m -> m "flight recorder (%s): %d event(s) -> %s" why n flight_path)
  | exception Sys_error msg ->
    Log.err (fun m -> m "flight recorder dump to %s failed: %s" flight_path msg)

let run_inner config ~flight_path =
  Faults.init_from_env ();
  (match config.trace with
   | Some path ->
     Ric_obs.Trace.open_file path;
     Log.app (fun m -> m "tracing spans to %s" path)
   | None -> ());
  let service = Service.create ?root:config.root ~default_search:config.search () in
  Service.set_flight_path service flight_path;
  install_signal_handlers service;
  let journal = setup_journal service config in
  prepare_socket_path config.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX config.socket_path);
  Unix.listen sock 128;
  Unix.set_nonblock sock;
  let msock =
    match config.metrics with
    | None -> None
    | Some path ->
      prepare_socket_path path;
      let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind s (Unix.ADDR_UNIX path);
      Unix.listen s 16;
      Log.app (fun m -> m "metrics socket on %s" path);
      Some (s, path)
  in

  (* -- shared state ----------------------------------------------- *)
  (* Everything below except [completions]/[active] is touched only by
     the event-loop thread. *)
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let completions : (conn * outcome) Queue.t = Queue.create () in
  let cmutex = Mutex.create () in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let active = Atomic.make 0 in
  let jobs_outstanding = ref 0 in
  let draining = ref false in
  let next_cid = ref 0 in
  let push_completion c =
    Mutex.lock cmutex;
    Queue.push c completions;
    Mutex.unlock cmutex;
    (* best-effort wake: a full pipe means a wake-up is already due *)
    try ignore (Unix.write wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
  in

  let pool =
    Pool.create
      ~on_quarantine:(fun (conn, _, _) reason ->
        Recorder.record ~kind:"crash" ~conn:conn.cid
          ("worker quarantine: " ^ reason);
        dump_flight ~why:"worker quarantine" flight_path;
        push_completion
          ( conn,
            Reply_close
              (Json.to_string
                 (Protocol.error ~kind:"worker_crash"
                    (Printf.sprintf
                       "request abandoned after repeated worker crashes: %s" reason))) ))
      ~domains:config.domains ~capacity:config.queue_capacity
      ~worker:(run_job service push_completion) ()
  in
  Service.set_pool_stats service (fun () -> Pool.stats pool);
  (* worker-pool health as pull gauges, sampled at scrape time *)
  let pool_gauge name help f =
    Metrics.gauge_fn ~help name (fun () -> f (Pool.stats pool))
  in
  pool_gauge "ric_pool_failures" "jobs that raised in a worker domain"
    (fun s -> s.Pool.failures);
  pool_gauge "ric_pool_crashes" "worker domains that died mid-job"
    (fun s -> s.Pool.crashes);
  pool_gauge "ric_pool_respawns" "worker domains respawned after a crash"
    (fun s -> s.Pool.respawns);
  pool_gauge "ric_pool_quarantined" "jobs abandoned after repeated crashes"
    (fun s -> s.Pool.quarantined);
  pool_gauge "ric_pool_pending" "jobs queued but not yet picked up"
    (fun s -> s.Pool.pending);
  Metrics.gauge_fn ~help:"connections the front end is currently holding open"
    "ric_server_connections_active" (fun () -> Atomic.get active);
  Metrics.gauge_fn ~help:"jobs admitted but not yet picked up by a worker"
    "ric_server_queue_depth" (fun () -> Pool.pending pool);

  (* -- event-loop helpers ----------------------------------------- *)
  let close_conn conn =
    if not conn.closed then begin
      conn.closed <- true;
      Hashtbl.remove conns conn.fd;
      Atomic.decr active;
      try Unix.close conn.fd with Unix.Unix_error _ -> ()
    end
  in
  (* a connection dies once nothing more is owed on it: its replies are
     flushed, and (on EOF or drain) no admitted work remains *)
  let maybe_close conn =
    if
      (not conn.closed)
      && Queue.is_empty conn.wq
      && (conn.close_after_flush
         || (conn.eof || !draining)
            && (not conn.in_flight)
            && Queue.is_empty conn.pending)
    then close_conn conn
  in
  let enqueue_reply conn payload =
    if not conn.closed then begin
      match Protocol.frame_bytes payload with
      | buf ->
        (match Faults.tear () with
         | Some n ->
           (* injected torn write: truncate the frame, then hang up *)
           Queue.push { buf = Bytes.sub buf 0 (min n (Bytes.length buf)); off = 0 } conn.wq;
           conn.close_after_flush <- true
         | None -> Queue.push { buf; off = 0 } conn.wq);
        conn.wq_progress_at <- Unix.gettimeofday ()
      | exception Protocol.Frame_error msg ->
        Log.err (fun m -> m "conn=%d reply unframeable: %s" conn.cid msg);
        close_conn conn
    end
  in
  (* admission control lives here: a frame leaves [pending] either into
     the job queue (stamped with its admission time) or — queue full —
     straight back out as an [overloaded] reply, in request order *)
  let rec dispatch conn =
    if (not conn.closed) && (not conn.in_flight) && not (Queue.is_empty conn.pending)
    then begin
      let payload = Queue.pop conn.pending in
      let admitted_at = Unix.gettimeofday () in
      if Pool.try_submit pool (conn, payload, admitted_at) then begin
        conn.in_flight <- true;
        incr jobs_outstanding
      end
      else begin
        Metrics.incr m_shed;
        let depth = Pool.pending pool in
        let retry_after_ms = min 5000 (25 * (depth + 1)) in
        Recorder.record ~kind:"shed" ~conn:conn.cid
          (Printf.sprintf "queue full: depth=%d retry_after_ms=%d" depth
             retry_after_ms);
        enqueue_reply conn (Json.to_string (Protocol.overloaded ~retry_after_ms));
        dispatch conn
      end
    end
  in
  let protocol_error conn msg =
    enqueue_reply conn (Json.to_string (Protocol.error ~kind:"parse_error" msg));
    conn.close_after_flush <- true;
    conn.eof <- true;
    conn.rlen <- 0
  in
  let parse_frames conn =
    let continue = ref true in
    while !continue do
      if conn.rlen >= 4 then begin
        let len = Int32.to_int (Bytes.get_int32_be conn.rbuf 0) in
        if len <= 0 || len > Protocol.max_frame then begin
          protocol_error conn (Printf.sprintf "invalid frame length %d" len);
          continue := false
        end
        else if conn.rlen >= 4 + len then begin
          Queue.push (Bytes.sub_string conn.rbuf 4 len) conn.pending;
          let rest = conn.rlen - 4 - len in
          Bytes.blit conn.rbuf (4 + len) conn.rbuf 0 rest;
          conn.rlen <- rest
        end
        else continue := false
      end
      else continue := false
    done;
    (* the slow-loris clock: armed while a partial frame lingers, and
       anchored at the partial frame's first byte (not refreshed by a
       slow drip of subsequent ones) *)
    if conn.rlen = 0 then conn.frame_deadline <- None
    else if conn.frame_deadline = None then
      conn.frame_deadline <- Some (Unix.gettimeofday () +. config.read_deadline_s)
  in
  let handle_readable conn =
    if (not conn.closed) && not conn.eof then begin
      if Bytes.length conn.rbuf - conn.rlen < read_chunk then begin
        let bigger = Bytes.create (Bytes.length conn.rbuf + read_chunk) in
        Bytes.blit conn.rbuf 0 bigger 0 conn.rlen;
        conn.rbuf <- bigger
      end;
      match Unix.read conn.fd conn.rbuf conn.rlen read_chunk with
      | 0 ->
        conn.eof <- true;
        maybe_close conn
      | n ->
        conn.rlen <- conn.rlen + n;
        parse_frames conn;
        dispatch conn
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
      | exception Unix.Unix_error _ -> close_conn conn
    end
  in
  let handle_writable conn =
    if not conn.closed then begin
      let progress = ref true in
      while !progress && not (Queue.is_empty conn.wq) do
        let w = Queue.peek conn.wq in
        match Unix.write conn.fd w.buf w.off (Bytes.length w.buf - w.off) with
        | n ->
          w.off <- w.off + n;
          conn.wq_progress_at <- Unix.gettimeofday ();
          if w.off >= Bytes.length w.buf then ignore (Queue.pop conn.wq)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          progress := false
        | exception Unix.Unix_error _ ->
          close_conn conn;
          progress := false
      done;
      maybe_close conn
    end
  in
  let register_conn fd =
    Unix.set_nonblock fd;
    incr next_cid;
    let conn =
      {
        fd;
        cid = !next_cid;
        rbuf = Bytes.create read_chunk;
        rlen = 0;
        frame_deadline = None;
        pending = Queue.create ();
        in_flight = false;
        wq = Queue.create ();
        wq_progress_at = Unix.gettimeofday ();
        close_after_flush = false;
        eof = false;
        closed = false;
      }
    in
    Hashtbl.replace conns fd conn;
    Atomic.incr active
  in
  (* at the connection cap the front end still answers: a best-effort
     overloaded frame on the doomed socket, never a silent RST *)
  let refuse_connection fd =
    Metrics.incr m_shed;
    Recorder.record ~kind:"shed"
      (Printf.sprintf "connection refused at max_connections=%d"
         config.max_connections);
    (try
       Unix.set_nonblock fd;
       let buf =
         Protocol.frame_bytes
           (Json.to_string (Protocol.overloaded ~retry_after_ms:1000))
       in
       ignore (Unix.write fd buf 0 (Bytes.length buf))
     with Unix.Unix_error _ | Protocol.Frame_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let rec accept_all () =
    match Unix.accept sock with
    | fd, _ ->
      if Atomic.get active >= config.max_connections then refuse_connection fd
      else register_conn fd;
      accept_all ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_all ()
  in
  let drain_completions () =
    Mutex.lock cmutex;
    let batch = Queue.create () in
    Queue.transfer completions batch;
    Mutex.unlock cmutex;
    Queue.iter
      (fun (conn, outcome) ->
        decr jobs_outstanding;
        if not conn.closed then begin
          conn.in_flight <- false;
          (match outcome with
           | Reply r ->
             enqueue_reply conn r;
             dispatch conn
           | Reply_close r ->
             enqueue_reply conn r;
             conn.close_after_flush <- true
           | Hangup ->
             Log.warn (fun m -> m "conn=%d dropped: injected fault" conn.cid);
             close_conn conn);
          maybe_close conn
        end)
      batch
  in
  let evict_stale () =
    let now = Unix.gettimeofday () in
    let victims = ref [] in
    Hashtbl.iter
      (fun _ conn ->
        let starved_read =
          (not conn.eof)
          && (match conn.frame_deadline with Some d -> now > d | None -> false)
        in
        let starved_write =
          (not (Queue.is_empty conn.wq))
          && now -. conn.wq_progress_at > config.write_deadline_s
        in
        if starved_read || starved_write then victims := conn :: !victims)
      conns;
    List.iter
      (fun conn ->
        Metrics.incr m_evicted;
        Recorder.record ~kind:"evict" ~conn:conn.cid "deadline blown mid-frame";
        Log.warn (fun m -> m "conn=%d evicted: deadline blown mid-frame" conn.cid);
        close_conn conn)
      !victims
  in

  Log.app (fun m ->
      m "ricd listening on %s (%d worker domain%s, queue %d, max %d conns)"
        config.socket_path (Pool.domains pool)
        (if Pool.domains pool = 1 then "" else "s")
        (Pool.capacity pool) config.max_connections);

  (* -- the loop --------------------------------------------------- *)
  let running = ref true in
  while !running do
    if Service.shutdown_requested service && not !draining then begin
      draining := true;
      Log.app (fun m ->
          m "ricd draining: %d connection(s), %d job(s) outstanding"
            (Hashtbl.length conns) !jobs_outstanding);
      (* stop accepting immediately: close and unlink the listen socket
         so new clients get ECONNREFUSED, not a hang *)
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
      (* frames already read are admitted work: push them at the pool *)
      Hashtbl.iter (fun _ conn -> dispatch conn) conns
    end;
    if !draining then begin
      Hashtbl.fold (fun _ c acc -> c :: acc) conns [] |> List.iter maybe_close;
      if Hashtbl.length conns = 0 && !jobs_outstanding = 0 then running := false
    end;
    if !running then begin
      let reads = ref [ wake_r ] in
      if not !draining then begin
        reads := sock :: !reads;
        match msock with Some (s, _) -> reads := s :: !reads | None -> ()
      end;
      let writes = ref [] in
      Hashtbl.iter
        (fun fd conn ->
          if
            (not conn.eof)
            && (not conn.close_after_flush)
            && (not !draining)
            && Queue.length conn.pending < pending_cap
          then reads := fd :: !reads;
          if not (Queue.is_empty conn.wq) then writes := fd :: !writes)
        conns;
      (match Unix.select !reads !writes [] tick_s with
       | readable, writable, _ ->
         List.iter
           (fun fd ->
             if fd == wake_r then (
               try ignore (Unix.read wake_r (Bytes.create 256) 0 256)
               with Unix.Unix_error _ -> ())
             else if fd == sock then accept_all ()
             else
               match msock with
               | Some (s, _) when fd == s -> (
                 match Unix.accept s with
                 | cfd, _ -> serve_scrape cfd
                 | exception Unix.Unix_error _ -> ())
               | _ -> (
                 match Hashtbl.find_opt conns fd with
                 | Some conn -> handle_readable conn
                 | None -> () (* closed earlier this iteration *)))
           readable;
         List.iter
           (fun fd ->
             match Hashtbl.find_opt conns fd with
             | Some conn -> handle_writable conn
             | None -> ())
           writable
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      drain_completions ();
      evict_stale ();
      if Atomic.compare_and_set dump_requested true false then
        dump_flight ~why:"SIGUSR1" flight_path
    end
  done;

  Log.app (fun m -> m "ricd shutting down");
  Hashtbl.fold (fun _ c acc -> c :: acc) conns [] |> List.iter close_conn;
  (match msock with
   | Some (s, path) ->
     (try Unix.close s with Unix.Unix_error _ -> ());
     (try Unix.unlink path with Unix.Unix_error _ -> ())
   | None -> ());
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  (try Unix.close wake_w with Unix.Unix_error _ -> ());
  Pool.shutdown pool;
  (match journal with None -> () | Some j -> Journal.close j);
  match config.trace with Some _ -> Ric_obs.Trace.close () | None -> ()

(* The flight recorder's reason to exist: if the daemon dies on an
   uncaught exception, the last window of traffic goes to disk before
   the process does. *)
let run config =
  let flight_path = flight_path_of config in
  try run_inner config ~flight_path
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Recorder.record ~kind:"crash" ("fatal: " ^ Printexc.to_string e);
    dump_flight ~why:"fatal exit" flight_path;
    Printexc.raise_with_backtrace e bt
