module Json = Ric_text.Json
module Journal = Ric_text.Journal

type config = {
  socket_path : string;
  domains : int;
  queue_capacity : int;
  root : string option;
  journal : string option;
  recover : bool;
  search : Ric_complete.Search_mode.t;
  metrics : string option;
  trace : string option;
}

let default_config =
  {
    socket_path = "/tmp/ricd.sock";
    domains = 2;
    queue_capacity = 64;
    root = None;
    journal = None;
    recover = false;
    search = Ric_complete.Search_mode.Seq;
    metrics = None;
    trace = None;
  }

let m_compactions =
  Ric_obs.Metrics.counter ~help:"journal compactions performed at recovery"
    "ric_journal_compactions_total"

let m_scrapes =
  Ric_obs.Metrics.counter ~help:"Prometheus scrapes served on the metrics socket"
    "ric_metrics_scrapes_total"

let src = Logs.Src.create "ricd" ~doc:"the ric completeness-checking daemon"

module Log = (val Logs.src_log src : Logs.LOG)

(* A worker parks in [read_frame] between requests; this receive
   timeout is its poll interval on the shutdown flag, so an idle
   keep-alive connection cannot wedge {!Pool.shutdown}. *)
let idle_poll_s = 0.25

let serve_connection service fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO idle_poll_s
   with Unix.Unix_error _ -> ());
  let rec loop () =
    if Service.shutdown_requested service then ()
    else
      match Protocol.read_frame fd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        loop ()
      | None -> () (* client hung up *)
      | Some payload ->
        (* the request frame is consumed: a [Crash_worker] here kills
           the domain mid-job, and the pool hands the connection to
           another worker *)
        Faults.fire "worker";
        let t0 = Unix.gettimeofday () in
        let op, response =
          match Json.of_string payload with
          | exception Json.Parse_error (msg, line, col) ->
            ( "?",
              Protocol.error ~kind:"parse_error"
                (Printf.sprintf "request is not JSON: %d:%d: %s" line col msg) )
          | json ->
            (match Protocol.of_json json with
             | Error msg -> ("?", Protocol.error ~kind:"bad_request" msg)
             | Ok req -> (Protocol.op_name req, Service.handle service req))
        in
        Protocol.write_frame ?tear:(Faults.tear ()) fd (Json.to_string response);
        Log.info (fun m ->
            m "op=%s elapsed_us=%d" op
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)));
        loop ()
  in
  (try loop () with
   | Protocol.Frame_error msg -> Log.warn (fun m -> m "dropping connection: %s" msg)
   | Faults.Dropped -> Log.warn (fun m -> m "dropping connection: injected fault")
   | Unix.Unix_error (e, _, _) ->
     Log.warn (fun m -> m "dropping connection: %s" (Unix.error_message e)));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Refuse to steal the socket from a live daemon, but clear out a
   stale file left by a crashed one. *)
let prepare_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path));
    Log.warn (fun m -> m "removing stale socket file %s" path);
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

(* A job whose worker crashed twice: answer the client with an error
   instead of silence, then tear the connection down. *)
let quarantine_connection fd reason =
  (try
     Protocol.write_frame fd
       (Json.to_string
          (Protocol.error ~kind:"worker_crash"
             (Printf.sprintf "request abandoned after repeated worker crashes: %s" reason)))
   with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let install_signal_handlers service =
  match Sys.os_type with
  | "Unix" ->
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let graceful signal_name _ =
      (* flip the flag only: the accept loop and the workers notice on
         their next idle poll and drain — safe in a signal context *)
      ignore signal_name;
      Service.request_shutdown service
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (graceful "SIGTERM"));
    Sys.set_signal Sys.sigint (Sys.Signal_handle (graceful "SIGINT"))
  | _ -> ()

(* One scrape per connection: drain whatever HTTP request the client
   sent (closing with unread data provokes a RST that curl reports as
   an error), answer with a minimal HTTP/1.0 response carrying the
   registry snapshot, then close.  The short receive timeout keeps a
   silent prober from wedging the accept loop. *)
let serve_scrape fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25
   with Unix.Unix_error _ -> ());
  (try ignore (Unix.read fd (Bytes.create 4096) 0 4096)
   with Unix.Unix_error _ -> ());
  let body = Ric_obs.Metrics.to_prometheus () in
  let response =
    Printf.sprintf
      "HTTP/1.0 200 OK\r\n\
       Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n\
       %s"
      (String.length body) body
  in
  (try
     let b = Bytes.unsafe_of_string response in
     let rec write off =
       if off < Bytes.length b then
         write (off + Unix.write fd b off (Bytes.length b - off))
     in
     write 0
   with Unix.Unix_error _ -> ());
  Ric_obs.Metrics.incr m_scrapes;
  try Unix.close fd with Unix.Unix_error _ -> ()

let setup_journal service config =
  match config.journal with
  | None ->
    if config.recover then
      Log.warn (fun m -> m "--recover ignored: no journal configured");
    None
  | Some path ->
    let compacting = config.recover && Sys.file_exists path in
    let retained =
      if compacting then begin
        match Service.recover service path with
        | r ->
          Log.app (fun m ->
              m "recovered %d session(s) from %s (%d record(s), %d failed%s)"
                r.Service.sessions_restored path r.Service.entries_replayed
                r.Service.entries_failed
                (if r.Service.torn_tail then ", torn tail discarded" else ""));
          r.Service.retained
        | exception Sys_error msg ->
          Log.err (fun m -> m "cannot recover from %s: %s" path msg);
          []
      end
      else []
    in
    (match Journal.open_append ~truncate:true path with
     | j ->
       List.iter (Journal.append j) retained;
       if compacting then Ric_obs.Metrics.incr m_compactions;
       Service.attach_journal service j;
       Some j
     | exception Sys_error msg ->
       Log.err (fun m -> m "cannot open journal %s: %s (running without durability)" path msg);
       None)

let run config =
  Faults.init_from_env ();
  (match config.trace with
   | Some path ->
     Ric_obs.Trace.open_file path;
     Log.app (fun m -> m "tracing spans to %s" path)
   | None -> ());
  let service = Service.create ?root:config.root ~default_search:config.search () in
  install_signal_handlers service;
  let journal = setup_journal service config in
  prepare_socket_path config.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX config.socket_path);
  Unix.listen sock 64;
  let msock =
    match config.metrics with
    | None -> None
    | Some path ->
      prepare_socket_path path;
      let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind s (Unix.ADDR_UNIX path);
      Unix.listen s 16;
      Log.app (fun m -> m "metrics socket on %s" path);
      Some (s, path)
  in
  let pool =
    Pool.create ~on_quarantine:quarantine_connection ~domains:config.domains
      ~capacity:config.queue_capacity
      ~worker:(serve_connection service) ()
  in
  Service.set_pool_stats service (fun () -> Pool.stats pool);
  (* worker-pool health as pull gauges, sampled at scrape time *)
  let pool_gauge name help f =
    Ric_obs.Metrics.gauge_fn ~help name (fun () -> f (Pool.stats pool))
  in
  pool_gauge "ric_pool_failures" "jobs that raised in a worker domain"
    (fun s -> s.Pool.failures);
  pool_gauge "ric_pool_crashes" "worker domains that died mid-job"
    (fun s -> s.Pool.crashes);
  pool_gauge "ric_pool_respawns" "worker domains respawned after a crash"
    (fun s -> s.Pool.respawns);
  pool_gauge "ric_pool_quarantined" "jobs abandoned after repeated crashes"
    (fun s -> s.Pool.quarantined);
  pool_gauge "ric_pool_pending" "jobs queued but not yet picked up"
    (fun s -> s.Pool.pending);
  Log.app (fun m ->
      m "ricd listening on %s (%d worker domain%s)" config.socket_path
        (Pool.domains pool)
        (if Pool.domains pool = 1 then "" else "s"));
  let selectable = sock :: (match msock with Some (s, _) -> [ s ] | None -> []) in
  let rec accept_loop () =
    if Service.shutdown_requested service then ()
    else begin
      (match Unix.select selectable [] [] idle_poll_s with
       | readable, _, _ ->
         List.iter
           (fun r ->
             if r == sock then begin
               match Unix.accept sock with
               | fd, _ -> if not (Pool.submit pool fd) then Unix.close fd
               | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) ->
                 ()
             end
             else
               (* metrics connection: a snapshot is cheap and the
                  client is local — serve it inline on the accept loop *)
               match Unix.accept r with
               | fd, _ -> serve_scrape fd
               | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) ->
                 ())
           readable
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  Log.app (fun m -> m "ricd shutting down");
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  (match msock with
   | Some (s, path) ->
     (try Unix.close s with Unix.Unix_error _ -> ());
     (try Unix.unlink path with Unix.Unix_error _ -> ())
   | None -> ());
  Pool.shutdown pool;
  (match journal with None -> () | Some j -> Journal.close j);
  match config.trace with Some _ -> Ric_obs.Trace.close () | None -> ()
