module Json = Ric_text.Json

type config = {
  socket_path : string;
  domains : int;
  queue_capacity : int;
  root : string option;
}

let default_config =
  { socket_path = "/tmp/ricd.sock"; domains = 2; queue_capacity = 64; root = None }

let src = Logs.Src.create "ricd" ~doc:"the ric completeness-checking daemon"

module Log = (val Logs.src_log src : Logs.LOG)

(* A worker parks in [read_frame] between requests; this receive
   timeout is its poll interval on the shutdown flag, so an idle
   keep-alive connection cannot wedge {!Pool.shutdown}. *)
let idle_poll_s = 0.25

let serve_connection service fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO idle_poll_s
   with Unix.Unix_error _ -> ());
  let rec loop () =
    if Service.shutdown_requested service then ()
    else
      match Protocol.read_frame fd with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        loop ()
      | None -> () (* client hung up *)
      | Some payload ->
        let t0 = Unix.gettimeofday () in
        let op, response =
          match Json.of_string payload with
          | exception Json.Parse_error (msg, line, col) ->
            ( "?",
              Protocol.error ~kind:"parse_error"
                (Printf.sprintf "request is not JSON: %d:%d: %s" line col msg) )
          | json ->
            (match Protocol.of_json json with
             | Error msg -> ("?", Protocol.error ~kind:"bad_request" msg)
             | Ok req -> (Protocol.op_name req, Service.handle service req))
        in
        Protocol.write_frame fd (Json.to_string response);
        Log.info (fun m ->
            m "op=%s elapsed_us=%d" op
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)));
        loop ()
  in
  (try loop () with
   | Protocol.Frame_error msg -> Log.warn (fun m -> m "dropping connection: %s" msg)
   | Unix.Unix_error (e, _, _) ->
     Log.warn (fun m -> m "dropping connection: %s" (Unix.error_message e)));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Refuse to steal the socket from a live daemon, but clear out a
   stale file left by a crashed one. *)
let prepare_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path));
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let run config =
  (match Sys.os_type with
   | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   | _ -> ());
  let service = Service.create ?root:config.root () in
  prepare_socket_path config.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX config.socket_path);
  Unix.listen sock 64;
  let pool =
    Pool.create ~domains:config.domains ~capacity:config.queue_capacity
      ~worker:(serve_connection service)
  in
  Log.app (fun m ->
      m "ricd listening on %s (%d worker domain%s)" config.socket_path
        (Pool.domains pool)
        (if Pool.domains pool = 1 then "" else "s"));
  let rec accept_loop () =
    if Service.shutdown_requested service then ()
    else begin
      (match Unix.select [ sock ] [] [] idle_poll_s with
       | [ _ ], _, _ ->
         (match Unix.accept sock with
          | fd, _ -> if not (Pool.submit pool fd) then Unix.close fd
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ())
       | _ -> ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  Log.app (fun m -> m "ricd shutting down");
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  Pool.shutdown pool
