(** [ricd]: the completeness-checking daemon.

    The front end is a single-threaded [Unix.select] event loop over
    non-blocking sockets: it accepts connections, assembles framed
    requests incrementally in per-connection buffers, and hands each
    complete frame to a {!Pool} of worker domains — so the number of
    open connections is bounded by [max_connections] (and ultimately
    [FD_SETSIZE]), not by [domains].  Replies travel back through a
    completion queue and per-connection write buffers; requests
    pipelined on one connection are answered in order.

    Overload behaviour: a frame is {e admitted} when it enters the
    bounded job queue.  A full queue sheds instead — the client gets a
    structured [overloaded] reply carrying [retry_after_ms] (scaled by
    queue depth), never a silent drop; the same reply (best-effort) is
    written to connections refused at [max_connections].  Admitted
    requests have their [timeout_ms] deadline anchored at admission,
    so time queued behind other jobs counts against it.  Connections
    that stall mid-frame for [read_deadline_s], or stop draining their
    replies for [write_deadline_s], are evicted (slow-loris defense).

    {!run} blocks until a [shutdown] request {e or} a SIGTERM/SIGINT
    arrives, then drains: the listen socket closes immediately, every
    admitted job is still answered, write buffers are flushed, and
    only then do the workers join.  A stale socket file left by a
    crashed daemon is detected (nothing answers it) and removed at
    startup; a live one makes {!run} raise rather than steal it.

    With [journal] set, every session mutation is appended to a
    JSON-lines journal ({!Ric_text.Journal}); with [recover] it is
    replayed first, restoring the sessions (ids, databases, epochs) a
    crashed daemon had open.  Fault injection for the robustness tests
    is armed via the [RIC_FAULTS] environment variable ({!Faults}).

    Request and latency logs go through the [logs] library under the
    ["ricd"] source; install a reporter (the CLI uses [Logs_fmt]) to
    see them.

    Every request carries a correlation id: a client-supplied
    [req_id], or one minted here ([ricd-<pid>-…]) before decode.  The
    id is echoed on the reply, stamped on spans, printed in request
    logs, and attached to flight-recorder events — one grep across
    logs, traces and the flight dump follows one request end to end.

    The flight recorder ({!Ric_obs.Recorder}) keeps the last window of
    request/reply/shed/evict/crash events in a fixed-size in-memory
    ring at all times; it is flushed to [flight] as JSONL on worker
    quarantine, on a fatal (uncaught-exception) exit, on SIGUSR1, and
    on a [dump] request. *)

type config = {
  socket_path : string;
  domains : int;  (** worker domains running the deciders (min 1) *)
  queue_capacity : int;
      (** admitted-but-unserved request backlog; a full queue sheds
          with an [overloaded] reply instead of queueing further *)
  max_connections : int;
      (** connections the event loop will hold open at once; beyond
          it, new sockets get a best-effort [overloaded] frame and are
          closed (keep below [FD_SETSIZE] = 1024 with headroom) *)
  read_deadline_s : float;
      (** evict a connection that dangles a partial request frame this
          long (slow-loris defense) *)
  write_deadline_s : float;
      (** evict a connection that accepts none of its buffered reply
          bytes for this long *)
  root : string option;  (** base directory for [open] paths *)
  journal : string option;  (** session journal path; [None] = no durability *)
  recover : bool;  (** replay the journal at startup before serving *)
  search : Ric_complete.Search_mode.t;
      (** default valuation-search strategy for decide requests that
          carry no ["search"] field *)
  metrics : string option;
      (** second Unix socket serving a Prometheus text-format snapshot
          of the {!Ric_obs.Metrics} registry per connection — plain
          [curl --unix-socket PATH http://localhost/metrics]-able *)
  trace : string option;
      (** JSONL span-trace sink ({!Ric_obs.Trace}); [None] (default)
          keeps tracing disabled and free *)
  flight : string option;
      (** flight-recorder dump target ({!Ric_obs.Recorder}); [None]
          (default) derives [socket_path ^ ".flight.jsonl"].  The
          in-memory ring always records; it is written out on worker
          quarantine, fatal exit, SIGUSR1, or a [dump] request *)
}

val default_config : config
(** [/tmp/ricd.sock], 2 domains, queue capacity 64, 960 connections,
    10 s read/write deadlines, no root, no journal, sequential search,
    no metrics socket, no tracing, flight recorder beside the
    socket. *)

val src : Logs.src
(** The ["ricd"] log source. *)

val run : config -> unit
(** @raise Unix.Unix_error when the socket cannot be bound (e.g. a
    live daemon already owns it — a stale socket file is unlinked
    automatically and does not count). *)
