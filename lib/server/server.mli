(** [ricd]: the completeness-checking daemon.

    Listens on a Unix-domain socket, frames requests per {!Protocol},
    and serves each accepted connection on one domain of a {!Pool} —
    concurrent connections run in parallel up to [domains].  Request
    and latency logs go through the [logs] library under the ["ricd"]
    source; install a reporter (the CLI uses [Logs_fmt]) to see them.

    {!run} blocks until a [shutdown] request {e or} a SIGTERM/SIGINT
    arrives, then stops accepting, drains in-flight connections,
    removes the socket file and closes the journal.  A stale socket
    file left by a crashed daemon is detected (nothing answers it) and
    removed at startup; a live one makes {!run} raise rather than
    steal it.

    With [journal] set, every session mutation is appended to a
    JSON-lines journal ({!Ric_text.Journal}); with [recover] it is
    replayed first, restoring the sessions (ids, databases, epochs) a
    crashed daemon had open.  Fault injection for the robustness tests
    is armed via the [RIC_FAULTS] environment variable ({!Faults}). *)

type config = {
  socket_path : string;
  domains : int;  (** worker domains serving connections (min 1) *)
  queue_capacity : int;
      (** accepted-but-unserved connection backlog before the accept
          loop blocks (backpressure) *)
  root : string option;  (** base directory for [open] paths *)
  journal : string option;  (** session journal path; [None] = no durability *)
  recover : bool;  (** replay the journal at startup before serving *)
  search : Ric_complete.Search_mode.t;
      (** default valuation-search strategy for decide requests that
          carry no ["search"] field *)
  metrics : string option;
      (** second Unix socket serving a Prometheus text-format snapshot
          of the {!Ric_obs.Metrics} registry per connection — plain
          [curl --unix-socket PATH http://localhost/metrics]-able *)
  trace : string option;
      (** JSONL span-trace sink ({!Ric_obs.Trace}); [None] (default)
          keeps tracing disabled and free *)
}

val default_config : config
(** [/tmp/ricd.sock], 2 domains, capacity 64, no root, no journal,
    sequential search, no metrics socket, no tracing. *)

val src : Logs.src
(** The ["ricd"] log source. *)

val run : config -> unit
(** @raise Unix.Unix_error when the socket cannot be bound (e.g. a
    live daemon already owns it — a stale socket file is unlinked
    automatically and does not count). *)
