open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete
module Json = Ric_text.Json
module Report = Ric_text.Report
module Scenario = Ric_text.Scenario

type t = {
  registry : Session.registry;
  cache : Cache.t;
  mutex : Mutex.t;
  root : string option;
  started_at : float;
  stop : bool Atomic.t;
  op_counts : (string, int) Hashtbl.t;
  mutable requests : int;
}

let create ?root () =
  {
    registry = Session.create ();
    cache = Cache.create ();
    mutex = Mutex.create ();
    root;
    started_at = Unix.gettimeofday ();
    stop = Atomic.make false;
    op_counts = Hashtbl.create 8;
    requests = 0;
  }

let shutdown_requested t = Atomic.get t.stop

let with_lock t f =
  Mutex.lock t.mutex;
  match f () with
  | v ->
    Mutex.unlock t.mutex;
    v
  | exception e ->
    Mutex.unlock t.mutex;
    raise e

(* ------------------------------------------------------------------ *)
(* Response builders. *)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let violation_json (cc, witness) =
  Json.Obj [ ("constraint", Json.Str cc); ("witness", Report.tuple witness) ]

let not_closed_result v =
  Json.Obj
    [
      ("verdict", Json.Str "not_partially_closed");
      ("violation", violation_json v);
    ]

let unsupported_result msg =
  Json.Obj [ ("verdict", Json.Str "unsupported"); ("reason", Json.Str msg) ]

let verdict_response ~session ~query ~epoch ~cached ~revalidated ~elapsed_us result =
  ok
    [
      ("session", Json.Str session);
      ("query", Json.Str query);
      ("epoch", Json.Int epoch);
      ("cached", Json.Bool cached);
      ("revalidated", Json.Bool revalidated);
      ("elapsed_us", Json.Int elapsed_us);
      ("result", result);
    ]

let elapsed_us t0 = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)

(* ------------------------------------------------------------------ *)
(* open *)

let load_scenario t ~path ~source =
  match (path, source) with
  | Some p, _ ->
    let resolved =
      match t.root with
      | Some root when Filename.is_relative p -> Filename.concat root p
      | _ -> p
    in
    (match Scenario.load resolved with
     | s -> Ok (s, Some p)
     | exception Scenario.Parse_error (msg, line, col) ->
       Error
         (Protocol.error ~kind:"parse_error"
            (Printf.sprintf "%s:%d:%d: %s" resolved line col msg))
     | exception Sys_error msg -> Error (Protocol.error ~kind:"io_error" msg))
  | None, Some src ->
    (match Scenario.parse src with
     | s -> Ok (s, None)
     | exception Scenario.Parse_error (msg, line, col) ->
       Error
         (Protocol.error ~kind:"parse_error"
            (Printf.sprintf "<inline>:%d:%d: %s" line col msg)))
  | None, None -> Error (Protocol.error ~kind:"bad_request" "open needs a path or a source")

let handle_open t ~path ~source ~name =
  match load_scenario t ~path ~source with
  | Error e -> e
  | Ok (scenario, _) ->
    let s =
      with_lock t (fun () -> Session.open_scenario t.registry ?name scenario)
    in
    ok
      ([
         ("session", Json.Str s.Session.id);
         ("epoch", Json.Int s.Session.epoch);
         ("queries", Json.List (List.map (fun q -> Json.Str q) (Session.query_names s)));
         ("constraints", Json.Int (List.length (Scenario.all_ccs scenario)));
         ("partially_closed", Json.Bool (Session.partially_closed s));
       ]
      @
      match s.Session.closure_violation with
      | Some v -> [ ("violation", violation_json v) ]
      | None -> [])

(* ------------------------------------------------------------------ *)
(* rcdp / rcqp / audit *)

type snapshot = {
  sn_db : Database.t;
  sn_epoch : int;
  sn_fingerprint : string;
  sn_violation : (string * Tuple.t) option;
  sn_scenario : Scenario.t;
  sn_query : Lang.t;
}

let snapshot t ~session ~query =
  with_lock t (fun () ->
      match Session.find t.registry session with
      | None ->
        Error
          (Protocol.error ~kind:"unknown_session"
             (Printf.sprintf "unknown session %S (%d open)" session
                (Session.count t.registry)))
      | Some s ->
        (match Session.find_query s query with
         | None ->
           Error
             (Protocol.error ~kind:"unknown_query"
                (Printf.sprintf "session %s has no query %S; available: %s" session query
                   (String.concat ", " (Session.query_names s))))
         | Some q ->
           Ok
             {
               sn_db = s.Session.db;
               sn_epoch = s.Session.epoch;
               sn_fingerprint = s.Session.ccs_fingerprint;
               sn_violation = s.Session.closure_violation;
               sn_scenario = s.Session.scenario;
               sn_query = q;
             }))

(* serve one epoch-keyed decide (rcdp or audit) through the cache *)
let cached_decide t ~kind ~session ~query ~nocache ~key ~compute sn =
  match sn.sn_violation with
  | Some v ->
    (* not partially closed: the problem is undefined here — answer
       without caching (the violation is epoch-stable anyway) *)
    verdict_response ~session ~query ~epoch:sn.sn_epoch ~cached:false ~revalidated:false
      ~elapsed_us:0 (not_closed_result v)
  | None ->
    let hit =
      if nocache then None else with_lock t (fun () -> Cache.find t.cache key)
    in
    (match hit with
     | Some e ->
       verdict_response ~session ~query ~epoch:sn.sn_epoch ~cached:true
         ~revalidated:e.Cache.revalidated ~elapsed_us:e.Cache.elapsed_us e.Cache.result
     | None ->
       let t0 = Unix.gettimeofday () in
       let result, rcdp = compute sn in
       let elapsed = elapsed_us t0 in
       if not nocache then
         with_lock t (fun () ->
             (* store only if the session is still at the snapshot
                epoch — otherwise the key is already stale *)
             match Session.find t.registry session with
             | Some s when s.Session.epoch = sn.sn_epoch ->
               Cache.store t.cache key
                 {
                   Cache.kind;
                   query;
                   result;
                   rcdp;
                   elapsed_us = elapsed;
                   revalidated = false;
                 }
             | _ -> ());
       verdict_response ~session ~query ~epoch:sn.sn_epoch ~cached:false ~revalidated:false
         ~elapsed_us:elapsed result)

let compute_rcdp sn =
  let sc = sn.sn_scenario in
  match
    (* partial closure is tracked per-session and already checked;
       skip the decider's own O(|V|) re-verification *)
    Rcdp.decide ~check_partially_closed:false ~schema:sc.Scenario.db_schema
      ~master:sc.Scenario.master ~ccs:(Scenario.all_ccs sc) ~db:sn.sn_db sn.sn_query
  with
  | verdict -> (Report.rcdp_verdict verdict, Some verdict)
  | exception Rcdp.Unsupported msg -> (unsupported_result msg, None)

let compute_audit sn =
  let sc = sn.sn_scenario in
  match
    Guidance.audit ~schema:sc.Scenario.db_schema ~master:sc.Scenario.master
      ~ccs:(Scenario.all_ccs sc) ~db:sn.sn_db sn.sn_query
  with
  | result -> (Report.audit_result result, None)
  | exception Rcdp.Unsupported msg -> (unsupported_result msg, None)
  | exception Rcqp.Unsupported msg -> (unsupported_result msg, None)

let handle_rcdp t ~session ~query ~nocache =
  match snapshot t ~session ~query with
  | Error e -> e
  | Ok sn ->
    let key =
      Cache.rcdp_key ~session ~fingerprint:sn.sn_fingerprint ~epoch:sn.sn_epoch ~query
    in
    cached_decide t ~kind:Cache.K_rcdp ~session ~query ~nocache ~key ~compute:compute_rcdp
      sn

let handle_audit t ~session ~query ~nocache =
  match snapshot t ~session ~query with
  | Error e -> e
  | Ok sn ->
    let key =
      Cache.audit_key ~session ~fingerprint:sn.sn_fingerprint ~epoch:sn.sn_epoch ~query
    in
    cached_decide t ~kind:Cache.K_audit ~session ~query ~nocache ~key ~compute:compute_audit
      sn

let handle_rcqp t ~session ~query ~nocache =
  match snapshot t ~session ~query with
  | Error e -> e
  | Ok sn ->
    (* RCQP never looks at D: no epoch in the key, no closure guard *)
    let key = Cache.rcqp_key ~session ~fingerprint:sn.sn_fingerprint ~query in
    let hit = if nocache then None else with_lock t (fun () -> Cache.find t.cache key) in
    (match hit with
     | Some e ->
       verdict_response ~session ~query ~epoch:sn.sn_epoch ~cached:true
         ~revalidated:e.Cache.revalidated ~elapsed_us:e.Cache.elapsed_us e.Cache.result
     | None ->
       let sc = sn.sn_scenario in
       let t0 = Unix.gettimeofday () in
       let result =
         match
           Rcqp.decide ~schema:sc.Scenario.db_schema ~master:sc.Scenario.master
             ~ccs:(Scenario.all_ccs sc) sn.sn_query
         with
         | verdict -> Report.rcqp_verdict verdict
         | exception Rcqp.Unsupported msg -> unsupported_result msg
       in
       let elapsed = elapsed_us t0 in
       if not nocache then
         with_lock t (fun () ->
             if Session.find t.registry session <> None then
               Cache.store t.cache key
                 {
                   Cache.kind = Cache.K_rcqp;
                   query;
                   result;
                   rcdp = None;
                   elapsed_us = elapsed;
                   revalidated = false;
                 });
       verdict_response ~session ~query ~epoch:sn.sn_epoch ~cached:false ~revalidated:false
         ~elapsed_us:elapsed result)

(* ------------------------------------------------------------------ *)
(* insert: apply, then migrate the old epoch's cache entries *)

let revalidate_cex (scenario : Scenario.t) ~db (cex : Rcdp.counterexample) q =
  let extended = Database.union db cex.Rcdp.cex_extension in
  Containment.holds_all ~db:extended ~master:scenario.Scenario.master
    (Scenario.all_ccs scenario)
  && Relation.mem cex.Rcdp.cex_answer (Lang.eval extended q)
  && not (Relation.mem cex.Rcdp.cex_answer (Lang.eval db q))

let handle_insert t ~session ~rel ~rows =
  with_lock t (fun () ->
      match Session.find t.registry session with
      | None ->
        Protocol.error ~kind:"unknown_session" (Printf.sprintf "unknown session %S" session)
      | Some s ->
        let old_epoch = s.Session.epoch in
        (match Session.insert s ~rel ~rows with
         | Error msg -> Protocol.error ~kind:"bad_insert" msg
         | Ok () ->
           let new_epoch = s.Session.epoch in
           let fingerprint = s.Session.ccs_fingerprint in
           let old_prefix = Cache.epoch_prefix ~session ~epoch:old_epoch in
           let entries =
             Cache.fold_prefix t.cache ~prefix:old_prefix
               (fun acc key e -> (key, e) :: acc)
               []
           in
           List.iter (fun (key, _) -> Cache.remove t.cache key) entries;
           let carried = ref 0 and revalidated = ref 0 and dropped = ref 0 in
           if Session.partially_closed s then
             List.iter
               (fun (_, e) ->
                 let keep ~why =
                   let key =
                     match e.Cache.kind with
                     | Cache.K_rcdp ->
                       Cache.rcdp_key ~session ~fingerprint ~epoch:new_epoch
                         ~query:e.Cache.query
                     | Cache.K_audit ->
                       Cache.audit_key ~session ~fingerprint ~epoch:new_epoch
                         ~query:e.Cache.query
                     | Cache.K_rcqp -> assert false (* not epoch-keyed *)
                   in
                   Cache.store t.cache key { e with Cache.revalidated = true };
                   Cache.note_carried t.cache;
                   incr why
                 in
                 match (e.Cache.kind, e.Cache.rcdp) with
                 | Cache.K_rcdp, Some Rcdp.Complete ->
                   (* completeness is monotone under admissible growth:
                      every partially closed D″ ⊇ D′ extends D too *)
                   keep ~why:carried
                 | Cache.K_rcdp, Some (Rcdp.Incomplete cex) ->
                   (match Session.find_query s e.Cache.query with
                    | Some q
                      when revalidate_cex s.Session.scenario ~db:s.Session.db cex q ->
                      keep ~why:revalidated
                    | _ -> incr dropped)
                 | _ -> incr dropped)
               entries
           else dropped := List.length entries;
           Cache.note_dropped t.cache !dropped;
           ok
             ([
                ("session", Json.Str session);
                ("epoch", Json.Int new_epoch);
                ("inserted", Json.Int (List.length rows));
                ("partially_closed", Json.Bool (Session.partially_closed s));
                ( "cache",
                  Json.Obj
                    [
                      ("carried", Json.Int !carried);
                      ("revalidated", Json.Int !revalidated);
                      ("dropped", Json.Int !dropped);
                    ] );
              ]
             @
             match s.Session.closure_violation with
             | Some v -> [ ("violation", violation_json v) ]
             | None -> [])))

(* ------------------------------------------------------------------ *)
(* the rest *)

let handle_close t ~session =
  with_lock t (fun () ->
      let existed = Session.close t.registry session in
      let purged =
        Cache.remove_prefix t.cache ~prefix:(Cache.session_prefix ~session)
      in
      if existed then ok [ ("closed", Json.Str session); ("purged", Json.Int purged) ]
      else
        Protocol.error ~kind:"unknown_session" (Printf.sprintf "unknown session %S" session))

let handle_stats t =
  with_lock t (fun () ->
      let sessions =
        List.map
          (fun s ->
            Json.Obj
              ([
                 ("id", Json.Str s.Session.id);
                 ("epoch", Json.Int s.Session.epoch);
                 ("tuples", Json.Int (Database.total_tuples s.Session.db));
                 ("partially_closed", Json.Bool (Session.partially_closed s));
               ]
              @
              match s.Session.name with
              | Some n -> [ ("name", Json.Str n) ]
              | None -> []))
          (List.sort
             (fun a b -> compare a.Session.id b.Session.id)
             (Session.list t.registry))
      in
      let cs = Cache.stats t.cache in
      let ops =
        Hashtbl.fold (fun op n acc -> (op, Json.Int n) :: acc) t.op_counts []
        |> List.sort compare
      in
      ok
        [
          ("uptime_s", Json.Int (int_of_float (Unix.gettimeofday () -. t.started_at)));
          ("requests", Json.Int t.requests);
          ("ops", Json.Obj ops);
          ("sessions", Json.List sessions);
          ( "cache",
            Json.Obj
              [
                ("entries", Json.Int cs.Cache.entries);
                ("hits", Json.Int cs.Cache.hits);
                ("misses", Json.Int cs.Cache.misses);
                ("carried", Json.Int cs.Cache.carried);
                ("dropped", Json.Int cs.Cache.dropped);
              ] );
        ])

let handle t req =
  with_lock t (fun () ->
      t.requests <- t.requests + 1;
      let op = Protocol.op_name req in
      Hashtbl.replace t.op_counts op
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.op_counts op)));
  match req with
  | Protocol.Ping -> ok [ ("pong", Json.Bool true) ]
  | Protocol.Open { path; source; name } -> handle_open t ~path ~source ~name
  | Protocol.Rcdp { session; query; nocache } -> handle_rcdp t ~session ~query ~nocache
  | Protocol.Rcqp { session; query; nocache } -> handle_rcqp t ~session ~query ~nocache
  | Protocol.Audit { session; query; nocache } -> handle_audit t ~session ~query ~nocache
  | Protocol.Insert { session; rel; rows } -> handle_insert t ~session ~rel ~rows
  | Protocol.Close { session } -> handle_close t ~session
  | Protocol.Stats -> handle_stats t
  | Protocol.Shutdown ->
    Atomic.set t.stop true;
    ok [ ("stopping", Json.Bool true) ]
