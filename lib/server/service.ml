open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete
module Json = Ric_text.Json
module Report = Ric_text.Report
module Scenario = Ric_text.Scenario
module Journal = Ric_text.Journal
module Metrics = Ric_obs.Metrics
module Trace = Ric_obs.Trace

(* Per-op request counters and latency histograms, pre-registered so a
   scrape shows the full family at zero before the first request. *)
let known_ops =
  [
    "ping"; "open"; "rcdp"; "rcqp"; "audit"; "mine"; "insert"; "insert_bulk";
    "close"; "stats"; "dump"; "shutdown";
  ]

let op_counter op =
  Metrics.counter ~help:"requests handled, by operation" ~labels:[ ("op", op) ]
    "ric_requests_total"

let op_histogram op =
  Metrics.histogram ~help:"request handling latency in seconds, by operation"
    ~labels:[ ("op", op) ] "ric_op_latency_seconds"

let op_counters = List.map (fun op -> (op, op_counter op)) known_ops
let op_histograms = List.map (fun op -> (op, op_histogram op)) known_ops

let m_timeouts =
  Metrics.counter ~help:"decide requests that hit their time budget"
    "ric_request_timeouts_total"

type t = {
  registry : Session.registry;
  cache : Cache.t;
  mutex : Mutex.t;
  root : string option;
  started_at : float;
  stop : bool Atomic.t;
  op_counts : (string, int) Hashtbl.t;
  search_counts : (string, int) Hashtbl.t;
  default_search : Search_mode.t;
  mutable requests : int;
  mutable timeouts : int;
  mutable journal : Journal.t option;
  mutable pool_stats : (unit -> Pool.stats) option;
  mutable flight_path : string option;
}

let with_lock t f =
  Mutex.lock t.mutex;
  match f () with
  | v ->
    Mutex.unlock t.mutex;
    v
  | exception e ->
    Mutex.unlock t.mutex;
    raise e

let create ?root ?(default_search = Search_mode.Seq) () =
  let t =
    {
      registry = Session.create ();
      cache = Cache.create ();
      mutex = Mutex.create ();
      root;
      started_at = Unix.gettimeofday ();
      stop = Atomic.make false;
      op_counts = Hashtbl.create 8;
      search_counts = Hashtbl.create 4;
      default_search;
      requests = 0;
      timeouts = 0;
      journal = None;
      pool_stats = None;
      flight_path = None;
    }
  in
  (* pull gauges: evaluated at scrape time, never inside [t.mutex] (the
     registry snapshot runs pull functions outside its own lock, and
     [handle_stats] snapshots before taking the service lock) *)
  Metrics.gauge_fn ~help:"sessions currently open" "ric_sessions_open"
    (fun () -> with_lock t (fun () -> Session.count t.registry));
  Metrics.gauge_fn ~help:"live verdict-cache entries" "ric_cache_entries"
    (fun () -> with_lock t (fun () -> (Cache.stats t.cache).Cache.entries));
  t

let shutdown_requested t = Atomic.get t.stop

let request_shutdown t = Atomic.set t.stop true

let attach_journal t j = t.journal <- Some j

let set_pool_stats t f = t.pool_stats <- Some f

let set_flight_path t path = t.flight_path <- Some path

(* Callers hold no particular lock; [Journal.append] serialises
   internally, and journal-write failures must never fail a request. *)
let journal_entry t entry =
  match t.journal with
  | None -> ()
  | Some j -> ( try Journal.append j entry with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Response builders. *)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let violation_json (cc, witness) =
  Json.Obj [ ("constraint", Json.Str cc); ("witness", Report.tuple witness) ]

let not_closed_result v =
  Json.Obj
    [
      ("verdict", Json.Str "not_partially_closed");
      ("violation", violation_json v);
    ]

let unsupported_result msg =
  Json.Obj [ ("verdict", Json.Str "unsupported"); ("reason", Json.Str msg) ]

let timeout_result ?rcdp_stats ~clock ~timeout_ms reason =
  Json.Obj
    ([ ("verdict", Json.Str "timeout"); ("reason", Json.Str (Budget.reason_name reason)) ]
    @ (match timeout_ms with Some ms -> [ ("timeout_ms", Json.Int ms) ] | None -> [])
    @ [ ("steps", Json.Int (Budget.steps clock)) ]
    @
    match rcdp_stats with
    | Some s ->
      [
        ("valuations_visited", Json.Int s.Rcdp.valuations_visited);
        ("branches_pruned", Json.Int s.Rcdp.branches_pruned);
      ]
    | None -> [])

(* [profile] rides on the response, never inside [result]: the cache
   stores [result] only, so a later cache hit — or an explain:false
   request on the same key — can never replay a stale profile. *)
let verdict_response ?profile ~session ~query ~epoch ~cached ~revalidated
    ~elapsed_us result =
  ok
    ([
       ("session", Json.Str session);
       ("query", Json.Str query);
       ("epoch", Json.Int epoch);
       ("cached", Json.Bool cached);
       ("revalidated", Json.Bool revalidated);
       ("elapsed_us", Json.Int elapsed_us);
       ("result", result);
     ]
    @ match profile with Some p -> [ ("profile", p) ] | None -> [])

let elapsed_us t0 = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)

(* ------------------------------------------------------------------ *)
(* open *)

let load_scenario t ~path ~source =
  match (path, source) with
  | Some p, _ ->
    let resolved =
      match t.root with
      | Some root when Filename.is_relative p -> Filename.concat root p
      | _ -> p
    in
    (match Scenario.load resolved with
     | s -> Ok (s, Some p)
     | exception Scenario.Parse_error (msg, line, col) ->
       Error
         (Protocol.error ~kind:"parse_error"
            (Printf.sprintf "%s:%d:%d: %s" resolved line col msg))
     | exception Sys_error msg -> Error (Protocol.error ~kind:"io_error" msg))
  | None, Some src ->
    (match Scenario.parse src with
     | s -> Ok (s, None)
     | exception Scenario.Parse_error (msg, line, col) ->
       Error
         (Protocol.error ~kind:"parse_error"
            (Printf.sprintf "<inline>:%d:%d: %s" line col msg)))
  | None, None -> Error (Protocol.error ~kind:"bad_request" "open needs a path or a source")

let handle_open t ~path ~source ~name =
  match load_scenario t ~path ~source with
  | Error e -> e
  | Ok (scenario, _) ->
    let s =
      with_lock t (fun () -> Session.open_scenario t.registry ?name scenario)
    in
    journal_entry t
      (Journal.Opened
         {
           id = s.Session.id;
           name;
           (* journal the printed scenario, not the path: recovery must
              not depend on the original file surviving the crash *)
           source = Format.asprintf "%a" Scenario.pp scenario;
         });
    ok
      ([
         ("session", Json.Str s.Session.id);
         ("epoch", Json.Int s.Session.epoch);
         ("queries", Json.List (List.map (fun q -> Json.Str q) (Session.query_names s)));
         ("constraints", Json.Int (List.length (Scenario.all_ccs scenario)));
         ("partially_closed", Json.Bool (Session.partially_closed s));
       ]
      @
      match s.Session.closure_violation with
      | Some v -> [ ("violation", violation_json v) ]
      | None -> [])

(* ------------------------------------------------------------------ *)
(* rcdp / rcqp / audit *)

type snapshot = {
  sn_db : Database.t;
  sn_epoch : int;
  sn_fingerprint : string;
  sn_violation : (string * Tuple.t) option;
  sn_scenario : Scenario.t;
  sn_query : Lang.t;
}

let snapshot t ~session ~query =
  with_lock t (fun () ->
      match Session.find t.registry session with
      | None ->
        Error
          (Protocol.error ~kind:"unknown_session"
             (Printf.sprintf "unknown session %S (%d open)" session
                (Session.count t.registry)))
      | Some s ->
        (match Session.find_query s query with
         | None ->
           Error
             (Protocol.error ~kind:"unknown_query"
                (Printf.sprintf "session %s has no query %S; available: %s" session query
                   (String.concat ", " (Session.query_names s))))
         | Some q ->
           Ok
             {
               sn_db = s.Session.db;
               sn_epoch = s.Session.epoch;
               sn_fingerprint = s.Session.ccs_fingerprint;
               sn_violation = s.Session.closure_violation;
               sn_scenario = s.Session.scenario;
               sn_query = q;
             }))

(* what a decider run produced: the JSON result, the raw RCDP verdict
   for cache revalidation, and whether the cache may keep it — a
   timed-out verdict says nothing about the query, only about the
   caller's patience, so it must never be stored *)
type computed = {
  c_result : Json.t;
  c_rcdp : Rcdp.verdict option;
  c_cacheable : bool;
  c_profile : Json.t option;  (** explain profile of this fresh run *)
}

let note_timeout t =
  Metrics.incr m_timeouts;
  with_lock t (fun () -> t.timeouts <- t.timeouts + 1)

(* a request's effective search mode: its own "search" field, else the
   server default; counted per decide under the stats bucket of its
   name, so operators can see which strategies a workload exercises *)
let resolve_search t requested =
  let mode = Option.value requested ~default:t.default_search in
  with_lock t (fun () ->
      let name = Search_mode.name mode in
      Hashtbl.replace t.search_counts name
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.search_counts name)));
  mode

(* A request's deadline is anchored at [admitted_at] (when the front
   end accepted it), not at decider start: time spent waiting in the
   job queue counts against [timeout_ms], so a long-queued job answers
   a timeout verdict quickly instead of running after its caller gave
   up.  A deadline already in the past yields a budget that raises on
   its first tick. *)
let clock_of_timeout ?admitted_at ?label ?(explain = false) timeout_ms =
  match timeout_ms with
  | Some ms ->
    let d = float_of_int ms /. 1000. in
    let d =
      match admitted_at with
      | Some t0 -> t0 +. d -. Unix.gettimeofday ()
      | None -> d
    in
    Budget.create ~deadline_after:d ?label ()
  | None ->
    (* [Budget.unlimited]'s tick is a no-op and the singleton cannot
       carry a label, so explain mode and correlated requests get a
       limited-but-unbounded budget: steps count (the profile's
       ["steps"] denominator) and [Budget.label] carries the req_id
       into the deciders' spans, at the cost of an increment and a
       compare per candidate. *)
    if explain || label <> None then Budget.create ?label ()
    else Budget.unlimited

(* The explain profile as reply JSON.  ["steps"] is the budget's total
   (the denominator the ≥95% attribution check divides by);
   ["attributed_steps"] sums the per-level rows plus every counter
   ending in ["_steps"]. *)
let profile_json ~clock p =
  let open Ric_obs.Profile in
  let snap = snapshot p in
  Json.Obj
    [
      ("steps", Json.Int (Budget.steps clock));
      ("attributed_steps", Json.Int (attributed_steps snap));
      ( "levels",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("level", Json.Int r.lv_index);
                   ("atom", Json.Str r.lv_name);
                   ("steps", Json.Int r.lv_steps);
                   ("prunes", Json.Int r.lv_prunes);
                 ])
             snap.levels) );
      ( "constraints",
        Json.List
          (List.map
             (fun (name, prunes) ->
               Json.Obj [ ("name", Json.Str name); ("prunes", Json.Int prunes) ])
             snap.constraints) );
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters));
      ("notes", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) snap.notes));
    ]

(* serve one epoch-keyed decide (rcdp or audit) through the cache; an
   explain request bypasses the cache {e read} — the profile must
   describe this very run — but its fresh verdict may still be stored *)
let cached_decide t ~kind ~session ~query ~nocache ~explain ~key ~compute sn =
  match sn.sn_violation with
  | Some v ->
    (* not partially closed: the problem is undefined here — answer
       without caching (the violation is epoch-stable anyway) *)
    verdict_response ~session ~query ~epoch:sn.sn_epoch ~cached:false ~revalidated:false
      ~elapsed_us:0 (not_closed_result v)
  | None ->
    let hit =
      if nocache || explain then None
      else with_lock t (fun () -> Cache.find t.cache key)
    in
    (match hit with
     | Some e ->
       verdict_response ~session ~query ~epoch:sn.sn_epoch ~cached:true
         ~revalidated:e.Cache.revalidated ~elapsed_us:e.Cache.elapsed_us e.Cache.result
     | None ->
       Faults.fire "decide";
       let t0 = Unix.gettimeofday () in
       let c = compute sn in
       let elapsed = elapsed_us t0 in
       if (not nocache) && c.c_cacheable then
         with_lock t (fun () ->
             (* store only if the session is still at the snapshot
                epoch — otherwise the key is already stale *)
             match Session.find t.registry session with
             | Some s when s.Session.epoch = sn.sn_epoch ->
               Cache.store t.cache key
                 {
                   Cache.kind;
                   query;
                   result = c.c_result;
                   rcdp = c.c_rcdp;
                   elapsed_us = elapsed;
                   revalidated = false;
                 }
             | _ -> ());
       verdict_response ?profile:c.c_profile ~session ~query ~epoch:sn.sn_epoch
         ~cached:false ~revalidated:false ~elapsed_us:elapsed c.c_result)

let compute_rcdp t ?admitted_at ?req_id ~explain ~timeout_ms ~search sn =
  let sc = sn.sn_scenario in
  let clock = clock_of_timeout ?admitted_at ?label:req_id ~explain timeout_ms in
  let profile = if explain then Some (Ric_obs.Profile.create ()) else None in
  (* built after the decide so timed-out runs report partial profiles *)
  let prof () = Option.map (profile_json ~clock) profile in
  let stats = ref { Rcdp.valuations_visited = 0; branches_pruned = 0 } in
  match
    (* partial closure is tracked per-session and already checked;
       skip the decider's own O(|V|) re-verification *)
    Rcdp.decide ~clock ~search ~collect_stats:stats ?profile
      ~check_partially_closed:false ~schema:sc.Scenario.db_schema
      ~master:sc.Scenario.master ~ccs:(Scenario.all_ccs sc) ~db:sn.sn_db
      sn.sn_query
  with
  | verdict ->
    {
      c_result = Report.rcdp_verdict verdict;
      c_rcdp = Some verdict;
      c_cacheable = true;
      c_profile = prof ();
    }
  | exception Rcdp.Unsupported msg ->
    {
      c_result = unsupported_result msg;
      c_rcdp = None;
      c_cacheable = true;
      c_profile = prof ();
    }
  | exception Budget.Exhausted reason ->
    note_timeout t;
    {
      c_result = timeout_result ~rcdp_stats:!stats ~clock ~timeout_ms reason;
      c_rcdp = None;
      c_cacheable = false;
      c_profile = prof ();
    }

let compute_audit t ?admitted_at ?req_id ~explain ~timeout_ms ~search sn =
  let sc = sn.sn_scenario in
  let clock = clock_of_timeout ?admitted_at ?label:req_id ~explain timeout_ms in
  let profile = if explain then Some (Ric_obs.Profile.create ()) else None in
  let prof () = Option.map (profile_json ~clock) profile in
  match
    Guidance.audit ~clock ~search ?profile ~schema:sc.Scenario.db_schema
      ~master:sc.Scenario.master ~ccs:(Scenario.all_ccs sc) ~db:sn.sn_db
      sn.sn_query
  with
  | result ->
    {
      c_result = Report.audit_result result;
      c_rcdp = None;
      c_cacheable = true;
      c_profile = prof ();
    }
  | exception Rcdp.Unsupported msg ->
    {
      c_result = unsupported_result msg;
      c_rcdp = None;
      c_cacheable = true;
      c_profile = prof ();
    }
  | exception Rcqp.Unsupported msg ->
    {
      c_result = unsupported_result msg;
      c_rcdp = None;
      c_cacheable = true;
      c_profile = prof ();
    }
  | exception Budget.Exhausted reason ->
    note_timeout t;
    {
      c_result = timeout_result ~clock ~timeout_ms reason;
      c_rcdp = None;
      c_cacheable = false;
      c_profile = prof ();
    }

let handle_rcdp t ~admitted_at ~session ~query ~nocache ~timeout_ms ~search
    ~req_id ~explain =
  match snapshot t ~session ~query with
  | Error e -> e
  | Ok sn ->
    let key =
      Cache.rcdp_key ~session ~fingerprint:sn.sn_fingerprint ~epoch:sn.sn_epoch ~query
    in
    cached_decide t ~kind:Cache.K_rcdp ~session ~query ~nocache ~explain ~key
      ~compute:(compute_rcdp t ?admitted_at ?req_id ~explain ~timeout_ms ~search)
      sn

let handle_audit t ~admitted_at ~session ~query ~nocache ~timeout_ms ~search
    ~req_id ~explain =
  match snapshot t ~session ~query with
  | Error e -> e
  | Ok sn ->
    let key =
      Cache.audit_key ~session ~fingerprint:sn.sn_fingerprint ~epoch:sn.sn_epoch ~query
    in
    cached_decide t ~kind:Cache.K_audit ~session ~query ~nocache ~explain ~key
      ~compute:(compute_audit t ?admitted_at ?req_id ~explain ~timeout_ms ~search)
      sn

let handle_rcqp t ~admitted_at ~session ~query ~nocache ~timeout_ms ~search
    ~req_id ~explain =
  match snapshot t ~session ~query with
  | Error e -> e
  | Ok sn ->
    (* RCQP never looks at D: no epoch in the key, no closure guard *)
    let key = Cache.rcqp_key ~session ~fingerprint:sn.sn_fingerprint ~query in
    let hit =
      if nocache || explain then None
      else with_lock t (fun () -> Cache.find t.cache key)
    in
    (match hit with
     | Some e ->
       verdict_response ~session ~query ~epoch:sn.sn_epoch ~cached:true
         ~revalidated:e.Cache.revalidated ~elapsed_us:e.Cache.elapsed_us e.Cache.result
     | None ->
       Faults.fire "decide";
       let sc = sn.sn_scenario in
       let clock = clock_of_timeout ?admitted_at ?label:req_id ~explain timeout_ms in
       let profile = if explain then Some (Ric_obs.Profile.create ()) else None in
       let t0 = Unix.gettimeofday () in
       let result, cacheable =
         match
           Rcqp.decide ~clock ~search ?profile ~schema:sc.Scenario.db_schema
             ~master:sc.Scenario.master ~ccs:(Scenario.all_ccs sc) sn.sn_query
         with
         | verdict -> (Report.rcqp_verdict verdict, true)
         | exception Rcqp.Unsupported msg -> (unsupported_result msg, true)
         | exception Budget.Exhausted reason ->
           note_timeout t;
           (timeout_result ~clock ~timeout_ms reason, false)
       in
       let elapsed = elapsed_us t0 in
       if (not nocache) && cacheable then
         with_lock t (fun () ->
             if Session.find t.registry session <> None then
               Cache.store t.cache key
                 {
                   Cache.kind = Cache.K_rcqp;
                   query;
                   result;
                   rcdp = None;
                   elapsed_us = elapsed;
                   revalidated = false;
                 });
       verdict_response
         ?profile:(Option.map (profile_json ~clock) profile)
         ~session ~query ~epoch:sn.sn_epoch ~cached:false ~revalidated:false
         ~elapsed_us:elapsed result)

(* ------------------------------------------------------------------ *)
(* mine: induce containment constraints from the session's (Dm, D) *)

let constraint_line named =
  String.trim (Format.asprintf "%a" Scenario.pp_named_constraint named)

let mine_json (r : Ric_mining.Mine.result) =
  Json.Obj
    ([
       ( "accepted",
         Json.List
           (List.map2
              (fun (name, cc) (s : Ric_mining.Score.scored) ->
                Json.Obj
                  [
                    ("name", Json.Str name);
                    ("family", Json.Str s.Ric_mining.Score.candidate.Ric_mining.Enumerate.family);
                    ("support", Json.Int s.Ric_mining.Score.support);
                    ( "confidence",
                      Json.Str (Printf.sprintf "%.3f" s.Ric_mining.Score.confidence) );
                    ("text", Json.Str (constraint_line (name, cc)));
                  ])
              r.Ric_mining.Mine.accepted r.Ric_mining.Mine.accepted_scored) );
       ( "stats",
         Json.Obj
           [
             ("enumerated", Json.Int r.Ric_mining.Mine.stats.Ric_mining.Mine.enumerated);
             ("duplicates", Json.Int r.Ric_mining.Mine.stats.Ric_mining.Mine.duplicates);
             ("pruned", Json.Int r.Ric_mining.Mine.stats.Ric_mining.Mine.pruned);
             ("evaluated", Json.Int r.Ric_mining.Mine.stats.Ric_mining.Mine.evaluated);
             ("accepted", Json.Int r.Ric_mining.Mine.stats.Ric_mining.Mine.accepted);
           ] );
     ]
    @
    match r.Ric_mining.Mine.timed_out with
    | Some reason -> [ ("timeout", Json.Str (Budget.reason_name reason)) ]
    | None -> [])

let mine_response ~session ~epoch ~cached ~elapsed_us result =
  ok
    [
      ("session", Json.Str session);
      ("epoch", Json.Int epoch);
      ("cached", Json.Bool cached);
      ("elapsed_us", Json.Int elapsed_us);
      ("result", result);
    ]

let handle_mine t ~admitted_at ~session ~nocache ~timeout_ms ~min_support ~workers =
  let info =
    with_lock t (fun () ->
        match Session.find t.registry session with
        | None ->
          Error
            (Protocol.error ~kind:"unknown_session"
               (Printf.sprintf "unknown session %S (%d open)" session
                  (Session.count t.registry)))
        | Some s ->
          Ok (s.Session.db, s.Session.epoch, s.Session.ccs_fingerprint, s.Session.scenario))
  in
  match info with
  | Error e -> e
  | Ok (db, epoch, fingerprint, sc) ->
    let config =
      {
        Ric_mining.Mine.default with
        Ric_mining.Mine.min_support = Option.value ~default:1 min_support;
        workers = Option.value ~default:1 workers;
      }
    in
    (* workers is an execution detail — results are identical, so it
       stays out of the config fingerprint, like search modes do *)
    let config_fp = Printf.sprintf "s%d" config.Ric_mining.Mine.min_support in
    let key = Cache.mine_key ~session ~fingerprint ~epoch ~config:config_fp in
    let hit = if nocache then None else with_lock t (fun () -> Cache.find t.cache key) in
    (match hit with
     | Some e ->
       mine_response ~session ~epoch ~cached:true ~elapsed_us:e.Cache.elapsed_us
         e.Cache.result
     | None ->
       Faults.fire "decide";
       let clock = clock_of_timeout ?admitted_at timeout_ms in
       let t0 = Unix.gettimeofday () in
       let r =
         Ric_mining.Mine.run ~config ~budget:clock
           ~db_schema:sc.Scenario.db_schema
           ~master_schema:sc.Scenario.master_schema ~db ~master:sc.Scenario.master
           ()
       in
       if r.Ric_mining.Mine.timed_out <> None then note_timeout t;
       let result = mine_json r in
       let elapsed = elapsed_us t0 in
       (* a timed-out pass is partial: answer with it, never cache it *)
       if (not nocache) && r.Ric_mining.Mine.timed_out = None then
         with_lock t (fun () ->
             match Session.find t.registry session with
             | Some s when s.Session.epoch = epoch ->
               Cache.store t.cache key
                 {
                   Cache.kind = Cache.K_mine;
                   query = config_fp;
                   result;
                   rcdp = None;
                   elapsed_us = elapsed;
                   revalidated = false;
                 }
             | _ -> ());
       mine_response ~session ~epoch ~cached:false ~elapsed_us:elapsed result)

(* ------------------------------------------------------------------ *)
(* insert: apply, then migrate the old epoch's cache entries *)

let revalidate_cex (scenario : Scenario.t) ~db (cex : Rcdp.counterexample) q =
  let extended = Database.union db cex.Rcdp.cex_extension in
  Containment.holds_all ~db:extended ~master:scenario.Scenario.master
    (Scenario.all_ccs scenario)
  && Relation.mem cex.Rcdp.cex_answer (Lang.eval extended q)
  && not (Relation.mem cex.Rcdp.cex_answer (Lang.eval db q))

(* After a successful mutation at [old_epoch] (caller holds the
   service lock): migrate that epoch's cache entries — carry monotone
   Complete verdicts, revalidate counterexamples, drop the rest — and
   build the common insert reply. *)
let inserted_response t ~session ~old_epoch ~inserted s =
  let new_epoch = s.Session.epoch in
  let fingerprint = s.Session.ccs_fingerprint in
  let old_prefix = Cache.epoch_prefix ~session ~epoch:old_epoch in
  let entries =
    Cache.fold_prefix t.cache ~prefix:old_prefix
      (fun acc key e -> (key, e) :: acc)
      []
  in
  List.iter (fun (key, _) -> Cache.remove t.cache key) entries;
  let carried = ref 0 and revalidated = ref 0 and dropped = ref 0 in
  if Session.partially_closed s then
    List.iter
      (fun (_, e) ->
        let keep ~why =
          let key =
            match e.Cache.kind with
            | Cache.K_rcdp ->
              Cache.rcdp_key ~session ~fingerprint ~epoch:new_epoch
                ~query:e.Cache.query
            | Cache.K_audit ->
              Cache.audit_key ~session ~fingerprint ~epoch:new_epoch
                ~query:e.Cache.query
            | Cache.K_rcqp -> assert false (* not epoch-keyed *)
            | Cache.K_mine -> assert false (* never kept: dropped below *)
          in
          Cache.store t.cache key { e with Cache.revalidated = true };
          Cache.note_carried t.cache;
          incr why
        in
        match (e.Cache.kind, e.Cache.rcdp) with
        | Cache.K_rcdp, Some Rcdp.Complete ->
          (* completeness is monotone under admissible growth:
             every partially closed D″ ⊇ D′ extends D too *)
          keep ~why:carried
        | Cache.K_rcdp, Some (Rcdp.Incomplete cex) ->
          (match Session.find_query s e.Cache.query with
           | Some q
             when revalidate_cex s.Session.scenario ~db:s.Session.db cex q ->
             keep ~why:revalidated
           | _ -> incr dropped)
        | _ -> incr dropped)
      entries
  else dropped := List.length entries;
  Cache.note_dropped t.cache !dropped;
  ok
    ([
       ("session", Json.Str session);
       ("epoch", Json.Int new_epoch);
       ("inserted", Json.Int inserted);
       ("partially_closed", Json.Bool (Session.partially_closed s));
       ( "cache",
         Json.Obj
           [
             ("carried", Json.Int !carried);
             ("revalidated", Json.Int !revalidated);
             ("dropped", Json.Int !dropped);
           ] );
     ]
    @
    match s.Session.closure_violation with
    | Some v -> [ ("violation", violation_json v) ]
    | None -> [])

let handle_insert t ~session ~rel ~rows =
  with_lock t (fun () ->
      match Session.find t.registry session with
      | None ->
        Protocol.error ~kind:"unknown_session" (Printf.sprintf "unknown session %S" session)
      | Some s ->
        let old_epoch = s.Session.epoch in
        (match Session.insert s ~rel ~rows with
         | Error msg -> Protocol.error ~kind:"bad_insert" msg
         | Ok () ->
           journal_entry t (Journal.Inserted { id = session; rel; rows });
           inserted_response t ~session ~old_epoch ~inserted:(List.length rows) s))

let handle_insert_bulk t ~session ~batches =
  with_lock t (fun () ->
      match Session.find t.registry session with
      | None ->
        Protocol.error ~kind:"unknown_session" (Printf.sprintf "unknown session %S" session)
      | Some s ->
        let old_epoch = s.Session.epoch in
        (match Session.insert_batches s ~batches with
         | Error msg -> Protocol.error ~kind:"bad_insert" msg
         | Ok () ->
           (* one journal append and one cache migration for the whole
              batch — the per-request unit costs insert paid per call *)
           journal_entry t (Journal.Inserted_bulk { id = session; batches });
           let inserted =
             List.fold_left (fun n (_, rows) -> n + List.length rows) 0 batches
           in
           inserted_response t ~session ~old_epoch ~inserted s))

(* ------------------------------------------------------------------ *)
(* the rest *)

let handle_close t ~session =
  with_lock t (fun () ->
      let existed = Session.close t.registry session in
      let purged =
        Cache.remove_prefix t.cache ~prefix:(Cache.session_prefix ~session)
      in
      if existed then begin
        journal_entry t (Journal.Closed { id = session });
        ok [ ("closed", Json.Str session); ("purged", Json.Int purged) ]
      end
      else
        Protocol.error ~kind:"unknown_session" (Printf.sprintf "unknown session %S" session))

(* the registry as structured JSON, for the [stats] op.  Histogram sums
   are reported in integer microseconds: the wire format has no float. *)
let json_of_metric (s : Metrics.sample) =
  let base ty =
    [
      ("name", Json.Str s.Metrics.name);
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.Metrics.labels));
      ("type", Json.Str ty);
    ]
  in
  match s.Metrics.value with
  | Metrics.Counter n -> Json.Obj (base "counter" @ [ ("value", Json.Int n) ])
  | Metrics.Gauge n -> Json.Obj (base "gauge" @ [ ("value", Json.Int n) ])
  | Metrics.Histogram h ->
    let bucket le count =
      Json.Obj [ ("le", Json.Str le); ("count", Json.Int count) ]
    in
    Json.Obj
      (base "histogram"
      @ [
          ("count", Json.Int h.Metrics.count);
          ("sum_us", Json.Int (int_of_float (h.Metrics.sum *. 1e6)));
          ( "buckets",
            Json.List
              (Array.to_list
                 (Array.map
                    (fun (le, c) -> bucket (Printf.sprintf "%.9g" le) c)
                    h.Metrics.buckets)
              @ [ bucket "+Inf" h.Metrics.inf_count ]) );
        ])

let hit_rate_str ~hits ~misses =
  let lookups = hits + misses in
  if lookups = 0 then "0.000"
  else Printf.sprintf "%.3f" (float_of_int hits /. float_of_int lookups)

let handle_stats t =
  (* snapshot before taking the service lock: pull gauges take it *)
  let metrics = Json.List (List.map json_of_metric (Metrics.snapshot ())) in
  with_lock t (fun () ->
      let sessions =
        List.map
          (fun s ->
            Json.Obj
              ([
                 ("id", Json.Str s.Session.id);
                 ("epoch", Json.Int s.Session.epoch);
                 ("tuples", Json.Int (Database.total_tuples s.Session.db));
                 ("partially_closed", Json.Bool (Session.partially_closed s));
               ]
              @
              match s.Session.name with
              | Some n -> [ ("name", Json.Str n) ]
              | None -> []))
          (List.sort
             (fun a b -> compare a.Session.id b.Session.id)
             (Session.list t.registry))
      in
      let cs = Cache.stats t.cache in
      let ops =
        Hashtbl.fold (fun op n acc -> (op, Json.Int n) :: acc) t.op_counts []
        |> List.sort compare
      in
      let searches =
        Hashtbl.fold (fun m n acc -> (m, Json.Int n) :: acc) t.search_counts []
        |> List.sort compare
      in
      ok
        ([
           ("uptime_s", Json.Int (int_of_float (Unix.gettimeofday () -. t.started_at)));
           ("requests", Json.Int t.requests);
           ("timeouts", Json.Int t.timeouts);
           ("ops", Json.Obj ops);
           ("search_default", Json.Str (Search_mode.name t.default_search));
           ("search_modes", Json.Obj searches);
           ("sessions", Json.List sessions);
           ( "cache",
             Json.Obj
               [
                 ("entries", Json.Int cs.Cache.entries);
                 ("hits", Json.Int cs.Cache.hits);
                 ("misses", Json.Int cs.Cache.misses);
                 ( "hit_rate",
                   Json.Str (hit_rate_str ~hits:cs.Cache.hits ~misses:cs.Cache.misses) );
                 ("carried", Json.Int cs.Cache.carried);
                 ("dropped", Json.Int cs.Cache.dropped);
               ] );
         ]
        @ (match t.pool_stats with
           | None -> []
           | Some f ->
             let ps = f () in
             [
               ( "workers",
                 Json.Obj
                   [
                     ("failures", Json.Int ps.Pool.failures);
                     ("crashes", Json.Int ps.Pool.crashes);
                     ("respawns", Json.Int ps.Pool.respawns);
                     ("quarantined", Json.Int ps.Pool.quarantined);
                     ("pending", Json.Int ps.Pool.pending);
                   ] );
             ])
        @ [ ("metrics", metrics) ]))

(* ------------------------------------------------------------------ *)
(* crash recovery *)

type recovery = {
  sessions_restored : int;
  entries_replayed : int;
  entries_failed : int;
  torn_tail : bool;
  retained : Journal.entry list;
}

let recover t path =
  let replay = Journal.replay_file path in
  let failed = ref replay.Journal.skipped in
  with_lock t (fun () ->
      List.iter
        (fun entry ->
          match entry with
          | Journal.Opened { id; name; source } -> (
            match Scenario.parse source with
            | scenario -> ignore (Session.open_scenario t.registry ~id ?name scenario)
            | exception Scenario.Parse_error _ -> incr failed)
          | Journal.Inserted { id; rel; rows } -> (
            match Session.find t.registry id with
            | Some s -> (
              match Session.insert s ~rel ~rows with
              | Ok () -> ()
              | Error _ -> incr failed)
            | None -> incr failed)
          | Journal.Inserted_bulk { id; batches } -> (
            match Session.find t.registry id with
            | Some s -> (
              match Session.insert_batches s ~batches with
              | Ok () -> ()
              | Error _ -> incr failed)
            | None -> incr failed)
          | Journal.Closed { id } -> ignore (Session.close t.registry id))
        replay.Journal.entries);
  let retained =
    (* drop entries of sessions that were closed before the crash, so
       the compacted journal only re-plays what is still live; keeping
       the insert records verbatim preserves each session's epoch *)
    with_lock t (fun () ->
        List.filter
          (function
            | Journal.Closed _ -> false
            | Journal.Opened { id; _ }
            | Journal.Inserted { id; _ }
            | Journal.Inserted_bulk { id; _ } ->
              Session.find t.registry id <> None)
          replay.Journal.entries)
  in
  {
    sessions_restored = with_lock t (fun () -> Session.count t.registry);
    entries_replayed = List.length replay.Journal.entries;
    entries_failed = !failed;
    torn_tail = replay.Journal.torn_tail;
    retained;
  }

(* the correlation id the typed request carries (decide ops only; other
   ops keep theirs at the JSON level, where the transport reads it) *)
let req_id_of_request = function
  | Protocol.Rcdp { req_id; _ }
  | Protocol.Rcqp { req_id; _ }
  | Protocol.Audit { req_id; _ } ->
    req_id
  | _ -> None

let handle_dump t =
  match t.flight_path with
  | None ->
    Protocol.error ~kind:"no_flight_recorder"
      "no flight-recorder path configured (direct service caller?)"
  | Some path -> (
    match Ric_obs.Recorder.dump path with
    | n -> ok [ ("path", Json.Str path); ("events", Json.Int n) ]
    | exception Sys_error msg -> Protocol.error ~kind:"io_error" msg)

let rec handle t ?admitted_at req =
  let op = Protocol.op_name req in
  with_lock t (fun () ->
      t.requests <- t.requests + 1;
      Hashtbl.replace t.op_counts op
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.op_counts op)));
  (match List.assoc_opt op op_counters with
   | Some c -> Metrics.incr c
   | None -> ());
  let req_id = req_id_of_request req in
  let dispatch () =
    Trace.with_span "server.op" @@ fun sp ->
    Trace.set_str sp "op" op;
    (match req_id with
     | Some rid -> Trace.set_str sp "req_id" rid
     | None -> ());
    dispatch_req t ?admitted_at req
  in
  let reply =
    match List.assoc_opt op op_histograms with
    | Some h -> Metrics.time h dispatch
    | None -> dispatch ()
  in
  (* echo the correlation id so a client can match pipelined replies *)
  match req_id with
  | Some rid -> Protocol.with_req_id reply rid
  | None -> reply

and dispatch_req t ?admitted_at req =
  match req with
  | Protocol.Ping -> ok [ ("pong", Json.Bool true) ]
  | Protocol.Open { path; source; name } -> handle_open t ~path ~source ~name
  | Protocol.Rcdp { session; query; nocache; timeout_ms; search; req_id; explain }
    ->
    handle_rcdp t ~admitted_at ~session ~query ~nocache ~timeout_ms
      ~search:(resolve_search t search) ~req_id ~explain
  | Protocol.Rcqp { session; query; nocache; timeout_ms; search; req_id; explain }
    ->
    handle_rcqp t ~admitted_at ~session ~query ~nocache ~timeout_ms
      ~search:(resolve_search t search) ~req_id ~explain
  | Protocol.Audit { session; query; nocache; timeout_ms; search; req_id; explain }
    ->
    handle_audit t ~admitted_at ~session ~query ~nocache ~timeout_ms
      ~search:(resolve_search t search) ~req_id ~explain
  | Protocol.Mine { session; nocache; timeout_ms; min_support; workers } ->
    handle_mine t ~admitted_at ~session ~nocache ~timeout_ms ~min_support ~workers
  | Protocol.Insert { session; rel; rows } -> handle_insert t ~session ~rel ~rows
  | Protocol.Insert_bulk { session; batches } ->
    handle_insert_bulk t ~session ~batches
  | Protocol.Close { session } -> handle_close t ~session
  | Protocol.Stats -> handle_stats t
  | Protocol.Dump -> handle_dump t
  | Protocol.Shutdown ->
    Atomic.set t.stop true;
    ok [ ("stopping", Json.Bool true) ]
