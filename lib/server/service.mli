(** The [ricd] request brain: session registry + verdict cache +
    decider dispatch, independent of any transport.

    {!handle} is safe to call concurrently from many domains: registry
    and cache bookkeeping is serialised behind one mutex, while the
    deciders themselves run {e outside} the lock on immutable
    snapshots of [(D, Dm, V, Q)] — so two RCDP requests on different
    (or even the same) sessions compute in parallel, and a slow Σ₂ᵖ
    decide never blocks a cache hit.  Two identical simultaneous
    misses may both compute; the second store is harmless
    (last-writer-wins on equal verdicts).

    The cache policy on [insert] is the subsystem's point: see
    {!Cache} for the monotonicity argument, and the [cached] /
    [revalidated] response fields for how provenance is surfaced to
    clients. *)

type t

val create :
  ?root:string -> ?default_search:Ric_complete.Search_mode.t -> unit -> t
(** [root] anchors relative [path]s of [open] requests (defaults to
    the daemon's working directory).  [default_search] is the
    valuation-search strategy applied to decide requests that carry no
    ["search"] field of their own (defaults to [Seq]). *)

val handle : t -> ?admitted_at:float -> Protocol.request -> Ric_text.Json.t
(** Serve one request.  Never raises: malformed scenarios, unknown
    sessions/queries/relations and unsupported language combinations
    all come back as JSON (either [{"ok": false, ...}] or an
    ["unsupported"] verdict).  A [Shutdown] request flips
    {!shutdown_requested} and still returns a response for the
    transport to flush.

    [admitted_at] (a [Unix.gettimeofday] stamp) anchors the request's
    [timeout_ms] deadline at the moment the front end admitted it, so
    time spent queued behind other jobs counts against the budget; a
    deadline already spent answers a ["timeout"] verdict on the
    decider's first tick.  Omitted, the deadline starts when the
    decider does (the legacy behaviour, used by direct callers).

    A decide request carrying a [req_id] gets it stamped on the
    ["server.op"] span (and, via {!Ric_complete.Budget.label}, on the
    decider spans below it) and echoed as a ["req_id"] field on the
    reply.  With [explain = true] the decide computes fresh — the
    cache is bypassed on read, never poisoned on write (profiles ride
    on the reply, not in the cached result) — and the reply carries a
    structured ["profile"] object; see {!Protocol} for its shape. *)

val shutdown_requested : t -> bool

val request_shutdown : t -> unit
(** What a [shutdown] request and the SIGTERM/SIGINT handlers share:
    flip the stop flag; the transport's accept loop notices on its
    next idle poll and drains. *)

val attach_journal : t -> Ric_text.Journal.t -> unit
(** Start journalling [open]/[insert]/[close] mutations.  Attach
    {e after} {!recover} so replay is not re-journalled.  Journal
    write failures are swallowed: losing durability must not fail
    live requests. *)

val set_pool_stats : t -> (unit -> Pool.stats) -> unit
(** Let [stats] responses report the worker pool's failure /
    crash / respawn / quarantine counters. *)

val set_flight_path : t -> string -> unit
(** Where a [dump] request writes the flight recorder
    ({!Ric_obs.Recorder.dump}).  Unset, [dump] answers a
    ["no_flight_recorder"] error — the transport configures it at
    startup. *)

type recovery = {
  sessions_restored : int;  (** live sessions after replay *)
  entries_replayed : int;
  entries_failed : int;
      (** records that no longer applied (unparseable scenario,
          unknown session, bad insert) — logged and skipped *)
  torn_tail : bool;  (** the journal ended mid-record (crash mid-append) *)
  retained : Ric_text.Journal.entry list;
      (** the compacted journal: entries of still-open sessions, in
          order, with epochs preserved — rewrite the journal file from
          these before attaching it *)
}

val recover : t -> string -> recovery
(** Replay a session journal into the (empty) registry: re-parse each
    [open]'s embedded scenario source, re-apply inserts (restoring
    epochs and partial-closure state), honour closes.
    @raise Sys_error when the journal file cannot be read. *)
