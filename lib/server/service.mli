(** The [ricd] request brain: session registry + verdict cache +
    decider dispatch, independent of any transport.

    {!handle} is safe to call concurrently from many domains: registry
    and cache bookkeeping is serialised behind one mutex, while the
    deciders themselves run {e outside} the lock on immutable
    snapshots of [(D, Dm, V, Q)] — so two RCDP requests on different
    (or even the same) sessions compute in parallel, and a slow Σ₂ᵖ
    decide never blocks a cache hit.  Two identical simultaneous
    misses may both compute; the second store is harmless
    (last-writer-wins on equal verdicts).

    The cache policy on [insert] is the subsystem's point: see
    {!Cache} for the monotonicity argument, and the [cached] /
    [revalidated] response fields for how provenance is surfaced to
    clients. *)

type t

val create : ?root:string -> unit -> t
(** [root] anchors relative [path]s of [open] requests (defaults to
    the daemon's working directory). *)

val handle : t -> Protocol.request -> Ric_text.Json.t
(** Serve one request.  Never raises: malformed scenarios, unknown
    sessions/queries/relations and unsupported language combinations
    all come back as JSON (either [{"ok": false, ...}] or an
    ["unsupported"] verdict).  A [Shutdown] request flips
    {!shutdown_requested} and still returns a response for the
    transport to flush. *)

val shutdown_requested : t -> bool
