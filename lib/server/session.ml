open Ric_relational
open Ric_constraints
module Scenario = Ric_text.Scenario

type t = {
  id : string;
  name : string option;
  scenario : Scenario.t;
  ccs_fingerprint : string;
  mutable db : Database.t;
  mutable epoch : int;
  mutable closure_violation : (string * Tuple.t) option;
}

let partially_closed s = s.closure_violation = None

let find_query s name = Scenario.find_query s.scenario name

let query_names s = List.map fst s.scenario.Scenario.queries

type registry = {
  sessions : (string, t) Hashtbl.t;
  mutable next_id : int;
}

let create () = { sessions = Hashtbl.create 16; next_id = 1 }

let fingerprint (scenario : Scenario.t) =
  let printed =
    String.concat ";"
      (List.map
         (fun (name, cc) -> name ^ "=" ^ Format.asprintf "%a" Containment.pp cc)
         scenario.Scenario.ccs)
  in
  Digest.to_hex (Digest.string printed)

let check_closure (scenario : Scenario.t) db =
  match
    Containment.first_violation ~db ~master:scenario.Scenario.master
      (Scenario.all_ccs scenario)
  with
  | Some (cc, witness) -> Some (cc.Containment.cc_name, witness)
  | None -> None

(* A forced [id] comes from journal replay; keep [next_id] ahead of it
   so post-recovery sessions never collide with recovered ones. *)
let open_scenario reg ?id ?name scenario =
  let id =
    match id with
    | Some id ->
      if String.length id > 1 && id.[0] = 's' then
        (match int_of_string_opt (String.sub id 1 (String.length id - 1)) with
         | Some n -> reg.next_id <- max reg.next_id (n + 1)
         | None -> ());
      id
    | None ->
      let id = Printf.sprintf "s%d" reg.next_id in
      reg.next_id <- reg.next_id + 1;
      id
  in
  let db = scenario.Scenario.db in
  let s =
    {
      id;
      name;
      scenario;
      ccs_fingerprint = fingerprint scenario;
      db;
      epoch = 0;
      closure_violation = check_closure scenario db;
    }
  in
  Hashtbl.replace reg.sessions id s;
  s

let find reg id = Hashtbl.find_opt reg.sessions id

let close reg id =
  if Hashtbl.mem reg.sessions id then begin
    Hashtbl.remove reg.sessions id;
    true
  end
  else false

let count reg = Hashtbl.length reg.sessions

let list reg = Hashtbl.fold (fun _ s acc -> s :: acc) reg.sessions []

exception Reject of string

let insert_batches s ~batches =
  match
    List.fold_left
      (fun db (rel, rows) ->
        try
          List.fold_left
            (fun db row -> Database.add_tuple db rel (Tuple.make row))
            db rows
        with
        | Invalid_argument msg -> raise (Reject msg)
        | Not_found -> raise (Reject (Printf.sprintf "unknown relation %S" rel)))
      s.db batches
  with
  | db ->
    (* all batches validated against the staged database before any of
       them lands: one epoch bump, one closure re-check, whatever the
       batch count — and a rejected batch leaves the session untouched *)
    s.db <- db;
    s.epoch <- s.epoch + 1;
    (* a violation is monotone: once broken, stay broken without
       re-searching; otherwise re-check against the grown database *)
    if partially_closed s then s.closure_violation <- check_closure s.scenario db;
    Ok ()
  | exception Reject msg -> Error msg

let insert s ~rel ~rows = insert_batches s ~batches:[ (rel, rows) ]
