(** The session registry: each session pins one parsed [.ric] scenario
    — master data [Dm], constraints [V], queries — plus a {e mutable}
    database [D] that grows through [insert] requests, so repeated
    RCDP/RCQP requests never re-parse or re-load anything.

    The [epoch] counts database mutations; it keys the verdict cache,
    so stale verdicts are unreachable by construction.  Partial
    closure [(D, Dm) ⊨ V] is re-checked after every insert: the paper
    only defines RCDP on partially closed databases, and the first
    violated constraint is kept for error reporting.

    This module performs no locking; {!Service} serialises all access
    to a registry behind its own mutex. *)

open Ric_relational

type t = {
  id : string;  (** registry-unique, of the form ["s1"], ["s2"], ... *)
  name : string option;  (** client-supplied label, for logs *)
  scenario : Ric_text.Scenario.t;  (** immutable: schemas, [Dm], [V], queries *)
  ccs_fingerprint : string;
      (** digest of the printed constraint set — part of every cache
          key, so two sessions over different [V] can never share a
          verdict *)
  mutable db : Database.t;
  mutable epoch : int;  (** bumped by every successful {!insert} *)
  mutable closure_violation : (string * Tuple.t) option;
      (** [Some (cc_name, witness)] when [(D, Dm) ⊭ V] *)
}

val partially_closed : t -> bool

val find_query : t -> string -> Ric_query.Lang.t option

val query_names : t -> string list

type registry

val create : unit -> registry

val open_scenario : registry -> ?id:string -> ?name:string -> Ric_text.Scenario.t -> t
(** Register a freshly parsed scenario under a new session id, with
    its partial-closure status already computed.  [id] forces the
    session id (journal replay restores sessions under their original
    ids) and advances the id counter past it. *)

val find : registry -> string -> t option

val close : registry -> string -> bool
(** [false] when the id is unknown. *)

val count : registry -> int

val list : registry -> t list

val insert : t -> rel:string -> rows:Value.t list list -> (unit, string) result
(** Add tuples to relation [rel] of the session's database, bump the
    epoch and re-check partial closure.  [Error] (schema violations —
    unknown relation, wrong arity, value outside a finite attribute
    domain) leaves the session untouched.  An insert that breaks a
    containment constraint {e succeeds} — the session records the
    violation and RCDP/audit requests then answer
    [not_partially_closed].  Because every supported [LC] is
    monotone, a violation can never be repaired by further inserts;
    it is the client's signal to fix its feed and open a fresh
    session. *)

val insert_batches :
  t -> batches:(string * Value.t list list) list -> (unit, string) result
(** {!insert} for several relations at once, as one mutation: all
    batches are validated against the staged database before any of
    them lands, the epoch is bumped {e once} and partial closure is
    re-checked {e once} — the unit cost that made per-tuple inserts a
    bottleneck for bulk feeds.  [Error] (the first schema violation)
    leaves the session completely untouched. *)
