open Ric_relational

type entry =
  | Opened of { id : string; name : string option; source : string }
  | Inserted of { id : string; rel : string; rows : Value.t list list }
  | Inserted_bulk of {
      id : string;
      batches : (string * Value.t list list) list;
    }
  | Closed of { id : string }

let m_appends =
  Ric_obs.Metrics.counter ~help:"journal records appended"
    "ric_journal_appends_total"

let m_replayed =
  Ric_obs.Metrics.counter ~help:"journal records replayed at recovery"
    "ric_journal_replayed_total"

let m_replay_skipped =
  Ric_obs.Metrics.counter
    ~help:"journal records skipped at recovery (unparseable or unknown)"
    "ric_journal_replay_skipped_total"

(* ------------------------------------------------------------------ *)
(* Encoding: one compact JSON object per line.  [Json.to_string]
   escapes control characters, so a scenario source full of newlines
   still serialises to a single line and [input_line] framing holds. *)

let json_of_value = function
  | Value.Int n -> Json.Int n
  | Value.Str s -> Json.Str s

let value_of_json = function
  | Json.Int n -> Ok (Value.Int n)
  | Json.Str s -> Ok (Value.Str s)
  | _ -> Error "row cells must be strings or integers"

let json_of_rows rows =
  Json.List (List.map (fun row -> Json.List (List.map json_of_value row)) rows)

let json_of_entry = function
  | Opened { id; name; source } ->
    Json.Obj
      ([ ("r", Json.Str "open"); ("id", Json.Str id) ]
      @ (match name with Some n -> [ ("name", Json.Str n) ] | None -> [])
      @ [ ("source", Json.Str source) ])
  | Inserted { id; rel; rows } ->
    Json.Obj
      [
        ("r", Json.Str "insert");
        ("id", Json.Str id);
        ("rel", Json.Str rel);
        ("rows", json_of_rows rows);
      ]
  | Inserted_bulk { id; batches } ->
    Json.Obj
      [
        ("r", Json.Str "insert_bulk");
        ("id", Json.Str id);
        ( "batches",
          Json.List
            (List.map
               (fun (rel, rows) ->
                 Json.Obj [ ("rel", Json.Str rel); ("rows", json_of_rows rows) ])
               batches) );
      ]
  | Closed { id } -> Json.Obj [ ("r", Json.Str "close"); ("id", Json.Str id) ]

let field fields k = List.assoc_opt k fields

let str_field fields k =
  match field fields k with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let ( let* ) = Result.bind

let rows_of_json = function
  | Json.List rows ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.List cells :: rest ->
        let rec cells_go cacc = function
          | [] -> go (List.rev cacc :: acc) rest
          | c :: cs ->
            (match value_of_json c with
             | Ok v -> cells_go (v :: cacc) cs
             | Error _ as e -> e)
        in
        cells_go [] cells
      | _ -> Error "each row must be a list of cells"
    in
    go [] rows
  | _ -> Error "field \"rows\" must be a list of rows"

let entry_of_json = function
  | Json.Obj fields ->
    let* r = str_field fields "r" in
    let* id = str_field fields "id" in
    (match r with
     | "open" ->
       let* source = str_field fields "source" in
       let name =
         match field fields "name" with Some (Json.Str n) -> Some n | _ -> None
       in
       Ok (Opened { id; name; source })
     | "insert" ->
       let* rel = str_field fields "rel" in
       (match field fields "rows" with
        | Some rows ->
          let* rows = rows_of_json rows in
          Ok (Inserted { id; rel; rows })
        | None -> Error "missing field \"rows\"")
     | "insert_bulk" ->
       (match field fields "batches" with
        | Some (Json.List bs) ->
          let rec go acc = function
            | [] -> Ok (Inserted_bulk { id; batches = List.rev acc })
            | Json.Obj bf :: rest ->
              let* rel = str_field bf "rel" in
              (match field bf "rows" with
               | Some rows ->
                 let* rows = rows_of_json rows in
                 go ((rel, rows) :: acc) rest
               | None -> Error "missing field \"rows\"")
            | _ :: _ -> Error "each batch must be an object"
          in
          go [] bs
        | Some _ -> Error "field \"batches\" must be a list"
        | None -> Error "missing field \"batches\"")
     | "close" -> Ok (Closed { id })
     | other -> Error (Printf.sprintf "unknown journal record %S" other))
  | _ -> Error "a journal record must be a JSON object"

(* ------------------------------------------------------------------ *)
(* The append side. *)

type t = { oc : out_channel; mutex : Mutex.t; path : string }

let open_append ?(truncate = false) path =
  let mode = if truncate then Open_trunc else Open_append in
  let oc = open_out_gen [ mode; Open_wronly; Open_creat ] 0o644 path in
  { oc; mutex = Mutex.create (); path }

let path t = t.path

let append t entry =
  Mutex.lock t.mutex;
  (try
     output_string t.oc (Json.to_string (json_of_entry entry));
     output_char t.oc '\n';
     flush t.oc
   with e ->
     Mutex.unlock t.mutex;
     raise e);
  Mutex.unlock t.mutex;
  Ric_obs.Metrics.incr m_appends

let close t =
  Mutex.lock t.mutex;
  (try close_out t.oc with Sys_error _ -> ());
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* The replay side. *)

type replay = {
  entries : entry list;
  skipped : int;
  torn_tail : bool;
}

let replay_file path =
  let ic = open_in path in
  let entries = ref [] and skipped = ref 0 and torn = ref false in
  (try
     let rec go () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
         if String.trim line <> "" then begin
           match Json.of_string_result line with
           | Error _ ->
             (* a torn tail from a crash mid-append parses as garbage;
                anything after it is unreliable, so stop here *)
             torn := true
           | Ok json ->
             (match entry_of_json json with
              | Ok e -> entries := e :: !entries
              | Error _ -> incr skipped);
             go ()
         end
         else go ()
     in
     go ()
   with e ->
     close_in_noerr ic;
     raise e);
  close_in_noerr ic;
  Ric_obs.Metrics.add m_replayed (List.length !entries);
  Ric_obs.Metrics.add m_replay_skipped !skipped;
  { entries = List.rev !entries; skipped = !skipped; torn_tail = !torn }
