(** The session journal: crash recovery for a long-running completeness
    service.

    An append-only file of JSON-lines records — one [open], [insert] or
    [close] per line — written as the service mutates its session
    registry.  After a crash, replaying the journal rebuilds the exact
    registry: the [open] record carries the {e printed} scenario (not
    just its path), so recovery does not depend on the original file
    still existing or being unchanged, and replayed [insert]s restore
    each session's database and epoch.

    The format is deliberately torn-tail tolerant: every record is one
    line, [Json.to_string] escapes all control characters, and
    {!replay_file} stops at the first unparseable line — exactly what a
    crash mid-append leaves behind — rather than failing the whole
    recovery. *)

open Ric_relational

type entry =
  | Opened of { id : string; name : string option; source : string }
      (** [source] is the scenario printed by {!Scenario.pp} (which
          round-trips through {!Scenario.parse}) *)
  | Inserted of { id : string; rel : string; rows : Value.t list list }
  | Inserted_bulk of {
      id : string;
      batches : (string * Value.t list list) list;
    }
      (** one [insert_bulk] request: several relations' rows applied as
          a single mutation — one journal record, one epoch *)
  | Closed of { id : string }

val json_of_entry : entry -> Json.t

val entry_of_json : Json.t -> (entry, string) result

(** {2 Appending} *)

type t

val open_append : ?truncate:bool -> string -> t
(** Open (creating if needed) the journal for appending.  Writes are
    serialised behind an internal mutex and flushed per record.
    [truncate] starts the file afresh — recovery uses it to compact
    the journal down to the entries that are still live. *)

val path : t -> string

val append : t -> entry -> unit

val close : t -> unit

(** {2 Replaying} *)

type replay = {
  entries : entry list;  (** in write order *)
  skipped : int;  (** well-formed JSON lines that were not valid records *)
  torn_tail : bool;
      (** true when the file ends in a partial line (crash mid-append);
          everything before it was still replayed *)
}

val replay_file : string -> replay
(** @raise Sys_error when the file cannot be read at all. *)
