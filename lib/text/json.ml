type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Null -> Format.fprintf ppf "null"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "\"%s\"" (escape s)
  | List items ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp)
      items
  | Obj fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf (k, v) -> Format.fprintf ppf "\"%s\":%a" (escape k) pp v))
      fields

let to_string v = Format.asprintf "%a" pp v
