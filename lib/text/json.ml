type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Null -> Format.fprintf ppf "null"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "\"%s\"" (escape s)
  | List items ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp)
      items
  | Obj fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf (k, v) -> Format.fprintf ppf "\"%s\":%a" (escape k) pp v))
      fields

let to_string v = Format.asprintf "%a" pp v

(* ------------------------------------------------------------------ *)
(* Parsing.  A hand-rolled recursive-descent parser over the input
   string, tracking line/column so protocol errors point at the
   offending byte, in the same style as the scenario parser. *)

exception Parse_error of string * int * int

type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let fail cur msg = raise (Parse_error (msg, cur.line, cur.col))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur =
  (match peek cur with
   | Some '\n' ->
     cur.line <- cur.line + 1;
     cur.col <- 1
   | Some _ -> cur.col <- cur.col + 1
   | None -> ());
  cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ()

let expect_char cur c =
  match peek cur with
  | Some d when d = c -> advance cur
  | Some d -> fail cur (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail cur (Printf.sprintf "expected %C, found end of input" c)

(* [keyword] is only called when the head character already matched,
   so a mismatch means a malformed literal like [tru] or [nul]. *)
let keyword cur word value =
  String.iter
    (fun c ->
      match peek cur with
      | Some d when d = c -> advance cur
      | _ -> fail cur (Printf.sprintf "malformed literal (expected %S)" word))
    word;
  value

let hex_digit cur =
  match peek cur with
  | Some ('0' .. '9' as c) ->
    advance cur;
    Char.code c - Char.code '0'
  | Some ('a' .. 'f' as c) ->
    advance cur;
    Char.code c - Char.code 'a' + 10
  | Some ('A' .. 'F' as c) ->
    advance cur;
    Char.code c - Char.code 'A' + 10
  | Some c -> fail cur (Printf.sprintf "expected a hex digit, found %C" c)
  | None -> fail cur "expected a hex digit, found end of input"

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let unicode_escape cur =
  let d1 = hex_digit cur in
  let d2 = hex_digit cur in
  let d3 = hex_digit cur in
  let d4 = hex_digit cur in
  (d1 lsl 12) lor (d2 lsl 8) lor (d3 lsl 4) lor d4

let string_body cur =
  expect_char cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' ->
      advance cur;
      Buffer.contents buf
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | Some '"' -> advance cur; Buffer.add_char buf '"'; go ()
       | Some '\\' -> advance cur; Buffer.add_char buf '\\'; go ()
       | Some '/' -> advance cur; Buffer.add_char buf '/'; go ()
       | Some 'b' -> advance cur; Buffer.add_char buf '\b'; go ()
       | Some 'f' -> advance cur; Buffer.add_char buf '\012'; go ()
       | Some 'n' -> advance cur; Buffer.add_char buf '\n'; go ()
       | Some 'r' -> advance cur; Buffer.add_char buf '\r'; go ()
       | Some 't' -> advance cur; Buffer.add_char buf '\t'; go ()
       | Some 'u' ->
         advance cur;
         let cp = unicode_escape cur in
         let cp =
           (* a high surrogate must pair with a following \uDC00-\uDFFF *)
           if cp >= 0xd800 && cp <= 0xdbff then begin
             (match (peek cur, cur.pos + 1 < String.length cur.src) with
              | (Some '\\', true) when cur.src.[cur.pos + 1] = 'u' ->
                advance cur;
                advance cur
              | _ -> fail cur "unpaired high surrogate (expected \\uDC00-\\uDFFF)");
             let lo = unicode_escape cur in
             if lo < 0xdc00 || lo > 0xdfff then
               fail cur "unpaired high surrogate (expected \\uDC00-\\uDFFF)";
             0x10000 + (((cp - 0xd800) lsl 10) lor (lo - 0xdc00))
           end
           else cp
         in
         add_utf8 buf cp;
         go ()
       | Some c -> fail cur (Printf.sprintf "invalid escape \\%c" c)
       | None -> fail cur "unterminated escape")
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let number cur =
  let start = cur.pos in
  if peek cur = Some '-' then advance cur;
  let digits = ref 0 in
  let rec go () =
    match peek cur with
    | Some '0' .. '9' ->
      incr digits;
      advance cur;
      go ()
    | _ -> ()
  in
  go ();
  if !digits = 0 then fail cur "expected digits";
  (match peek cur with
   | Some ('.' | 'e' | 'E') ->
     fail cur "floating-point numbers are not supported (integers only)"
   | _ -> ());
  let lit = String.sub cur.src start (cur.pos - start) in
  match int_of_string_opt lit with
  | Some n -> Int n
  | None -> fail cur (Printf.sprintf "integer literal %s out of range" lit)

let rec value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "expected a JSON value, found end of input"
  | Some 'n' -> keyword cur "null" Null
  | Some 't' -> keyword cur "true" (Bool true)
  | Some 'f' -> keyword cur "false" (Bool false)
  | Some '"' -> Str (string_body cur)
  | Some ('-' | '0' .. '9') -> number cur
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let items = ref [ value cur ] in
      let rec go () =
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items := value cur :: !items;
          go ()
        | Some ']' -> advance cur
        | Some c -> fail cur (Printf.sprintf "expected ',' or ']' in array, found %C" c)
        | None -> fail cur "unterminated array"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let field () =
        skip_ws cur;
        let k = string_body cur in
        skip_ws cur;
        expect_char cur ':';
        (k, value cur)
      in
      let fields = ref [ field () ] in
      let rec go () =
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields := field () :: !fields;
          go ()
        | Some '}' -> advance cur
        | Some c -> fail cur (Printf.sprintf "expected ',' or '}' in object, found %C" c)
        | None -> fail cur "unterminated object"
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some c -> fail cur (Printf.sprintf "expected a JSON value, found %C" c)

let of_string src =
  let cur = { src; pos = 0; line = 1; col = 1 } in
  let v = value cur in
  skip_ws cur;
  (match peek cur with
   | Some c -> fail cur (Printf.sprintf "trailing characters after the value: %C" c)
   | None -> ());
  v

let of_string_result src =
  match of_string src with
  | v -> Ok v
  | exception Parse_error (msg, line, col) -> Error (msg, line, col)

let of_channel ic =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec slurp () =
    let n = input ic chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      slurp ()
    end
  in
  slurp ();
  of_string (Buffer.contents buf)
