(** A minimal JSON value type, printer and parser (no external
    dependency), used by {!Report}, the CLI's [--json] mode and the
    {!Ric_service} wire protocol. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Compact, valid JSON with correctly escaped strings. *)

val to_string : t -> string

exception Parse_error of string * int * int
(** message, line, column (1-based), as in {!Scenario.Parse_error}. *)

val of_string : string -> t
(** Parse one JSON value; the whole input must be consumed (trailing
    whitespace allowed).  Numbers must be integers — this type has no
    float constructor, and a fractional literal is a positioned error,
    not a silent truncation.  Object key order and duplicates are
    preserved.  [of_string (to_string v) = v] for every [v]
    (property-tested).
    @raise Parse_error on malformed input, with position. *)

val of_string_result : string -> (t, string * int * int) result
(** Like {!of_string} but returning the error. *)

val of_channel : in_channel -> t
(** Read the channel to EOF and parse it as one JSON value.
    @raise Parse_error as {!of_string}. *)
