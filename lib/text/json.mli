(** A minimal JSON value type and printer (no external dependency),
    used by {!Report} and the CLI's [--json] mode. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Compact, valid JSON with correctly escaped strings. *)

val to_string : t -> string
