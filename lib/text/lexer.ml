type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | TURNSTILE
  | ARROW
  | FDARROW
  | EQ
  | NEQ
  | COLON
  | PIPE
  | QMARK
  | EOF

type positioned = {
  tok : token;
  line : int;
  col : int;
}

exception Lex_error of string * int * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\'' || c = '-'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 and col = ref 1 in
  let emit tok l c = out := { tok; line = l; col = c } :: !out in
  let i = ref 0 in
  let advance () =
    (if !i < n && src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  while !i < n do
    let c = src.[!i] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      if c = '-' then advance ();
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      emit (INT (int_of_string (String.sub src start (!i - start)))) l0 c0
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      emit (IDENT (String.sub src start (!i - start))) l0 c0
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '"' then begin
          closed := true;
          advance ()
        end
        else begin
          Buffer.add_char buf src.[!i];
          advance ()
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string", l0, c0));
      emit (STRING (Buffer.contents buf)) l0 c0
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | ":-" ->
        advance ();
        advance ();
        emit TURNSTILE l0 c0
      | "=>" ->
        advance ();
        advance ();
        emit ARROW l0 c0
      | "->" ->
        advance ();
        advance ();
        emit FDARROW l0 c0
      | "!=" ->
        advance ();
        advance ();
        emit NEQ l0 c0
      | _ ->
        (match c with
         | '(' -> advance (); emit LPAREN l0 c0
         | ')' -> advance (); emit RPAREN l0 c0
         | '{' -> advance (); emit LBRACE l0 c0
         | '}' -> advance (); emit RBRACE l0 c0
         | '[' -> advance (); emit LBRACKET l0 c0
         | ']' -> advance (); emit RBRACKET l0 c0
         | ',' -> advance (); emit COMMA l0 c0
         | '.' -> advance (); emit DOT l0 c0
         | '=' -> advance (); emit EQ l0 c0
         | ':' -> advance (); emit COLON l0 c0
         | '|' -> advance (); emit PIPE l0 c0
         | '?' -> advance (); emit QMARK l0 c0
         | c -> raise (Lex_error (Printf.sprintf "illegal character %C" c, l0, c0)))
    end
  done;
  emit EOF !line !col;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Streaming source: the same token language, pulled one token at a
   time from a refill buffer instead of a whole-file string.  The
   grammar needs at most two bytes of lookahead (the two-char
   operators and the [-]digit rule), so a token split across refills
   is handled by compacting the unread tail to the buffer's front and
   topping up — memory stays bounded by the chunk size regardless of
   input length, and positions are counted byte-for-byte exactly like
   [tokenize]. *)

type source = {
  refill : bytes -> int -> int -> int;
      (* [refill buf pos space] reads at most [space] bytes into [buf]
         at [pos], returning 0 only at end of input (input semantics) *)
  buf : bytes;
  mutable pos : int; (* next unread byte *)
  mutable len : int; (* valid bytes in [buf] *)
  mutable eof : bool;
  mutable line : int;
  mutable col : int;
  scratch : Buffer.t;
}

let make_source ~chunk refill =
  {
    refill;
    buf = Bytes.create (max 2 chunk);
    pos = 0;
    len = 0;
    eof = false;
    line = 1;
    col = 1;
    scratch = Buffer.create 64;
  }

let of_channel ?(chunk = 65536) ic =
  make_source ~chunk (fun buf pos space -> input ic buf pos space)

(* [chunk] caps how many bytes each refill delivers, so the
   chunk-boundary differential can force every possible token split. *)
let of_string ?(chunk = 65536) src =
  let served = ref 0 in
  let n = String.length src in
  make_source ~chunk (fun buf pos space ->
      let k = min (min space chunk) (n - !served) in
      Bytes.blit_string src !served buf pos k;
      served := !served + k;
      k)

(* Make at least [k] (<= 2) unread bytes available, or hit EOF. *)
let ensure s k =
  while s.len - s.pos < k && not s.eof do
    (if s.pos > 0 then begin
       let rem = s.len - s.pos in
       if rem > 0 then Bytes.blit s.buf s.pos s.buf 0 rem;
       s.pos <- 0;
       s.len <- rem
     end);
    let space = Bytes.length s.buf - s.len in
    let n = s.refill s.buf s.len space in
    if n = 0 then s.eof <- true else s.len <- s.len + n
  done;
  s.len - s.pos >= k

let peek s = if s.pos < s.len || ensure s 1 then Some (Bytes.get s.buf s.pos) else None

let peek2 s =
  if s.len - s.pos >= 2 || ensure s 2 then Some (Bytes.get s.buf (s.pos + 1))
  else None

let advance_src s =
  (if Bytes.get s.buf s.pos = '\n' then begin
     s.line <- s.line + 1;
     s.col <- 1
   end
   else s.col <- s.col + 1);
  s.pos <- s.pos + 1

let rec next s =
  match peek s with
  | None -> { tok = EOF; line = s.line; col = s.col }
  | Some c ->
    let l0 = s.line and c0 = s.col in
    let tok t =
      advance_src s;
      { tok = t; line = l0; col = c0 }
    in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then begin
      advance_src s;
      next s
    end
    else if c = '#' then begin
      let continue = ref true in
      while !continue do
        match peek s with
        | Some ch when ch <> '\n' -> advance_src s
        | _ -> continue := false
      done;
      next s
    end
    else if is_digit c || (c = '-' && (match peek2 s with Some d -> is_digit d | None -> false))
    then begin
      Buffer.clear s.scratch;
      if c = '-' then begin
        Buffer.add_char s.scratch '-';
        advance_src s
      end;
      let continue = ref true in
      while !continue do
        match peek s with
        | Some d when is_digit d ->
          Buffer.add_char s.scratch d;
          advance_src s
        | _ -> continue := false
      done;
      { tok = INT (int_of_string (Buffer.contents s.scratch)); line = l0; col = c0 }
    end
    else if is_ident_start c then begin
      Buffer.clear s.scratch;
      let continue = ref true in
      while !continue do
        match peek s with
        | Some ch when is_ident_char ch ->
          Buffer.add_char s.scratch ch;
          advance_src s
        | _ -> continue := false
      done;
      { tok = IDENT (Buffer.contents s.scratch); line = l0; col = c0 }
    end
    else if c = '"' then begin
      advance_src s;
      Buffer.clear s.scratch;
      let closed = ref false in
      let continue = ref true in
      while !continue do
        match peek s with
        | Some '"' ->
          closed := true;
          advance_src s;
          continue := false
        | Some ch ->
          Buffer.add_char s.scratch ch;
          advance_src s
        | None -> continue := false
      done;
      if not !closed then raise (Lex_error ("unterminated string", l0, c0));
      { tok = STRING (Buffer.contents s.scratch); line = l0; col = c0 }
    end
    else begin
      let two t =
        advance_src s;
        advance_src s;
        { tok = t; line = l0; col = c0 }
      in
      match (c, peek2 s) with
      | ':', Some '-' -> two TURNSTILE
      | '=', Some '>' -> two ARROW
      | '-', Some '>' -> two FDARROW
      | '!', Some '=' -> two NEQ
      | '(', _ -> tok LPAREN
      | ')', _ -> tok RPAREN
      | '{', _ -> tok LBRACE
      | '}', _ -> tok RBRACE
      | '[', _ -> tok LBRACKET
      | ']', _ -> tok RBRACKET
      | ',', _ -> tok COMMA
      | '.', _ -> tok DOT
      | '=', _ -> tok EQ
      | ':', _ -> tok COLON
      | '|', _ -> tok PIPE
      | '?', _ -> tok QMARK
      | c, _ -> raise (Lex_error (Printf.sprintf "illegal character %C" c, l0, c0))
    end

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | STRING s -> Printf.sprintf "string %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | TURNSTILE -> "':-'"
  | ARROW -> "'=>'"
  | FDARROW -> "'->'"
  | EQ -> "'='"
  | NEQ -> "'!='"
  | COLON -> "':'"
  | PIPE -> "'|'"
  | QMARK -> "'?'"
  | EOF -> "end of input"

(* ------------------------------------------------------------------ *)
(* Fused rows-block scanner: the bulk-ingest fast path.  [scan_cells]
   consumes a sequence of [(v, v, ...)] rows directly off the refill
   buffer, interning each cell as it is recognised — identifiers hit a
   string→id cache keyed by the raw token bytes, so a repeated value
   costs a hash and a byte compare with no string, token record, or
   Value.t allocated, and integers are parsed in place without ever
   materialising text.  The scanner stops, consuming nothing but
   insignificant bytes, at the first row boundary whose next token is
   not '(' — the pull parser resumes there for the closing brace.
   Anything off the happy path (quoted strings, oversized integer
   literals, malformed rows) falls back to {!next}, so error messages
   and positions match the token-at-a-time grammar exactly. *)

(* Compact the unread tail to the front and top the buffer up once.
   Returns false when no new bytes can arrive (end of input, or a
   single token larger than the whole buffer). *)
let refill_keep s =
  if s.eof then false
  else begin
    (if s.pos > 0 then begin
       let rem = s.len - s.pos in
       if rem > 0 then Bytes.blit s.buf s.pos s.buf 0 rem;
       s.pos <- 0;
       s.len <- rem
     end);
    let space = Bytes.length s.buf - s.len in
    if space = 0 then false
    else begin
      let n = s.refill s.buf s.len space in
      if n = 0 then begin
        s.eof <- true;
        false
      end
      else begin
        s.len <- s.len + n;
        true
      end
    end
  end

(* Open-addressing string→id cache.  Empty slots hold the physically
   unique [absent_key], so "" remains a legal key. *)
let absent_key = Bytes.unsafe_to_string (Bytes.create 0)

type icache = {
  mutable ic_keys : string array;
  mutable ic_ids : int array;
  mutable ic_hashes : int array;
  mutable ic_mask : int;
  mutable ic_used : int;
}

let icache_create () =
  let cap = 4096 in
  {
    ic_keys = Array.make cap absent_key;
    ic_ids = Array.make cap 0;
    ic_hashes = Array.make cap 0;
    ic_mask = cap - 1;
    ic_used = 0;
  }

(* FNV-1a over a byte range, truncated to a non-negative int. *)
let icache_hash buf start len =
  let h = ref 0x811c9dc5 in
  for j = start to start + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get buf j)) * 0x01000193 land max_int
  done;
  !h

let icache_grow c =
  let cap = 2 * (c.ic_mask + 1) in
  let keys = Array.make cap absent_key in
  let ids = Array.make cap 0 in
  let hashes = Array.make cap 0 in
  let mask = cap - 1 in
  Array.iteri
    (fun slot k ->
      if k != absent_key then begin
        let h = c.ic_hashes.(slot) in
        let j = ref (h land mask) in
        while keys.(!j) != absent_key do
          j := (!j + 1) land mask
        done;
        keys.(!j) <- k;
        ids.(!j) <- c.ic_ids.(slot);
        hashes.(!j) <- h
      end)
    c.ic_keys;
  c.ic_keys <- keys;
  c.ic_ids <- ids;
  c.ic_hashes <- hashes;
  c.ic_mask <- mask

let bytes_eq buf start key len =
  let rec go k =
    k = len
    || (Bytes.unsafe_get buf (start + k) = String.unsafe_get key k && go (k + 1))
  in
  go 0

let icache_find_or_add c buf start len make_id =
  let h = icache_hash buf start len in
  let rec probe i =
    let slot = (h + i) land c.ic_mask in
    let k = Array.unsafe_get c.ic_keys slot in
    if k == absent_key then begin
      let w = Bytes.sub_string buf start len in
      let id = make_id w in
      c.ic_keys.(slot) <- w;
      c.ic_ids.(slot) <- id;
      c.ic_hashes.(slot) <- h;
      c.ic_used <- c.ic_used + 1;
      if 2 * c.ic_used > c.ic_mask then icache_grow c;
      id
    end
    else if
      Array.unsafe_get c.ic_hashes slot = h
      && String.length k = len
      && bytes_eq buf start k len
    then Array.unsafe_get c.ic_ids slot
    else probe (i + 1)
  in
  probe 0

let scan_cells s ~fail ~cell ~end_row =
  let cache = icache_create () in
  let intern_str w = Ric_relational.Intern.id (Ric_relational.Value.Str w) in
  let intern_int v = Ric_relational.Intern.id (Ric_relational.Value.Int v) in
  (* skip whitespace and comments; false only at end of input *)
  let rec skip_ws () =
    if s.pos < s.len then begin
      match Bytes.unsafe_get s.buf s.pos with
      | ' ' | '\t' | '\r' ->
        s.pos <- s.pos + 1;
        s.col <- s.col + 1;
        skip_ws ()
      | '\n' ->
        s.pos <- s.pos + 1;
        s.line <- s.line + 1;
        s.col <- 1;
        skip_ws ()
      | '#' -> skip_comment ()
      | _ -> true
    end
    else if refill_keep s then skip_ws ()
    else false
  and skip_comment () =
    if s.pos < s.len then
      if Bytes.unsafe_get s.buf s.pos = '\n' then skip_ws ()
      else begin
        s.pos <- s.pos + 1;
        s.col <- s.col + 1;
        skip_comment ()
      end
    else if refill_keep s then skip_comment ()
    else false
  in
  (* the generic tokenizer handles everything rare or malformed, so
     fallback errors carry the usual messages and positions *)
  let generic_cell () =
    let p = next s in
    match p.tok with
    | IDENT w | STRING w -> cell (intern_str w)
    | INT v -> cell (intern_int v)
    | other ->
      raise
        (fail
           (Printf.sprintf "expected a value, found %s" (describe other))
           p.line p.col)
  in
  let rec ident_cell () =
    let j = ref s.pos in
    while !j < s.len && is_ident_char (Bytes.unsafe_get s.buf !j) do
      incr j
    done;
    if !j = s.len && not s.eof then
      (* token may continue past the buffer: top up and rescan *)
      if refill_keep s then ident_cell () else generic_cell ()
    else begin
      let start = s.pos in
      let len = !j - start in
      let id = icache_find_or_add cache s.buf start len intern_str in
      s.pos <- !j;
      s.col <- s.col + len;
      cell id
    end
  in
  let rec int_cell () =
    let start = s.pos in
    let j = ref s.pos in
    if Bytes.unsafe_get s.buf !j = '-' then incr j;
    let d0 = !j in
    while !j < s.len && is_digit (Bytes.unsafe_get s.buf !j) do
      incr j
    done;
    if !j = s.len && not s.eof then begin
      if refill_keep s then int_cell () else generic_cell ()
    end
    else if !j - d0 > 17 then generic_cell () (* near overflow: defer to int_of_string *)
    else begin
      let v = ref 0 in
      for k = d0 to !j - 1 do
        v := (!v * 10) + (Char.code (Bytes.unsafe_get s.buf k) - Char.code '0')
      done;
      let v = if Bytes.unsafe_get s.buf start = '-' then - !v else !v in
      s.col <- s.col + (!j - start);
      s.pos <- !j;
      cell (intern_int v)
    end
  in
  let cell_at () =
    if not (skip_ws ()) then generic_cell () (* EOF: "found end of input" *)
    else begin
      let c = Bytes.unsafe_get s.buf s.pos in
      if is_ident_start c then ident_cell ()
      else if is_digit c then int_cell ()
      else if c = '-' && ensure s 2 && is_digit (Bytes.get s.buf (s.pos + 1)) then
        int_cell ()
      else generic_cell () (* quoted strings, or a proper parse error *)
    end
  in
  let expect_rparen () =
    let p = next s in
    raise
      (fail
         (Printf.sprintf "expected %s, found %s" (describe RPAREN)
            (describe p.tok))
         p.line p.col)
  in
  let rec rows_loop () =
    if skip_ws () && Bytes.unsafe_get s.buf s.pos = '(' then begin
      s.pos <- s.pos + 1;
      s.col <- s.col + 1;
      row_loop ();
      rows_loop ()
    end
    (* row boundary that is not '(' (or EOF): the parser takes over *)
  and row_loop () =
    cell_at ();
    if not (skip_ws ()) then expect_rparen ()
    else
      match Bytes.unsafe_get s.buf s.pos with
      | ',' ->
        s.pos <- s.pos + 1;
        s.col <- s.col + 1;
        row_loop ()
      | ')' ->
        s.pos <- s.pos + 1;
        s.col <- s.col + 1;
        end_row ()
      | _ -> expect_rparen ()
  in
  rows_loop ()
