type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | TURNSTILE
  | ARROW
  | FDARROW
  | EQ
  | NEQ
  | COLON
  | PIPE
  | QMARK
  | EOF

type positioned = {
  tok : token;
  line : int;
  col : int;
}

exception Lex_error of string * int * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\'' || c = '-'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 and col = ref 1 in
  let emit tok l c = out := { tok; line = l; col = c } :: !out in
  let i = ref 0 in
  let advance () =
    (if !i < n && src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  while !i < n do
    let c = src.[!i] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      if c = '-' then advance ();
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      emit (INT (int_of_string (String.sub src start (!i - start)))) l0 c0
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      emit (IDENT (String.sub src start (!i - start))) l0 c0
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '"' then begin
          closed := true;
          advance ()
        end
        else begin
          Buffer.add_char buf src.[!i];
          advance ()
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string", l0, c0));
      emit (STRING (Buffer.contents buf)) l0 c0
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | ":-" ->
        advance ();
        advance ();
        emit TURNSTILE l0 c0
      | "=>" ->
        advance ();
        advance ();
        emit ARROW l0 c0
      | "->" ->
        advance ();
        advance ();
        emit FDARROW l0 c0
      | "!=" ->
        advance ();
        advance ();
        emit NEQ l0 c0
      | _ ->
        (match c with
         | '(' -> advance (); emit LPAREN l0 c0
         | ')' -> advance (); emit RPAREN l0 c0
         | '{' -> advance (); emit LBRACE l0 c0
         | '}' -> advance (); emit RBRACE l0 c0
         | '[' -> advance (); emit LBRACKET l0 c0
         | ']' -> advance (); emit RBRACKET l0 c0
         | ',' -> advance (); emit COMMA l0 c0
         | '.' -> advance (); emit DOT l0 c0
         | '=' -> advance (); emit EQ l0 c0
         | ':' -> advance (); emit COLON l0 c0
         | '|' -> advance (); emit PIPE l0 c0
         | '?' -> advance (); emit QMARK l0 c0
         | c -> raise (Lex_error (Printf.sprintf "illegal character %C" c, l0, c0)))
    end
  done;
  emit EOF !line !col;
  List.rev !out

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | STRING s -> Printf.sprintf "string %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | TURNSTILE -> "':-'"
  | ARROW -> "'=>'"
  | FDARROW -> "'->'"
  | EQ -> "'='"
  | NEQ -> "'!='"
  | COLON -> "':'"
  | PIPE -> "'|'"
  | QMARK -> "'?'"
  | EOF -> "end of input"
