(** Tokeniser for the [.ric] scenario format (see {!Scenario}). *)

type token =
  | IDENT of string    (** bare identifier *)
  | STRING of string   (** double-quoted *)
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | TURNSTILE          (** [:-] *)
  | ARROW              (** [=>] *)
  | FDARROW            (** [->] *)
  | EQ                 (** [=] *)
  | NEQ                (** [!=] *)
  | COLON
  | PIPE               (** [|] *)
  | QMARK              (** [?] — marks a labelled null in c-table rows *)
  | EOF

type positioned = {
  tok : token;
  line : int;
  col : int;
}

exception Lex_error of string * int * int
(** message, line, column (1-based) *)

val tokenize : string -> positioned list
(** Comments run from [#] to end of line.  @raise Lex_error on an
    illegal character or an unterminated string. *)

val is_ident_start : char -> bool
val is_ident_char : char -> bool
(** Character classes of {!IDENT} tokens; the printer uses them to
    decide whether a string value can be emitted bare. *)

val describe : token -> string
