(** Tokeniser for the [.ric] scenario format (see {!Scenario}). *)

type token =
  | IDENT of string    (** bare identifier *)
  | STRING of string   (** double-quoted *)
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | TURNSTILE          (** [:-] *)
  | ARROW              (** [=>] *)
  | FDARROW            (** [->] *)
  | EQ                 (** [=] *)
  | NEQ                (** [!=] *)
  | COLON
  | PIPE               (** [|] *)
  | QMARK              (** [?] — marks a labelled null in c-table rows *)
  | EOF

type positioned = {
  tok : token;
  line : int;
  col : int;
}

exception Lex_error of string * int * int
(** message, line, column (1-based) *)

val tokenize : string -> positioned list
(** Comments run from [#] to end of line.  @raise Lex_error on an
    illegal character or an unterminated string. *)

type source
(** A streaming token source over a refill buffer: constant memory in
    the input length, two bytes of lookahead, positions counted
    byte-for-byte exactly like {!tokenize}.  The bulk loader reads
    million-tuple [.ric] files through this without ever holding the
    file as one string. *)

val of_channel : ?chunk:int -> in_channel -> source
(** Lex straight from a channel, reading at most [chunk] (default
    64 KiB) bytes per refill. *)

val of_string : ?chunk:int -> string -> source
(** Lex an in-memory string, delivering at most [chunk] bytes per
    refill — with [chunk:1] every multi-byte token crosses a refill
    boundary, which is what the differential suite exercises. *)

val next : source -> positioned
(** The next token; {!EOF} (at the final position) forever once the
    input is exhausted.  @raise Lex_error as {!tokenize}. *)

val scan_cells :
  source ->
  fail:(string -> int -> int -> exn) ->
  cell:(int -> unit) ->
  end_row:(unit -> unit) ->
  unit
(** Bulk-scan the body of a [rows] block: a sequence of [(v, v, ...)]
    rows, stopping — without consuming the offending token — at the
    first row boundary that is not ['('] (normally the closing brace).
    Each cell is interned straight off the input buffer and handed to
    [cell] as its {!Ric_relational.Intern} id; [end_row] closes each
    row.  Equivalent to pulling tokens through {!next} and interning
    one cell at a time, but a repeated identifier costs only a hash
    and a byte compare (no string, token record, or value is
    allocated) and integers never materialise text.  On malformed
    input, raises the exception built by [fail msg line col] with the
    same message and position the token-at-a-time grammar reports;
    exceptions from [cell]/[end_row] pass through. *)

val is_ident_start : char -> bool
val is_ident_char : char -> bool
(** Character classes of {!IDENT} tokens; the printer uses them to
    decide whether a string value can be emitted bare. *)

val describe : token -> string
