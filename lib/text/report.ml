open Ric_relational
open Ric_complete

let value = function
  | Value.Int n -> Json.Int n
  | Value.Str s -> Json.Str s

let tuple t = Json.List (List.map value (Tuple.values t))

let relation r = Json.List (List.map tuple (Relation.elements r))

let database d =
  Json.Obj
    (Database.fold
       (fun name rel acc ->
         if Relation.is_empty rel then acc else (name, relation rel) :: acc)
       d []
    |> List.rev)

let rcdp_verdict = function
  | Rcdp.Complete -> Json.Obj [ ("verdict", Json.Str "complete") ]
  | Rcdp.Incomplete cex ->
    Json.Obj
      [
        ("verdict", Json.Str "incomplete");
        ("extension", database cex.Rcdp.cex_extension);
        ("new_answer", tuple cex.Rcdp.cex_answer);
        ("disjunct", Json.Int cex.Rcdp.cex_disjunct);
      ]

let rcqp_verdict = function
  | Rcqp.Nonempty { witness; reason } ->
    Json.Obj
      ([ ("verdict", Json.Str "nonempty"); ("reason", Json.Str reason) ]
      @
      match witness with
      | Some w -> [ ("witness", database w) ]
      | None -> [])
  | Rcqp.Empty { reason } ->
    Json.Obj [ ("verdict", Json.Str "empty"); ("reason", Json.Str reason) ]
  | Rcqp.Unknown { reason } ->
    Json.Obj [ ("verdict", Json.Str "unknown"); ("reason", Json.Str reason) ]

let audit_result = function
  | Guidance.Already_complete -> Json.Obj [ ("audit", Json.Str "already_complete") ]
  | Guidance.Completable { additions; completed; rounds } ->
    Json.Obj
      [
        ("audit", Json.Str "completable");
        ("collect", database additions);
        ("completed_size", Json.Int (Database.total_tuples completed));
        ("rounds", Json.Int rounds);
      ]
  | Guidance.Not_completable { reason } ->
    Json.Obj [ ("audit", Json.Str "not_completable"); ("reason", Json.Str reason) ]
  | Guidance.Inconclusive { reason } ->
    Json.Obj [ ("audit", Json.Str "inconclusive"); ("reason", Json.Str reason) ]
