(** JSON encodings of the library's verdicts and data, for the CLI's
    [--json] mode and for piping audits into other tooling. *)

open Ric_relational
open Ric_complete

val value : Value.t -> Json.t

val tuple : Tuple.t -> Json.t

val relation : Relation.t -> Json.t

val database : Database.t -> Json.t
(** [{ "Rel": [[...], ...], ... }] — empty relations omitted. *)

val rcdp_verdict : Rcdp.verdict -> Json.t

val rcqp_verdict : Rcqp.verdict -> Json.t

val audit_result : Guidance.audit_result -> Json.t
