open Ric_relational
open Ric_query
open Ric_constraints

type t = {
  db_schema : Schema.t;
  master_schema : Schema.t;
  db : Database.t;
  master : Database.t;
  queries : (string * Lang.t) list;
  ccs : (string * Containment.t) list;
  ctables : Ric_incomplete.Ctable.t list;
}

exception Parse_error of string * int * int

(* ------------------------------------------------------------------ *)
(* Parser state: a pull-based token cursor with a two-token lookahead
   window, fed either by the streaming lexer (the loader never holds
   the file or the token list in memory) or by a slurped token list
   (the legacy baseline kept for the ingest differential). *)

type state = {
  next_tok : unit -> Lexer.positioned;
  mutable la0 : Lexer.positioned option;
  mutable la1 : Lexer.positioned option;
}

let peek st =
  match st.la0 with
  | Some t -> t
  | None ->
    let t = st.next_tok () in
    st.la0 <- Some t;
    t

(* the token after {!peek} — [body_literal] disambiguates an atom from
   a bare term by it *)
let peek2 st =
  ignore (peek st);
  match st.la1 with
  | Some t -> t
  | None ->
    let t = st.next_tok () in
    st.la1 <- Some t;
    t

let advance st =
  match peek st with
  | { Lexer.tok = Lexer.EOF; _ } -> () (* EOF is sticky *)
  | _ ->
    st.la0 <- st.la1;
    st.la1 <- None

let fail_at (p : Lexer.positioned) msg = raise (Parse_error (msg, p.Lexer.line, p.Lexer.col))

let expect st tok =
  let p = peek st in
  if p.Lexer.tok = tok then advance st
  else fail_at p (Printf.sprintf "expected %s, found %s" (Lexer.describe tok) (Lexer.describe p.Lexer.tok))

let ident st =
  let p = peek st in
  match p.Lexer.tok with
  | Lexer.IDENT s ->
    advance st;
    s
  | other -> fail_at p (Printf.sprintf "expected an identifier, found %s" (Lexer.describe other))

let int_lit st =
  let p = peek st in
  match p.Lexer.tok with
  | Lexer.INT n ->
    advance st;
    n
  | other -> fail_at p (Printf.sprintf "expected an integer, found %s" (Lexer.describe other))

let comma_separated st parse_one =
  let first = parse_one st in
  let rec more acc =
    match (peek st).Lexer.tok with
    | Lexer.COMMA ->
      advance st;
      more (parse_one st :: acc)
    | _ -> List.rev acc
  in
  more [ first ]

(* ------------------------------------------------------------------ *)
(* Grammar pieces. *)

(* a value in a rows block: bare word → string, number → int *)
let row_value st =
  let p = peek st in
  match p.Lexer.tok with
  | Lexer.IDENT s ->
    advance st;
    Value.Str s
  | Lexer.STRING s ->
    advance st;
    Value.Str s
  | Lexer.INT n ->
    advance st;
    Value.Int n
  | other -> fail_at p (Printf.sprintf "expected a value, found %s" (Lexer.describe other))

(* a c-table cell: a value, or [?name] for a labelled null *)
let crow_cell st =
  match (peek st).Lexer.tok with
  | Lexer.QMARK ->
    advance st;
    Ric_incomplete.Ctable.Null (ident st)
  | _ -> Ric_incomplete.Ctable.Const (row_value st)

(* a term in a query body: identifier → variable, literal → constant *)
let term st =
  let p = peek st in
  match p.Lexer.tok with
  | Lexer.IDENT s ->
    advance st;
    Term.Var s
  | Lexer.STRING s ->
    advance st;
    Term.str s
  | Lexer.INT n ->
    advance st;
    Term.int n
  | other -> fail_at p (Printf.sprintf "expected a term, found %s" (Lexer.describe other))

let attribute st =
  let name = ident st in
  match (peek st).Lexer.tok with
  | Lexer.IDENT "in" ->
    advance st;
    expect st Lexer.LBRACE;
    let vs = comma_separated st row_value in
    expect st Lexer.RBRACE;
    let p = peek st in
    (try Schema.attribute ~dom:(Domain.finite vs) name
     with Invalid_argument m -> fail_at p m)
  | _ -> Schema.attribute name

let relation_sig st =
  let p = peek st in
  let name = ident st in
  expect st Lexer.LPAREN;
  let attrs = comma_separated st attribute in
  expect st Lexer.RPAREN;
  try Schema.relation name attrs with Invalid_argument m -> fail_at p m

type body_literal =
  | BAtom of Atom.t
  | BEq of Term.t * Term.t
  | BNeq of Term.t * Term.t

let body_literal st =
  let p = peek st in
  match p.Lexer.tok with
  | Lexer.IDENT name when (peek2 st).Lexer.tok = Lexer.LPAREN ->
    advance st;
    expect st Lexer.LPAREN;
    let args = comma_separated st term in
    expect st Lexer.RPAREN;
    BAtom (Atom.make name args)
  | _ ->
    let lhs = term st in
    let q = peek st in
    (match q.Lexer.tok with
     | Lexer.EQ ->
       advance st;
       BEq (lhs, term st)
     | Lexer.NEQ ->
       advance st;
       BNeq (lhs, term st)
     | other ->
       fail_at q (Printf.sprintf "expected '=' or '!=' after a term, found %s" (Lexer.describe other)))

let body st =
  let lits = comma_separated st body_literal in
  let atoms = List.filter_map (function BAtom a -> Some a | _ -> None) lits in
  let eqs = List.filter_map (function BEq (a, b) -> Some (a, b) | _ -> None) lits in
  let neqs = List.filter_map (function BNeq (a, b) -> Some (a, b) | _ -> None) lits in
  (atoms, eqs, neqs)

(* ------------------------------------------------------------------ *)
(* Items and the accumulating scenario. *)

(* How a [rows] block travels from the parser to [build].  The fast
   path interns every cell while parsing and packs the block into a
   columnar relation on the spot — no [Value.t list] per row, no
   per-tuple tree insertion at build time.  The slurp path keeps the
   historical value-list representation (and the historical per-tuple
   [Database.add_tuple] fold) as the ingest baseline. *)
type row_block =
  | Row_vals of Value.t list list
  | Row_packed of Relation.t

type rows_mode =
  | Fast of Lexer.source
      (* the underlying byte source, so the rows fast path can hand
         the whole block to the fused scanner in {!Lexer.scan_cells} *)
  | Slurp

type acc = {
  mutable db_rels : Schema.relation_schema list;
  mutable m_rels : Schema.relation_schema list;
  mutable rows : (string * row_block * Lexer.positioned) list;
  mutable crows : (string * Ric_incomplete.Ctable.cell list list * Lexer.positioned) list;
  mutable queries : (string * Lang.t) list;
  mutable raw_ccs : (string * Cq.t * [ `Empty | `Proj of string * int list ] * Lexer.positioned) list;
  mutable fds : (string * string * string list * string list * Lexer.positioned) list;
}

let check_atom_against acc (p : Lexer.positioned) (a : Atom.t) =
  match List.find_opt (fun (r : Schema.relation_schema) -> r.Schema.rel_name = a.Atom.rel) acc.db_rels with
  | Some r ->
    if Schema.arity r <> Atom.arity a then
      fail_at p
        (Printf.sprintf "relation %S has arity %d but the atom has %d arguments" a.Atom.rel
           (Schema.arity r) (Atom.arity a))
  | None -> fail_at p (Printf.sprintf "unknown database relation %S (declare it with 'schema' first)" a.Atom.rel)

let parse_items mode st acc =
  let rec loop () =
    let p = peek st in
    match p.Lexer.tok with
    | Lexer.EOF -> ()
    | Lexer.IDENT "schema" ->
      advance st;
      acc.db_rels <- acc.db_rels @ [ relation_sig st ];
      expect st Lexer.DOT;
      loop ()
    | Lexer.IDENT "master" ->
      advance st;
      acc.m_rels <- acc.m_rels @ [ relation_sig st ];
      expect st Lexer.DOT;
      loop ()
    | Lexer.IDENT "rows" ->
      advance st;
      let where = peek st in
      let name = ident st in
      expect st Lexer.LBRACE;
      let block =
        match mode with
        | Slurp ->
          let rows = ref [] in
          let rec read_rows () =
            match (peek st).Lexer.tok with
            | Lexer.LPAREN ->
              advance st;
              let vs = comma_separated st row_value in
              expect st Lexer.RPAREN;
              rows := vs :: !rows;
              read_rows ()
            | _ -> ()
          in
          read_rows ();
          Row_vals (List.rev !rows)
        | Fast src ->
          (* cells go straight from the input buffer into the columnar
             builder as interned ids; nothing per-token or per-row is
             boxed.  The fused scanner requires an empty lookahead
             window (its tokens are still in the byte buffer) — after
             [expect LBRACE] both slots are clear, but fall back to
             the token-at-a-time loop if that ever changes. *)
          let b = Relation.Builder.create () in
          (match (st.la0, st.la1) with
          | None, None ->
            (try
               Lexer.scan_cells src
                 ~fail:(fun msg line col -> Parse_error (msg, line, col))
                 ~cell:(Relation.Builder.add_cell b)
                 ~end_row:(fun () -> Relation.Builder.end_row b)
             with Invalid_argument m -> fail_at where m)
          | _ ->
            let rec read_cells () =
              Relation.Builder.add_cell b (Intern.id (row_value st));
              match (peek st).Lexer.tok with
              | Lexer.COMMA ->
                advance st;
                read_cells ()
              | _ -> ()
            in
            let rec read_rows () =
              match (peek st).Lexer.tok with
              | Lexer.LPAREN ->
                advance st;
                read_cells ();
                expect st Lexer.RPAREN;
                (try Relation.Builder.end_row b
                 with Invalid_argument m -> fail_at where m);
                read_rows ()
              | _ -> ()
            in
            read_rows ());
          Row_packed (Relation.Builder.finish b)
      in
      expect st Lexer.RBRACE;
      expect st Lexer.DOT;
      acc.rows <- acc.rows @ [ (name, block, where) ];
      loop ()
    | Lexer.IDENT "crows" ->
      advance st;
      let where = peek st in
      let name = ident st in
      expect st Lexer.LBRACE;
      let rows = ref [] in
      let rec read_rows () =
        match (peek st).Lexer.tok with
        | Lexer.LPAREN ->
          advance st;
          let cells = comma_separated st crow_cell in
          expect st Lexer.RPAREN;
          rows := cells :: !rows;
          read_rows ()
        | _ -> ()
      in
      read_rows ();
      expect st Lexer.RBRACE;
      expect st Lexer.DOT;
      acc.crows <- acc.crows @ [ (name, List.rev !rows, where) ];
      loop ()
    | Lexer.IDENT "query" ->
      advance st;
      let qp = peek st in
      let name = ident st in
      expect st Lexer.LPAREN;
      let head =
        match (peek st).Lexer.tok with
        | Lexer.RPAREN -> []
        | _ -> comma_separated st term
      in
      expect st Lexer.RPAREN;
      expect st Lexer.TURNSTILE;
      let disjuncts = ref [] in
      let rec read_bodies () =
        let atoms, eqs, neqs = body st in
        List.iter (check_atom_against acc qp) atoms;
        disjuncts := Cq.make ~eqs ~neqs ~head atoms :: !disjuncts;
        match (peek st).Lexer.tok with
        | Lexer.PIPE ->
          advance st;
          read_bodies ()
        | _ -> ()
      in
      read_bodies ();
      expect st Lexer.DOT;
      let q =
        match List.rev !disjuncts with
        | [ one ] -> Lang.Q_cq one
        | many ->
          (try Lang.Q_ucq (Ucq.make many)
           with Invalid_argument m -> fail_at qp m)
      in
      acc.queries <- acc.queries @ [ (name, q) ];
      loop ()
    | Lexer.IDENT "constraint" ->
      advance st;
      let cp = peek st in
      let name = ident st in
      expect st Lexer.LPAREN;
      let head =
        match (peek st).Lexer.tok with
        | Lexer.RPAREN -> []
        | _ -> comma_separated st term
      in
      expect st Lexer.RPAREN;
      expect st Lexer.TURNSTILE;
      let atoms, eqs, neqs = body st in
      expect st Lexer.ARROW;
      let target =
        let tp = peek st in
        match tp.Lexer.tok with
        | Lexer.IDENT "empty" ->
          advance st;
          `Empty
        | Lexer.IDENT mrel ->
          advance st;
          expect st Lexer.LBRACKET;
          let cols = comma_separated st int_lit in
          expect st Lexer.RBRACKET;
          `Proj (mrel, cols)
        | other -> fail_at tp (Printf.sprintf "expected 'empty' or a master relation, found %s" (Lexer.describe other))
      in
      expect st Lexer.DOT;
      List.iter (check_atom_against acc cp) atoms;
      acc.raw_ccs <- acc.raw_ccs @ [ (name, Cq.make ~eqs ~neqs ~head atoms, target, cp) ];
      loop ()
    | Lexer.IDENT "fd" ->
      advance st;
      let fp = peek st in
      let name = ident st in
      let rel = ident st in
      expect st Lexer.COLON;
      let lhs = comma_separated st ident in
      expect st Lexer.FDARROW;
      let rhs = comma_separated st ident in
      expect st Lexer.DOT;
      acc.fds <- acc.fds @ [ (name, rel, lhs, rhs, fp) ];
      loop ()
    | other -> fail_at p (Printf.sprintf "expected a declaration keyword, found %s" (Lexer.describe other))
  in
  loop ()

let build acc =
  let db_schema =
    try Schema.make acc.db_rels
    with Invalid_argument m -> raise (Parse_error (m, 0, 0))
  in
  let master_schema =
    try Schema.make acc.m_rels
    with Invalid_argument m -> raise (Parse_error (m, 0, 0))
  in
  let db = ref (Database.empty db_schema) in
  let master = ref (Database.empty master_schema) in
  List.iter
    (fun (name, block, p) ->
      let target =
        if Schema.mem db_schema name then `Db
        else if Schema.mem master_schema name then `Master
        else fail_at p (Printf.sprintf "rows for undeclared relation %S" name)
      in
      match block with
      | Row_vals rows ->
        List.iter
          (fun vs ->
            let tuple = Tuple.make vs in
            try
              match target with
              | `Db -> db := Database.add_tuple !db name tuple
              | `Master -> master := Database.add_tuple !master name tuple
            with Invalid_argument m -> fail_at p m)
          rows
      | Row_packed rel ->
        (* install the whole packed block at once: [Database.empty]
           pre-populates every declared relation as [Relation.empty],
           so the union below keeps the packed backing unless an
           earlier block already filled this relation.  Conformance is
           checked by [set_relation] — one pass, no tree inserts. *)
        let into dbref =
          let merged =
            try Relation.union (Database.relation !dbref name) rel
            with Invalid_argument m -> fail_at p m
          in
          try dbref := Database.set_relation !dbref name merged
          with Invalid_argument m -> fail_at p m
        in
        (match target with
         | `Db -> into db
         | `Master -> into master))
    acc.rows;
  let ccs =
    List.map
      (fun (name, q, target, p) ->
        let projection =
          match target with
          | `Empty -> Projection.Empty
          | `Proj (mrel, cols) ->
            if not (Schema.mem master_schema mrel) then
              fail_at p (Printf.sprintf "unknown master relation %S" mrel);
            let arity = Schema.arity (Schema.find master_schema mrel) in
            List.iter
              (fun c ->
                if c < 0 || c >= arity then
                  fail_at p (Printf.sprintf "column %d out of range for %S" c mrel))
              cols;
            Projection.proj mrel cols
        in
        try (name, Containment.make ~name (Lang.Q_cq q) projection)
        with Invalid_argument m -> fail_at p m)
      acc.raw_ccs
  in
  let fd_ccs =
    List.concat_map
      (fun (name, rel, lhs, rhs, p) ->
        if not (Schema.mem db_schema rel) then
          fail_at p (Printf.sprintf "unknown database relation %S" rel);
        let rs = Schema.find db_schema rel in
        let col a =
          try Schema.attr_index rs a
          with Not_found -> fail_at p (Printf.sprintf "relation %S has no attribute %S" rel a)
        in
        let fd = Fd.make ~name ~rel ~lhs:(List.map col lhs) ~rhs:(List.map col rhs) () in
        (* '-' keeps the derived name a single lexer identifier, so a
           printed scenario re-parses ('#' would start a comment) *)
        List.mapi
          (fun i cc -> (Printf.sprintf "%s-%d" name i, cc))
          (Translate.of_fd db_schema fd))
      acc.fds
  in
  let ctables =
    List.map
      (fun (name, rows, p) ->
        if not (Schema.mem db_schema name) then
          fail_at p (Printf.sprintf "crows for undeclared database relation %S" name);
        let arity = Schema.arity (Schema.find db_schema name) in
        let crows = List.map (fun cells -> Ric_incomplete.Ctable.row cells) rows in
        (* fold ground rows of the same relation into the c-table so
           the world semantics sees the whole relation *)
        let ground =
          match Database.relation !db name with
          | rel ->
            List.map Ric_incomplete.Ctable.ground (Relation.elements rel)
          | exception Not_found -> []
        in
        try Ric_incomplete.Ctable.make ~rel:name ~arity (ground @ crows)
        with Invalid_argument m -> fail_at p m)
      acc.crows
  in
  {
    db_schema;
    master_schema;
    db = !db;
    master = !master;
    queries = acc.queries;
    ccs = ccs @ fd_ccs;
    ctables;
  }

let parse_tokens mode next_tok =
  let st = { next_tok; la0 = None; la1 = None } in
  let acc =
    { db_rels = []; m_rels = []; rows = []; crows = []; queries = []; raw_ccs = []; fds = [] }
  in
  (try parse_items mode st acc
   with Lexer.Lex_error (m, l, c) -> raise (Parse_error (m, l, c)));
  build acc

let parse ?chunk src =
  let s = Lexer.of_string ?chunk src in
  parse_tokens (Fast s) (fun () -> Lexer.next s)

(* The pre-streaming loader, verbatim in behaviour: whole-input token
   list, value-list rows, per-tuple [Database.add_tuple] folds.  Kept
   as the baseline the ingest bench and the loader differential
   compare the fast path against. *)
let parse_slurp src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Lex_error (m, l, c) -> raise (Parse_error (m, l, c))
  in
  let cursor = ref toks in
  let next_tok () =
    match !cursor with
    | [ last ] -> last (* the final EOF, held forever *)
    | t :: rest ->
      cursor := rest;
      t
    | [] -> assert false (* tokenize always ends with EOF *)
  in
  parse_tokens Slurp next_tok

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let s = Lexer.of_channel ic in
      parse_tokens (Fast s) (fun () -> Lexer.next s))

let all_ccs (t : t) = List.map snd t.ccs

let find_query (t : t) name = List.assoc_opt name t.queries

let as_cdatabase (t : t) =
  let covered = List.map (fun (c : Ric_incomplete.Ctable.t) -> c.Ric_incomplete.Ctable.rel) t.ctables in
  let ground_tables =
    Database.fold
      (fun name rel acc ->
        if List.mem name covered || Relation.is_empty rel then acc
        else
          Ric_incomplete.Ctable.make ~rel:name
            ~arity:(Schema.arity (Schema.find t.db_schema name))
            (List.map Ric_incomplete.Ctable.ground (Relation.elements rel))
          :: acc)
      t.db []
  in
  Ric_incomplete.Cdatabase.make t.db_schema (t.ctables @ ground_tables)

(* ------------------------------------------------------------------ *)
(* Printing back. *)

(* only strings that lex back as a single identifier may print bare;
   anything else ("01", "b c", ...) needs quotes to survive a reprint *)
let bare_ident s =
  s <> ""
  && Lexer.is_ident_start s.[0]
  && String.for_all Lexer.is_ident_char s

let pp_value ppf = function
  | Value.Int n -> Format.fprintf ppf "%d" n
  | Value.Str s when bare_ident s -> Format.fprintf ppf "%s" s
  | Value.Str s -> Format.fprintf ppf "\"%s\"" s

let pp_attr ppf (a : Schema.attribute) =
  match Domain.values a.Schema.attr_dom with
  | None -> Format.fprintf ppf "%s" a.Schema.attr_name
  | Some vs ->
    Format.fprintf ppf "%s in {%a}" a.Schema.attr_name
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_value)
      vs

let pp_sig keyword ppf (r : Schema.relation_schema) =
  Format.fprintf ppf "%s %s(%a).@." keyword r.Schema.rel_name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_attr)
    r.Schema.attrs

let pp_rows ppf name rel =
  if not (Relation.is_empty rel) then begin
    Format.fprintf ppf "rows %s {" name;
    Relation.iter
      (fun t ->
        Format.fprintf ppf " (%a)"
          (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_value)
          (Tuple.values t))
      rel;
    Format.fprintf ppf " }.@."
  end

let pp_term ppf = function
  | Term.Var x -> Format.fprintf ppf "%s" x
  | Term.Const (Value.Int n) -> Format.fprintf ppf "%d" n
  | Term.Const (Value.Str s) -> Format.fprintf ppf "%S" s

let pp_body ppf (q : Cq.t) =
  let items =
    List.map (fun (a : Atom.t) ppf ->
        Format.fprintf ppf "%s(%a)" a.Atom.rel
          (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_term)
          a.Atom.args)
      q.Cq.atoms
    @ List.map (fun (a, b) ppf -> Format.fprintf ppf "%a = %a" pp_term a pp_term b) q.Cq.eqs
    @ List.map (fun (a, b) ppf -> Format.fprintf ppf "%a != %a" pp_term a pp_term b) q.Cq.neqs
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    (fun ppf f -> f ppf)
    ppf items

let pp_head ppf (q : Cq.t) =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_term ppf q.Cq.head

let pp_named_constraint ppf (name, cc) =
  match cc.Containment.lhs with
  | Lang.Q_cq q ->
    let target ppf =
      match cc.Containment.rhs with
      | Projection.Empty -> Format.fprintf ppf "empty"
      | Projection.Proj { mrel; cols } ->
        Format.fprintf ppf "%s[%a]" mrel
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
             Format.pp_print_int)
          cols
    in
    Format.fprintf ppf "constraint %s(%a) :- %a => %t.@." name pp_head q
      pp_body q target
  | _ -> ()

let with_ccs t ccs = { t with ccs }

let pp ppf (t : t) =
  List.iter (pp_sig "schema" ppf) (Schema.relations t.db_schema);
  List.iter (pp_sig "master" ppf) (Schema.relations t.master_schema);
  Database.fold (fun name rel () -> pp_rows ppf name rel) t.db ();
  Database.fold (fun name rel () -> pp_rows ppf name rel) t.master ();
  List.iter
    (fun (c : Ric_incomplete.Ctable.t) ->
      let has_null (r : Ric_incomplete.Ctable.row) =
        List.exists
          (function
            | Ric_incomplete.Ctable.Null _ -> true
            | Ric_incomplete.Ctable.Const _ -> false)
          r.Ric_incomplete.Ctable.cells
      in
      let null_rows = List.filter has_null c.Ric_incomplete.Ctable.rows in
      if null_rows <> [] then begin
        Format.fprintf ppf "crows %s {" c.Ric_incomplete.Ctable.rel;
        List.iter
          (fun (r : Ric_incomplete.Ctable.row) ->
            Format.fprintf ppf " (%a)"
              (Format.pp_print_list
                 ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                 (fun ppf -> function
                   | Ric_incomplete.Ctable.Const v -> pp_value ppf v
                   | Ric_incomplete.Ctable.Null n -> Format.fprintf ppf "?%s" n))
              r.Ric_incomplete.Ctable.cells)
          null_rows;
        Format.fprintf ppf " }.@."
      end)
    t.ctables;
  List.iter
    (fun (name, q) ->
      match q with
      | Lang.Q_cq cq ->
        Format.fprintf ppf "query %s(%a) :- %a.@." name pp_head cq pp_body cq
      | Lang.Q_ucq (first :: _ as disjuncts) ->
        Format.fprintf ppf "query %s(%a) :- %a.@." name pp_head first
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
             pp_body)
          disjuncts
      | _ -> ())
    t.queries;
  List.iter (pp_named_constraint ppf) t.ccs

(* [pp] already streams — it never materialises the scenario as one
   string — so writing to a channel-backed formatter keeps memory
   bounded by one rows line regardless of cardinality. *)
let output oc t =
  let ppf = Format.formatter_of_out_channel oc in
  pp ppf t;
  Format.pp_print_flush ppf ()
