(** The [.ric] scenario format: a small text format describing a
    complete relative-information-completeness instance — schemas,
    master data, a partially closed database, containment constraints
    and queries — so the CLI and tests can run on external files.

    {2 Syntax}

    {v
    # comments run to end of line
    schema Supt(eid, dept, cid).
    schema Flag(node, bit in {0, 1}).      # finite attribute domain
    master DCust(cid, name).

    rows Supt  { (e0, d0, c0) (e0, d0, c1) }.
    rows DCust { (c0, alice) (c1, bob) }.   # bare words are strings,
                                            # bare numbers integers

    # conjunctive queries: identifiers are variables, quoted strings
    # and numbers are constants; '|' separates UCQ disjuncts
    query Q2(c) :- Supt("e0", d, c).
    query Q5(c) :- Supt("e0", d, c) | Supt("e1", d, c).

    # containment constraints: body as in queries, then a projection
    # target over the master data (or `empty`)
    constraint Bound(c) :- Supt(e, d, c) => DCust[0].
    constraint NoLoop(e) :- Supt(e, d, e2), e = e2 => empty.

    # functional dependencies by attribute name (translated to
    # containment constraints via Proposition 2.1)
    fd Key Supt: eid -> dept, cid.

    # rows with missing values: ?name is a labelled null
    crows Supt { (e0, d0, ?who) }.
    v}

    Declaration order: a relation must be declared before rows,
    queries or constraints mention it. *)

open Ric_relational
open Ric_query
open Ric_constraints

type t = {
  db_schema : Schema.t;
  master_schema : Schema.t;
  db : Database.t;
  master : Database.t;
  queries : (string * Lang.t) list;
  ccs : (string * Containment.t) list;
  ctables : Ric_incomplete.Ctable.t list;
      (** rows with labelled nulls, declared with [crows] — the
          Section 5 missing-values extension.  [crows R { (e0, ?who) }.]
          adds a c-table row whose second cell is the null [who].
          Ground [rows] of the same relation are folded into its
          c-table when one exists. *)
}

exception Parse_error of string * int * int
(** message, line, column *)

val parse : ?chunk:int -> string -> t
(** @raise Parse_error on malformed input (with position), including
    semantic errors such as unknown relations or arity mismatches.
    Runs the streaming columnar loader: [rows] cells are interned as
    they are lexed and packed into {!Ric_relational.Relation} arrays
    without per-tuple tree insertion.  [chunk] caps the refill size
    (default 64 KiB) — the chunk-boundary differential drives it down
    to one byte to force every token split. *)

val parse_slurp : string -> t
(** The pre-streaming loader — whole-input token list, per-tuple
    [Database.add_tuple] folds — kept as the ingest baseline.  Accepts
    exactly the language of {!parse} and builds an equal scenario; the
    loader differential and [bench load] hold it to that. *)

val load : string -> t
(** {!parse} a file through the streaming lexer: memory stays bounded
    by the refill chunk and the packed data, never the file size.
    @raise Sys_error on IO failure. *)

val all_ccs : t -> Containment.t list

val find_query : t -> string -> Lang.t option

val as_cdatabase : t -> Ric_incomplete.Cdatabase.t
(** The database together with its c-table rows, as a c-database for
    the {!Ric_incomplete} world-wise analyses. *)

val pp : Format.formatter -> t -> unit
(** Print a scenario back in the concrete syntax (round-trips through
    {!parse} — property-tested).  Streams: nothing larger than one
    row is ever materialised, whatever the sink. *)

val output : out_channel -> t -> unit
(** {!pp} to a channel and flush — the bounded-memory emission path
    [ric gen] uses for million-tuple files. *)

val pp_named_constraint :
  Format.formatter -> string * Containment.t -> unit
(** One [constraint Name(head) :- body => target.] line, as {!pp}
    prints it — the emission format of the mined-constraint block.
    Only CQ left-hand sides have concrete syntax; anything else prints
    nothing. *)

val with_ccs : t -> (string * Containment.t) list -> t
(** The scenario with its constraint set replaced — e.g. by a mined
    one, so the result can be printed, re-parsed and re-decided. *)
