type span = {
  id : int;
  parent : int;
  name : string;
  start_us : int;
  dur_us : int;
  attrs : (string * Json.t) list;
}

type load_result = {
  spans : span list;
  malformed : int;
}

let int_field fields k =
  match List.assoc_opt k fields with Some (Json.Int n) -> Some n | _ -> None

let span_of_json = function
  | Json.Obj fields ->
    (match
       ( int_field fields "id",
         int_field fields "start_us",
         int_field fields "dur_us",
         List.assoc_opt "name" fields )
     with
     | Some id, Some start_us, Some dur_us, Some (Json.Str name) ->
       let attrs =
         match List.assoc_opt "attrs" fields with
         | Some (Json.Obj a) -> a
         | _ -> []
       in
       Some
         {
           id;
           parent = Option.value ~default:0 (int_field fields "parent");
           name;
           start_us;
           dur_us;
           attrs;
         }
     | _ -> None)
  | _ -> None

let load path =
  let ic = open_in path in
  let spans = ref [] and malformed = ref 0 in
  (try
     let rec go () =
       match input_line ic with
       | exception End_of_file -> ()
       | line ->
         (if String.trim line <> "" then
            match Json.of_string_result line with
            | Error _ -> incr malformed
            | Ok json ->
              (match span_of_json json with
               | Some sp -> spans := sp :: !spans
               | None -> incr malformed));
         go ()
     in
     go ()
   with e ->
     close_in_noerr ic;
     raise e);
  close_in_noerr ic;
  { spans = List.rev !spans; malformed = !malformed }

(* Correlation filter: the spans stamped with a req_id plus their
   whole subtrees.  Only the outer spans carry the attribute (the
   server stamps "server.op", the deciders their roots), so keeping a
   kept span's descendants is what makes the filter show the full
   story of one request. *)
let filter_req_id rid spans =
  let module IS = Set.Make (Int) in
  let stamped sp =
    match List.assoc_opt "req_id" sp.attrs with
    | Some (Json.Str s) -> s = rid
    | _ -> false
  in
  let keep =
    ref
      (List.filter stamped spans
      |> List.map (fun sp -> sp.id)
      |> IS.of_list)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun sp ->
        if
          (not (IS.mem sp.id !keep))
          && sp.parent <> sp.id
          && IS.mem sp.parent !keep
        then begin
          keep := IS.add sp.id !keep;
          changed := true
        end)
      spans
  done;
  List.filter (fun sp -> IS.mem sp.id !keep) spans

type phase_row = {
  ph_name : string;
  ph_count : int;
  ph_total_us : int;
  ph_max_us : int;
  ph_steps : int;
}

type mode_row = {
  md_mode : string;
  md_count : int;
  md_total_us : int;
  md_steps : int;
}

type summary = {
  total_spans : int;
  roots : int;
  wall_us : int;
  slowest : span list;
  phases : phase_row list;
  modes : mode_row list;
}

let steps_of sp = Option.value ~default:0 (int_field sp.attrs "steps")

let mode_of sp =
  match List.assoc_opt "mode" sp.attrs with Some (Json.Str m) -> Some m | _ -> None

let summarize ?(top = 10) spans =
  let by_dur =
    List.stable_sort (fun a b -> compare b.dur_us a.dur_us) spans
  in
  let slowest = List.filteri (fun i _ -> i < top) by_dur in
  let phase_tbl = Hashtbl.create 16 in
  let mode_tbl = Hashtbl.create 4 in
  List.iter
    (fun sp ->
      let row =
        match Hashtbl.find_opt phase_tbl sp.name with
        | Some r -> r
        | None ->
          { ph_name = sp.name; ph_count = 0; ph_total_us = 0; ph_max_us = 0; ph_steps = 0 }
      in
      Hashtbl.replace phase_tbl sp.name
        {
          row with
          ph_count = row.ph_count + 1;
          ph_total_us = row.ph_total_us + sp.dur_us;
          ph_max_us = max row.ph_max_us sp.dur_us;
          ph_steps = row.ph_steps + steps_of sp;
        };
      match mode_of sp with
      | None -> ()
      | Some m ->
        let row =
          match Hashtbl.find_opt mode_tbl m with
          | Some r -> r
          | None -> { md_mode = m; md_count = 0; md_total_us = 0; md_steps = 0 }
        in
        Hashtbl.replace mode_tbl m
          {
            row with
            md_count = row.md_count + 1;
            md_total_us = row.md_total_us + sp.dur_us;
            md_steps = row.md_steps + steps_of sp;
          })
    spans;
  let phases =
    Hashtbl.fold (fun _ r acc -> r :: acc) phase_tbl []
    |> List.sort (fun a b -> compare b.ph_total_us a.ph_total_us)
  in
  let modes =
    Hashtbl.fold (fun _ r acc -> r :: acc) mode_tbl []
    |> List.sort (fun a b -> compare b.md_total_us a.md_total_us)
  in
  let ids = List.map (fun sp -> sp.id) spans in
  let roots =
    List.length
      (List.filter (fun sp -> sp.parent = 0 || not (List.mem sp.parent ids)) spans)
  in
  let wall_us =
    match spans with
    | [] -> 0
    | sp0 :: _ ->
      let lo =
        List.fold_left (fun a sp -> min a sp.start_us) sp0.start_us spans
      in
      let hi =
        List.fold_left
          (fun a sp -> max a (sp.start_us + sp.dur_us))
          (sp0.start_us + sp0.dur_us) spans
      in
      hi - lo
  in
  { total_spans = List.length spans; roots; wall_us; slowest; phases; modes }

let children spans sp =
  List.filter (fun c -> c.parent = sp.id && c.id <> sp.id) spans
  |> List.sort (fun a b -> compare a.start_us b.start_us)

let ms us = float_of_int us /. 1000.

let rate_per_s ~steps ~us =
  if us <= 0 then 0. else float_of_int steps *. 1e6 /. float_of_int us

let pp_attrs ppf attrs =
  let interesting =
    List.filter_map
      (fun (k, v) ->
        match (k, v) with
        | "steps", _ -> None (* printed in its own column *)
        | _, Json.Str s -> Some (Printf.sprintf "%s=%s" k s)
        | _, Json.Int n -> Some (Printf.sprintf "%s=%d" k n)
        | _, Json.Bool b -> Some (Printf.sprintf "%s=%b" k b)
        | _ -> None)
      attrs
  in
  if interesting <> [] then
    Format.fprintf ppf " [%s]" (String.concat " " interesting)

let rec pp_tree ppf spans ~depth ~seen sp =
  if depth < 16 && not (List.mem sp.id seen) then begin
    Format.fprintf ppf "%s%s %.3fms" (String.make (2 * depth) ' ') sp.name
      (ms sp.dur_us);
    (match steps_of sp with 0 -> () | n -> Format.fprintf ppf " steps=%d" n);
    pp_attrs ppf sp.attrs;
    Format.pp_print_newline ppf ();
    List.iter
      (pp_tree ppf spans ~depth:(depth + 1) ~seen:(sp.id :: seen))
      (children spans sp)
  end

let pp ppf ~malformed spans summary =
  Format.fprintf ppf "spans: %d  roots: %d  wall: %.3fms" summary.total_spans
    summary.roots (ms summary.wall_us);
  if malformed > 0 then Format.fprintf ppf "  (malformed lines: %d)" malformed;
  Format.pp_print_newline ppf ();
  if summary.slowest <> [] then begin
    Format.fprintf ppf "@.slowest spans@.";
    List.iter
      (fun sp ->
        Format.fprintf ppf "  %10.3fms  %-22s" (ms sp.dur_us) sp.name;
        (match steps_of sp with 0 -> () | n -> Format.fprintf ppf " steps=%d" n);
        pp_attrs ppf sp.attrs;
        Format.pp_print_newline ppf ())
      summary.slowest
  end;
  if summary.phases <> [] then begin
    Format.fprintf ppf "@.per-phase step rates@.";
    Format.fprintf ppf "  %-22s %7s %12s %12s %12s@." "phase" "count" "total_ms"
      "steps" "steps/s";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-22s %7d %12.3f %12d %12.0f@." r.ph_name r.ph_count
          (ms r.ph_total_us) r.ph_steps
          (rate_per_s ~steps:r.ph_steps ~us:r.ph_total_us))
      summary.phases
  end;
  if summary.modes <> [] then begin
    Format.fprintf ppf "@.per-mode breakdown@.";
    Format.fprintf ppf "  %-8s %7s %12s %12s %12s@." "mode" "spans" "total_ms"
      "steps" "steps/s";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-8s %7d %12.3f %12d %12.0f@." r.md_mode r.md_count
          (ms r.md_total_us) r.md_steps
          (rate_per_s ~steps:r.md_steps ~us:r.md_total_us))
      summary.modes
  end;
  (* the slowest root's tree: how one decide call spent its time *)
  let ids = List.map (fun sp -> sp.id) spans in
  let root_spans =
    List.filter (fun sp -> sp.parent = 0 || not (List.mem sp.parent ids)) spans
    |> List.sort (fun a b -> compare b.dur_us a.dur_us)
  in
  match root_spans with
  | [] -> ()
  | root :: _ ->
    Format.fprintf ppf "@.slowest call tree@.";
    pp_tree ppf spans ~depth:1 ~seen:[] root
