(** Offline reconstruction of [Ric_obs.Trace] JSONL files.

    [ric trace summarize FILE] loads the span events a traced run
    wrote, rebuilds the parent/child tree, and reports the top-N
    slowest spans, per-phase totals and step rates, the per-mode
    breakdown, and the slowest root's span tree. *)

type span = {
  id : int;
  parent : int;  (** 0 = root *)
  name : string;
  start_us : int;
  dur_us : int;
  attrs : (string * Json.t) list;
}

type load_result = {
  spans : span list;  (** in file order *)
  malformed : int;  (** lines that failed to parse (e.g. a torn tail) *)
}

val load : string -> load_result
(** @raise Sys_error when the file cannot be read. *)

val filter_req_id : string -> span list -> span list
(** The spans whose ["req_id"] attribute equals the given id, plus all
    their descendants — one request's complete span subtree, suitable
    for feeding back into {!summarize}.  Empty when the id never
    appears (wrong id, or the run was not traced). *)

type phase_row = {
  ph_name : string;
  ph_count : int;
  ph_total_us : int;
  ph_max_us : int;
  ph_steps : int;  (** summed ["steps"] attributes *)
}

type mode_row = {
  md_mode : string;  (** the ["mode"] attribute *)
  md_count : int;
  md_total_us : int;
  md_steps : int;
}

type summary = {
  total_spans : int;
  roots : int;
  wall_us : int;  (** latest end minus earliest start *)
  slowest : span list;  (** top N by duration, longest first *)
  phases : phase_row list;  (** per span name, by total time desc *)
  modes : mode_row list;  (** by total time desc; spans without a mode are absent *)
}

val summarize : ?top:int -> span list -> summary
(** [top] bounds [slowest]; default 10. *)

val children : span list -> span -> span list
(** Direct children of a span, by start time. *)

val pp : Format.formatter -> malformed:int -> span list -> summary -> unit
(** The human-readable report, including the slowest root's tree. *)
