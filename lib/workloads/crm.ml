open Ric_relational
open Ric_query
open Ric_constraints

let db_schema =
  Schema.make
    [
      Schema.relation "Cust"
        [
          Schema.attribute "cid";
          Schema.attribute "name";
          Schema.attribute "cc";
          Schema.attribute "ac";
          Schema.attribute "phn";
        ];
      Schema.relation "Supt"
        [ Schema.attribute "eid"; Schema.attribute "dept"; Schema.attribute "cid" ];
      Schema.relation "Manage" [ Schema.attribute "eid1"; Schema.attribute "eid2" ];
    ]

let master_schema =
  Schema.make
    [
      Schema.relation "DCust"
        [
          Schema.attribute "cid";
          Schema.attribute "name";
          Schema.attribute "ac";
          Schema.attribute "phn";
        ];
      Schema.relation "Managem" [ Schema.attribute "eid1"; Schema.attribute "eid2" ];
    ]

let domestic = Value.Str "01"

(* A tiny deterministic LCG so instances are reproducible without the
   global Random state. *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    !state mod bound

let customer_tuple i =
  let ac = if i mod 3 = 0 then "908" else "212" in
  Tuple.of_strs
    [ Printf.sprintf "c%d" i; Printf.sprintf "name%d" i; ac; Printf.sprintf "555-%04d" i ]

let master ?seed:(_ = 0) ~customers ~managers () =
  let dcust = Relation.of_tuples (List.init customers customer_tuple) in
  let managem =
    Relation.of_tuples (List.map (fun (a, b) -> Tuple.of_strs [ a; b ]) managers)
  in
  Database.of_list master_schema [ ("DCust", dcust); ("Managem", managem) ]

let db ?(seed = 0) ~master ~keep ~supported_by () =
  let rand = lcg seed in
  let dcust = Database.relation master "DCust" in
  let cust =
    Relation.fold
      (fun t acc ->
        if float_of_int (rand 1000) < keep *. 1000. then
          let vals = Tuple.values t in
          match vals with
          | [ cid; name; ac; phn ] ->
            Relation.add (Tuple.make [ cid; name; domestic; ac; phn ]) acc
          | _ -> acc
        else acc)
      dcust Relation.empty
  in
  let cust_ids = Relation.elements (Relation.project [ 0 ] cust) in
  let supt =
    List.concat_map
      (fun (eid, depts) ->
        match depts with
        | [] -> []
        | _ ->
          List.mapi
            (fun i cid_t ->
              let dept = List.nth depts (i mod List.length depts) in
              Tuple.make [ Value.Str eid; Value.Str dept; Tuple.get cid_t 0 ])
            cust_ids)
      supported_by
    |> Relation.of_tuples
  in
  let managem = Database.relation master "Managem" in
  Database.of_list db_schema [ ("Cust", cust); ("Supt", supt); ("Manage", managem) ]

let add_international dbase pairs =
  List.fold_left
    (fun d (cid, name) ->
      Database.add_tuple d "Cust"
        (Tuple.make
           [ Value.Str cid; Value.Str name; Value.Str "44"; Value.Str "20"; Value.Str "n/a" ]))
    dbase pairs

(* ------------------------------------------------------------------ *)
(* Containment constraints. *)

let v = Term.var
let s = Term.str

let cc_supported_domestic =
  (* q(c) = ∃n,cc,a,p,e,d (Cust(c,n,cc,a,p) ∧ Supt(e,d,c) ∧ cc = '01')
     ⊆ π_cid(DCust) *)
  let q =
    Cq.make
      ~eqs:[ (v "cc", Term.const domestic) ]
      ~head:[ v "c" ]
      [
        Atom.make "Cust" [ v "c"; v "n"; v "cc"; v "a"; v "p" ];
        Atom.make "Supt" [ v "e"; v "d"; v "c" ];
      ]
  in
  Containment.make ~name:"phi0" (Lang.Q_cq q) (Projection.proj "DCust" [ 0 ])

let cc_domestic_customers =
  (* Domestic Cust rows are bounded by DCust on (cid, name, ac, phn). *)
  let q =
    Cq.make
      ~head:[ v "c"; v "n"; v "a"; v "p" ]
      [ Atom.make "Cust" [ v "c"; v "n"; Term.const domestic; v "a"; v "p" ] ]
  in
  Containment.make ~name:"cc_dom_cust" (Lang.Q_cq q) (Projection.proj "DCust" [ 0; 1; 2; 3 ])

let cc_support_load k =
  (* φ1: no employee supports more than k customers — k+1 Supt atoms
     with one employee and pairwise distinct customers is forbidden. *)
  let atoms =
    List.init (k + 1) (fun i ->
        Atom.make "Supt" [ v "e"; v (Printf.sprintf "d%d" i); v (Printf.sprintf "c%d" i) ])
  in
  let neqs =
    List.concat
      (List.init (k + 1) (fun i ->
           List.filter_map
             (fun j ->
               if j > i then Some (v (Printf.sprintf "c%d" i), v (Printf.sprintf "c%d" j))
               else None)
             (List.init (k + 1) (fun j -> j))))
  in
  let head = v "e" :: List.init (k + 1) (fun i -> v (Printf.sprintf "c%d" i)) in
  Containment.make
    ~name:(Printf.sprintf "phi1_k%d" k)
    (Lang.Q_cq (Cq.make ~neqs ~head atoms))
    Projection.Empty

let fd_supt_full = Fd.make ~name:"fd_eid_dept_cid" ~rel:"Supt" ~lhs:[ 0 ] ~rhs:[ 1; 2 ] ()
let fd_supt_dept = Fd.make ~name:"fd_eid_dept" ~rel:"Supt" ~lhs:[ 0 ] ~rhs:[ 1 ] ()

let ccs_fd_supt = Translate.of_fd db_schema fd_supt_full
let ccs_fd_dept = Translate.of_fd db_schema fd_supt_dept

(* ------------------------------------------------------------------ *)
(* Queries. *)

let q0 =
  Cq.make
    ~head:[ v "c"; v "n" ]
    [ Atom.make "Cust" [ v "c"; v "n"; Term.const domestic; s "908"; v "p" ] ]

let q0_all_customers =
  Cq.make
    ~head:[ v "c"; v "n" ]
    [ Atom.make "Cust" [ v "c"; v "n"; v "cc"; v "a"; v "p" ] ]

let q1 =
  Cq.make
    ~head:[ v "c" ]
    [
      Atom.make "Cust" [ v "c"; v "n"; Term.const domestic; s "908"; v "p" ];
      Atom.make "Supt" [ s "e0"; v "d"; v "c" ];
    ]

let q2 = Cq.make ~head:[ v "c" ] [ Atom.make "Supt" [ s "e0"; v "d"; v "c" ] ]

let q2_tuples =
  Cq.make ~head:[ s "e0"; v "d"; v "c" ] [ Atom.make "Supt" [ s "e0"; v "d"; v "c" ] ]

let q4 =
  Cq.make ~head:[ s "e0"; s "d0"; v "c" ] [ Atom.make "Supt" [ s "e0"; s "d0"; v "c" ] ]

let q3_fp =
  Datalog.program
    [
      Datalog.rule (Atom.make "tc" [ v "x"; v "y" ]) [ Datalog.Pos (Atom.make "Manage" [ v "x"; v "y" ]) ];
      Datalog.rule
        (Atom.make "tc" [ v "x"; v "y" ])
        [ Datalog.Pos (Atom.make "Manage" [ v "x"; v "z" ]); Datalog.Pos (Atom.make "tc" [ v "z"; v "y" ]) ];
      Datalog.rule (Atom.make "above_e0" [ v "x" ]) [ Datalog.Pos (Atom.make "tc" [ v "x"; s "e0" ]) ];
    ]
    ~output:"above_e0"

let q3_cq = Cq.make ~head:[ v "x" ] [ Atom.make "Manage" [ v "x"; s "e0" ] ]
