(** The paper's running example (Examples 1.1, 2.1, 2.2 and the
    Section 2.3 CRM walkthrough): a company with master data [DCust]
    (all domestic customers) and [Managem] (the reporting hierarchy),
    and transactional relations [Cust], [Supt] and [Manage] that are
    only partially closed. *)

open Ric_relational
open Ric_query
open Ric_constraints

val db_schema : Schema.t
(** [Cust(cid, name, cc, ac, phn)], [Supt(eid, dept, cid)],
    [Manage(eid1, eid2)]. *)

val master_schema : Schema.t
(** [DCust(cid, name, ac, phn)], [Managem(eid1, eid2)]. *)

val domestic : Value.t
(** Country code ['01']. *)

(** {2 Instance generators}

    Deterministic in [seed]; customer [i] is named ["c<i>"], has area
    code 908 when [i mod 3 = 0] and a phone number derived from [i]. *)

val master : ?seed:int -> customers:int -> managers:(string * string) list -> unit -> Database.t
(** Master data with [customers] domestic customers and the given
    reporting edges. *)

val db :
  ?seed:int ->
  master:Database.t ->
  keep:float ->
  supported_by:(string * string list) list ->
  unit ->
  Database.t
(** A transactional database: a [keep]-fraction of the master
    customers copied into [Cust] (simulating missing rows), plus
    [Supt] tuples [(eid, dept, cid)] from [supported_by] —
    [(eid, depts)] assigns employee [eid] round-robin over [depts] to
    the customers present in [Cust]. *)

val add_international : Database.t -> (string * string) list -> Database.t
(** Add international customers (country code ['44']) — the part of
    [Cust] no master data bounds. *)

(** {2 Containment constraints} *)

val cc_supported_domestic : Containment.t
(** φ0 of Example 2.1: supported domestic customers are bounded by
    [DCust]. *)

val cc_domestic_customers : Containment.t
(** Domestic rows of [Cust] (cid, name, ac, phn) are bounded by
    [DCust] — the CC behind the Section 2.3 audit of query [Q0]. *)

val cc_support_load : int -> Containment.t
(** φ1 of Example 2.1: an employee supports at most [k] customers. *)

val ccs_fd_supt : Containment.t list
(** The FD [eid → dept, cid] on [Supt] (Example 1.1), as CCs via
    Proposition 2.1. *)

val ccs_fd_dept : Containment.t list
(** The FD [eid → dept] on [Supt] (Example 4.1's φ3). *)

(** {2 Queries} *)

val q0 : Cq.t
(** Section 2.3's [Q0]: domestic customers with area code 908 —
    head [(cid, name)]. *)

val q0_all_customers : Cq.t
(** Section 2.3's [Q′0]: every customer, domestic or international. *)

val q1 : Cq.t
(** Example 1.1's [Q1]: area-908 domestic customers supported by
    employee [e0]. *)

val q2 : Cq.t
(** Example 1.1's [Q2]: the customers supported by employee [e0] —
    head [(cid)]. *)

val q2_tuples : Cq.t
(** Example 4.1's reading of [Q2]: the full [Supt] tuples of employee
    [e0] — head [('e0', dept, cid)]. *)

val q4 : Cq.t
(** Example 4.1's [Q4]: [Supt] tuples with [eid = 'e0'] and
    [dept = 'd0']. *)

val q3_fp : Datalog.program
(** Example 1.1's [Q3] in FP: everyone above [e0] in the management
    hierarchy (transitive closure of [Manage]). *)

val q3_cq : Cq.t
(** [Q3] truncated to CQ: direct managers of [e0] only. *)
