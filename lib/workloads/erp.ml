open Ric_relational
open Ric_query
open Ric_constraints

let db_schema =
  Schema.make
    [
      Schema.relation "Assign"
        [ Schema.attribute "eid"; Schema.attribute "pid"; Schema.attribute "role" ];
      Schema.relation "Timesheet"
        [ Schema.attribute "eid"; Schema.attribute "pid"; Schema.attribute "hours" ];
    ]

let master_schema =
  Schema.make
    [
      Schema.relation "EmpDir" [ Schema.attribute "eid"; Schema.attribute "dept" ];
      Schema.relation "ProjReg" [ Schema.attribute "pid"; Schema.attribute "owner" ];
    ]

let master ~employees ~projects =
  Database.of_list master_schema
    [
      ("EmpDir", Relation.of_tuples (List.map (fun (e, d) -> Tuple.of_strs [ e; d ]) employees));
      ("ProjReg", Relation.of_tuples (List.map (fun (p, o) -> Tuple.of_strs [ p; o ]) projects));
    ]

let db ~assignments ~timesheets =
  Database.of_list db_schema
    [
      ( "Assign",
        Relation.of_tuples
          (List.map (fun (e, p, r) -> Tuple.of_strs [ e; p; r ]) assignments) );
      ( "Timesheet",
        Relation.of_tuples
          (List.map
             (fun (e, p, h) -> Tuple.make [ Value.str e; Value.str p; Value.int h ])
             timesheets) );
    ]

let v = Term.var

let cc_assigned_employees =
  Containment.make ~name:"assigned_employees"
    (Lang.Q_cq (Cq.make ~head:[ v "e" ] [ Atom.make "Assign" [ v "e"; v "p"; v "r" ] ]))
    (Projection.proj "EmpDir" [ 0 ])

let cc_assigned_projects =
  Containment.make ~name:"assigned_projects"
    (Lang.Q_cq (Cq.make ~head:[ v "p" ] [ Atom.make "Assign" [ v "e"; v "p"; v "r" ] ]))
    (Projection.proj "ProjReg" [ 0 ])

let cc_one_role =
  Translate.of_fd db_schema
    (Fd.make ~name:"one_role" ~rel:"Assign" ~lhs:[ 0; 1 ] ~rhs:[ 2 ] ())

let ccs = [ cc_assigned_employees; cc_assigned_projects ] @ cc_one_role

let q_staff pid =
  Cq.make ~head:[ v "e" ] [ Atom.make "Assign" [ v "e"; Term.str pid; v "r" ] ]

let q_projects_of eid =
  Cq.make ~head:[ v "p" ] [ Atom.make "Assign" [ Term.str eid; v "p"; v "r" ] ]

let q_role eid pid =
  Cq.make ~head:[ v "r" ] [ Atom.make "Assign" [ Term.str eid; Term.str pid; v "r" ] ]

let q_billed pid =
  Cq.make ~head:[ v "e"; v "h" ] [ Atom.make "Timesheet" [ v "e"; Term.str pid; v "h" ] ]
