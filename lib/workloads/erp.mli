(** An ERP (Enterprise Resource Planning) workload — the second MDM
    domain the paper names alongside CRM (Section 2.3): employees,
    projects, and assignments, with the employee directory and project
    registry as master data.

    The relations:

    - master [EmpDir(eid, dept)] — the complete employee directory;
    - master [ProjReg(pid, owner_dept)] — the complete project registry;
    - [Assign(eid, pid, role)] — who works on what; partially closed:
      assigned employees and projects must be mastered, the roles are
      open world;
    - [Timesheet(eid, pid, hours)] — reported effort; open world.  *)

open Ric_relational
open Ric_query
open Ric_constraints

val db_schema : Schema.t
val master_schema : Schema.t

val master : employees:(string * string) list -> projects:(string * string) list -> Database.t

val db :
  assignments:(string * string * string) list ->
  timesheets:(string * string * int) list ->
  Database.t
(** @raise Invalid_argument on non-conforming rows. *)

val cc_assigned_employees : Containment.t
(** Assigned employees appear in the directory. *)

val cc_assigned_projects : Containment.t
(** Assigned projects appear in the registry. *)

val cc_one_role : Containment.t list
(** FD [(eid, pid) → role] on [Assign], via Proposition 2.1. *)

val ccs : Containment.t list
(** All of the above. *)

val q_staff : string -> Cq.t
(** Who is assigned to the given project? *)

val q_projects_of : string -> Cq.t
(** Which projects does the given employee work on? *)

val q_role : string -> string -> Cq.t
(** The role of an employee on a project — completeness follows from
    the FD once one row is present (the Example 4.1 pattern). *)

val q_billed : string -> Cq.t
(** Hours booked against a project — never relatively complete:
    [Timesheet] is untouched by every constraint. *)
