(* Parameterised .ric scenario families for `ric gen`: bulk data for
   the ingest fast path and hardness rungs for the deciders.

   The bulk families (triple, telco) write their text straight through
   the sink, row by row — emitting a 10^6-tuple file never materialises
   the scenario (or any rows block) in memory, and the data is drawn
   from an LCG so one (family, tuples, seed) triple always produces
   byte-identical output.  Both are partially closed by construction:
   every foreign value is picked from the master registry the
   constraints bound it by, so the emitted instance is a valid RCDP
   input as-is.

   The ladder family wraps the Theorem 3.6 reduction: rung r is a
   ∀*∃*-3SAT instance whose RCDP encoding grows with r, printed
   through Scenario.pp so it round-trips the parser like any
   hand-written file. *)

open Ric_constraints

type family =
  | Triple
  | Telco
  | Ladder

let family_names = [ ("triple", Triple); ("telco", Telco); ("ladder", Ladder) ]

let family_of_string s =
  match List.assoc_opt s family_names with
  | Some f -> Ok f
  | None ->
    Error
      (Printf.sprintf "unknown family %S (valid: %s)" s
         (String.concat ", " (List.map fst family_names)))

let family_to_string f =
  fst (List.find (fun (_, f') -> f' = f) family_names)

(* Draw from the high bits: the low bits of a power-of-two-modulus LCG
   cycle with tiny period, which would fold a million-row emission
   onto a handful of distinct tuples. *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (!state lsr 14) mod bound

let max_tuples = 1_000_000

let check_tuples tuples =
  if tuples < 1 || tuples > max_tuples then
    invalid_arg
      (Printf.sprintf "Gen: tuples must be in [1, %d] (got %d)" max_tuples tuples)

(* ------------------------------------------------------------------ *)
(* triple: an RDF-style triple store.  T(s, p, o) over a master entity
   registry MEnt(e); subjects and objects are bounded by the registry,
   predicates come from a small fixed pool. *)

let n_predicates = 16

let triple ~tuples ~seed sink =
  check_tuples tuples;
  let rand = lcg seed in
  let entities = max 2 (tuples / 10) in
  sink "# generated: ric gen triple\n";
  sink "schema T(s, p, o).\n";
  sink "master MEnt(e).\n";
  sink "rows MEnt {";
  for e = 0 to entities - 1 do
    sink (Printf.sprintf " (e%d)" e)
  done;
  sink " }.\n";
  sink "rows T {";
  for _ = 1 to tuples do
    sink
      (Printf.sprintf " (e%d, k%d, e%d)" (rand entities) (rand n_predicates)
         (rand entities))
  done;
  sink " }.\n";
  sink "constraint SubjBound(s) :- T(s, p, o) => MEnt[0].\n";
  sink "constraint ObjBound(o) :- T(s, p, o) => MEnt[0].\n";
  sink "query QT(s) :- T(s, \"k0\", o).\n"

(* ------------------------------------------------------------------ *)
(* telco: calls and bills over master customer and rate-plan
   registries, with an FD pinning each customer to one rate plan (the
   generator honours it by deriving the plan from the customer). *)

let telco ~tuples ~seed sink =
  check_tuples tuples;
  let rand = lcg seed in
  let customers = max 2 (tuples / 10) in
  let rates = 8 in
  let calls = tuples / 2 in
  let bills = tuples - calls in
  sink "# generated: ric gen telco\n";
  sink "schema Call(src, dst, dur).\n";
  sink "schema Bill(cust, rate, amt).\n";
  sink "master MCust(cust).\n";
  sink "master MRate(rate, price).\n";
  sink "rows MCust {";
  for c = 0 to customers - 1 do
    sink (Printf.sprintf " (c%d)" c)
  done;
  sink " }.\n";
  sink "rows MRate {";
  for r = 0 to rates - 1 do
    sink (Printf.sprintf " (r%d, %d)" r ((r + 1) * 10))
  done;
  sink " }.\n";
  sink "rows Call {";
  for _ = 1 to calls do
    sink
      (Printf.sprintf " (c%d, c%d, %d)" (rand customers) (rand customers)
         (1 + rand 3600))
  done;
  sink " }.\n";
  sink "rows Bill {";
  for _ = 1 to bills do
    let c = rand customers in
    (* rate is a function of the customer, so the FD below holds *)
    sink (Printf.sprintf " (c%d, r%d, %d)" c (c mod rates) (1 + rand 500))
  done;
  sink " }.\n";
  sink "constraint CallSrc(s) :- Call(s, d, u) => MCust[0].\n";
  sink "constraint CallDst(d) :- Call(s, d, u) => MCust[0].\n";
  sink "constraint BillCust(c) :- Bill(c, r, a) => MCust[0].\n";
  sink "constraint BillRate(r) :- Bill(c, r, a) => MRate[0].\n";
  sink "fd OneRate Bill: cust -> rate.\n";
  sink "query QB(c) :- Call(c, d, u), Bill(c, r, a).\n"

(* ------------------------------------------------------------------ *)
(* ladder: hardness rungs over the Theorem 3.6 reduction.  Rung sizes
   grow slowly — the decide cost is Σ₂ᵖ in them. *)

let ladder_params rung =
  let r = max 1 rung in
  (* forall, exists, clauses *)
  ((r + 1) / 2, (r + 2) / 2, r + 2)

let ladder_scenario ~rung ~seed =
  let n_forall, n_exists, n_clauses = ladder_params rung in
  let fe = Ric_reductions.Sat.random_fe ~seed ~n_forall ~n_exists ~n_clauses in
  let inst = Ric_reductions.Rcdp_hardness.of_fe fe in
  {
    Ric_text.Scenario.db_schema = inst.Ric_reductions.Rcdp_hardness.schema;
    master_schema = inst.Ric_reductions.Rcdp_hardness.master_schema;
    db = inst.Ric_reductions.Rcdp_hardness.db;
    master = inst.Ric_reductions.Rcdp_hardness.master;
    queries =
      [ ("QL", Ric_query.Lang.Q_cq inst.Ric_reductions.Rcdp_hardness.query) ];
    ccs =
      List.map
        (fun (ind : Ind.t) ->
          ( ind.Ind.ind_name,
            Ind.to_cc inst.Ric_reductions.Rcdp_hardness.schema ind ))
        inst.Ric_reductions.Rcdp_hardness.inds;
    ctables = [];
  }

let ladder ~rung ~seed sink =
  let ppf =
    Format.make_formatter (fun s pos len -> sink (String.sub s pos len)) ignore
  in
  Format.fprintf ppf "# generated: ric gen ladder (rung %d)@." (max 1 rung);
  Ric_text.Scenario.pp ppf (ladder_scenario ~rung ~seed);
  Format.pp_print_flush ppf ()

(* ------------------------------------------------------------------ *)

let emit family ~tuples ~seed ~rung sink =
  match family with
  | Triple -> triple ~tuples ~seed sink
  | Telco -> telco ~tuples ~seed sink
  | Ladder -> ladder ~rung ~seed sink

let to_string family ~tuples ~seed ~rung =
  let buf = Buffer.create 4096 in
  emit family ~tuples ~seed ~rung (Buffer.add_string buf);
  Buffer.contents buf

(* The expected total data rows of an emission — what the ingest bench
   divides elapsed time by. *)
let total_rows family ~tuples =
  match family with
  | Triple -> tuples + max 2 (tuples / 10)
  | Telco -> tuples + max 2 (tuples / 10) + 8
  | Ladder -> 0 (* schema-bounded, not tuple-scaled *)
