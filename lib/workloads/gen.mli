(** Parameterised [.ric] scenario families for [ric gen].

    Two bulk families stream their text row-by-row through the sink —
    emitting a million-tuple file is bounded-memory — and one hardness
    family wraps the Theorem 3.6 reduction.  All three are
    deterministic: the same (family, tuples/rung, seed) always emits
    byte-identical text, and the bulk instances are partially closed
    by construction (every constrained value is drawn from the master
    registry that bounds it). *)

type family =
  | Triple  (** RDF-style triple store [T(s, p, o)] over a master
                entity registry; subjects and objects bounded. *)
  | Telco  (** calls and bills over master customer/rate registries,
               with an FD pinning each customer to one rate plan. *)
  | Ladder  (** RCDP hardness rungs: the Theorem 3.6 encoding of a
                random ∀*∃*-3SAT instance whose size grows with the
                rung. *)

val family_of_string : string -> (family, string) result
val family_to_string : family -> string

val max_tuples : int
(** Upper bound on [tuples]: 1,000,000. *)

val emit :
  family -> tuples:int -> seed:int -> rung:int -> (string -> unit) -> unit
(** Write one scenario through the sink.  [tuples] scales the bulk
    families (ignored by [Ladder]); [rung] selects the ladder rung
    (ignored by the bulk families).
    @raise Invalid_argument when [tuples] is outside [1, max_tuples]. *)

val to_string : family -> tuples:int -> seed:int -> rung:int -> string
(** {!emit} into a string — tests and small files. *)

val ladder_scenario : rung:int -> seed:int -> Ric_text.Scenario.t
(** The ladder rung as a parsed scenario (what {!emit} prints). *)

val ladder_params : int -> int * int * int
(** [(n_forall, n_exists, n_clauses)] of a rung. *)

val total_rows : family -> tuples:int -> int
(** Total data rows an emission contains (database + master), the
    denominator of the ingest bench's tuples/s.  0 for [Ladder]. *)
