open Ric_relational
open Ric_query
open Ric_constraints

type config = {
  seed : int;
  relations : int;
  arity : int;
  tuples : int;
  domain : int;
}

let default = { seed = 42; relations = 2; arity = 3; tuples = 12; domain = 6 }

let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    max 0 (!state mod bound)

let rel_name i = Printf.sprintf "R%d" i
let master_name i = Printf.sprintf "M%d" i

let relation_schema name arity =
  Schema.relation name (List.init arity (fun i -> Schema.attribute (Printf.sprintf "a%d" i)))

let schema cfg =
  Schema.make (List.init cfg.relations (fun i -> relation_schema (rel_name i) cfg.arity))

let master_schema cfg =
  Schema.make (List.init cfg.relations (fun i -> relation_schema (master_name i) cfg.arity))

let database cfg =
  let rand = lcg cfg.seed in
  List.fold_left
    (fun db i ->
      let rows =
        List.init cfg.tuples (fun _ -> List.init cfg.arity (fun _ -> rand cfg.domain))
      in
      Database.set_relation db (rel_name i) (Relation.of_int_rows rows))
    (Database.empty (schema cfg))
    (List.init cfg.relations (fun i -> i))

let inds cfg =
  let k = max 1 (cfg.arity - 1) in
  List.init cfg.relations (fun i ->
      Ind.make
        ~name:(Printf.sprintf "ind_R%d" i)
        ~rel:(rel_name i)
        ~cols:(List.init k (fun c -> c))
        (Projection.proj (master_name i) (List.init k (fun c -> c))))

let master_of cfg db =
  let rand = lcg (cfg.seed + 1) in
  List.fold_left
    (fun m i ->
      let base = Database.relation db (rel_name i) in
      let extra =
        List.init (cfg.tuples / 2) (fun _ -> List.init cfg.arity (fun _ -> rand cfg.domain))
      in
      Database.set_relation m (master_name i)
        (Relation.union base (Relation.of_int_rows extra)))
    (Database.empty (master_schema cfg))
    (List.init cfg.relations (fun i -> i))

let pad_vars prefix start n = List.init n (fun i -> Term.var (Printf.sprintf "%s%d" prefix (start + i)))

let chain_query cfg ~length =
  let counter = ref 0 in
  let atoms =
    List.init length (fun i ->
        let pads = pad_vars "p" !counter (cfg.arity - 2) in
        counter := !counter + cfg.arity - 2;
        Atom.make (rel_name 0)
          ((Term.var (Printf.sprintf "x%d" i) :: pads) @ [ Term.var (Printf.sprintf "x%d" (i + 1)) ]))
  in
  Cq.make ~head:[ Term.var "x0"; Term.var (Printf.sprintf "x%d" length) ] atoms

let star_query cfg ~branches =
  let counter = ref 0 in
  let atoms =
    List.init branches (fun i ->
        let pads = pad_vars "p" !counter (cfg.arity - 2) in
        counter := !counter + cfg.arity - 2;
        Atom.make
          (rel_name (i mod cfg.relations))
          ((Term.var "hub" :: pads) @ [ Term.var (Printf.sprintf "leaf%d" i) ]))
  in
  Cq.make
    ~head:(Term.var "hub" :: List.init branches (fun i -> Term.var (Printf.sprintf "leaf%d" i)))
    atoms

let random_cq cfg ~atoms:n_atoms =
  let rand = lcg (cfg.seed + 2) in
  let var_pool = ref [ "v0" ] in
  let fresh_var () =
    let name = Printf.sprintf "v%d" (List.length !var_pool) in
    var_pool := name :: !var_pool;
    name
  in
  let pick_term () =
    match rand 4 with
    | 0 -> Term.int (rand cfg.domain) (* constant *)
    | 1 ->
      (* reuse an existing variable: creates joins *)
      let pool = !var_pool in
      Term.var (List.nth pool (rand (List.length pool)))
    | _ -> Term.var (fresh_var ())
  in
  let atoms =
    List.init n_atoms (fun _ ->
        Atom.make (rel_name (rand cfg.relations)) (List.init cfg.arity (fun _ -> pick_term ())))
  in
  (* head: up to two variables that actually occur in atoms *)
  let occurring = List.concat_map Atom.vars atoms in
  let head =
    match occurring with
    | [] -> []
    | [ x ] -> [ Term.var x ]
    | x :: y :: _ -> [ Term.var x; Term.var y ]
  in
  Cq.make ~head atoms
