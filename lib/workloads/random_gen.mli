(** Deterministic pseudo-random instance generators for benches and
    stress tests: databases over a configurable star schema, random
    conjunctive queries, and random containment constraints that the
    generated databases are guaranteed to satisfy. *)

open Ric_relational
open Ric_query
open Ric_constraints

type config = {
  seed : int;
  relations : int;     (** number of database relations R0, R1, ... *)
  arity : int;         (** uniform arity *)
  tuples : int;        (** tuples per relation *)
  domain : int;        (** values are drawn from 0 .. domain-1 *)
}

val default : config

val schema : config -> Schema.t

val master_schema : config -> Schema.t
(** One master relation [Mi] per database relation, same arity. *)

val database : config -> Database.t

val master_of : config -> Database.t -> Database.t
(** Master data that covers the database: every projection used by
    {!inds} is satisfied, plus some extra mastered rows (so databases
    are strictly partially closed, not saturated). *)

val inds : config -> Ind.t list
(** [Ri[0..k] ⊆ Mi[0..k]] for every relation, on a prefix of
    columns. *)

val chain_query : config -> length:int -> Cq.t
(** A join chain [R0(x0, x1, ...), R0(x1, x2, ...), ...] of the given
    length with head [x0, x_length]. *)

val star_query : config -> branches:int -> Cq.t
(** Atoms sharing their first variable. *)

val random_cq : config -> atoms:int -> Cq.t
(** Random atoms over random relations with a random mix of fresh and
    shared variables and occasional constants; always safe. *)
