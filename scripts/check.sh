#!/bin/sh
# One-shot gate: full build, full test suite, then a live smoke test of
# the ricd daemon — start it, issue one RCDP over the socket, assert a
# well-formed JSON verdict, shut it down.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== ricd smoke test"
SOCKET="${TMPDIR:-/tmp}/ricd-check-$$.sock"
RIC="_build/default/bin/ric.exe"

cleanup() {
  "$RIC" shutdown -S "$SOCKET" >/dev/null 2>&1 || true
  wait "${SERVER_PID:-$$}" 2>/dev/null || true
  rm -f "$SOCKET"
}
trap cleanup EXIT INT TERM

"$RIC" serve -S "$SOCKET" -d 2 &
SERVER_PID=$!

# wait for the socket to accept connections
i=0
until "$RIC" request ping -S "$SOCKET" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "FAIL: ricd did not come up on $SOCKET" >&2
    exit 1
  fi
  sleep 0.1
done

OPEN=$("$RIC" request open scenarios/crm.ric -S "$SOCKET")
echo "open:    $OPEN"
case "$OPEN" in
  '{"ok":true,"session":"'*) ;;
  *) echo "FAIL: open did not return a session" >&2; exit 1 ;;
esac
SESSION=$(printf '%s' "$OPEN" | sed 's/.*"session":"\([^"]*\)".*/\1/')

VERDICT=$("$RIC" request rcdp "$SESSION" Q0 -S "$SOCKET")
echo "rcdp:    $VERDICT"
case "$VERDICT" in
  '{"ok":true,'*'"cached":false'*'"verdict":'*) ;;
  *) echo "FAIL: rcdp response is not a well-formed verdict" >&2; exit 1 ;;
esac

# the second identical request must be served from the cache
WARM=$("$RIC" request rcdp "$SESSION" Q0 -S "$SOCKET")
echo "cached:  $WARM"
case "$WARM" in
  *'"cached":true'*) ;;
  *) echo "FAIL: second identical request was not a cache hit" >&2; exit 1 ;;
esac

"$RIC" shutdown -S "$SOCKET" >/dev/null
wait "$SERVER_PID"
SERVER_PID=""

echo "== all checks passed"
