#!/bin/sh
# One-shot gate: full build, full test suite, then a live smoke test of
# the ricd daemon — start it, issue one RCDP over the socket, assert a
# well-formed JSON verdict, shut it down.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== ricd smoke test"
SOCKET="${TMPDIR:-/tmp}/ricd-check-$$.sock"
RIC="_build/default/bin/ric.exe"

cleanup() {
  "$RIC" shutdown -S "$SOCKET" >/dev/null 2>&1 || true
  wait "${SERVER_PID:-$$}" 2>/dev/null || true
  rm -f "$SOCKET"
}
trap cleanup EXIT INT TERM

"$RIC" serve -S "$SOCKET" -d 2 &
SERVER_PID=$!

# wait for the socket to accept connections
i=0
until "$RIC" request ping -S "$SOCKET" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "FAIL: ricd did not come up on $SOCKET" >&2
    exit 1
  fi
  sleep 0.1
done

OPEN=$("$RIC" request open scenarios/crm.ric -S "$SOCKET")
echo "open:    $OPEN"
case "$OPEN" in
  '{"ok":true,"session":"'*) ;;
  *) echo "FAIL: open did not return a session" >&2; exit 1 ;;
esac
SESSION=$(printf '%s' "$OPEN" | sed 's/.*"session":"\([^"]*\)".*/\1/')

VERDICT=$("$RIC" request rcdp "$SESSION" Q0 -S "$SOCKET")
echo "rcdp:    $VERDICT"
case "$VERDICT" in
  '{"ok":true,'*'"cached":false'*'"verdict":'*) ;;
  *) echo "FAIL: rcdp response is not a well-formed verdict" >&2; exit 1 ;;
esac

# the second identical request must be served from the cache
WARM=$("$RIC" request rcdp "$SESSION" Q0 -S "$SOCKET")
echo "cached:  $WARM"
case "$WARM" in
  *'"cached":true'*) ;;
  *) echo "FAIL: second identical request was not a cache hit" >&2; exit 1 ;;
esac

"$RIC" shutdown -S "$SOCKET" >/dev/null
wait "$SERVER_PID"
SERVER_PID=""

echo "== robustness smoke test"
JOURNAL="${TMPDIR:-/tmp}/ricd-check-$$.journal"

cleanup2() {
  "$RIC" shutdown -S "$SOCKET" >/dev/null 2>&1 || true
  wait "${SERVER_PID:-$$}" 2>/dev/null || true
  rm -f "$SOCKET" "$JOURNAL"
}
trap cleanup2 EXIT INT TERM

"$RIC" serve -S "$SOCKET" -d 2 --journal "$JOURNAL" &
SERVER_PID=$!
i=0
until "$RIC" request ping -S "$SOCKET" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "FAIL: ricd did not come up on $SOCKET" >&2
    exit 1
  fi
  sleep 0.1
done

# a deliberately hostile RCDP instance (hours of search) with a 100 ms
# deadline must come back promptly with a timeout verdict
OPEN=$("$RIC" request open scenarios/hard.ric -S "$SOCKET")
HSESSION=$(printf '%s' "$OPEN" | sed 's/.*"session":"\([^"]*\)".*/\1/')
START=$(date +%s)
T=$("$RIC" request rcdp "$HSESSION" QH --timeout-ms 100 -S "$SOCKET")
ELAPSED=$(( $(date +%s) - START ))
echo "timeout: $T (${ELAPSED}s)"
case "$T" in
  *'"verdict":"timeout"'*) ;;
  *) echo "FAIL: deadline did not produce a timeout verdict" >&2; exit 1 ;;
esac
if [ "$ELAPSED" -gt 5 ]; then
  echo "FAIL: 100 ms deadline took ${ELAPSED}s" >&2
  exit 1
fi

# the daemon is still healthy and serving after the aborted search
"$RIC" request ping -S "$SOCKET" >/dev/null
OPEN=$("$RIC" request open scenarios/crm.ric -S "$SOCKET")
CSESSION=$(printf '%s' "$OPEN" | sed 's/.*"session":"\([^"]*\)".*/\1/')
"$RIC" request insert "$CSESSION" Supt e1 d1 c2 -S "$SOCKET" >/dev/null

# SIGTERM drains gracefully: clean exit, socket file removed
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: SIGTERM exit was not clean" >&2; exit 1; }
SERVER_PID=""
if [ -e "$SOCKET" ]; then
  echo "FAIL: socket file survived graceful shutdown" >&2
  exit 1
fi

# --recover restores the journaled sessions (with their inserts)
"$RIC" serve -S "$SOCKET" -d 2 --journal "$JOURNAL" --recover &
SERVER_PID=$!
i=0
until "$RIC" request ping -S "$SOCKET" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "FAIL: ricd did not come back up on $SOCKET" >&2
    exit 1
  fi
  sleep 0.1
done
RECOVERED=$("$RIC" request rcdp "$CSESSION" Q0 -S "$SOCKET" 2>/dev/null || true)
echo "recover: $RECOVERED"
case "$RECOVERED" in
  '{"ok":true,'*'"epoch":1'*) ;;
  *) echo "FAIL: recovered session did not answer at epoch 1" >&2; exit 1 ;;
esac

"$RIC" shutdown -S "$SOCKET" >/dev/null
wait "$SERVER_PID"
SERVER_PID=""
rm -f "$JOURNAL"

echo "== search-mode bench smoke test"
# all three valuation-search strategies on the hostile instance with a
# small step budget; the bench exits nonzero if any scenario query gets
# a different verdict under seq vs inc vs par
BENCH_OUT="${TMPDIR:-/tmp}/ricd-check-$$-bench.json"
RIC_BENCH_STEPS=20000 RIC_BENCH_OUT="$BENCH_OUT" \
  _build/default/bench/main.exe search \
  || { echo "FAIL: search-mode verdicts diverged" >&2; rm -f "$BENCH_OUT"; exit 1; }
case "$(cat "$BENCH_OUT")" in
  *'"all_agree":true'*) ;;
  *) echo "FAIL: $BENCH_OUT does not record agreement" >&2; rm -f "$BENCH_OUT"; exit 1 ;;
esac
rm -f "$BENCH_OUT"

echo "== all checks passed"
