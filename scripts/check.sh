#!/bin/sh
# One-shot gate: full build, full test suite, then a live smoke test of
# the ricd daemon — start it, issue one RCDP over the socket, assert a
# well-formed JSON verdict, shut it down.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== ricd smoke test"
SOCKET="${TMPDIR:-/tmp}/ricd-check-$$.sock"
RIC="_build/default/bin/ric.exe"

cleanup() {
  "$RIC" shutdown -S "$SOCKET" >/dev/null 2>&1 || true
  wait "${SERVER_PID:-$$}" 2>/dev/null || true
  rm -f "$SOCKET"
}
trap cleanup EXIT INT TERM

"$RIC" serve -S "$SOCKET" -d 2 &
SERVER_PID=$!

# wait for the socket to accept connections
i=0
until "$RIC" request ping -S "$SOCKET" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "FAIL: ricd did not come up on $SOCKET" >&2
    exit 1
  fi
  sleep 0.1
done

OPEN=$("$RIC" request open scenarios/crm.ric -S "$SOCKET")
echo "open:    $OPEN"
case "$OPEN" in
  '{"ok":true,"session":"'*) ;;
  *) echo "FAIL: open did not return a session" >&2; exit 1 ;;
esac
SESSION=$(printf '%s' "$OPEN" | sed 's/.*"session":"\([^"]*\)".*/\1/')

VERDICT=$("$RIC" request rcdp "$SESSION" Q0 -S "$SOCKET")
echo "rcdp:    $VERDICT"
case "$VERDICT" in
  '{"ok":true,'*'"cached":false'*'"verdict":'*) ;;
  *) echo "FAIL: rcdp response is not a well-formed verdict" >&2; exit 1 ;;
esac

# the second identical request must be served from the cache
WARM=$("$RIC" request rcdp "$SESSION" Q0 -S "$SOCKET")
echo "cached:  $WARM"
case "$WARM" in
  *'"cached":true'*) ;;
  *) echo "FAIL: second identical request was not a cache hit" >&2; exit 1 ;;
esac

"$RIC" shutdown -S "$SOCKET" >/dev/null
wait "$SERVER_PID"
SERVER_PID=""

echo "== metrics smoke test"
MSOCKET="${TMPDIR:-/tmp}/ricd-check-$$-metrics.sock"

cleanup_metrics() {
  "$RIC" shutdown -S "$SOCKET" >/dev/null 2>&1 || true
  wait "${SERVER_PID:-$$}" 2>/dev/null || true
  rm -f "$SOCKET" "$MSOCKET"
}
trap cleanup_metrics EXIT INT TERM

"$RIC" serve -S "$SOCKET" -d 2 --metrics "$MSOCKET" &
SERVER_PID=$!
i=0
until "$RIC" request ping -S "$SOCKET" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "FAIL: ricd did not come up on $SOCKET" >&2
    exit 1
  fi
  sleep 0.1
done

# the Prometheus exposition is live and names the request counter
SCRAPE=$("$RIC" scrape "$MSOCKET")
case "$SCRAPE" in
  *'# TYPE ric_requests_total counter'*) ;;
  *) echo "FAIL: scrape does not expose ric_requests_total" >&2; exit 1 ;;
esac
PINGS_BEFORE=$(printf '%s\n' "$SCRAPE" | sed -n 's/^ric_requests_total{op="ping"} \([0-9]*\)$/\1/p')
PINGS_BEFORE="${PINGS_BEFORE:-0}"

# one more request must move the counter in the next scrape
"$RIC" request ping -S "$SOCKET" >/dev/null
PINGS_AFTER=$("$RIC" scrape "$MSOCKET" \
  | sed -n 's/^ric_requests_total{op="ping"} \([0-9]*\)$/\1/p')
echo "metrics: ping count ${PINGS_BEFORE} -> ${PINGS_AFTER:-?}"
if [ -z "${PINGS_AFTER:-}" ] || [ "$PINGS_AFTER" -le "$PINGS_BEFORE" ]; then
  echo "FAIL: ric_requests_total{op=\"ping\"} did not increment" >&2
  exit 1
fi

# ric top renders a live dashboard off the same exposition (two frames
# at a short interval; the output is ANSI-redrawn but must carry the
# throughput and latency rows)
TOP=$("$RIC" top "$MSOCKET" -n 2 -i 0.2)
case "$TOP" in
  *'requests'*'latency'*'steps/s'*) ;;
  *) echo "FAIL: ric top did not render the dashboard" >&2; exit 1 ;;
esac
echo "top:     dashboard rendered"

"$RIC" shutdown -S "$SOCKET" >/dev/null
wait "$SERVER_PID"
SERVER_PID=""
rm -f "$MSOCKET"

echo "== explain smoke test"
# profile attribution on the hostile instance under a 500 ms budget:
# the profile's attributed steps must cover >= 95% of the budget's
# step total (the tick sites are mirrored, so this should be 100%)
EXPLAIN=$("$RIC" explain scenarios/hard.ric --timeout-ms 500)
ESTEPS=$(printf '%s\n' "$EXPLAIN" | sed -n 's/^steps: \([0-9]*\).*/\1/p')
EATTR=$(printf '%s\n' "$EXPLAIN" | sed -n 's/^steps: [0-9]*  attributed: \([0-9]*\).*/\1/p')
echo "explain: steps $ESTEPS, attributed ${EATTR:-?}"
if [ -z "${ESTEPS:-}" ] || [ -z "${EATTR:-}" ] || [ "$ESTEPS" -eq 0 ]; then
  echo "FAIL: ric explain did not report a step attribution line" >&2
  exit 1
fi
if [ $((EATTR * 100)) -lt $((ESTEPS * 95)) ]; then
  echo "FAIL: explain attributed less than 95% of the budget's steps" >&2
  exit 1
fi

echo "== flight recorder smoke test"
FLIGHT="${TMPDIR:-/tmp}/ricd-check-$$.flight.jsonl"

cleanup_flight() {
  "$RIC" shutdown -S "$SOCKET" >/dev/null 2>&1 || true
  wait "${SERVER_PID:-$$}" 2>/dev/null || true
  rm -f "$SOCKET" "$FLIGHT"
}
trap cleanup_flight EXIT INT TERM

"$RIC" serve -S "$SOCKET" -d 2 --flight "$FLIGHT" &
SERVER_PID=$!
i=0
until "$RIC" request ping -S "$SOCKET" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "FAIL: ricd did not come up on $SOCKET" >&2
    exit 1
  fi
  sleep 0.1
done

# some traffic for the ring, then SIGUSR1 must dump it as JSONL
OPEN=$("$RIC" request open scenarios/crm.ric -S "$SOCKET")
FSESSION=$(printf '%s' "$OPEN" | sed 's/.*"session":"\([^"]*\)".*/\1/')
"$RIC" request rcdp "$FSESSION" Q0 -S "$SOCKET" >/dev/null
kill -USR1 "$SERVER_PID"
i=0
until [ -s "$FLIGHT" ]; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "FAIL: SIGUSR1 did not produce a flight dump at $FLIGHT" >&2
    exit 1
  fi
  sleep 0.1
done
# every line is a flight event: the writer emits a fixed key order, so
# a torn or interleaved line cannot match
BAD=$(grep -cv '^{"seq":[0-9]*,"t_us":[0-9]*,"kind":"' "$FLIGHT" || true)
if [ "${BAD:-1}" -ne 0 ]; then
  echo "FAIL: $FLIGHT holds $BAD malformed lines" >&2
  exit 1
fi
# the dump op rewrites the same file on demand and reports its size
DUMP=$("$RIC" request dump -S "$SOCKET")
echo "flight:  $DUMP"
case "$DUMP" in
  '{"ok":true,'*'"events":'*) ;;
  *) echo "FAIL: the dump op did not report an event count" >&2; exit 1 ;;
esac

"$RIC" shutdown -S "$SOCKET" >/dev/null
wait "$SERVER_PID"
SERVER_PID=""
rm -f "$FLIGHT"

echo "== robustness smoke test"
JOURNAL="${TMPDIR:-/tmp}/ricd-check-$$.journal"

cleanup2() {
  "$RIC" shutdown -S "$SOCKET" >/dev/null 2>&1 || true
  wait "${SERVER_PID:-$$}" 2>/dev/null || true
  rm -f "$SOCKET" "$JOURNAL"
}
trap cleanup2 EXIT INT TERM

"$RIC" serve -S "$SOCKET" -d 2 --journal "$JOURNAL" &
SERVER_PID=$!
i=0
until "$RIC" request ping -S "$SOCKET" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "FAIL: ricd did not come up on $SOCKET" >&2
    exit 1
  fi
  sleep 0.1
done

# a deliberately hostile RCDP instance (hours of search) with a 100 ms
# deadline must come back promptly with a timeout verdict
OPEN=$("$RIC" request open scenarios/hard.ric -S "$SOCKET")
HSESSION=$(printf '%s' "$OPEN" | sed 's/.*"session":"\([^"]*\)".*/\1/')
START=$(date +%s)
T=$("$RIC" request rcdp "$HSESSION" QH --timeout-ms 100 -S "$SOCKET")
ELAPSED=$(( $(date +%s) - START ))
echo "timeout: $T (${ELAPSED}s)"
case "$T" in
  *'"verdict":"timeout"'*) ;;
  *) echo "FAIL: deadline did not produce a timeout verdict" >&2; exit 1 ;;
esac
if [ "$ELAPSED" -gt 5 ]; then
  echo "FAIL: 100 ms deadline took ${ELAPSED}s" >&2
  exit 1
fi

# the daemon is still healthy and serving after the aborted search
"$RIC" request ping -S "$SOCKET" >/dev/null
OPEN=$("$RIC" request open scenarios/crm.ric -S "$SOCKET")
CSESSION=$(printf '%s' "$OPEN" | sed 's/.*"session":"\([^"]*\)".*/\1/')
"$RIC" request insert "$CSESSION" Supt e1 d1 c2 -S "$SOCKET" >/dev/null

# SIGTERM drains gracefully: clean exit, socket file removed
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: SIGTERM exit was not clean" >&2; exit 1; }
SERVER_PID=""
if [ -e "$SOCKET" ]; then
  echo "FAIL: socket file survived graceful shutdown" >&2
  exit 1
fi

# --recover restores the journaled sessions (with their inserts)
"$RIC" serve -S "$SOCKET" -d 2 --journal "$JOURNAL" --recover &
SERVER_PID=$!
i=0
until "$RIC" request ping -S "$SOCKET" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "FAIL: ricd did not come back up on $SOCKET" >&2
    exit 1
  fi
  sleep 0.1
done
RECOVERED=$("$RIC" request rcdp "$CSESSION" Q0 -S "$SOCKET" 2>/dev/null || true)
echo "recover: $RECOVERED"
case "$RECOVERED" in
  '{"ok":true,'*'"epoch":1'*) ;;
  *) echo "FAIL: recovered session did not answer at epoch 1" >&2; exit 1 ;;
esac

"$RIC" shutdown -S "$SOCKET" >/dev/null
wait "$SERVER_PID"
SERVER_PID=""
rm -f "$JOURNAL"

echo "== soak smoke test"
# >= 200 concurrent clients hammering a forked daemon for a few
# seconds; the harness itself exits nonzero on any protocol-level
# failure (a connection dropped without a structured reply), an
# unclean SIGTERM drain, or a shed counter inconsistent with the
# overloaded replies the clients observed
SOAK_OUT="${TMPDIR:-/tmp}/ricd-check-$$-soak.json"
RIC_SOAK_CLIENTS="${RIC_SOAK_CLIENTS:-200}" \
  RIC_SOAK_SECONDS="${RIC_SOAK_SECONDS:-3}" \
  RIC_SOAK_OUT="$SOAK_OUT" \
  _build/default/bench/service.exe soak \
  || { echo "FAIL: soak smoke failed" >&2; rm -f "$SOAK_OUT"; exit 1; }
case "$(cat "$SOAK_OUT")" in
  *'"protocol_failures":0'*) ;;
  *) echo "FAIL: soak dropped connections without a structured reply" >&2
     rm -f "$SOAK_OUT"; exit 1 ;;
esac
case "$(cat "$SOAK_OUT")" in
  *'"clean_exit":true'*) ;;
  *) echo "FAIL: daemon did not drain cleanly under SIGTERM" >&2
     rm -f "$SOAK_OUT"; exit 1 ;;
esac

echo "== soak p99 guard"
# fresh p99 latency must not regress by more than
# RIC_BENCH_SERVE_TOLERANCE_PCT (default 25) percent over the
# committed BENCH_serve.json baseline (same 200-client smoke scale)
SERVE_BASELINE="BENCH_serve.json"
if [ -f "$SERVE_BASELINE" ]; then
  STOL="${RIC_BENCH_SERVE_TOLERANCE_PCT:-25}"
  soak_p99() { sed -n 's/.*"p99_us":\([0-9]*\).*/\1/p' "$1"; }
  SBASE=$(soak_p99 "$SERVE_BASELINE")
  SFRESH=$(soak_p99 "$SOAK_OUT")
  if [ -z "$SBASE" ] || [ -z "$SFRESH" ]; then
    echo "FAIL: could not extract p99_us for the soak guard" >&2
    rm -f "$SOAK_OUT"
    exit 1
  fi
  echo "soak p99 (us): baseline $SBASE, fresh $SFRESH (tolerance ${STOL}%)"
  if [ $((SFRESH * 100)) -gt $((SBASE * (100 + STOL))) ]; then
    echo "FAIL: soak p99 is more than ${STOL}% above $SERVE_BASELINE" >&2
    rm -f "$SOAK_OUT"
    exit 1
  fi
else
  echo "skip: no $SERVE_BASELINE baseline committed"
fi
rm -f "$SOAK_OUT"

echo "== search-mode bench smoke test"
# all three valuation-search strategies on the hostile instance with a
# small step budget; the bench exits nonzero if any scenario query gets
# a different verdict under seq vs inc vs par
BENCH_OUT="${TMPDIR:-/tmp}/ricd-check-$$-bench.json"
RIC_BENCH_STEPS=20000 RIC_BENCH_OUT="$BENCH_OUT" \
  _build/default/bench/main.exe search \
  || { echo "FAIL: search-mode verdicts diverged" >&2; rm -f "$BENCH_OUT"; exit 1; }
case "$(cat "$BENCH_OUT")" in
  *'"all_agree":true'*) ;;
  *) echo "FAIL: $BENCH_OUT does not record agreement" >&2; rm -f "$BENCH_OUT"; exit 1 ;;
esac
rm -f "$BENCH_OUT"

echo "== match-kernel bench smoke test"
# compiled kernel vs naive oracle: the bench exits nonzero when the
# solution counts diverge or the compiled path is slower than the oracle
MATCH_OUT="${TMPDIR:-/tmp}/ricd-check-$$-match.json"
RIC_BENCH_MATCH_OUT="$MATCH_OUT" _build/default/bench/main.exe match \
  || { echo "FAIL: match-kernel bench failed" >&2; rm -f "$MATCH_OUT"; exit 1; }

echo "== match-kernel bench guard"
# fresh compiled solves/s must stay within RIC_BENCH_MATCH_TOLERANCE_PCT
# (default 25 — a microbench is noisier than the step-metered search)
# of the committed BENCH_match.json baseline
MATCH_BASELINE="BENCH_match.json"
if [ -f "$MATCH_BASELINE" ]; then
  MTOL="${RIC_BENCH_MATCH_TOLERANCE_PCT:-25}"
  match_sps() { sed -n 's/.*"compiled_solves_per_sec":\([0-9]*\).*/\1/p' "$1"; }
  MBASE=$(match_sps "$MATCH_BASELINE")
  MFRESH=$(match_sps "$MATCH_OUT")
  if [ -z "$MBASE" ] || [ -z "$MFRESH" ]; then
    echo "FAIL: could not extract compiled_solves_per_sec for the match guard" >&2
    rm -f "$MATCH_OUT"
    exit 1
  fi
  echo "compiled solves/s: baseline $MBASE, fresh $MFRESH (tolerance ${MTOL}%)"
  if [ $((MFRESH * 100)) -lt $((MBASE * (100 - MTOL))) ]; then
    echo "FAIL: compiled kernel is more than ${MTOL}% slower than $MATCH_BASELINE" >&2
    rm -f "$MATCH_OUT"
    exit 1
  fi
else
  echo "skip: no $MATCH_BASELINE baseline committed"
fi
rm -f "$MATCH_OUT"

echo "== mining smoke test"
# mining the crm scenario must emit a non-empty constraint block and
# the cross-check must flip at least one query to Complete
MINED=$("$RIC" mine scenarios/crm.ric --check)
case "$MINED" in
  *'constraint mined-1('*) ;;
  *) echo "FAIL: ric mine emitted no constraints" >&2; exit 1 ;;
esac
case "$MINED" in
  *'[flipped to Complete]'*) ;;
  *) echo "FAIL: mined constraints flipped no query to Complete" >&2; exit 1 ;;
esac
# the mined block must survive a parser round trip
MINE_RT="${TMPDIR:-/tmp}/ricd-check-$$-mined.ric"
"$RIC" mine scenarios/crm.ric --full > "$MINE_RT"
"$RIC" file show "$MINE_RT" >/dev/null \
  || { echo "FAIL: mined scenario did not reparse" >&2; rm -f "$MINE_RT"; exit 1; }
rm -f "$MINE_RT"
# contract: an empty instance is a clean no-op, not an error
EMPTY_RIC="${TMPDIR:-/tmp}/ricd-check-$$-empty.ric"
printf 'schema R(a, b).\nmaster M(a).\nrows M { (m0) }.\n' > "$EMPTY_RIC"
EMPTY_ERR=$("$RIC" mine "$EMPTY_RIC" 2>&1 >/dev/null) \
  || { echo "FAIL: mine on an empty instance exited nonzero" >&2; rm -f "$EMPTY_RIC"; exit 1; }
case "$EMPTY_ERR" in
  *'nothing to mine'*) ;;
  *) echo "FAIL: empty instance did not explain itself on stderr" >&2; rm -f "$EMPTY_RIC"; exit 1 ;;
esac
rm -f "$EMPTY_RIC"
# contract: an exhausted budget yields partial results with a marker
TIMED=$("$RIC" mine scenarios/crm.ric --timeout-ms 1 2>/dev/null) \
  || { echo "FAIL: mine under a 1 ms budget exited nonzero" >&2; exit 1; }
case "$TIMED" in
  *'# timeout:'*'(partial results)'*) ;;
  *) echo "FAIL: exhausted budget did not leave a timeout marker" >&2; exit 1 ;;
esac
echo "mine:    crm block mined, reparsed, flip observed; contracts hold"

echo "== mining bench smoke test"
# seq vs pool-parallel scoring must accept the same constraint set;
# the bench exits nonzero on divergence
MINE_OUT="${TMPDIR:-/tmp}/ricd-check-$$-mine.json"
RIC_BENCH_MINE_OUT="$MINE_OUT" _build/default/bench/main.exe mine \
  || { echo "FAIL: mining bench failed" >&2; rm -f "$MINE_OUT"; exit 1; }

echo "== mining bench guard"
# fresh sequential candidates/s on crm must stay within
# RIC_BENCH_MINE_TOLERANCE_PCT (default 25) of the committed baseline
MINE_BASELINE="BENCH_mine.json"
if [ -f "$MINE_BASELINE" ]; then
  NTOL="${RIC_BENCH_MINE_TOLERANCE_PCT:-25}"
  # first occurrence = the crm row (greedy sed would grab the last)
  mine_cps() {
    grep -o '"seq_candidates_per_sec":[0-9]*' "$1" | head -n 1 | grep -o '[0-9]*$'
  }
  NBASE=$(mine_cps "$MINE_BASELINE")
  NFRESH=$(mine_cps "$MINE_OUT")
  if [ -z "$NBASE" ] || [ -z "$NFRESH" ]; then
    echo "FAIL: could not extract seq_candidates_per_sec for the mine guard" >&2
    rm -f "$MINE_OUT"
    exit 1
  fi
  echo "mining candidates/s: baseline $NBASE, fresh $NFRESH (tolerance ${NTOL}%)"
  if [ $((NFRESH * 100)) -lt $((NBASE * (100 - NTOL))) ]; then
    echo "FAIL: mining is more than ${NTOL}% slower than $MINE_BASELINE" >&2
    rm -f "$MINE_OUT"
    exit 1
  fi
else
  echo "skip: no $MINE_BASELINE baseline committed"
fi
rm -f "$MINE_OUT"

echo "== bench guard (instrumentation must not slow the seq search)"
# re-measure untraced seq steps/s at the committed baseline's step cap
# and require it within RIC_BENCH_TOLERANCE_PCT (default 5) percent of
# BENCH_search.json — the zero-cost-when-disabled contract, kept honest
BASELINE="BENCH_search.json"
if [ -f "$BASELINE" ]; then
  TOL="${RIC_BENCH_TOLERANCE_PCT:-5}"
  seq_sps() { sed -n 's/.*"mode":"seq"[^}]*"steps_per_sec":\([0-9]*\).*/\1/p' "$1"; }
  BASE_SPS=$(seq_sps "$BASELINE")
  BASE_CAP=$(sed -n 's/.*"step_cap":\([0-9]*\).*/\1/p' "$BASELINE")
  GUARD_OUT="${TMPDIR:-/tmp}/ricd-check-$$-guard.json"
  RIC_BENCH_STEPS="${BASE_CAP:-400000}" RIC_BENCH_OUT="$GUARD_OUT" \
    _build/default/bench/main.exe search >/dev/null \
    || { echo "FAIL: bench guard run failed" >&2; rm -f "$GUARD_OUT"; exit 1; }
  FRESH_SPS=$(seq_sps "$GUARD_OUT")
  if [ -z "$BASE_SPS" ] || [ -z "$FRESH_SPS" ]; then
    echo "FAIL: could not extract seq steps_per_sec for the bench guard" >&2
    rm -f "$GUARD_OUT"
    exit 1
  fi
  echo "seq steps/s: baseline $BASE_SPS, fresh $FRESH_SPS (tolerance ${TOL}%)"
  if [ $((FRESH_SPS * 100)) -lt $((BASE_SPS * (100 - TOL))) ]; then
    echo "FAIL: seq search is more than ${TOL}% slower than $BASELINE" >&2
    rm -f "$GUARD_OUT"
    exit 1
  fi

  echo "== par-vs-seq guard (parallel mode must not cost throughput)"
  # same fresh run: the bench times seq and par:4 within each interleaved
  # round and records the best paired par/seq ratio — that pairing
  # cancels the ~10% run-to-run load swing of a shared host, so the
  # gate can stay tight at RIC_BENCH_PAR_TOLERANCE_PCT (default 5)
  # percent; on a one-core host the par engine degrades to seq, so
  # anything below is coordination overhead leaking back in; scaling
  # itself is asserted by the bench's forced worker sweep (steal
  # counter + per-worker utilisation)
  PTOL="${RIC_BENCH_PAR_TOLERANCE_PCT:-5}"
  FRESH_RATIO=$(sed -n 's/.*"par_vs_seq_best_round_ratio_pct":\([0-9]*\).*/\1/p' "$GUARD_OUT")
  rm -f "$GUARD_OUT"
  if [ -z "$FRESH_RATIO" ]; then
    echo "FAIL: could not extract par_vs_seq_best_round_ratio_pct for the par guard" >&2
    exit 1
  fi
  echo "par:4 vs seq best paired-round ratio: ${FRESH_RATIO}% (floor $((100 - PTOL))%)"
  if [ "$FRESH_RATIO" -lt $((100 - PTOL)) ]; then
    echo "FAIL: par:4 is more than ${PTOL}% below seq in every round" >&2
    exit 1
  fi

  # the committed baseline must carry the scaling sweep (steals and
  # per-worker utilisation under forced workers)
  case "$(cat "$BASELINE")" in
    *'"scaling":'*'"steals":'*) ;;
    *) echo "FAIL: $BASELINE has no scaling section" >&2; exit 1 ;;
  esac
else
  echo "skip: no $BASELINE baseline committed"
fi

echo "== ric gen smoke test"
# each generated family must emit, reparse, and (where tractable)
# decide; the same (family, tuples, seed) must be byte-identical
GEN_RIC="${TMPDIR:-/tmp}/ricd-check-$$-gen.ric"
GEN_RIC2="${TMPDIR:-/tmp}/ricd-check-$$-gen2.ric"
cleanup_gen() { rm -f "$GEN_RIC" "$GEN_RIC2"; }
trap 'cleanup_gen; cleanup2' EXIT INT TERM
"$RIC" gen triple --tuples 2000 --seed 11 -o "$GEN_RIC"
"$RIC" gen triple --tuples 2000 --seed 11 -o "$GEN_RIC2"
cmp -s "$GEN_RIC" "$GEN_RIC2" \
  || { echo "FAIL: ric gen is not deterministic by seed" >&2; exit 1; }
"$RIC" file show "$GEN_RIC" >/dev/null \
  || { echo "FAIL: generated triple scenario did not reparse" >&2; exit 1; }
GVERDICT=$("$RIC" file rcdp "$GEN_RIC" --query QT)
case "$GVERDICT" in
  *incomplete*) ;;
  *) echo "FAIL: QT over generated triples must be incomplete" >&2; exit 1 ;;
esac
"$RIC" gen telco --tuples 2000 --seed 5 -o "$GEN_RIC"
"$RIC" file show "$GEN_RIC" >/dev/null \
  || { echo "FAIL: generated telco scenario did not reparse" >&2; exit 1; }
"$RIC" gen ladder --rung 1 --seed 3 -o "$GEN_RIC"
"$RIC" file rcdp "$GEN_RIC" --query QL >/dev/null \
  || { echo "FAIL: ladder rung 1 did not decide" >&2; exit 1; }
rm -f "$GEN_RIC" "$GEN_RIC2"
echo "gen:     triple deterministic + incomplete, telco reparses, ladder decides"

echo "== ingest bench smoke test"
# streaming columnar loader vs slurp baseline on generated files; the
# bench exits nonzero if the two loaders ever build different databases
LOAD_OUT="${TMPDIR:-/tmp}/ricd-check-$$-load.json"
LOAD_BASELINE="BENCH_load.json"
if [ -f "$LOAD_BASELINE" ]; then
  LBASE_TUPLES=$(sed -n 's/.*"top_tuples":\([0-9]*\).*/\1/p' "$LOAD_BASELINE")
fi
RIC_BENCH_LOAD_TUPLES="${RIC_BENCH_LOAD_TUPLES:-${LBASE_TUPLES:-1000000}}" \
  RIC_BENCH_LOAD_OUT="$LOAD_OUT" \
  _build/default/bench/main.exe load >/dev/null \
  || { echo "FAIL: ingest bench failed (stream/slurp divergence?)" >&2; rm -f "$LOAD_OUT"; exit 1; }

echo "== ingest bench guard"
# fresh streaming tuples/s at the baseline's top rung must stay within
# RIC_BENCH_LOAD_TOLERANCE_PCT (default 25) of BENCH_load.json; the
# first stream_tuples_per_sec in the file is the top (headline) rung
if [ -f "$LOAD_BASELINE" ]; then
  LTOL="${RIC_BENCH_LOAD_TOLERANCE_PCT:-25}"
  load_sps() {
    grep -o '"stream_tuples_per_sec":[0-9]*' "$1" | head -n 1 | grep -o '[0-9]*$'
  }
  LBASE=$(load_sps "$LOAD_BASELINE")
  LFRESH=$(load_sps "$LOAD_OUT")
  LFRESH_TOP=$(sed -n 's/.*"top_tuples":\([0-9]*\).*/\1/p' "$LOAD_OUT")
  if [ -z "$LBASE" ] || [ -z "$LFRESH" ]; then
    echo "FAIL: could not extract stream_tuples_per_sec for the load guard" >&2
    rm -f "$LOAD_OUT"
    exit 1
  fi
  if [ "$LFRESH_TOP" != "${LBASE_TUPLES:-}" ]; then
    echo "skip: fresh run at $LFRESH_TOP tuples, baseline at ${LBASE_TUPLES:-?} — not comparable"
  else
    echo "stream tuples/s: baseline $LBASE, fresh $LFRESH (tolerance ${LTOL}%)"
    if [ $((LFRESH * 100)) -lt $((LBASE * (100 - LTOL))) ]; then
      echo "FAIL: streaming ingest is more than ${LTOL}% slower than $LOAD_BASELINE" >&2
      rm -f "$LOAD_OUT"
      exit 1
    fi
  fi
else
  echo "skip: no $LOAD_BASELINE baseline committed"
fi
rm -f "$LOAD_OUT"

echo "== all checks passed"
