(* Unit tests for the supporting machinery of the deciders: active
   domains, the shared valuation search, and the guidance layer. *)

open Ric_relational
open Ric_query
open Ric_constraints
open Ric_complete

let v = Term.var

let schema =
  Schema.make
    [
      Schema.relation "R"
        [ Schema.attribute "a"; Schema.attribute ~dom:Domain.boolean "b" ];
    ]

let master_schema = Schema.make [ Schema.relation "M" [ Schema.attribute "x" ] ]

(* ------------------------------------------------------------------ *)
(* Adom *)

let test_adom_parts () =
  let master = Database.of_list master_schema [ ("M", Relation.of_int_rows [ [ 7 ] ]) ] in
  let db = Database.of_list schema [ ("R", Relation.of_int_rows [ [ 3; 1 ] ]) ] in
  let adom =
    Adom.build ~db ~schemas:[ schema ] ~master ~cc_constants:[ Value.int 9 ]
      ~query_constants:[ Value.str "q" ] ~fresh_count:2 ()
  in
  let all = Adom.all adom in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Format.asprintf "%a in adom" Value.pp c)
        true
        (List.exists (Value.equal c) all))
    [ Value.int 7; Value.int 3; Value.int 1; Value.int 9; Value.str "q"; Value.int 0 ];
  Alcotest.(check int) "two fresh values" 2 (List.length (Adom.fresh adom));
  (* fresh values collide with nothing *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "fresh is fresh" false
        (List.exists (Value.equal f) (Adom.constants adom)))
    (Adom.fresh adom)

let test_adom_candidates () =
  let master = Database.empty master_schema in
  let adom =
    Adom.build ~schemas:[ schema ] ~master ~cc_constants:[] ~query_constants:[]
      ~fresh_count:3 ()
  in
  (* finite-domain variables range over exactly their domain *)
  Alcotest.(check int) "boolean candidates" 2
    (List.length (Adom.candidates adom Domain.boolean));
  (* infinite-domain variables see constants ∪ fresh *)
  Alcotest.(check int) "infinite candidates"
    (Adom.size adom)
    (List.length (Adom.candidates adom Domain.Infinite))

(* ------------------------------------------------------------------ *)
(* Valuation search *)

let empty_master = Database.empty master_schema

let test_iter_valid_enumerates () =
  let q = Cq.make ~head:[ v "x" ] [ Atom.make "R" [ v "x"; v "b" ] ] in
  let tab = Option.get (Tableau.of_cq schema q) in
  let adom =
    Adom.build ~schemas:[ schema ] ~master:empty_master ~cc_constants:[]
      ~query_constants:[] ~fresh_count:2 ()
  in
  let count = ref 0 in
  let (_ : bool) =
    Valuation_search.iter_valid ~master:empty_master ~ccs:[] ~mode:`Delta_only ~adom tab
      (fun _ _ ->
        incr count;
        false)
  in
  (* x over (2 boolean-values-in-adom + 2 fresh) wait: x is infinite =
     |all|, b is boolean = 2 *)
  let expected = List.length (Adom.all adom) * 2 in
  Alcotest.(check int) "full product" expected !count

let test_iter_valid_neq_pruning () =
  let q =
    Cq.make ~neqs:[ (v "x", v "y") ] ~head:[ v "x" ]
      [ Atom.make "R" [ v "x"; v "b" ]; Atom.make "R" [ v "y"; v "b" ] ]
  in
  let tab = Option.get (Tableau.of_cq schema q) in
  let adom =
    Adom.build ~schemas:[ schema ] ~master:empty_master ~cc_constants:[]
      ~query_constants:[] ~fresh_count:2 ()
  in
  let bad = ref false in
  let (_ : bool) =
    Valuation_search.iter_valid ~master:empty_master ~ccs:[] ~mode:`Delta_only ~adom tab
      (fun mu _ ->
        (match Valuation.find "x" mu, Valuation.find "y" mu with
         | Some a, Some b -> if Value.equal a b then bad := true
         | _ -> ());
        false)
  in
  Alcotest.(check bool) "no x = y valuation visited" false !bad

let test_iter_valid_cc_pruning () =
  (* a constraint that forbids R tuples with a = first fresh value *)
  let q = Cq.make ~head:[ v "x" ] [ Atom.make "R" [ v "x"; v "b" ] ] in
  let tab = Option.get (Tableau.of_cq schema q) in
  let adom =
    Adom.build ~schemas:[ schema ] ~master:empty_master ~cc_constants:[]
      ~query_constants:[] ~fresh_count:1 ()
  in
  let fresh = List.hd (Adom.fresh adom) in
  let forbid =
    Containment.make ~name:"forbid"
      (Lang.Q_cq (Cq.make ~head:[ v "b" ] [ Atom.make "R" [ Term.const fresh; v "b" ] ]))
      Projection.Empty
  in
  let pruned = ref 0 in
  let visited = ref 0 in
  let (_ : bool) =
    Valuation_search.iter_valid ~master:empty_master ~ccs:[ forbid ] ~mode:`Delta_only ~adom
      ~on_prune:(fun () -> incr pruned)
      tab
      (fun mu _ ->
        incr visited;
        Alcotest.(check bool) "forbidden value never reached" false
          (match Valuation.find "x" mu with
           | Some c -> Value.equal c fresh
           | None -> false);
        false)
  in
  Alcotest.(check bool) "some branches pruned" true (!pruned > 0);
  Alcotest.(check bool) "others visited" true (!visited > 0)

(* ------------------------------------------------------------------ *)
(* Guidance *)

let m_master ids =
  Database.of_list master_schema
    [ ("M", Relation.of_tuples (List.map (fun i -> Tuple.of_ints [ i ]) ids)) ]

let bound_by_master =
  Containment.make ~name:"bound"
    (Lang.Q_cq (Cq.make ~head:[ v "x" ] [ Atom.make "R" [ v "x"; v "b" ] ]))
    (Projection.proj "M" [ 0 ])

let q_all = Cq.make ~head:[ v "x" ] [ Atom.make "R" [ v "x"; v "b" ] ]

let test_guidance_completable_multi_round () =
  (* two missing master rows: the audit loop needs several rounds *)
  let master = m_master [ 1; 2; 3 ] in
  let db = Database.of_list schema [ ("R", Relation.of_int_rows [ [ 1; 0 ] ]) ] in
  match
    Guidance.audit ~schema ~master ~ccs:[ bound_by_master ] ~db (Lang.Q_cq q_all)
  with
  | Guidance.Completable { additions; completed; rounds } ->
    Alcotest.(check bool) "at least two rounds or two tuples" true
      (rounds >= 1 && Database.total_tuples additions >= 2);
    Alcotest.(check bool) "completed verified" true
      (Rcdp.decide ~schema ~master ~ccs:[ bound_by_master ] ~db:completed (Lang.Q_cq q_all)
       = Rcdp.Complete);
    (* additions are disjoint from the original data *)
    Alcotest.(check bool) "additions disjoint" true
      (Relation.is_empty
         (Relation.inter (Database.relation additions "R") (Database.relation db "R")))
  | r -> Alcotest.failf "expected completable, got %a" Guidance.pp_audit r

let test_guidance_not_completable () =
  (* no constraint on R at all: q_all can never be complete *)
  let master = m_master [ 1 ] in
  let db = Database.empty schema in
  match Guidance.audit ~schema ~master ~ccs:[] ~db (Lang.Q_cq q_all) with
  | Guidance.Not_completable _ -> ()
  | r -> Alcotest.failf "expected not completable, got %a" Guidance.pp_audit r

let test_guidance_already_complete () =
  let master = m_master [ 1 ] in
  let db = Database.of_list schema [ ("R", Relation.of_int_rows [ [ 1; 0 ]; [ 1; 1 ] ]) ] in
  match Guidance.audit ~schema ~master ~ccs:[ bound_by_master ] ~db (Lang.Q_cq q_all) with
  | Guidance.Already_complete -> ()
  | r -> Alcotest.failf "expected already complete, got %a" Guidance.pp_audit r

(* ------------------------------------------------------------------ *)
(* Random-generator workloads drive the deciders end to end *)

let test_random_workload_roundtrip () =
  let open Ric_workloads in
  let cfg = { Random_gen.default with Random_gen.tuples = 6; domain = 4 } in
  let schema = Random_gen.schema cfg in
  let db = Random_gen.database cfg in
  let master = Random_gen.master_of cfg db in
  let inds = Random_gen.inds cfg in
  let ccs = List.map (Ind.to_cc schema) inds in
  Alcotest.(check bool) "generated instance is partially closed" true
    (Containment.holds_all ~db ~master ccs);
  let q = Random_gen.chain_query cfg ~length:2 in
  Alcotest.(check bool) "query evaluates" true
    (Relation.cardinal (Cq.eval db q) >= 0);
  (* both decider paths agree *)
  let generic = Rcdp.decide ~schema ~master ~ccs ~db (Lang.Q_cq q) in
  let fast = Rcdp.decide_ind ~schema ~master ~inds ~db (Lang.Q_cq q) in
  Alcotest.(check bool) "C2 = C3 on random workload" true
    ((generic = Rcdp.Complete) = (fast = Rcdp.Complete))

let () =
  Alcotest.run "complete-internals"
    [
      ( "adom",
        [
          Alcotest.test_case "parts" `Quick test_adom_parts;
          Alcotest.test_case "candidates" `Quick test_adom_candidates;
        ] );
      ( "valuation search",
        [
          Alcotest.test_case "enumerates the product" `Quick test_iter_valid_enumerates;
          Alcotest.test_case "inequality pruning" `Quick test_iter_valid_neq_pruning;
          Alcotest.test_case "constraint pruning" `Quick test_iter_valid_cc_pruning;
        ] );
      ( "guidance",
        [
          Alcotest.test_case "multi-round completion" `Quick test_guidance_completable_multi_round;
          Alcotest.test_case "not completable" `Quick test_guidance_not_completable;
          Alcotest.test_case "already complete" `Quick test_guidance_already_complete;
        ] );
      ( "random workloads",
        [ Alcotest.test_case "roundtrip" `Slow test_random_workload_roundtrip ] );
    ]
